package sessiondir

import (
	"context"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"sync"
	"time"

	"sessiondir/internal/admission"
	"sessiondir/internal/allocator"
	"sessiondir/internal/announce"
	"sessiondir/internal/clash"
	"sessiondir/internal/mcast"
	"sessiondir/internal/obs"
	"sessiondir/internal/par"
	"sessiondir/internal/sap"
	"sessiondir/internal/session"
	"sessiondir/internal/stats"
	"sessiondir/internal/transport"
)

// EventKind labels directory observability events.
type EventKind int

const (
	// EventAnnounceSent: we transmitted an announcement (own or defended).
	EventAnnounceSent EventKind = iota
	// EventSessionLearned: a previously unknown session appeared.
	EventSessionLearned
	// EventSessionExpired: a cached session timed out.
	EventSessionExpired
	// EventAddressChanged: one of our sessions moved due to a clash.
	EventAddressChanged
	// EventDefendedOwn: we re-announced to defend a long-standing session.
	EventDefendedOwn
	// EventDefendedOther: we re-announced another site's session (phase 3).
	EventDefendedOther
	// EventDeleteSent: we withdrew one of our sessions.
	EventDeleteSent
	// EventSessionEvicted: the admission layer displaced a cached session
	// to stay inside the configured budget.
	EventSessionEvicted
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventAnnounceSent:
		return "announce-sent"
	case EventSessionLearned:
		return "session-learned"
	case EventSessionExpired:
		return "session-expired"
	case EventAddressChanged:
		return "address-changed"
	case EventDefendedOwn:
		return "defended-own"
	case EventDefendedOther:
		return "defended-other"
	case EventDeleteSent:
		return "delete-sent"
	case EventSessionEvicted:
		return "session-evicted"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one observability notification.
type Event struct {
	Kind EventKind
	Key  string // session key
	Desc *session.Description
}

// Config assembles a Directory.
type Config struct {
	// Origin is this host's address, stamped on announcements. Required.
	Origin netip.Addr
	// Transport carries SAP packets. Required.
	Transport transport.Transport
	// Space is the dynamic address block to allocate from
	// (zero = the SAP dynamic block).
	Space mcast.AddrSpace
	// Allocator picks addresses (nil = Deterministic Adaptive IPRMA with
	// a 20% gap budget, the paper's AIPR-1).
	Allocator allocator.Allocator
	// Backoff is the re-announcement schedule (zero = paper's 5 s-start
	// exponential schedule with the SAP bandwidth-derived steady rate).
	Backoff announce.Backoff
	// CacheTimeout expires unheard sessions (0 = one hour).
	CacheTimeout time.Duration
	// RecentWindow is the clash protocol's "just announced" window
	// (0 = 30 s).
	RecentWindow time.Duration
	// Delay is the third-party defence delay distribution
	// (nil = exponential over [0 s, 3.2 s] with a 200 ms RTT).
	Delay clash.DelayDist
	// Clock supplies time (nil = time.Now). Injectable for tests.
	Clock func() time.Time
	// MaxSessions bounds the listened-session cache, tombstones included
	// (0 = unlimited). When full, stale or deleted entries are evicted
	// deterministically — never our own sessions — and if everything is
	// fresh the newcomer is shed instead (drop-newest).
	MaxSessions int
	// MaxPerOrigin bounds cached sessions per announcing origin
	// (0 = unlimited).
	MaxPerOrigin int
	// OriginRate is the per-origin token-bucket budget, in packets/second,
	// charged for every announcement and deletion a peer makes us process
	// (0 = unlimited).
	OriginRate float64
	// OriginBurst is the token-bucket depth in packets
	// (0 = max(8, 4×OriginRate)).
	OriginBurst float64
	// StaleAfter marks a cached session evictable under budget pressure
	// once unheard this long (0 = CacheTimeout/4). Keep it above the
	// steady announcement interval or live sessions become flood-evictable
	// between re-announcements.
	StaleAfter time.Duration
	// Shards stripes the listened-session cache into per-origin shards
	// (0 or 1 = a single shard, the unsharded layout). Sharding changes
	// scaling, never behaviour: all order-sensitive mutations stay
	// serialised under the directory mutex, and a seeded run replays
	// bit-identically at any shard count (see DESIGN.md §17).
	Shards int
	// Seed drives the randomised choices (0 = arbitrary fixed seed).
	Seed uint64
	// OnEvent, if set, receives observability events synchronously; it
	// must not call back into the Directory.
	OnEvent func(Event)
	// Obs, when non-nil, is the registry the directory registers its
	// instruments on (nil = a private registry, reachable via Registry()).
	// One directory per registry: a second directory on the same registry
	// fails New with a duplicate-name error.
	Obs *obs.Registry
	// Trace, when non-nil, receives one structured event per protocol
	// decision (allocate, announce, clash move, defense, learn, expire,
	// evict, shed, delete), stamped with the directory's virtual-time
	// milliseconds. Recording is lock-free and draws no randomness, so
	// tracing a seeded chaos run does not perturb its schedule.
	Trace *obs.Trace
}

// Overload degradation tiers. When the listened-session cache's *fresh*
// occupancy nears the MaxSessions budget the directory sheds work in a
// fixed order — optional protocol work first, listen-cache admissions
// second, announcements never (our own sessions must stay visible, or
// the overload would also partition us). Fresh means heard within
// StaleAfter and not tombstoned: stale entries are reclaimable on demand
// by the admission planner, so they are capacity, not pressure — and
// counting them would leave the directory degraded forever after a flash
// crowd goes quiet.
//
//	level 0 — normal operation.
//	level 1 — fresh occupancy ≥ 75% of MaxSessions: third-party
//	          (phase-3) defenses are suppressed. They are an
//	          optimization, not a correctness requirement; the session's
//	          owner still defends.
//	level 2 — fresh occupancy ≥ 95%: additionally, only one in
//	          degradeAdmitSample previously-unknown sessions runs the
//	          full admission scan (the rest are shed outright). The
//	          sampled path keeps stale-first eviction flowing, so the
//	          cache still turns over, and the level decays on its own
//	          once the flood's entries go stale.
//
// The fresh count is O(cache) to take, so it is recomputed on the
// once-per-second Step path and on scrape/accessor paths, never per
// packet — the packet path reads the last computed tier.
//
// Level 2 exists to bound the admission layer's O(cache) candidate scan
// under a flood, so it only engages when the budget is at least
// degradeMinBudget — on a tiny cache the scan is cheap and sampling
// would just change admission outcomes for nothing. With MaxSessions
// unset there is no budget to measure against and the level is always 0.
const (
	degradeL1Pct       = 75 // cache occupancy %, level 1 threshold
	degradeL2Pct       = 95 // cache occupancy %, level 2 threshold
	degradeAdmitSample = 4  // level 2: 1-in-N unknown sessions admitted
	degradeMinBudget   = 32 // smallest MaxSessions where level 2 can engage
)

type ownedSession struct {
	desc          *session.Description
	announceCount int
	nextAnnounce  time.Time
}

// Directory is a session directory agent: announcer, listener, address
// allocator and clash resolver in one. Safe for concurrent use.
type Directory struct {
	cfg   Config
	space mcast.AddrSpace
	alloc *allocator.Instrumented

	mu      sync.Mutex
	rng     *stats.RNG
	owned   map[string]*ownedSession
	cache   *announce.Sharded
	admit   *admission.Controller
	tracker *clash.Tracker
	epoch   time.Time
	nextID  uint64
	closed  bool
	// degradeTick counts unknown-session packets seen at degradation
	// level 2; every degradeAdmitSample-th one takes the full admission
	// path so the cache keeps turning over.
	degradeTick uint64
	// degradeLevel is the tier computed by the last computeDegradeLocked;
	// the per-packet path reads it instead of rescanning the cache.
	degradeLevel int
	// staleAfter mirrors the admission controller's resolved staleness
	// horizon; entries older than this are reclaimable, hence not counted
	// as degradation pressure.
	staleAfter time.Duration
	// outbox holds packets built under mu and transmitted after unlock, so
	// synchronous transports whose recipients react immediately (the
	// in-process Bus) cannot re-enter and deadlock.
	outbox []outMsg
	// journal, when attached (OpenCacheStore), receives encoded cache
	// deltas; jqueue accumulates them under mu at each mutation site and
	// flush drains them outside mu. jmu serializes drains and
	// checkpoints so concurrent flushes cannot reorder delta batches on
	// their way to the journal — the on-disk order must match the queue
	// order. Lock order: jmu before mu, never the reverse.
	jmu     sync.Mutex
	journal *CacheStore
	jqueue  [][]byte

	reg   *obs.Registry
	trace *obs.Trace
	ins   dirInstruments
}

// Metrics are the directory's operational counters, as exposed by sdrd.
type Metrics struct {
	AnnouncementsSent   uint64 // SAP announcements transmitted (own + defended)
	DeletionsSent       uint64
	PacketsReceived     uint64 // well-formed SAP packets processed
	PacketsMalformed    uint64 // undecodable packets or payloads dropped
	SessionsLearned     uint64 // distinct sessions (or new versions) cached
	SessionsExpired     uint64
	ClashAddressChanges uint64 // phase-2 moves of our own sessions
	ClashDefensesOwn    uint64 // phase-1 re-announcements
	ClashDefensesThird  uint64 // phase-3 defenses of others' sessions

	// Admission-control counters (zero unless the budgets in Config are set,
	// except the validation counters, which are always live).
	Shed          uint64 // new sessions dropped because the cache was full of fresh state
	QuotaDrops    uint64 // packets dropped by per-origin rate limit or session quota
	ForgedReports uint64 // announcements failing clash-report validation, dropped
	ForgedDeletes uint64 // deletions whose origin did not match the cached announcement
	Evictions     uint64 // cached sessions displaced to stay inside the budget

	// Degradation counters (zero unless the cache crossed a tier).
	DegradedDefenses uint64 // phase-3 defenses suppressed at level ≥ 1
	DegradedLearns   uint64 // unknown sessions shed without an admission scan at level 2
}

type outMsg struct {
	data []byte
	ttl  mcast.TTL
}

// dirInstruments holds the directory's registry-backed counters. The
// legacy Metrics struct is now a snapshot view over these; every hot-path
// update is a single atomic add.
type dirInstruments struct {
	announcementsSent *obs.Counter
	deletionsSent     *obs.Counter
	packetsReceived   *obs.Counter
	// packetsMalformed is striped: the batched receive path bumps it from
	// the parallel parse phase, one stripe per worker, and the registry
	// folds the stripes back into the single dir_packets_malformed_total
	// name every consumer already scrapes.
	packetsMalformed *obs.ShardedCounter
	sessionsLearned   *obs.Counter
	sessionsExpired   *obs.Counter
	clashMoves        *obs.Counter
	clashDefensesOwn  *obs.Counter
	clashDefensesThrd *obs.Counter
	shed              *obs.Counter
	quotaDrops        *obs.Counter
	forgedReports     *obs.Counter
	forgedDeletes     *obs.Counter
	evictions         *obs.Counter
	degradedDefenses  *obs.Counter
	degradedLearns    *obs.Counter
	packetBytes       *obs.Histogram
}

// packetSizeBounds buckets received datagram sizes: SAP announcements
// cluster under 1 kB (RFC 2974's recommendation), so the low buckets are
// dense and the tail covers the UDP maximum.
var packetSizeBounds = []int64{64, 128, 256, 512, 1024, 4096, 16384, 65536}

func newDirInstruments(r *obs.Registry) (dirInstruments, error) {
	var ins dirInstruments
	counters := []struct {
		dst        **obs.Counter
		name, help string
	}{
		{&ins.announcementsSent, "dir_announcements_sent_total", "SAP announcements transmitted (own + defended)"},
		{&ins.deletionsSent, "dir_deletions_sent_total", "SAP deletions transmitted"},
		{&ins.packetsReceived, "dir_packets_received_total", "well-formed SAP packets processed"},
		{&ins.sessionsLearned, "dir_sessions_learned_total", "distinct sessions (or new versions) cached"},
		{&ins.sessionsExpired, "dir_sessions_expired_total", "cached sessions that timed out"},
		{&ins.clashMoves, "dir_clash_moves_total", "phase-2 address moves of our own sessions"},
		{&ins.clashDefensesOwn, "dir_clash_defenses_own_total", "phase-1 re-announcements defending our own sessions"},
		{&ins.clashDefensesThrd, "dir_clash_defenses_third_total", "phase-3 defenses of other sites' sessions"},
		{&ins.shed, "dir_admission_shed_total", "new sessions dropped because the cache was full of fresh state"},
		{&ins.quotaDrops, "dir_admission_quota_drops_total", "packets dropped by per-origin rate limit or session quota"},
		{&ins.forgedReports, "dir_admission_forged_reports_total", "announcements failing clash-report validation, dropped"},
		{&ins.forgedDeletes, "dir_admission_forged_deletes_total", "deletions whose origin did not match the cached announcement"},
		{&ins.evictions, "dir_admission_evictions_total", "cached sessions displaced to stay inside the budget"},
		{&ins.degradedDefenses, "dir_degraded_defenses_suppressed_total", "phase-3 defenses suppressed under overload degradation"},
		{&ins.degradedLearns, "dir_degraded_learns_shed_total", "unknown sessions shed without an admission scan at degradation level 2"},
	}
	for _, c := range counters {
		m, err := r.Counter(c.name, c.help)
		if err != nil {
			return ins, err
		}
		*c.dst = m
	}
	sc, err := r.ShardedCounter("dir_packets_malformed_total",
		"undecodable packets or payloads dropped", par.Workers(0))
	if err != nil {
		return ins, err
	}
	ins.packetsMalformed = sc
	h, err := r.Histogram("dir_packet_size_bytes", "received datagram sizes, pre-decode", packetSizeBounds)
	if err != nil {
		return ins, err
	}
	ins.packetBytes = h
	return ins, nil
}

// registerGauges exposes the directory's population state as registry
// views. Each callback takes d.mu, so scrapes must never run under it —
// the registry is only read from scrape paths (HTTP, bench snapshots),
// never from inside the directory.
func (d *Directory) registerGauges() error {
	gauges := []struct {
		name, help string
		fn         func() float64
	}{
		{"dir_owned_sessions", "sessions this directory announces", func() float64 {
			d.mu.Lock()
			defer d.mu.Unlock()
			return float64(len(d.owned))
		}},
		{"dir_cache_sessions", "listened-session cache occupancy, tombstones included", func() float64 {
			// Lock-free: the sharded cache mirrors per-shard totals in
			// atomics, so a scrape storm cannot contend with the packet path.
			return float64(d.cache.Size())
		}},
		{"dir_admission_origins", "origins tracked by the per-origin rate limiter", func() float64 {
			d.mu.Lock()
			defer d.mu.Unlock()
			return float64(d.admit.Stats().Origins)
		}},
		{"shed_degradation_level", "overload degradation tier: 0 normal, 1 phase-3 defenses shed, 2 listen-cache admissions sampled", func() float64 {
			d.mu.Lock()
			defer d.mu.Unlock()
			return float64(d.computeDegradeLocked(d.cfg.Clock()))
		}},
	}
	for _, g := range gauges {
		if err := d.reg.GaugeFunc(g.name, g.help, g.fn); err != nil {
			return err
		}
	}
	return d.reg.CounterFunc("dir_admission_bucket_gcs_total",
		"rate-limiter bucket-table reclaims under origin churn", func() uint64 {
			d.mu.Lock()
			defer d.mu.Unlock()
			return d.admit.Stats().BucketGCs
		})
}

// flush transmits queued packets outside the lock. Reactions triggered at
// recipients may enqueue more packets here (via onPacket); the loop drains
// until quiescent.
func (d *Directory) flush() {
	for {
		d.drainJournal()
		d.mu.Lock() //mclint:looplock re-taken each round on purpose so handlers can enqueue between drains
		if len(d.outbox) == 0 {
			d.mu.Unlock()
			return
		}
		msgs := d.outbox
		d.outbox = nil
		d.mu.Unlock()
		batch := make([]transport.Datagram, len(msgs))
		for i, m := range msgs {
			batch[i] = transport.Datagram{Data: m.data, Scope: m.ttl}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = transport.SendAll(ctx, d.cfg.Transport, batch) // transient errors: next interval retries
		cancel()
	}
}

// journalLocked queues one encoded cache delta for the attached
// journal. Caller holds d.mu. A nil payload (unencodable description)
// is skipped — the next checkpoint snapshot covers it if it ever
// becomes encodable.
func (d *Directory) journalLocked(p []byte) {
	if d.journal == nil || p == nil {
		return
	}
	d.jqueue = append(d.jqueue, p)
}

// drainJournal hands queued deltas to the journal in queue order. jmu
// spans the take-and-append so two concurrent flushes cannot interleave
// their batches out of order; the append itself runs outside d.mu so
// disk latency never blocks the packet path.
func (d *Directory) drainJournal() {
	d.jmu.Lock()
	defer d.jmu.Unlock()
	d.mu.Lock()
	j := d.journal
	batch := d.jqueue
	d.jqueue = nil
	d.mu.Unlock()
	if j == nil || len(batch) == 0 {
		return
	}
	j.appendBatch(batch)
}

// New assembles and starts listening. Call Run (or Step in virtual-time
// tests) to drive timers.
func New(cfg Config) (*Directory, error) {
	if !cfg.Origin.IsValid() || !cfg.Origin.Is4() {
		return nil, fmt.Errorf("sessiondir: Config.Origin must be a valid IPv4 address")
	}
	if cfg.Transport == nil {
		return nil, fmt.Errorf("sessiondir: Config.Transport is required")
	}
	if cfg.Space.Size == 0 {
		cfg.Space = mcast.SAPDynamicSpace()
	}
	if cfg.Allocator == nil {
		cfg.Allocator = allocator.NewAdaptive(cfg.Space.Size, allocator.AdaptiveConfig{
			GapFraction: 0.2,
			Name:        "AIPR-1 (20% gap)",
		})
	}
	if cfg.Allocator.Size() != cfg.Space.Size {
		return nil, fmt.Errorf("sessiondir: allocator manages %d addresses but the space has %d",
			cfg.Allocator.Size(), cfg.Space.Size)
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Backoff == (announce.Backoff{}) {
		cfg.Backoff = announce.DefaultBackoff(announce.MinInterval)
	}
	if cfg.RecentWindow == 0 {
		cfg.RecentWindow = 30 * time.Second
	}
	if cfg.Delay == nil {
		cfg.Delay = clash.NewExponentialDelay(0, 3200, 200)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x5d0_1998
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	alloc, err := allocator.Instrument(cfg.Allocator, reg)
	if err != nil {
		return nil, fmt.Errorf("sessiondir: %w", err)
	}
	ins, err := newDirInstruments(reg)
	if err != nil {
		return nil, fmt.Errorf("sessiondir: %w", err)
	}
	d := &Directory{
		cfg:   cfg,
		space: cfg.Space,
		alloc: alloc,
		rng:   stats.NewRNG(seed),
		owned: make(map[string]*ownedSession),
		cache: announce.NewSharded(cfg.CacheTimeout, cfg.Shards),
		epoch: cfg.Clock(),
		reg:   reg,
		trace: cfg.Trace,
		ins:   ins,
	}
	staleAfter := cfg.StaleAfter
	if staleAfter <= 0 {
		staleAfter = d.cache.Timeout / 4
	}
	d.staleAfter = staleAfter
	d.admit = admission.New(admission.Config{
		MaxSessions:  cfg.MaxSessions,
		MaxPerOrigin: cfg.MaxPerOrigin,
		OriginRate:   cfg.OriginRate,
		OriginBurst:  cfg.OriginBurst,
		StaleAfter:   staleAfter,
		// An independent stream derived from the seed, not split from d.rng:
		// enabling admission must not shift the allocator's or the clash
		// tracker's draw sequences.
		RNG: stats.NewRNG(seed ^ 0xad3155_0bad),
	})
	d.tracker = clash.NewTracker(clash.TrackerConfig{
		RecentWindow: float64(cfg.RecentWindow.Milliseconds()),
		Delay:        cfg.Delay,
	}, d.rng.Split())
	if err := d.registerGauges(); err != nil {
		return nil, fmt.Errorf("sessiondir: %w", err)
	}
	cfg.Transport.Subscribe(d.onPacket)
	if bs, ok := cfg.Transport.(transport.BatchSubscriber); ok {
		// Transports that retire whole receive batches (UDP's recvmmsg
		// loop) hand them to the epoch-batched path: parse in parallel,
		// apply serially in arrival order under one lock epoch.
		bs.SubscribeBatch(d.HandleBatch)
	}
	return d, nil
}

// Registry returns the directory's metrics registry — the one from
// Config.Obs, or the private registry created when none was supplied.
func (d *Directory) Registry() *obs.Registry { return d.reg }

// ms converts a wall time to the tracker's millisecond timeline.
func (d *Directory) ms(t time.Time) float64 {
	return float64(t.Sub(d.epoch)) / float64(time.Millisecond)
}

func (d *Directory) emit(e Event) {
	if d.cfg.OnEvent != nil {
		d.cfg.OnEvent(e)
	}
}

// CreateSession allocates a multicast address for desc (overwriting
// desc.Group), registers it as owned, and announces it immediately.
// The returned description is the directory's own copy.
func (d *Directory) CreateSession(desc *session.Description) (*session.Description, error) {
	out, err := d.createSession(desc)
	d.flush()
	return out, err
}

func (d *Directory) createSession(desc *session.Description) (*session.Description, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, fmt.Errorf("sessiondir: closed")
	}
	now := d.cfg.Clock()
	c := d.prepOwnCopyLocked(desc, now)
	addr, err := d.alloc.Allocate(d.viewLocked(), c.TTL, d.rng)
	if err != nil {
		return nil, fmt.Errorf("sessiondir: allocate: %w", err)
	}
	return d.registerOwnedLocked(c, addr, now)
}

// prepOwnCopyLocked makes the directory's own copy of a description about
// to be created: deep media slice, our origin, and defaulted ID/version.
func (d *Directory) prepOwnCopyLocked(desc *session.Description, now time.Time) session.Description {
	c := *desc
	c.Media = append([]session.Media(nil), desc.Media...)
	c.Origin = d.cfg.Origin
	if c.ID == 0 {
		d.nextID++
		c.ID = uint64(now.UnixNano())>>16 + d.nextID
	}
	if c.Version == 0 {
		c.Version = 1
	}
	return c
}

// registerOwnedLocked binds an allocated address to a prepared copy,
// registers it as owned, and announces it. On failure nothing is
// retained.
func (d *Directory) registerOwnedLocked(c session.Description, addr mcast.Addr, now time.Time) (*session.Description, error) {
	c.Group = d.space.Group(addr)
	if err := c.Validate(); err != nil {
		return nil, err
	}
	own := &ownedSession{desc: &c}
	d.owned[c.Key()] = own
	d.tracker.AnnounceOwn(clash.SessionKey(c.Key()), addr, c.TTL, d.ms(now))
	d.trace.Record(obs.TraceEvent{At: d.ms(now), Kind: obs.TraceAllocate, Key: c.Key(), Addr: uint32(addr)})
	if err := d.announceLocked(own, now); err != nil {
		delete(d.owned, c.Key())
		return nil, err
	}
	return &c, nil
}

// CreateSessionBatch creates several sessions in one pass, amortising the
// allocator's per-call view scan: consecutive descriptions with the same
// scope share a single AllocateBatch, which computes band/partition state
// once for the whole run (the addresses are bit-identical to sequential
// CreateSession calls; see allocator.AllocateBatchSerial). Results align
// with descs by index. On error the sessions created before the failure
// stay created and are returned with it — callers retrying a partial
// burst should resubmit only the tail.
func (d *Directory) CreateSessionBatch(descs []*session.Description) ([]*session.Description, error) {
	out, err := d.createSessionBatch(descs)
	d.flush()
	return out, err
}

func (d *Directory) createSessionBatch(descs []*session.Description) ([]*session.Description, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, fmt.Errorf("sessiondir: closed")
	}
	now := d.cfg.Clock()
	out := make([]*session.Description, 0, len(descs))
	addrs := make([]mcast.Addr, 0, len(descs))
	for i := 0; i < len(descs); {
		// One allocator pass per same-TTL run, in input order.
		j := i
		for j < len(descs) && descs[j].TTL == descs[i].TTL {
			j++
		}
		var allocErr error
		addrs, allocErr = d.alloc.AllocateBatch(d.viewLocked(), descs[i].TTL, j-i, addrs[:0], d.rng)
		// Register whatever the run yielded even when it ran out mid-way:
		// sequential CreateSession calls would have created exactly these
		// before hitting the same failure.
		for k, addr := range addrs {
			c := d.prepOwnCopyLocked(descs[i+k], now)
			created, err := d.registerOwnedLocked(c, addr, now)
			if err != nil {
				return out, err
			}
			out = append(out, created)
		}
		if allocErr != nil {
			return out, fmt.Errorf("sessiondir: allocate batch: %w", allocErr)
		}
		i = j
	}
	return out, nil
}

// viewLocked builds the allocator view: every live cached session plus our
// own, expressed as address indices. Sessions outside the managed space
// (foreign blocks) are ignored, as sdr does.
func (d *Directory) viewLocked() []allocator.SessionInfo {
	var view []allocator.SessionInfo
	for _, e := range d.cache.Live() {
		if idx, ok := d.space.Index(e.Desc.Group); ok {
			view = append(view, allocator.SessionInfo{Addr: idx, TTL: e.Desc.TTL})
		}
	}
	for _, own := range d.owned {
		if idx, ok := d.space.Index(own.desc.Group); ok {
			view = append(view, allocator.SessionInfo{Addr: idx, TTL: own.desc.TTL})
		}
	}
	return view
}

// announceLocked transmits one SAP announcement for an owned session and
// schedules the next per the back-off schedule.
func (d *Directory) announceLocked(own *ownedSession, now time.Time) error {
	if err := d.sendDescLocked(own.desc, sap.Announce); err != nil {
		return err
	}
	steady := announce.SteadyInterval(d.cache.TotalAdBytes(), announce.DefaultBandwidthBps)
	b := d.cfg.Backoff
	if b.Steady < steady {
		b.Steady = steady
	}
	own.nextAnnounce = now.Add(b.IntervalAfter(own.announceCount))
	own.announceCount++
	d.ins.announcementsSent.Inc()
	if idx, ok := d.space.Index(own.desc.Group); ok {
		d.trace.Record(obs.TraceEvent{At: d.ms(now), Kind: obs.TraceAnnounce, Key: own.desc.Key(), Addr: uint32(idx)})
	}
	d.emit(Event{Kind: EventAnnounceSent, Key: own.desc.Key(), Desc: own.desc})
	return nil
}

// sendDescLocked marshals a description and queues it for transmission
// with the session's own scope (announcements travel exactly as far as the
// session's data). Actual transmission happens in flush, outside the lock.
func (d *Directory) sendDescLocked(desc *session.Description, typ sap.MessageType) error {
	payload, err := desc.MarshalSDP()
	if err != nil {
		return err
	}
	pkt := sap.Packet{
		Type:      typ,
		MsgIDHash: sap.MsgIDHashOf(payload),
		Origin:    desc.Origin,
		Payload:   payload,
	}
	wire, err := pkt.Marshal(nil)
	if err != nil {
		return err
	}
	d.outbox = append(d.outbox, outMsg{data: wire, ttl: desc.TTL})
	return nil
}

// WithdrawSession deletes one of our sessions, sending a SAP deletion.
func (d *Directory) WithdrawSession(key string) error {
	err := d.withdrawSession(key)
	d.flush()
	return err
}

func (d *Directory) withdrawSession(key string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	own, ok := d.owned[key]
	if !ok {
		return fmt.Errorf("sessiondir: not our session: %s", key)
	}
	delete(d.owned, key)
	d.tracker.Forget(clash.SessionKey(key))
	if err := d.sendDescLocked(own.desc, sap.Delete); err != nil {
		return err
	}
	d.ins.deletionsSent.Inc()
	d.trace.Record(obs.TraceEvent{At: d.ms(d.cfg.Clock()), Kind: obs.TraceDelete, Key: key})
	d.emit(Event{Kind: EventDeleteSent, Key: key, Desc: own.desc})
	return nil
}

// Sessions returns a snapshot of all known live sessions (cached + owned).
func (d *Directory) Sessions() []*session.Description {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []*session.Description
	seen := map[string]bool{}
	for _, own := range d.owned {
		out = append(out, own.desc)
		seen[own.desc.Key()] = true
	}
	for _, e := range d.cache.Live() {
		if !seen[e.Desc.Key()] {
			out = append(out, e.Desc)
		}
	}
	return out
}

// OwnSessions returns the sessions this directory announces.
func (d *Directory) OwnSessions() []*session.Description {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*session.Description, 0, len(d.owned))
	for _, own := range d.owned {
		out = append(out, own.desc)
	}
	return out
}

// parsedPacket is the outcome of the lock-free parse phase of packet
// handling: the decoded SAP header and a freshly parsed description
// (ok), or a malformed verdict (!ok, already counted). Nothing in it
// aliases the receive buffer — ParseSDP copies into fresh strings and
// the apply phase never touches pkt.Payload — so the buffer may be
// released once the apply phase is done with the batch.
type parsedPacket struct {
	pkt  sap.Packet
	desc *session.Description
	ok   bool
}

// parsePacket is the pure pre-lock half of the receive path: decode,
// payload-type check, SDP parse, and the pre-decode observability
// (size histogram, malformed stripe). Safe to run concurrently across a
// batch; stripe spreads the malformed counter's contention.
func (d *Directory) parsePacket(data []byte, stripe int) parsedPacket {
	d.ins.packetBytes.Observe(int64(len(data)))
	var p parsedPacket
	if err := p.pkt.DecodeMaybeCompressed(data); err != nil {
		d.ins.packetsMalformed.Inc(stripe)
		return p // malformed packets are dropped silently, as SAP requires
	}
	if p.pkt.EffectivePayloadType() != sap.PayloadTypeSDP {
		d.ins.packetsMalformed.Inc(stripe)
		return p
	}
	desc, err := session.ParseSDP(p.pkt.Payload)
	if err != nil {
		d.ins.packetsMalformed.Inc(stripe)
		return p
	}
	p.desc = desc
	p.ok = true
	return p
}

// onPacket is the per-message transport receive path. The message's
// receive buffer is released as soon as the apply phase returns; nothing
// parsed out of it aliases the buffer (see parsedPacket).
func (d *Directory) onPacket(m transport.Message) {
	p := d.parsePacket(m.Data, 0)
	d.mu.Lock()
	d.applyParsedLocked(&p)
	d.mu.Unlock()
	m.Release()
	d.flush()
}

// batchParseMin is the smallest receive batch worth fanning the parse
// phase across workers; below it the handoff costs more than the SDP
// parses it overlaps.
const batchParseMin = 8

// HandleBatch is the epoch-batched receive path: the parse phase runs
// across the whole batch first (in parallel when the batch is big
// enough), then one lock epoch applies the parsed packets serially in
// arrival order. Applying in arrival order is what preserves the
// bit-identical replay contract — the protocol state transitions and RNG
// draws are exactly those of len(ms) sequential onPacket calls — while
// the parse fan-out and the single lock acquisition per batch buy the
// throughput.
func (d *Directory) HandleBatch(ms []transport.Message) {
	if len(ms) == 0 {
		return
	}
	parsed := make([]parsedPacket, len(ms))
	if len(ms) >= batchParseMin {
		par.For(0, len(ms), func(i int) { parsed[i] = d.parsePacket(ms[i].Data, i) })
	} else {
		for i := range ms {
			parsed[i] = d.parsePacket(ms[i].Data, i)
		}
	}
	d.mu.Lock()
	for i := range parsed {
		d.applyParsedLocked(&parsed[i])
	}
	d.mu.Unlock()
	for i := range ms {
		ms[i].Release()
	}
	d.flush()
}

// applyParsedLocked is the serial half of the receive path: admission,
// validation, cache and clash-tracker mutation. Caller holds d.mu; calls
// across a batch must run in arrival order.
func (d *Directory) applyParsedLocked(p *parsedPacket) {
	if !p.ok || d.closed {
		return
	}
	pkt := &p.pkt
	desc := p.desc
	d.ins.packetsReceived.Inc()
	now := d.cfg.Clock()
	key := desc.Key()

	// Per-origin rate limiting covers everything a peer can make us
	// process. Dropped packets trigger no reactions at all, so they cannot
	// be amplified into defense storms either.
	if !d.admit.Allow(pkt.Origin, now) {
		d.ins.quotaDrops.Inc()
		return
	}

	if pkt.Type == sap.Delete {
		d.handleDeleteLocked(pkt, desc, key, now)
		return
	}

	if !d.validateAnnounceLocked(pkt, desc, key) {
		d.ins.forgedReports.Inc()
		return
	}
	if _, known := d.cache.Peek(key); !known && d.owned[key] == nil {
		// At degradation level 2 most unknown sessions are shed before the
		// admission layer's O(cache) candidate scan even runs; the sampled
		// survivors keep stale-first eviction turning the cache over.
		if d.degradeLevel >= 2 {
			d.degradeTick++
			if d.degradeTick%degradeAdmitSample != 0 {
				d.ins.degradedLearns.Inc()
				d.trace.Record(obs.TraceEvent{At: d.ms(now), Kind: obs.TraceShed, Key: key})
				return
			}
		}
		// A previously unknown session must pass the budget gate before it
		// may occupy cache (and clash-tracker) state.
		if !d.admitNewLocked(desc, now) {
			return
		}
	}

	if e, fresh := d.cache.Observe(desc, now); fresh {
		d.ins.sessionsLearned.Inc()
		d.trace.Record(obs.TraceEvent{At: d.ms(now), Kind: obs.TraceLearn, Key: key})
		d.emit(Event{Kind: EventSessionLearned, Key: key, Desc: desc})
		// Only fresh observations are journaled; pure LastHeard
		// refreshes ride on the next snapshot (interval-granularity
		// timestamps, same as the legacy checkpoint format).
		d.journalLocked(encodeLearn(e))
	}
	if idx, ok := d.space.Index(desc.Group); ok {
		actions := d.tracker.Observe(clash.Observation{
			Key:  clash.SessionKey(key),
			Addr: idx,
			TTL:  desc.TTL,
			At:   d.ms(now),
		})
		d.applyActionsLocked(actions, now)
	}
}

// handleDeleteLocked validates and applies a SAP deletion. We have no
// authentication (out of scope, as for the paper's sdr), but a deletion
// must at least be self-consistent and must name a cached announcement
// whose recorded origin matches — that kills blind deletion spoofing,
// where an attacker withdraws a victim's session without having been able
// to observe and fully forge its announcement.
func (d *Directory) handleDeleteLocked(pkt *sap.Packet, desc *session.Description, key string, now time.Time) {
	if d.owned[key] != nil {
		// We never withdraw our own sessions via the network; any deletion
		// naming one of ours is forged.
		d.ins.forgedDeletes.Inc()
		return
	}
	e, ok := d.cache.Peek(key)
	if !ok {
		return // unknown session: nothing to delete
	}
	if pkt.Origin != desc.Origin || pkt.Origin != e.Desc.Origin {
		d.ins.forgedDeletes.Inc()
		return
	}
	d.cache.Delete(key, now)
	d.tracker.Forget(clash.SessionKey(key))
	d.journalLocked(encodeKeyDelta(deltaDelete, key))
}

// validateAnnounceLocked is the clash-report validation of the admission
// layer: an announcement (which is also how clashes are reported in the
// announce–listen model) must be self-consistent and must agree with what
// the local cache already knows before it may mutate soft state or
// trigger clash reactions. Returns false to drop the packet.
func (d *Directory) validateAnnounceLocked(pkt *sap.Packet, desc *session.Description, key string) bool {
	// The SAP header origin must match the session's claimed origin: a
	// mismatch is a forgery (third-party defenses re-announce the defended
	// session with ITS origin in both places, so they pass).
	if pkt.Origin != desc.Origin {
		return false
	}
	// Scope plausibility: a TTL-0 session could not have reached us.
	if desc.TTL == 0 {
		return false
	}
	if own, ok := d.owned[key]; ok {
		// A report about one of our own sessions must match what we are
		// actually announcing: anything else is a forged echo trying to
		// poison our own tracker state.
		return desc.Version == own.desc.Version &&
			desc.Group == own.desc.Group && desc.TTL == own.desc.TTL
	}
	e, ok := d.cache.Peek(key)
	if !ok {
		return true // new session: nothing to agree with yet
	}
	if desc.Version < e.Desc.Version {
		// Replayed stale state. The cache already ignored old versions;
		// rejecting here keeps them out of the clash tracker too, so a
		// replayer cannot re-trigger resolved clashes.
		return false
	}
	if desc.Version == e.Desc.Version {
		if e.Deleted {
			return false // a deleted version cannot be resurrected verbatim
		}
		// Same version, same content: an honest announcer bumps the
		// version on every change, so a same-version report naming a
		// different address or scope is a forged clash report.
		if desc.Group != e.Desc.Group || desc.TTL != e.Desc.TTL || desc.Name != e.Desc.Name {
			return false
		}
	}
	return true
}

// admitNewLocked runs the budget gate for a previously unknown session,
// applying any planned evictions. Returns false if the newcomer was shed
// or denied.
func (d *Directory) admitNewLocked(desc *session.Description, now time.Time) bool {
	if d.cfg.MaxSessions <= 0 && d.cfg.MaxPerOrigin <= 0 {
		return true
	}
	dec := d.admit.PlanNewGrouped(d.candidatesLocked(), desc.Origin, now)
	for _, k := range dec.Evict {
		d.cache.Remove(k)
		d.tracker.Forget(clash.SessionKey(k))
		d.ins.evictions.Inc()
		d.trace.Record(obs.TraceEvent{At: d.ms(now), Kind: obs.TraceEvict, Key: k})
		d.emit(Event{Kind: EventSessionEvicted, Key: k})
		d.journalLocked(encodeKeyDelta(deltaEvict, k))
	}
	switch dec.Outcome {
	case admission.Shed:
		d.ins.shed.Inc()
		d.trace.Record(obs.TraceEvent{At: d.ms(now), Kind: obs.TraceShed, Key: desc.Key()})
		return false
	case admission.DenyQuota:
		d.ins.quotaDrops.Inc()
		return false
	}
	return true
}

// candidatesLocked builds the admission view of the cache, one group per
// shard. Own sessions are excluded: they are never eviction candidates.
// Group and intra-group order are irrelevant — the grouped planners
// impose a total deterministic order of their own, so budget accounting
// is exact at any shard count.
func (d *Directory) candidatesLocked() [][]admission.Candidate {
	grouped := d.cache.AllGrouped()
	groups := make([][]admission.Candidate, len(grouped))
	for i, entries := range grouped {
		cands := make([]admission.Candidate, 0, len(entries))
		for _, e := range entries {
			if e.Desc.Origin == d.cfg.Origin || d.owned[e.Desc.Key()] != nil {
				continue
			}
			cands = append(cands, admission.Candidate{
				Key:       e.Desc.Key(),
				Origin:    e.Desc.Origin,
				TTL:       e.Desc.TTL,
				LastHeard: e.LastHeard,
				Deleted:   e.Deleted,
			})
		}
		groups[i] = cands
	}
	return groups
}

// applyActionsLocked executes clash protocol reactions.
func (d *Directory) applyActionsLocked(actions []clash.Action, now time.Time) {
	// The cached tier: suppressing phase-3 defenses is a load-shedding
	// heuristic, so acting on a tier up to a second old is fine.
	degraded := d.degradeLevel >= 1
	for _, a := range actions {
		key := string(a.Key)
		switch a.Kind {
		case clash.ActionResendOwn:
			if own, ok := d.owned[key]; ok {
				if err := d.announceLocked(own, now); err == nil {
					d.ins.clashDefensesOwn.Inc()
					d.trace.Record(obs.TraceEvent{At: d.ms(now), Kind: obs.TraceDefendOwn, Key: key})
					d.emit(Event{Kind: EventDefendedOwn, Key: key, Desc: own.desc})
				}
			}
		case clash.ActionModifyAddress:
			own, ok := d.owned[key]
			if !ok {
				continue
			}
			addr, err := d.alloc.Allocate(d.viewLocked(), own.desc.TTL, d.rng)
			if err != nil {
				continue // space exhausted: keep the clashing address
			}
			own.desc = own.desc.WithGroup(d.space.Group(addr))
			own.announceCount = 0 // restart the fast back-off phase
			d.tracker.AnnounceOwn(clash.SessionKey(key), addr, own.desc.TTL, d.ms(now))
			if err := d.announceLocked(own, now); err == nil {
				d.ins.clashMoves.Inc()
				d.alloc.Moves.Inc()
				d.trace.Record(obs.TraceEvent{At: d.ms(now), Kind: obs.TraceClashMove, Key: key, Addr: uint32(addr)})
				d.emit(Event{Kind: EventAddressChanged, Key: key, Desc: own.desc})
			}
		case clash.ActionDefendOther:
			if degraded {
				// Level ≥ 1: shed the optional phase-3 defense; the session's
				// owner still defends its own address (phases 1 and 2 are
				// never shed).
				d.ins.degradedDefenses.Inc()
				continue
			}
			if e, ok := d.cache.Get(key); ok {
				if err := d.sendDescLocked(e.Desc, sap.Announce); err == nil {
					d.ins.clashDefensesThrd.Inc()
					d.trace.Record(obs.TraceEvent{At: d.ms(now), Kind: obs.TraceDefendOther, Key: key})
					d.emit(Event{Kind: EventDefendedOther, Key: key, Desc: e.Desc})
				}
			}
		}
	}
}

// Step runs all timer-driven work due at the given instant: scheduled
// re-announcements, third-party defenses, and cache expiry. Tests drive
// Step directly with a virtual clock; Run calls it periodically.
func (d *Directory) Step(now time.Time) {
	d.step(now)
	d.flush()
}

func (d *Directory) step(now time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	// Refresh the overload tier once per tick; the packet path reads the
	// cached value until the next recount.
	d.computeDegradeLocked(now)
	// Announce due sessions in sorted key order, not map order: packet
	// transmission order is observable (it drives receivers' clash timing
	// and any fault-injecting transport's RNG draws), so it must be
	// identical run to run for a chaos schedule to replay from its seed.
	var due []string
	for key, own := range d.owned {
		if !own.nextAnnounce.After(now) {
			due = append(due, key)
		}
	}
	sort.Strings(due)
	for _, key := range due {
		_ = d.announceLocked(d.owned[key], now) // transient send errors retry next interval
	}
	d.applyActionsLocked(d.tracker.Due(d.ms(now)), now)
	for _, key := range d.cache.Expire(now) {
		d.tracker.Forget(clash.SessionKey(key))
		d.ins.sessionsExpired.Inc()
		d.trace.Record(obs.TraceEvent{At: d.ms(now), Kind: obs.TraceExpire, Key: key})
		d.emit(Event{Kind: EventSessionExpired, Key: key})
		d.journalLocked(encodeKeyDelta(deltaExpire, key))
	}
}

// Run drives Step on a real-time ticker until ctx is cancelled.
func (d *Directory) Run(ctx context.Context) error {
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			d.Step(d.cfg.Clock())
		}
	}
}

// Close withdraws nothing (sessions live on in peers' caches until they
// expire) but stops processing. The transport is not closed; the caller
// owns it.
func (d *Directory) Close() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
}

// SaveCache persists the listened-session cache (own sessions are not
// included; they are re-announced on restart anyway). sdr kept such a
// cache so restarts come up with a complete picture — the "local caching
// servers" of §2.3.
func (d *Directory) SaveCache(w io.Writer) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cache.Save(w)
}

// LoadCache merges a persisted cache, registering each loaded session
// with the clash tracker so its address is defended from the start.
// Returns the number of sessions loaded.
func (d *Directory) LoadCache(r io.Reader) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.cfg.Clock()
	n, err := d.cache.Load(r, now)
	if err != nil {
		return n, err
	}
	d.registerLoadedLocked(now)
	return n, nil
}

// registerLoadedLocked is the post-recovery bookkeeping shared by
// LoadCache and OpenCacheStore, run after persisted entries have been
// merged into the cache. Caller holds d.mu.
func (d *Directory) registerLoadedLocked(now time.Time) {
	// Budget enforcement before tracker registration: a checkpoint larger
	// than MaxSessions (saved under a bigger budget, or adversarially
	// grown) must trim deterministically, not over-admit — and evicted
	// entries must never reach the clash tracker.
	if d.cfg.MaxSessions > 0 || d.cfg.MaxPerOrigin > 0 {
		for _, k := range d.admit.TrimPlanGrouped(d.candidatesLocked()) {
			d.cache.Remove(k)
			d.ins.evictions.Inc()
			d.trace.Record(obs.TraceEvent{At: d.ms(now), Kind: obs.TraceEvict, Key: k})
			d.emit(Event{Kind: EventSessionEvicted, Key: k})
			d.journalLocked(encodeKeyDelta(deltaEvict, k))
		}
	}
	// Register in sorted key order: Live() iterates a map, and Observe
	// can draw suppression delays from the RNG when loaded entries clash,
	// so registration order must be reproducible.
	live := d.cache.Live()
	sort.Slice(live, func(i, j int) bool { return live[i].Desc.Key() < live[j].Desc.Key() })
	for _, e := range live {
		if idx, ok := d.space.Index(e.Desc.Group); ok {
			d.tracker.Observe(clash.Observation{
				Key:  clash.SessionKey(e.Desc.Key()),
				Addr: idx,
				TTL:  e.Desc.TTL,
				At:   d.ms(now),
			})
		}
	}
}

// Metrics returns a snapshot of the directory's operational counters.
// It is now a compatibility view over the registry instruments; each
// field is read atomically, so a snapshot taken mid-packet can be
// slightly skewed across fields (it could before too, between packets).
func (d *Directory) Metrics() Metrics {
	return Metrics{
		AnnouncementsSent:   d.ins.announcementsSent.Value(),
		DeletionsSent:       d.ins.deletionsSent.Value(),
		PacketsReceived:     d.ins.packetsReceived.Value(),
		PacketsMalformed:    d.ins.packetsMalformed.Value(),
		SessionsLearned:     d.ins.sessionsLearned.Value(),
		SessionsExpired:     d.ins.sessionsExpired.Value(),
		ClashAddressChanges: d.ins.clashMoves.Value(),
		ClashDefensesOwn:    d.ins.clashDefensesOwn.Value(),
		ClashDefensesThird:  d.ins.clashDefensesThrd.Value(),
		Shed:                d.ins.shed.Value(),
		QuotaDrops:          d.ins.quotaDrops.Value(),
		ForgedReports:       d.ins.forgedReports.Value(),
		ForgedDeletes:       d.ins.forgedDeletes.Value(),
		Evictions:           d.ins.evictions.Value(),
		DegradedDefenses:    d.ins.degradedDefenses.Value(),
		DegradedLearns:      d.ins.degradedLearns.Value(),
	}
}

// computeDegradeLocked recounts the fresh cache occupancy against the
// MaxSessions budget, maps it onto the overload tiers (see the degrade
// constants; integer percent arithmetic, no floats), and caches the
// result for the per-packet path. O(cache): call from the timer and
// scrape paths only.
func (d *Directory) computeDegradeLocked(now time.Time) int {
	max := d.cfg.MaxSessions
	if max <= 0 {
		return 0
	}
	fresh := d.cache.CountFresh(now, d.staleAfter)
	lvl := 0
	switch {
	case fresh*100 >= max*degradeL2Pct && max >= degradeMinBudget:
		lvl = 2
	case fresh*100 >= max*degradeL1Pct:
		lvl = 1
	}
	d.degradeLevel = lvl
	return lvl
}

// DegradationLevel reports the current overload tier: 0 normal, 1
// phase-3 defenses suppressed, 2 listen-cache admissions sampled. Also
// exported as the shed_degradation_level gauge.
func (d *Directory) DegradationLevel() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.computeDegradeLocked(d.cfg.Clock())
}

// CacheSize returns the listened-session cache's total occupancy,
// deletion tombstones included — the quantity Config.MaxSessions bounds.
// Own sessions live outside this budget; they are locally created, never
// attacker-supplied.
func (d *Directory) CacheSize() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cache.Size()
}
