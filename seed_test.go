package sessiondir

import (
	"testing"
	"time"

	"sessiondir/internal/mcast"
	"sessiondir/internal/transport"
)

// The ROADMAP bug these tests pin down: every sdrd started without an
// explicit seed used the same built-in fallback, so all daemons shared
// allocator RNG stream zero. Two partitioned daemons then allocated the
// SAME address sequence, and on a symmetric clash both drew the same
// replacement address — a mirror move that can repeat forever. The fix is
// in cmd/sdrd (default seed derived from origin+PID); these tests prove
// the underlying property the fix relies on: seeds are the tie-breaker.

// addressSequence creates n sessions on an isolated directory and returns
// the allocated groups in creation order.
func addressSequence(t *testing.T, seed uint64, n int) []string {
	t.Helper()
	bus := transport.NewBus() // private bus: fully partitioned from any peer
	clk := newFakeClock()
	d, _ := newDirectory(t, bus, clk, "10.0.0.1", 256, seed, nil)
	defer d.Close()
	var out []string
	for i := 0; i < n; i++ {
		desc, err := d.CreateSession(testDesc("s", 127))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, desc.Group.String())
		clk.Advance(time.Second)
	}
	return out
}

// TestSharedSeedMirrorsAllocations demonstrates the hazard: two directories
// with the same seed and no communication draw bit-identical address
// sequences, so symmetric clashes re-clash on every retry.
func TestSharedSeedMirrorsAllocations(t *testing.T) {
	a := addressSequence(t, 42, 10)
	b := addressSequence(t, 42, 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

// TestDistinctSeedsDivergeAllocations is the tie-break regression test:
// distinct seeds (as sdrd now derives from origin+PID) must yield
// different draw sequences, so a symmetric clash cannot mirror forever.
func TestDistinctSeedsDivergeAllocations(t *testing.T) {
	a := addressSequence(t, 42, 10)
	b := addressSequence(t, 43, 10)
	for i := range a {
		if a[i] != b[i] {
			return // diverged: the tie is broken
		}
	}
	t.Fatalf("distinct seeds produced identical 10-address sequences: %v", a)
}

// TestSymmetricClashResolvesWithDistinctSeeds drives the full protocol
// through the symmetric case: both daemons allocate the same address at
// the same instant inside a partition (forced by sharing a seed for the
// initial pick via a warm-up), then the partition heals while BOTH are
// inside the recent window — the configuration where the paper's phase-2
// rule makes both sides move. With distinct seeds the replacements differ
// and the clash resolves within a bounded number of steps.
func TestSymmetricClashResolvesWithDistinctSeeds(t *testing.T) {
	bus := transport.NewBus()
	clk := newFakeClock()
	logA, logB := &eventLog{}, &eventLog{}
	a, _ := newDirectory(t, bus, clk, "10.0.0.1", 2, 42, logA)
	b, _ := newDirectory(t, bus, clk, "10.0.0.2", 2, 43, logB)
	defer a.Close()
	defer b.Close()

	bus.SetPolicy(func(from, to int, _ mcast.TTL) bool { return false })

	descA, err := a.CreateSession(testDesc("a", 127))
	if err != nil {
		t.Fatal(err)
	}
	descB, err := b.CreateSession(testDesc("b", 127))
	if err != nil {
		t.Fatal(err)
	}
	if descA.Group != descB.Group {
		// Size-2 space: force the collision by re-creating on the other
		// address being free. If the picks differ the clash cannot happen;
		// that is itself the fixed behaviour, but this test wants the
		// symmetric-collision path, so align them.
		t.Fatalf("setup: expected colliding initial picks in a size-2 space, got %s vs %s",
			descA.Group, descB.Group)
	}

	// Heal while both sessions are recent (announced seconds ago).
	bus.SetPolicy(nil)
	for i := 0; i < 20; i++ {
		now := clk.Advance(6 * time.Second)
		a.Step(now)
		b.Step(now)
		ga := a.OwnSessions()[0].Group
		gb := b.OwnSessions()[0].Group
		if ga != gb {
			return // resolved
		}
	}
	t.Fatalf("symmetric clash never resolved: both still at %s (A moves=%d, B moves=%d)",
		a.OwnSessions()[0].Group,
		logA.count(EventAddressChanged), logB.count(EventAddressChanged))
}
