package sessiondir

import (
	"bytes"
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"sessiondir/internal/announce"
	"sessiondir/internal/storage"
)

// SaveCacheFile persists the listened-session cache to path atomically
// (temp file, fsync, rename) in the legacy line-oriented format: a
// crash mid-save — or a kill -9 between periodic checkpoints — leaves
// the previous complete cache in place rather than a torn file. The
// journaled store (OpenCacheStore / CacheStore.Checkpoint) supersedes
// this for daemons; SaveCacheFile remains for one-shot exports.
func (d *Directory) SaveCacheFile(path string) error {
	return announce.AtomicWriteFile(path, func(w io.Writer) error {
		return d.SaveCache(w)
	})
}

// LoadCacheFile merges a persisted cache from path, accepting both the
// framed journaled-checkpoint format (snapshot plus sibling journal,
// recovered exactly the way a restarted daemon would) and the legacy
// "sdcache v1" text format. A missing file is a normal cold start
// (0, nil). For legacy files a corrupt or truncated file returns a
// diagnosable error with whatever entries were salvageable already
// merged; framed damage is handled by the store itself (torn tails
// dropped, corrupt files quarantined) and is not an error here. The
// directory remains fully usable either way.
func (d *Directory) LoadCacheFile(path string) (int, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	if !storage.HasMagic(data) {
		return d.LoadCache(bytes.NewReader(data))
	}
	loaded := 0
	st, _, err := storage.Open(storage.NewOSFS(filepath.Dir(path)), filepath.Base(path), storage.OpenOptions{
		Replay: func(p []byte) error {
			added, rerr := d.applyCacheRecord(p)
			if added {
				loaded++
			}
			return rerr
		},
	})
	if err != nil {
		return loaded, err
	}
	_ = st.Close() // opened read-only; nothing buffered
	d.mu.Lock()
	d.registerLoadedLocked(d.cfg.Clock())
	d.mu.Unlock()
	return loaded, nil
}
