package sessiondir

import (
	"errors"
	"io"
	"io/fs"
	"os"

	"sessiondir/internal/announce"
)

// SaveCacheFile persists the listened-session cache to path atomically
// (temp file, fsync, rename): a crash mid-save — or a kill -9 between
// periodic checkpoints — leaves the previous complete cache in place
// rather than a torn file.
func (d *Directory) SaveCacheFile(path string) error {
	return announce.AtomicWriteFile(path, func(w io.Writer) error {
		return d.SaveCache(w)
	})
}

// LoadCacheFile merges a persisted cache from path. A missing file is a
// normal cold start (0, nil); a corrupt or truncated file returns a
// diagnosable error with whatever entries were salvageable already merged,
// and the directory remains fully usable either way.
func (d *Directory) LoadCacheFile(path string) (int, error) {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer func() { _ = f.Close() }() // read-only handle; nothing to act on
	return d.LoadCache(f)
}
