package sessiondir_test

// End-to-end test of the sdrd daemon binary: two processes over unicast
// UDP on loopback must exchange session announcements, exactly as the
// README's -peers example promises.

import (
	"fmt"
	"net"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"
)

// freePorts reserves n distinct UDP ports by binding and releasing them.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, 0, n)
	conns := make([]*net.UDPConn, 0, n)
	for len(ports) < n {
		c, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
		ports = append(ports, c.LocalAddr().(*net.UDPAddr).Port)
	}
	for _, c := range conns {
		c.Close()
	}
	return ports
}

func TestSdrdBinaryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the toolchain")
	}
	ports := freePorts(t, 2)
	addr1 := fmt.Sprintf("127.0.0.1:%d", ports[0])
	addr2 := fmt.Sprintf("127.0.0.1:%d", ports[1])

	run := func(listen, peer, announceName string) (*exec.Cmd, *strings.Builder) {
		var out strings.Builder
		cmd := exec.Command("go", "run", "./cmd/sdrd",
			"-origin", "127.0.0.1",
			"-listen", listen,
			"-peers", peer,
			"-announce", announceName,
			"-ttl", "63",
			"-for", scaled(8*time.Second).String(),
		)
		cmd.Stdout = &out
		cmd.Stderr = &out
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd, &out
	}

	cmd1, out1 := run(addr1, addr2, "alpha-session")
	cmd2, out2 := run(addr2, addr1, "beta-session")

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); _ = cmd1.Wait() }()
	go func() { defer wg.Done(); _ = cmd2.Wait() }()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(scaled(2 * time.Minute)):
		_ = cmd1.Process.Kill()
		_ = cmd2.Process.Kill()
		t.Fatal("daemons did not exit")
	}

	// Each daemon must have learned the other's session.
	if !strings.Contains(out1.String(), "beta-session") {
		t.Fatalf("daemon 1 never saw beta-session:\n%s", out1.String())
	}
	if !strings.Contains(out2.String(), "alpha-session") {
		t.Fatalf("daemon 2 never saw alpha-session:\n%s", out2.String())
	}
	for i, out := range []*strings.Builder{out1, out2} {
		if !strings.Contains(out.String(), "sdrd exiting") {
			t.Fatalf("daemon %d did not exit cleanly:\n%s", i+1, out.String())
		}
	}
}
