package sessiondir

import (
	"strings"
	"testing"

	"sessiondir/internal/mcast"
	"sessiondir/internal/session"
	"sessiondir/internal/transport"
)

func batchDesc(name string, ttl mcast.TTL) *session.Description {
	return &session.Description{
		Name:  name,
		TTL:   ttl,
		Media: []session.Media{{Type: "audio", Port: 20000, Proto: "RTP/AVP", Format: "0"}},
	}
}

// TestCreateSessionBatchMatchesSequential pins the directory-level batch
// contract: with the same seed and view, CreateSessionBatch must assign
// exactly the addresses that sequential CreateSession calls would have.
func TestCreateSessionBatchMatchesSequential(t *testing.T) {
	const n = 8
	clk := newFakeClock()
	seq, _ := newDirectory(t, transport.NewBus(), clk, "10.0.0.1", 256, 7, nil)
	defer seq.Close()
	bat, _ := newDirectory(t, transport.NewBus(), clk, "10.0.0.1", 256, 7, nil)
	defer bat.Close()

	var wantGroups []string
	for i := 0; i < n; i++ {
		out, err := seq.CreateSession(batchDesc("s", 127))
		if err != nil {
			t.Fatalf("sequential create %d: %v", i, err)
		}
		wantGroups = append(wantGroups, out.Group.String())
	}

	descs := make([]*session.Description, n)
	for i := range descs {
		descs[i] = batchDesc("s", 127)
	}
	got, err := bat.CreateSessionBatch(descs)
	if err != nil {
		t.Fatalf("batch create: %v", err)
	}
	if len(got) != n {
		t.Fatalf("batch created %d sessions, want %d", len(got), n)
	}
	for i := range got {
		if got[i].Group.String() != wantGroups[i] {
			t.Fatalf("session %d: batch group %s, sequential group %s",
				i, got[i].Group, wantGroups[i])
		}
	}
}

// TestCreateSessionBatchMixedScopes: a batch whose TTLs change mid-way is
// split into same-scope runs; results stay aligned with the input and all
// sessions end up owned and announced.
func TestCreateSessionBatchMixedScopes(t *testing.T) {
	clk := newFakeClock()
	log := &eventLog{}
	d, _ := newDirectory(t, transport.NewBus(), clk, "10.0.0.1", 256, 3, log)
	defer d.Close()

	ttls := []mcast.TTL{127, 127, 47, 47, 47, 127}
	descs := make([]*session.Description, len(ttls))
	for i, ttl := range ttls {
		descs[i] = batchDesc("m", ttl)
	}
	got, err := d.CreateSessionBatch(descs)
	if err != nil {
		t.Fatalf("batch create: %v", err)
	}
	if len(got) != len(ttls) {
		t.Fatalf("created %d, want %d", len(got), len(ttls))
	}
	seen := map[string]bool{}
	for i, out := range got {
		if out.TTL != ttls[i] {
			t.Fatalf("result %d has TTL %d, want %d (alignment broken)", i, out.TTL, ttls[i])
		}
		if seen[out.Group.String()] {
			t.Fatalf("group %s assigned twice in one batch", out.Group)
		}
		seen[out.Group.String()] = true
	}
	if n := len(d.OwnSessions()); n != len(ttls) {
		t.Fatalf("%d owned sessions, want %d", n, len(ttls))
	}
	if n := log.count(EventAnnounceSent); n != len(ttls) {
		t.Fatalf("%d announcements, want %d", n, len(ttls))
	}
}

// TestCreateSessionBatchPartialFailure: when the space runs out mid-batch
// the sessions created before the failure stay created and are returned
// with the error, mirroring what sequential creates would have left.
func TestCreateSessionBatchPartialFailure(t *testing.T) {
	clk := newFakeClock()
	d, _ := newDirectory(t, transport.NewBus(), clk, "10.0.0.1", 4, 5, nil)
	defer d.Close()

	descs := make([]*session.Description, 8)
	for i := range descs {
		descs[i] = batchDesc("x", 127)
	}
	got, err := d.CreateSessionBatch(descs)
	if err == nil {
		t.Fatal("expected exhaustion error for 8 sessions in a 4-address space")
	}
	if !strings.Contains(err.Error(), "allocate batch") {
		t.Fatalf("unexpected error: %v", err)
	}
	if len(got) == 0 || len(got) > 4 {
		t.Fatalf("partial result has %d sessions, want 1..4", len(got))
	}
	if n := len(d.OwnSessions()); n != len(got) {
		t.Fatalf("%d owned sessions, but %d returned", n, len(got))
	}
}
