package sessiondir

import (
	"net/netip"
	"testing"
	"time"

	"sessiondir/internal/mcast"
	"sessiondir/internal/sap"
	"sessiondir/internal/transport"
)

// newBudgetedDirectory builds a directory with a MaxSessions budget large
// enough for level-2 degradation to engage (≥ degradeMinBudget).
func newBudgetedDirectory(t *testing.T, bus *transport.Bus, clk *fakeClock, maxSessions int) *Directory {
	t.Helper()
	d, err := New(Config{
		Origin:      netip.MustParseAddr("10.0.0.1"),
		Transport:   bus.Endpoint(),
		Space:       mcast.SyntheticSpace(4096),
		Clock:       clk.Now,
		Seed:        99,
		MaxSessions: maxSessions,
		StaleAfter:  10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// fillCache floods n distinct single-session origins at the directory.
func fillCache(t *testing.T, f *forge, space mcast.AddrSpace, n, base int) {
	t.Helper()
	for i := 0; i < n; i++ {
		o := netip.AddrFrom4([4]byte{10, 1, byte((base + i) >> 8), byte(base + i)})
		desc := peerDesc(o.String(), uint64(base+i+1), space, mcast.Addr(base+i), 127)
		f.send(sap.Announce, desc.Origin, desc)
	}
}

// TestDegradationTiers walks the occupancy thresholds: below 75% the
// directory is normal, at 75% it reports level 1, at 95% level 2.
func TestDegradationTiers(t *testing.T) {
	bus := transport.NewBus()
	clk := newFakeClock()
	d := newBudgetedDirectory(t, bus, clk, 100)
	f := newForge(t, bus)
	space := mcast.SyntheticSpace(4096)

	if lvl := d.DegradationLevel(); lvl != 0 {
		t.Fatalf("empty cache: level %d, want 0", lvl)
	}
	fillCache(t, f, space, 74, 0)
	if lvl := d.DegradationLevel(); lvl != 0 {
		t.Fatalf("74/100 cached: level %d, want 0", lvl)
	}
	fillCache(t, f, space, 1, 74)
	if lvl := d.DegradationLevel(); lvl != 1 {
		t.Fatalf("75/100 cached: level %d, want 1", lvl)
	}
	fillCache(t, f, space, 20, 75)
	if lvl := d.DegradationLevel(); lvl != 2 {
		t.Fatalf("95/100 cached: level %d, want 2", lvl)
	}
}

// TestDegradationNoBudgetNoTiers: without MaxSessions there is nothing to
// measure occupancy against, so the level stays 0 at any size.
func TestDegradationNoBudgetNoTiers(t *testing.T) {
	bus := transport.NewBus()
	clk := newFakeClock()
	d := newBudgetedDirectory(t, bus, clk, 0)
	f := newForge(t, bus)
	fillCache(t, f, mcast.SyntheticSpace(4096), 200, 0)
	if lvl := d.DegradationLevel(); lvl != 0 {
		t.Fatalf("unbounded cache: level %d, want 0", lvl)
	}
}

// TestDegradationSmallBudgetCapsAtLevelOne: a budget under
// degradeMinBudget never reaches level 2 — sampling admissions on a tiny
// cache would change outcomes without saving meaningful scan work.
func TestDegradationSmallBudgetCapsAtLevelOne(t *testing.T) {
	bus := transport.NewBus()
	clk := newFakeClock()
	d := newBudgetedDirectory(t, bus, clk, 8)
	f := newForge(t, bus)
	fillCache(t, f, mcast.SyntheticSpace(4096), 8, 0)
	if lvl := d.DegradationLevel(); lvl != 1 {
		t.Fatalf("full 8-entry cache: level %d, want 1 (level 2 needs budget ≥ %d)",
			lvl, degradeMinBudget)
	}
}

// TestDegradationSuppressesThirdPartyDefense: at level ≥ 1 the directory
// sheds phase-3 defenses and counts them, instead of re-announcing other
// sites' sessions.
func TestDegradationSuppressesThirdPartyDefense(t *testing.T) {
	bus := transport.NewBus()
	clk := newFakeClock()
	d := newBudgetedDirectory(t, bus, clk, 100)
	f := newForge(t, bus)
	space := mcast.SyntheticSpace(4096)

	// Two distinct sessions announced on the same address: a clash between
	// two remote parties, which schedules a phase-3 defense here.
	s1 := peerDesc("10.9.0.1", 1, space, 2000, 127)
	s2 := peerDesc("10.9.0.2", 2, space, 2000, 127)
	f.send(sap.Announce, s1.Origin, s1)
	f.send(sap.Announce, s2.Origin, s2)

	// Push occupancy past level 1 before the defense timer fires.
	fillCache(t, f, space, 80, 100)
	if lvl := d.DegradationLevel(); lvl < 1 {
		t.Fatalf("level %d after fill, want ≥ 1", lvl)
	}

	// The uniform test delay distribution fires defenses ~1 s out.
	d.Step(clk.Advance(10 * time.Second))
	m := d.Metrics()
	if m.ClashDefensesThird != 0 {
		t.Fatalf("phase-3 defense sent under degradation: %+v", m)
	}
	if m.DegradedDefenses == 0 {
		t.Fatal("suppressed defense not counted in DegradedDefenses")
	}
}

// TestDegradationSamplesAdmissions: at level 2 only one in
// degradeAdmitSample unknown sessions runs the admission path; the rest
// are shed and counted, cheaper than an eviction scan each.
func TestDegradationSamplesAdmissions(t *testing.T) {
	bus := transport.NewBus()
	clk := newFakeClock()
	d := newBudgetedDirectory(t, bus, clk, 100)
	f := newForge(t, bus)
	space := mcast.SyntheticSpace(4096)

	fillCache(t, f, space, 95, 0)
	if lvl := d.DegradationLevel(); lvl != 2 {
		t.Fatalf("level %d after fill, want 2", lvl)
	}

	// 40 more newcomers at level 2: 3 of 4 shed without a scan.
	fillCache(t, f, space, 40, 200)
	m := d.Metrics()
	if m.DegradedLearns != 30 {
		t.Fatalf("DegradedLearns = %d after 40 newcomers at level 2, want 30", m.DegradedLearns)
	}
	// The sampled quarter still hit the normal admission gate (cache was
	// full of fresh state, so they were shed there, keeping the budget).
	if n := d.CacheSize(); n > 100 {
		t.Fatalf("cache size %d exceeds budget 100", n)
	}

	// Re-announcements of already-cached sessions are never sampled away.
	before := d.Metrics().DegradedLearns
	fillCache(t, f, space, 95, 0) // same origins/IDs as the initial fill
	if got := d.Metrics().DegradedLearns; got != before {
		t.Fatalf("re-announcements shed as unknown: DegradedLearns %d → %d", before, got)
	}
}
