package sessiondir

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"sessiondir/internal/allocator"
	"sessiondir/internal/clash"
	"sessiondir/internal/mcast"
	"sessiondir/internal/session"
	"sessiondir/internal/transport"
)

// fakeClock is a shared, manually advanced clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(1998, 9, 1, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
	return c.t
}

// eventLog collects directory events thread-safely.
type eventLog struct {
	mu     sync.Mutex
	events []Event
}

func (l *eventLog) add(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, e)
}

func (l *eventLog) count(k EventKind) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, e := range l.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

func newDirectory(t *testing.T, bus *transport.Bus, clk *fakeClock, origin string, spaceSize uint32, seed uint64, log *eventLog) (*Directory, *transport.BusEndpoint) {
	t.Helper()
	ep := bus.Endpoint()
	cfg := Config{
		Origin:    netip.MustParseAddr(origin),
		Transport: ep,
		Space:     mcast.SyntheticSpace(spaceSize),
		Allocator: allocator.NewAdaptive(spaceSize, allocator.AdaptiveConfig{GapFraction: 0.2}),
		Clock:     clk.Now,
		Seed:      seed,
		// Tight, deterministic clash parameters for tests.
		RecentWindow: 30 * time.Second,
		Delay:        clash.NewUniformDelay(1000, 1001),
	}
	if log != nil {
		cfg.OnEvent = log.add
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d, ep
}

func testDesc(name string, ttl mcast.TTL) *session.Description {
	return &session.Description{
		Name:  name,
		TTL:   ttl,
		Media: []session.Media{{Type: "audio", Port: 30000, Proto: "RTP/AVP", Format: "0"}},
	}
}

func TestDirectoryConfigValidation(t *testing.T) {
	bus := transport.NewBus()
	if _, err := New(Config{Transport: bus.Endpoint()}); err == nil {
		t.Fatal("missing origin accepted")
	}
	if _, err := New(Config{Origin: netip.MustParseAddr("10.0.0.1")}); err == nil {
		t.Fatal("missing transport accepted")
	}
	if _, err := New(Config{
		Origin:    netip.MustParseAddr("2001:db8::1"),
		Transport: bus.Endpoint(),
	}); err == nil {
		t.Fatal("IPv6 origin accepted")
	}
	if _, err := New(Config{
		Origin:    netip.MustParseAddr("10.0.0.1"),
		Transport: bus.Endpoint(),
		Space:     mcast.SyntheticSpace(100),
		Allocator: allocator.NewRandom(50), // size mismatch
	}); err == nil {
		t.Fatal("allocator/space size mismatch accepted")
	}
}

func TestDirectoryAnnounceAndLearn(t *testing.T) {
	bus := transport.NewBus()
	clk := newFakeClock()
	logB := &eventLog{}
	a, _ := newDirectory(t, bus, clk, "10.0.0.1", 256, 1, nil)
	b, _ := newDirectory(t, bus, clk, "10.0.0.2", 256, 2, logB)
	defer a.Close()
	defer b.Close()

	desc, err := a.CreateSession(testDesc("seminar", 127))
	if err != nil {
		t.Fatal(err)
	}
	if !mcast.IsMulticast(desc.Group) {
		t.Fatalf("allocated group %s not multicast", desc.Group)
	}
	// The bus is synchronous: B has already learned it.
	found := false
	for _, s := range b.Sessions() {
		if s.Key() == desc.Key() && s.Group == desc.Group {
			found = true
		}
	}
	if !found {
		t.Fatalf("B did not learn the session; knows %v", b.Sessions())
	}
	if logB.count(EventSessionLearned) != 1 {
		t.Fatalf("learn events = %d", logB.count(EventSessionLearned))
	}
	if len(a.OwnSessions()) != 1 {
		t.Fatal("A does not own its session")
	}
}

func TestDirectoryAllocationsAvoidKnownAddresses(t *testing.T) {
	bus := transport.NewBus()
	clk := newFakeClock()
	a, _ := newDirectory(t, bus, clk, "10.0.0.1", 64, 3, nil)
	b, _ := newDirectory(t, bus, clk, "10.0.0.2", 64, 4, nil)
	defer a.Close()
	defer b.Close()

	seen := map[netip.Addr]string{}
	for i := 0; i < 20; i++ {
		var d *Directory
		if i%2 == 0 {
			d = a
		} else {
			d = b
		}
		desc, err := d.CreateSession(testDesc("s", 127))
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		if prev, dup := seen[desc.Group]; dup {
			t.Fatalf("address %s reused (%s then %s)", desc.Group, prev, desc.Key())
		}
		seen[desc.Group] = desc.Key()
	}
}

func TestDirectoryReannouncementSchedule(t *testing.T) {
	bus := transport.NewBus()
	clk := newFakeClock()
	logA := &eventLog{}
	a, _ := newDirectory(t, bus, clk, "10.0.0.1", 64, 5, logA)
	defer a.Close()
	if _, err := a.CreateSession(testDesc("s", 63)); err != nil {
		t.Fatal(err)
	}
	if got := logA.count(EventAnnounceSent); got != 1 {
		t.Fatalf("initial announcements = %d", got)
	}
	// 5 s back-off: stepping just before does nothing, just after fires.
	a.Step(clk.Advance(4 * time.Second))
	if got := logA.count(EventAnnounceSent); got != 1 {
		t.Fatalf("early step announced: %d", got)
	}
	a.Step(clk.Advance(2 * time.Second))
	if got := logA.count(EventAnnounceSent); got != 2 {
		t.Fatalf("after 6 s: %d announcements", got)
	}
	// Next interval doubles to 10 s.
	a.Step(clk.Advance(8 * time.Second))
	if got := logA.count(EventAnnounceSent); got != 2 {
		t.Fatalf("after 8 more seconds: %d", got)
	}
	a.Step(clk.Advance(3 * time.Second))
	if got := logA.count(EventAnnounceSent); got != 3 {
		t.Fatalf("after 11 more seconds: %d", got)
	}
}

func TestDirectoryClashResolutionRecentMoves(t *testing.T) {
	bus := transport.NewBus()
	clk := newFakeClock()
	logA, logB := &eventLog{}, &eventLog{}
	a, epA := newDirectory(t, bus, clk, "10.0.0.1", 2, 6, logA)
	b, epB := newDirectory(t, bus, clk, "10.0.0.2", 2, 7, logB)
	defer a.Close()
	defer b.Close()

	// Partition the bus: nothing is delivered.
	bus.SetPolicy(func(from, to int, _ mcast.TTL) bool { return false })
	_ = epA
	_ = epB

	// B announces first (long-standing); A announces 60 s later (recent).
	descB, err := b.CreateSession(testDesc("old", 127))
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(60 * time.Second)
	descA, err := a.CreateSession(testDesc("new", 127))
	if err != nil {
		t.Fatal(err)
	}
	if descA.Group != descB.Group {
		t.Fatalf("test setup: expected identical allocations in partition, got %s vs %s",
			descA.Group, descB.Group)
	}

	// Heal the partition; drive A past its back-off so it re-announces.
	bus.SetPolicy(nil)
	a.Step(clk.Advance(6 * time.Second))
	// Chain (synchronous bus): A re-announces → B defends (phase 1) →
	// A hears the defense, is recent (announced 6 s ago) → moves (phase 2).

	if got := logB.count(EventDefendedOwn); got != 1 {
		t.Fatalf("B defend events = %d", got)
	}
	if got := logA.count(EventAddressChanged); got != 1 {
		t.Fatalf("A move events = %d", got)
	}
	newA := a.OwnSessions()[0]
	curB := b.OwnSessions()[0]
	if newA.Group == curB.Group {
		t.Fatalf("clash not resolved: both at %s", newA.Group)
	}
	if curB.Group != descB.Group {
		t.Fatalf("long-standing session moved from %s to %s", descB.Group, curB.Group)
	}
	if newA.Version != descA.Version+1 {
		t.Fatalf("moved session version %d, want %d", newA.Version, descA.Version+1)
	}
}

func TestDirectoryThirdPartyDefense(t *testing.T) {
	bus := transport.NewBus()
	clk := newFakeClock()
	logB, logC := &eventLog{}, &eventLog{}
	a, epA := newDirectory(t, bus, clk, "10.0.0.1", 2, 8, nil)
	b, _ := newDirectory(t, bus, clk, "10.0.0.2", 2, 9, logB)
	c, epC := newDirectory(t, bus, clk, "10.0.0.3", 2, 10, logC)
	defer a.Close()
	defer b.Close()
	defer c.Close()

	// Phase 1: A's announcement reaches only C (B is partitioned off).
	bus.SetPolicy(func(from, to int, _ mcast.TTL) bool {
		return from == epA.ID() && to == epC.ID()
	})
	descA, err := a.CreateSession(testDesc("orphan", 127))
	if err != nil {
		t.Fatal(err)
	}
	// A crashes: no more announcements or defenses from it.
	a.Close()

	// Phase 2: B comes up, can't see anyone, allocates the same address.
	clk.Advance(10 * time.Minute)
	descB, err := b.CreateSession(testDesc("squatter", 127))
	if err != nil {
		t.Fatal(err)
	}
	if descB.Group != descA.Group {
		t.Fatalf("test setup: wanted a squat, got %s vs %s", descB.Group, descA.Group)
	}

	// Phase 3: heal everything except A (still down). B re-announces; C
	// sees the clash with its cached copy of A's session and schedules a
	// third-party defense (uniform delay ≈1 s in this config).
	bus.SetPolicy(nil)
	b.Step(clk.Advance(6 * time.Second)) // B's 5 s back-off fires
	if got := logC.count(EventDefendedOther); got != 0 {
		t.Fatalf("C defended before its delay: %d", got)
	}
	c.Step(clk.Advance(2 * time.Second)) // past C's ~1 s defense delay
	if got := logC.count(EventDefendedOther); got != 1 {
		t.Fatalf("C defense events = %d", got)
	}
	// C's defense re-announced A's session; B (recent) must have moved.
	if got := logB.count(EventAddressChanged); got != 1 {
		t.Fatalf("B move events = %d", got)
	}
	if b.OwnSessions()[0].Group == descA.Group {
		t.Fatal("B still squatting on A's address")
	}
}

func TestDirectoryWithdraw(t *testing.T) {
	bus := transport.NewBus()
	clk := newFakeClock()
	logB := &eventLog{}
	a, _ := newDirectory(t, bus, clk, "10.0.0.1", 64, 11, nil)
	b, _ := newDirectory(t, bus, clk, "10.0.0.2", 64, 12, logB)
	defer a.Close()
	defer b.Close()

	desc, err := a.CreateSession(testDesc("temp", 63))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Sessions()) != 1 {
		t.Fatal("B missed the announcement")
	}
	if err := a.WithdrawSession(desc.Key()); err != nil {
		t.Fatal(err)
	}
	if len(b.Sessions()) != 0 {
		t.Fatalf("B still lists %v after deletion", b.Sessions())
	}
	if len(a.OwnSessions()) != 0 {
		t.Fatal("A still owns the withdrawn session")
	}
	if err := a.WithdrawSession("not-ours"); err == nil {
		t.Fatal("withdrawing an unknown session succeeded")
	}
}

func TestDirectoryCacheExpiry(t *testing.T) {
	bus := transport.NewBus()
	clk := newFakeClock()
	logB := &eventLog{}
	ep := bus.Endpoint()
	b, err := New(Config{
		Origin:       netip.MustParseAddr("10.0.0.2"),
		Transport:    ep,
		Space:        mcast.SyntheticSpace(64),
		Clock:        clk.Now,
		CacheTimeout: 10 * time.Minute,
		OnEvent:      logB.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, _ := newDirectory(t, bus, clk, "10.0.0.1", 64, 13, nil)
	defer a.Close()

	if _, err := a.CreateSession(testDesc("fading", 63)); err != nil {
		t.Fatal(err)
	}
	if len(b.Sessions()) != 1 {
		t.Fatal("not learned")
	}
	a.Close() // A stops re-announcing.
	b.Step(clk.Advance(11 * time.Minute))
	if len(b.Sessions()) != 0 {
		t.Fatalf("stale session survived expiry: %v", b.Sessions())
	}
	if logB.count(EventSessionExpired) != 1 {
		t.Fatalf("expiry events = %d", logB.count(EventSessionExpired))
	}
}

func TestDirectoryClosedRefusesWork(t *testing.T) {
	bus := transport.NewBus()
	clk := newFakeClock()
	a, _ := newDirectory(t, bus, clk, "10.0.0.1", 64, 14, nil)
	a.Close()
	if _, err := a.CreateSession(testDesc("late", 63)); err == nil {
		t.Fatal("closed directory created a session")
	}
}

func TestEventKindString(t *testing.T) {
	kinds := []EventKind{
		EventAnnounceSent, EventSessionLearned, EventSessionExpired,
		EventAddressChanged, EventDefendedOwn, EventDefendedOther, EventDeleteSent,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("bad name for %d: %q", int(k), s)
		}
		seen[s] = true
	}
	if EventKind(99).String() != "EventKind(99)" {
		t.Fatal("unknown kind")
	}
}
