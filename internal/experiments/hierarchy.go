package experiments

import (
	"fmt"
	"io"

	"sessiondir/internal/prefix"
)

// RunHierarchy runs the §4.1 extension experiment: flat global allocation
// versus the two-layer prefix scheme, sweeping space sizes. The paper's
// argument is qualitative — prefixes change slowly (tiny collision
// window) and usage announcements stay regional (smaller invisible
// fraction) — so the harness quantifies exactly those two effects.
func RunHierarchy(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "# §4.1: flat vs hierarchical (prefix + regional) allocation")
	fmt.Fprintln(w, "# invisible fractions: flat i=0.02 (one global channel),")
	fmt.Fprintln(w, "# regional i=0.0005 (frequent local announcements), prefix i=0.001")
	regions := 8
	for _, space := range []uint32{1024, 2048, 4096} {
		res, err := prefix.RunExperiment(prefix.ExperimentConfig{
			SpaceSize:         space,
			BlockSize:         space / 32,
			Regions:           regions,
			SessionsPerRegion: int(space) / 16, // ~50% occupancy overall
			Churns:            s.Fig12Reps * 10,
			InvisibleFlat:     0.02,
			InvisibleLocal:    0.0005,
			InvisiblePrefix:   0.001,
			ListenTicks:       3,
			Seed:              s.Seed,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "## space=%d, %d regions\n%s\n", space, regions, res)
	}
	return nil
}
