package experiments

import (
	"fmt"
	"io"

	"sessiondir/internal/allocator"
	"sessiondir/internal/mcast"
	"sessiondir/internal/sim"
	"sessiondir/internal/stats"
	"sessiondir/internal/topology"
)

// RunAdminScope quantifies the paper's §1 remark that "the simpler
// solutions work well for administrative scope zone address allocation":
// the same informed-random allocator that clashes after ~√n addresses
// under TTL scoping is perfect (zero clashes, full utilisation) under
// administrative scoping, because admin-zone visibility is symmetric.
func RunAdminScope(w io.Writer, s Scale) error {
	g, err := mbone(s)
	if err != nil {
		return err
	}
	zones, err := topology.ZonesFromCountries(g)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# §1 contrast: IR under admin scoping vs TTL scoping (%d zones)\n", len(zones))
	fmt.Fprintln(w, "# space   ttl_allocs_before_clash   admin_allocs   admin_clashes")
	rng := stats.NewRNG(s.Seed)
	for _, space := range s.Fig5Spaces {
		var ttl stats.Summary
		for trial := 0; trial < s.Fig5Trials; trial++ {
			w2 := sim.NewWorld(g)
			res := sim.FillUntilClash(w2, sim.FillConfig{
				Alloc: allocator.NewInformedRandom(space),
				Dist:  mcast.DS4(),
			}, rng.Split())
			ttl.Add(float64(res.Allocations))
		}
		admin := sim.FillAdminZones(zones, func() allocator.Allocator {
			return allocator.NewInformedRandom(space)
		}, int(space)*len(zones)*2, rng.Split())
		fmt.Fprintf(w, "%7d   %23.1f   %12d   %13d\n",
			space, ttl.Mean(), admin.Allocations, admin.Clashes)
	}
	fmt.Fprintln(w, "# admin scoping: every zone fills completely, clash-free")
	return nil
}
