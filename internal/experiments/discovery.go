package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"sessiondir"
	"sessiondir/internal/announce"
	"sessiondir/internal/des"
	"sessiondir/internal/session"
	"sessiondir/internal/stats"
	"sessiondir/internal/topology"
)

// RunDiscovery measures, at the packet level through the real directory
// stack, the mean session discovery delay under loss for different
// announcement schedules — the quantity §2.3 reduces to the invisible
// fraction i and §4 requires to be driven down with a 5 s-start
// exponential back-off. The measured means are printed next to the
// analytic model's prediction.
func RunDiscovery(w io.Writer, s Scale) error {
	g, err := topology.GenerateMbone(topology.MboneConfig{Nodes: 300}, stats.NewRNG(s.Seed))
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# discovery delay vs loss and announcement schedule (packet-level DES)")
	fmt.Fprintln(w, "# schedule        loss   measured_mean   analytic_mean   learned")

	schedules := []struct {
		name string
		b    announce.Backoff
	}{
		{"constant 60s", announce.Backoff{Initial: 60 * time.Second, Factor: 1, Steady: 60 * time.Second}},
		{"exp 5s->60s", announce.DefaultBackoff(60 * time.Second)},
	}
	const listeners = 12
	trials := s.RRTrials
	if trials < 1 {
		trials = 1
	}

	for _, sched := range schedules {
		for _, loss := range []float64{0, 0.05, 0.2} {
			var delays stats.Summary
			learned := 0
			for trial := 0; trial < trials; trial++ {
				engine := des.NewEngine(time.Date(1998, 9, 1, 12, 0, 0, 0, time.UTC))
				net, err := des.NewNet(engine, des.NetConfig{
					Graph: g,
					Loss:  loss,
					Seed:  s.Seed + uint64(trial)*101,
				})
				if err != nil {
					return err
				}
				rng := stats.NewRNG(s.Seed + uint64(trial))
				perm := rng.Perm(g.NumNodes())
				nodes := make([]topology.NodeID, listeners+1)
				for i := range nodes {
					nodes[i] = topology.NodeID(perm[i])
				}
				learnedAt := make(map[int]time.Time)
				var createdAt time.Time
				fleet, err := des.NewFleet(engine, net, des.FleetConfig{
					Nodes:   nodes,
					Space:   128,
					Backoff: sched.b,
					Seed:    s.Seed + uint64(trial)*13,
					OnEvent: func(idx int, e sessiondir.Event) {
						if idx > 0 && e.Kind == sessiondir.EventSessionLearned {
							if _, dup := learnedAt[idx]; !dup {
								learnedAt[idx] = engine.Now()
							}
						}
					},
				})
				if err != nil {
					return err
				}
				createdAt = engine.Now()
				if _, err := fleet.Dirs[0].CreateSession(&session.Description{
					Name:  "probe",
					TTL:   191,
					Media: []session.Media{{Type: "audio", Port: 20000, Proto: "RTP/AVP", Format: "0"}},
				}); err != nil {
					return err
				}
				engine.RunFor(10 * time.Minute)
				// Fold delays in listener order: float accumulation is not
				// associative, so summing in map order would make the mean
				// differ run to run.
				idxs := make([]int, 0, len(learnedAt))
				for idx := range learnedAt {
					idxs = append(idxs, idx)
				}
				sort.Ints(idxs)
				for _, idx := range idxs {
					delays.Add(learnedAt[idx].Sub(createdAt).Seconds())
					learned++
				}
				fleet.Close()
			}
			// Analytic: mean of first-delivery time under the schedule with
			// network delay ≈ mean root delay of the topology.
			analyticMean := sched.b.MeanDiscoveryDelay(loss, 0.05)
			fmt.Fprintf(w, "%-15s %5.0f%%   %10.2fs   %12.2fs   %d/%d\n",
				sched.name, loss*100, delays.Mean(), analyticMean,
				learned, listeners*trials)
		}
	}
	fmt.Fprintln(w, "# the exponential schedule keeps discovery fast even at high loss (§4)")
	return nil
}
