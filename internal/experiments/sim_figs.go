package experiments

import (
	"fmt"
	"io"

	"sessiondir/internal/allocator"
	"sessiondir/internal/mcast"
	"sessiondir/internal/sim"
	"sessiondir/internal/topology"
)

// fig5Algorithms returns the four Figure-5 algorithm factories.
func fig5Algorithms() []struct {
	Name string
	Make func(size uint32) allocator.Allocator
} {
	return []struct {
		Name string
		Make func(size uint32) allocator.Allocator
	}{
		{"R", func(size uint32) allocator.Allocator { return allocator.NewRandom(size) }},
		{"IR", func(size uint32) allocator.Allocator { return allocator.NewInformedRandom(size) }},
		{"IPR 3-band", func(size uint32) allocator.Allocator {
			return allocator.NewStaticPartitioned(size, allocator.IPR3Separators())
		}},
		{"IPR 7-band", func(size uint32) allocator.Allocator {
			return allocator.NewStaticPartitioned(size, allocator.IPR7Separators())
		}},
	}
}

// fig12Algorithms returns the seven Figure-12 algorithm factories.
func fig12Algorithms() []struct {
	Name string
	Make func(size uint32) allocator.Allocator
} {
	mkAdaptive := func(gap float64, name string) func(uint32) allocator.Allocator {
		return func(size uint32) allocator.Allocator {
			return allocator.NewAdaptive(size, allocator.AdaptiveConfig{GapFraction: gap, Name: name})
		}
	}
	return []struct {
		Name string
		Make func(size uint32) allocator.Allocator
	}{
		{"AIPR-1 (20% gap)", mkAdaptive(0.2, "AIPR-1 (20% gap)")},
		{"AIPR-2 (50% gap)", mkAdaptive(0.5, "AIPR-2 (50% gap)")},
		{"AIPR-3 (60% gap)", mkAdaptive(0.6, "AIPR-3 (60% gap)")},
		{"AIPR-4 (70% gap)", mkAdaptive(0.7, "AIPR-4 (70% gap)")},
		{"AIPR-H (hybrid)", func(size uint32) allocator.Allocator { return allocator.NewHybrid(size) }},
		{"IPR 3-band", func(size uint32) allocator.Allocator {
			return allocator.NewStaticPartitioned(size, allocator.IPR3Separators())
		}},
		{"IPR 7-band", func(size uint32) allocator.Allocator {
			return allocator.NewStaticPartitioned(size, allocator.IPR7Separators())
		}},
	}
}

// RunFig5 regenerates Figure 5: allocations before the first clash for
// R / IR / IPR 3-band / IPR 7-band across the ds1–ds4 TTL workloads on the
// Mbone topology.
func RunFig5(w io.Writer, s Scale) error {
	g, err := mbone(s)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# Figure 5: allocations before clash (Mbone %d nodes, %d trials)\n",
		g.NumNodes(), s.Fig5Trials)
	for _, alg := range fig5Algorithms() {
		pts := sim.RunFig5(sim.Fig5Config{
			Graph:      g,
			SpaceSizes: s.Fig5Spaces,
			Dists:      s.Fig5Dists,
			MakeAlloc:  alg.Make,
			Trials:     s.Fig5Trials,
			Seed:       s.Seed,
			Workers:    s.Workers,
		})
		for _, p := range pts {
			fmt.Fprintln(w, p.String())
		}
	}
	return nil
}

// RunFig10 regenerates Figure 10: the normalised hop-count histograms per
// TTL scope over the Mbone.
func RunFig10(w io.Writer, s Scale) error {
	g, err := mbone(s)
	if err != nil {
		return err
	}
	sources := sampleSources(g, s.HopSources, s.Seed)
	fmt.Fprintf(w, "# Figure 10: hop-count distribution (Mbone %d nodes)\n", g.NumNodes())
	for _, ttl := range []mcast.TTL{15, 47, 63, 127} {
		h := topology.HopHistogram(g, ttl, sources)
		fmt.Fprintf(w, "TTL=%d:", ttl)
		for _, bin := range h.Normalized() {
			fmt.Fprintf(w, " %d:%.3f", bin.Value, bin.Fraction)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// RunTTLTable regenerates the §2.4.1 table: most frequent and maximum hop
// count per TTL scope.
func RunTTLTable(w io.Writer, s Scale) error {
	g, err := mbone(s)
	if err != nil {
		return err
	}
	sources := sampleSources(g, s.HopSources, s.Seed)
	fmt.Fprintln(w, "# §2.4.1 table: hop counts per TTL scope")
	fmt.Fprintln(w, "# TTL  mostfreq  mean   max   usage")
	usage := map[mcast.TTL]string{
		127: "Intercontinental", 63: "International", 47: "National", 16: "Local",
	}
	for _, row := range topology.HopStatsForTTLs(g, []mcast.TTL{127, 63, 47, 16}, sources) {
		fmt.Fprintf(w, "%5d  %8d  %5.1f  %4d  %s\n",
			row.TTL, row.MostFrequentHop, row.MeanHop, row.MaxHop, usage[row.TTL])
	}
	fmt.Fprintf(w, "# network diameter (hops): %d (DVMRP infinity is 32)\n",
		topology.Diameter(g, sources))
	return nil
}

// RunFig12 regenerates Figure 12: steady-state sustainable populations.
func RunFig12(w io.Writer, s Scale) error { return runFig12(w, s, false) }

// RunFig13 regenerates Figure 13: the same-source/same-TTL upper bound.
// The paper plots AIPR-1, AIPR-2 and the two static schemes.
func RunFig13(w io.Writer, s Scale) error { return runFig13(w, s) }

func runFig12(w io.Writer, s Scale, upper bool) error {
	g, err := mbone(s)
	if err != nil {
		return err
	}
	tag := "Figure 12 (steady-state churn)"
	if upper {
		tag = "Figure 13 (upper bound)"
	}
	fmt.Fprintf(w, "# %s: max sessions at ≤50%% clash probability, DS4, %d reps\n", tag, s.Fig12Reps)
	for _, alg := range fig12Algorithms() {
		pts := sim.RunFig12(sim.Fig12Config{
			Graph:      g,
			SpaceSizes: s.Fig12Spaces,
			MakeAlloc:  alg.Make,
			Dist:       mcast.DS4(),
			Reps:       s.Fig12Reps,
			UpperBound: upper,
			Seed:       s.Seed,
			Workers:    s.Workers,
		})
		for _, p := range pts {
			fmt.Fprintln(w, p.String())
		}
	}
	return nil
}

func runFig13(w io.Writer, s Scale) error {
	g, err := mbone(s)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# Figure 13 (upper bound): max sessions at ≤50%% clash probability, DS4, %d reps\n", s.Fig12Reps)
	algs := fig12Algorithms()
	selected := []string{"AIPR-1 (20% gap)", "AIPR-2 (50% gap)", "IPR 3-band", "IPR 7-band"}
	for _, alg := range algs {
		keep := false
		for _, name := range selected {
			if alg.Name == name {
				keep = true
			}
		}
		if !keep {
			continue
		}
		pts := sim.RunFig12(sim.Fig12Config{
			Graph:      g,
			SpaceSizes: s.Fig12Spaces,
			MakeAlloc:  alg.Make,
			Dist:       mcast.DS4(),
			Reps:       s.Fig12Reps,
			UpperBound: true,
			Seed:       s.Seed,
			Workers:    s.Workers,
		})
		for _, p := range pts {
			fmt.Fprintln(w, p.String())
		}
	}
	return nil
}

// RunFig15 regenerates Figure 15: simulated responder counts for the four
// routing/jitter variants (A: SPT, delay≈distance; B: shared; C: SPT +
// jitter; D: shared + jitter) across group sizes and D2 windows.
func RunFig15(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "# Figure 15: simulated request-response responders (uniform delay)")
	variants := []struct {
		label  string
		mode   sim.TreeMode
		jitter bool
	}{
		{"A: spt,   delay~distance", sim.ShortestPathTree, false},
		{"B: shared, delay~distance", sim.SharedTree, false},
		{"C: spt,   distance+random", sim.ShortestPathTree, true},
		{"D: shared, distance+random", sim.SharedTree, true},
	}
	for _, v := range variants {
		fmt.Fprintf(w, "## %s\n", v.label)
		pts, err := sim.RunFig15(sim.Fig15Config{
			GroupSizes: s.RRGroupSizes,
			D2Millis:   s.RRD2Millis,
			Mode:       v.mode,
			Jitter:     v.jitter,
			Trials:     s.RRTrials,
			Seed:       s.Seed,
		})
		if err != nil {
			return err
		}
		for _, p := range pts {
			fmt.Fprintln(w, p.String())
		}
	}
	return nil
}

// RunFig16 regenerates Figure 16: the delay before the first response for
// the Figure-15 variant A (shortest path trees, delay ≈ distance).
func RunFig16(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "# Figure 16: first-response delay (spt, uniform delay)")
	pts, err := sim.RunFig15(sim.Fig15Config{
		GroupSizes: s.RRGroupSizes,
		D2Millis:   s.RRD2Millis,
		Mode:       sim.ShortestPathTree,
		Trials:     s.RRTrials,
		Seed:       s.Seed,
	})
	if err != nil {
		return err
	}
	for _, p := range pts {
		fmt.Fprintf(w, "D2=%-10.0f n=%-6d mean_first=%9.1fms max_first=%9.1fms\n",
			p.D2Millis, p.GroupSize, p.MeanFirstMs, p.MaxFirstMs)
	}
	return nil
}

// RunFig19 regenerates Figure 19: mean responses vs mean first-response
// delay for uniform and exponential random delays, one curve per D2.
func RunFig19(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "# Figure 19: responses vs first-response delay")
	for _, exp := range []bool{false, true} {
		label := "uniform"
		if exp {
			label = "exponential"
		}
		fmt.Fprintf(w, "## %s random delay\n", label)
		pts, err := sim.RunFig15(sim.Fig15Config{
			GroupSizes: s.RRGroupSizes,
			D2Millis:   s.RRD2Millis,
			Mode:       sim.SharedTree,
			Exp:        exp,
			Trials:     s.RRTrials,
			Seed:       s.Seed,
		})
		if err != nil {
			return err
		}
		for _, p := range pts {
			fmt.Fprintf(w, "D2=%-10.0f n=%-6d responses=%8.2f first=%8.3fs\n",
				p.D2Millis, p.GroupSize, p.MeanResponses, p.MeanFirstMs/1000)
		}
	}
	return nil
}
