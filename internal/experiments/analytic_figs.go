package experiments

import (
	"fmt"
	"io"

	"sessiondir/internal/allocator"
	"sessiondir/internal/analytic"
	"sessiondir/internal/mcast"
	"sessiondir/internal/stats"
)

// RunFig1 prints the IPRMA partition probability-density illustration of
// Figures 1–2: which slice of the address space each TTL range draws from.
func RunFig1(w io.Writer, _ Scale) error {
	p := allocator.NewStaticPartitioned(600, []mcast.TTL{16, 32, 48, 64, 128})
	fmt.Fprintln(w, "# Figure 1/2: address ranges per TTL band (IPR 6-band illustration)")
	ranges := []struct {
		label string
		ttl   mcast.TTL
	}{
		{"1-15", 8}, {"15-31", 24}, {"32-47", 40}, {"47-63", 56}, {"64-127", 96}, {"127-255", 200},
	}
	for _, r := range ranges {
		b := p.BandOf(r.ttl)
		start, width := p.BandRange(b)
		fmt.Fprintf(w, "ttl range %-8s -> band %d, addresses [%4d, %4d)  p(addr)=1/%d inside, 0 outside\n",
			r.label, b, start, start+width, width)
	}
	return nil
}

// RunFig4 prints the birthday-problem curve of Figure 4 and its
// Monte-Carlo overlay.
func RunFig4(w io.Writer, s Scale) error {
	const space = 10000
	fmt.Fprintln(w, "# Figure 4: clash probability, random allocation from a space of 10000")
	fmt.Fprintln(w, "# allocated  p(clash)  p(MC)")
	rng := stats.NewRNG(s.Seed)
	for k := 0; k <= 400; k += 50 {
		closed := analytic.BirthdayClashProbability(space, k)
		mc := monteCarloBirthday(space, k, 400, rng)
		fmt.Fprintf(w, "%9d  %8.4f  %6.3f\n", k, closed, mc)
	}
	fmt.Fprintf(w, "# median (p=0.5) at %d allocations; sqrt(space)=100\n",
		analytic.BirthdayMedian(space))
	return nil
}

func monteCarloBirthday(space, k, trials int, rng *stats.RNG) float64 {
	if k <= 1 {
		return 0
	}
	clashes := 0
	seen := make(map[int]bool, k)
	for t := 0; t < trials; t++ {
		clear(seen)
		for j := 0; j < k; j++ {
			a := rng.IntN(space)
			if seen[a] {
				clashes++
				break
			}
			seen[a] = true
		}
	}
	return float64(clashes) / float64(trials)
}

// RunFig6 prints Equation 1's packing curves (Figure 6).
func RunFig6(w io.Writer, _ Scale) error {
	fmt.Fprintln(w, "# Figure 6: allocations in one partition at 50% clash probability")
	fmt.Fprintln(w, "# space      i=0.01m   i=0.001m  i=0.0001m i=0.00001m  (bounds: sqrt(n)..n)")
	for _, n := range []int{100, 1000, 10000, 100000, 1000000} {
		fmt.Fprintf(w, "%8d", n)
		for _, f := range analytic.Figure6InvisibleFractions() {
			fmt.Fprintf(w, "  %9d", analytic.AllocationsAtHalf(n, f))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "# paper anchor: space 8192, i=0.001m → 8 partitions sustain ≈16496 sessions")
	m := analytic.AllocationsAtHalf(8192, 0.001)
	fmt.Fprintf(w, "# measured: 8 × %d = %d\n", m, 8*m)
	return nil
}

// RunFig8 prints the Figure-8 illustration: the deterministic adaptive
// IPRMA band layout as computed by two sites with views that agree above
// TTL t but differ below.
func RunFig8(w io.Writer, s Scale) error {
	a := allocator.NewAdaptive(1000, allocator.AdaptiveConfig{GapFraction: 0.2})
	rng := stats.NewRNG(s.Seed)
	d := mcast.DS4()
	var shared, siteA, siteB []allocator.SessionInfo
	for i := 0; i < 120; i++ {
		ttl := d.Sample(rng.IntN)
		info := allocator.SessionInfo{Addr: mcast.Addr(rng.IntN(1000)), TTL: ttl}
		switch {
		case ttl >= 48:
			shared = append(shared, info)
		case rng.Bool(0.5):
			siteA = append(siteA, info)
		default:
			siteB = append(siteB, info)
		}
	}
	print := func(label string, view []allocator.SessionInfo) {
		fmt.Fprintf(w, "# %s (%d sessions visible)\n", label, len(view))
		for _, b := range a.Layout(view) {
			if b.Count == 0 {
				continue
			}
			fmt.Fprintf(w, "  band lowTTL=%-3d [%4d, %4d) sessions=%d\n",
				b.Low, b.Start, b.Start+b.Width, b.Count)
		}
	}
	fmt.Fprintln(w, "# Figure 8: DAIPR band layouts at two sites (t = 48)")
	print("site A", append(append([]allocator.SessionInfo{}, shared...), siteA...))
	print("site B", append(append([]allocator.SessionInfo{}, shared...), siteB...))
	fmt.Fprintln(w, "# bands with TTL >= 48 coincide at both sites (determinism property)")
	return nil
}

// RunFig11 prints the TTL→partition mapping of Figure 11.
func RunFig11(w io.Writer, _ Scale) error {
	fmt.Fprintln(w, "# Figure 11: TTL value → partition number (margin of safety 2)")
	pm := allocator.NewPartitionMap(2)
	fmt.Fprintf(w, "# %d partitions\n", pm.NumClasses())
	step := 0
	for t := 0; t <= 255; t += 5 {
		fmt.Fprintf(w, "ttl %3d -> partition %2d\n", t, pm.ClassOf(mcast.TTL(t)))
		step++
	}
	return nil
}

// RunFig14 prints the Equation-2 responder surface (Figure 14).
func RunFig14(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "# Figure 14: expected responders, uniform delay buckets (R = 200 ms)")
	return printResponderSurface(w, s, "uniform")
}

// RunFig18 prints the Equation-4 responder surface (Figure 18).
func RunFig18(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "# Figure 18: expected responders, exponential delay buckets (R = 200 ms)")
	if err := printResponderSurface(w, s, "exp"); err != nil {
		return err
	}
	fmt.Fprintf(w, "# limit for large d: %.6f responses (paper: 1.442698)\n",
		analytic.ExpRespondersLimit)
	return nil
}

func printResponderSurface(w io.Writer, s Scale, dist string) error {
	fmt.Fprintf(w, "# %-10s", "D2(ms)")
	for _, n := range s.RespReceivers {
		fmt.Fprintf(w, " n=%-8d", n)
	}
	fmt.Fprintln(w)
	pts := analytic.ResponderSurface(s.RespD2Millis, s.RespReceivers, 200, dist)
	i := 0
	for _, d2 := range s.RespD2Millis {
		fmt.Fprintf(w, "%-12.0f", d2)
		for range s.RespReceivers {
			fmt.Fprintf(w, " %-10.2f", pts[i].Expected)
			i++
		}
		fmt.Fprintln(w)
	}
	return nil
}
