package experiments

import (
	"fmt"
	"io"

	"sessiondir/internal/clash"
	"sessiondir/internal/sim"
	"sessiondir/internal/stats"
	"sessiondir/internal/topology"
)

// RunStrategies compares the §3.1 responder-selection strategies at one
// group size: plain uniform, exponential, announcers-first two-tier
// (uniform within each tier), and deterministic ranking. The paper's
// conclusion — "for this application, the [exponential] approach yields
// the best results" given the unknown receiver set — is checked against
// ranking's ideal single response (which needs rank agreement) and the
// two-tier variant (which needs knowing who announces).
func RunStrategies(w io.Writer, s Scale) error {
	groupSize := s.RRGroupSizes[len(s.RRGroupSizes)-1]
	root := stats.NewRNG(s.Seed)
	g, err := topology.GenerateGrid(topology.GridConfig{
		Nodes:          groupSize,
		RedundantLinks: true,
	}, root.Split())
	if err != nil {
		return err
	}
	members := make([]topology.NodeID, g.NumNodes())
	for i := range members {
		members[i] = topology.NodeID(i)
	}
	const d2 = 3200.0
	const rtt = 200.0

	// Announcer set for the two-tier strategy: 10% of sites.
	isAnnouncer := make(map[topology.NodeID]bool)
	for _, n := range members {
		if root.Bool(0.1) {
			isAnnouncer[n] = true
		}
	}
	uniform := clash.NewUniformDelay(0, d2)
	lateTier := clash.NewOffsetDelay(uniform, d2)
	rankOf := make(map[topology.NodeID]int, len(members))
	for i, n := range members {
		rankOf[n] = i // origin-address ordering in a real deployment
	}

	strategies := []struct {
		name string
		cfg  func(c *sim.ReqRespConfig)
	}{
		{"uniform", func(c *sim.ReqRespConfig) {
			c.Delay = uniform
		}},
		{"exponential", func(c *sim.ReqRespConfig) {
			c.Delay = clash.NewExponentialDelay(0, d2, rtt)
		}},
		{"two-tier announcers", func(c *sim.ReqRespConfig) {
			c.Delay = lateTier
			c.DelayFor = func(n topology.NodeID) clash.DelayDist {
				if isAnnouncer[n] {
					return uniform
				}
				return nil // fall back to the late tier
			}
		}},
		{"ranked", func(c *sim.ReqRespConfig) {
			c.Delay = uniform // unused; every member gets a ranked dist
			c.DelayFor = func(n topology.NodeID) clash.DelayDist {
				return clash.NewRankedDelay(0, rtt, rankOf[n])
			}
		}},
	}

	fmt.Fprintf(w, "# §3.1 responder strategies (n=%d, D2=%.0f ms, %d trials)\n",
		groupSize, d2, s.RRTrials)
	fmt.Fprintln(w, "# strategy              responses   first_response")
	for _, st := range strategies {
		var responses, first stats.Summary
		for trial := 0; trial < s.RRTrials; trial++ {
			rng := root.Split()
			cfg := sim.ReqRespConfig{
				Graph:     g,
				Mode:      sim.SharedTree,
				Requester: topology.NodeID(rng.IntN(g.NumNodes())),
				Members:   members,
			}
			st.cfg(&cfg)
			r := sim.RunReqResp(cfg, rng)
			responses.Add(float64(r.Responses))
			if r.FirstArrivalAt >= 0 {
				first.Add(r.FirstArrivalAt)
			}
		}
		fmt.Fprintf(w, "%-22s %9.2f   %11.1fms\n", st.name, responses.Mean(), first.Mean())
	}
	fmt.Fprintln(w, "# ranking reaches ~1 response but requires agreed ranks; the")
	fmt.Fprintln(w, "# exponential distribution needs no shared knowledge at all (§3.1)")
	return nil
}
