package experiments

import (
	"fmt"
	"io"

	"sessiondir/internal/allocator"
	"sessiondir/internal/mcast"
	"sessiondir/internal/sim"
)

// RunClustering tests the paper's §2.6 postulate: the steady-state
// simulation's fully random churn (origins and TTLs redrawn every
// replacement) exaggerates the variation adaptive schemes must absorb; in
// reality communities keep using the same scope from the same place, so
// smaller inter-band gaps should suffice. The experiment reruns the
// Figure-12 measurement under a community-structured workload and
// compares sustained session counts per gap fraction.
func RunClustering(w io.Writer, s Scale) error {
	g, err := mbone(s)
	if err != nil {
		return err
	}
	comms, err := sim.CommunitiesFromCountries(g)
	if err != nil {
		return err
	}
	cw, err := sim.NewCommunityWorkload(comms)
	if err != nil {
		return err
	}
	space := s.Fig12Spaces[len(s.Fig12Spaces)-1]
	fmt.Fprintf(w, "# §2.6 clustering postulate: sustained sessions at ≤50%% clash probability\n")
	fmt.Fprintf(w, "# space=%d, %d communities, %d reps\n", space, len(comms), s.Fig12Reps)
	fmt.Fprintln(w, "# gap    random_churn   community_churn")
	for _, gap := range []float64{0.2, 0.6} {
		gap := gap
		mk := func(size uint32) allocator.Allocator {
			return allocator.NewAdaptive(size, allocator.AdaptiveConfig{
				GapFraction: gap,
				Name:        fmt.Sprintf("AIPR gap=%.0f%%", gap*100),
			})
		}
		random := sim.RunFig12(sim.Fig12Config{
			Graph: g, SpaceSizes: []uint32{space}, MakeAlloc: mk,
			Dist: mcast.DS4(), Reps: s.Fig12Reps, Seed: s.Seed, Workers: s.Workers,
		})
		clustered := sim.RunFig12(sim.Fig12Config{
			Graph: g, SpaceSizes: []uint32{space}, MakeAlloc: mk,
			Dist: mcast.DS4(), Reps: s.Fig12Reps, Workload: cw, Seed: s.Seed, Workers: s.Workers,
		})
		fmt.Fprintf(w, "%4.0f%%   %12d   %15d\n",
			gap*100, random[0].MaxAllocs, clustered[0].MaxAllocs)
	}
	fmt.Fprintln(w, "# stable communities reduce the variation the gaps must absorb (§2.6)")
	return nil
}
