package experiments

import (
	"fmt"
	"io"
	"time"

	"sessiondir/internal/allocator"
	"sessiondir/internal/analytic"
	"sessiondir/internal/announce"
	"sessiondir/internal/mcast"
	"sessiondir/internal/sim"
)

// RunAblations measures the design choices DESIGN.md calls out:
//
//   - the inter-band gap fraction (the AIPR-1..4 sweep, extended);
//   - the 67% target band occupancy;
//   - the partition-map margin of safety;
//   - the announcement back-off schedule's effect on the invisible
//     fraction i, and through Equation 1 on address-space packing.
func RunAblations(w io.Writer, s Scale) error {
	g, err := mbone(s)
	if err != nil {
		return err
	}
	space := s.Fig12Spaces[len(s.Fig12Spaces)-1]

	fmt.Fprintln(w, "# Ablation 1: inter-band gap fraction (steady-state max sessions)")
	for _, gap := range []float64{0.0, 0.2, 0.4, 0.6, 0.8} {
		gap := gap
		pts := sim.RunFig12(sim.Fig12Config{
			Graph:      g,
			SpaceSizes: []uint32{space},
			MakeAlloc: func(size uint32) allocator.Allocator {
				return allocator.NewAdaptive(size, allocator.AdaptiveConfig{
					GapFraction: gap,
					Name:        fmt.Sprintf("AIPR gap=%.0f%%", gap*100),
				})
			},
			Dist:    mcast.DS4(),
			Reps:    s.Fig12Reps,
			Workers: s.Workers,
			Seed:    s.Seed,
		})
		fmt.Fprintf(w, "gap=%.0f%%  space=%d  max_allocs=%d\n", gap*100, space, pts[0].MaxAllocs)
	}

	fmt.Fprintln(w, "# Ablation 2: target band occupancy")
	for _, occ := range []float64{0.5, 0.67, 0.85, 0.99} {
		occ := occ
		pts := sim.RunFig12(sim.Fig12Config{
			Graph:      g,
			SpaceSizes: []uint32{space},
			MakeAlloc: func(size uint32) allocator.Allocator {
				return allocator.NewAdaptive(size, allocator.AdaptiveConfig{
					GapFraction:     0.2,
					TargetOccupancy: occ,
					Name:            fmt.Sprintf("AIPR occ=%.0f%%", occ*100),
				})
			},
			Dist:    mcast.DS4(),
			Reps:    s.Fig12Reps,
			Workers: s.Workers,
			Seed:    s.Seed,
		})
		fmt.Fprintf(w, "occupancy=%.0f%%  space=%d  max_allocs=%d\n", occ*100, space, pts[0].MaxAllocs)
	}

	fmt.Fprintln(w, "# Ablation 3: partition-map margin of safety")
	for _, margin := range []int{1, 2, 4} {
		margin := margin
		pts := sim.RunFig12(sim.Fig12Config{
			Graph:      g,
			SpaceSizes: []uint32{space},
			MakeAlloc: func(size uint32) allocator.Allocator {
				return allocator.NewAdaptive(size, allocator.AdaptiveConfig{
					GapFraction: 0.2,
					Margin:      margin,
					Name:        fmt.Sprintf("AIPR margin=%d", margin),
				})
			},
			Dist:    mcast.DS4(),
			Reps:    s.Fig12Reps,
			Workers: s.Workers,
			Seed:    s.Seed,
		})
		fmt.Fprintf(w, "margin=%d (%d partitions)  space=%d  max_allocs=%d\n",
			margin, analytic.PartitionCount(margin), space, pts[0].MaxAllocs)
	}

	fmt.Fprintln(w, "# Ablation 4: announcement schedule → invisible fraction → packing")
	fmt.Fprintln(w, "# schedule           mean_discovery  i(4h life)   allocs@50% (space 8192)")
	schedules := []struct {
		name string
		b    announce.Backoff
	}{
		{"constant 10min", announce.Backoff{Initial: 600 * time.Second, Factor: 1, Steady: 600 * time.Second}},
		{"constant 60s", announce.Backoff{Initial: 60 * time.Second, Factor: 1, Steady: 60 * time.Second}},
		{"exp 5s->10min", announce.DefaultBackoff(600 * time.Second)},
		{"exp 5s->300s", announce.DefaultBackoff(300 * time.Second)},
	}
	for _, sch := range schedules {
		delay := sch.b.MeanDiscoveryDelay(0.02, 0.2)
		i := analytic.InvisibleFraction(delay, 4*3600)
		m := analytic.AllocationsAtHalf(8192, i)
		fmt.Fprintf(w, "%-20s %10.2fs    %10.6f  %10d\n", sch.name, delay, i, m)
	}
	// The inverse question: to pack 67% of an 8192-address partition, how
	// good must the announcement mechanism be?
	need := analytic.RequiredInvisibleFraction(8192, 8192*2/3)
	fmt.Fprintf(w, "# to sustain 67%% occupancy of 8192 addresses, i must stay below %.6f\n", need)
	return nil
}
