package experiments

import (
	"fmt"
	"io"
	"net/netip"
	"time"

	"sessiondir"
	"sessiondir/internal/clash"
	"sessiondir/internal/des"
	"sessiondir/internal/mcast"
	"sessiondir/internal/session"
	"sessiondir/internal/stats"
	"sessiondir/internal/topology"
)

// RunResolution measures, through the full agent stack under the DES, the
// third-party defense path of the §3 clash protocol: a session's
// originator crashes, a blinded newcomer squats its address, and a crowd
// of observers must push the squatter off — each delaying its defense per
// the chosen distribution and suppressing on hearing another defense.
// The §3 analysis (Figures 14–19) predicts: uniform delays with a short
// window produce a defense implosion that grows with the observer count,
// while the exponential distribution keeps it near one or two at a modest
// delay cost. This experiment checks that prediction end-to-end.
func RunResolution(w io.Writer, s Scale) error {
	g, err := topology.GenerateMbone(topology.MboneConfig{Nodes: 300}, stats.NewRNG(s.Seed))
	if err != nil {
		return err
	}

	dists := []struct {
		name string
		d    clash.DelayDist
	}{
		{"uniform [0,200ms]", clash.NewUniformDelay(0, 200)},
		{"uniform [0,3.2s]", clash.NewUniformDelay(0, 3200)},
		{"exponential [0,3.2s]", clash.NewExponentialDelay(0, 3200, 200)},
	}
	const observers = 12
	trials := s.RRTrials * 3
	if trials < 3 {
		trials = 3
	}

	fmt.Fprintln(w, "# third-party defense: crashed originator, squatted address,")
	fmt.Fprintf(w, "# %d observers, 2%% loss — defenses sent and time to resolution\n", observers)
	fmt.Fprintln(w, "# delay distribution      resolved   mean_defenses   mean_time")
	for _, dd := range dists {
		var defenses, resTime stats.Summary
		resolved := 0
		for trial := 0; trial < trials; trial++ {
			engine := des.NewEngine(time.Date(1998, 9, 1, 12, 0, 0, 0, time.UTC))
			net, err := des.NewNet(engine, des.NetConfig{
				Graph: g,
				Loss:  0.02,
				Seed:  s.Seed + uint64(trial)*31,
			})
			if err != nil {
				return err
			}
			rng := stats.NewRNG(s.Seed + uint64(trial)*7)
			perm := rng.Perm(g.NumNodes())
			nodes := make([]topology.NodeID, observers+1)
			for i := range nodes {
				nodes[i] = topology.NodeID(perm[i])
			}
			defenseCount := 0
			fleet, err := des.NewFleet(engine, net, des.FleetConfig{
				Nodes: nodes, // index 0: the doomed originator
				Space: 2,
				Delay: dd.d,
				Seed:  s.Seed + uint64(trial)*17,
				OnEvent: func(_ int, e sessiondir.Event) {
					if e.Kind == sessiondir.EventDefendedOther {
						defenseCount++
					}
				},
			})
			if err != nil {
				return err
			}
			mk := func(name string) *session.Description {
				return &session.Description{
					Name:  name,
					TTL:   191,
					Media: []session.Media{{Type: "audio", Port: 1000, Proto: "RTP/AVP", Format: "0"}},
				}
			}
			orphan, err := fleet.Dirs[0].CreateSession(mk("orphan"))
			if err != nil {
				return err
			}
			engine.RunFor(30 * time.Second) // observers learn, then A dies
			fleet.Dirs[0].Close()

			// The squatter arrives blind: a fresh directory with an empty
			// cache on a new node.
			sqEp, err := net.Attach(topology.NodeID(perm[observers+1]))
			if err != nil {
				return err
			}
			squatter, err := sessiondir.New(sessiondir.Config{
				Origin:    netip.AddrFrom4([4]byte{10, 99, byte(trial), 1}),
				Transport: sqEp,
				Space:     mcast.SyntheticSpace(2),
				Clock:     engine.Now,
				Seed:      s.Seed + uint64(trial)*113,
				Delay:     dd.d,
			})
			if err != nil {
				return err
			}
			engine.Every(500*time.Millisecond, func() { squatter.Step(engine.Now()) })
			squatDesc, err := squatter.CreateSession(mk("squatter"))
			if err != nil {
				return err
			}
			if squatDesc.Group != orphan.Group {
				// The blind allocation happened to miss; not a useful trial.
				squatter.Close()
				fleet.Close()
				continue
			}
			squatStart := engine.Now()
			deadline := squatStart.Add(5 * time.Minute)
			for engine.Now().Before(deadline) {
				engine.RunFor(250 * time.Millisecond)
				if squatter.OwnSessions()[0].Group != orphan.Group {
					resolved++
					resTime.Add(engine.Now().Sub(squatStart).Seconds())
					break
				}
			}
			defenses.Add(float64(defenseCount))
			squatter.Close()
			fleet.Close()
		}
		fmt.Fprintf(w, "%-24s %4d/%-4d  %12.1f   %8.2fs\n",
			dd.name, resolved, trials, defenses.Mean(), resTime.Mean())
	}
	fmt.Fprintln(w, "# exponential delays defend with ~1 announcement; short uniform windows implode")
	return nil
}
