// Package experiments regenerates every table and figure of the paper's
// evaluation. Each runner prints the same rows/series the paper plots and
// returns machine-readable results where callers need them.
//
// Runners take a Scale: Quick keeps unit tests and benchmarks fast, Full
// reproduces the paper's parameter ranges (hours of CPU, as the paper's
// own simulations were).
package experiments

import (
	"fmt"
	"io"
	"sort"

	"sessiondir/internal/mcast"
	"sessiondir/internal/stats"
	"sessiondir/internal/topology"
)

// Scale bundles the experiment parameter ranges.
type Scale struct {
	Name string

	// Topology.
	MboneNodes int
	HopSources int // sources sampled for Figure 10 (0 = all)

	// Figure 5.
	Fig5Spaces []uint32
	Fig5Trials int
	Fig5Dists  []mcast.TTLDistribution

	// Figures 12–13.
	Fig12Spaces []uint32
	Fig12Reps   int

	// Occupancy sweep (the mcbench -full perf tier): resident-session
	// targets, address space, and churn operations for the
	// directory-scale fill + churn runs (Figures 5/12 shape, but sessions
	// persist past their first clash).
	OccSessions []int
	OccSpace    uint32
	OccChurn    int // 0 = sessions/10
	OccParts    int // session-set partitions (0 = sim default)

	// Figures 14/18 (analytic responder surfaces).
	RespReceivers []int
	RespD2Millis  []float64

	// Figures 15/16/19 (request–response simulations).
	RRGroupSizes []int
	RRD2Millis   []float64
	RRTrials     int

	Seed uint64

	// Workers is the experiment engine's concurrency: 0 means GOMAXPROCS,
	// 1 forces serial execution. Results are bit-identical at any worker
	// count (see internal/par); the knob only trades wall-clock for cores.
	Workers int
}

// Quick returns a scale suitable for CI: minutes, not hours.
func Quick() Scale {
	return Scale{
		Name:          "quick",
		MboneNodes:    400,
		HopSources:    60,
		Fig5Spaces:    []uint32{100, 200, 400},
		Fig5Trials:    10,
		Fig5Dists:     []mcast.TTLDistribution{mcast.DS1(), mcast.DS4()},
		Fig12Spaces:   []uint32{100, 200, 400},
		Fig12Reps:     25,
		OccSessions:   []int{2000},
		OccSpace:      4096,
		RespReceivers: []int{200, 800, 3200, 12800},
		RespD2Millis:  []float64{800, 3200, 12800, 51200},
		RRGroupSizes:  []int{200, 800},
		RRD2Millis:    []float64{200, 3200, 51200},
		RRTrials:      3,
		Seed:          1998,
	}
}

// Full reproduces the paper's ranges.
func Full() Scale {
	return Scale{
		Name:          "full",
		MboneNodes:    1864,
		HopSources:    0, // every mrouter, as the paper does
		Fig5Spaces:    []uint32{100, 200, 400, 800, 1600},
		Fig5Trials:    50,
		Fig5Dists:     mcast.Distributions(),
		Fig12Spaces:   []uint32{100, 200, 400, 800, 1600},
		Fig12Reps:     100,
		OccSessions:   []int{25000, 100000},
		OccSpace:      131072,
		RespReceivers: []int{200, 400, 800, 1600, 3200, 6400, 12800, 25600, 51200},
		RespD2Millis:  []float64{800, 3200, 12800, 51200, 204800},
		RRGroupSizes:  []int{200, 400, 800, 1600, 3200, 6400, 12800, 25600, 51200},
		RRD2Millis:    []float64{200, 800, 3200, 12800, 51200, 204800, 819200, 3276800, 13107200},
		RRTrials:      5,
		Seed:          1998,
	}
}

// Runner regenerates one figure or table.
type Runner struct {
	ID          string
	Description string
	Run         func(w io.Writer, s Scale) error
}

// All returns every experiment runner, sorted by id.
func All() []Runner {
	rs := []Runner{
		{"fig1", "IPRMA partition probability density illustration", RunFig1},
		{"fig4", "birthday-problem clash probability (space 10000)", RunFig4},
		{"fig5", "allocations before clash: R/IR/IPR3/IPR7 × ds1–ds4 on the Mbone", RunFig5},
		{"fig6", "Eq 1: allocations at 50% clash probability vs partition size", RunFig6},
		{"fig8", "deterministic adaptive IPRMA band layout at two sites", RunFig8},
		{"fig10", "Mbone hop-count distribution for TTL 15/47/63/127", RunFig10},
		{"fig11", "TTL→partition mapping, margin of safety 2 (55 partitions)", RunFig11},
		{"fig12", "steady-state churn: adaptive vs static allocators", RunFig12},
		{"fig13", "steady-state upper bound (same-source replacement)", RunFig13},
		{"fig14", "Eq 2: responder bound, uniform delay buckets", RunFig14},
		{"fig15", "simulated responders: SPT/shared × jitter", RunFig15},
		{"fig16", "delay of first response (same simulations)", RunFig16},
		{"fig18", "Eq 4 + simulation: exponential delay buckets", RunFig18},
		{"fig19", "responses vs first-response delay: uniform vs exponential", RunFig19},
		{"ttltable", "most frequent / max hop count per TTL (§2.4.1 table)", RunTTLTable},
		{"ablation", "design-choice ablations (gaps, occupancy, margin, backoff)", RunAblations},
		{"hierarchy", "§4.1 extension: flat vs prefix-hierarchical allocation", RunHierarchy},
		{"occupancy", "directory-scale occupancy: fill + churn clash rates (Figs 5/12 shape)", RunOccupancySweep},
		{"discovery", "packet-level discovery delay vs loss and back-off schedule", RunDiscovery},
		{"adminscope", "§1 contrast: informed-random under admin vs TTL scoping", RunAdminScope},
		{"strategies", "§3.1 responder strategies: uniform/exp/two-tier/ranked", RunStrategies},
		{"clustering", "§2.6 postulate: community-structured vs random churn", RunClustering},
		{"resolution", "clash-resolution latency through the agent stack (§3)", RunResolution},
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].ID < rs[j].ID })
	return rs
}

// ByID returns the runner with the given id.
func ByID(id string) (Runner, error) {
	for _, r := range All() {
		if r.ID == id {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// mbone builds the scale's Mbone topology.
func mbone(s Scale) (*topology.Graph, error) {
	return topology.GenerateMbone(topology.MboneConfig{Nodes: s.MboneNodes}, stats.NewRNG(s.Seed))
}

// sampleSources picks the Figure-10 source sample.
func sampleSources(g *topology.Graph, n int, seed uint64) []topology.NodeID {
	if n <= 0 || n >= g.NumNodes() {
		return nil // all
	}
	rng := stats.NewRNG(seed)
	perm := rng.Perm(g.NumNodes())
	out := make([]topology.NodeID, n)
	for i := 0; i < n; i++ {
		out[i] = topology.NodeID(perm[i])
	}
	return out
}
