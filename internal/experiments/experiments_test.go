package experiments

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"sessiondir/internal/mcast"
)

// tiny returns a scale small enough to run every experiment in a test.
func tiny() Scale {
	return Scale{
		Name:          "tiny",
		MboneNodes:    250,
		HopSources:    20,
		Fig5Spaces:    []uint32{64, 128},
		Fig5Trials:    3,
		Fig5Dists:     []mcast.TTLDistribution{mcast.DS4()},
		Fig12Spaces:   []uint32{64},
		Fig12Reps:     3,
		RespReceivers: []int{200, 800},
		RespD2Millis:  []float64{800, 3200},
		RRGroupSizes:  []int{150},
		RRD2Millis:    []float64{800, 51200},
		RRTrials:      1,
		Seed:          7,
	}
}

func TestAllRunnersProduceOutput(t *testing.T) {
	s := tiny()
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := r.Run(&buf, s); err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", r.ID)
			}
			if !strings.Contains(buf.String(), "\n") {
				t.Fatalf("%s produced a single line: %q", r.ID, buf.String())
			}
		})
	}
}

func TestByID(t *testing.T) {
	r, err := ByID("fig5")
	if err != nil || r.ID != "fig5" {
		t.Fatalf("fig5 lookup: %+v %v", r, err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestRunnersHaveUniqueSortedIDs(t *testing.T) {
	rs := All()
	for i := 1; i < len(rs); i++ {
		if rs[i].ID <= rs[i-1].ID {
			t.Fatalf("ids not strictly sorted: %s then %s", rs[i-1].ID, rs[i].ID)
		}
	}
	for _, r := range rs {
		if r.Description == "" || r.Run == nil {
			t.Fatalf("incomplete runner %q", r.ID)
		}
	}
}

func TestScalesSane(t *testing.T) {
	for _, s := range []Scale{Quick(), Full()} {
		if s.MboneNodes < 100 || s.Fig5Trials < 1 || s.Fig12Reps < 1 || s.RRTrials < 1 {
			t.Fatalf("degenerate scale %+v", s)
		}
		if len(s.Fig5Spaces) == 0 || len(s.RespReceivers) == 0 {
			t.Fatalf("empty ranges in %s", s.Name)
		}
	}
	if Full().MboneNodes != 1864 {
		t.Fatal("full scale must use the paper's 1864-node map")
	}
	if len(Full().Fig5Dists) != 4 {
		t.Fatal("full scale must sweep all four TTL distributions")
	}
}

// TestFig11Output verifies the printed mapping is the paper's 55 partitions.
func TestFig11Output(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFig11(&buf, tiny()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# 55 partitions") {
		t.Fatalf("output missing partition count:\n%s", buf.String())
	}
}

// TestFig4OutputMedian sanity-checks the printed birthday median.
func TestFig4OutputMedian(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFig4(&buf, tiny()); err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`median \(p=0.5\) at (\d+) allocations`)
	m := re.FindStringSubmatch(buf.String())
	if m == nil {
		t.Fatalf("median line missing:\n%s", buf.String())
	}
	v, _ := strconv.Atoi(m[1])
	if v < 100 || v < 110 || v > 130 {
		t.Fatalf("median %d outside the 1.18·√10000 ≈ 118 ballpark", v)
	}
}

// TestSampleSources covers the subsampling helper.
func TestSampleSources(t *testing.T) {
	s := tiny()
	g, err := mbone(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := sampleSources(g, 0, 1); got != nil {
		t.Fatal("0 should mean all (nil)")
	}
	if got := sampleSources(g, g.NumNodes()+10, 1); got != nil {
		t.Fatal("oversized sample should mean all (nil)")
	}
	got := sampleSources(g, 10, 1)
	if len(got) != 10 {
		t.Fatalf("sample size %d", len(got))
	}
	seen := map[int]bool{}
	for _, n := range got {
		if seen[int(n)] {
			t.Fatal("duplicate source in sample")
		}
		seen[int(n)] = true
	}
}
