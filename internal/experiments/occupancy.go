package experiments

import (
	"fmt"
	"io"

	"sessiondir/internal/allocator"
	"sessiondir/internal/mcast"
	"sessiondir/internal/sim"
	"sessiondir/internal/topology"
)

// occAlgorithms returns the occupancy-sweep allocator factories: the
// informed-random baseline and the adaptive hybrid the daemon ships
// with. The sweep is a scale gate, not a Figure-5 reprise, so two
// algorithms suffice.
func occAlgorithms() []struct {
	Name string
	Make func(size uint32) allocator.Allocator
} {
	return []struct {
		Name string
		Make func(size uint32) allocator.Allocator
	}{
		{"IR", func(size uint32) allocator.Allocator { return allocator.NewInformedRandom(size) }},
		{"AIPR-H (hybrid)", func(size uint32) allocator.Allocator { return allocator.NewHybrid(size) }},
	}
}

// OccupancyConfigs expands a Scale into the occupancy run matrix
// (algorithm × resident target) over one shared topology and reach
// cache. Exposed so mcbench can time and record each run individually;
// the runner below executes the same configs in the same order.
func OccupancyConfigs(s Scale) ([]sim.OccupancyConfig, error) {
	g, err := mbone(s)
	if err != nil {
		return nil, err
	}
	cache := topology.NewReachCache(g)
	var cfgs []sim.OccupancyConfig
	for _, alg := range occAlgorithms() {
		for _, sessions := range s.OccSessions {
			cfgs = append(cfgs, sim.OccupancyConfig{
				Graph:      g,
				Cache:      cache,
				Alloc:      alg.Make(s.OccSpace),
				Dist:       mcast.DS4(),
				Sessions:   sessions,
				Churn:      s.OccChurn,
				Partitions: s.OccParts,
				Workers:    s.Workers,
				Seed:       s.Seed,
			})
		}
	}
	return cfgs, nil
}

// RunOccupancySweep regenerates the directory-scale occupancy runs: fill
// the session set to each resident target, then churn replacements
// through it, reporting clash rates and final occupancy. This is the
// perf tier behind mcbench -full — quick scale keeps it to thousands of
// sessions, full scale drives the 100k-session runs the nightly gate
// budgets.
func RunOccupancySweep(w io.Writer, s Scale) error {
	cfgs, err := OccupancyConfigs(s)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# Occupancy: fill + churn at directory scale (Mbone %d nodes, space %d)\n",
		s.MboneNodes, s.OccSpace)
	for _, cfg := range cfgs {
		fmt.Fprintln(w, sim.RunOccupancy(cfg).String())
	}
	return nil
}
