package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersDefaults(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d", got)
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 500
		counts := make([]atomic.Int32, n)
		For(workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEmptyAndSingle(t *testing.T) {
	For(4, 0, func(int) { t.Fatal("fn called for n=0") })
	ran := false
	For(4, 1, func(i int) {
		if i != 0 {
			t.Fatalf("i = %d", i)
		}
		ran = true
	})
	if !ran {
		t.Fatal("fn not called for n=1")
	}
}

func TestForIndexedResultsDeterministic(t *testing.T) {
	// The determinism contract: indexed result slots make output independent
	// of execution order.
	const n = 200
	serial := make([]int, n)
	For(1, n, func(i int) { serial[i] = i * i })
	parallel := make([]int, n)
	For(16, n, func(i int) { parallel[i] = i * i })
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("slot %d: serial %d parallel %d", i, serial[i], parallel[i])
		}
	}
}

func TestForPropagatesPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic not propagated")
		}
		if s, ok := r.(string); !ok || s != "boom" {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	For(4, 100, func(i int) {
		if i == 17 {
			panic("boom")
		}
	})
}
