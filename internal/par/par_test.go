package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersDefaults(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d", got)
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 500
		counts := make([]atomic.Int32, n)
		For(workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEmptyAndSingle(t *testing.T) {
	For(4, 0, func(int) { t.Fatal("fn called for n=0") })
	ran := false
	For(4, 1, func(i int) {
		if i != 0 {
			t.Fatalf("i = %d", i)
		}
		ran = true
	})
	if !ran {
		t.Fatal("fn not called for n=1")
	}
}

func TestForIndexedResultsDeterministic(t *testing.T) {
	// The determinism contract: indexed result slots make output independent
	// of execution order.
	const n = 200
	serial := make([]int, n)
	For(1, n, func(i int) { serial[i] = i * i })
	parallel := make([]int, n)
	For(16, n, func(i int) { parallel[i] = i * i })
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("slot %d: serial %d parallel %d", i, serial[i], parallel[i])
		}
	}
}

func TestForPropagatesPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic not propagated")
		}
		if s, ok := r.(string); !ok || s != "boom" {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	For(4, 100, func(i int) {
		if i == 17 {
			panic("boom")
		}
	})
}

func TestGatherConcatenatesInPartOrder(t *testing.T) {
	fn := func(p int) []int {
		out := make([]int, p)
		for i := range out {
			out[i] = p*100 + i
		}
		return out
	}
	want := Gather(1, 6, fn)
	for _, workers := range []int{2, 8, 0} {
		got := Gather(workers, 6, fn)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: len %d want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d slot %d: %d want %d", workers, i, got[i], want[i])
			}
		}
	}
	if got := Gather(4, 0, fn); got != nil {
		t.Fatalf("zero parts: %v", got)
	}
}
