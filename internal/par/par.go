// Package par is the experiment layer's deterministic worker pool: a
// minimal parallel-for over an index space, used to fan simulation trials
// and sweep points across GOMAXPROCS workers.
//
// Determinism contract: callers pre-split one RNG per task *in submission
// order* (stats.RNG.Split is a pure function of the parent's state, so the
// pre-split sequence is identical to the splits a serial loop would make)
// and write each task's result into a slot indexed by the task number.
// Execution order then cannot influence any result, and parallel output is
// bit-identical to a serial run of the same code.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values > 0 are taken as-is,
// anything else means GOMAXPROCS.
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// For runs fn(i) for every i in [0, n) on up to workers goroutines
// (0 means GOMAXPROCS). Tasks are handed out dynamically, so uneven task
// costs balance across workers. For returns when every call has finished.
//
// fn is invoked exactly once per index; invocations may be concurrent, so
// fn must only touch shared state that is safe for concurrent use (its own
// result slot, pre-split RNGs, concurrency-safe caches). If any fn panics,
// For waits for the remaining workers and re-panics the first panic value
// in the caller's goroutine, matching a serial loop's behaviour.
// Gather runs fn(p) for every partition p in [0, parts) — concurrently,
// under For's scheduling and panic semantics — and concatenates the
// per-partition slices in partition order. Because each partition's
// result lands in its own slot and the concatenation order is the
// partition index, the output is bit-identical at any worker count: the
// parallel simulation core (sharded caches, partitioned event wheels,
// the partitioned session world) leans on exactly this property for its
// deterministic merge step.
func Gather[T any](workers, parts int, fn func(p int) []T) []T {
	if parts <= 0 {
		return nil
	}
	chunks := make([][]T, parts)
	For(workers, parts, func(p int) { chunks[p] = fn(p) })
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	out := make([]T, 0, total)
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out
}

func For(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Bool
		panicVal any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || panicked.Load() {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							// Keep the first panic only; later ones are
							// almost always consequences of the same bug.
							if panicked.CompareAndSwap(false, true) {
								panicVal = r
							}
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
}
