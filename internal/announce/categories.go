package announce

import (
	"fmt"
	"sort"
	"time"

	"sessiondir/internal/mcast"
)

// This file implements the §4 proposal for scaling *session announcement*
// (as opposed to address allocation): "dynamically allocate new
// announcement addresses for certain categories of announcement, and only
// announce the existence of the category on the base session directory
// address ... allow[ing] receivers to decide the categories for which they
// receive announcements, and hence the bandwidth used by the session
// directory." (The paper notes this is impossible while announcements
// double as address reservations; it becomes possible once allocation is
// separated, e.g. by the §4.1 prefix layer.)

// CategoryMap deterministically assigns each announcement category its own
// sub-group within a dedicated block, so every directory derives the same
// category→group mapping with no coordination. The base group carries
// category-existence announcements only.
type CategoryMap struct {
	space mcast.AddrSpace
}

// NewCategoryMap returns a mapper over the given block. The block must
// hold at least two addresses (the base group plus one category group).
func NewCategoryMap(space mcast.AddrSpace) (*CategoryMap, error) {
	if space.Size < 2 {
		return nil, fmt.Errorf("announce: category block of %d addresses is too small", space.Size)
	}
	return &CategoryMap{space: space}, nil
}

// BaseGroup is where category existence is announced.
func (m *CategoryMap) BaseGroup() mcast.Addr { return 0 }

// GroupFor hashes a category name to its announcement sub-group, never the
// base group. Equal names map to equal groups on every host (FNV-1a).
func (m *CategoryMap) GroupFor(category string) mcast.Addr {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(category); i++ {
		h ^= uint64(category[i])
		h *= prime64
	}
	return mcast.Addr(1 + h%(uint64(m.space.Size)-1))
}

// Groups returns the concrete multicast group of a category (and the base
// group) for wiring into transports.
func (m *CategoryMap) Group(category string) (base, cat mcast.Addr) {
	return m.BaseGroup(), m.GroupFor(category)
}

// CategoryEntry is one known category on the base channel.
type CategoryEntry struct {
	Name      string
	Group     mcast.Addr
	FirstSeen time.Time
	LastSeen  time.Time
	// Sessions is the advertised session count, letting receivers weigh
	// subscription cost.
	Sessions int
}

// CategoryRegistry tracks the categories announced on the base channel —
// the receiver-side "which announcement groups exist" view. Not safe for
// concurrent use.
type CategoryRegistry struct {
	m       *CategoryMap
	entries map[string]*CategoryEntry
	// Timeout expires categories not re-announced (0 = one hour).
	Timeout time.Duration
}

// NewCategoryRegistry returns an empty registry over the map.
func NewCategoryRegistry(m *CategoryMap, timeout time.Duration) *CategoryRegistry {
	if timeout <= 0 {
		timeout = time.Hour
	}
	return &CategoryRegistry{m: m, entries: make(map[string]*CategoryEntry), Timeout: timeout}
}

// Observe records a category-existence announcement.
func (r *CategoryRegistry) Observe(name string, sessions int, now time.Time) *CategoryEntry {
	e, ok := r.entries[name]
	if !ok {
		e = &CategoryEntry{
			Name:      name,
			Group:     r.m.GroupFor(name),
			FirstSeen: now,
		}
		r.entries[name] = e
	}
	e.LastSeen = now
	if sessions >= 0 {
		e.Sessions = sessions
	}
	return e
}

// Get returns a known category.
func (r *CategoryRegistry) Get(name string) (*CategoryEntry, bool) {
	e, ok := r.entries[name]
	return e, ok
}

// Expire drops categories unheard for Timeout, returning the dropped names.
func (r *CategoryRegistry) Expire(now time.Time) []string {
	var out []string
	for name, e := range r.entries { //mclint:maporder dropped names are sorted before returning
		if now.Sub(e.LastSeen) > r.Timeout {
			delete(r.entries, name)
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Categories lists known categories sorted by name.
func (r *CategoryRegistry) Categories() []*CategoryEntry {
	out := make([]*CategoryEntry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SubscriptionBandwidth estimates the announcement bandwidth (bits/second)
// a receiver pays for a set of category subscriptions, given mean ad size:
// the §4 point that category channels let receivers control their cost.
// Each category's sessions re-announce at the steady interval its own
// population implies.
func (r *CategoryRegistry) SubscriptionBandwidth(categories []string, meanAdBytes int) float64 {
	total := 0.0
	for _, name := range categories {
		e, ok := r.entries[name]
		if !ok {
			continue
		}
		iv := SteadyInterval(e.Sessions*meanAdBytes, DefaultBandwidthBps)
		total += float64(e.Sessions*meanAdBytes*8) / iv.Seconds()
	}
	return total
}
