package announce

import (
	"testing"
	"testing/quick"
	"time"

	"sessiondir/internal/mcast"
)

func catMap(t *testing.T, size uint32) *CategoryMap {
	t.Helper()
	m, err := NewCategoryMap(mcast.SyntheticSpace(size))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCategoryMapValidation(t *testing.T) {
	if _, err := NewCategoryMap(mcast.SyntheticSpace(1)); err == nil {
		t.Fatal("one-address block accepted")
	}
}

func TestCategoryMapStableAndNonBase(t *testing.T) {
	m := catMap(t, 256)
	if m.BaseGroup() != 0 {
		t.Fatal("base group moved")
	}
	err := quick.Check(func(name string) bool {
		g1 := m.GroupFor(name)
		g2 := m.GroupFor(name)
		return g1 == g2 && g1 != m.BaseGroup() && uint32(g1) < 256
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
	base, cat := m.Group("music")
	if base != 0 || cat == 0 {
		t.Fatal("Group accessors")
	}
}

func TestCategoryMapSpread(t *testing.T) {
	// Different categories should spread across the block, not pile up.
	m := catMap(t, 1024)
	seen := map[mcast.Addr]int{}
	names := []string{"music", "talks", "ietf", "nasa", "sports", "lectures",
		"radio", "tv", "conferences", "seminars", "demos", "testing"}
	for _, n := range names {
		seen[m.GroupFor(n)]++
	}
	if len(seen) < len(names)-1 { // allow one hash collision at most
		t.Fatalf("only %d distinct groups for %d categories", len(seen), len(names))
	}
}

func TestCategoryRegistryLifecycle(t *testing.T) {
	m := catMap(t, 256)
	r := NewCategoryRegistry(m, 10*time.Minute)
	now := time.Unix(0, 0)
	e := r.Observe("music", 12, now)
	if e.Group != m.GroupFor("music") || e.Sessions != 12 {
		t.Fatalf("entry %+v", e)
	}
	// Update keeps identity, refreshes counts.
	e2 := r.Observe("music", 15, now.Add(time.Minute))
	if e2 != e || e.Sessions != 15 {
		t.Fatal("update should mutate the same entry")
	}
	// Negative session count means "unknown": keep the old value.
	r.Observe("music", -1, now.Add(2*time.Minute))
	if e.Sessions != 15 {
		t.Fatal("unknown count clobbered the old value")
	}
	if _, ok := r.Get("music"); !ok {
		t.Fatal("Get miss")
	}
	if _, ok := r.Get("absent"); ok {
		t.Fatal("Get hit for absent")
	}
	r.Observe("talks", 3, now.Add(9*time.Minute))
	expired := r.Expire(now.Add(13 * time.Minute))
	if len(expired) != 1 || expired[0] != "music" {
		t.Fatalf("expired %v", expired)
	}
	cats := r.Categories()
	if len(cats) != 1 || cats[0].Name != "talks" {
		t.Fatalf("categories %v", cats)
	}
}

func TestSubscriptionBandwidth(t *testing.T) {
	m := catMap(t, 256)
	r := NewCategoryRegistry(m, 0)
	now := time.Unix(0, 0)
	r.Observe("small", 10, now)
	r.Observe("large", 5000, now)
	small := r.SubscriptionBandwidth([]string{"small"}, 300)
	large := r.SubscriptionBandwidth([]string{"large"}, 300)
	both := r.SubscriptionBandwidth([]string{"small", "large"}, 300)
	if small <= 0 || large <= 0 {
		t.Fatalf("bandwidths %v %v", small, large)
	}
	if large <= small {
		t.Fatal("large category should cost more")
	}
	if both < large {
		t.Fatal("subscribing to more should not cost less")
	}
	// Large categories are bounded by the shared budget: the steady
	// interval stretches so the channel stays near DefaultBandwidthBps.
	if large > DefaultBandwidthBps*1.05 {
		t.Fatalf("large category exceeds its channel budget: %v", large)
	}
	// Unknown categories cost nothing.
	if r.SubscriptionBandwidth([]string{"nope"}, 300) != 0 {
		t.Fatal("unknown category has a cost")
	}
}
