package announce

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestCacheSaveLoadRoundTrip(t *testing.T) {
	c := NewCache(time.Hour)
	now := time.Unix(900000000, 0)
	c.Observe(desc(1, 1), now)
	c.Observe(desc(2, 3), now.Add(time.Minute))
	c.Observe(desc(3, 1), now)
	c.Delete(desc(3, 1).Key(), now.Add(2*time.Minute)) // deleted: not saved

	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}

	fresh := NewCache(time.Hour)
	n, err := fresh.Load(&buf, now.Add(3*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("loaded %d entries, want 2", n)
	}
	e, ok := fresh.Get(desc(2, 3).Key())
	if !ok || e.Desc.Version != 3 {
		t.Fatalf("entry 2 wrong: %+v", e)
	}
	if !e.LastHeard.Equal(now.Add(time.Minute)) {
		t.Fatalf("LastHeard %v", e.LastHeard)
	}
	if _, ok := fresh.Get(desc(3, 1).Key()); ok {
		t.Fatal("deleted entry resurrected")
	}
}

func TestCacheLoadSkipsStale(t *testing.T) {
	c := NewCache(10 * time.Minute)
	now := time.Unix(900000000, 0)
	c.Observe(desc(1, 1), now)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	fresh := NewCache(10 * time.Minute)
	n, err := fresh.Load(&buf, now.Add(time.Hour)) // far past the timeout
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || fresh.Len() != 0 {
		t.Fatalf("stale entries loaded: %d", n)
	}
}

func TestCacheLoadMergePrefersFresh(t *testing.T) {
	now := time.Unix(900000000, 0)
	old := NewCache(time.Hour)
	old.Observe(desc(1, 1), now)
	var buf bytes.Buffer
	if err := old.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// The live cache already knows a *newer* version.
	live := NewCache(time.Hour)
	live.Observe(desc(1, 5), now.Add(time.Minute))
	n, err := live.Load(&buf, now.Add(2*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("merged %d duplicate entries", n)
	}
	e, _ := live.Get(desc(1, 5).Key())
	if e.Desc.Version != 5 {
		t.Fatalf("version regressed to %d", e.Desc.Version)
	}
}

func TestCacheLoadUpgradesVersion(t *testing.T) {
	now := time.Unix(900000000, 0)
	newer := NewCache(time.Hour)
	newer.Observe(desc(1, 9), now)
	var buf bytes.Buffer
	if err := newer.Save(&buf); err != nil {
		t.Fatal(err)
	}
	live := NewCache(time.Hour)
	live.Observe(desc(1, 2), now.Add(time.Second))
	if _, err := live.Load(&buf, now.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	e, _ := live.Get(desc(1, 2).Key())
	if e.Desc.Version != 9 {
		t.Fatalf("disk had v9, cache has v%d", e.Desc.Version)
	}
}

func TestCacheLoadErrors(t *testing.T) {
	c := NewCache(time.Hour)
	cases := map[string]string{
		"empty":      "",
		"bad header": "nonsense\n",
		"bad entry":  "sdcache v1\nentry x y z\n",
		"huge entry": "sdcache v1\nentry 1 1 9999999\n",
		"truncated":  "sdcache v1\nentry 1 1 500\nshort",
	}
	for name, in := range cases {
		if _, err := c.Load(strings.NewReader(in), time.Now()); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// A corrupt SDP body is skipped, not fatal.
	in := "sdcache v1\nentry 1 900000000 7\nnot sdp\n"
	n, err := c.Load(strings.NewReader(in), time.Unix(900000060, 0))
	if err != nil || n != 0 {
		t.Fatalf("corrupt body: n=%d err=%v", n, err)
	}
}

func TestCacheSaveLoadManyEntries(t *testing.T) {
	c := NewCache(time.Hour)
	now := time.Unix(900000000, 0)
	for i := uint64(1); i <= 200; i++ {
		c.Observe(desc(i, i%7+1), now)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	fresh := NewCache(time.Hour)
	n, err := fresh.Load(&buf, now.Add(time.Minute))
	if err != nil || n != 200 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if fresh.Len() != 200 {
		t.Fatalf("len=%d", fresh.Len())
	}
}
