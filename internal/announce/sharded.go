package announce

import (
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sessiondir/internal/par"
	"sessiondir/internal/session"
)

// Sharded is the listened-session store striped into per-origin shards.
// Each shard is a plain Cache behind its own RWMutex, selected by a hash
// of the session key's origin prefix (keys are "origin/id", so every
// session of one announcer lands in one shard). The directory still
// serialises all order-sensitive mutations under its own mutex — the
// shards exist so that
//
//   - O(cache) scans (allocator views, admission candidates, expiry,
//     the degradation fresh-count) can run per-shard and merge in shard
//     order, parallelising when the population is large;
//   - occupancy gauges and the bandwidth budget read per-shard atomics,
//     so scrapes never contend with the packet path;
//   - the epoch-batched receive path parses in parallel and applies
//     serially, touching only the shards its batch names.
//
// Determinism: shard selection is a pure function of the key, every scan
// merges in shard index order, and Expire/Save sort globally, so for any
// fixed shard count a seeded run replays bit-identically — and every
// consumer of All/Live is order-insensitive (or sorts), so results are
// also identical *across* shard counts. A Sharded with one shard is the
// unsharded oracle.
type Sharded struct {
	shards []cacheShard
	// Timeout mirrors the per-shard caches' timeout (uniform across
	// shards), exposed for the directory's staleness defaulting.
	Timeout time.Duration
}

// cacheShard pairs one cache stripe with its lock and the atomic
// mirrors of its totals. The mirrors are refreshed under the shard lock
// after every mutation; readers (gauges, the bandwidth budget) sum them
// without taking any lock. The pad keeps hot shards off each other's
// cache lines.
type cacheShard struct {
	mu      sync.RWMutex
	c       *Cache
	size    atomic.Int64
	live    atomic.Int64
	adBytes atomic.Int64
	_       [64]byte
}

// parallelScanMin is the smallest total population for which the
// per-shard scans bother spawning workers; below it a serial walk of the
// shards is faster than the handoff. Exported behaviour is identical
// either way (the merge order is shard order in both paths).
const parallelScanMin = 8192

// NewSharded returns a sharded cache with the given expiry timeout
// (0 = one hour) and shard count (values < 1 mean one shard — the
// unsharded oracle layout).
func NewSharded(timeout time.Duration, shards int) *Sharded {
	if shards < 1 {
		shards = 1
	}
	s := &Sharded{shards: make([]cacheShard, shards)}
	for i := range s.shards {
		s.shards[i].c = NewCache(timeout)
	}
	s.Timeout = s.shards[0].c.Timeout
	return s
}

// ShardCount reports the number of stripes.
func (s *Sharded) ShardCount() int { return len(s.shards) }

// originOf extracts the origin prefix of a session key ("origin/id").
func originOf(key string) string {
	if i := strings.IndexByte(key, '/'); i >= 0 {
		return key[:i]
	}
	return key
}

// shardFor hashes the key's origin prefix (FNV-1a) onto a shard index.
// Using the origin, not the whole key, keeps one announcer's sessions —
// and therefore its per-origin admission accounting — inside one stripe.
func (s *Sharded) shardFor(key string) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	origin := originOf(key)
	h := uint32(offset32)
	for i := 0; i < len(origin); i++ {
		h ^= uint32(origin[i])
		h *= prime32
	}
	return int(h % uint32(len(s.shards)))
}

// sync refreshes the shard's atomic totals; call under sh.mu after any
// mutation.
func (sh *cacheShard) sync() {
	sh.size.Store(int64(sh.c.Size()))
	sh.live.Store(int64(sh.c.Len()))
	sh.adBytes.Store(int64(sh.c.TotalAdBytes()))
}

// Observe records an announcement, returning the entry and whether the
// session (or a new version of it) was previously unknown.
func (s *Sharded) Observe(d *session.Description, now time.Time) (*Entry, bool) {
	sh := &s.shards[s.shardFor(d.Key())]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, fresh := sh.c.Observe(d, now)
	sh.sync()
	return e, fresh
}

// Delete marks a session deleted (explicit SAP deletion packet).
func (s *Sharded) Delete(key string, now time.Time) {
	sh := &s.shards[s.shardFor(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.c.Delete(key, now)
	sh.sync()
}

// Get returns a live (non-deleted) entry.
func (s *Sharded) Get(key string) (*Entry, bool) {
	sh := &s.shards[s.shardFor(key)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.c.Get(key)
}

// Peek returns the entry for key whether or not it is deleted.
func (s *Sharded) Peek(key string) (*Entry, bool) {
	sh := &s.shards[s.shardFor(key)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.c.Peek(key)
}

// Remove hard-deletes an entry (admission-layer eviction).
func (s *Sharded) Remove(key string) {
	sh := &s.shards[s.shardFor(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.c.Remove(key)
	sh.sync()
}

// Restore merges one persisted entry with Cache.Restore's semantics.
func (s *Sharded) Restore(desc *session.Description, first, last, now time.Time) bool {
	sh := &s.shards[s.shardFor(desc.Key())]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	added := sh.c.Restore(desc, first, last, now)
	sh.sync()
	return added
}

// Size returns the total number of entries, tombstones included. Reads
// the per-shard atomics: safe from scrape paths without any lock.
func (s *Sharded) Size() int {
	n := int64(0)
	for i := range s.shards {
		n += s.shards[i].size.Load()
	}
	return int(n)
}

// Len returns the number of live entries, lock-free like Size.
func (s *Sharded) Len() int {
	n := int64(0)
	for i := range s.shards {
		n += s.shards[i].live.Load()
	}
	return int(n)
}

// TotalAdBytes is the live population's summed announcement size for
// the bandwidth budget, lock-free like Size.
func (s *Sharded) TotalAdBytes() int {
	n := int64(0)
	for i := range s.shards {
		n += s.shards[i].adBytes.Load()
	}
	return int(n)
}

// CountFresh counts live entries heard within staleAfter of now — the
// degradation tiers' pressure signal. Commutative, so the per-shard
// counts sum to exactly the flat cache's scan.
func (s *Sharded) CountFresh(now time.Time, staleAfter time.Duration) int {
	fresh := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		fresh += sh.c.CountFresh(now, staleAfter)
		sh.mu.RUnlock()
	}
	return fresh
}

// Expire evicts timed-out entries from every shard, returning the
// evicted keys globally sorted — the same sequence the unsharded cache
// produces, which is what keeps expiry traces and journals bit-identical
// across shard counts.
func (s *Sharded) Expire(now time.Time) []string {
	evicted := gatherShards(s, func(i int) []string {
		sh := &s.shards[i]
		sh.mu.Lock()
		defer sh.mu.Unlock()
		keys := sh.c.Expire(now)
		sh.sync()
		return keys
	})
	sort.Strings(evicted)
	return evicted
}

// All returns every entry including tombstones, concatenated in shard
// order (deterministic for a fixed shard count; consumers are
// order-insensitive, see the type comment).
func (s *Sharded) All() []*Entry {
	return gatherShards(s, func(i int) []*Entry {
		sh := &s.shards[i]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		return sh.c.All()
	})
}

// Live returns all live entries, concatenated in shard order.
func (s *Sharded) Live() []*Entry {
	return gatherShards(s, func(i int) []*Entry {
		sh := &s.shards[i]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		return sh.c.Live()
	})
}

// AllGrouped returns every entry grouped by shard, for consumers that
// keep per-shard structure (grouped admission planning) instead of
// flattening.
func (s *Sharded) AllGrouped() [][]*Entry {
	groups := make([][]*Entry, len(s.shards))
	par.For(s.scanWorkers(), len(s.shards), func(i int) {
		sh := &s.shards[i]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		groups[i] = sh.c.All()
	})
	return groups
}

// scanWorkers picks the worker count for a per-shard scan: 1 (serial)
// below parallelScanMin entries, the shard count above it.
func (s *Sharded) scanWorkers() int {
	if s.Size() < parallelScanMin {
		return 1
	}
	return len(s.shards)
}

// gatherShards is the generic shard-index-order merge (methods cannot
// have type parameters). fn receives the shard index and does its own
// locking.
func gatherShards[T any](s *Sharded, fn func(i int) []T) []T {
	if len(s.shards) == 1 {
		return fn(0)
	}
	return par.Gather(s.scanWorkers(), len(s.shards), fn)
}

// Save writes all live entries to w in globally sorted key order, so a
// checkpoint's bytes do not depend on the shard count that produced it.
func (s *Sharded) Save(w io.Writer) error {
	live := s.Live()
	sort.Slice(live, func(i, j int) bool { return live[i].Desc.Key() < live[j].Desc.Key() })
	return saveEntries(w, live)
}

// Load merges persisted entries with Cache.Load's semantics.
func (s *Sharded) Load(r io.Reader, now time.Time) (int, error) {
	return loadEntries(r, s.Restore, now)
}
