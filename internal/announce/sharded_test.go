package announce

import (
	"bytes"
	"fmt"
	"net/netip"
	"sort"
	"testing"
	"time"

	"sessiondir/internal/session"
	"sessiondir/internal/stats"
)

// odesc builds a description with a distinct origin so keys spread over
// shards (the package-level desc helper pins one origin — one shard).
func odesc(hostOctet byte, id, version uint64) *session.Description {
	return &session.Description{
		ID:      id,
		Version: version,
		Origin:  netip.AddrFrom4([4]byte{10, 0, 0, hostOctet}),
		Name:    fmt.Sprintf("s-%d-%d", hostOctet, id),
		Group:   netip.AddrFrom4([4]byte{224, 2, 128, byte(id)}),
		TTL:     127,
		Media:   []session.Media{{Type: "audio", Port: 1000, Proto: "RTP/AVP", Format: "0"}},
	}
}

// entryState is an Entry reduced to its comparable replay-relevant
// fields.
type entryState struct {
	key     string
	version uint64
	deleted bool
	first   time.Time
	last    time.Time
}

func flatStates(entries []*Entry) []entryState {
	out := make([]entryState, 0, len(entries))
	for _, e := range entries {
		out = append(out, entryState{e.Desc.Key(), e.Desc.Version, e.Deleted, e.FirstHeard, e.LastHeard})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// The oracle test: a mixed workload of observes, re-observes, deletes,
// removes and expiries lands both structures in identical state at any
// shard count, with the incremental counters matching the flat cache's.
func TestShardedMatchesFlatCacheOracle(t *testing.T) {
	for _, shards := range []int{1, 4, 8} {
		flat := NewCache(time.Hour)
		sharded := NewSharded(time.Hour, shards)
		rng := stats.NewRNG(uint64(31 + shards))
		now := time.Unix(1000, 0)
		for step := 0; step < 4000; step++ {
			host := byte(rng.IntN(23))
			id := uint64(rng.IntN(40))
			now = now.Add(time.Duration(rng.IntN(120)) * time.Second)
			switch rng.IntN(10) {
			case 0:
				key := fmt.Sprintf("10.0.0.%d/%d", host, id)
				flat.Delete(key, now)
				sharded.Delete(key, now)
			case 1:
				key := fmt.Sprintf("10.0.0.%d/%d", host, id)
				flat.Remove(key)
				sharded.Remove(key)
			case 2:
				fe := flat.Expire(now)
				se := sharded.Expire(now)
				if fmt.Sprint(fe) != fmt.Sprint(se) {
					t.Fatalf("shards=%d step %d: expire diverges\n flat    %v\n sharded %v", shards, step, fe, se)
				}
			default:
				d := odesc(host, id, uint64(step))
				_, ffresh := flat.Observe(d, now)
				_, sfresh := sharded.Observe(d, now)
				if ffresh != sfresh {
					t.Fatalf("shards=%d step %d: fresh %v vs %v", shards, step, ffresh, sfresh)
				}
			}
			if flat.Len() != sharded.Len() || flat.Size() != sharded.Size() ||
				flat.TotalAdBytes() != sharded.TotalAdBytes() {
				t.Fatalf("shards=%d step %d: counters diverge: len %d/%d size %d/%d adbytes %d/%d",
					shards, step, flat.Len(), sharded.Len(), flat.Size(), sharded.Size(),
					flat.TotalAdBytes(), sharded.TotalAdBytes())
			}
		}
		fs, ss := flatStates(flat.All()), flatStates(sharded.All())
		if len(fs) != len(ss) {
			t.Fatalf("shards=%d: %d entries vs %d", shards, len(fs), len(ss))
		}
		for i := range fs {
			if fs[i] != ss[i] {
				t.Fatalf("shards=%d entry %d: %+v vs %+v", shards, i, fs[i], ss[i])
			}
		}
	}
}

// The incremental live/adBytes accounting must equal a from-scratch
// recomputation over the entries at any point — exactness is what lets
// the admission budget trust O(1) Len/TotalAdBytes across shards.
func TestShardedAccountingMatchesRecount(t *testing.T) {
	s := NewSharded(time.Hour, 4)
	rng := stats.NewRNG(7)
	now := time.Unix(2000, 0)
	recount := func() (live, adBytes int) {
		for _, e := range s.All() {
			if !e.Deleted {
				live++
				adBytes += adSize(e.Desc)
			}
		}
		return
	}
	for step := 0; step < 1500; step++ {
		host := byte(rng.IntN(9))
		id := uint64(rng.IntN(25))
		now = now.Add(time.Duration(rng.IntN(200)) * time.Second)
		switch rng.IntN(8) {
		case 0:
			s.Delete(fmt.Sprintf("10.0.0.%d/%d", host, id), now)
		case 1:
			s.Remove(fmt.Sprintf("10.0.0.%d/%d", host, id))
		case 2:
			s.Expire(now)
		default:
			s.Observe(odesc(host, id, uint64(step)), now)
		}
		if step%100 != 0 {
			continue
		}
		live, adBytes := recount()
		if s.Len() != live || s.TotalAdBytes() != adBytes {
			t.Fatalf("step %d: incremental len=%d adbytes=%d, recount len=%d adbytes=%d",
				step, s.Len(), s.TotalAdBytes(), live, adBytes)
		}
	}
}

// Expire returns globally sorted keys — the order reaches eviction
// events and traces, so it must be shard-count independent.
func TestShardedExpireSorted(t *testing.T) {
	s := NewSharded(time.Minute, 8)
	now := time.Unix(3000, 0)
	for host := byte(1); host <= 12; host++ {
		s.Observe(odesc(host, uint64(host), 1), now)
	}
	evicted := s.Expire(now.Add(time.Hour))
	if len(evicted) != 12 {
		t.Fatalf("evicted %d of 12", len(evicted))
	}
	if !sort.StringsAreSorted(evicted) {
		t.Fatalf("evictions not sorted: %v", evicted)
	}
}

// Save must produce byte-identical snapshots at any shard count, and
// Load must land the same entries regardless of the reader's count.
func TestShardedSaveLoadAcrossShardCounts(t *testing.T) {
	now := time.Unix(4000, 0)
	populate := func(shards int) *Sharded {
		s := NewSharded(time.Hour, shards)
		for host := byte(1); host <= 20; host++ {
			for id := uint64(0); id < 5; id++ {
				s.Observe(odesc(host, id, id+1), now.Add(time.Duration(host)*time.Second))
			}
		}
		s.Delete("10.0.0.3/2", now.Add(time.Minute))
		return s
	}
	var want []byte
	for _, shards := range []int{1, 4, 8} {
		var buf bytes.Buffer
		if err := populate(shards).Save(&buf); err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("snapshot bytes differ between shard counts (shards=%d)", shards)
		}
	}

	loaded := NewSharded(time.Hour, 8)
	n, err := loaded.Load(bytes.NewReader(want), now)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("loaded nothing")
	}
	got := flatStates(loaded.Live())
	src := flatStates(populate(1).Live())
	if len(got) != len(src) {
		t.Fatalf("loaded %d live entries, want %d", len(got), len(src))
	}
	for i := range src {
		if got[i].key != src[i].key || got[i].version != src[i].version {
			t.Fatalf("entry %d: %+v vs %+v", i, got[i], src[i])
		}
	}
}
