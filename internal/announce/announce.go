// Package announce implements the announce/listen machinery of a session
// directory: the listened-session cache with expiry, the exponential
// back-off re-announcement schedule the paper's §4 recommends, and the
// SAP bandwidth budget that sets the steady-state announcement interval.
package announce

import (
	"sort"
	"time"

	"sessiondir/internal/session"
)

// DefaultBandwidthBps is the conventional SAP announcement bandwidth
// budget for a scope (4000 bits/second, shared by all announcers).
const DefaultBandwidthBps = 4000

// MinInterval is the floor on the steady-state announcement interval
// (RFC 2974 uses 300 s; with few sessions the budget allows faster but the
// floor keeps chatter down).
const MinInterval = 300 * time.Second

// SteadyInterval returns the steady-state re-announcement interval under a
// shared bandwidth budget: each announcer sends its ad so that the whole
// population of announcements fits in bandwidthBps.
//
//	interval = max(MinInterval, totalAdBytes·8 / bandwidthBps)
//
// totalAdBytes is the summed size of all announcements heard in the scope
// (including our own); this is how every sdr instance independently
// arrives at a compatible rate.
func SteadyInterval(totalAdBytes int, bandwidthBps int) time.Duration {
	if bandwidthBps <= 0 {
		bandwidthBps = DefaultBandwidthBps
	}
	if totalAdBytes < 0 {
		totalAdBytes = 0
	}
	iv := time.Duration(float64(totalAdBytes*8) / float64(bandwidthBps) * float64(time.Second))
	if iv < MinInterval {
		return MinInterval
	}
	return iv
}

// Backoff is the paper's non-uniform announcement schedule (§2.3, §4):
// start from a high announcement rate and exponentially back off to the
// steady-state rate. The first repeat 5 s after the initial announcement
// cuts the mean discovery delay from ~12 s to ~0.3 s at 2% loss, improving
// the invisible-allocation fraction i by more than an order of magnitude.
type Backoff struct {
	// Initial is the first re-announcement delay (paper: 5 s).
	Initial time.Duration
	// Factor multiplies the delay each round (paper: exponential, 2).
	Factor float64
	// Steady caps the delay at the steady-state interval.
	Steady time.Duration
}

// DefaultBackoff returns the paper's recommended schedule with the given
// steady-state interval.
func DefaultBackoff(steady time.Duration) Backoff {
	if steady <= 0 {
		steady = MinInterval
	}
	return Backoff{Initial: 5 * time.Second, Factor: 2, Steady: steady}
}

// IntervalAfter returns the delay between the n-th announcement and the
// next (n = 0 is the delay after the very first announcement).
func (b Backoff) IntervalAfter(n int) time.Duration {
	if b.Initial <= 0 {
		return b.Steady
	}
	f := b.Factor
	if f < 1 {
		f = 1
	}
	d := float64(b.Initial)
	for i := 0; i < n; i++ {
		d *= f
		if time.Duration(d) >= b.Steady {
			return b.Steady
		}
	}
	if time.Duration(d) >= b.Steady {
		return b.Steady
	}
	return time.Duration(d)
}

// MeanDiscoveryDelay estimates the mean time for a receiver to learn of a
// new session under this schedule with per-packet loss rate p and network
// delay d: the first packet arrives with probability 1−p, otherwise the
// k-th retransmission wins. Used by the ablation benchmarks to connect the
// schedule to the allocator's invisible fraction.
func (b Backoff) MeanDiscoveryDelay(loss, networkDelay float64) float64 {
	mean := 0.0
	pNone := 1.0
	elapsed := 0.0
	for k := 0; k < 64; k++ {
		mean += pNone * (1 - loss) * (elapsed + networkDelay)
		pNone *= loss
		elapsed += b.IntervalAfter(k).Seconds()
		if pNone < 1e-12 {
			break
		}
	}
	return mean
}

// Entry is one cached session announcement.
type Entry struct {
	Desc       *session.Description
	FirstHeard time.Time
	LastHeard  time.Time
	// Deleted marks an explicit SAP deletion (kept briefly to squelch
	// stale re-announcements from slow caches).
	Deleted bool
	// adBytes is the announcement size this entry contributes to the
	// bandwidth budget while live, cached at Observe/Restore time so the
	// running total can be maintained incrementally (and released exactly
	// on delete/evict without re-marshalling).
	adBytes int
}

// adSize is the bandwidth-budget cost of one announcement: SDP payload
// plus the SAP header, or a nominal size for descriptions that cannot
// marshal (matching the lazy accounting TotalAdBytes historically used).
func adSize(d *session.Description) int {
	if data, err := d.MarshalSDP(); err == nil {
		return len(data) + 8 // + SAP header
	}
	return 256
}

// Cache is the listened-session store. It is not safe for concurrent use;
// the directory agent serialises access (or wraps shards of it in
// Sharded, which adds the striped locking).
type Cache struct {
	entries map[string]*Entry
	// live and adBytes are running totals over non-deleted entries,
	// maintained at every mutation so Len and TotalAdBytes are O(1) —
	// they sit on the announcement-scheduling path of every send.
	live    int
	adBytes int
	// Timeout evicts sessions not re-announced for this long. RFC 2974
	// uses max(1 h, 10×interval).
	Timeout time.Duration
}

// NewCache returns an empty cache with the given expiry timeout
// (0 = one hour).
func NewCache(timeout time.Duration) *Cache {
	if timeout <= 0 {
		timeout = time.Hour
	}
	return &Cache{entries: make(map[string]*Entry), Timeout: timeout}
}

// Observe records an announcement, returning the entry and whether the
// session (or a new version of it) was previously unknown.
func (c *Cache) Observe(d *session.Description, now time.Time) (*Entry, bool) {
	key := d.Key()
	e, ok := c.entries[key]
	if !ok {
		e = &Entry{Desc: d, FirstHeard: now, LastHeard: now, adBytes: adSize(d)}
		c.entries[key] = e
		c.live++
		c.adBytes += e.adBytes
		return e, true
	}
	fresh := d.Version > e.Desc.Version || e.Deleted
	if d.Version >= e.Desc.Version {
		if e.Deleted {
			c.live++
		} else {
			c.adBytes -= e.adBytes
		}
		e.Desc = d
		e.Deleted = false
		e.adBytes = adSize(d)
		c.adBytes += e.adBytes
	}
	e.LastHeard = now
	return e, fresh
}

// Delete marks a session deleted (explicit SAP deletion packet).
func (c *Cache) Delete(key string, now time.Time) {
	if e, ok := c.entries[key]; ok {
		if !e.Deleted {
			c.live--
			c.adBytes -= e.adBytes
		}
		e.Deleted = true
		e.LastHeard = now
	}
}

// Get returns a live (non-deleted) entry.
func (c *Cache) Get(key string) (*Entry, bool) {
	e, ok := c.entries[key]
	if !ok || e.Deleted {
		return nil, false
	}
	return e, true
}

// Peek returns the entry for key whether or not it is deleted — the
// admission layer validates incoming packets against tombstones too
// (a deleted session must not be resurrected by a replayed announcement
// of the same version).
func (c *Cache) Peek(key string) (*Entry, bool) {
	e, ok := c.entries[key]
	return e, ok
}

// Remove hard-deletes an entry (admission-layer eviction). Unlike Delete
// it leaves no tombstone: the budget counts tombstones as occupancy, so
// eviction must actually release the slot.
func (c *Cache) Remove(key string) {
	if e, ok := c.entries[key]; ok {
		if !e.Deleted {
			c.live--
			c.adBytes -= e.adBytes
		}
		delete(c.entries, key)
	}
}

// Size returns the total number of entries, including deletion
// tombstones — the memory footprint the session budget bounds.
func (c *Cache) Size() int {
	return len(c.entries)
}

// Len returns the number of live entries.
func (c *Cache) Len() int { return c.live }

// Expire evicts entries unheard for Timeout (and deleted entries unheard
// for Timeout/10), returning the evicted keys in sorted order. The sort
// matters: expiry order reaches the trace, the event stream, and the
// journal, all of which must replay identically from a seed, and it is
// what lets a sharded cache's per-shard expiries merge into the same
// sequence the unsharded cache produces.
func (c *Cache) Expire(now time.Time) []string {
	var evicted []string
	for key, e := range c.entries { //mclint:maporder evictions are sorted before returning
		limit := c.Timeout
		if e.Deleted {
			limit = c.Timeout / 10
		}
		if now.Sub(e.LastHeard) > limit {
			if !e.Deleted {
				c.live--
				c.adBytes -= e.adBytes
			}
			delete(c.entries, key)
			evicted = append(evicted, key)
		}
	}
	sort.Strings(evicted)
	return evicted
}

// All returns every entry including deletion tombstones (iteration order
// unspecified); the admission layer builds eviction candidates from it.
func (c *Cache) All() []*Entry {
	out := make([]*Entry, 0, len(c.entries))
	for _, e := range c.entries { //mclint:maporder consumers are order-insensitive or sort (see Sharded doc)
		out = append(out, e)
	}
	return out
}

// Live returns all live entries (iteration order unspecified).
func (c *Cache) Live() []*Entry {
	out := make([]*Entry, 0, len(c.entries))
	for _, e := range c.entries { //mclint:maporder consumers are order-insensitive or sort (see Sharded doc)
		if !e.Deleted {
			out = append(out, e)
		}
	}
	return out
}

// CountFresh counts live entries heard within staleAfter of now — the
// degradation tiers' pressure signal. The count is commutative over
// entries, so per-shard counts sum to exactly this scan's result.
func (c *Cache) CountFresh(now time.Time, staleAfter time.Duration) int {
	fresh := 0
	for _, e := range c.entries { //mclint:maporder commutative count
		if !e.Deleted && now.Sub(e.LastHeard) < staleAfter {
			fresh++
		}
	}
	return fresh
}

// TotalAdBytes is the summed announcement size of live entries for the
// bandwidth budget: SDP payload + SAP header per entry, a nominal size
// for invalid cached descriptions. Maintained incrementally, so this is
// O(1) — it runs on every announcement send.
func (c *Cache) TotalAdBytes() int { return c.adBytes }
