package announce

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// AtomicWriteFile writes a file crash-safely: the content goes to a
// temporary file in the same directory, is fsynced, and only then renamed
// over path. A crash at any point leaves either the old file or the new
// one, never a torn mixture — which is what lets a daemon checkpoint its
// session cache on a timer and still trust the file after a kill -9.
//
// write receives the temporary file; any error it returns aborts the
// replacement and leaves path untouched.
func AtomicWriteFile(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("announce: atomic write %s: %w", path, err)
	}
	tmpName := tmp.Name()
	replaced := false
	defer func() {
		if !replaced {
			_ = tmp.Close()        // double close after the success path is a harmless no-op error
			_ = os.Remove(tmpName) // best-effort: leftover temp files are cosmetic
		}
	}()
	if err := write(tmp); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("announce: atomic write %s: sync: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("announce: atomic write %s: close: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("announce: atomic write %s: %w", path, err)
	}
	replaced = true
	// Fsync the directory so the rename itself survives a power cut.
	// Best-effort: some filesystems refuse directory syncs, and the data
	// file is already durable.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()  // best-effort directory durability
		_ = d.Close() // read-only handle
	}
	return nil
}
