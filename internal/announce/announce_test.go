package announce

import (
	"math"
	"net/netip"
	"testing"
	"time"

	"sessiondir/internal/session"
)

func desc(id uint64, version uint64) *session.Description {
	return &session.Description{
		ID:      id,
		Version: version,
		Origin:  netip.MustParseAddr("10.0.0.1"),
		Name:    "s",
		Group:   netip.MustParseAddr("224.2.128.1"),
		TTL:     127,
		Media:   []session.Media{{Type: "audio", Port: 1000, Proto: "RTP/AVP", Format: "0"}},
	}
}

func TestSteadyInterval(t *testing.T) {
	// Few sessions: floor applies.
	if got := SteadyInterval(100, DefaultBandwidthBps); got != MinInterval {
		t.Fatalf("small: %v", got)
	}
	// 1 MB of ads at 4000 bps = 2000 s.
	if got := SteadyInterval(1000000, DefaultBandwidthBps); got != 2000*time.Second {
		t.Fatalf("large: %v", got)
	}
	// Defaults for bad inputs.
	if got := SteadyInterval(-5, 0); got != MinInterval {
		t.Fatalf("bad input: %v", got)
	}
}

func TestBackoffSchedule(t *testing.T) {
	b := DefaultBackoff(600 * time.Second)
	want := []time.Duration{
		5 * time.Second, 10 * time.Second, 20 * time.Second, 40 * time.Second,
		80 * time.Second, 160 * time.Second, 320 * time.Second,
		600 * time.Second, 600 * time.Second,
	}
	for n, w := range want {
		if got := b.IntervalAfter(n); got != w {
			t.Fatalf("IntervalAfter(%d) = %v want %v", n, got, w)
		}
	}
}

func TestBackoffDegenerate(t *testing.T) {
	b := Backoff{Initial: 0, Factor: 2, Steady: 100 * time.Second}
	if b.IntervalAfter(0) != 100*time.Second {
		t.Fatal("zero initial should jump to steady")
	}
	b = Backoff{Initial: 10 * time.Second, Factor: 0.5, Steady: 100 * time.Second}
	// Factor below 1 clamps to constant.
	if b.IntervalAfter(5) != 10*time.Second {
		t.Fatalf("got %v", b.IntervalAfter(5))
	}
	if DefaultBackoff(0).Steady != MinInterval {
		t.Fatal("default steady")
	}
}

func TestMeanDiscoveryDelayMatchesPaper(t *testing.T) {
	// Paper §2.3: constant 10-minute repeats, 2% loss, 200 ms delay →
	// ≈12 s mean. Model that as a constant schedule.
	constant := Backoff{Initial: 600 * time.Second, Factor: 1, Steady: 600 * time.Second}
	got := constant.MeanDiscoveryDelay(0.02, 0.2)
	if math.Abs(got-12.2) > 0.6 {
		t.Fatalf("constant schedule delay %v, paper says ≈12 s", got)
	}
	// With the 5 s-start exponential schedule the paper expects ≈0.3 s.
	exp := DefaultBackoff(600 * time.Second)
	got = exp.MeanDiscoveryDelay(0.02, 0.2)
	if got > 0.6 || got < 0.15 {
		t.Fatalf("exponential schedule delay %v, paper says ≈0.3 s", got)
	}
}

func TestCacheObserve(t *testing.T) {
	c := NewCache(time.Hour)
	now := time.Unix(1000, 0)
	e, fresh := c.Observe(desc(1, 1), now)
	if !fresh || e.FirstHeard != now {
		t.Fatal("first observation should be fresh")
	}
	// Same version re-announcement: not fresh.
	if _, fresh := c.Observe(desc(1, 1), now.Add(time.Minute)); fresh {
		t.Fatal("re-announcement should not be fresh")
	}
	// New version: fresh.
	if _, fresh := c.Observe(desc(1, 2), now.Add(2*time.Minute)); !fresh {
		t.Fatal("new version should be fresh")
	}
	// Old version does not clobber newer cached state.
	e, _ = c.Observe(desc(1, 1), now.Add(3*time.Minute))
	if e.Desc.Version != 2 {
		t.Fatalf("version regressed to %d", e.Desc.Version)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestCacheDeleteAndRevive(t *testing.T) {
	c := NewCache(time.Hour)
	now := time.Unix(1000, 0)
	c.Observe(desc(1, 1), now)
	key := desc(1, 1).Key()
	c.Delete(key, now.Add(time.Minute))
	if _, ok := c.Get(key); ok {
		t.Fatal("deleted entry still live")
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d", c.Len())
	}
	// A re-announcement revives it as fresh.
	if _, fresh := c.Observe(desc(1, 1), now.Add(2*time.Minute)); !fresh {
		t.Fatal("revival should be fresh")
	}
	if _, ok := c.Get(key); !ok {
		t.Fatal("revived entry not live")
	}
}

func TestCacheExpire(t *testing.T) {
	c := NewCache(10 * time.Minute)
	now := time.Unix(0, 0)
	c.Observe(desc(1, 1), now)
	c.Observe(desc(2, 1), now.Add(8*time.Minute))
	evicted := c.Expire(now.Add(11 * time.Minute))
	if len(evicted) != 1 || evicted[0] != desc(1, 1).Key() {
		t.Fatalf("evicted %v", evicted)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	// Deleted entries expire on the short fuse.
	c.Delete(desc(2, 1).Key(), now.Add(12*time.Minute))
	evicted = c.Expire(now.Add(14 * time.Minute))
	if len(evicted) != 1 {
		t.Fatalf("deleted entry not fast-expired: %v", evicted)
	}
}

func TestCacheLiveAndTotalBytes(t *testing.T) {
	c := NewCache(0)
	now := time.Unix(0, 0)
	c.Observe(desc(1, 1), now)
	c.Observe(desc(2, 1), now)
	c.Delete(desc(2, 1).Key(), now)
	live := c.Live()
	if len(live) != 1 || live[0].Desc.ID != 1 {
		t.Fatalf("live = %v", live)
	}
	if got := c.TotalAdBytes(); got < 50 || got > 1000 {
		t.Fatalf("TotalAdBytes = %d", got)
	}
}
