package announce

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func readFile(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// assertNoTempLeftovers fails if an AtomicWriteFile temp file survived in
// dir — both the success and the failure path must clean up.
func assertNoTempLeftovers(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

func TestAtomicWriteFileCreatesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache")

	for i, want := range []string{"first generation", "second generation"} {
		err := AtomicWriteFile(path, func(w io.Writer) error {
			_, werr := io.WriteString(w, want)
			return werr
		})
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if got := readFile(t, path); got != want {
			t.Fatalf("write %d: content %q, want %q", i, got, want)
		}
	}
	assertNoTempLeftovers(t, dir)
}

func TestAtomicWriteFileFailureKeepsOriginal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache")
	if err := os.WriteFile(path, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}

	boom := fmt.Errorf("serialization exploded")
	err := AtomicWriteFile(path, func(w io.Writer) error {
		_, _ = io.WriteString(w, "partial garbage that must never land")
		return boom
	})
	if err != boom {
		t.Fatalf("err = %v, want the write callback's error", err)
	}
	if got := readFile(t, path); got != "precious" {
		t.Fatalf("original clobbered: %q", got)
	}
	assertNoTempLeftovers(t, dir)
}

func TestAtomicWriteFileBadDirectory(t *testing.T) {
	err := AtomicWriteFile(filepath.Join(t.TempDir(), "nope", "cache"), func(io.Writer) error { return nil })
	if err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
}
