package announce

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"time"

	"sessiondir/internal/session"
)

// Cache persistence: sdr kept its session cache on disk so a restarted
// instance came up with "a complete current picture" instead of waiting a
// full announcement interval for every session — §2.3 leans on exactly
// this ("combined with local caching servers...") when arguing the
// invisible fraction can be kept small.
//
// Format (line-oriented):
//
//	sdcache v1
//	entry <firstHeardUnix> <lastHeardUnix> <sdpByteLen>
//	<sdp bytes>
//	...
//
// Deleted entries are not persisted: a restart may briefly resurrect a
// deleted session, which the deletion's re-announcement squelches.

const cacheHeader = "sdcache v1"

// Save writes all live entries to w.
func (c *Cache) Save(w io.Writer) error {
	return saveEntries(w, c.Live())
}

// saveEntries writes the v1 cache format for the given entries; shared
// by the flat cache (map order) and the sharded cache (sorted order).
func saveEntries(w io.Writer, entries []*Entry) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, cacheHeader); err != nil {
		return err
	}
	for _, e := range entries {
		data, err := e.Desc.MarshalSDP()
		if err != nil {
			continue // skip invalid cached descriptions
		}
		// bufio.Writer errors are sticky: once a write fails, later writes
		// are no-ops and the final Flush returns the first error.
		fmt.Fprintf(bw, "entry %d %d %d\n", e.FirstHeard.Unix(), e.LastHeard.Unix(), len(data)) //mclint:errdrop sticky; Flush reports it
		bw.Write(data)                                                                          //mclint:errdrop sticky; Flush reports it
		bw.WriteByte('\n')                                                                      //mclint:errdrop sticky; Flush reports it
	}
	return bw.Flush()
}

// Load merges persisted entries into the cache. Entries already expired
// relative to now (per the cache timeout) are skipped; fresher in-memory
// state wins over stale disk state. Returns the number of entries loaded.
func (c *Cache) Load(r io.Reader, now time.Time) (int, error) {
	return loadEntries(r, c.Restore, now)
}

// loadEntries parses the v1 cache format, handing each decoded entry to
// restore (Cache.Restore or the sharded equivalent) and counting the
// ones it reports as newly added.
func loadEntries(r io.Reader, restore func(desc *session.Description, first, last, now time.Time) bool, now time.Time) (int, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return 0, fmt.Errorf("announce: cache read: %w", err)
	}
	if strings.TrimSpace(header) != cacheHeader {
		return 0, fmt.Errorf("announce: bad cache header %q", strings.TrimSpace(header))
	}
	loaded := 0
	for {
		line, err := br.ReadString('\n')
		if err == io.EOF && line == "" {
			break
		}
		if err != nil && line == "" {
			return loaded, fmt.Errorf("announce: cache read: %w", err)
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var first, last int64
		var size int
		if _, err := fmt.Sscanf(line, "entry %d %d %d", &first, &last, &size); err != nil {
			return loaded, fmt.Errorf("announce: bad cache entry %q", line)
		}
		if size < 0 || size > 1<<20 {
			return loaded, fmt.Errorf("announce: implausible entry size %d", size)
		}
		buf := make([]byte, size+1) // + trailing newline
		if _, err := io.ReadFull(br, buf); err != nil {
			return loaded, fmt.Errorf("announce: truncated cache entry: %w", err)
		}
		desc, err := session.ParseSDP(buf[:size])
		if err != nil {
			continue // a corrupt entry should not poison the rest
		}
		if restore(desc, time.Unix(first, 0), time.Unix(last, 0), now) {
			loaded++
		}
	}
	return loaded, nil
}

// Restore merges one persisted entry, with Load's exact semantics:
// entries stale relative to now are skipped, fresher in-memory state
// wins over disk state (version upgrades excepted). The journaled store
// replays snapshot and journal records through this one entry at a
// time. Reports whether the entry was added as new.
func (c *Cache) Restore(desc *session.Description, first, last, now time.Time) bool {
	if now.Sub(last) > c.Timeout {
		return false // stale on disk
	}
	key := desc.Key()
	if existing, ok := c.entries[key]; ok {
		// In-memory state is at least as fresh; only upgrade versions.
		if desc.Version > existing.Desc.Version && !existing.Deleted {
			c.adBytes -= existing.adBytes
			existing.Desc = desc
			existing.adBytes = adSize(desc)
			c.adBytes += existing.adBytes
		}
		return false
	}
	e := &Entry{
		Desc:       desc,
		FirstHeard: first,
		LastHeard:  last,
		adBytes:    adSize(desc),
	}
	c.entries[key] = e
	c.live++
	c.adBytes += e.adBytes
	return true
}
