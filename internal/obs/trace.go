package obs

import (
	"bufio"
	"fmt"
	"io"
	"sync"
)

// TraceKind labels one structured trace event. The taxonomy follows the
// protocol's observable decisions (DESIGN.md §12): address allocations,
// the three clash-correction phases, announce/learn/expire soft-state
// transitions, and the admission layer's eviction/shed verdicts.
type TraceKind uint8

const (
	// TraceAllocate: an address was allocated for an owned session.
	TraceAllocate TraceKind = iota
	// TraceAnnounce: an announcement for an owned session was sent.
	TraceAnnounce
	// TraceClashMove: an owned session moved address (clash phase 2).
	TraceClashMove
	// TraceDefendOwn: we re-announced to defend our own session (phase 1).
	TraceDefendOwn
	// TraceDefendOther: we defended another site's session (phase 3).
	TraceDefendOther
	// TraceLearn: a previously unknown session entered the cache.
	TraceLearn
	// TraceExpire: a cached session timed out.
	TraceExpire
	// TraceEvict: the admission layer displaced a cached session.
	TraceEvict
	// TraceShed: a newcomer was dropped because the cache was full of
	// fresh state.
	TraceShed
	// TraceDelete: we withdrew one of our sessions.
	TraceDelete
)

// String implements fmt.Stringer.
func (k TraceKind) String() string {
	switch k {
	case TraceAllocate:
		return "allocate"
	case TraceAnnounce:
		return "announce"
	case TraceClashMove:
		return "clash-move"
	case TraceDefendOwn:
		return "defend-own"
	case TraceDefendOther:
		return "defend-other"
	case TraceLearn:
		return "learn"
	case TraceExpire:
		return "expire"
	case TraceEvict:
		return "evict"
	case TraceShed:
		return "shed"
	case TraceDelete:
		return "delete"
	default:
		return fmt.Sprintf("TraceKind(%d)", uint8(k))
	}
}

// TraceEvent is one recorded protocol event. At is virtual time in
// milliseconds since the recording component's epoch — never the wall
// clock, so a dump from a seeded run is itself reproducible.
type TraceEvent struct {
	At   float64
	Kind TraceKind
	Key  string // session key ("" when not applicable)
	Addr uint32 // address index when the event concerns one, else 0
}

// Trace is a bounded ring buffer of TraceEvents. When full, the oldest
// event is overwritten and counted as dropped; recording is a slot
// assignment under a short mutex — no allocation, no I/O, no RNG — so an
// attached tracer cannot perturb a deterministic run. A nil *Trace is a
// valid no-op recorder, which is how tracing stays opt-in without
// call-site branching.
type Trace struct {
	mu  sync.Mutex
	buf []TraceEvent
	n   uint64 // total events ever recorded
}

// NewTrace returns a tracer retaining the last capacity events.
// capacity must be positive.
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		panic(fmt.Sprintf("obs: NewTrace capacity %d must be positive", capacity))
	}
	return &Trace{buf: make([]TraceEvent, capacity)}
}

// Record appends one event, overwriting the oldest when full. Safe on a
// nil receiver (no-op).
func (t *Trace) Record(e TraceEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.buf[t.n%uint64(len(t.buf))] = e
	t.n++
	t.mu.Unlock()
}

// Total returns how many events have ever been recorded.
func (t *Trace) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Dropped returns how many events have been overwritten by ring
// overflow.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n <= uint64(len(t.buf)) {
		return 0
	}
	return t.n - uint64(len(t.buf))
}

// Events returns the retained events, oldest first.
func (t *Trace) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	capacity := uint64(len(t.buf))
	count := t.n
	if count > capacity {
		count = capacity
	}
	out := make([]TraceEvent, 0, count)
	start := t.n - count
	for i := uint64(0); i < count; i++ {
		out = append(out, t.buf[(start+i)%capacity])
	}
	return out
}

// WriteText renders the retained events as one line each —
// "<at_ms> <kind> <key> addr=<n>" — preceded by a summary header. The
// output of two same-seed runs is byte-identical.
func (t *Trace) WriteText(w io.Writer) error {
	events := t.Events()
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# trace: %d events retained, %d recorded, %d dropped\n",
		len(events), t.Total(), t.Dropped())
	for _, e := range events {
		fmt.Fprintf(bw, "%.3f %s %s addr=%d\n", e.At, e.Kind, e.Key, e.Addr)
	}
	return bw.Flush()
}
