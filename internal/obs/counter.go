package obs

import "sync/atomic"

// Counter is a monotonically increasing counter. Updates are a single
// atomic add — allocation-free and safe from any goroutine, so Inc can
// sit on packet receive paths and allocator hot loops.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) kind() string { return "counter" }

func (c *Counter) sample(name string, out []MetricValue) []MetricValue {
	return append(out, MetricValue{Name: name, Kind: "counter", Value: float64(c.v.Load())})
}

// Gauge is an integer gauge: a value that can go up and down (cache
// occupancy, queue depth). Updates are single atomics.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) kind() string { return "gauge" }

func (g *Gauge) sample(name string, out []MetricValue) []MetricValue {
	return append(out, MetricValue{Name: name, Kind: "gauge", Value: float64(g.v.Load())})
}

// counterFunc adapts an external monotone counter into the registry;
// the function runs at collection time only.
type counterFunc func() uint64

func (f counterFunc) kind() string { return "counter" }

func (f counterFunc) sample(name string, out []MetricValue) []MetricValue {
	return append(out, MetricValue{Name: name, Kind: "counter", Value: float64(f())})
}

// gaugeFunc adapts an external reading into a gauge.
type gaugeFunc func() float64

func (f gaugeFunc) kind() string { return "gauge" }

func (f gaugeFunc) sample(name string, out []MetricValue) []MetricValue {
	return append(out, MetricValue{Name: name, Kind: "gauge", Value: f()})
}
