package obs

import (
	"fmt"
	"strconv"
	"sync/atomic"

	"sessiondir/internal/stats"
)

// Histogram is a fixed-bucket histogram over int64 observations (byte
// sizes, microsecond latencies, address indices). Bucket bounds are
// fixed at registration; Observe is a bucket scan plus three atomic
// adds — allocation-free, so it can sit on the packet receive path.
//
// It deliberately complements stats.IntHistogram (the simulators'
// exact-count histogram): that one grows to the data and is single-
// threaded; this one is bounded and concurrent. ObserveIntHistogram
// bridges the two, folding an experiment's exact histogram into the
// registry's fixed buckets so both report through one schema.
type Histogram struct {
	bounds []int64 // ascending inclusive upper bounds
	counts []atomic.Uint64
	sum    atomic.Int64
	total  atomic.Uint64
}

func newHistogram(bounds []int64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("obs: histogram bounds must be strictly ascending (bounds[%d]=%d <= bounds[%d]=%d)",
				i, bounds[i], i-1, bounds[i-1])
		}
	}
	return &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1), // +1 for +Inf
	}, nil
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
}

// ObserveIntHistogram folds every observation of src into h. src must
// not be mutated concurrently.
func (h *Histogram) ObserveIntHistogram(src *stats.IntHistogram) {
	for v := 0; v <= src.Max(); v++ {
		if n := src.Count(v); n > 0 {
			i := 0
			for i < len(h.bounds) && int64(v) > h.bounds[i] {
				i++
			}
			h.counts[i].Add(uint64(n))
			h.sum.Add(int64(v) * n)
			h.total.Add(uint64(n))
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Buckets returns the bounds and the cumulative count at or below each
// bound, ending with the +Inf bucket (== Count()). The two slices are
// freshly allocated snapshots.
func (h *Histogram) Buckets() (bounds []int64, cumulative []uint64) {
	bounds = append([]int64(nil), h.bounds...)
	cumulative = make([]uint64, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		cumulative[i] = cum
	}
	return bounds, cumulative
}

func (h *Histogram) kind() string { return "histogram" }

func (h *Histogram) sample(name string, out []MetricValue) []MetricValue {
	bounds, cum := h.Buckets()
	for i, b := range bounds {
		out = append(out, MetricValue{
			Name:  name + "_bucket_le_" + strconv.FormatInt(b, 10),
			Kind:  "histogram",
			Value: float64(cum[i]),
		})
	}
	out = append(out, MetricValue{Name: name + "_bucket_le_inf", Kind: "histogram", Value: float64(cum[len(cum)-1])})
	out = append(out, MetricValue{Name: name + "_sum", Kind: "histogram", Value: float64(h.Sum())})
	out = append(out, MetricValue{Name: name + "_count", Kind: "histogram", Value: float64(h.Count())})
	return out
}
