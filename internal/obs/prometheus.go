package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), families in lexical name order.
// Counter and gauge families are single unlabelled samples; histograms
// render cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, name := range r.sortedNames() {
		e := r.metrics[name]
		if e.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", name, e.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, e.m.kind())
		switch m := e.m.(type) {
		case *Histogram:
			bounds, cum := m.Buckets()
			for i, b := range bounds {
				fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", name, strconv.FormatInt(b, 10), cum[i])
			}
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, cum[len(cum)-1])
			fmt.Fprintf(bw, "%s_sum %d\n", name, m.Sum())
			fmt.Fprintf(bw, "%s_count %d\n", name, m.Count())
		default:
			// Scalar families flatten to exactly one sample named after
			// the family itself.
			for _, s := range e.m.sample(name, nil) {
				fmt.Fprintf(bw, "%s %s\n", s.Name, formatValue(s.Value))
			}
		}
	}
	return bw.Flush()
}

// formatValue renders integers without an exponent or trailing zeros and
// everything else with full float precision.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
