// Package obs is the observability layer: a dependency-free metrics
// registry (counters, gauges, fixed-bucket histograms) with atomic,
// allocation-free hot-path updates, plus a structured event tracer
// (trace.go) whose ring buffer records typed protocol events on virtual
// time. Every runtime layer — the directory, admission control, the
// transports, the allocators — registers its instruments here; sdrd
// exposes the registry as Prometheus text and expvar, and mcbench folds
// registry snapshots into BENCH.json so perf and occupancy metrics share
// one schema (DESIGN.md §12).
//
// Determinism contract: nothing in this package reads the wall clock or
// draws randomness. Counters only observe decisions made elsewhere, and
// the tracer stamps events with caller-supplied virtual time, so enabling
// observability never perturbs a seeded run — chaos replays stay
// bit-identical with tracing on.
//
// Metric names are validated at registration time: they must be
// snake_case (`^[a-z][a-z0-9_]*$`) and unique within their registry.
// The error-returning constructors are the production path; the Must
// variants panic and are for wiring code and tests where a bad name is a
// programming error. mclint's metricname analyzer enforces the same rule
// statically on literal names.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// metric is the registry's view of one registered instrument.
type metric interface {
	// kind is the Prometheus metric family type: counter, gauge, histogram.
	kind() string
	// sample flattens the current value(s) into name/value pairs. For
	// scalars this is one sample named after the metric itself; histograms
	// expand to their buckets, sum, and count.
	sample(name string, out []MetricValue) []MetricValue
}

// MetricValue is one flattened sample of a metric — the unit of
// Registry.Snapshot and the schema mcbench writes into BENCH.json.
type MetricValue struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"`
	Value float64 `json:"value"`
}

// entry pairs a registered metric with its help text.
type entry struct {
	m    metric
	help string
}

// Registry holds named metrics. Registration (rare, at wiring time) is
// mutex-guarded; updates to registered counters, gauges and histograms
// are atomic and never touch the registry lock, so the hot path is
// contention- and allocation-free.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]entry)}
}

// ValidName reports whether name is a legal metric name: snake_case,
// starting with a letter (`^[a-z][a-z0-9_]*$`).
func ValidName(name string) bool {
	if name == "" || name[0] < 'a' || name[0] > 'z' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			return false
		}
	}
	return true
}

// Sanitize lowers s and maps every non-alphanumeric run to a single
// underscore, yielding a ValidName-clean fragment for dynamic names
// (e.g. an allocator's display name "AIPR-1 (20% gap)" → "aipr_1_20_gap").
func Sanitize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	pendingSep := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'A' && c <= 'Z':
			c += 'a' - 'A'
			fallthrough
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			if pendingSep && b.Len() > 0 {
				b.WriteByte('_')
			}
			pendingSep = false
			b.WriteByte(c)
		default:
			pendingSep = true
		}
	}
	out := b.String()
	if out == "" || out[0] >= '0' && out[0] <= '9' {
		out = "m_" + out
	}
	return out
}

// register validates the name and adds m under it.
func (r *Registry) register(name, help string, m metric) error {
	if !ValidName(name) {
		return fmt.Errorf("obs: metric name %q is not snake_case ([a-z][a-z0-9_]*)", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.metrics[name]; dup {
		return fmt.Errorf("obs: metric %q already registered", name)
	}
	r.metrics[name] = entry{m: m, help: help}
	return nil
}

// mustRegister is the panic wrapper shared by the Must constructors.
func mustRegister(err error) {
	if err != nil {
		panic(err)
	}
}

// Counter registers a new counter. Errors on an invalid or duplicate
// name — the production registration path.
func (r *Registry) Counter(name, help string) (*Counter, error) {
	c := &Counter{}
	if err := r.register(name, help, c); err != nil {
		return nil, err
	}
	return c, nil
}

// MustCounter is Counter, panicking on error.
func (r *Registry) MustCounter(name, help string) *Counter {
	c, err := r.Counter(name, help)
	mustRegister(err)
	return c
}

// Gauge registers a new integer gauge.
func (r *Registry) Gauge(name, help string) (*Gauge, error) {
	g := &Gauge{}
	if err := r.register(name, help, g); err != nil {
		return nil, err
	}
	return g, nil
}

// MustGauge is Gauge, panicking on error.
func (r *Registry) MustGauge(name, help string) *Gauge {
	g, err := r.Gauge(name, help)
	mustRegister(err)
	return g
}

// CounterFunc registers a counter whose value is read from fn at
// collection time. It adapts pre-existing counters (an atomic field, a
// mutex-guarded stats struct) into the registry without changing their
// hot path; fn runs only when the registry is scraped or snapshotted and
// must be safe to call from any goroutine.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) error {
	return r.register(name, help, counterFunc(fn))
}

// MustCounterFunc is CounterFunc, panicking on error.
func (r *Registry) MustCounterFunc(name, help string, fn func() uint64) {
	mustRegister(r.CounterFunc(name, help, fn))
}

// GaugeFunc registers a gauge whose value is read from fn at collection
// time, under the same rules as CounterFunc.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) error {
	return r.register(name, help, gaugeFunc(fn))
}

// MustGaugeFunc is GaugeFunc, panicking on error.
func (r *Registry) MustGaugeFunc(name, help string, fn func() float64) {
	mustRegister(r.GaugeFunc(name, help, fn))
}

// Histogram registers a fixed-bucket histogram. bounds are ascending
// inclusive upper bounds; an implicit +Inf bucket is appended.
func (r *Registry) Histogram(name, help string, bounds []int64) (*Histogram, error) {
	h, err := newHistogram(bounds)
	if err != nil {
		return nil, err
	}
	if err := r.register(name, help, h); err != nil {
		return nil, err
	}
	return h, nil
}

// MustHistogram is Histogram, panicking on error.
func (r *Registry) MustHistogram(name, help string, bounds []int64) *Histogram {
	h, err := r.Histogram(name, help, bounds)
	mustRegister(err)
	return h
}

// sortedNames returns the registered names in lexical order. Caller must
// hold r.mu.
func (r *Registry) sortedNames() []string {
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Snapshot flattens every registered metric into sorted name/value
// samples: counters and gauges one sample each, histograms their
// cumulative buckets plus sum and count. The result is deterministic for
// deterministic workloads, which is what lets BENCH.json carry registry
// values across commits.
func (r *Registry) Snapshot() []MetricValue {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]MetricValue, 0, len(r.metrics))
	for _, name := range r.sortedNames() {
		out = r.metrics[name].m.sample(name, out)
	}
	return out
}
