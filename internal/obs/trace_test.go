package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestTraceNilIsNoOp(t *testing.T) {
	var tr *Trace
	tr.Record(TraceEvent{Kind: TraceLearn}) // must not panic
	if tr.Total() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Error("nil trace reported state")
	}
}

func TestTraceOrderingBeforeOverflow(t *testing.T) {
	tr := NewTrace(8)
	for i := 0; i < 5; i++ {
		tr.Record(TraceEvent{At: float64(i), Kind: TraceAnnounce})
	}
	ev := tr.Events()
	if len(ev) != 5 {
		t.Fatalf("got %d events, want 5", len(ev))
	}
	for i, e := range ev {
		if e.At != float64(i) {
			t.Errorf("event %d has At=%v, want %d (oldest-first order)", i, e.At, i)
		}
	}
	if tr.Dropped() != 0 {
		t.Errorf("dropped = %d, want 0", tr.Dropped())
	}
}

func TestTraceOverflowDropsOldest(t *testing.T) {
	const capacity = 4
	tr := NewTrace(capacity)
	for i := 0; i < 10; i++ {
		tr.Record(TraceEvent{At: float64(i), Kind: TraceClashMove})
	}
	if tr.Total() != 10 {
		t.Errorf("total = %d, want 10", tr.Total())
	}
	if tr.Dropped() != 10-capacity {
		t.Errorf("dropped = %d, want %d", tr.Dropped(), 10-capacity)
	}
	ev := tr.Events()
	if len(ev) != capacity {
		t.Fatalf("got %d events, want %d", len(ev), capacity)
	}
	for i, e := range ev {
		if want := float64(10 - capacity + i); e.At != want {
			t.Errorf("event %d has At=%v, want %v (newest %d retained, oldest-first)",
				i, e.At, want, capacity)
		}
	}
}

func TestTraceWriteText(t *testing.T) {
	tr := NewTrace(16)
	tr.Record(TraceEvent{At: 1000, Kind: TraceAllocate, Key: "k1", Addr: 42})
	tr.Record(TraceEvent{At: 2500.5, Kind: TraceEvict, Key: "k2"})
	var sb strings.Builder
	if err := tr.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "# trace: 2 events retained, 2 recorded, 0 dropped\n" +
		"1000.000 allocate k1 addr=42\n" +
		"2500.500 evict k2 addr=0\n"
	if got != want {
		t.Errorf("WriteText:\n%s\nwant:\n%s", got, want)
	}
}

func TestTraceKindStrings(t *testing.T) {
	kinds := []TraceKind{
		TraceAllocate, TraceAnnounce, TraceClashMove, TraceDefendOwn,
		TraceDefendOther, TraceLearn, TraceExpire, TraceEvict, TraceShed,
		TraceDelete,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if strings.HasPrefix(s, "TraceKind(") {
			t.Errorf("kind %d has no name", k)
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if got := TraceKind(250).String(); got != "TraceKind(250)" {
		t.Errorf("unknown kind renders %q", got)
	}
}

// TestTraceConcurrentRecord is the -race gate for the ring buffer.
func TestTraceConcurrentRecord(t *testing.T) {
	tr := NewTrace(128)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Record(TraceEvent{At: float64(i), Kind: TraceLearn, Key: fmt.Sprintf("w%d", w)})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = tr.Events()
			_ = tr.Dropped()
		}
	}()
	wg.Wait()
	<-done
	if tr.Total() != 4000 {
		t.Errorf("total = %d, want 4000", tr.Total())
	}
	if len(tr.Events()) != 128 {
		t.Errorf("retained = %d, want 128", len(tr.Events()))
	}
}
