package obs

import (
	"sync"
	"testing"
)

func TestShardedCounterSumsStripes(t *testing.T) {
	c := NewShardedCounter(4)
	c.Inc(0)
	c.Inc(1)
	c.Add(3, 5)
	c.Inc(7) // reduced modulo the stripe count
	if got := c.Value(); got != 8 {
		t.Fatalf("Value() = %d, want 8", got)
	}
	if NewShardedCounter(0).Value() != 0 {
		t.Fatal("degenerate stripe count")
	}
}

func TestShardedCounterConcurrent(t *testing.T) {
	c := NewShardedCounter(8)
	var wg sync.WaitGroup
	const workers, per = 16, 1000
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc(w)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("Value() = %d, want %d", got, workers*per)
	}
}

func TestShardedCounterRegistersAsPlainCounter(t *testing.T) {
	r := NewRegistry()
	c := r.MustShardedCounter("test_sharded_total", "striped test counter", 4)
	c.Add(2, 41)
	c.Inc(0)
	var found bool
	for _, mv := range r.Snapshot() {
		if mv.Name == "test_sharded_total" {
			found = true
			if mv.Kind != "counter" || mv.Value != 42 {
				t.Fatalf("sample = %+v, want counter 42", mv)
			}
		}
	}
	if !found {
		t.Fatal("sharded counter missing from snapshot")
	}
	if _, err := r.ShardedCounter("test_sharded_total", "dup", 2); err == nil {
		t.Fatal("duplicate registration should error")
	}
}
