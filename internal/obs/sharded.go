package obs

import "sync/atomic"

// ShardedCounter is a monotone counter striped across cache-line-padded
// slots, for hot paths that bump the same logical metric from many
// workers at once (the directory's parallel parse phase). It registers
// under a single metric name — scrapes, snapshots, and BENCH.json see
// one counter whose value is the sum of the stripes — so sharding the
// update path never changes the exported schema.
type ShardedCounter struct {
	stripes []counterStripe
}

// counterStripe pads each slot out to its own cache line so concurrent
// Incs on different stripes never contend.
type counterStripe struct {
	v atomic.Uint64
	_ [56]byte
}

// NewShardedCounter returns a counter with the given stripe count
// (values < 1 mean 1).
func NewShardedCounter(stripes int) *ShardedCounter {
	if stripes < 1 {
		stripes = 1
	}
	return &ShardedCounter{stripes: make([]counterStripe, stripes)}
}

// Inc adds one on the given stripe. Callers pick any stable per-worker
// index; it is reduced modulo the stripe count.
func (c *ShardedCounter) Inc(stripe int) {
	c.stripes[uint(stripe)%uint(len(c.stripes))].v.Add(1)
}

// Add adds n on the given stripe.
func (c *ShardedCounter) Add(stripe int, n uint64) {
	c.stripes[uint(stripe)%uint(len(c.stripes))].v.Add(n)
}

// Value returns the summed count across stripes.
func (c *ShardedCounter) Value() uint64 {
	var sum uint64
	for i := range c.stripes {
		sum += c.stripes[i].v.Load()
	}
	return sum
}

func (c *ShardedCounter) kind() string { return "counter" }

func (c *ShardedCounter) sample(name string, out []MetricValue) []MetricValue {
	return append(out, MetricValue{Name: name, Kind: "counter", Value: float64(c.Value())})
}

// ShardedCounter registers a striped counter under one metric name; the
// exported sample is the stripe sum, indistinguishable from a plain
// Counter to every consumer.
func (r *Registry) ShardedCounter(name, help string, stripes int) (*ShardedCounter, error) {
	c := NewShardedCounter(stripes)
	if err := r.register(name, help, c); err != nil {
		return nil, err
	}
	return c, nil
}

// MustShardedCounter is ShardedCounter, panicking on error.
func (r *Registry) MustShardedCounter(name, help string, stripes int) *ShardedCounter {
	c, err := r.ShardedCounter(name, help, stripes)
	mustRegister(err)
	return c
}
