package obs

import (
	"strings"
	"sync"
	"testing"

	"sessiondir/internal/stats"
)

func TestValidName(t *testing.T) {
	valid := []string{"a", "dir_announcements_sent_total", "x9", "a_b_c", "udp_runts_total"}
	for _, n := range valid {
		if !ValidName(n) {
			t.Errorf("ValidName(%q) = false, want true", n)
		}
	}
	invalid := []string{"", "Foo", "9x", "_x", "dir-announce", "a.b", "a b", "ärger"}
	for _, n := range invalid {
		if ValidName(n) {
			t.Errorf("ValidName(%q) = true, want false", n)
		}
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"AIPR-1 (20% gap)": "aipr_1_20_gap",
		"IPR 7-band":       "ipr_7_band",
		"random":           "random",
		"20gap":            "m_20gap",
		"":                 "m_",
	}
	for in, want := range cases {
		if got := Sanitize(in); got != want {
			t.Errorf("Sanitize(%q) = %q, want %q", in, got, want)
		}
	}
	for in := range cases {
		if s := Sanitize(in); !ValidName(s) {
			t.Errorf("Sanitize(%q) = %q is not a valid name", in, s)
		}
	}
}

func TestRegistrationValidation(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Counter("ok_name_total", "h"); err != nil {
		t.Fatalf("valid name rejected: %v", err)
	}
	if _, err := r.Counter("ok_name_total", "h"); err == nil {
		t.Fatal("duplicate name accepted")
	}
	// Cross-type duplicates are still duplicates.
	if _, err := r.Gauge("ok_name_total", "h"); err == nil {
		t.Fatal("duplicate name accepted across metric types")
	}
	if _, err := r.Counter("Bad-Name", "h"); err == nil {
		t.Fatal("non-snake_case name accepted")
	}
	if err := r.CounterFunc("9leading", "h", func() uint64 { return 0 }); err == nil {
		t.Fatal("digit-leading name accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustCounter did not panic on duplicate")
		}
	}()
	r.MustCounter("ok_name_total", "h")
}

func TestHistogramBoundsValidation(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Histogram("h_one", "h", nil); err == nil {
		t.Fatal("empty bounds accepted")
	}
	if _, err := r.Histogram("h_two", "h", []int64{1, 1}); err == nil {
		t.Fatal("non-ascending bounds accepted")
	}
	if _, err := r.Histogram("h_three", "h", []int64{1, 2, 4}); err != nil {
		t.Fatalf("valid bounds rejected: %v", err)
	}
}

func TestCounterGaugeHistogramValues(t *testing.T) {
	r := NewRegistry()
	c := r.MustCounter("c_total", "a counter")
	g := r.MustGauge("g_now", "a gauge")
	h := r.MustHistogram("h_bytes", "a histogram", []int64{10, 100})

	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Errorf("gauge = %d, want 4", g.Value())
	}
	for _, v := range []int64{5, 10, 11, 1000} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 1026 {
		t.Errorf("histogram count=%d sum=%d, want 4, 1026", h.Count(), h.Sum())
	}
	bounds, cum := h.Buckets()
	if len(bounds) != 2 || cum[0] != 2 || cum[1] != 3 || cum[2] != 4 {
		t.Errorf("buckets: bounds=%v cumulative=%v", bounds, cum)
	}
}

func TestSnapshotSortedAndFlattened(t *testing.T) {
	r := NewRegistry()
	r.MustCounter("zz_total", "").Add(2)
	r.MustGauge("aa_now", "").Set(-1)
	r.MustHistogram("mm_bytes", "", []int64{8}).Observe(3)
	r.MustCounterFunc("ff_total", "", func() uint64 { return 9 })
	r.MustGaugeFunc("gg_now", "", func() float64 { return 2.5 })

	snap := r.Snapshot()
	var names []string
	byName := map[string]float64{}
	for _, s := range snap {
		names = append(names, s.Name)
		byName[s.Name] = s.Value
	}
	want := []string{
		"aa_now", "ff_total", "gg_now",
		"mm_bytes_bucket_le_8", "mm_bytes_bucket_le_inf", "mm_bytes_sum", "mm_bytes_count",
		"zz_total",
	}
	if len(names) != len(want) {
		t.Fatalf("snapshot names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("snapshot names = %v, want %v", names, want)
		}
	}
	if byName["zz_total"] != 2 || byName["aa_now"] != -1 || byName["ff_total"] != 9 ||
		byName["gg_now"] != 2.5 || byName["mm_bytes_count"] != 1 || byName["mm_bytes_sum"] != 3 {
		t.Errorf("snapshot values wrong: %v", byName)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.MustCounter("b_total", "announcements sent").Add(3)
	r.MustGauge("a_now", "cache size").Set(12)
	h := r.MustHistogram("c_bytes", "packet sizes", []int64{64, 1024})
	h.Observe(50)
	h.Observe(2000)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	wantLines := []string{
		"# HELP a_now cache size",
		"# TYPE a_now gauge",
		"a_now 12",
		"# TYPE b_total counter",
		"b_total 3",
		"# TYPE c_bytes histogram",
		`c_bytes_bucket{le="64"} 1`,
		`c_bytes_bucket{le="1024"} 1`,
		`c_bytes_bucket{le="+Inf"} 2`,
		"c_bytes_sum 2050",
		"c_bytes_count 2",
	}
	for _, line := range wantLines {
		if !strings.Contains(got, line+"\n") {
			t.Errorf("exposition missing line %q:\n%s", line, got)
		}
	}
	// Families appear in lexical order.
	if strings.Index(got, "a_now") > strings.Index(got, "b_total") ||
		strings.Index(got, "b_total") > strings.Index(got, "c_bytes") {
		t.Errorf("families not in lexical order:\n%s", got)
	}
}

// TestConcurrentUpdatesAndScrapes is the -race gate: writers hammer
// every metric type while readers scrape and snapshot.
func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.MustCounter("c_total", "")
	g := r.MustGauge("g_now", "")
	h := r.MustHistogram("h_v", "", []int64{4, 16, 64})
	r.MustCounterFunc("cf_total", "", func() uint64 { return c.Value() })

	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i % 100))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = r.Snapshot()
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != writers*perWriter {
		t.Errorf("counter = %d, want %d", c.Value(), writers*perWriter)
	}
	if g.Value() != writers*perWriter {
		t.Errorf("gauge = %d, want %d", g.Value(), writers*perWriter)
	}
	if h.Count() != writers*perWriter {
		t.Errorf("histogram count = %d, want %d", h.Count(), writers*perWriter)
	}
}

// TestHotPathZeroAlloc pins the allocation-free contract for every
// hot-path update operation.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.MustCounter("c_total", "")
	g := r.MustGauge("g_now", "")
	h := r.MustHistogram("h_v", "", []int64{64, 256, 1024, 65536})
	tr := NewTrace(64)
	ev := TraceEvent{At: 12.5, Kind: TraceAnnounce, Key: "k", Addr: 3}

	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(2) }},
		{"Gauge.Set", func() { g.Set(5) }},
		{"Gauge.Add", func() { g.Add(-1) }},
		{"Histogram.Observe", func() { h.Observe(300) }},
		{"Trace.Record", func() { tr.Record(ev) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(1000, tc.fn); allocs != 0 {
			t.Errorf("%s allocates %.1f per op, want 0", tc.name, allocs)
		}
	}
}

func TestObserveIntHistogram(t *testing.T) {
	var src stats.IntHistogram
	src.AddN(3, 5)
	src.AddN(20, 2)
	src.Add(100)

	r := NewRegistry()
	h := r.MustHistogram("h_v", "", []int64{10, 50})
	h.ObserveIntHistogram(&src)
	if h.Count() != 8 {
		t.Errorf("count = %d, want 8", h.Count())
	}
	if h.Sum() != 3*5+20*2+100 {
		t.Errorf("sum = %d, want %d", h.Sum(), 3*5+20*2+100)
	}
	_, cum := h.Buckets()
	if cum[0] != 5 || cum[1] != 7 || cum[2] != 8 {
		t.Errorf("cumulative = %v, want [5 7 8]", cum)
	}
}
