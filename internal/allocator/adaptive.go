package allocator

import (
	"fmt"
	"math"

	"sessiondir/internal/mcast"
	"sessiondir/internal/stats"
)

// DefaultTargetOccupancy is the paper's 67% band occupancy target, chosen
// from Figure 6 as roughly the fraction of a 10000-address band that can
// be allocated before propagation delay and loss alone push the clash
// probability to 0.5.
const DefaultTargetOccupancy = 0.67

// AdaptiveConfig parameterises the adaptive informed partitioned random
// allocator (Figures 8 and 12).
type AdaptiveConfig struct {
	// GapFraction is the share of the address space reserved for
	// inter-band gaps: 0.2 for AIPR-1, 0.5/0.6/0.7 for AIPR-2/3/4.
	GapFraction float64
	// TargetOccupancy is the band occupancy goal; 0 means the paper's 67%.
	TargetOccupancy float64
	// Margin is the §2.4.1 partition-map margin of safety; 0 means 2
	// (55 TTL classes).
	Margin int
	// Name overrides the display name.
	Name string
}

// Adaptive implements Deterministic Adaptive IPRMA (§2.4, Figure 8):
//
//   - one band per Figure-11 TTL class, clustered at the end of the space
//     corresponding to maximum TTL;
//   - each band's width grows with the number of *visible* sessions in it,
//     targeting the configured occupancy, starting from a single address;
//   - expanding higher-TTL bands push lower-TTL bands down the space;
//   - a configurable share of the space is reserved as inter-band gaps to
//     absorb churn in lower bands ("flash crowds") without collisions.
//
// The determinism property: a site allocating at TTL x derives the
// position of x's band purely from sessions with TTL ≥ x (band widths for
// higher classes, plus x's own band width). Those are exactly the sessions
// whose announcements any potential clash partner can also see, so — given
// a reliable announcement mechanism — all sites that could clash compute
// compatible layouts, and no clash occurs from layout disagreement alone.
type Adaptive struct {
	size      uint32
	gapFrac   float64
	occupancy float64
	pm        *PartitionMap
	name      string
}

// NewAdaptive returns a Deterministic Adaptive IPRMA allocator.
func NewAdaptive(size uint32, cfg AdaptiveConfig) *Adaptive {
	validateSize(size)
	if cfg.GapFraction < 0 || cfg.GapFraction >= 1 {
		panic(fmt.Sprintf("allocator: gap fraction %v outside [0,1)", cfg.GapFraction))
	}
	occ := cfg.TargetOccupancy
	if occ == 0 {
		occ = DefaultTargetOccupancy
	}
	if occ <= 0 || occ > 1 {
		panic(fmt.Sprintf("allocator: target occupancy %v outside (0,1]", occ))
	}
	margin := cfg.Margin
	if margin == 0 {
		margin = 2
	}
	name := cfg.Name
	if name == "" {
		name = fmt.Sprintf("AIPR (%d%% gap)", int(math.Round(cfg.GapFraction*100)))
	}
	return &Adaptive{
		size:      size,
		gapFrac:   cfg.GapFraction,
		occupancy: occ,
		pm:        NewPartitionMap(margin),
		name:      name,
	}
}

// Name implements Allocator.
func (a *Adaptive) Name() string { return a.name }

// Size implements Allocator.
func (a *Adaptive) Size() uint32 { return a.size }

// PartitionMap exposes the TTL-class mapping (for introspection/tests).
func (a *Adaptive) PartitionMap() *PartitionMap { return a.pm }

// Band is one laid-out address band: [Start, Start+Width).
type Band struct {
	Class int       // partition-map class index
	Low   mcast.TTL // lowest TTL of the class
	Start uint32
	Width uint32
	Count int // visible sessions in the class
}

// Layout computes the band layout a site with the given view uses. Bands
// are returned in descending TTL order (top of the space first). Only the
// classes present in the partition map are laid out; empty classes get the
// minimum single-address width, as in the paper's "initial band allocation
// allocates only a single address to each band".
func (a *Adaptive) Layout(visible []SessionInfo) []Band {
	counts := a.classCounts(visible)
	return a.layoutFromCounts(counts)
}

func (a *Adaptive) classCounts(visible []SessionInfo) []int {
	counts := make([]int, a.pm.NumClasses())
	for _, s := range visible {
		counts[a.pm.ClassOf(s.TTL)]++
	}
	return counts
}

func (a *Adaptive) layoutFromCounts(counts []int) []Band {
	bands := make([]Band, 0, a.pm.NumClasses())
	a.walkBands(counts, func(c int, start, width uint32) bool {
		bands = append(bands, Band{
			Class: c,
			Low:   a.pm.LowTTL(c),
			Start: start,
			Width: width,
			Count: counts[c],
		})
		return true
	})
	return bands
}

// walkBands runs the Figure-8 cursor walk top-down, yielding each band's
// bounds in descending TTL order; yield returning false stops the walk.
// It is the single source of truth for band placement, shared by Layout
// (which materialises []Band) and Allocate (which needs one band's bounds
// without allocating).
func (a *Adaptive) walkBands(counts []int, yield func(c int, start, width uint32) bool) {
	cursor := int64(a.size) // exclusive top of the next band
	for c := a.pm.NumClasses() - 1; c >= 0; c-- {
		width := int64(a.bandWidth(counts[c]))
		start := cursor - width
		if start < 0 {
			start = 0
			if width > int64(a.size) {
				width = int64(a.size)
			}
		}
		if !yield(c, uint32(start), uint32(width)) {
			return
		}
		cursor = start
		if counts[c] > 0 {
			cursor -= gapBelow(a.size, a.gapFrac)
		}
		if cursor < 0 {
			cursor = 0
		}
	}
}

// maxStackClasses bounds the on-stack class-count scratch in Allocate.
// The §2.4.1 rule yields at most 256 classes (one per TTL value), so the
// heap fallback below is unreachable in practice but kept for safety.
const maxStackClasses = 256

// expectedActiveBands is the band-count assumption the inter-band gap
// budget is divided by: TTL values cluster on a handful of conventional
// scopes (the paper's §2.3 example uses 8 partitions; DS4 exercises 7).
const expectedActiveBands = 8

// gapBelow sizes the slack left under a band holding sessions: the paper
// wants "a small gap between partitions with sessions in them so that
// partitions can move ... without colliding", while empty single-address
// bands pack tightly. The gap is a fixed share of the space — gapFrac
// divided across the expected number of active bands — so that it scales
// with the address space (absorbing band-width fluctuations that grow with
// the population) while, critically for the determinism property, never
// depending on the occupancy of bands *below* the one it protects.
func gapBelow(size uint32, gapFrac float64) int64 {
	if gapFrac <= 0 {
		return 0
	}
	return int64(math.Ceil(float64(size) * gapFrac / expectedActiveBands))
}

// bandWidth returns the width a band with the given visible session count
// wants: a single address when empty, else enough to hold the sessions at
// the target occupancy.
func (a *Adaptive) bandWidth(count int) uint32 {
	if count <= 0 {
		return 1
	}
	return uint32(math.Ceil(float64(count) / a.occupancy))
}

// Allocate implements Allocator. The hot path is allocation-free: class
// counts live in an on-stack scratch, the band walk yields bounds without
// materialising a layout, and the used-address view is a pooled bitset.
func (a *Adaptive) Allocate(visible []SessionInfo, ttl mcast.TTL, rng *stats.RNG) (mcast.Addr, error) {
	var countsBuf [maxStackClasses]int
	var counts []int
	if n := a.pm.NumClasses(); n <= len(countsBuf) {
		counts = countsBuf[:n]
	} else {
		counts = make([]int, n)
	}
	for _, s := range visible {
		counts[a.pm.ClassOf(s.TTL)]++
	}
	cls := a.pm.ClassOf(ttl)
	var bandStart, bandWidth uint32
	found := false
	a.walkBands(counts, func(c int, start, width uint32) bool {
		if c == cls {
			bandStart, bandWidth, found = start, width, true
			return false
		}
		return true
	})
	if !found {
		return 0, fmt.Errorf("allocator: no band for TTL %d (bug)", ttl)
	}
	// Allocate in the band; when it is (visibly) full, expand downward —
	// the paper's band growth pushing lower bands down the space. The
	// expansion may stray into lower bands' territory: that is precisely
	// the clash risk the inter-band gaps exist to absorb.
	used := acquireUsed(a.size, visible)
	defer releaseUsed(used)
	if addr, ok := expandingPick(bandStart, bandWidth, used, rng); ok {
		return addr, nil
	}
	return 0, fmt.Errorf("%w (class %d, TTL %d, %s)", ErrSpaceFull, cls, ttl, a.name)
}
