// Package allocator implements the paper's multicast address allocation
// algorithms: pure random (R), informed random (IR), static informed
// partitioned random (IPR k-band), adaptive informed partitioned random
// (AIPR, the deterministic Figure-8 variant with a configurable inter-band
// gap budget), and the IPR-7/AIPR hybrid (AIPR-H).
//
// All allocators work over an abstract address space of a fixed size and
// see the world through the *view* of the allocating site: the sessions
// whose announcements have reached that site. Scoping means different
// sites have different views; the clash behaviour that emerges from those
// differing views is exactly what the paper studies.
package allocator

import (
	"errors"
	"fmt"

	"sessiondir/internal/mcast"
	"sessiondir/internal/stats"
)

// SessionInfo is the slice of a session an allocator can see: its address
// and its scope.
type SessionInfo struct {
	Addr mcast.Addr
	TTL  mcast.TTL
}

// ErrSpaceFull is returned when the allocator cannot find any address it
// believes to be free for the requested scope.
var ErrSpaceFull = errors.New("allocator: no free address visible for requested scope")

// An Allocator picks multicast addresses for new sessions.
//
// Allocate receives the set of sessions currently visible at the
// allocating site (it must not retain or modify the slice) and the scope
// TTL of the new session, and returns an address index in [0, Size()).
// Implementations are deterministic given the rng stream.
//
// All allocators in this package are immutable after construction, so a
// single instance may be shared by concurrent experiment workers as long
// as each worker passes its own *stats.RNG (RNGs are not concurrency-safe;
// derive per-worker streams with Split).
type Allocator interface {
	// Name identifies the algorithm in experiment output, e.g. "IPR 7-band".
	Name() string
	// Size returns the number of addresses in the space being managed.
	Size() uint32
	// Allocate picks an address for a new session of scope ttl.
	Allocate(visible []SessionInfo, ttl mcast.TTL, rng *stats.RNG) (mcast.Addr, error)
	// AllocateBatch picks addresses for k new sessions of scope ttl in one
	// pass, appending them to dst and returning the extended slice. The
	// result is bit-identical to k sequential Allocate calls in which each
	// freshly allocated session is appended to the view between calls, but
	// band/partition state and the used-address view are computed once per
	// batch instead of once per address (see batch.go). On failure the
	// addresses allocated before the error are returned alongside it.
	// Implementations without a custom batch path may delegate to
	// AllocateBatchSerial, which is the semantic oracle.
	AllocateBatch(visible []SessionInfo, ttl mcast.TTL, k int, dst []mcast.Addr, rng *stats.RNG) ([]mcast.Addr, error)
}

// pickFreeInRange returns a uniformly random address in [start, start+width)
// that is not in used. It first tries rejection sampling (cheap when the
// range is sparsely occupied), then falls back to an exact selection so the
// result stays uniform even in nearly full ranges. The exact path is
// allocation-free: it counts the free slots word-parallel, draws one index,
// and selects that free slot directly — the same single rng draw and the
// same ascending-order choice the old collect-then-pick scan made, so
// results are bit-identical. ok is false if the range is fully occupied.
func pickFreeInRange(start, width uint32, used *usedSet, rng *stats.RNG) (mcast.Addr, bool) {
	if width == 0 {
		return 0, false
	}
	const rejectionTries = 32
	for i := 0; i < rejectionTries; i++ {
		a := mcast.Addr(start + uint32(rng.IntN(int(width))))
		if !used.has(a) {
			return a, true
		}
	}
	free := width - used.countUsed(start, start+width)
	if free == 0 {
		return 0, false
	}
	addr, ok := used.nthFree(start, start+width, uint32(rng.IntN(int(free))))
	return addr, ok
}

// expandingPick allocates from a nominal band [start, start+width),
// falling back to progressive downward expansion — the paper's band growth
// only ever "pushes" lower bands *down* the space (Figure 8); bands never
// grow upward into higher-TTL territory, because an upward stray would be
// invisible to the wider-scoped sites it endangers. It fails when the band
// and everything below it is visibly in use.
func expandingPick(start, width uint32, used *usedSet, rng *stats.RNG) (mcast.Addr, bool) {
	if addr, ok := pickFreeInRange(start, width, used, rng); ok {
		return addr, true
	}
	// Grow downward, doubling the expansion region until it hits bottom.
	expand := width
	if expand < 4 {
		expand = 4
	}
	for {
		lo := int64(start) - int64(expand)
		if lo < 0 {
			lo = 0
		}
		if addr, ok := pickFreeInRange(uint32(lo), start-uint32(lo), used, rng); ok {
			return addr, true
		}
		if lo == 0 {
			break
		}
		expand *= 2
	}
	return 0, false
}

func validateSize(size uint32) {
	if size == 0 {
		panic("allocator: zero-size address space")
	}
}

// Catalog returns one instance of every algorithm the paper simulates,
// configured as in Figures 5 and 12, over a space of the given size.
// It is the menu the experiment drivers and the mcbench tool iterate over.
func Catalog(size uint32) []Allocator {
	return []Allocator{
		NewRandom(size),
		NewInformedRandom(size),
		NewStaticPartitioned(size, IPR3Separators()),
		NewStaticPartitioned(size, IPR7Separators()),
		NewAdaptive(size, AdaptiveConfig{GapFraction: 0.2, Name: "AIPR-1 (20% gap)"}),
		NewAdaptive(size, AdaptiveConfig{GapFraction: 0.5, Name: "AIPR-2 (50% gap)"}),
		NewAdaptive(size, AdaptiveConfig{GapFraction: 0.6, Name: "AIPR-3 (60% gap)"}),
		NewAdaptive(size, AdaptiveConfig{GapFraction: 0.7, Name: "AIPR-4 (70% gap)"}),
		NewHybrid(size),
	}
}

// ByName returns the catalog allocator with the given Name.
func ByName(size uint32, name string) (Allocator, error) {
	for _, a := range Catalog(size) {
		if a.Name() == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("allocator: unknown algorithm %q", name)
}
