package allocator

import (
	"errors"
	"fmt"
	"testing"

	"sessiondir/internal/mcast"
	"sessiondir/internal/stats"
)

func TestCategoryAdaptiveBasics(t *testing.T) {
	a := NewCategoryAdaptive(1000, AdaptiveConfig{GapFraction: 0.2})
	if a.Name() != "Category-AIPR" || a.Size() != 1000 {
		t.Fatal("metadata")
	}
	rng := stats.NewRNG(1)
	var visible []CategorySession
	cats := []string{"music", "talks", "ietf"}
	for i := 0; i < 200; i++ {
		ttl := mcast.DS4().Sample(rng.IntN)
		cat := cats[rng.IntN(len(cats))]
		addr, err := a.Allocate(visible, ttl, cat, rng)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		for _, s := range visible {
			if s.Addr == addr {
				t.Fatalf("picked visible address %d", addr)
			}
		}
		visible = append(visible, CategorySession{Addr: addr, TTL: ttl, Category: cat})
	}
}

func TestCategoryAdaptiveOrderedBands(t *testing.T) {
	a := NewCategoryAdaptive(1000, AdaptiveConfig{GapFraction: 0.2})
	visible := []CategorySession{
		{Addr: 1, TTL: 127, Category: "b"},
		{Addr: 2, TTL: 127, Category: "a"},
		{Addr: 3, TTL: 15, Category: "a"},
	}
	bands := a.Layout(visible, 127, "a")
	// Expect order: class(127)/a, class(127)/b, class(15)/a — scope is the
	// primary index (descending), category the secondary (ascending).
	if len(bands) != 3 {
		t.Fatalf("bands = %v", bands)
	}
	if !(bands[0].Category == "a" && bands[1].Category == "b") {
		t.Fatalf("category order wrong: %v", bands)
	}
	if bands[0].Class != bands[1].Class || bands[2].Class >= bands[0].Class {
		t.Fatalf("class order wrong: %v", bands)
	}
	// Same-class categories get disjoint bands.
	if bands[0].Start < bands[1].Start+bands[1].Width && bands[1].Start < bands[0].Start+bands[0].Width {
		t.Fatalf("category bands overlap: %v", bands)
	}
}

func TestCategoryAdaptiveDeterminism(t *testing.T) {
	// Two sites agreeing on all sessions with TTL >= 63 compute identical
	// placements for every band at or above that scope, regardless of
	// their disagreements below.
	a := NewCategoryAdaptive(2000, AdaptiveConfig{GapFraction: 0.2})
	rng := stats.NewRNG(2)
	var shared, onlyA, onlyB []CategorySession
	cats := []string{"x", "y", "z"}
	for i := 0; i < 150; i++ {
		ttl := mcast.DS4().Sample(rng.IntN)
		s := CategorySession{
			Addr:     mcast.Addr(rng.IntN(2000)),
			TTL:      ttl,
			Category: cats[rng.IntN(len(cats))],
		}
		switch {
		case ttl >= 63:
			shared = append(shared, s)
		case rng.Bool(0.5):
			onlyA = append(onlyA, s)
		default:
			onlyB = append(onlyB, s)
		}
	}
	viewA := append(append([]CategorySession{}, shared...), onlyA...)
	viewB := append(append([]CategorySession{}, shared...), onlyB...)
	bandsA := a.Layout(viewA, 127, "x")
	bandsB := a.Layout(viewB, 127, "x")
	pm := NewPartitionMap(2)
	cls := pm.ClassOf(63)
	pick := func(bands []CategoryBand) []CategoryBand {
		var out []CategoryBand
		for _, b := range bands {
			if b.Class >= cls {
				out = append(out, b)
			}
		}
		return out
	}
	hiA, hiB := pick(bandsA), pick(bandsB)
	if len(hiA) != len(hiB) {
		t.Fatalf("band counts differ: %d vs %d", len(hiA), len(hiB))
	}
	for i := range hiA {
		if hiA[i] != hiB[i] {
			t.Fatalf("band %d differs:\n%+v\n%+v", i, hiA[i], hiB[i])
		}
	}
}

func TestCategoryAdaptiveExhaustion(t *testing.T) {
	a := NewCategoryAdaptive(8, AdaptiveConfig{GapFraction: 0})
	var visible []CategorySession
	rng := stats.NewRNG(3)
	for i := 0; i < 8; i++ {
		addr, err := a.Allocate(visible, 127, "only", rng)
		if err != nil {
			if errors.Is(err, ErrSpaceFull) {
				return // acceptable: bands + empties consumed the space
			}
			t.Fatal(err)
		}
		visible = append(visible, CategorySession{Addr: addr, TTL: 127, Category: "only"})
	}
	if _, err := a.Allocate(visible, 127, "only", rng); !errors.Is(err, ErrSpaceFull) {
		t.Fatalf("err = %v", err)
	}
}

func TestCategoryAdaptiveManyCategories(t *testing.T) {
	// Lots of categories at one scope must still tile without overlap.
	a := NewCategoryAdaptive(4000, AdaptiveConfig{GapFraction: 0.2})
	var visible []CategorySession
	rng := stats.NewRNG(4)
	for c := 0; c < 20; c++ {
		cat := fmt.Sprintf("cat%02d", c)
		for i := 0; i < 10; i++ {
			addr, err := a.Allocate(visible, 63, cat, rng)
			if err != nil {
				t.Fatalf("cat %s session %d: %v", cat, i, err)
			}
			visible = append(visible, CategorySession{Addr: addr, TTL: 63, Category: cat})
		}
	}
	bands := a.Layout(visible, 63, "cat00")
	for i := 1; i < len(bands); i++ {
		hi, lo := bands[i-1], bands[i]
		if lo.Start > 0 && lo.Start+lo.Width > hi.Start {
			t.Fatalf("bands overlap: %+v then %+v", hi, lo)
		}
	}
}
