package allocator

import (
	"fmt"

	"sessiondir/internal/mcast"
	"sessiondir/internal/obs"
	"sessiondir/internal/stats"
)

// Instrumented decorates an Allocator with per-allocator registry
// counters: successful picks, pick failures (visible space exhausted for
// the requested scope), and clash-driven moves. Counting is a single
// atomic add per call and never touches the rng, so an instrumented
// allocator draws exactly the sequence the bare one would — determinism
// is preserved.
//
// The Moves counter is owned here but incremented by the directory: a
// "move" is a clash-protocol decision (re-allocate an owned session),
// which the allocator itself cannot observe.
type Instrumented struct {
	inner Allocator

	// Picks counts successful Allocate calls.
	Picks *obs.Counter
	// Failures counts Allocate calls that returned an error.
	Failures *obs.Counter
	// Moves counts clash phase-2 re-allocations of owned sessions.
	Moves *obs.Counter
}

var _ Allocator = (*Instrumented)(nil)

// Instrument wraps a with counters registered on r under names derived
// from the allocator's display name, e.g. AIPR-1 (20% gap) →
// allocator_aipr_1_20_gap_picks_total. Registration errors (duplicate
// names when two same-named allocators share a registry) are returned,
// not panicked: the caller owns the registry layout.
func Instrument(a Allocator, r *obs.Registry) (*Instrumented, error) {
	prefix := "allocator_" + obs.Sanitize(a.Name()) + "_"
	picks, err := r.Counter(prefix+"picks_total", "successful address allocations by "+a.Name())
	if err != nil {
		return nil, fmt.Errorf("allocator: instrument %s: %w", a.Name(), err)
	}
	failures, err := r.Counter(prefix+"failures_total", "failed address allocations (space visibly full) by "+a.Name())
	if err != nil {
		return nil, fmt.Errorf("allocator: instrument %s: %w", a.Name(), err)
	}
	moves, err := r.Counter(prefix+"moves_total", "clash-driven re-allocations of owned sessions by "+a.Name())
	if err != nil {
		return nil, fmt.Errorf("allocator: instrument %s: %w", a.Name(), err)
	}
	return &Instrumented{inner: a, Picks: picks, Failures: failures, Moves: moves}, nil
}

// Name implements Allocator.
func (i *Instrumented) Name() string { return i.inner.Name() }

// Size implements Allocator.
func (i *Instrumented) Size() uint32 { return i.inner.Size() }

// Allocate implements Allocator, counting the outcome.
func (i *Instrumented) Allocate(visible []SessionInfo, ttl mcast.TTL, rng *stats.RNG) (mcast.Addr, error) {
	addr, err := i.inner.Allocate(visible, ttl, rng)
	if err != nil {
		i.Failures.Inc()
		return addr, err
	}
	i.Picks.Inc()
	return addr, nil
}
