package allocator

import (
	"fmt"
	"math"

	"sessiondir/internal/mcast"
	"sessiondir/internal/stats"
)

// Hybrid is AIPR-H from Figure 12: a hybrid of IPR 7-band and AIPR-1.
// It keeps IPR-7's seven static TTL bands, but sizes and positions them
// adaptively:
//
//   - the bands initially occupy the top 50% of the address space, with
//     20% of the space used for inter-band gaps;
//   - an expanding high-TTL band pushes lower bands downwards;
//   - a band that is pushed does not move its top below its initial
//     position unless forced, and when pushed while under 67% occupancy it
//     is reduced in width rather than displaced further.
type Hybrid struct {
	size      uint32
	occupancy float64
	seps      []mcast.TTL
	initTop   []uint32 // initial top (exclusive) per band, descending order
	initWidth uint32
	perGap    uint32
	name      string
}

// NewHybrid returns an AIPR-H allocator over a space of the given size.
func NewHybrid(size uint32) *Hybrid {
	validateSize(size)
	seps := IPR7Separators()
	nBands := len(seps) + 1
	// Top 50% of the space = bands (30%) + gaps (20%).
	gapBudget := uint32(0.2 * float64(size))
	perGap := gapBudget / uint32(nBands)
	bandBudget := size/2 - minU32(gapBudget, size/2)
	initWidth := bandBudget / uint32(nBands)
	if initWidth == 0 {
		initWidth = 1
	}
	h := &Hybrid{
		size:      size,
		occupancy: DefaultTargetOccupancy,
		seps:      seps,
		initWidth: initWidth,
		perGap:    perGap,
		name:      "AIPR-H (hybrid)",
	}
	// Initial tops, highest band first at the very top of the space.
	h.initTop = make([]uint32, nBands)
	cursor := size
	for i := 0; i < nBands; i++ { // i = 0 is the highest-TTL band
		h.initTop[i] = cursor
		next := int64(cursor) - int64(initWidth) - int64(perGap)
		if next < 0 {
			next = 0
		}
		cursor = uint32(next)
	}
	return h
}

func minU32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

// Name implements Allocator.
func (h *Hybrid) Name() string { return h.name }

// Size implements Allocator.
func (h *Hybrid) Size() uint32 { return h.size }

// bandOf mirrors StaticPartitioned.BandOf but numbers bands from the top:
// band 0 is the highest TTL band.
func (h *Hybrid) bandOf(t mcast.TTL) int {
	b := 0
	for _, s := range h.seps {
		if t >= s {
			b++
		}
	}
	return len(h.seps) - b
}

// Layout computes the seven bands, ordered highest TTL first.
func (h *Hybrid) Layout(visible []SessionInfo) []Band {
	nBands := len(h.seps) + 1
	counts := make([]int, nBands)
	for _, s := range visible {
		counts[h.bandOf(s.TTL)]++
	}
	bands := make([]Band, 0, nBands)
	h.walkBands(counts, func(i int, start, width uint32) bool {
		bands = append(bands, Band{
			Class: nBands - 1 - i, // class index ascending with TTL
			Low:   h.lowTTLOfBand(i),
			Start: start,
			Width: width,
			Count: counts[i],
		})
		return true
	})
	return bands
}

// walkBands runs the hybrid's push-and-shrink cursor walk top-down (band 0
// is the highest-TTL band), yielding each band's bounds; yield returning
// false stops the walk. Shared by Layout and the allocation-free Allocate.
func (h *Hybrid) walkBands(counts []int, yield func(i int, start, width uint32) bool) {
	cursor := h.size
	for i := 0; i < len(counts); i++ {
		top := h.initTop[i]
		pushed := cursor < top
		if pushed {
			top = cursor
		}
		width := uint32(math.Ceil(float64(counts[i]) / h.occupancy))
		if width < 1 {
			width = 1
		}
		if !pushed && width < h.initWidth {
			// Unpushed: keep at least the initial width. (A band pushed
			// from above while under-occupied shrinks to need instead.)
			width = h.initWidth
		}
		if width > top {
			width = top // clamp at the bottom of the space
		}
		start := top - width
		if !yield(i, start, width) {
			return
		}
		next := int64(start) - int64(h.perGap)
		if next < 0 {
			next = 0
		}
		cursor = uint32(next)
	}
}

func (h *Hybrid) lowTTLOfBand(i int) mcast.TTL {
	// Band i counts from the top; band nBands-1 starts at TTL 0.
	idx := len(h.seps) - i // number of separators below the band
	if idx == 0 {
		return 0
	}
	return h.seps[idx-1]
}

// Allocate implements Allocator. Like Adaptive.Allocate, the hot path is
// allocation-free: on-stack band counts, a walk that stops at the target
// band, and a pooled used-address bitset.
func (h *Hybrid) Allocate(visible []SessionInfo, ttl mcast.TTL, rng *stats.RNG) (mcast.Addr, error) {
	var countsBuf [16]int
	counts := countsBuf[:len(h.seps)+1]
	for _, s := range visible {
		counts[h.bandOf(s.TTL)]++
	}
	target := h.bandOf(ttl)
	var bandStart, bandWidth uint32
	h.walkBands(counts, func(i int, start, width uint32) bool {
		if i == target {
			bandStart, bandWidth = start, width
			return false
		}
		return true
	})
	used := acquireUsed(h.size, visible)
	defer releaseUsed(used)
	if addr, ok := expandingPick(bandStart, bandWidth, used, rng); ok {
		return addr, nil
	}
	return 0, fmt.Errorf("%w (band %d, TTL %d, %s)", ErrSpaceFull, target, ttl, h.name)
}
