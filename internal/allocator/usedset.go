package allocator

import (
	"math/bits"
	"sync"

	"sessiondir/internal/mcast"
)

// usedSet is a word-parallel bitset over address indices, replacing the
// former map[mcast.Addr]bool presence view. Instances are pooled so the
// per-Allocate hot path performs no heap allocation in steady state:
// acquire with acquireUsed, release with releaseUsed.
type usedSet struct {
	words []uint64
	size  uint32
}

// usedPool recycles usedSet backing arrays across Allocate calls. Pooling
// (rather than a per-allocator scratch field) keeps Allocator values
// stateless and therefore safe to share between the experiment engine's
// workers.
var usedPool = sync.Pool{New: func() any { return new(usedSet) }}

// acquireUsed returns a cleared bitset over [0, size) with every visible
// session's address marked. Out-of-range addresses are ignored: they can
// never collide with an allocation from this space, matching the old map's
// behaviour (present but never queried).
func acquireUsed(size uint32, visible []SessionInfo) *usedSet {
	u := usedPool.Get().(*usedSet)
	u.reset(size)
	for _, s := range visible {
		if uint32(s.Addr) < size {
			u.add(s.Addr)
		}
	}
	return u
}

// releaseUsed returns a bitset to the pool.
func releaseUsed(u *usedSet) { usedPool.Put(u) }

func (u *usedSet) reset(size uint32) {
	n := int(size+63) / 64
	if cap(u.words) < n {
		u.words = make([]uint64, n)
	} else {
		u.words = u.words[:n]
		clear(u.words)
	}
	u.size = size
}

func (u *usedSet) add(a mcast.Addr) { u.words[a>>6] |= 1 << (uint(a) & 63) }

func (u *usedSet) has(a mcast.Addr) bool {
	return u.words[a>>6]&(1<<(uint(a)&63)) != 0
}

// countUsed returns the number of marked addresses in [start, end).
func (u *usedSet) countUsed(start, end uint32) uint32 {
	if start >= end {
		return 0
	}
	firstWord, lastWord := start>>6, (end-1)>>6
	loMask := ^uint64(0) << (start & 63)
	hiMask := ^uint64(0) >> (63 - (end-1)&63)
	if firstWord == lastWord {
		return uint32(bits.OnesCount64(u.words[firstWord] & loMask & hiMask))
	}
	total := bits.OnesCount64(u.words[firstWord] & loMask)
	for w := firstWord + 1; w < lastWord; w++ {
		total += bits.OnesCount64(u.words[w])
	}
	total += bits.OnesCount64(u.words[lastWord] & hiMask)
	return uint32(total)
}

// nthFree returns the j-th (0-based) unmarked address in [start, end),
// scanning in ascending order. ok is false if fewer than j+1 addresses are
// free — callers should have sized j from countUsed first.
func (u *usedSet) nthFree(start, end uint32, j uint32) (mcast.Addr, bool) {
	if start >= end {
		return 0, false
	}
	firstWord, lastWord := start>>6, (end-1)>>6
	for w := firstWord; w <= lastWord; w++ {
		free := ^u.words[w]
		if w == firstWord {
			free &= ^uint64(0) << (start & 63)
		}
		if w == lastWord {
			free &= ^uint64(0) >> (63 - (end-1)&63)
		}
		n := uint32(bits.OnesCount64(free))
		if j >= n {
			j -= n
			continue
		}
		// Select the j-th set bit of free: drop the j lowest set bits.
		for ; j > 0; j-- {
			free &= free - 1
		}
		return mcast.Addr(uint32(w)<<6 + uint32(bits.TrailingZeros64(free))), true
	}
	return 0, false
}
