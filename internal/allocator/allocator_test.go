package allocator

import (
	"errors"
	"testing"
	"testing/quick"

	"sessiondir/internal/mcast"
	"sessiondir/internal/stats"
)

func TestRandomInRange(t *testing.T) {
	a := NewRandom(100)
	rng := stats.NewRNG(1)
	for i := 0; i < 1000; i++ {
		addr, err := a.Allocate(nil, 63, rng)
		if err != nil {
			t.Fatal(err)
		}
		if uint32(addr) >= 100 {
			t.Fatalf("address %d out of range", addr)
		}
	}
	if a.Name() != "R" || a.Size() != 100 {
		t.Fatal("metadata wrong")
	}
}

func TestInformedRandomAvoidsVisible(t *testing.T) {
	a := NewInformedRandom(10)
	rng := stats.NewRNG(2)
	visible := make([]SessionInfo, 0, 9)
	for i := 0; i < 9; i++ {
		visible = append(visible, SessionInfo{Addr: mcast.Addr(i), TTL: 63})
	}
	// Only address 9 is free; IR must find it every time.
	for trial := 0; trial < 50; trial++ {
		addr, err := a.Allocate(visible, 63, rng)
		if err != nil {
			t.Fatal(err)
		}
		if addr != 9 {
			t.Fatalf("IR picked used address %d", addr)
		}
	}
}

func TestInformedRandomSpaceFull(t *testing.T) {
	a := NewInformedRandom(4)
	visible := []SessionInfo{{0, 1}, {1, 1}, {2, 1}, {3, 1}}
	if _, err := a.Allocate(visible, 1, stats.NewRNG(3)); !errors.Is(err, ErrSpaceFull) {
		t.Fatalf("err = %v, want ErrSpaceFull", err)
	}
}

func TestStaticPartitionedBandOf(t *testing.T) {
	p3 := NewStaticPartitioned(300, IPR3Separators())
	cases3 := map[mcast.TTL]int{1: 0, 14: 0, 15: 1, 31: 1, 47: 1, 63: 1, 64: 2, 127: 2, 191: 2}
	for ttl, want := range cases3 {
		if got := p3.BandOf(ttl); got != want {
			t.Errorf("IPR3 band(%d) = %d want %d", ttl, got, want)
		}
	}
	p7 := NewStaticPartitioned(700, IPR7Separators())
	// Each workload TTL in its own band (perfect partitioning).
	seen := map[int]mcast.TTL{}
	for _, ttl := range []mcast.TTL{1, 15, 31, 47, 63, 127, 191} {
		b := p7.BandOf(ttl)
		if prev, dup := seen[b]; dup {
			t.Errorf("TTLs %d and %d share IPR7 band %d", prev, ttl, b)
		}
		seen[b] = ttl
	}
	if p7.NumBands() != 7 || p3.NumBands() != 3 {
		t.Fatal("band counts wrong")
	}
}

func TestStaticPartitionedBandRangesTile(t *testing.T) {
	p := NewStaticPartitioned(1000, IPR7Separators())
	var covered uint32
	prevEnd := uint32(0)
	for b := 0; b < p.NumBands(); b++ {
		start, width := p.BandRange(b)
		if start != prevEnd {
			t.Fatalf("band %d starts at %d, want %d", b, start, prevEnd)
		}
		covered += width
		prevEnd = start + width
	}
	if covered != 1000 || prevEnd != 1000 {
		t.Fatalf("bands cover %d/%d", covered, 1000)
	}
}

func TestStaticPartitionedAllocatesInBand(t *testing.T) {
	p := NewStaticPartitioned(700, IPR7Separators())
	rng := stats.NewRNG(4)
	for _, ttl := range []mcast.TTL{1, 15, 31, 47, 63, 127, 191} {
		start, width := p.BandRange(p.BandOf(ttl))
		for i := 0; i < 50; i++ {
			addr, err := p.Allocate(nil, ttl, rng)
			if err != nil {
				t.Fatal(err)
			}
			if uint32(addr) < start || uint32(addr) >= start+width {
				t.Fatalf("TTL %d: address %d outside band [%d,%d)", ttl, addr, start, start+width)
			}
		}
	}
}

func TestStaticPartitionedBandFull(t *testing.T) {
	p := NewStaticPartitioned(21, IPR3Separators()) // 3 bands of 7
	var visible []SessionInfo
	start, width := p.BandRange(p.BandOf(191))
	for off := uint32(0); off < width; off++ {
		visible = append(visible, SessionInfo{Addr: mcast.Addr(start + off), TTL: 191})
	}
	if _, err := p.Allocate(visible, 191, stats.NewRNG(5)); !errors.Is(err, ErrSpaceFull) {
		t.Fatalf("err = %v", err)
	}
	// Other bands still work.
	if _, err := p.Allocate(visible, 1, stats.NewRNG(5)); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionMapProperties(t *testing.T) {
	pm := NewPartitionMap(2)
	if pm.NumClasses() != 55 {
		t.Fatalf("classes = %d, paper says 55", pm.NumClasses())
	}
	// Classes ascend with TTL and tile 0..255.
	prev := -1
	for ttl := 0; ttl <= 255; ttl++ {
		c := pm.ClassOf(mcast.TTL(ttl))
		if c < prev || c > prev+1 {
			t.Fatalf("class jumped from %d to %d at TTL %d", prev, c, ttl)
		}
		prev = c
		if mcast.TTL(ttl) < pm.LowTTL(c) || mcast.TTL(ttl) > pm.HighTTL(c) {
			t.Fatalf("TTL %d outside its class [%d,%d]", ttl, pm.LowTTL(c), pm.HighTTL(c))
		}
	}
	if prev != pm.NumClasses()-1 {
		t.Fatalf("last class %d != %d", prev, pm.NumClasses()-1)
	}
	// Workload TTLs all land in distinct classes (the DAIPR premise).
	seen := map[int]bool{}
	for _, ttl := range []mcast.TTL{1, 15, 31, 47, 63, 127, 191} {
		c := pm.ClassOf(ttl)
		if seen[c] {
			t.Fatalf("workload TTLs share class %d", c)
		}
		seen[c] = true
	}
}

func TestAdaptiveLayoutInvariants(t *testing.T) {
	a := NewAdaptive(1000, AdaptiveConfig{GapFraction: 0.2})
	rng := stats.NewRNG(6)
	var visible []SessionInfo
	d := mcast.DS4()
	for i := 0; i < 300; i++ {
		ttl := d.Sample(rng.IntN)
		addr, err := a.Allocate(visible, ttl, rng)
		if err != nil {
			t.Fatalf("allocation %d failed: %v", i, err)
		}
		if uint32(addr) >= 1000 {
			t.Fatalf("address %d out of space", addr)
		}
		// Informed: never pick a visible address.
		for _, s := range visible {
			if s.Addr == addr {
				t.Fatalf("allocation %d picked visible address %d", i, addr)
			}
		}
		visible = append(visible, SessionInfo{Addr: addr, TTL: ttl})
	}
	checkLayoutInvariants(t, a.Layout(visible), 1000)
}

func checkLayoutInvariants(t *testing.T, bands []Band, size uint32) {
	t.Helper()
	// Bands are in descending TTL order, and where space permits, a
	// higher-TTL band sits entirely above lower-TTL bands (no overlap
	// unless pinned at zero).
	for i := 1; i < len(bands); i++ {
		hi, lo := bands[i-1], bands[i]
		if hi.Low <= lo.Low {
			t.Fatalf("band order wrong: %v before %v", hi, lo)
		}
		if lo.Start > 0 && lo.Start+lo.Width > hi.Start {
			t.Fatalf("unpinned bands overlap: %+v then %+v", hi, lo)
		}
	}
	for _, b := range bands {
		if b.Start+b.Width > size {
			t.Fatalf("band exceeds space: %+v", b)
		}
		if b.Width < 1 {
			t.Fatalf("band has zero width: %+v", b)
		}
	}
}

// TestAdaptiveDeterminism is the DAIPR core property: two sites whose views
// agree on all sessions with TTL >= x compute the same placement for the
// band of TTL x, even if they disagree below x.
func TestAdaptiveDeterminism(t *testing.T) {
	a := NewAdaptive(2000, AdaptiveConfig{GapFraction: 0.2})
	rng := stats.NewRNG(7)
	var shared, localA, localB []SessionInfo
	d := mcast.DS4()
	for i := 0; i < 200; i++ {
		ttl := d.Sample(rng.IntN)
		s := SessionInfo{Addr: mcast.Addr(rng.IntN(2000)), TTL: ttl}
		if ttl >= 63 {
			shared = append(shared, s)
		} else if rng.Bool(0.5) {
			localA = append(localA, s)
		} else {
			localB = append(localB, s)
		}
	}
	viewA := append(append([]SessionInfo{}, shared...), localA...)
	viewB := append(append([]SessionInfo{}, shared...), localB...)
	layoutA := a.Layout(viewA)
	layoutB := a.Layout(viewB)
	pm := a.PartitionMap()
	cls63 := pm.ClassOf(63)
	for i := range layoutA {
		if layoutA[i].Class < cls63 {
			continue
		}
		if layoutA[i] != layoutB[i] {
			t.Fatalf("band %d differs between sites that agree above TTL 63:\n%+v\n%+v",
				layoutA[i].Class, layoutA[i], layoutB[i])
		}
	}
}

func TestAdaptiveBandsGrowWithLoad(t *testing.T) {
	a := NewAdaptive(1000, AdaptiveConfig{GapFraction: 0.2})
	pm := a.PartitionMap()
	cls := pm.ClassOf(127)
	widthOf := func(visible []SessionInfo) uint32 {
		for _, b := range a.Layout(visible) {
			if b.Class == cls {
				return b.Width
			}
		}
		t.Fatal("band missing")
		return 0
	}
	if w := widthOf(nil); w != 1 {
		t.Fatalf("empty band width %d, want 1 (paper: single initial address)", w)
	}
	var visible []SessionInfo
	for i := 0; i < 100; i++ {
		visible = append(visible, SessionInfo{Addr: mcast.Addr(i), TTL: 127})
	}
	w := widthOf(visible)
	// 100 sessions at 67% occupancy → width ≈ 150.
	if w < 140 || w > 160 {
		t.Fatalf("loaded band width %d, want ≈150", w)
	}
}

func TestAdaptiveGapFractionReservesSpace(t *testing.T) {
	// With a 60% gap fraction and two busy bands, the gap between them
	// must be larger than with 20%.
	gapBetween := func(frac float64) int64 {
		a := NewAdaptive(1000, AdaptiveConfig{GapFraction: frac})
		var visible []SessionInfo
		for i := 0; i < 30; i++ {
			visible = append(visible, SessionInfo{Addr: mcast.Addr(i), TTL: 191})
			visible = append(visible, SessionInfo{Addr: mcast.Addr(100 + i), TTL: 127})
		}
		bands := a.Layout(visible)
		pm := a.PartitionMap()
		var top, below Band
		for _, b := range bands {
			if b.Class == pm.ClassOf(191) {
				top = b
			}
			if b.Class == pm.ClassOf(127) {
				below = b
			}
		}
		return int64(top.Start) - int64(below.Start+below.Width)
	}
	if g20, g60 := gapBetween(0.2), gapBetween(0.6); g60 <= g20 {
		t.Fatalf("gap with 60%% budget (%d) not larger than with 20%% (%d)", g60, g20)
	}
}

func TestAdaptiveExpandsIntoGapWhenBandFull(t *testing.T) {
	a := NewAdaptive(200, AdaptiveConfig{GapFraction: 0.3})
	rng := stats.NewRNG(8)
	// Fill the visible world so the top band and more are occupied, then
	// ensure allocation still succeeds by expansion (flash crowd).
	var visible []SessionInfo
	for i := 0; i < 60; i++ {
		addr, err := a.Allocate(visible, 191, rng)
		if err != nil {
			t.Fatalf("allocation %d: %v", i, err)
		}
		visible = append(visible, SessionInfo{Addr: addr, TTL: 191})
	}
}

func TestAdaptiveConfigValidation(t *testing.T) {
	for _, bad := range []AdaptiveConfig{
		{GapFraction: -0.1},
		{GapFraction: 1.0},
		{GapFraction: 0.2, TargetOccupancy: 1.5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", bad)
				}
			}()
			NewAdaptive(100, bad)
		}()
	}
}

func TestHybridLayoutInvariants(t *testing.T) {
	h := NewHybrid(1000)
	bands := h.Layout(nil)
	if len(bands) != 7 {
		t.Fatalf("bands = %d", len(bands))
	}
	// Initial layout occupies the top half of the space.
	lowest := bands[len(bands)-1]
	if lowest.Start < 1000/2-100 {
		t.Fatalf("initial bands reach down to %d; should stay near top half", lowest.Start)
	}
	// Highest band at the very top.
	if top := bands[0]; top.Start+top.Width != 1000 {
		t.Fatalf("top band ends at %d", top.Start+top.Width)
	}
	// Bands ordered top-down without overlap.
	for i := 1; i < len(bands); i++ {
		if bands[i].Start+bands[i].Width > bands[i-1].Start {
			t.Fatalf("hybrid bands overlap: %+v then %+v", bands[i-1], bands[i])
		}
	}
}

func TestHybridPushAndShrink(t *testing.T) {
	h := NewHybrid(1000)
	// Load the top band heavily: it must expand and push the band below
	// downward from its initial position.
	var visible []SessionInfo
	for i := 0; i < 300; i++ {
		visible = append(visible, SessionInfo{Addr: mcast.Addr(i), TTL: 191})
	}
	bands := h.Layout(visible)
	if bands[0].Width < 300 {
		t.Fatalf("loaded top band width %d < 300", bands[0].Width)
	}
	empty := h.Layout(nil)
	if bands[1].Start+bands[1].Width >= empty[1].Start+empty[1].Width {
		t.Fatalf("band below not pushed: top %d vs initial %d",
			bands[1].Start+bands[1].Width, empty[1].Start+empty[1].Width)
	}
	// The pushed, nearly-empty band shrinks below its initial width.
	if bands[1].Width >= empty[1].Width {
		t.Fatalf("pushed empty band did not shrink: %d vs %d", bands[1].Width, empty[1].Width)
	}
}

func TestHybridAllocates(t *testing.T) {
	h := NewHybrid(500)
	rng := stats.NewRNG(9)
	var visible []SessionInfo
	d := mcast.DS4()
	for i := 0; i < 150; i++ {
		ttl := d.Sample(rng.IntN)
		addr, err := h.Allocate(visible, ttl, rng)
		if err != nil {
			t.Fatalf("allocation %d (ttl %d): %v", i, ttl, err)
		}
		for _, s := range visible {
			if s.Addr == addr {
				t.Fatalf("hybrid picked visible address %d", addr)
			}
		}
		visible = append(visible, SessionInfo{Addr: addr, TTL: ttl})
	}
}

func TestCatalogNamesUnique(t *testing.T) {
	cat := Catalog(1000)
	if len(cat) != 9 {
		t.Fatalf("catalog size %d", len(cat))
	}
	seen := map[string]bool{}
	for _, a := range cat {
		if seen[a.Name()] {
			t.Fatalf("duplicate name %q", a.Name())
		}
		seen[a.Name()] = true
		if a.Size() != 1000 {
			t.Fatalf("%s size %d", a.Name(), a.Size())
		}
	}
	if _, err := ByName(100, "IPR 7-band"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName(100, "bogus"); err == nil {
		t.Fatal("expected error")
	}
}

// Property: every allocator returns in-range addresses and, for informed
// allocators, never an address it can see in use (when free space exists).
func TestAllocatorsPropertyInRangeAndInformed(t *testing.T) {
	const size = 256
	err := quick.Check(func(seed uint64, nSessions uint8, ttlIdx uint8) bool {
		rng := stats.NewRNG(seed)
		d := mcast.DS4()
		var visible []SessionInfo
		for i := 0; i < int(nSessions)%100; i++ {
			visible = append(visible, SessionInfo{
				Addr: mcast.Addr(rng.IntN(size)),
				TTL:  d.Sample(rng.IntN),
			})
		}
		ttl := d.Values[int(ttlIdx)%len(d.Values)]
		for _, a := range Catalog(size) {
			addr, err := a.Allocate(visible, ttl, rng)
			if err != nil {
				continue // a full band is legitimate
			}
			if uint32(addr) >= size {
				return false
			}
			if a.Name() == "R" {
				continue // R is deliberately uninformed
			}
			for _, s := range visible {
				if s.Addr == addr {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}
