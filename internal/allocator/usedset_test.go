package allocator

import (
	"testing"
	"testing/quick"

	"sessiondir/internal/mcast"
	"sessiondir/internal/stats"
)

// naiveCountUsed mirrors usedSet.countUsed bit by bit.
func naiveCountUsed(u *usedSet, start, end uint32) uint32 {
	n := uint32(0)
	for a := start; a < end; a++ {
		if u.has(mcast.Addr(a)) {
			n++
		}
	}
	return n
}

// naiveNthFree mirrors usedSet.nthFree by linear scan.
func naiveNthFree(u *usedSet, start, end, j uint32) (mcast.Addr, bool) {
	for a := start; a < end; a++ {
		if !u.has(mcast.Addr(a)) {
			if j == 0 {
				return mcast.Addr(a), true
			}
			j--
		}
	}
	return 0, false
}

func TestUsedSetCountAndSelectMatchNaive(t *testing.T) {
	err := quick.Check(func(seed uint64, sizeRaw uint16, nUsed uint8) bool {
		size := uint32(sizeRaw)%500 + 1
		rng := stats.NewRNG(seed)
		u := new(usedSet)
		u.reset(size)
		for i := 0; i < int(nUsed); i++ {
			u.add(mcast.Addr(rng.IntN(int(size))))
		}
		// Random sub-ranges, including empty and word-straddling ones.
		for trial := 0; trial < 8; trial++ {
			start := uint32(rng.IntN(int(size)))
			end := start + uint32(rng.IntN(int(size-start)+1))
			if got, want := u.countUsed(start, end), naiveCountUsed(u, start, end); got != want {
				t.Logf("countUsed(%d,%d) = %d, want %d", start, end, got, want)
				return false
			}
			free := (end - start) - u.countUsed(start, end)
			for _, j := range []uint32{0, free / 2, free} {
				gotA, gotOK := u.nthFree(start, end, j)
				wantA, wantOK := naiveNthFree(u, start, end, j)
				if gotOK != wantOK || (gotOK && gotA != wantA) {
					t.Logf("nthFree(%d,%d,%d) = %v,%v want %v,%v", start, end, j, gotA, gotOK, wantA, wantOK)
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUsedSetResetClearsReusedWords(t *testing.T) {
	u := new(usedSet)
	u.reset(200)
	u.add(3)
	u.add(130)
	u.reset(100) // smaller space reusing the same backing array
	if u.has(3) {
		t.Fatal("reset did not clear prior contents")
	}
	if got := u.countUsed(0, 100); got != 0 {
		t.Fatalf("countUsed after reset = %d", got)
	}
}

func TestAcquireUsedIgnoresOutOfRange(t *testing.T) {
	u := acquireUsed(10, []SessionInfo{{Addr: 3, TTL: 1}, {Addr: 500, TTL: 1}})
	defer releaseUsed(u)
	if !u.has(3) {
		t.Fatal("in-range address not marked")
	}
	if got := u.countUsed(0, 10); got != 1 {
		t.Fatalf("countUsed = %d, want 1", got)
	}
}

// The ISSUE's acceptance bar: the allocation hot path performs at most 2
// heap allocations per call (steady state; the pooled bitset and on-stack
// scratch make it 0 for every catalog algorithm).
func TestAllocateHotPathAllocationFree(t *testing.T) {
	rng := stats.NewRNG(5)
	d := mcast.DS4()
	var view []SessionInfo
	for i := 0; i < 500; i++ {
		view = append(view, SessionInfo{Addr: mcast.Addr(rng.IntN(4096)), TTL: d.Sample(rng.IntN)})
	}
	for _, a := range Catalog(4096) {
		a := a
		// Warm the pool and any lazy state outside the measured window.
		if _, err := a.Allocate(view, 127, rng); err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		avg := testing.AllocsPerRun(200, func() {
			if _, err := a.Allocate(view, 127, rng); err != nil {
				t.Fatalf("%s: %v", a.Name(), err)
			}
		})
		if avg > 2 {
			t.Errorf("%s: %.1f allocs/op, want <= 2", a.Name(), avg)
		}
	}
}
