package allocator

import (
	"errors"
	"testing"

	"sessiondir/internal/mcast"
	"sessiondir/internal/obs"
	"sessiondir/internal/stats"
)

// mkBatchView builds a deterministic visible set over a space of the
// given size with TTLs drawn from the DS4 workload distribution.
func mkBatchView(n int, size uint32, seed uint64) []SessionInfo {
	rng := stats.NewRNG(seed)
	d := mcast.DS4()
	view := make([]SessionInfo, n)
	for i := range view {
		view[i] = SessionInfo{Addr: mcast.Addr(rng.IntN(int(size))), TTL: d.Sample(rng.IntN)}
	}
	return view
}

// TestAllocateBatchMatchesSerial pins the batch contract for every
// catalog allocator: AllocateBatch must be bit-identical to k sequential
// Allocate calls with view extension (AllocateBatchSerial), address for
// address, across scopes and batch sizes.
func TestAllocateBatchMatchesSerial(t *testing.T) {
	const size = 1024
	for _, a := range Catalog(size) {
		for _, ttl := range []mcast.TTL{1, 15, 47, 63, 127, 191} {
			for _, k := range []int{1, 2, 16, 64} {
				view := mkBatchView(300, size, 42)
				serial, err1 := AllocateBatchSerial(a, view, ttl, k, nil, stats.NewRNG(7))
				batch, err2 := a.AllocateBatch(view, ttl, k, nil, stats.NewRNG(7))
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("%s ttl=%d k=%d: serial err=%v batch err=%v", a.Name(), ttl, k, err1, err2)
				}
				if len(serial) != len(batch) {
					t.Fatalf("%s ttl=%d k=%d: serial %d addrs, batch %d", a.Name(), ttl, k, len(serial), len(batch))
				}
				for i := range serial {
					if serial[i] != batch[i] {
						t.Fatalf("%s ttl=%d k=%d: addr %d differs: serial %d batch %d",
							a.Name(), ttl, k, i, serial[i], batch[i])
					}
				}
			}
		}
	}
}

// TestAllocateBatchDoesNotMutateView guards the interface contract: the
// caller's visible slice must come back untouched.
func TestAllocateBatchDoesNotMutateView(t *testing.T) {
	const size = 512
	for _, a := range Catalog(size) {
		view := mkBatchView(100, size, 3)
		snapshot := append([]SessionInfo(nil), view...)
		if _, err := a.AllocateBatch(view, 127, 32, nil, stats.NewRNG(1)); err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		for i := range view {
			if view[i] != snapshot[i] {
				t.Fatalf("%s mutated visible[%d]: %+v -> %+v", a.Name(), i, snapshot[i], view[i])
			}
		}
	}
}

// TestAllocateBatchIntraBatchUnique: every informed allocator must never
// hand the same address out twice within one batch while free addresses
// remain — the whole point of threading the used set through the batch.
// (Pure random R is exempt: it clashes by design.)
func TestAllocateBatchIntraBatchUnique(t *testing.T) {
	const size = 4096
	for _, a := range Catalog(size) {
		if a.Name() == "R" {
			continue
		}
		view := mkBatchView(200, size, 9)
		got, err := a.AllocateBatch(view, 127, 64, nil, stats.NewRNG(5))
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		seen := map[mcast.Addr]bool{}
		for _, addr := range got {
			if seen[addr] {
				t.Fatalf("%s: address %d allocated twice in one batch", a.Name(), addr)
			}
			seen[addr] = true
		}
	}
}

// TestAllocateBatchExhaustion: when the space fills mid-batch the
// addresses allocated so far are returned with the error, matching the
// sequential stop-at-first-failure semantics.
func TestAllocateBatchExhaustion(t *testing.T) {
	const size = 16
	a := NewInformedRandom(size)
	var view []SessionInfo
	for i := 0; i < 10; i++ {
		view = append(view, SessionInfo{Addr: mcast.Addr(i), TTL: 127})
	}
	got, err := a.AllocateBatch(view, 127, 32, nil, stats.NewRNG(2))
	if !errors.Is(err, ErrSpaceFull) {
		t.Fatalf("err = %v, want ErrSpaceFull", err)
	}
	if len(got) != int(size)-len(view) {
		t.Fatalf("allocated %d before exhaustion, want %d", len(got), int(size)-len(view))
	}
}

// TestAllocateBatchAppendsToDst: dst is appended to, not clobbered.
func TestAllocateBatchAppendsToDst(t *testing.T) {
	a := NewHybrid(1024)
	dst := []mcast.Addr{99}
	got, err := a.AllocateBatch(mkBatchView(50, 1024, 1), 127, 4, dst, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[0] != 99 {
		t.Fatalf("got %v, want sentinel 99 preserved and 4 appended", got)
	}
}

// TestInstrumentedBatchCounts: the instrumented wrapper counts one pick
// per allocated address and one failure per failed batch.
func TestInstrumentedBatchCounts(t *testing.T) {
	ins, err := Instrument(NewInformedRandom(16), obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ins.AllocateBatch(nil, 127, 8, nil, stats.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	if got := ins.Picks.Value(); got != 8 {
		t.Fatalf("picks = %d, want 8", got)
	}
	var view []SessionInfo
	for i := 0; i < 16; i++ {
		view = append(view, SessionInfo{Addr: mcast.Addr(i), TTL: 127})
	}
	if _, err := ins.AllocateBatch(view, 127, 1, nil, stats.NewRNG(1)); err == nil {
		t.Fatal("expected exhaustion")
	}
	if got := ins.Failures.Value(); got != 1 {
		t.Fatalf("failures = %d, want 1", got)
	}
}

// --- Batch micro-benchmarks (mirrored into BENCH.json by mcbench) ---

func benchAllocateBatch(b *testing.B, a Allocator, k int) {
	b.Helper()
	view := mkBatchView(500, 4096, 5)
	rng := stats.NewRNG(5)
	dst := make([]mcast.Addr, 0, k)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = a.AllocateBatch(view, 127, k, dst[:0], rng)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Report per-address cost: the number the <1µs/address target is about.
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*k), "ns/addr")
}

func BenchmarkAllocateBatchHybrid16(b *testing.B)  { benchAllocateBatch(b, NewHybrid(4096), 16) }
func BenchmarkAllocateBatchHybrid64(b *testing.B)  { benchAllocateBatch(b, NewHybrid(4096), 64) }
func BenchmarkAllocateBatchAdaptive16(b *testing.B) {
	benchAllocateBatch(b, NewAdaptive(4096, AdaptiveConfig{GapFraction: 0.2}), 16)
}
func BenchmarkAllocateBatchIR16(b *testing.B) { benchAllocateBatch(b, NewInformedRandom(4096), 16) }
