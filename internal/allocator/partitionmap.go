package allocator

import (
	"sessiondir/internal/analytic"
	"sessiondir/internal/mcast"
)

// PartitionMap is the §2.4.1 TTL→partition-class mapping of Figure 11: the
// TTL range is cut into classes such that only one frequently-used TTL
// value falls into each, with class width growing with TTL according to
// n(t) = ceil(32·t / (255·margin)). With the paper's margin of safety of 2
// there are 55 classes.
type PartitionMap struct {
	margin  int
	lows    []mcast.TTL // ascending lowest TTL per class
	classOf [256]uint8  // TTL → class index
}

// NewPartitionMap builds the mapping for the given margin of safety.
func NewPartitionMap(margin int) *PartitionMap {
	bounds := analytic.PartitionLowerBounds(margin)
	pm := &PartitionMap{margin: margin}
	pm.lows = make([]mcast.TTL, len(bounds))
	for i, b := range bounds {
		pm.lows[i] = mcast.TTL(b)
	}
	cls := 0
	for t := 0; t <= 255; t++ {
		for cls+1 < len(pm.lows) && mcast.TTL(t) >= pm.lows[cls+1] {
			cls++
		}
		pm.classOf[t] = uint8(cls)
	}
	return pm
}

// Margin returns the margin of safety the map was built with.
func (pm *PartitionMap) Margin() int { return pm.margin }

// NumClasses returns the number of TTL classes (55 for margin 2).
func (pm *PartitionMap) NumClasses() int { return len(pm.lows) }

// ClassOf returns the class index of a TTL. Classes ascend with TTL.
func (pm *PartitionMap) ClassOf(t mcast.TTL) int { return int(pm.classOf[t]) }

// LowTTL returns the lowest TTL of class c.
func (pm *PartitionMap) LowTTL(c int) mcast.TTL { return pm.lows[c] }

// HighTTL returns the highest TTL of class c.
func (pm *PartitionMap) HighTTL(c int) mcast.TTL {
	if c+1 < len(pm.lows) {
		return pm.lows[c+1] - 1
	}
	return mcast.MaxTTL
}
