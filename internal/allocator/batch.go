package allocator

import (
	"fmt"

	"sessiondir/internal/mcast"
	"sessiondir/internal/stats"
)

// Batch allocation.
//
// A burst of session creations — a conference fan-out, a flash crowd, a
// MANET renumbering wave — used to pay the full per-Allocate setup cost k
// times: the band/partition layout is recomputed from the visible set and
// the used-address bitset is rebuilt from scratch on every call, so the
// O(len(visible)) scan dominates (BENCH.json: AllocateHybrid ~5.1µs/op
// against ~0.6µs for IR on the same view). AllocateBatch computes that
// state once and hands out k addresses per recomputation: the visible
// set is folded into band counts and the used bitset a single time, and
// each subsequent pick only appends its own address to both.
//
// The contract every implementation honours (and batch_test.go pins):
// AllocateBatch is bit-identical to k sequential Allocate calls where the
// view grows by the freshly allocated session between calls. Batching is
// an amortisation, never a behaviour change — the clash dynamics the
// paper measures are untouched.

// AllocateBatchSerial implements the AllocateBatch contract for any
// Allocator by literally running k sequential Allocate calls with view
// extension. It is the semantic oracle the custom batch paths are tested
// against, and a correct (if slow) fallback for external implementations.
// Allocated addresses are appended to dst; on failure the addresses
// allocated before the error are returned with it.
func AllocateBatchSerial(a Allocator, visible []SessionInfo, ttl mcast.TTL, k int, dst []mcast.Addr, rng *stats.RNG) ([]mcast.Addr, error) {
	view := make([]SessionInfo, len(visible), len(visible)+k)
	copy(view, visible)
	for i := 0; i < k; i++ {
		addr, err := a.Allocate(view, ttl, rng)
		if err != nil {
			return dst, err
		}
		dst = append(dst, addr)
		view = append(view, SessionInfo{Addr: addr, TTL: ttl})
	}
	return dst, nil
}

// AllocateBatch implements Allocator: k uniform draws. R ignores the
// visible set entirely, so there is no setup to amortise and intra-batch
// duplicates are as possible as inter-site ones — that is the algorithm.
func (r *Random) AllocateBatch(_ []SessionInfo, _ mcast.TTL, k int, dst []mcast.Addr, rng *stats.RNG) ([]mcast.Addr, error) {
	for i := 0; i < k; i++ {
		dst = append(dst, mcast.Addr(rng.IntN(int(r.size))))
	}
	return dst, nil
}

// AllocateBatch implements Allocator. The used bitset is built once from
// the view; each pick marks its own address so later picks in the batch
// see it, exactly as sequential allocation with view extension would.
func (r *InformedRandom) AllocateBatch(visible []SessionInfo, _ mcast.TTL, k int, dst []mcast.Addr, rng *stats.RNG) ([]mcast.Addr, error) {
	used := acquireUsed(r.size, visible)
	defer releaseUsed(used)
	for i := 0; i < k; i++ {
		a, ok := pickFreeInRange(0, r.size, used, rng)
		if !ok {
			return dst, ErrSpaceFull
		}
		used.add(a)
		dst = append(dst, a)
	}
	return dst, nil
}

// AllocateBatch implements Allocator. The band bounds are fixed by the
// TTL, so the whole batch shares one band lookup and one used bitset.
func (p *StaticPartitioned) AllocateBatch(visible []SessionInfo, ttl mcast.TTL, k int, dst []mcast.Addr, rng *stats.RNG) ([]mcast.Addr, error) {
	band := p.BandOf(ttl)
	start, width := p.BandRange(band)
	used := acquireUsed(p.size, visible)
	defer releaseUsed(used)
	for i := 0; i < k; i++ {
		a, ok := pickFreeInRange(start, width, used, rng)
		if !ok {
			return dst, fmt.Errorf("%w (band %d of %s for TTL %d)", ErrSpaceFull, band, p.name, ttl)
		}
		used.add(a)
		dst = append(dst, a)
	}
	return dst, nil
}

// AllocateBatch implements Allocator. Class counts and the used bitset
// are folded from the view once; each pick re-walks the band cursor from
// the updated counts (pure arithmetic over the class list, no rescan of
// the view) so band growth within the batch matches sequential allocation
// exactly.
func (a *Adaptive) AllocateBatch(visible []SessionInfo, ttl mcast.TTL, k int, dst []mcast.Addr, rng *stats.RNG) ([]mcast.Addr, error) {
	var countsBuf [maxStackClasses]int
	var counts []int
	if n := a.pm.NumClasses(); n <= len(countsBuf) {
		counts = countsBuf[:n]
	} else {
		counts = make([]int, n)
	}
	for _, s := range visible {
		counts[a.pm.ClassOf(s.TTL)]++
	}
	cls := a.pm.ClassOf(ttl)
	used := acquireUsed(a.size, visible)
	defer releaseUsed(used)
	for i := 0; i < k; i++ {
		var bandStart, bandWidth uint32
		found := false
		a.walkBands(counts, func(c int, start, width uint32) bool {
			if c == cls {
				bandStart, bandWidth, found = start, width, true
				return false
			}
			return true
		})
		if !found {
			return dst, fmt.Errorf("allocator: no band for TTL %d (bug)", ttl)
		}
		addr, ok := expandingPick(bandStart, bandWidth, used, rng)
		if !ok {
			return dst, fmt.Errorf("%w (class %d, TTL %d, %s)", ErrSpaceFull, cls, ttl, a.name)
		}
		used.add(addr)
		counts[cls]++
		dst = append(dst, addr)
	}
	return dst, nil
}

// AllocateBatch implements Allocator — the amortisation AIPR-H needs
// most, since its per-Allocate cost is dominated by folding the view into
// per-band counts (seven TTL comparisons per visible session). The fold
// and the used bitset happen once; each pick re-runs only the seven-band
// cursor walk from the updated counts.
func (h *Hybrid) AllocateBatch(visible []SessionInfo, ttl mcast.TTL, k int, dst []mcast.Addr, rng *stats.RNG) ([]mcast.Addr, error) {
	var countsBuf [16]int
	counts := countsBuf[:len(h.seps)+1]
	for _, s := range visible {
		counts[h.bandOf(s.TTL)]++
	}
	target := h.bandOf(ttl)
	used := acquireUsed(h.size, visible)
	defer releaseUsed(used)
	for i := 0; i < k; i++ {
		var bandStart, bandWidth uint32
		h.walkBands(counts, func(j int, start, width uint32) bool {
			if j == target {
				bandStart, bandWidth = start, width
				return false
			}
			return true
		})
		addr, ok := expandingPick(bandStart, bandWidth, used, rng)
		if !ok {
			return dst, fmt.Errorf("%w (band %d, TTL %d, %s)", ErrSpaceFull, target, ttl, h.name)
		}
		used.add(addr)
		counts[target]++
		dst = append(dst, addr)
	}
	return dst, nil
}

// AllocateBatch implements Allocator, delegating to the inner batch path
// and counting per-address outcomes so instrumented totals agree with
// sequential allocation.
func (i *Instrumented) AllocateBatch(visible []SessionInfo, ttl mcast.TTL, k int, dst []mcast.Addr, rng *stats.RNG) ([]mcast.Addr, error) {
	before := len(dst)
	dst, err := i.inner.AllocateBatch(visible, ttl, k, dst, rng)
	i.Picks.Add(uint64(len(dst) - before))
	if err != nil {
		i.Failures.Inc()
	}
	return dst, err
}
