package allocator

import (
	"fmt"
	"math"
	"sort"

	"sessiondir/internal/mcast"
	"sessiondir/internal/stats"
)

// CategoryAdaptive implements the alternative sketched in the paper's
// footnote 8: partition the address space *by announcement category* along
// AIPRMA lines, "given a total ordering of categories sorted using scope
// as a primary index". Bands are keyed by (TTL class, category), ordered
// by descending TTL class and then ascending category name, laid out from
// the top of the space exactly like Deterministic Adaptive IPRMA.
//
// The same determinism argument carries over: a band's position depends
// only on bands ordered above it, which belong to scopes at least as wide
// — visible to every potential clash partner. The paper notes the costs
// (category summaries need their own announcement address and invite
// denial-of-service), which is why the locality-based §4.1 hierarchy won;
// this implementation exists to make that comparison concrete.
type CategoryAdaptive struct {
	size      uint32
	gapFrac   float64
	occupancy float64
	pm        *PartitionMap
	name      string
}

// CategorySession is the allocator view of one session with its category.
type CategorySession struct {
	Addr     mcast.Addr
	TTL      mcast.TTL
	Category string
}

// CategoryBand is one laid-out (TTL class, category) band.
type CategoryBand struct {
	Class    int
	Category string
	Start    uint32
	Width    uint32
	Count    int
}

// NewCategoryAdaptive builds the allocator; cfg fields have the same
// meaning and defaults as for NewAdaptive.
func NewCategoryAdaptive(size uint32, cfg AdaptiveConfig) *CategoryAdaptive {
	validateSize(size)
	if cfg.GapFraction < 0 || cfg.GapFraction >= 1 {
		panic(fmt.Sprintf("allocator: gap fraction %v outside [0,1)", cfg.GapFraction))
	}
	occ := cfg.TargetOccupancy
	if occ == 0 {
		occ = DefaultTargetOccupancy
	}
	margin := cfg.Margin
	if margin == 0 {
		margin = 2
	}
	name := cfg.Name
	if name == "" {
		name = "Category-AIPR"
	}
	return &CategoryAdaptive{
		size:      size,
		gapFrac:   cfg.GapFraction,
		occupancy: occ,
		pm:        NewPartitionMap(margin),
		name:      name,
	}
}

// Name identifies the algorithm.
func (a *CategoryAdaptive) Name() string { return a.name }

// Size returns the managed space size.
func (a *CategoryAdaptive) Size() uint32 { return a.size }

type catKey struct {
	class    int
	category string
}

// Layout computes the band layout for a view, guaranteeing a band exists
// for the given request key even when no session of that category is
// visible yet.
func (a *CategoryAdaptive) Layout(visible []CategorySession, reqTTL mcast.TTL, reqCategory string) []CategoryBand {
	counts := map[catKey]int{}
	for _, s := range visible {
		counts[catKey{a.pm.ClassOf(s.TTL), s.Category}]++
	}
	reqKey := catKey{a.pm.ClassOf(reqTTL), reqCategory}
	if _, ok := counts[reqKey]; !ok {
		counts[reqKey] = 0
	}
	keys := make([]catKey, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	// Total order: scope (class) descending is primary, category name
	// ascending is secondary — the footnote's prescription.
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].class != keys[j].class {
			return keys[i].class > keys[j].class
		}
		return keys[i].category < keys[j].category
	})

	bands := make([]CategoryBand, 0, len(keys))
	cursor := int64(a.size)
	for _, k := range keys {
		count := counts[k]
		width := int64(1)
		if count > 0 {
			width = int64(math.Ceil(float64(count) / a.occupancy))
		}
		start := cursor - width
		if start < 0 {
			start = 0
			if width > int64(a.size) {
				width = int64(a.size)
			}
		}
		bands = append(bands, CategoryBand{
			Class:    k.class,
			Category: k.category,
			Start:    uint32(start),
			Width:    uint32(width),
			Count:    count,
		})
		cursor = start
		if count > 0 {
			cursor -= gapBelow(a.size, a.gapFrac)
		}
		if cursor < 0 {
			cursor = 0
		}
	}
	return bands
}

// Allocate picks an address for a new session of the given scope and
// category.
func (a *CategoryAdaptive) Allocate(visible []CategorySession, ttl mcast.TTL, category string, rng *stats.RNG) (mcast.Addr, error) {
	bands := a.Layout(visible, ttl, category)
	reqClass := a.pm.ClassOf(ttl)
	var band CategoryBand
	found := false
	for _, b := range bands {
		if b.Class == reqClass && b.Category == category {
			band, found = b, true
			break
		}
	}
	if !found {
		return 0, fmt.Errorf("allocator: no band for TTL %d category %q (bug)", ttl, category)
	}
	used := usedPool.Get().(*usedSet)
	used.reset(a.size)
	for _, s := range visible {
		if uint32(s.Addr) < a.size {
			used.add(s.Addr)
		}
	}
	defer releaseUsed(used)
	if addr, ok := expandingPick(band.Start, band.Width, used, rng); ok {
		return addr, nil
	}
	return 0, fmt.Errorf("%w (class %d, category %q, %s)", ErrSpaceFull, reqClass, category, a.name)
}
