package allocator

import (
	"fmt"
	"sort"

	"sessiondir/internal/mcast"
	"sessiondir/internal/stats"
)

// StaticPartitioned is the paper's IPR k-band algorithm (§2.1–2.2): the
// address space is split into k equal ranges, sessions are mapped to a
// range by their TTL, and allocation is informed-random within the range.
//
// The band of a TTL t is the number of separators ≤ t; with separators
// {15, 64} (IPR 3-band) TTLs 15–63 share a band, reproducing the imperfect
// partitioning of Figure 3, while {2, 16, 32, 48, 64, 128} (IPR 7-band)
// gives each of the paper's workload TTLs its own band.
type StaticPartitioned struct {
	size       uint32
	separators []mcast.TTL
	name       string
}

// IPR3Separators returns the Figure-5 3-band separators (TTLs 15 and 64).
func IPR3Separators() []mcast.TTL { return []mcast.TTL{15, 64} }

// IPR7Separators returns the Figure-5 7-band separators
// (TTLs 2, 16, 32, 48, 64 and 128).
func IPR7Separators() []mcast.TTL { return []mcast.TTL{2, 16, 32, 48, 64, 128} }

// NewStaticPartitioned returns an IPR allocator with len(separators)+1
// bands over a space of the given size. Separators must be ascending.
func NewStaticPartitioned(size uint32, separators []mcast.TTL) *StaticPartitioned {
	validateSize(size)
	if len(separators) == 0 {
		panic("allocator: IPR needs at least one separator")
	}
	if !sort.SliceIsSorted(separators, func(i, j int) bool { return separators[i] < separators[j] }) {
		panic("allocator: IPR separators must be ascending")
	}
	bands := len(separators) + 1
	if uint32(bands) > size {
		panic(fmt.Sprintf("allocator: %d bands exceed space of %d", bands, size))
	}
	return &StaticPartitioned{
		size:       size,
		separators: append([]mcast.TTL(nil), separators...),
		name:       fmt.Sprintf("IPR %d-band", bands),
	}
}

// Name implements Allocator.
func (p *StaticPartitioned) Name() string { return p.name }

// Size implements Allocator.
func (p *StaticPartitioned) Size() uint32 { return p.size }

// NumBands returns the number of TTL bands.
func (p *StaticPartitioned) NumBands() int { return len(p.separators) + 1 }

// BandOf returns the band index of a TTL: the count of separators ≤ t.
func (p *StaticPartitioned) BandOf(t mcast.TTL) int {
	b := 0
	for _, s := range p.separators {
		if t >= s {
			b++
		}
	}
	return b
}

// BandRange returns the address range [start, start+width) of band b.
// Bands split the space as evenly as integer division allows.
func (p *StaticPartitioned) BandRange(b int) (start, width uint32) {
	k := uint32(p.NumBands())
	start = uint32(b) * p.size / k
	end := uint32(b+1) * p.size / k
	return start, end - start
}

// Allocate implements Allocator: informed-random within the TTL's band.
// When a band fills completely the allocator fails — the paper's IPR-7
// curves are "limited by higher scope bands filling completely".
func (p *StaticPartitioned) Allocate(visible []SessionInfo, ttl mcast.TTL, rng *stats.RNG) (mcast.Addr, error) {
	start, width := p.BandRange(p.BandOf(ttl))
	used := acquireUsed(p.size, visible)
	defer releaseUsed(used)
	a, ok := pickFreeInRange(start, width, used, rng)
	if !ok {
		return 0, fmt.Errorf("%w (band %d of %s for TTL %d)", ErrSpaceFull, p.BandOf(ttl), p.name, ttl)
	}
	return a, nil
}
