package allocator

import (
	"sessiondir/internal/mcast"
	"sessiondir/internal/stats"
)

// Random is the paper's algorithm R: pure random allocation, ignoring all
// announcements. It clashes after O(√n) allocations (the birthday bound of
// Figure 4) and anchors the bottom of Figure 5.
type Random struct {
	size uint32
}

// NewRandom returns an R allocator over a space of the given size.
func NewRandom(size uint32) *Random {
	validateSize(size)
	return &Random{size: size}
}

// Name implements Allocator.
func (r *Random) Name() string { return "R" }

// Size implements Allocator.
func (r *Random) Size() uint32 { return r.size }

// Allocate implements Allocator: a uniform draw from the whole space.
func (r *Random) Allocate(_ []SessionInfo, _ mcast.TTL, rng *stats.RNG) (mcast.Addr, error) {
	return mcast.Addr(rng.IntN(int(r.size))), nil
}

// InformedRandom is the paper's algorithm IR: uniform over the addresses
// not currently visible in any session announcement. Figure 5's perhaps
// surprising result is that IR is *not* much better than R: the sessions
// that matter for clashes are exactly the ones scoping hides.
type InformedRandom struct {
	size uint32
}

// NewInformedRandom returns an IR allocator over a space of the given size.
func NewInformedRandom(size uint32) *InformedRandom {
	validateSize(size)
	return &InformedRandom{size: size}
}

// Name implements Allocator.
func (r *InformedRandom) Name() string { return "IR" }

// Size implements Allocator.
func (r *InformedRandom) Size() uint32 { return r.size }

// Allocate implements Allocator.
func (r *InformedRandom) Allocate(visible []SessionInfo, _ mcast.TTL, rng *stats.RNG) (mcast.Addr, error) {
	used := acquireUsed(r.size, visible)
	defer releaseUsed(used)
	a, ok := pickFreeInRange(0, r.size, used, rng)
	if !ok {
		return 0, ErrSpaceFull
	}
	return a, nil
}
