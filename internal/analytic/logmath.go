// Package analytic implements the closed-form models of the paper: the
// birthday-problem clash curve (Figure 4), the invisible-allocation clash
// model of Equation 1 (Figure 6), the uniform-bucket responder bound of
// Equation 2 (Figure 14), the exponential-bucket responder bound of
// Equations 3–4 (Figure 18), and the TTL→partition mapping rule of §2.4.1
// (Figure 11).
//
// All combinatorial sums are evaluated in the log domain so the bounds stay
// exact-enough at the paper's scales (n up to 51200 responders, d up to
// tens of thousands of buckets) where direct binomials overflow float64.
package analytic

import "math"

// logChoose returns log C(n, k) computed via log-gamma. It returns -Inf
// for k outside [0, n].
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	ln1, _ := math.Lgamma(float64(n + 1))
	lk1, _ := math.Lgamma(float64(k + 1))
	lnk1, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - lk1 - lnk1
}

// logPow returns k*log(x) handling the x == 0 cases: 0^0 = 1 (log 0^0 = 0)
// and 0^k = 0 for k > 0 (log = -Inf).
func logPow(x float64, k float64) float64 {
	if x < 0 {
		return math.NaN()
	}
	if x == 0 {
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	return k * math.Log(x)
}

// log1mExp returns log(1 - e^x) for x <= 0, numerically stable near 0.
func log1mExp(x float64) float64 {
	if x >= 0 {
		if x == 0 {
			return math.Inf(-1)
		}
		return math.NaN()
	}
	if x > -math.Ln2 {
		return math.Log(-math.Expm1(x))
	}
	return math.Log1p(-math.Exp(x))
}

// logSumExp returns log(e^a + e^b).
func logSumExp(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}
