package analytic

import (
	"fmt"
	"math"
)

// Equation 1 of the paper (§2.3). With n addresses available in a
// partition, m currently allocated, and i of those *invisible* to the
// allocator (announcements lost or still propagating), the probability
// that one new allocation avoids a clash is
//
//	c(m) = (n − m) / (n + i − m)
//
// and the probability that a whole population of m sessions was allocated
// without any clash during a mean session lifetime is
//
//	p(m) = ((n − m) / (n + i − m))^m .

// ClashFreeProbability returns p(m) for a partition of n addresses with m
// allocated and invisibleFrac·m invisible (Equation 1). Returns 0 when the
// partition is overfull.
func ClashFreeProbability(n int, m int, invisibleFrac float64) float64 {
	if m <= 0 {
		return 1
	}
	if m >= n {
		return 0
	}
	i := invisibleFrac * float64(m)
	num := float64(n - m)
	den := float64(n) + i - float64(m)
	if den <= 0 {
		return 0
	}
	return math.Exp(float64(m) * (math.Log(num) - math.Log(den)))
}

// AllocationsAtHalf returns the largest m such that p(m) >= 0.5 — the
// y-axis of Figure 6 ("addresses allocated in one IPRMA partition such
// that the probability of a clash is 0.5") for a partition of n addresses
// and the given invisible fraction. p(m) is monotone decreasing in m, so a
// binary search suffices.
func AllocationsAtHalf(n int, invisibleFrac float64) int {
	if n <= 1 {
		return 0
	}
	lo, hi := 0, n // invariant: p(lo) >= 0.5 > p(hi)
	if ClashFreeProbability(n, hi, invisibleFrac) >= 0.5 {
		return hi
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if ClashFreeProbability(n, mid, invisibleFrac) >= 0.5 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Fig6Point is one point of a Figure-6 curve.
type Fig6Point struct {
	SpaceSize   int // n: addresses in the partition
	Allocations int // m at which clash probability reaches 0.5
}

// Fig6Curve computes a Figure-6 curve for the given invisible fraction
// over logarithmically spaced partition sizes from minN to maxN.
func Fig6Curve(minN, maxN int, pointsPerDecade int, invisibleFrac float64) []Fig6Point {
	if minN < 2 || maxN < minN || pointsPerDecade < 1 {
		return nil
	}
	var out []Fig6Point
	ratio := math.Pow(10, 1/float64(pointsPerDecade))
	last := -1
	for x := float64(minN); x <= float64(maxN)*1.0000001; x *= ratio {
		n := int(math.Round(x))
		if n == last {
			continue
		}
		last = n
		out = append(out, Fig6Point{SpaceSize: n, Allocations: AllocationsAtHalf(n, invisibleFrac)})
	}
	return out
}

// Figure6InvisibleFractions are the i values the paper plots: i = 0.01m,
// 0.001m, 0.0001m, 0.00001m.
func Figure6InvisibleFractions() []float64 {
	return []float64{0.01, 0.001, 0.0001, 0.00001}
}

// RequiredInvisibleFraction inverts the Figure-6 relation: the largest
// invisible fraction i (as a fraction of m) under which m sessions still
// fit a partition of n addresses at ≤50% clash probability. The §4 design
// question — "how good must the announcement mechanism be?" — answered
// directly: pick the target packing, read off the announcement budget.
func RequiredInvisibleFraction(n, m int) float64 {
	if m <= 0 {
		return 1
	}
	if m >= n {
		return 0
	}
	lo, hi := 0.0, 1.0 // p(m) decreasing in i: p(lo) >= 0.5 >= p(hi) hoped
	if ClashFreeProbability(n, m, 0) < 0.5 {
		return 0 // not achievable even with perfect announcements
	}
	if ClashFreeProbability(n, m, 1) >= 0.5 {
		return 1
	}
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if ClashFreeProbability(n, m, mid) >= 0.5 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// MeanDiscoveryDelay returns the §2.3 back-of-envelope mean end-to-end
// announcement discovery delay: with per-announcement loss rate p, network
// delay d, and re-announcement interval T, delay ≈ (1−p)·d + p·T (the
// paper's (0.98·0.2)+(0.02·600) = 12 s example, with the second-loss term
// dropped as the paper does).
func MeanDiscoveryDelay(loss float64, networkDelay, reannounceInterval float64) float64 {
	return (1-loss)*networkDelay + loss*reannounceInterval
}

// InvisibleFraction converts a mean discovery delay and a mean advertised
// session lifetime into the fraction of sessions invisible at any moment
// (the paper's "approximately 0.1 % of sessions currently advertised are
// not visible": 12 s / (4 h·3600)).
func InvisibleFraction(meanDiscoveryDelay, meanAdvertisedLifetime float64) float64 {
	if meanAdvertisedLifetime <= 0 {
		return 1
	}
	f := meanDiscoveryDelay / meanAdvertisedLifetime
	if f > 1 {
		return 1
	}
	return f
}

// PartitionCount returns the number of partitions the §2.4.1 rule yields
// for the whole TTL range 0..255 with margin of safety m: a partition with
// lowest TTL t spans n(t) = ceil(32·t / (255·m)) TTL values (minimum 1).
// The paper reports 55 partitions for m = 2 (Figure 11, whose TTL axis
// starts at 0).
func PartitionCount(margin int) int {
	return len(PartitionLowerBounds(margin))
}

// PartitionLowerBounds returns the ascending list of lowest TTLs of each
// partition under the §2.4.1 rule, starting at TTL 0.
func PartitionLowerBounds(margin int) []int {
	if margin < 1 {
		panic(fmt.Sprintf("analytic: margin %d < 1", margin))
	}
	var lows []int
	t := 0
	for t <= 255 {
		lows = append(lows, t)
		span := int(math.Ceil(32 * float64(t) / (255 * float64(margin))))
		if span < 1 {
			span = 1
		}
		t += span
	}
	return lows
}
