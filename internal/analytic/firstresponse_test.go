package analytic

import (
	"math"
	"testing"

	"sessiondir/internal/stats"
)

func TestFirstResponseUniform(t *testing.T) {
	// One responder: expectation is the midpoint.
	if got := FirstResponseUniform(1, 0, 1000); math.Abs(got-500) > 1e-9 {
		t.Fatalf("n=1: %v", got)
	}
	// Many responders: approaches d1.
	if got := FirstResponseUniform(999, 100, 1100); math.Abs(got-101) > 1e-9 {
		t.Fatalf("n=999: %v", got)
	}
	if !math.IsInf(FirstResponseUniform(0, 0, 100), 1) {
		t.Fatal("n=0 should be +Inf")
	}
	// Degenerate window.
	if got := FirstResponseUniform(5, 200, 100); got != 200 {
		t.Fatalf("inverted window: %v", got)
	}
}

func TestFirstResponseUniformMatchesMC(t *testing.T) {
	rng := stats.NewRNG(1)
	const n, trials = 7, 20000
	var s stats.Summary
	for tr := 0; tr < trials; tr++ {
		minV := math.Inf(1)
		for i := 0; i < n; i++ {
			v := rng.Float64() * 3200
			if v < minV {
				minV = v
			}
		}
		s.Add(minV)
	}
	want := FirstResponseUniform(n, 0, 3200)
	if math.Abs(s.Mean()-want) > want*0.03 {
		t.Fatalf("MC %v vs closed form %v", s.Mean(), want)
	}
}

func TestFirstResponseExpMatchesMC(t *testing.T) {
	// Cross-check the integral against sampling the actual distribution.
	rng := stats.NewRNG(2)
	const d1, d2, r = 0.0, 3200.0, 200.0
	dist := expSampler{d1: d1, d2: d2, r: r}
	for _, n := range []int{1, 5, 50} {
		const trials = 20000
		var s stats.Summary
		for tr := 0; tr < trials; tr++ {
			minV := math.Inf(1)
			for i := 0; i < n; i++ {
				if v := dist.sample(rng); v < minV {
					minV = v
				}
			}
			s.Add(minV)
		}
		want := FirstResponseExp(n, d1, d2, r)
		if math.Abs(s.Mean()-want) > want*0.05+5 {
			t.Fatalf("n=%d: MC %v vs integral %v", n, s.Mean(), want)
		}
	}
}

// expSampler duplicates the clash.ExponentialDelay sampling formula (the
// analytic package cannot import clash, which depends on it conceptually).
type expSampler struct{ d1, d2, r float64 }

func (e expSampler) sample(rng *stats.RNG) float64 {
	d := (e.d2 - e.d1) / e.r
	x := rng.Float64()
	if x == 0 {
		return e.d1
	}
	t := d + math.Log2(x)
	var val float64
	if t > 50 {
		val = t
	} else {
		val = math.Log2(math.Exp2(t) - x + 1)
	}
	return e.d1 + e.r*val
}

func TestFirstResponseExpSlowerThanUniform(t *testing.T) {
	// The price of exponential suppression: the first response comes later
	// than under uniform for the same window.
	for _, n := range []int{5, 50, 500} {
		u := FirstResponseUniform(n, 0, 3200)
		e := FirstResponseExp(n, 0, 3200, 200)
		if e <= u {
			t.Fatalf("n=%d: exp (%v) not slower than uniform (%v)", n, e, u)
		}
	}
}

func TestFirstResponseExpDecreasingInN(t *testing.T) {
	prev := math.Inf(1)
	for _, n := range []int{1, 2, 8, 64, 512} {
		v := FirstResponseExp(n, 0, 3200, 200)
		if v >= prev {
			t.Fatalf("not decreasing at n=%d: %v >= %v", n, v, prev)
		}
		prev = v
	}
}

func TestFirstResponseExpEdges(t *testing.T) {
	if !math.IsInf(FirstResponseExp(0, 0, 100, 200), 1) {
		t.Fatal("n=0")
	}
	if got := FirstResponseExp(5, 100, 100, 200); got != 100 {
		t.Fatalf("zero window: %v", got)
	}
	if got := FirstResponseExp(5, 100, 200, 0); got != 100 {
		t.Fatalf("zero rtt: %v", got)
	}
}
