package analytic

import "math"

// This file implements the responder-implosion bounds of §3: how many
// third parties report an address clash when each delays its response and
// suppresses on hearing another response.
//
// The model (Equation 2 and Figure 14): the interval [D1, D2] is divided
// into d buckets of width R (the maximum round trip time). Responses in
// the first nonempty bucket are all sent — suppression cannot act within
// one RTT; responses in later buckets are suppressed. With uniform random
// delays every assignment of n responders to d buckets is equally likely.
//
// The exponential variant (Equations 3–4, Figures 17–18): bucket b has
// probability proportional to 2^(b−1), equivalent to choosing uniformly
// among 2^d − 1 sub-buckets of which bucket b owns 2^(b−1).

// UniformResponders returns the expected number of responses E for n
// responders and d equal-probability buckets (Equation 2). The result is
// an upper bound on real behaviour: it ignores sub-RTT suppression inside
// a bucket and RTTs shorter than R.
func UniformResponders(n, d int) float64 {
	switch {
	case n <= 0:
		return 0
	case d <= 1:
		return float64(n)
	}
	logD := math.Log(float64(d))
	total := 0.0
	// E = Σ_k k·C(n,k)·[Σ_{j=0}^{d-1} j^(n−k)] / d^n, where j = d − b.
	for k := 1; k <= n; k++ {
		lc := logChoose(n, k)
		nk := float64(n - k)
		// Inner sum over j descending: terms fall off geometrically, so
		// stop once they no longer contribute.
		inner := math.Inf(-1)
		for j := d - 1; j >= 0; j-- {
			term := logPow(float64(j), nk)
			if !math.IsInf(inner, -1) && term < inner-45 { // e^-45 ~ 3e-20
				break
			}
			inner = logSumExp(inner, term)
		}
		logTerm := lc + inner - float64(n)*logD
		total += float64(k) * math.Exp(logTerm)
	}
	return total
}

// ExpResponders returns the expected number of responses for n responders
// and d exponentially weighted buckets (Equation 4). As d grows the
// expectation tends to 1/ln 2 ≈ 1.4427 — the paper's observation that the
// exponential distribution caps the implosion at a constant independent of
// group size.
func ExpResponders(n, d int) float64 {
	switch {
	case n <= 0:
		return 0
	case d <= 1:
		return float64(n)
	}
	ln2 := math.Ln2
	df := float64(d)
	// log(2^d − 1) = d·ln2 + log(1 − 2^−d)
	logS := df*ln2 + log1mExp(-df*ln2)
	total := 0.0
	for b := 1; b <= d; b++ {
		bf := float64(b)
		// log(2^d − 2^b) for b < d; −Inf at b = d.
		var logRest float64
		if b < d {
			logRest = df*ln2 + log1mExp((bf-df)*ln2)
		} else {
			logRest = math.Inf(-1)
		}
		// Terms over k are unimodal: walk up, remember the max, stop once
		// far past the peak.
		best := math.Inf(-1)
		for k := 1; k <= n; k++ {
			logTerm := logChoose(n, k) +
				float64(k)*(bf-1)*ln2 -
				float64(n)*logS
			// (n−k)·log(2^d − 2^b), honouring 0^0 = 1 at b = d, k = n.
			if k < n {
				if math.IsInf(logRest, -1) {
					continue // (2^d − 2^d)^(n−k) = 0 for k < n
				}
				logTerm += float64(n-k) * logRest
			}
			if logTerm > best {
				best = logTerm
			} else if logTerm < best-45 {
				break
			}
			total += float64(k) * math.Exp(logTerm)
		}
	}
	return total
}

// ExpRespondersLimit is the d→∞ limit of the expected response count under
// the exponential delay distribution, 1/ln 2 (the paper quotes 1.442698).
const ExpRespondersLimit = 1.4426950408889634

// ResponderPoint is one cell of the Figure-14/18 surfaces.
type ResponderPoint struct {
	D2Millis  float64 // response window length
	Receivers int     // n
	Expected  float64 // expected responses
}

// ResponderSurface evaluates a responder bound over the Figure-14/18 grid:
// D2 values (milliseconds) × receiver counts, with bucket width R
// milliseconds. dist selects the bound: "uniform" (Eq 2) or "exp" (Eq 4).
func ResponderSurface(d2Millis []float64, receivers []int, rttMillis float64, dist string) []ResponderPoint {
	var out []ResponderPoint
	for _, d2 := range d2Millis {
		d := int(d2 / rttMillis)
		if d < 1 {
			d = 1
		}
		for _, n := range receivers {
			var e float64
			if dist == "exp" {
				e = ExpResponders(n, d)
			} else {
				e = UniformResponders(n, d)
			}
			out = append(out, ResponderPoint{D2Millis: d2, Receivers: n, Expected: e})
		}
	}
	return out
}
