package analytic_test

import (
	"fmt"

	"sessiondir/internal/analytic"
)

// The birthday bound behind Figure 4: how many random allocations a
// 10000-address space survives before a clash becomes more likely than not.
func ExampleBirthdayMedian() {
	fmt.Println(analytic.BirthdayMedian(10000))
	// Output: 119
}

// Equation 1 (Figure 6): sessions one 8192-address partition sustains at
// 50% clash probability when 0.1% of sessions are invisibly allocated —
// the paper's §2.3 anchor (×8 partitions ≈ 16496 total).
func ExampleAllocationsAtHalf() {
	m := analytic.AllocationsAtHalf(8192, 0.001)
	fmt.Println(m, 8*m)
	// Output: 2061 16488
}

// Equation 4 (Figure 18): with exponentially distributed response delays,
// even 51200 potential responders produce ~1.44 expected responses — the
// constant the paper quotes as 1.442698.
func ExampleExpResponders() {
	fmt.Printf("%.6f\n", analytic.ExpResponders(51200, 256))
	// Output: 1.442698
}

// The §2.4.1 partition rule of Figure 11.
func ExamplePartitionCount() {
	fmt.Println(analytic.PartitionCount(2))
	// Output: 55
}
