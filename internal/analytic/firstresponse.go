package analytic

import "math"

// First-response delay models, the companions to Figures 16 and 19: the
// responder-count bounds say how many reports arrive; these say how soon
// the first one does. Both are needed to pick D2 — "equally important is
// that the delay before the first response is not excessive" (§3.1).

// FirstResponseUniform returns the expected time until the *first* of n
// responders transmits, when each delays uniformly over [d1, d2]
// (milliseconds): d1 + (d2−d1)/(n+1), the expectation of the minimum of n
// uniform variates. Network propagation to and from the responders adds on
// top; callers typically add one RTT.
func FirstResponseUniform(n int, d1, d2 float64) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	if d2 < d1 {
		d2 = d1
	}
	return d1 + (d2-d1)/float64(n+1)
}

// FirstResponseExp returns the expected time until the first of n
// responders transmits under the §3.1 exponential distribution with
// maximum RTT r over [d1, d2]. Computed by numeric integration of
// E[min] = ∫ (1−F(t))^n dt with F(t) = (2^(t/r) − 1)/(2^d − 1): there is
// no tidy closed form, but the integrand is smooth and the window short.
func FirstResponseExp(n int, d1, d2, r float64) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	span := d2 - d1
	if span <= 0 || r <= 0 {
		return d1
	}
	d := span / r
	// log2 of the sub-bucket count; F(t) computed stably in that domain.
	const steps = 4096
	h := span / steps
	total := 0.0
	for i := 0; i <= steps; i++ {
		t := float64(i) * h
		// survival = (1 − F(t))^n, F(t) = (2^(t/r)−1)/(2^d −1).
		// In logs: log(1−F) = log(2^d − 2^(t/r)) − log(2^d − 1).
		x := t / r
		var logNum float64
		if x >= d {
			logNum = math.Inf(-1)
		} else {
			logNum = d*math.Ln2 + log1mExp((x-d)*math.Ln2)
		}
		logDen := d*math.Ln2 + log1mExp(-d*math.Ln2)
		logSurv := float64(n) * (logNum - logDen)
		weight := 1.0
		if i == 0 || i == steps {
			weight = 0.5 // trapezoid ends
		}
		total += weight * math.Exp(logSurv)
	}
	return d1 + total*h
}
