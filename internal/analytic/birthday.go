package analytic

import "math"

// BirthdayClashProbability returns the probability that at least one pair
// of the k addresses drawn uniformly (with replacement) from a space of
// size n collide — the curve of Figure 4 (n = 10000 there). It is the
// classic birthday problem: p = 1 − ∏_{j=0}^{k−1} (1 − j/n).
func BirthdayClashProbability(n, k int) float64 {
	if n <= 0 {
		return 1
	}
	if k <= 1 {
		return 0
	}
	if k > n {
		return 1 // pigeonhole
	}
	// Work with log of the no-clash probability for stability.
	logNoClash := 0.0
	for j := 1; j < k; j++ {
		logNoClash += math.Log1p(-float64(j) / float64(n))
	}
	return -math.Expm1(logNoClash)
}

// BirthdayMedian returns the smallest k whose clash probability reaches
// 0.5 for a space of n addresses: the "≈√n allocations before an expected
// clash" rule the paper cites for purely random allocation.
func BirthdayMedian(n int) int {
	lo, hi := 1, n+1
	for lo < hi {
		mid := (lo + hi) / 2
		if BirthdayClashProbability(n, mid) >= 0.5 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// BirthdayCurve returns (k, p) pairs for k = 0..maxK step by step — the
// series Figure 4 plots for n = 10000, k up to 400.
func BirthdayCurve(n, maxK, step int) []BirthdayPoint {
	if step < 1 {
		step = 1
	}
	var out []BirthdayPoint
	for k := 0; k <= maxK; k += step {
		out = append(out, BirthdayPoint{K: k, P: BirthdayClashProbability(n, k)})
	}
	return out
}

// BirthdayPoint is one point of the Figure-4 curve.
type BirthdayPoint struct {
	K int     // addresses allocated
	P float64 // probability at least two collide
}
