package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"sessiondir/internal/stats"
)

func TestLogChoose(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 2, 10}, {10, 0, 1}, {10, 10, 1}, {10, 3, 120}, {52, 5, 2598960},
	}
	for _, c := range cases {
		got := math.Exp(logChoose(c.n, c.k))
		if math.Abs(got-c.want)/c.want > 1e-9 {
			t.Errorf("C(%d,%d) = %v want %v", c.n, c.k, got, c.want)
		}
	}
	if !math.IsInf(logChoose(5, 6), -1) || !math.IsInf(logChoose(5, -1), -1) {
		t.Error("out-of-range k should give -Inf")
	}
}

func TestLogChooseSymmetryProperty(t *testing.T) {
	err := quick.Check(func(nRaw, kRaw uint8) bool {
		n := int(nRaw)
		k := int(kRaw) % (n + 1)
		a, b := logChoose(n, k), logChoose(n, n-k)
		return math.Abs(a-b) < 1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestLog1mExp(t *testing.T) {
	for _, x := range []float64{-0.001, -0.1, -1, -10, -100} {
		want := math.Log(1 - math.Exp(x))
		got := log1mExp(x)
		if math.Abs(got-want) > 1e-9*math.Abs(want)+1e-12 {
			t.Errorf("log1mExp(%v) = %v want %v", x, got, want)
		}
	}
	if !math.IsInf(log1mExp(0), -1) {
		t.Error("log1mExp(0) should be -Inf")
	}
}

func TestLogSumExp(t *testing.T) {
	got := logSumExp(math.Log(3), math.Log(4))
	if math.Abs(got-math.Log(7)) > 1e-12 {
		t.Fatalf("logSumExp = %v", got)
	}
	if got := logSumExp(math.Inf(-1), math.Log(2)); math.Abs(got-math.Log(2)) > 1e-12 {
		t.Fatalf("logSumExp with -Inf = %v", got)
	}
}

func TestBirthdayKnownValues(t *testing.T) {
	// Classic: 23 people, 365 days → p ≈ 0.5073.
	p := BirthdayClashProbability(365, 23)
	if math.Abs(p-0.5073) > 0.0005 {
		t.Fatalf("p(365,23) = %v", p)
	}
	if BirthdayClashProbability(100, 0) != 0 || BirthdayClashProbability(100, 1) != 0 {
		t.Fatal("k<=1 should have zero clash probability")
	}
	if BirthdayClashProbability(10, 11) != 1 {
		t.Fatal("pigeonhole should give 1")
	}
}

func TestBirthdayMonotoneProperty(t *testing.T) {
	err := quick.Check(func(nRaw uint16, kRaw uint8) bool {
		n := int(nRaw%5000) + 10
		k := int(kRaw)
		return BirthdayClashProbability(n, k) <= BirthdayClashProbability(n, k+1)+1e-15
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestBirthdayMedianSqrtRule(t *testing.T) {
	// Median ≈ 1.1774·√n.
	for _, n := range []int{1000, 10000, 100000} {
		m := BirthdayMedian(n)
		want := 1.1774 * math.Sqrt(float64(n))
		if math.Abs(float64(m)-want) > want*0.05 {
			t.Errorf("median(%d) = %d want ~%.0f", n, m, want)
		}
	}
}

func TestBirthdayMatchesMonteCarlo(t *testing.T) {
	// Cross-check the closed form against simulation (Figure 4 overlay).
	rng := stats.NewRNG(77)
	const n, k, trials = 10000, 120, 4000
	clashes := 0
	seen := make(map[int]bool, k)
	for tr := 0; tr < trials; tr++ {
		clear(seen)
		for j := 0; j < k; j++ {
			a := rng.IntN(n)
			if seen[a] {
				clashes++
				break
			}
			seen[a] = true
		}
	}
	got := float64(clashes) / trials
	want := BirthdayClashProbability(n, k)
	if math.Abs(got-want) > 0.03 {
		t.Fatalf("MC %v vs closed form %v", got, want)
	}
}

func TestBirthdayCurveShape(t *testing.T) {
	curve := BirthdayCurve(10000, 400, 50)
	if len(curve) != 9 {
		t.Fatalf("curve length %d", len(curve))
	}
	if curve[0].P != 0 {
		t.Fatal("p(0) != 0")
	}
	// Figure 4: by 400 allocations from 10000, clash is near-certain.
	if last := curve[len(curve)-1]; last.P < 0.99 {
		t.Fatalf("p(400) = %v, want ≈1", last.P)
	}
}

func TestClashFreeProbabilityEdges(t *testing.T) {
	if ClashFreeProbability(100, 0, 0.001) != 1 {
		t.Fatal("m=0 should be clash-free")
	}
	if ClashFreeProbability(100, 100, 0.001) != 0 {
		t.Fatal("full partition should clash")
	}
	// Zero invisible fraction → informed allocation never clashes.
	if p := ClashFreeProbability(100, 99, 0); p != 1 {
		t.Fatalf("i=0 p = %v want 1", p)
	}
}

func TestClashFreeProbabilityMonotoneInM(t *testing.T) {
	prev := 1.0
	for m := 0; m < 1000; m += 10 {
		p := ClashFreeProbability(1000, m, 0.001)
		if p > prev+1e-12 {
			t.Fatalf("p not monotone at m=%d: %v > %v", m, p, prev)
		}
		prev = p
	}
}

func TestAllocationsAtHalfPaperAnchor(t *testing.T) {
	// §2.3: space 65536 into 8 partitions of 8192 each, i = 0.001m →
	// "approximately 16496 concurrent sessions as seen from each site",
	// i.e. ~2062 per partition.
	m := AllocationsAtHalf(8192, 0.001)
	total := 8 * m
	if total < 15000 || total > 18000 {
		t.Fatalf("8 × m = %d, paper says ≈16496", total)
	}
}

func TestAllocationsAtHalfOrdering(t *testing.T) {
	// Smaller invisible fractions pack better (Figure 6 ordering).
	n := 100000
	prev := -1
	for _, f := range []float64{0.01, 0.001, 0.0001, 0.00001} {
		m := AllocationsAtHalf(n, f)
		if m <= prev {
			t.Fatalf("i=%v gives %d, not better than %d", f, m, prev)
		}
		prev = m
	}
	// Bounds of Figure 6: between √n and n.
	m := AllocationsAtHalf(n, 0.001)
	if float64(m) < math.Sqrt(float64(n)) || m > n {
		t.Fatalf("m = %d outside (√n, n)", m)
	}
}

func TestFig6CurveMonotoneSpace(t *testing.T) {
	curve := Fig6Curve(100, 1000000, 2, 0.001)
	if len(curve) < 8 {
		t.Fatalf("curve too short: %d", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Allocations < curve[i-1].Allocations {
			t.Fatalf("allocations fell as space grew at %v", curve[i])
		}
	}
	// Packing fraction m/n worsens as n grows (the paper's key point).
	first := float64(curve[0].Allocations) / float64(curve[0].SpaceSize)
	last := float64(curve[len(curve)-1].Allocations) / float64(curve[len(curve)-1].SpaceSize)
	if last >= first {
		t.Fatalf("packing fraction did not degrade: %v → %v", first, last)
	}
}

func TestRequiredInvisibleFractionInvertsEq1(t *testing.T) {
	// Round trip: for the m at clash-prob 0.5 under fraction f, the
	// required fraction must come back ≈ f.
	for _, f := range []float64{0.01, 0.001, 0.0001} {
		m := AllocationsAtHalf(8192, f)
		got := RequiredInvisibleFraction(8192, m)
		if got < f*0.9 || got > f*1.3 {
			t.Fatalf("f=%v: m=%d → required %v", f, m, got)
		}
	}
	// Edges.
	if RequiredInvisibleFraction(100, 0) != 1 {
		t.Fatal("m=0 should tolerate anything")
	}
	if RequiredInvisibleFraction(100, 100) != 0 {
		t.Fatal("full partition should require 0")
	}
	// Near-full packing is achievable only with a near-perfect
	// announcement mechanism: the tolerated fraction must be minuscule.
	if got := RequiredInvisibleFraction(100, 99); got <= 0 || got > 0.001 {
		t.Fatalf("m≈n: %v", got)
	}
}

// TestEq1MatchesMonteCarlo cross-validates the closed form against a
// direct simulation of the §2.3 model: each of m allocations picks
// uniformly among the n−m+i addresses it believes free, of which i are
// invisibly in use; a pick landing on an invisible address is a clash.
func TestEq1MatchesMonteCarlo(t *testing.T) {
	rng := stats.NewRNG(91)
	const n, m = 2000, 800
	const frac = 0.005 // i = 4 invisible sessions
	const trials = 4000
	i := frac * m
	pClash := i / (float64(n-m) + i)
	clashFree := 0
	for tr := 0; tr < trials; tr++ {
		ok := true
		for k := 0; k < m; k++ {
			if rng.Bool(pClash) {
				ok = false
				break
			}
		}
		if ok {
			clashFree++
		}
	}
	got := float64(clashFree) / trials
	want := ClashFreeProbability(n, m, frac)
	if math.Abs(got-want) > 0.03 {
		t.Fatalf("MC %v vs Equation 1 %v", got, want)
	}
}

func TestMeanDiscoveryDelayPaperExample(t *testing.T) {
	// (0.98·0.2)+(0.02·600) = 12.196 ≈ 12 s.
	got := MeanDiscoveryDelay(0.02, 0.2, 600)
	if math.Abs(got-12.196) > 1e-9 {
		t.Fatalf("delay = %v", got)
	}
	// §2.3's 0.1% invisible: 12 s over a 4 h advertised life ≈ 0.00083.
	f := InvisibleFraction(12, 4*3600)
	if f < 0.0005 || f > 0.0015 {
		t.Fatalf("invisible fraction = %v", f)
	}
	if InvisibleFraction(10, 0) != 1 {
		t.Fatal("zero lifetime should clamp to 1")
	}
	if InvisibleFraction(1e9, 10) != 1 {
		t.Fatal("huge delay should clamp to 1")
	}
}

func TestPartitionCountFigure11(t *testing.T) {
	// The paper: margin of safety 2 ⇒ 55 partitions.
	if got := PartitionCount(2); got != 55 {
		t.Fatalf("PartitionCount(2) = %d, paper says 55", got)
	}
	lows := PartitionLowerBounds(2)
	if lows[0] != 0 {
		t.Fatalf("first partition starts at %d", lows[0])
	}
	for i := 1; i < len(lows); i++ {
		if lows[i] <= lows[i-1] {
			t.Fatalf("bounds not ascending: %v", lows)
		}
	}
	if lows[len(lows)-1] > 255 {
		t.Fatalf("last bound %d > 255", lows[len(lows)-1])
	}
	// Low TTLs get one partition per TTL value (§2.4.1).
	for i := 0; i < 10; i++ {
		if lows[i] != i {
			t.Fatalf("low-TTL partitions not unit-width: %v", lows[:12])
		}
	}
	// The top partition spans less than the DVMRP infinity of 32.
	topSpan := 256 - lows[len(lows)-1]
	if topSpan >= 32 {
		t.Fatalf("top partition spans %d ≥ 32", topSpan)
	}
	// Larger margins mean more partitions.
	if !(PartitionCount(1) < PartitionCount(2) && PartitionCount(2) < PartitionCount(4)) {
		t.Fatal("partition count should grow with margin")
	}
}

func TestUniformRespondersSmall(t *testing.T) {
	// d=1: everyone responds.
	if got := UniformResponders(7, 1); got != 7 {
		t.Fatalf("d=1: %v", got)
	}
	// n=1: exactly one response whatever d is.
	for _, d := range []int{1, 2, 10, 100} {
		if got := UniformResponders(1, d); math.Abs(got-1) > 1e-9 {
			t.Fatalf("n=1,d=%d: %v", d, got)
		}
	}
	// n=2, d=2: P(same bucket)=1/2 → E = 2·1/2 + 1·1/2 = 1.5.
	if got := UniformResponders(2, 2); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("n=2,d=2: %v", got)
	}
	if UniformResponders(0, 5) != 0 {
		t.Fatal("n=0 should be 0")
	}
}

// exhaustive reference for small n, d by direct enumeration.
func bruteUniform(n, d int) float64 {
	assign := make([]int, n)
	total := 0.0
	count := 0
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			first := d + 1
			for _, b := range assign {
				if b < first {
					first = b
				}
			}
			k := 0
			for _, b := range assign {
				if b == first {
					k++
				}
			}
			total += float64(k)
			count++
			return
		}
		for b := 1; b <= d; b++ {
			assign[i] = b
			rec(i + 1)
		}
	}
	rec(0)
	return total / float64(count)
}

func TestUniformRespondersMatchesBruteForce(t *testing.T) {
	for _, c := range []struct{ n, d int }{{2, 3}, {3, 2}, {3, 4}, {4, 3}, {5, 2}} {
		want := bruteUniform(c.n, c.d)
		got := UniformResponders(c.n, c.d)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("Uniform(%d,%d) = %v want %v", c.n, c.d, got, want)
		}
	}
}

func bruteExp(n, d int) float64 {
	// Enumerate assignments over sub-buckets 1..2^d−1; bucket of sub-bucket
	// s is floor(log2(s))+1.
	S := 1<<d - 1
	bucketOf := func(s int) int {
		b := 0
		for s > 0 {
			s >>= 1
			b++
		}
		return b
	}
	assign := make([]int, n)
	total := 0.0
	count := 0
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			first := d + 1
			for _, s := range assign {
				if b := bucketOf(s); b < first {
					first = b
				}
			}
			k := 0
			for _, s := range assign {
				if bucketOf(s) == first {
					k++
				}
			}
			total += float64(k)
			count++
			return
		}
		for s := 1; s <= S; s++ {
			assign[i] = s
			rec(i + 1)
		}
	}
	rec(0)
	return total / float64(count)
}

func TestExpRespondersMatchesBruteForce(t *testing.T) {
	for _, c := range []struct{ n, d int }{{2, 2}, {2, 3}, {3, 2}, {3, 3}, {4, 2}} {
		want := bruteExp(c.n, c.d)
		got := ExpResponders(c.n, c.d)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("Exp(%d,%d) = %v want %v", c.n, c.d, got, want)
		}
	}
}

func TestExpRespondersLimit(t *testing.T) {
	// Paper: "the limit in this case is a mean of 1.442698 responses".
	for _, n := range []int{100, 1000, 10000} {
		got := ExpResponders(n, 64)
		if math.Abs(got-ExpRespondersLimit) > 0.02 {
			t.Errorf("Exp(%d,64) = %v want ≈%v", n, got, ExpRespondersLimit)
		}
	}
}

func TestExpRespondersNearlyFlatInN(t *testing.T) {
	// Figure 18's key property: group size barely moves the expectation.
	e200 := ExpResponders(200, 32)
	e25600 := ExpResponders(25600, 32)
	if math.Abs(e200-e25600) > 0.5 {
		t.Fatalf("exp distribution too sensitive to n: %v vs %v", e200, e25600)
	}
}

func TestUniformRespondersScalesWithN(t *testing.T) {
	// Figure 14's key property: with fixed d, responses grow ~linearly in n.
	e1 := UniformResponders(800, 16)
	e2 := UniformResponders(12800, 16)
	if e2 < 8*e1 {
		t.Fatalf("uniform distribution should scale with n: %v vs %v", e1, e2)
	}
}

func TestUniformRespondersDecreasingInD(t *testing.T) {
	prev := math.Inf(1)
	for _, d := range []int{1, 2, 4, 8, 16, 32, 64} {
		e := UniformResponders(1000, d)
		if e > prev+1e-9 {
			t.Fatalf("E not decreasing in d at %d: %v > %v", d, e, prev)
		}
		prev = e
	}
}

func TestResponderSurface(t *testing.T) {
	pts := ResponderSurface([]float64{800, 3200}, []int{200, 800}, 200, "uniform")
	if len(pts) != 4 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if p.Expected <= 0 {
			t.Fatalf("non-positive expectation: %+v", p)
		}
	}
	ptsExp := ResponderSurface([]float64{800, 3200}, []int{200, 800}, 200, "exp")
	// Exponential should give strictly fewer expected responses at the
	// largest group / window combination.
	if ptsExp[3].Expected >= pts[3].Expected {
		t.Fatalf("exp (%v) not better than uniform (%v)", ptsExp[3].Expected, pts[3].Expected)
	}
}
