package topology

import (
	"testing"

	"sessiondir/internal/stats"
)

func TestDiscoverPerfectResponseIsComplete(t *testing.T) {
	g, err := GenerateMbone(MboneConfig{Nodes: 300}, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	found := Discover(g, DiscoverConfig{Monitor: 0, ResponseProb: 1, Seed: 2})
	if found.NumNodes() != g.NumNodes() || found.NumLinks() != g.NumLinks() {
		t.Fatalf("perfect crawl incomplete: %d/%d links", found.NumLinks(), g.NumLinks())
	}
	if !found.Connected() {
		t.Fatal("perfect crawl disconnected")
	}
}

func TestDiscoverLossyResponseIsPartial(t *testing.T) {
	g, err := GenerateMbone(MboneConfig{Nodes: 400}, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	// On a tree-like map a silent router hides everything behind it, so
	// coverage falls sharply with the response rate — check monotonicity
	// and that every discovered link is real.
	prev := 0
	for _, p := range []float64{0.3, 0.7, 0.95} {
		found := Discover(g, DiscoverConfig{Monitor: 0, ResponseProb: p, Seed: 4})
		if found.NumLinks() < prev {
			t.Fatalf("coverage not monotone in response rate at p=%v", p)
		}
		prev = found.NumLinks()
		for i := 0; i < found.NumNodes(); i++ {
			for _, e := range found.Neighbors(NodeID(i)) {
				ge, ok := g.EdgeBetween(NodeID(i), e.To)
				if !ok || ge != e {
					t.Fatalf("phantom or corrupted link %d-%d", i, e.To)
				}
			}
		}
	}
	found := Discover(g, DiscoverConfig{Monitor: 0, ResponseProb: 0.7, Seed: 4})
	if found.NumLinks() >= g.NumLinks() {
		t.Fatal("lossy crawl found every link")
	}
}

func TestCleanMapKeepsLargestComponent(t *testing.T) {
	g := NewGraph(7)
	// Component A: 0-1-2-3; component B: 4-5; isolated: 6.
	g.MustAddLink(0, 1, 1, 1, 1)
	g.MustAddLink(1, 2, 1, 16, 2)
	g.MustAddLink(2, 3, 2, 1, 3)
	g.MustAddLink(4, 5, 1, 1, 1)
	g.Nodes[2].Country = "X"

	clean, mapping := CleanMap(g)
	if clean.NumNodes() != 4 || clean.NumLinks() != 3 {
		t.Fatalf("clean = %d nodes %d links", clean.NumNodes(), clean.NumLinks())
	}
	if !clean.Connected() {
		t.Fatal("cleaned map disconnected")
	}
	// Labels and link attributes survive renumbering.
	foundX := false
	for i, n := range clean.Nodes {
		if n.Country == "X" {
			foundX = true
			if mapping[i] != 2 {
				t.Fatalf("mapping[%d] = %d, want 2", i, mapping[i])
			}
		}
	}
	if !foundX {
		t.Fatal("label lost in cleanup")
	}
	if len(mapping) != 4 {
		t.Fatalf("mapping size %d", len(mapping))
	}
	if empty, m := CleanMap(NewGraph(0)); empty.NumNodes() != 0 || m != nil {
		t.Fatal("empty graph cleanup")
	}
}

// TestDiscoveredMapPreservesScopeBehaviour: the paper ran its simulations
// on the *cleaned, partial* map and treated it as representative. Verify
// the pipeline end-to-end: crawl with losses, clean, and check the scope
// semantics still hold on the result.
func TestDiscoveredMapPreservesScopeBehaviour(t *testing.T) {
	g, err := GenerateMbone(MboneConfig{Nodes: 600}, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	found := Discover(g, DiscoverConfig{Monitor: 0, ResponseProb: 0.85, Seed: 6})
	clean, _ := CleanMap(found)
	if clean.NumNodes() < g.NumNodes()/2 {
		t.Fatalf("cleanup kept only %d of %d nodes", clean.NumNodes(), g.NumNodes())
	}
	// TTL-47 sessions from UK nodes still stay inside the UK.
	uk := NodesInCountry(clean, "UK")
	if len(uk) == 0 {
		t.Skip("UK fell out of the discovered component (acceptable at this loss)")
	}
	cache := NewReachCache(clean)
	for _, src := range uk[:min(3, len(uk))] {
		for _, v := range cache.Reach(src, 47).Members() {
			if clean.Nodes[v].Country != "UK" {
				t.Fatalf("TTL47 escaped to %s on the discovered map", clean.Nodes[v].Country)
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
