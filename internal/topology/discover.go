package topology

import (
	"sessiondir/internal/stats"
)

// This file reproduces the paper's data pipeline. The Mbone map came from
// mcollect/mwatch, which queried each known mrouter (mrinfo-style) for its
// tunnel list — and the paper notes the result was incomplete: "some
// mrouters do not have unicast routes to the mwatch daemon", so
// unresponsive routers' links were only seen from the far end, and "any
// disconnected subtrees of the network were removed" before simulating.
//
// Discover models that: a crawl from a monitor node where each router
// responds with some probability; non-responders contribute only the link
// endpoints their neighbours report. CleanMap then applies the paper's
// largest-connected-component cleanup.

// DiscoverConfig parameterises a crawl.
type DiscoverConfig struct {
	// Monitor is the crawling daemon's home router.
	Monitor NodeID
	// ResponseProb is the chance a router answers the monitor's query
	// (1 = perfect map). The paper's map missed part of the Mbone.
	ResponseProb float64
	Seed         uint64
}

// Discover crawls g and returns the discovered map. Nodes keep their ids
// and labels; links are included when at least one endpoint responded.
// Unreachable or silent regions come back disconnected or missing, exactly
// like a real mcollect run.
func Discover(g *Graph, cfg DiscoverConfig) *Graph {
	rng := stats.NewRNG(cfg.Seed ^ 0xd15c)
	n := g.NumNodes()
	responds := make([]bool, n)
	for i := range responds {
		responds[i] = rng.Bool(cfg.ResponseProb)
	}
	responds[cfg.Monitor] = true // the monitor can always query itself

	out := NewGraph(n)
	copy(out.Nodes, g.Nodes)

	// Crawl: start from the monitor; query every responding router we
	// learn about; a response reveals all of that router's links (both
	// endpoints become known). Silent routers are known only if a
	// neighbour revealed them, and reveal nothing themselves.
	type linkKey struct{ a, b NodeID }
	seenLink := map[linkKey]bool{}
	visited := make([]bool, n)
	queue := []NodeID{cfg.Monitor}
	visited[cfg.Monitor] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if !responds[u] {
			continue // known but silent: contributes no link reports
		}
		for _, e := range g.Neighbors(u) {
			a, b := u, e.To
			if a > b {
				a, b = b, a
			}
			k := linkKey{a, b}
			if !seenLink[k] {
				seenLink[k] = true
				out.MustAddLink(a, b, e.Metric, e.Threshold, e.Delay)
			}
			if !visited[e.To] {
				visited[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	return out
}

// CleanMap applies the paper's cleanup: keep only the largest connected
// component, renumbering nodes densely. It returns the cleaned graph and
// the mapping from new ids to original ids.
func CleanMap(g *Graph) (*Graph, []NodeID) {
	comp := g.LargestComponent()
	if len(comp) == 0 {
		return NewGraph(0), nil
	}
	newID := make(map[NodeID]NodeID, len(comp))
	for i, old := range comp {
		newID[old] = NodeID(i)
	}
	out := NewGraph(len(comp))
	for i, old := range comp {
		out.Nodes[i] = g.Nodes[old]
	}
	for _, old := range comp {
		for _, e := range g.Neighbors(old) {
			from, to := newID[old], newID[e.To]
			if from < to { // each undirected link once
				out.MustAddLink(from, to, e.Metric, e.Threshold, e.Delay)
			}
		}
	}
	return out, comp
}
