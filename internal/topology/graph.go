// Package topology models multicast router topologies: weighted graphs with
// per-link DVMRP metrics and TTL scope thresholds, source-based shortest
// path trees, shared (core-based) trees, and TTL-scoped reachability.
//
// Two generators are provided, matching the two topologies the paper
// evaluates on: a synthetic Mbone (standing in for the 1998 mcollect map;
// see DESIGN.md §2) and the Doar-style grid generator of §3 used for the
// request–response simulations.
package topology

import (
	"fmt"
	"math"
)

// NodeID identifies a multicast router in a Graph.
type NodeID int32

// InfMetric is the DVMRP infinite routing metric: paths at or beyond this
// cost are unreachable (§2.4.1 notes infinity is 32).
const InfMetric = 32

// Edge is one directed half of a link.
type Edge struct {
	To        NodeID
	Metric    int32   // DVMRP routing metric (>= 1)
	Threshold uint8   // TTL threshold configured on the link (>= 1)
	Delay     float64 // propagation delay in milliseconds
}

// Node carries the labelling the Mbone generator assigns; generated grid
// topologies leave most fields zero. X, Y are layout coordinates (grid
// units for Doar graphs; synthetic map coordinates for the Mbone).
type Node struct {
	Name      string
	Continent string
	Country   string
	Site      string
	X, Y      float64
}

// Graph is an undirected multigraph of multicast routers stored as
// directed adjacency lists (each undirected link appears once per
// direction, with equal metric, threshold and delay).
type Graph struct {
	Nodes []Node
	adj   [][]Edge
	edges int
}

// NewGraph returns an empty graph with n unlabelled nodes.
func NewGraph(n int) *Graph {
	return &Graph{
		Nodes: make([]Node, n),
		adj:   make([][]Edge, n),
	}
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// NumLinks returns the undirected link count.
func (g *Graph) NumLinks() int { return g.edges }

// AddLink installs an undirected link between a and b. metric must be
// >= 1 and threshold >= 1 (1 means "no scope boundary": every multicast
// packet that still has TTL after the hop crosses it).
func (g *Graph) AddLink(a, b NodeID, metric int32, threshold uint8, delay float64) error {
	if a == b {
		return fmt.Errorf("topology: self-link at node %d", a)
	}
	if !g.valid(a) || !g.valid(b) {
		return fmt.Errorf("topology: link %d-%d outside graph of %d nodes", a, b, len(g.Nodes))
	}
	if metric < 1 {
		return fmt.Errorf("topology: link %d-%d metric %d < 1", a, b, metric)
	}
	if threshold < 1 {
		return fmt.Errorf("topology: link %d-%d threshold 0", a, b)
	}
	if delay < 0 || math.IsNaN(delay) {
		return fmt.Errorf("topology: link %d-%d invalid delay %v", a, b, delay)
	}
	g.adj[a] = append(g.adj[a], Edge{To: b, Metric: metric, Threshold: threshold, Delay: delay})
	g.adj[b] = append(g.adj[b], Edge{To: a, Metric: metric, Threshold: threshold, Delay: delay})
	g.edges++
	return nil
}

// MustAddLink is AddLink for generator-internal use where inputs are known
// valid; it panics on error.
func (g *Graph) MustAddLink(a, b NodeID, metric int32, threshold uint8, delay float64) {
	if err := g.AddLink(a, b, metric, threshold, delay); err != nil {
		panic(err)
	}
}

// Neighbors returns the adjacency list of n. The returned slice is owned by
// the graph and must not be modified.
func (g *Graph) Neighbors(n NodeID) []Edge {
	return g.adj[n]
}

// EdgeBetween returns the edge from a toward b and whether one exists.
// If parallel links exist it returns the first.
func (g *Graph) EdgeBetween(a, b NodeID) (Edge, bool) {
	for _, e := range g.adj[a] {
		if e.To == b {
			return e, true
		}
	}
	return Edge{}, false
}

func (g *Graph) valid(n NodeID) bool { return n >= 0 && int(n) < len(g.Nodes) }

// Connected reports whether every node is reachable from node 0
// (false for an empty graph).
func (g *Graph) Connected() bool {
	if len(g.Nodes) == 0 {
		return false
	}
	seen := make([]bool, len(g.Nodes))
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[u] {
			if !seen[e.To] {
				seen[e.To] = true
				count++
				stack = append(stack, e.To)
			}
		}
	}
	return count == len(g.Nodes)
}

// LargestComponent returns the node set of the largest connected component.
func (g *Graph) LargestComponent() []NodeID {
	seen := make([]bool, len(g.Nodes))
	var best []NodeID
	for start := range g.Nodes {
		if seen[start] {
			continue
		}
		var comp []NodeID
		stack := []NodeID{NodeID(start)}
		seen[start] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, e := range g.adj[u] {
				if !seen[e.To] {
					seen[e.To] = true
					stack = append(stack, e.To)
				}
			}
		}
		if len(comp) > len(best) {
			best = comp
		}
	}
	return best
}

// MaxThresholdOnPath is a diagnostic helper: it returns the maximum link
// threshold along the metric-shortest path from a to b, or -1 if b is
// unreachable from a. Used by tests to validate generated boundary nesting.
func (g *Graph) MaxThresholdOnPath(a, b NodeID) int {
	t := NewSPTree(g, a)
	if !t.Reached(b) {
		return -1
	}
	maxTh := 0
	for v := b; v != a; {
		p := t.Parent(v)
		e, ok := g.EdgeBetween(NodeID(p), v)
		if !ok {
			return -1
		}
		if int(e.Threshold) > maxTh {
			maxTh = int(e.Threshold)
		}
		v = NodeID(p)
	}
	return maxTh
}
