package topology

import (
	"math/bits"
	"sync"

	"sessiondir/internal/mcast"
)

// NodeSet is a bitset over the nodes of a graph, used to hold reachability
// ("scope") sets compactly so visibility and clash tests are word-parallel.
type NodeSet struct {
	words []uint64
	n     int
}

// NewNodeSet returns an empty set over n nodes.
func NewNodeSet(n int) *NodeSet {
	return &NodeSet{words: make([]uint64, (n+63)/64), n: n}
}

// Add inserts v.
func (s *NodeSet) Add(v NodeID) { s.words[v>>6] |= 1 << (uint(v) & 63) }

// Contains reports membership of v.
func (s *NodeSet) Contains(v NodeID) bool {
	return s.words[v>>6]&(1<<(uint(v)&63)) != 0
}

// Len returns the number of members.
func (s *NodeSet) Len() int {
	total := 0
	for _, w := range s.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Universe returns the size of the node universe the set is over.
func (s *NodeSet) Universe() int { return s.n }

// Intersects reports whether s and t share any member.
//
// Both sets must be over the same node universe (built for the same
// graph). When the universes differ, the comparison silently truncates to
// the shorter set's words: members of the larger universe beyond the
// smaller one's range can never register an intersection. Cross-graph
// comparisons are therefore meaningless — node 5 of one topology has no
// relation to node 5 of another — and callers are expected never to mix
// sets from different graphs. TestNodeSetIntersectsMismatchedUniverses
// pins the truncation behaviour.
func (s *NodeSet) Intersects(t *NodeSet) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Members returns the members in ascending order.
func (s *NodeSet) Members() []NodeID {
	out := make([]NodeID, 0, s.Len())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, NodeID(wi*64+b))
			w &= w - 1
		}
	}
	return out
}

// Reach computes the set of nodes whose attached hosts receive a multicast
// packet sent from src with the given TTL, assuming DVMRP-style forwarding
// along src's shortest path tree.
//
// The TTL rule follows §1 of the paper: each router hop decrements the TTL;
// a packet crosses a link only if the decremented TTL is still positive and
// is not below the link's configured threshold. The source's own node is
// always in the set (hosts on the source LAN receive at any TTL >= 1).
func Reach(g *Graph, t *Tree, ttl mcast.TTL) *NodeSet {
	set := NewNodeSet(g.NumNodes())
	if ttl < 1 {
		return set
	}
	set.Add(t.Root)
	// DFS down the tree carrying remaining TTL.
	type frame struct {
		node NodeID
		ttl  int32
	}
	stack := []frame{{t.Root, int32(ttl)}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range t.Children(f.node) {
			e, ok := g.EdgeBetween(f.node, c)
			if !ok {
				continue
			}
			rem := f.ttl - 1
			if rem < 1 || rem < int32(e.Threshold) {
				continue
			}
			set.Add(c)
			stack = append(stack, frame{c, rem})
		}
	}
	return set
}

// reachShards is the lock-striping factor of ReachCache. Entries are
// striped by source node, so workers simulating sessions from different
// origins rarely contend on the same lock.
const reachShards = 16

// ReachCache memoises Reach sets and shortest path trees keyed by
// (source, TTL). The allocation simulations look up the same scopes
// repeatedly; a run over the 1864-node Mbone touches only a few thousand
// distinct (source, TTL) pairs.
//
// The cache is safe for concurrent use: the parallel experiment engine
// shares one cache across all workers of a sweep. Locks are sharded by
// source node; lookups take a shard read-lock, and a miss computes the
// tree/set outside any lock before publishing it (a racing duplicate
// computation is possible but harmless — the first published value wins
// and Reach is a pure function, so duplicates are identical). Returned
// *NodeSet and *Tree values are shared and must be treated as read-only.
type ReachCache struct {
	g      *Graph
	shards [reachShards]reachShard
}

type reachShard struct {
	mu    sync.RWMutex
	trees map[NodeID]*Tree
	sets  map[reachKey]*NodeSet
}

type reachKey struct {
	src NodeID
	ttl mcast.TTL
}

// NewReachCache returns an empty cache over g.
func NewReachCache(g *Graph) *ReachCache {
	c := &ReachCache{g: g}
	for i := range c.shards {
		c.shards[i].trees = make(map[NodeID]*Tree)
		c.shards[i].sets = make(map[reachKey]*NodeSet)
	}
	return c
}

func (c *ReachCache) shard(src NodeID) *reachShard {
	return &c.shards[uint32(src)%reachShards]
}

// Tree returns (building if needed) the shortest path tree rooted at src.
func (c *ReachCache) Tree(src NodeID) *Tree {
	sh := c.shard(src)
	sh.mu.RLock()
	t := sh.trees[src]
	sh.mu.RUnlock()
	if t != nil {
		return t
	}
	t = NewSPTree(c.g, src)
	sh.mu.Lock()
	if prev := sh.trees[src]; prev != nil {
		t = prev // another worker got here first; keep its tree canonical
	} else {
		sh.trees[src] = t
	}
	sh.mu.Unlock()
	return t
}

// Reach returns (building if needed) the scope set of (src, ttl).
func (c *ReachCache) Reach(src NodeID, ttl mcast.TTL) *NodeSet {
	k := reachKey{src, ttl}
	sh := c.shard(src)
	sh.mu.RLock()
	s := sh.sets[k]
	sh.mu.RUnlock()
	if s != nil {
		return s
	}
	s = Reach(c.g, c.Tree(src), ttl)
	sh.mu.Lock()
	if prev := sh.sets[k]; prev != nil {
		s = prev
	} else {
		sh.sets[k] = s
	}
	sh.mu.Unlock()
	return s
}

// Visible reports whether an observer node sees announcements for a session
// originated at src with the given scope TTL: announcements are multicast
// with the same scope as the session they describe (§1).
func (c *ReachCache) Visible(observer, src NodeID, ttl mcast.TTL) bool {
	return c.Reach(src, ttl).Contains(observer)
}
