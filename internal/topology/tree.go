package topology

import (
	"container/heap"
	"math"
	"sync"
)

// Tree is a routing tree rooted at Root: either a source-based shortest
// path tree (DVMRP/PIM dense-mode style) or a shared tree rooted at a core
// (CBT/PIM sparse-mode style). It stores, for each node, its parent, its
// hop depth, and its cumulative metric and delay from the root.
type Tree struct {
	Root     NodeID
	parent   []NodeID // -1 for root and unreached nodes
	depth    []int32  // hops from root; -1 if unreached
	metric   []int32  // cumulative DVMRP metric from root
	delay    []float64
	children [][]NodeID
	// binary-lifting ancestor table, built lazily by ensureLCA. Guarded by
	// lcaOnce so trees shared through a concurrent ReachCache stay safe.
	up      [][]NodeID
	lcaOnce sync.Once
}

type pqItem struct {
	node   NodeID
	metric int64
	delay  float64
}

type pq []pqItem

func (q pq) Len() int      { return len(q) }
func (q pq) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q pq) Less(i, j int) bool {
	if q[i].metric != q[j].metric {
		return q[i].metric < q[j].metric
	}
	// Tie-break on delay then node id for determinism across runs.
	if q[i].delay != q[j].delay {
		return q[i].delay < q[j].delay
	}
	return q[i].node < q[j].node
}
func (q *pq) Push(x any) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any {
	old := *q
	it := old[len(old)-1]
	*q = old[:len(old)-1]
	return it
}

// NewSPTree computes the shortest path tree rooted at src using DVMRP
// metrics (ties broken deterministically). Nodes whose best path metric
// reaches InfMetric are treated as unreachable, matching DVMRP's infinity.
func NewSPTree(g *Graph, src NodeID) *Tree {
	n := g.NumNodes()
	t := &Tree{
		Root:   src,
		parent: make([]NodeID, n),
		depth:  make([]int32, n),
		metric: make([]int32, n),
		delay:  make([]float64, n),
	}
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = math.MaxInt64
		t.parent[i] = -1
		t.depth[i] = -1
	}
	dist[src] = 0
	t.depth[src] = 0
	q := pq{{node: src}}
	done := make([]bool, n)
	for q.Len() > 0 {
		it := heap.Pop(&q).(pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, e := range g.Neighbors(u) {
			nd := dist[u] + int64(e.Metric)
			if nd >= InfMetric {
				continue // DVMRP metric infinity
			}
			if nd < dist[e.To] && !done[e.To] {
				dist[e.To] = nd
				t.parent[e.To] = u
				t.depth[e.To] = t.depth[u] + 1
				t.metric[e.To] = int32(nd)
				t.delay[e.To] = t.delay[u] + e.Delay
				heap.Push(&q, pqItem{node: e.To, metric: nd, delay: t.delay[e.To]})
			}
		}
	}
	t.buildChildren()
	return t
}

// NewSharedTree computes a shared tree rooted at the given core node.
// Structurally it is the core's shortest path tree, which matches how CBT
// and sparse-mode PIM build their trees toward a rendezvous point.
func NewSharedTree(g *Graph, core NodeID) *Tree {
	return NewSPTree(g, core)
}

func (t *Tree) buildChildren() {
	t.children = make([][]NodeID, len(t.parent))
	for v, p := range t.parent {
		if p >= 0 {
			t.children[p] = append(t.children[p], NodeID(v))
		}
	}
}

// Reached reports whether v is attached to the tree.
func (t *Tree) Reached(v NodeID) bool { return v == t.Root || t.parent[v] >= 0 }

// Parent returns v's parent, or -1 for the root / unreached nodes.
func (t *Tree) Parent(v NodeID) NodeID { return t.parent[v] }

// Depth returns v's hop count from the root (-1 if unreached).
func (t *Tree) Depth(v NodeID) int32 { return t.depth[v] }

// DelayFromRoot returns the cumulative link delay from the root to v in
// milliseconds (meaningless for unreached nodes).
func (t *Tree) DelayFromRoot(v NodeID) float64 { return t.delay[v] }

// MetricFromRoot returns the cumulative DVMRP metric from the root to v.
func (t *Tree) MetricFromRoot(v NodeID) int32 { return t.metric[v] }

// Children returns v's children. The slice is owned by the tree.
func (t *Tree) Children(v NodeID) []NodeID { return t.children[v] }

// ensureLCA builds the binary lifting table on first use (concurrency-safe).
func (t *Tree) ensureLCA() {
	t.lcaOnce.Do(t.buildLCA)
}

func (t *Tree) buildLCA() {
	n := len(t.parent)
	levels := 1
	for 1<<levels < n {
		levels++
	}
	up := make([][]NodeID, levels+1)
	up[0] = make([]NodeID, n)
	copy(up[0], t.parent)
	up[0][t.Root] = -1
	for k := 1; k <= levels; k++ {
		up[k] = make([]NodeID, n)
		for v := 0; v < n; v++ {
			mid := up[k-1][v]
			if mid < 0 {
				up[k][v] = -1
			} else {
				up[k][v] = up[k-1][mid]
			}
		}
	}
	t.up = up
}

// LCA returns the lowest common ancestor of u and v, which must both be
// reached by the tree.
func (t *Tree) LCA(u, v NodeID) NodeID {
	t.ensureLCA()
	du, dv := t.depth[u], t.depth[v]
	if du < dv {
		u, v = v, u
		du, dv = dv, du
	}
	diff := du - dv
	for k := 0; diff != 0; k++ {
		if diff&1 != 0 {
			u = t.up[k][u]
		}
		diff >>= 1
	}
	if u == v {
		return u
	}
	for k := len(t.up) - 1; k >= 0; k-- {
		if t.up[k][u] != t.up[k][v] {
			u = t.up[k][u]
			v = t.up[k][v]
		}
	}
	return t.parent[u]
}

// TreeDelay returns the delay of the tree path between u and v in
// milliseconds (the traffic path when both are on a shared tree).
func (t *Tree) TreeDelay(u, v NodeID) float64 {
	l := t.LCA(u, v)
	return t.delay[u] + t.delay[v] - 2*t.delay[l]
}

// TreeHops returns the hop count of the tree path between u and v.
func (t *Tree) TreeHops(u, v NodeID) int32 {
	l := t.LCA(u, v)
	return t.depth[u] + t.depth[v] - 2*t.depth[l]
}
