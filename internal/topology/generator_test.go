package topology

import (
	"testing"

	"sessiondir/internal/mcast"
	"sessiondir/internal/stats"
)

func TestGridGeneratorBasics(t *testing.T) {
	rng := stats.NewRNG(1)
	g, err := GenerateGrid(GridConfig{Nodes: 500, RedundantLinks: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 500 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if !g.Connected() {
		t.Fatal("grid graph must be connected")
	}
	// Tree links = n-1; redundant links add roughly n/20 - n/30.
	minLinks, maxLinks := 499, 499+500/20
	if l := g.NumLinks(); l < minLinks || l > maxLinks {
		t.Fatalf("links = %d, want in [%d,%d]", l, minLinks, maxLinks)
	}
	for i := 0; i < g.NumNodes(); i++ {
		for _, e := range g.Neighbors(NodeID(i)) {
			if e.Delay <= 0 {
				t.Fatalf("non-positive delay on link %d-%d", i, e.To)
			}
			if e.Threshold != 1 {
				t.Fatalf("grid link has threshold %d", e.Threshold)
			}
		}
	}
}

func TestGridGeneratorDeterministic(t *testing.T) {
	g1, err := GenerateGrid(GridConfig{Nodes: 200}, stats.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := GenerateGrid(GridConfig{Nodes: 200}, stats.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumLinks() != g2.NumLinks() {
		t.Fatal("same seed produced different graphs")
	}
	for i := range g1.Nodes {
		if g1.Nodes[i].X != g2.Nodes[i].X || g1.Nodes[i].Y != g2.Nodes[i].Y {
			t.Fatalf("node %d coordinates differ", i)
		}
	}
}

func TestGridGeneratorRejectsTiny(t *testing.T) {
	if _, err := GenerateGrid(GridConfig{Nodes: 1}, stats.NewRNG(1)); err == nil {
		t.Fatal("expected error")
	}
}

func TestGridNearestNeighborLinksAreLocal(t *testing.T) {
	// Later nodes should attach over short links (clustering); the mean
	// link distance of the last quarter must be well below that of the
	// first few backbone links.
	rng := stats.NewRNG(5)
	g, err := GenerateGrid(GridConfig{Nodes: 1000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	linkLen := func(i int) float64 {
		e := g.Neighbors(NodeID(i))[0] // first link is the attach link
		return dist(g.Nodes[i], g.Nodes[e.To])
	}
	var early, late stats.Summary
	for i := 1; i <= 20; i++ {
		early.Add(linkLen(i))
	}
	for i := 750; i < 1000; i++ {
		late.Add(linkLen(i))
	}
	if late.Mean() >= early.Mean() {
		t.Fatalf("late attach links (%.2f) not shorter than early backbone links (%.2f)",
			late.Mean(), early.Mean())
	}
}

func mboneForTest(t *testing.T) *Graph {
	t.Helper()
	g, err := GenerateMbone(DefaultMboneConfig(), stats.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMboneSizeAndConnectivity(t *testing.T) {
	g := mboneForTest(t)
	if n := g.NumNodes(); n < 1600 || n > 2100 {
		t.Fatalf("node count %d not near the paper's 1864", n)
	}
	if !g.Connected() {
		t.Fatal("Mbone must be connected")
	}
}

func TestMboneDeterministic(t *testing.T) {
	g1, _ := GenerateMbone(MboneConfig{Nodes: 400}, stats.NewRNG(3))
	g2, _ := GenerateMbone(MboneConfig{Nodes: 400}, stats.NewRNG(3))
	if g1.NumNodes() != g2.NumNodes() || g1.NumLinks() != g2.NumLinks() {
		t.Fatal("same seed produced different Mbones")
	}
}

func TestMboneCountryLabels(t *testing.T) {
	g := mboneForTest(t)
	for _, c := range []string{"US", "UK", "Germany", "Scandinavia", "Japan"} {
		if len(NodesInCountry(g, c)) == 0 {
			t.Fatalf("no nodes labelled %s", c)
		}
	}
	if len(NodesInContinent(g, "Europe")) == 0 {
		t.Fatal("no European nodes")
	}
	// Every node is labelled.
	for i, n := range g.Nodes {
		if n.Country == "" || n.Continent == "" {
			t.Fatalf("node %d unlabelled: %+v", i, n)
		}
	}
}

// TestMboneScopeNesting verifies the paper's §1–2 scope semantics on the
// generated map: TTL-47 traffic from a UK host stays inside the UK, TTL-63
// traffic stays inside Europe, TTL-127 traffic crosses continents.
func TestMboneScopeNesting(t *testing.T) {
	g := mboneForTest(t)
	cache := NewReachCache(g)
	ukSites := siteRouters(g, "UK")
	if len(ukSites) == 0 {
		t.Fatal("no UK site routers")
	}
	src := ukSites[0]

	r47 := cache.Reach(src, 47)
	for _, v := range r47.Members() {
		if g.Nodes[v].Country != "UK" {
			t.Fatalf("TTL47 from UK reached %s node %s", g.Nodes[v].Country, g.Nodes[v].Name)
		}
	}

	r63 := cache.Reach(src, 63)
	reachedOtherEU := false
	for _, v := range r63.Members() {
		if g.Nodes[v].Continent != "Europe" {
			t.Fatalf("TTL63 from UK reached %s node %s", g.Nodes[v].Continent, g.Nodes[v].Name)
		}
		if g.Nodes[v].Country != "UK" {
			reachedOtherEU = true
		}
	}
	if !reachedOtherEU {
		t.Fatal("TTL63 from UK should reach other European countries")
	}

	r127 := cache.Reach(src, 127)
	reachedUS := false
	for _, v := range r127.Members() {
		if g.Nodes[v].Country == "US" {
			reachedUS = true
			break
		}
	}
	if !reachedUS {
		t.Fatal("TTL127 from UK should reach the US")
	}
	// Nesting: each scope is a superset of the smaller one.
	if !(r47.Len() < r63.Len() && r63.Len() < r127.Len()) {
		t.Fatalf("scopes not nested: %d, %d, %d", r47.Len(), r63.Len(), r127.Len())
	}
}

// TestMboneFigure3Asymmetry reproduces the paper's Figure-3 situation: a
// session directory in Scandinavia cannot see a UK-only TTL-47 session, yet
// a Europe-wide TTL-63 session allocated in Scandinavia reaches the UK and
// can clash with it.
func TestMboneFigure3Asymmetry(t *testing.T) {
	g := mboneForTest(t)
	cache := NewReachCache(g)
	uk := siteRouters(g, "UK")
	scand := siteRouters(g, "Scandinavia")
	if len(uk) == 0 || len(scand) == 0 {
		t.Fatal("missing countries")
	}
	ukSrc, scandObs := uk[0], scand[0]

	// Scandinavia does not hear the UK's TTL-47 announcements...
	if cache.Visible(scandObs, ukSrc, 47) {
		t.Fatal("Scandinavia should not see UK TTL-47 sessions")
	}
	// ...but a Scandinavian TTL-63 session's data reaches the UK.
	if !cache.Reach(scandObs, 63).Contains(ukSrc) {
		t.Fatal("Scandinavian TTL-63 sessions should reach the UK")
	}
	// Hence the two scopes intersect although the allocator at scandObs
	// could not see the UK session: the clash the paper describes.
	if !cache.Reach(scandObs, 63).Intersects(cache.Reach(ukSrc, 47)) {
		t.Fatal("expected intersecting scopes")
	}
}

// TestMboneUSTTL47BehavesLike63 checks "In the US, no TTL 48 boundaries
// exist, and so no TTL 47 sessions are used": TTL-47 and TTL-63 traffic
// from a US source reach identical node sets.
func TestMboneUSTTL47BehavesLike63(t *testing.T) {
	g := mboneForTest(t)
	cache := NewReachCache(g)
	us := siteRouters(g, "US")
	if len(us) == 0 {
		t.Fatal("no US routers")
	}
	for _, src := range us[:3] {
		r47 := cache.Reach(src, 47)
		r63 := cache.Reach(src, 63)
		if r47.Len() != r63.Len() {
			t.Fatalf("US TTL47 reach (%d) != TTL63 reach (%d)", r47.Len(), r63.Len())
		}
	}
}

// TestMboneHopDistributionShape verifies the Figure-10 shape constraints:
// hop counts roughly proportional to TTL scope, maxima below the DVMRP
// infinity of 32, site scopes a few hops, intercontinental around 10.
func TestMboneHopDistributionShape(t *testing.T) {
	g := mboneForTest(t)
	// Sample sources for speed; Figure 10 uses all of them.
	rng := stats.NewRNG(7)
	var sources []NodeID
	for i := 0; i < 120; i++ {
		sources = append(sources, NodeID(rng.IntN(g.NumNodes())))
	}
	rows := HopStatsForTTLs(g, []mcast.TTL{15, 47, 63, 127}, sources)
	byTTL := map[mcast.TTL]HopStats{}
	for _, r := range rows {
		byTTL[r.TTL] = r
	}
	if m := byTTL[15].MostFrequentHop; m < 0 || m > 6 {
		t.Fatalf("TTL15 mode hop %d, want small", m)
	}
	if m := byTTL[15].MaxHop; m > 14 {
		t.Fatalf("TTL15 max hop %d too large", m)
	}
	if m := byTTL[127].MostFrequentHop; m < 5 || m > 16 {
		t.Fatalf("TTL127 mode hop %d, want ~10", m)
	}
	if m := byTTL[127].MaxHop; m >= 32 {
		t.Fatalf("TTL127 max hop %d reaches DVMRP infinity", m)
	}
	// Monotone: wider scopes have >= mean hops.
	if !(byTTL[15].MeanHop <= byTTL[63].MeanHop && byTTL[63].MeanHop <= byTTL[127].MeanHop) {
		t.Fatalf("hop means not monotone: %+v", rows)
	}
}

// siteRouters returns routers in a country that belong to sites (leaf
// networks) rather than backbone/hub infrastructure.
func siteRouters(g *Graph, country string) []NodeID {
	var out []NodeID
	for i, n := range g.Nodes {
		if n.Country == country && n.Site != "" {
			out = append(out, NodeID(i))
		}
	}
	return out
}

func TestHopHistogramLine(t *testing.T) {
	g := NewGraph(4)
	g.MustAddLink(0, 1, 1, 1, 1)
	g.MustAddLink(1, 2, 1, 1, 1)
	g.MustAddLink(2, 3, 1, 1, 1)
	h := HopHistogram(g, 255, []NodeID{0})
	// From node 0: hops 0,1,2,3 each once.
	for hop := 0; hop <= 3; hop++ {
		if h.Count(hop) != 1 {
			t.Fatalf("hop %d count = %d; hist %s", hop, h.Count(hop), h.String())
		}
	}
	if Diameter(g, nil) != 3 {
		t.Fatalf("diameter = %d", Diameter(g, nil))
	}
}
