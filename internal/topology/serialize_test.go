package topology

import (
	"bytes"
	"strings"
	"testing"

	"sessiondir/internal/stats"
)

func TestSerializeRoundTripMbone(t *testing.T) {
	g, err := GenerateMbone(MboneConfig{Nodes: 300}, stats.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumLinks() != g.NumLinks() {
		t.Fatalf("size mismatch: %d/%d vs %d/%d",
			got.NumNodes(), got.NumLinks(), g.NumNodes(), g.NumLinks())
	}
	for i := range g.Nodes {
		if g.Nodes[i] != got.Nodes[i] {
			t.Fatalf("node %d mismatch: %+v vs %+v", i, g.Nodes[i], got.Nodes[i])
		}
	}
	// Edge sets identical (order within adjacency may differ only if
	// parallel links existed; the generator creates none).
	for i := 0; i < g.NumNodes(); i++ {
		for _, e := range g.Neighbors(NodeID(i)) {
			ge, ok := got.EdgeBetween(NodeID(i), e.To)
			if !ok || ge != e {
				t.Fatalf("edge %d->%d mismatch: %+v vs %+v", i, e.To, e, ge)
			}
		}
	}
	// Behaviour identical: same reach sets.
	if Reach(g, NewSPTree(g, 0), 63).Len() != Reach(got, NewSPTree(got, 0), 63).Len() {
		t.Fatal("reach differs after round trip")
	}
}

func TestSerializeQuotedFields(t *testing.T) {
	g := NewGraph(2)
	g.Nodes[0] = Node{Name: `weird "name" with spaces`, Country: "São Tomé"}
	g.Nodes[1] = Node{Name: "tab\there"}
	g.MustAddLink(0, 1, 3, 16, 2.5)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Nodes[0] != g.Nodes[0] || got.Nodes[1] != g.Nodes[1] {
		t.Fatalf("quoted fields mangled: %+v", got.Nodes)
	}
	e, ok := got.EdgeBetween(0, 1)
	if !ok || e.Metric != 3 || e.Threshold != 16 || e.Delay != 2.5 {
		t.Fatalf("edge mangled: %+v", e)
	}
}

func TestReadCommentsAndBlanks(t *testing.T) {
	in := `# a comment
topology v1 2

node 0 "a" "" "" "" 0 0
# another comment
node 1 "b" "" "" "" 1 1
link 0 1 1 1 5
`
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumLinks() != 1 {
		t.Fatalf("parsed %d nodes %d links", g.NumNodes(), g.NumLinks())
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"bad header":     "nonsense 3\n",
		"huge count":     "topology v1 99999999999\n",
		"bad node id":    "topology v1 1\nnode 5 \"x\" \"\" \"\" \"\" 0 0\n",
		"short node":     "topology v1 1\nnode 0 \"x\"\n",
		"bad coords":     "topology v1 1\nnode 0 \"x\" \"\" \"\" \"\" zero 0\n",
		"short link":     "topology v1 2\nlink 0 1 1\n",
		"bad link":       "topology v1 2\nlink 0 1 x 1 1\n",
		"self link":      "topology v1 2\nlink 0 0 1 1 1\n",
		"unknown record": "topology v1 1\nfrob 1 2 3\n",
		"bad quote":      "topology v1 1\nnode 0 \"unterminated 0 0 0 0 0\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
