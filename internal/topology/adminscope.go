package topology

import "fmt"

// AdminZone is an administratively scoped region (§1 of the paper): a set
// of routers whose borders are configured to keep admin-scoped groups in
// and out. Unlike TTL scoping, admin scoping is *symmetric* — barring
// failures, two sites inside a zone always hear each other's messages for
// that zone, and no outside packet addressed to the zone's range gets in.
// That symmetry is what makes allocation easy inside admin zones, and its
// absence is what the rest of the paper wrestles with.
type AdminZone struct {
	Name    string
	members *NodeSet
}

// NewAdminZone builds a zone over the given member routers.
func NewAdminZone(name string, g *Graph, members []NodeID) (*AdminZone, error) {
	if name == "" {
		return nil, fmt.Errorf("topology: admin zone needs a name")
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("topology: admin zone %q has no members", name)
	}
	set := NewNodeSet(g.NumNodes())
	for _, m := range members {
		if int(m) < 0 || int(m) >= g.NumNodes() {
			return nil, fmt.Errorf("topology: admin zone %q member %d outside graph", name, m)
		}
		set.Add(m)
	}
	return &AdminZone{Name: name, members: set}, nil
}

// Contains reports zone membership.
func (z *AdminZone) Contains(n NodeID) bool { return z.members.Contains(n) }

// Members returns the zone's reach set: admin-scoped traffic from any
// member reaches exactly the members.
func (z *AdminZone) Members() *NodeSet { return z.members }

// Size returns the member count.
func (z *AdminZone) Size() int { return z.members.Len() }

// ZonesFromCountries derives one administrative zone per labelled country
// of a generated Mbone — the typical late-90s deployment pattern where
// admin boundaries followed organisational ones.
func ZonesFromCountries(g *Graph) ([]*AdminZone, error) {
	byCountry := map[string][]NodeID{}
	var order []string
	for i, n := range g.Nodes {
		if n.Country == "" {
			continue
		}
		if _, seen := byCountry[n.Country]; !seen {
			order = append(order, n.Country)
		}
		byCountry[n.Country] = append(byCountry[n.Country], NodeID(i))
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("topology: graph has no country labels")
	}
	zones := make([]*AdminZone, 0, len(order))
	for _, c := range order {
		z, err := NewAdminZone(c, g, byCountry[c])
		if err != nil {
			return nil, err
		}
		zones = append(zones, z)
	}
	return zones, nil
}

// ZoneOf returns the zone containing n, or nil.
func ZoneOf(zones []*AdminZone, n NodeID) *AdminZone {
	for _, z := range zones {
		if z.Contains(n) {
			return z
		}
	}
	return nil
}
