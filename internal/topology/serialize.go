package topology

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Topology file format (version 1): a line-oriented text format so maps
// can be generated once, inspected with standard tools, and replayed into
// simulations — the workflow the paper had with mcollect/mwatch.
//
//	topology v1 <numNodes>
//	node <id> <name> <continent> <country> <site> <x> <y>
//	link <a> <b> <metric> <threshold> <delayMs>
//
// String fields are Go-quoted; '#' starts a comment line.

const formatHeader = "topology v1"

// Write serialises the graph.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s %d\n", formatHeader, g.NumNodes())
	for i, n := range g.Nodes {
		fmt.Fprintf(bw, "node %d %q %q %q %q %g %g\n",
			i, n.Name, n.Continent, n.Country, n.Site, n.X, n.Y)
	}
	for i := 0; i < g.NumNodes(); i++ {
		for _, e := range g.Neighbors(NodeID(i)) {
			if int(e.To) < i {
				continue // one line per undirected link
			}
			fmt.Fprintf(bw, "link %d %d %d %d %g\n", i, e.To, e.Metric, e.Threshold, e.Delay)
		}
	}
	return bw.Flush()
}

// Read parses a serialised graph.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	next := func() (string, bool) {
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			return line, true
		}
		return "", false
	}
	header, ok := next()
	if !ok {
		return nil, fmt.Errorf("topology: empty input")
	}
	var n int
	if _, err := fmt.Sscanf(header, formatHeader+" %d", &n); err != nil {
		return nil, fmt.Errorf("topology: bad header %q: %w", header, err)
	}
	if n < 0 || n > 10_000_000 {
		return nil, fmt.Errorf("topology: implausible node count %d", n)
	}
	g := NewGraph(n)
	for {
		line, ok := next()
		if !ok {
			break
		}
		fields, err := splitQuoted(line)
		if err != nil {
			return nil, fmt.Errorf("topology: line %d: %w", lineNo, err)
		}
		switch fields[0] {
		case "node":
			if len(fields) != 8 {
				return nil, fmt.Errorf("topology: line %d: node needs 7 fields, got %d", lineNo, len(fields)-1)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id < 0 || id >= n {
				return nil, fmt.Errorf("topology: line %d: bad node id %q", lineNo, fields[1])
			}
			x, errX := strconv.ParseFloat(fields[6], 64)
			y, errY := strconv.ParseFloat(fields[7], 64)
			if errX != nil || errY != nil {
				return nil, fmt.Errorf("topology: line %d: bad coordinates", lineNo)
			}
			g.Nodes[id] = Node{
				Name: fields[2], Continent: fields[3], Country: fields[4], Site: fields[5],
				X: x, Y: y,
			}
		case "link":
			if len(fields) != 6 {
				return nil, fmt.Errorf("topology: line %d: link needs 5 fields, got %d", lineNo, len(fields)-1)
			}
			a, errA := strconv.Atoi(fields[1])
			b, errB := strconv.Atoi(fields[2])
			metric, errM := strconv.ParseInt(fields[3], 10, 32)
			threshold, errT := strconv.ParseUint(fields[4], 10, 8)
			delay, errD := strconv.ParseFloat(fields[5], 64)
			if errA != nil || errB != nil || errM != nil || errT != nil || errD != nil {
				return nil, fmt.Errorf("topology: line %d: malformed link", lineNo)
			}
			if err := g.AddLink(NodeID(a), NodeID(b), int32(metric), uint8(threshold), delay); err != nil {
				return nil, fmt.Errorf("topology: line %d: %w", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("topology: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("topology: read: %w", err)
	}
	return g, nil
}

// splitQuoted splits a line into fields, honouring Go-quoted strings.
func splitQuoted(line string) ([]string, error) {
	var fields []string
	rest := line
	for {
		rest = strings.TrimLeft(rest, " \t")
		if rest == "" {
			break
		}
		if rest[0] == '"' {
			q, err := strconv.QuotedPrefix(rest)
			if err != nil {
				return nil, fmt.Errorf("bad quoted field: %w", err)
			}
			u, err := strconv.Unquote(q)
			if err != nil {
				return nil, fmt.Errorf("bad quoted field: %w", err)
			}
			fields = append(fields, u)
			rest = rest[len(q):]
			continue
		}
		end := strings.IndexAny(rest, " \t")
		if end < 0 {
			fields = append(fields, rest)
			break
		}
		fields = append(fields, rest[:end])
		rest = rest[end:]
	}
	if len(fields) == 0 {
		return nil, fmt.Errorf("empty record")
	}
	return fields, nil
}
