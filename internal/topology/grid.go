package topology

import (
	"fmt"
	"math"

	"sessiondir/internal/stats"
)

// GridConfig parameterises the Doar-style topology generator of §3.
type GridConfig struct {
	// Nodes is the number of routers to place.
	Nodes int
	// GridSide is the side length of the square coordinate grid; 0 picks
	// a side proportional to sqrt(Nodes) so density is scale-free.
	GridSide float64
	// RedundantLinks adds the paper's extra random links to nodes
	// n/30..n/20, providing the redundant backbone paths that
	// differentiate shortest-path from shared trees.
	RedundantLinks bool
	// DelayPerUnit converts grid distance to link delay in milliseconds.
	// 0 picks a default such that the network's delay diameter is a few
	// hundred milliseconds, matching the paper's R = 200 ms framing.
	DelayPerUnit float64
}

// GenerateGrid builds a topology per the paper's §3 recipe:
//
//   - the "space" is a square grid and nodes are allocated coordinates on it;
//   - each new node is connected to its nearest neighbour already placed, so
//     the earliest nodes form long "backbone" links and later nodes cluster
//     (a tree similar to CBT / sparse-mode PIM shared trees);
//   - optionally, nodes with index in [n/30, n/20) are additionally connected
//     to a random pre-existing node, providing redundant backbone links that
//     source-based shortest path trees can exploit.
//
// Link delays are proportional to grid distance (§3: "link delays were
// primarily based on distance between the nodes forming the link"); random
// per-packet queueing jitter is a simulation-time concern, not a property of
// the topology. All links carry threshold 1 (no scope boundaries: the
// request–response experiments do not use scoping) and metric 1.
func GenerateGrid(cfg GridConfig, rng *stats.RNG) (*Graph, error) {
	n := cfg.Nodes
	if n < 2 {
		return nil, fmt.Errorf("topology: grid generator needs >= 2 nodes, got %d", n)
	}
	side := cfg.GridSide
	if side <= 0 {
		side = math.Sqrt(float64(n)) * 10
	}
	delayPerUnit := cfg.DelayPerUnit
	if delayPerUnit <= 0 {
		// Normalise so that the expected corner-to-corner distance is
		// roughly 100 ms one-way, giving RTTs around the paper's 200 ms.
		delayPerUnit = 100 / (side * math.Sqrt2)
	}

	g := NewGraph(n)
	idx := newNNIndex(side, n)
	for i := 0; i < n; i++ {
		x := rng.Float64() * side
		y := rng.Float64() * side
		g.Nodes[i] = Node{Name: fmt.Sprintf("g%d", i), X: x, Y: y}
		if i > 0 {
			nb := idx.nearest(x, y)
			d := dist(g.Nodes[i], g.Nodes[nb])
			// Coincident points yield zero distance; keep delays positive.
			delay := math.Max(d*delayPerUnit, 1e-3)
			g.MustAddLink(NodeID(i), nb, 1, 1, delay)
		}
		idx.insert(x, y, NodeID(i))
	}
	if cfg.RedundantLinks {
		lo, hi := n/30, n/20
		for i := lo; i < hi; i++ {
			// Connect to a random pre-existing node that is not already
			// a neighbour.
			for attempt := 0; attempt < 8; attempt++ {
				j := NodeID(rng.IntN(i))
				if j == NodeID(i) {
					continue
				}
				if _, dup := g.EdgeBetween(NodeID(i), j); dup {
					continue
				}
				d := dist(g.Nodes[i], g.Nodes[j])
				g.MustAddLink(NodeID(i), j, 1, 1, math.Max(d*delayPerUnit, 1e-3))
				break
			}
		}
	}
	return g, nil
}

func dist(a, b Node) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Hypot(dx, dy)
}

// nnIndex is a uniform-cell spatial index supporting nearest-neighbour
// queries in roughly O(1) for uniformly random points; it keeps the
// generator usable at the paper's 51200-node scale.
type nnIndex struct {
	side     float64
	cells    int
	cellSize float64
	buckets  [][]nnPoint
}

type nnPoint struct {
	x, y float64
	id   NodeID
}

func newNNIndex(side float64, expected int) *nnIndex {
	cells := int(math.Sqrt(float64(expected)))
	if cells < 1 {
		cells = 1
	}
	return &nnIndex{
		side:     side,
		cells:    cells,
		cellSize: side / float64(cells),
		buckets:  make([][]nnPoint, cells*cells),
	}
}

func (ix *nnIndex) cellOf(x, y float64) (int, int) {
	cx := int(x / ix.cellSize)
	cy := int(y / ix.cellSize)
	if cx >= ix.cells {
		cx = ix.cells - 1
	}
	if cy >= ix.cells {
		cy = ix.cells - 1
	}
	if cx < 0 {
		cx = 0
	}
	if cy < 0 {
		cy = 0
	}
	return cx, cy
}

func (ix *nnIndex) insert(x, y float64, id NodeID) {
	cx, cy := ix.cellOf(x, y)
	b := cy*ix.cells + cx
	ix.buckets[b] = append(ix.buckets[b], nnPoint{x, y, id})
}

// nearest returns the id of the closest inserted point to (x, y). It
// panics if the index is empty; the generator always inserts node 0 first.
func (ix *nnIndex) nearest(x, y float64) NodeID {
	cx, cy := ix.cellOf(x, y)
	best := NodeID(-1)
	bestD := math.MaxFloat64
	foundRing := -1
	for ring := 0; ring < 2*ix.cells; ring++ {
		for dy := -ring; dy <= ring; dy++ {
			for dx := -ring; dx <= ring; dx++ {
				// Only the perimeter of the ring is new.
				if ring > 0 && abs(dx) != ring && abs(dy) != ring {
					continue
				}
				nx, ny := cx+dx, cy+dy
				if nx < 0 || ny < 0 || nx >= ix.cells || ny >= ix.cells {
					continue
				}
				for _, p := range ix.buckets[ny*ix.cells+nx] {
					d := math.Hypot(p.x-x, p.y-y)
					if d < bestD || (d == bestD && best >= 0 && p.id < best) {
						bestD, best = d, p.id
					}
				}
			}
		}
		if best >= 0 && foundRing < 0 {
			foundRing = ring
		}
		// A hit in ring r guarantees the true nearest is within ring r+1
		// (one extra ring covers diagonal cell geometry).
		if foundRing >= 0 && ring > foundRing {
			break
		}
	}
	if best < 0 {
		panic("topology: nearest on empty index")
	}
	return best
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
