package topology

import (
	"testing"

	"sessiondir/internal/mcast"
	"sessiondir/internal/stats"
)

// ipr3Partition mirrors the IPR 3-band mapping (separators 15 and 64).
func ipr3Partition(t mcast.TTL) int {
	switch {
	case t < 15:
		return 0
	case t < 64:
		return 1
	default:
		return 2
	}
}

// ipr7Partition mirrors IPR 7-band (separators 2, 16, 32, 48, 64, 128).
func ipr7Partition(t mcast.TTL) int {
	b := 0
	for _, s := range []mcast.TTL{2, 16, 32, 48, 64, 128} {
		if t >= s {
			b++
		}
	}
	return b
}

// TestAuditFindsFigure3Hazard: on the Mbone, TTL 47 and TTL 63 share an
// IPR-3 band, and a Scandinavian TTL-63 allocator cannot see UK TTL-47
// sessions — the audit must surface exactly that class of hazard.
func TestAuditFindsFigure3Hazard(t *testing.T) {
	g, err := GenerateMbone(MboneConfig{Nodes: 400}, stats.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	// Sample sites: a few from each European country plus the US.
	var sites []NodeID
	for _, c := range []string{"UK", "Scandinavia", "Germany", "US"} {
		nodes := NodesInCountry(g, c)
		for i := 0; i < 3 && i < len(nodes); i++ {
			sites = append(sites, nodes[i])
		}
	}
	hazards := AuditScopes(g, AuditConfig{
		TTLs:        []mcast.TTL{47, 63},
		PartitionOf: ipr3Partition,
		Sites:       sites,
	})
	if len(hazards) == 0 {
		t.Fatal("IPR-3 partitioning on the Mbone must show Figure-3 hazards")
	}
	found47 := false
	for _, h := range hazards {
		if h.AllocTTL != 63 || h.HiddenTTL != 47 {
			t.Fatalf("unexpected hazard pair: %v", h)
		}
		if g.Nodes[h.HiddenSite].Continent != "Europe" {
			t.Fatalf("hidden TTL-47 site outside Europe: %v", h)
		}
		found47 = true
		if h.String() == "" {
			t.Fatal("empty String")
		}
	}
	if !found47 {
		t.Fatal("no 47-vs-63 hazard found")
	}
}

// TestAuditPerfectPartitioningIsClean: with IPR-7 every workload TTL has
// its own band, so no same-partition hazard can exist.
func TestAuditPerfectPartitioningIsClean(t *testing.T) {
	g, err := GenerateMbone(MboneConfig{Nodes: 400}, stats.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(9)
	var sites []NodeID
	for i := 0; i < 25; i++ {
		sites = append(sites, NodeID(rng.IntN(g.NumNodes())))
	}
	hazards := AuditScopes(g, AuditConfig{
		TTLs:        []mcast.TTL{1, 15, 31, 47, 63, 127, 191},
		PartitionOf: ipr7Partition,
		Sites:       sites,
	})
	if len(hazards) != 0 {
		t.Fatalf("perfect partitioning reported hazards: %v", hazards[0])
	}
}

func TestAuditMaxHazardsCap(t *testing.T) {
	g, err := GenerateMbone(MboneConfig{Nodes: 400}, stats.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	hazards := AuditScopes(g, AuditConfig{
		TTLs:        []mcast.TTL{47, 63},
		PartitionOf: func(mcast.TTL) int { return 0 }, // everything shares one partition
		Sites:       nil,                              // all nodes — would explode without the cap
		MaxHazards:  5,
	})
	if len(hazards) != 5 {
		t.Fatalf("cap not applied: %d", len(hazards))
	}
}

func TestAuditRequiresPartitionFunc(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AuditScopes(NewGraph(2), AuditConfig{TTLs: []mcast.TTL{1}})
}
