package topology

import (
	"fmt"

	"sessiondir/internal/stats"
)

// MboneConfig parameterises the synthetic Mbone generator. The generator
// stands in for the 1998 mcollect/mwatch map the paper used (see DESIGN.md
// §2): it reproduces the documented *structure* — nested TTL scope
// boundaries with the European TTL-48 inconsistency of Figure 3, DVMRP hop
// metrics, and Figure-10-shaped hop-count distributions — rather than the
// exact router inventory, which was never published.
type MboneConfig struct {
	// Nodes is the approximate total router count; the generator stops
	// adding sites once it reaches this. The paper's map had 1864 nodes.
	Nodes int
}

// DefaultMboneConfig matches the paper's 1864-router connected map.
func DefaultMboneConfig() MboneConfig { return MboneConfig{Nodes: 1864} }

// Threshold conventions used on the late-1990s Mbone (paper §1–2):
const (
	thresholdNone    = 1  // ordinary link, no scope boundary
	thresholdSite    = 16 // site boundary: TTL 15 traffic stays inside
	thresholdRegion  = 32 // regional boundary: TTL 31 stays inside
	thresholdCountry = 48 // European national boundary: TTL 47 stays inside
	thresholdBorder  = 64 // country borders elsewhere + continental borders
)

type countrySpec struct {
	name      string
	continent string
	weight    float64 // share of total nodes
	euBorder  bool    // inside the European TTL-48 boundary regime
}

// worldSpec reflects the paper's description: within Europe country
// boundaries are at TTL 48; boundaries between most other countries and
// into/out of Europe are at TTL 64; the US has no TTL 48 boundaries.
var worldSpec = []countrySpec{
	{"US", "NorthAmerica", 0.34, false},
	{"Canada", "NorthAmerica", 0.06, false},
	{"UK", "Europe", 0.10, true},
	{"Germany", "Europe", 0.08, true},
	{"Netherlands", "Europe", 0.05, true},
	{"Scandinavia", "Europe", 0.05, true},
	{"France", "Europe", 0.05, true},
	{"Italy", "Europe", 0.03, true},
	{"Japan", "AsiaPacific", 0.08, false},
	{"Australia", "AsiaPacific", 0.05, false},
	{"Korea", "AsiaPacific", 0.03, false},
	{"RestOfWorld", "Other", 0.08, false},
}

// GenerateMbone builds the synthetic Mbone. The resulting graph is
// connected and labelled: every node carries continent/country/site names
// so tests can assert scope behaviour (e.g. a TTL-47 packet from a UK site
// never leaves the UK, while a TTL-63 packet from Scandinavia reaches it —
// the Figure-3 asymmetry).
//
// Structure per country:
//
//	backbone routers (chain + chords)      threshold 1 links
//	  └── regional hubs                    threshold 32 uplinks
//	        └── sites (1..12 routers)      threshold 16 uplinks,
//	                                       threshold 1 internal links
//
// European countries interconnect through gateway routers with TTL-48
// links; all other country and continental borders use TTL-64 links.
func GenerateMbone(cfg MboneConfig, rng *stats.RNG) (*Graph, error) {
	if cfg.Nodes < 100 {
		return nil, fmt.Errorf("topology: Mbone generator needs >= 100 nodes, got %d", cfg.Nodes)
	}

	b := &mboneBuilder{
		g:      NewGraph(0),
		rng:    rng,
		budget: cfg.Nodes,
	}

	gateways := make(map[string]NodeID)     // country -> gateway backbone router
	continents := make(map[string][]string) // continent -> countries in order
	var continentOrder []string             // worldSpec (first-seen) order, for deterministic iteration
	for _, c := range worldSpec {
		target := int(float64(cfg.Nodes) * c.weight)
		if target < 6 {
			target = 6
		}
		gw := b.buildCountry(c, target)
		gateways[c.name] = gw
		if _, seen := continents[c.continent]; !seen {
			continentOrder = append(continentOrder, c.continent)
		}
		continents[c.continent] = append(continents[c.continent], c.name)
	}

	// Intra-European borders: TTL 48, forming a ring plus chords so intra-EU
	// paths are short.
	var eu []string
	for _, c := range worldSpec {
		if c.euBorder {
			eu = append(eu, c.name)
		}
	}
	for i := range eu {
		a, bb := gateways[eu[i]], gateways[eu[(i+1)%len(eu)]]
		b.link(a, bb, 1, thresholdCountry, b.ms(8, 25))
	}
	// One chord across the EU ring.
	if len(eu) >= 4 {
		b.link(gateways[eu[0]], gateways[eu[len(eu)/2]], 1, thresholdCountry, b.ms(8, 25))
	}

	// Non-European countries within a continent: TTL-64 borders in a chain.
	// Iteration follows worldSpec order: ranging over the continents map
	// here would interleave the builder's RNG draws (link delays) in a
	// different order each run and change the generated topology.
	for _, cname := range continentOrder {
		countries := continents[cname]
		var nonEU []string
		for _, name := range countries {
			if !specOf(name).euBorder {
				nonEU = append(nonEU, name)
			}
		}
		for i := 0; i+1 < len(nonEU); i++ {
			b.link(gateways[nonEU[i]], gateways[nonEU[i+1]], 1, thresholdBorder, b.ms(10, 30))
		}
	}

	// Intercontinental trunks: TTL 64. The US is the historical hub.
	trunks := [][2]string{
		{"US", "UK"},               // transatlantic
		{"US", "Japan"},            // transpacific
		{"US", "Australia"},        // transpacific south
		{"US", "RestOfWorld"},      // everything else homed via the US
		{"Germany", "RestOfWorld"}, // secondary European trunk
	}
	for _, t := range trunks {
		b.link(gateways[t[0]], gateways[t[1]], 2, thresholdBorder, b.ms(60, 120))
	}

	if !b.g.Connected() {
		return nil, fmt.Errorf("topology: generated Mbone is not connected (bug)")
	}
	return b.g, nil
}

func specOf(name string) countrySpec {
	for _, c := range worldSpec {
		if c.name == name {
			return c
		}
	}
	panic("topology: unknown country " + name)
}

type mboneBuilder struct {
	g      *Graph
	rng    *stats.RNG
	budget int
}

func (b *mboneBuilder) addNode(n Node) NodeID {
	b.g.Nodes = append(b.g.Nodes, n)
	b.g.adj = append(b.g.adj, nil)
	return NodeID(len(b.g.Nodes) - 1)
}

func (b *mboneBuilder) link(x, y NodeID, metric int32, threshold uint8, delay float64) {
	b.g.MustAddLink(x, y, metric, threshold, delay)
}

// ms returns a uniform delay in [lo, hi) milliseconds.
func (b *mboneBuilder) ms(lo, hi float64) float64 {
	return lo + b.rng.Float64()*(hi-lo)
}

// buildCountry creates one country's backbone, hubs and sites, spending
// roughly target nodes, and returns the country's gateway router.
func (b *mboneBuilder) buildCountry(spec countrySpec, target int) NodeID {
	// Backbone: one router per ~45 country nodes, min 2.
	nBackbone := target / 45
	if nBackbone < 2 {
		nBackbone = 2
	}
	backbone := make([]NodeID, nBackbone)
	for i := range backbone {
		backbone[i] = b.addNode(Node{
			Name:      fmt.Sprintf("%s-bb%d", spec.name, i),
			Continent: spec.continent,
			Country:   spec.name,
		})
		if i > 0 {
			b.link(backbone[i], backbone[i-1], 1, thresholdNone, b.ms(4, 14))
		}
	}
	// A chord to keep backbone hop counts modest in big countries.
	if nBackbone >= 6 {
		b.link(backbone[0], backbone[nBackbone/2], 1, thresholdNone, b.ms(4, 14))
	}

	spent := nBackbone
	hubs := make([]NodeID, 0, 8)
	// Regional hubs: each serves ~4 sites.
	for spent < target {
		hub := b.addNode(Node{
			Name:      fmt.Sprintf("%s-hub%d", spec.name, len(hubs)),
			Continent: spec.continent,
			Country:   spec.name,
		})
		hubs = append(hubs, hub)
		spent++
		bb := backbone[b.rng.IntN(nBackbone)]
		b.link(hub, bb, 1, thresholdRegion, b.ms(2, 8))

		sitesForHub := 3 + b.rng.IntN(3)
		for s := 0; s < sitesForHub && spent < target; s++ {
			spent += b.buildSite(spec, hub, len(hubs)-1, s, target-spent)
		}
	}
	return backbone[0]
}

// buildSite adds one site subtree under hub and returns the node count
// spent. Site sizes follow a long-tailed distribution: mostly 1–4 routers,
// occasionally up to 12 (large campuses), giving TTL-15 scopes hop-count
// tails near the paper's Figure-10 maximum of ~10.
func (b *mboneBuilder) buildSite(spec countrySpec, hub NodeID, hubIdx, siteIdx, maxSpend int) int {
	size := 1 + b.rng.IntN(4)
	if b.rng.Float64() < 0.08 {
		size = 5 + b.rng.IntN(8) // occasional large campus
	}
	if size > maxSpend {
		size = maxSpend
	}
	if size <= 0 {
		return 0
	}
	siteName := fmt.Sprintf("%s-h%d-s%d", spec.name, hubIdx, siteIdx)
	routers := make([]NodeID, size)
	for i := 0; i < size; i++ {
		routers[i] = b.addNode(Node{
			Name:      fmt.Sprintf("%s-r%d", siteName, i),
			Continent: spec.continent,
			Country:   spec.name,
			Site:      siteName,
		})
		if i == 0 {
			// Site border router: TTL-16 boundary toward the hub.
			b.link(routers[0], hub, 1, thresholdSite, b.ms(1, 4))
		} else {
			// Chain with occasional branching: long thin campuses.
			parent := routers[i-1]
			if i >= 2 && b.rng.Float64() < 0.3 {
				parent = routers[b.rng.IntN(i)]
			}
			b.link(routers[i], parent, 1, thresholdNone, b.ms(0.5, 2))
		}
	}
	return size
}

// NodesInCountry returns the ids of all routers labelled with country.
func NodesInCountry(g *Graph, country string) []NodeID {
	var out []NodeID
	for i, n := range g.Nodes {
		if n.Country == country {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// NodesInContinent returns the ids of all routers labelled with continent.
func NodesInContinent(g *Graph, continent string) []NodeID {
	var out []NodeID
	for i, n := range g.Nodes {
		if n.Continent == continent {
			out = append(out, NodeID(i))
		}
	}
	return out
}
