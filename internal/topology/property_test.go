package topology

import (
	"bytes"
	"testing"
	"testing/quick"

	"sessiondir/internal/mcast"
	"sessiondir/internal/stats"
)

// Property tests over randomly generated topologies: the invariants the
// whole analysis rests on.

func randomGraph(seed uint64, n int) *Graph {
	rng := stats.NewRNG(seed)
	if n < 2 {
		n = 2
	}
	g := NewGraph(n)
	// Random spanning tree plus extra edges, random thresholds/metrics.
	for i := 1; i < n; i++ {
		parent := NodeID(rng.IntN(i))
		g.MustAddLink(NodeID(i), parent, int32(1+rng.IntN(3)), uint8(1+rng.IntN(64)), 1+rng.Float64()*10)
	}
	extra := rng.IntN(n / 2)
	for e := 0; e < extra; e++ {
		a, b := NodeID(rng.IntN(n)), NodeID(rng.IntN(n))
		if a == b {
			continue
		}
		if _, dup := g.EdgeBetween(a, b); dup {
			continue
		}
		g.MustAddLink(a, b, int32(1+rng.IntN(3)), uint8(1+rng.IntN(64)), 1+rng.Float64()*10)
	}
	return g
}

// TestReachMonotoneInTTL: raising the TTL never shrinks the scope.
func TestReachMonotoneInTTL(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8, src uint8, ttlRaw uint8) bool {
		n := int(nRaw)%60 + 2
		g := randomGraph(seed, n)
		s := NodeID(int(src) % n)
		tree := NewSPTree(g, s)
		ttl := mcast.TTL(ttlRaw % 255) // 254 max: ttl+1 must not wrap
		lo := Reach(g, tree, ttl)
		hi := Reach(g, tree, ttl+1)
		for _, v := range lo.Members() {
			if !hi.Contains(v) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Fatal(err)
	}
}

// TestReachContainsSourceAndRespectsDepth: the source always receives its
// own traffic, and nothing beyond hop distance ttl is reached.
func TestReachContainsSourceAndRespectsDepth(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8, src uint8, ttlRaw uint8) bool {
		n := int(nRaw)%60 + 2
		g := randomGraph(seed, n)
		s := NodeID(int(src) % n)
		tree := NewSPTree(g, s)
		ttl := mcast.TTL(ttlRaw%40 + 1)
		r := Reach(g, tree, ttl)
		if !r.Contains(s) {
			return false
		}
		for _, v := range r.Members() {
			if tree.Depth(v) > int32(ttl)-0 { // a packet crossing k hops needs ttl > k...
				// precisely: remaining after k hops = ttl - k must be >= 1
				if int32(ttl)-tree.Depth(v) < 0 {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Fatal(err)
	}
}

// TestLCADistanceMatchesBFS: tree distances computed via LCA equal
// distances walked naively through parents.
func TestLCADistanceMatchesBFS(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw, uRaw, vRaw uint8) bool {
		n := int(nRaw)%80 + 2
		g := randomGraph(seed, n)
		tree := NewSPTree(g, 0)
		u := NodeID(int(uRaw) % n)
		v := NodeID(int(vRaw) % n)
		if !tree.Reached(u) || !tree.Reached(v) {
			return true // disconnected under DVMRP infinity: skip
		}
		// Naive: climb both to the root collecting paths.
		anc := map[NodeID]int32{}
		for x, d := u, int32(0); ; d++ {
			anc[x] = d
			if x == tree.Root {
				break
			}
			x = tree.Parent(x)
		}
		var hops int32
		for x, d := v, int32(0); ; d++ {
			if du, ok := anc[x]; ok {
				hops = du + d
				break
			}
			x = tree.Parent(x)
		}
		return tree.TreeHops(u, v) == hops
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSerializeRoundTripProperty: Write∘Read is the identity on random
// graphs.
func TestSerializeRoundTripProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%40 + 2
		g := randomGraph(seed, n)
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.NumNodes() != g.NumNodes() || got.NumLinks() != g.NumLinks() {
			return false
		}
		for i := 0; i < g.NumNodes(); i++ {
			for _, e := range g.Neighbors(NodeID(i)) {
				ge, ok := got.EdgeBetween(NodeID(i), e.To)
				if !ok || ge != e {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}
