package topology

import (
	"sync"
	"testing"

	"sessiondir/internal/mcast"
	"sessiondir/internal/stats"
)

// TestNodeSetIntersectsMismatchedUniverses pins the documented truncation
// behaviour when two sets come from different node universes: comparison
// covers only the common word prefix, so members beyond the smaller
// universe can never intersect. Cross-graph comparisons are meaningless and
// unsupported; this test exists so any future change to that contract is a
// conscious one.
func TestNodeSetIntersectsMismatchedUniverses(t *testing.T) {
	small := NewNodeSet(10)  // 1 word
	large := NewNodeSet(200) // 4 words

	// Overlap within the common prefix is seen from both directions.
	small.Add(5)
	large.Add(5)
	if !small.Intersects(large) || !large.Intersects(small) {
		t.Fatal("common-prefix overlap not detected")
	}

	// Overlap only beyond the small universe is invisible: truncated.
	small2 := NewNodeSet(10)
	large2 := NewNodeSet(200)
	large2.Add(150)
	if small2.Intersects(large2) || large2.Intersects(small2) {
		t.Fatal("empty small set cannot intersect anything")
	}
	// Same member id in both, but 150 is unrepresentable in the small
	// universe — there is no "node 150" in a 10-node graph, so adding it
	// would panic; the truncation means large2's member 150 never matches.
	small2.Add(9)
	if small2.Intersects(large2) {
		t.Fatal("truncation must hide members beyond the common prefix")
	}

	// Symmetry: a first-word member intersects regardless of which set is
	// the receiver, even with unequal word counts.
	large2.Add(9)
	if !small2.Intersects(large2) || !large2.Intersects(small2) {
		t.Fatal("intersection in common prefix must be symmetric")
	}
}

// TestReachCacheConcurrent exercises the sharded cache from many
// goroutines over overlapping (src, ttl) keys. Run under -race (the
// Makefile's race target does) this is the regression test for the
// parallel experiment engine sharing one cache across workers.
func TestReachCacheConcurrent(t *testing.T) {
	g, err := GenerateMbone(MboneConfig{Nodes: 200}, stats.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	cache := NewReachCache(g)
	ttls := []mcast.TTL{15, 47, 63, 127, 191}

	// Serial reference answers.
	ref := make(map[reachKey]int)
	refCache := NewReachCache(g)
	for src := 0; src < 50; src++ {
		for _, ttl := range ttls {
			ref[reachKey{NodeID(src), ttl}] = refCache.Reach(NodeID(src), ttl).Len()
		}
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker walks the key space in a different order so
			// lookups and inserts interleave.
			for i := 0; i < 50*len(ttls); i++ {
				idx := (i*7 + w*13) % (50 * len(ttls))
				src := NodeID(idx / len(ttls))
				ttl := ttls[idx%len(ttls)]
				set := cache.Reach(src, ttl)
				if !set.Contains(src) {
					errs <- "source missing from its own reach set"
					return
				}
				if got := set.Len(); got != ref[reachKey{src, ttl}] {
					errs <- "concurrent reach set differs from serial reference"
					return
				}
				// Shared trees must also be stable under concurrent access.
				if tr := cache.Tree(src); tr.Root != src {
					errs <- "tree root mismatch"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// TestReachCacheConcurrentLCA pins that lazily-built LCA tables on shared
// trees are goroutine-safe (sync.Once), since cached trees escape to the
// request–response simulations too.
func TestReachCacheConcurrentLCA(t *testing.T) {
	g, err := GenerateMbone(MboneConfig{Nodes: 150}, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	cache := NewReachCache(g)
	tree := cache.Tree(0)
	var wg sync.WaitGroup
	results := make([]NodeID, 8)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[w] = tree.LCA(NodeID(10), NodeID(120))
		}()
	}
	wg.Wait()
	for _, r := range results[1:] {
		if r != results[0] {
			t.Fatalf("concurrent LCA answers diverge: %v", results)
		}
	}
}
