package topology

import (
	"testing"

	"sessiondir/internal/mcast"
)

// lineGraph builds 0-1-2-...-(n-1) with the given thresholds per link
// (thresholds[i] guards the link between i and i+1), metric 1, delay 1ms.
func lineGraph(t *testing.T, n int, thresholds []uint8) *Graph {
	t.Helper()
	g := NewGraph(n)
	for i := 0; i+1 < n; i++ {
		th := uint8(1)
		if thresholds != nil {
			th = thresholds[i]
		}
		if err := g.AddLink(NodeID(i), NodeID(i+1), 1, th, 1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestAddLinkValidation(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddLink(0, 0, 1, 1, 1); err == nil {
		t.Fatal("self-link accepted")
	}
	if err := g.AddLink(0, 5, 1, 1, 1); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if err := g.AddLink(0, 1, 0, 1, 1); err == nil {
		t.Fatal("zero metric accepted")
	}
	if err := g.AddLink(0, 1, 1, 0, 1); err == nil {
		t.Fatal("zero threshold accepted")
	}
	if err := g.AddLink(0, 1, 1, 1, -2); err == nil {
		t.Fatal("negative delay accepted")
	}
	if err := g.AddLink(0, 1, 1, 1, 1); err != nil {
		t.Fatal(err)
	}
	if g.NumLinks() != 1 {
		t.Fatalf("links = %d", g.NumLinks())
	}
	if e, ok := g.EdgeBetween(1, 0); !ok || e.To != 0 {
		t.Fatal("reverse edge missing")
	}
}

func TestConnected(t *testing.T) {
	g := lineGraph(t, 4, nil)
	if !g.Connected() {
		t.Fatal("line should be connected")
	}
	g2 := NewGraph(4)
	g2.MustAddLink(0, 1, 1, 1, 1)
	g2.MustAddLink(2, 3, 1, 1, 1)
	if g2.Connected() {
		t.Fatal("two components reported connected")
	}
	comp := g2.LargestComponent()
	if len(comp) != 2 {
		t.Fatalf("largest component size %d", len(comp))
	}
	if (&Graph{}).Connected() {
		t.Fatal("empty graph reported connected")
	}
}

func TestSPTreeLine(t *testing.T) {
	g := lineGraph(t, 5, nil)
	tr := NewSPTree(g, 0)
	for v := 1; v < 5; v++ {
		if tr.Parent(NodeID(v)) != NodeID(v-1) {
			t.Fatalf("parent of %d = %d", v, tr.Parent(NodeID(v)))
		}
		if tr.Depth(NodeID(v)) != int32(v) {
			t.Fatalf("depth of %d = %d", v, tr.Depth(NodeID(v)))
		}
		if tr.DelayFromRoot(NodeID(v)) != float64(v) {
			t.Fatalf("delay of %d = %v", v, tr.DelayFromRoot(NodeID(v)))
		}
	}
}

func TestSPTreePrefersLowMetric(t *testing.T) {
	// 0-1 metric 5; 0-2 metric 1, 2-1 metric 1: best path to 1 via 2.
	g := NewGraph(3)
	g.MustAddLink(0, 1, 5, 1, 1)
	g.MustAddLink(0, 2, 1, 1, 1)
	g.MustAddLink(2, 1, 1, 1, 1)
	tr := NewSPTree(g, 0)
	if tr.Parent(1) != 2 {
		t.Fatalf("parent of 1 = %d, want 2", tr.Parent(1))
	}
	if tr.MetricFromRoot(1) != 2 {
		t.Fatalf("metric = %d", tr.MetricFromRoot(1))
	}
}

func TestDVMRPInfinityUnreachable(t *testing.T) {
	// A path whose total metric reaches 32 is unreachable.
	g := NewGraph(3)
	g.MustAddLink(0, 1, 31, 1, 1)
	g.MustAddLink(1, 2, 1, 1, 1)
	tr := NewSPTree(g, 0)
	if !tr.Reached(1) {
		t.Fatal("metric-31 node should be reached")
	}
	if tr.Reached(2) {
		t.Fatal("metric-32 node should be DVMRP-unreachable")
	}
}

func TestLCAAndTreeDistance(t *testing.T) {
	//      0
	//     / \
	//    1   2
	//   / \    \
	//  3   4    5
	g := NewGraph(6)
	g.MustAddLink(0, 1, 1, 1, 10)
	g.MustAddLink(0, 2, 1, 1, 20)
	g.MustAddLink(1, 3, 1, 1, 1)
	g.MustAddLink(1, 4, 1, 1, 2)
	g.MustAddLink(2, 5, 1, 1, 3)
	tr := NewSPTree(g, 0)
	cases := []struct {
		u, v, lca NodeID
		delay     float64
		hops      int32
	}{
		{3, 4, 1, 3, 2},
		{3, 5, 0, 34, 4},
		{1, 4, 1, 2, 1},
		{0, 5, 0, 23, 2},
		{4, 4, 4, 0, 0},
	}
	for _, c := range cases {
		if got := tr.LCA(c.u, c.v); got != c.lca {
			t.Errorf("LCA(%d,%d) = %d want %d", c.u, c.v, got, c.lca)
		}
		if got := tr.TreeDelay(c.u, c.v); got != c.delay {
			t.Errorf("TreeDelay(%d,%d) = %v want %v", c.u, c.v, got, c.delay)
		}
		if got := tr.TreeHops(c.u, c.v); got != c.hops {
			t.Errorf("TreeHops(%d,%d) = %d want %d", c.u, c.v, got, c.hops)
		}
	}
}

func TestReachTTLDecrement(t *testing.T) {
	g := lineGraph(t, 5, nil)
	tr := NewSPTree(g, 0)
	// TTL 1: only the source LAN.
	r := Reach(g, tr, 1)
	if r.Len() != 1 || !r.Contains(0) {
		t.Fatalf("ttl1 reach = %v", r.Members())
	}
	// TTL 3 crosses two routers: nodes 0,1,2.
	r = Reach(g, tr, 3)
	if r.Len() != 3 || !r.Contains(2) || r.Contains(3) {
		t.Fatalf("ttl3 reach = %v", r.Members())
	}
	// TTL 0 reaches nothing.
	if Reach(g, tr, 0).Len() != 0 {
		t.Fatal("ttl0 should reach nothing")
	}
	// Huge TTL reaches everything.
	if Reach(g, tr, 255).Len() != 5 {
		t.Fatal("ttl255 should reach all")
	}
}

func TestReachThresholdBlocks(t *testing.T) {
	// 0 -[th1]- 1 -[th16]- 2 -[th1]- 3
	g := lineGraph(t, 4, []uint8{1, 16, 1})
	tr := NewSPTree(g, 0)
	// TTL 15: decremented to 14 at the threshold-16 link → blocked.
	r := Reach(g, tr, 15)
	if !r.Contains(1) || r.Contains(2) {
		t.Fatalf("ttl15 reach = %v", r.Members())
	}
	// TTL 17: at the 1→2 link (second hop) the decremented TTL is 15,
	// below threshold 16 → still blocked.
	r = Reach(g, tr, 17)
	if r.Contains(2) {
		t.Fatalf("ttl17 reach = %v", r.Members())
	}
	// TTL 18: decremented TTL at the boundary is 16 ≥ 16 → crosses, and
	// continues to node 3.
	r = Reach(g, tr, 18)
	if !r.Contains(3) {
		t.Fatalf("ttl18 reach = %v", r.Members())
	}
	// From node 1 the boundary is the first hop: TTL 17 suffices.
	tr1 := NewSPTree(g, 1)
	r = Reach(g, tr1, 17)
	if !r.Contains(2) {
		t.Fatalf("ttl17 from node1 should cross the threshold-16 link: %v", r.Members())
	}
}

func TestReachAsymmetryAcrossThreshold(t *testing.T) {
	// The Figure-9 situation: a threshold boundary not equidistant from A
	// and B. A -1- X -[th10]- B: A at distance 2 from B.
	g := NewGraph(3)
	g.MustAddLink(0, 1, 1, 1, 1)  // A - X
	g.MustAddLink(1, 2, 1, 10, 1) // X -[10]- B
	a, b := NodeID(0), NodeID(2)
	// A sends TTL 12: at the boundary (second hop) remaining is 10 ≥ 10 →
	// crosses to B.
	if !Reach(g, NewSPTree(g, a), 12).Contains(b) {
		t.Fatal("A's TTL-12 should reach B")
	}
	// Now make the boundary *asymmetric*: A farther from the boundary.
	g2 := NewGraph(4)
	g2.MustAddLink(0, 1, 1, 1, 1)  // A - Y
	g2.MustAddLink(1, 2, 1, 1, 1)  // Y - X
	g2.MustAddLink(2, 3, 1, 10, 1) // X -[10]- B
	a2, b2 := NodeID(0), NodeID(3)
	// B with TTL 11: crosses boundary (10 ≥ 10), then 9, 8 → reaches A.
	if !Reach(g2, NewSPTree(g2, b2), 11).Contains(a2) {
		t.Fatal("B's TTL-11 should reach A")
	}
	// A with TTL 11: at the boundary link remaining is 11-3 = 8 < 10 → no.
	if Reach(g2, NewSPTree(g2, a2), 11).Contains(b2) {
		t.Fatal("A's TTL-11 should NOT reach B: threshold asymmetry")
	}
}

func TestNodeSet(t *testing.T) {
	s := NewNodeSet(130)
	s.Add(0)
	s.Add(64)
	s.Add(129)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Contains(64) || s.Contains(63) {
		t.Fatal("membership wrong")
	}
	members := s.Members()
	want := []NodeID{0, 64, 129}
	for i := range want {
		if members[i] != want[i] {
			t.Fatalf("Members = %v", members)
		}
	}
	t2 := NewNodeSet(130)
	t2.Add(63)
	if s.Intersects(t2) {
		t.Fatal("disjoint sets intersect")
	}
	t2.Add(64)
	if !s.Intersects(t2) {
		t.Fatal("overlapping sets don't intersect")
	}
}

func TestReachCacheConsistency(t *testing.T) {
	g := lineGraph(t, 6, []uint8{1, 16, 1, 1, 1})
	c := NewReachCache(g)
	r1 := c.Reach(0, mcast.TTL(15))
	r2 := c.Reach(0, mcast.TTL(15))
	if r1 != r2 {
		t.Fatal("cache miss on repeat lookup")
	}
	direct := Reach(g, NewSPTree(g, 0), 15)
	if r1.Len() != direct.Len() {
		t.Fatal("cached result differs from direct computation")
	}
	if !c.Visible(1, 0, 15) {
		t.Fatal("node1 should see node0's TTL15 announcements")
	}
	if c.Visible(3, 0, 15) {
		t.Fatal("node3 should not see node0's TTL15 announcements")
	}
}

func TestMaxThresholdOnPath(t *testing.T) {
	g := lineGraph(t, 4, []uint8{1, 48, 16})
	if got := g.MaxThresholdOnPath(0, 3); got != 48 {
		t.Fatalf("max threshold = %d", got)
	}
	if got := g.MaxThresholdOnPath(0, 1); got != 1 {
		t.Fatalf("max threshold = %d", got)
	}
}
