package topology

import (
	"sessiondir/internal/mcast"
	"sessiondir/internal/stats"
)

// HopHistogram computes the Figure-10 curve for one TTL scope: over every
// potential source mrouter, the histogram of the number of mrouters at each
// hop distance that traffic sent at that TTL actually reaches. The
// histogram is combined over all sources (the paper normalises it for
// plotting; use IntHistogram.Normalized).
//
// sources limits the computation to the given source subset; pass nil for
// all nodes (paper behaviour; O(V·(E log V))).
func HopHistogram(g *Graph, ttl mcast.TTL, sources []NodeID) *stats.IntHistogram {
	h := &stats.IntHistogram{}
	if sources == nil {
		sources = make([]NodeID, g.NumNodes())
		for i := range sources {
			sources[i] = NodeID(i)
		}
	}
	for _, src := range sources {
		t := NewSPTree(g, src)
		r := Reach(g, t, ttl)
		for _, v := range r.Members() {
			h.Add(int(t.Depth(v)))
		}
	}
	return h
}

// HopStats is one row of the paper's §2.4.1 TTL table.
type HopStats struct {
	TTL             mcast.TTL
	MostFrequentHop int     // mode of the hop-count distribution
	MeanHop         float64 // mean hop count
	MaxHop          int     // maximum hop count observed
}

// HopStatsForTTLs computes the §2.4.1 table (most frequent and maximum hop
// count per TTL scope) over the given sources (nil = all).
func HopStatsForTTLs(g *Graph, ttls []mcast.TTL, sources []NodeID) []HopStats {
	out := make([]HopStats, 0, len(ttls))
	for _, ttl := range ttls {
		h := HopHistogram(g, ttl, sources)
		out = append(out, HopStats{
			TTL:             ttl,
			MostFrequentHop: h.Mode(),
			MeanHop:         h.Mean(),
			MaxHop:          h.Max(),
		})
	}
	return out
}

// Diameter returns the maximum hop-count eccentricity over the sampled
// sources (nil = all nodes), ignoring TTL thresholds. This corresponds to
// the paper's observation that the Mbone diameter stays under the DVMRP
// infinite metric of 32.
func Diameter(g *Graph, sources []NodeID) int {
	if sources == nil {
		sources = make([]NodeID, g.NumNodes())
		for i := range sources {
			sources[i] = NodeID(i)
		}
	}
	maxHops := 0
	for _, src := range sources {
		t := NewSPTree(g, src)
		for v := 0; v < g.NumNodes(); v++ {
			if d := t.Depth(NodeID(v)); int(d) > maxHops {
				maxHops = int(d)
			}
		}
	}
	return maxHops
}
