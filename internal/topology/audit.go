package topology

import (
	"fmt"
	"sort"

	"sessiondir/internal/mcast"
)

// Scope auditing: the paper's Figure 3 shows how *inconsistent TTL
// boundary policies* (the UK's TTL-48 borders vs the US's lack of them)
// defeat partitioned allocation — a Scandinavian allocator cannot see UK
// TTL-47 sessions yet its TTL-63 sessions reach the UK. AuditScopes finds
// such hazards in a topology: pairs of TTL values sharing an allocation
// partition where one side's sessions are invisible to the other side's
// allocators despite overlapping scopes.

// ScopeHazard is one detected Figure-3 situation.
type ScopeHazard struct {
	// AllocSite cannot see sessions announced by HiddenSite at HiddenTTL,
	// yet AllocSite's sessions at AllocTTL reach HiddenSite — and both
	// TTLs fall into the same allocation partition, so an address clash
	// is possible despite "informed" allocation.
	AllocSite, HiddenSite NodeID
	AllocTTL, HiddenTTL   mcast.TTL
	Partition             int
}

// String implements fmt.Stringer.
func (h ScopeHazard) String() string {
	return fmt.Sprintf("site %d (ttl %d) cannot see site %d (ttl %d) in partition %d",
		h.AllocSite, h.AllocTTL, h.HiddenSite, h.HiddenTTL, h.Partition)
}

// AuditConfig parameterises an audit.
type AuditConfig struct {
	// TTLs are the session scopes in use (e.g. a workload's Support()).
	TTLs []mcast.TTL
	// PartitionOf maps a TTL to its allocation partition (e.g. an IPR
	// band index or a PartitionMap class).
	PartitionOf func(mcast.TTL) int
	// Sites are the sampled allocator locations (nil = every node —
	// quadratic in the graph size, so sample for big maps).
	Sites []NodeID
	// MaxHazards caps the report (0 = 100).
	MaxHazards int
}

// AuditScopes scans a topology for Figure-3 hazards. A topology free of
// hazards for a given partitioning satisfies the premise that makes
// informed partitioned allocation clash-free under perfect announcement.
func AuditScopes(g *Graph, cfg AuditConfig) []ScopeHazard {
	if cfg.PartitionOf == nil {
		panic("topology: AuditConfig.PartitionOf is required")
	}
	maxHazards := cfg.MaxHazards
	if maxHazards == 0 {
		maxHazards = 100
	}
	sites := cfg.Sites
	if sites == nil {
		sites = make([]NodeID, g.NumNodes())
		for i := range sites {
			sites[i] = NodeID(i)
		}
	}
	ttls := append([]mcast.TTL(nil), cfg.TTLs...)
	sort.Slice(ttls, func(i, j int) bool { return ttls[i] < ttls[j] })

	cache := NewReachCache(g)
	var hazards []ScopeHazard
	for _, hidden := range sites {
		for _, hiddenTTL := range ttls {
			hiddenReach := cache.Reach(hidden, hiddenTTL)
			for _, alloc := range sites {
				if alloc == hidden || hiddenReach.Contains(alloc) {
					continue // the allocator hears these announcements: no hazard
				}
				for _, allocTTL := range ttls {
					if cfg.PartitionOf(allocTTL) != cfg.PartitionOf(hiddenTTL) {
						continue // different partitions cannot collide
					}
					if allocTTL <= hiddenTTL {
						continue // report each pair once, from the wider side
					}
					if cache.Reach(alloc, allocTTL).Intersects(hiddenReach) {
						hazards = append(hazards, ScopeHazard{
							AllocSite:  alloc,
							HiddenSite: hidden,
							AllocTTL:   allocTTL,
							HiddenTTL:  hiddenTTL,
							Partition:  cfg.PartitionOf(allocTTL),
						})
						if len(hazards) >= maxHazards {
							return hazards
						}
					}
				}
			}
		}
	}
	return hazards
}
