// Package relay is a deterministic UDP fault relay: real daemon
// processes exchange datagrams through it over real sockets, and every
// directed link between two attached endpoints carries its own seeded
// fault process — loss, duplication, single-bit corruption, and uniform
// delay (which yields reordering whenever the sampled delays are not
// monotone) — plus runtime-controllable partitions.
//
// The relay is the process-level counterpart of transport.FaultTransport
// (DESIGN.md §10): FaultTransport injects faults into an in-process Bus
// on virtual time; the relay injects the same fault vocabulary between
// *processes* on wall time. Its determinism model is necessarily weaker
// and is stated precisely here:
//
//   - Each directed link (i→j) owns a stats.RNG derived from the relay
//     seed and the pair (i, j) alone — not from attachment order or any
//     global draw sequence. The fault fate of the k-th packet to
//     traverse link (i→j) is therefore a pure function of (seed, i, j, k).
//   - Each attachment's ingress socket is read by one goroutine, and a
//     single sender's datagrams arrive on it in send order on loopback,
//     so per-link packet sequences — and hence per-link fault schedules —
//     replay across runs even though cross-link interleaving does not.
//   - Partitions consume no randomness, so flipping a partition on and
//     off never shifts any link's draw sequence.
//
// Process-level chaos verdicts (cmd/mcchaos) build on exactly this: the
// scripted schedule and the final invariants are seed-reproducible even
// though individual packet timings are not.
package relay

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"sessiondir/internal/obs"
	"sessiondir/internal/stats"
)

// maxDatagram matches the transport layer's default datagram cap.
const maxDatagram = 64 * 1024

// LinkProfile is the fault process applied to one directed link. The
// zero value forwards everything unchanged.
type LinkProfile struct {
	// Loss is the independent per-packet drop probability.
	Loss float64
	// Duplicate is the probability a packet is forwarded twice; the copy
	// samples its own delay, so duplicates also arrive reordered.
	Duplicate float64
	// Corrupt is the probability a single uniformly chosen bit of the
	// forwarded copy is flipped (receivers must quarantine it).
	Corrupt float64
	// DelayMin and DelayMax bound a uniform per-packet forwarding delay.
	// Both zero means forward inline; DelayMax > DelayMin yields
	// reordering between packets whose sampled delays cross.
	DelayMin, DelayMax time.Duration
}

// Config assembles a Relay.
type Config struct {
	// Seed derives every link's RNG stream. Required non-zero so a run
	// can always name the seed it replays from.
	Seed uint64
	// Obs, when non-nil, registers the relay counters
	// (relay_forwarded_total, relay_dropped_total, relay_duplicated_total,
	// relay_corrupted_total, relay_delayed_total,
	// relay_partition_drops_total) and the relay_partitions_active gauge.
	Obs *obs.Registry
}

// Stats is a snapshot of the relay's aggregate forwarding decisions.
type Stats struct {
	Forwarded      uint64 // copies handed to the egress socket (duplicates included)
	Dropped        uint64 // packets dropped by a link's loss draw
	Duplicated     uint64 // extra copies created by duplication draws
	Corrupted      uint64 // forwarded copies with one bit flipped
	Delayed        uint64 // copies that sat in the delay queue
	PartitionDrops uint64 // packets severed by an active partition
	Pending        int    // delayed copies not yet delivered
}

// link is one directed (from, to) fault process. RNG draws happen in a
// fixed per-packet order (loss, duplicate, corrupt, delay, dup-delay,
// corrupt bit indices) so a link's schedule is a pure function of its
// packet sequence.
type link struct {
	profile LinkProfile
	rng     *stats.RNG
}

// attachment is one relayed endpoint: daemons send to in's address, and
// deliveries destined for the endpoint go to dest.
type attachment struct {
	index int
	in    *net.UDPConn
	dest  netip.AddrPort
}

// delivery is one decided forwarding: data is always an owned copy by
// the time it leaves the decision phase if it needs one (corruption or
// delay); inline uncorrupted sends borrow the read buffer.
type delivery struct {
	data  []byte
	to    netip.AddrPort
	delay time.Duration
}

// Relay forwards datagrams between attached endpoints through per-link
// fault processes. Safe for concurrent use; the fault decision phase for
// one ingress datagram runs under one lock so each link's draw order is
// well defined.
type Relay struct {
	cfg    Config
	egress *net.UDPConn

	mu     sync.Mutex
	atts   []*attachment
	links  map[[2]int]*link
	groups map[int]int // attachment index → partition group; absent = severed
	parted bool
	closed bool

	forwarded      atomic.Uint64
	dropped        atomic.Uint64
	duplicated     atomic.Uint64
	corrupted      atomic.Uint64
	delayed        atomic.Uint64
	partitionDrops atomic.Uint64
	pending        atomic.Int64

	// timers holds the pending delayed deliveries so Close can cancel
	// them instead of waiting out their delays. Fired or cancelled slots
	// are nilled and reused, so the slice length is bounded by the peak
	// number of concurrently pending deliveries.
	timers []*time.Timer

	wg sync.WaitGroup

	ctl *controlServer // non-nil once ServeControl has bound
}

// New opens a relay. Attach endpoints, then point each daemon's peer
// list at its returned ingress address.
func New(cfg Config) (*Relay, error) {
	if cfg.Seed == 0 {
		return nil, fmt.Errorf("relay: Seed is required (runs must be replayable by seed)")
	}
	egress, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("relay: egress socket: %w", err)
	}
	r := &Relay{
		cfg:    cfg,
		egress: egress,
		links:  make(map[[2]int]*link),
		groups: make(map[int]int),
	}
	if cfg.Obs != nil {
		if err := r.registerObs(cfg.Obs); err != nil {
			_ = egress.Close() // registration failed before the relay was shared
			return nil, err
		}
	}
	return r, nil
}

func (r *Relay) registerObs(reg *obs.Registry) error {
	views := []struct {
		name, help string
		src        *atomic.Uint64
	}{
		{"relay_forwarded_total", "copies forwarded to endpoints, duplicates included", &r.forwarded},
		{"relay_dropped_total", "packets dropped by per-link loss draws", &r.dropped},
		{"relay_duplicated_total", "extra copies created by duplication draws", &r.duplicated},
		{"relay_corrupted_total", "forwarded copies with one flipped bit", &r.corrupted},
		{"relay_delayed_total", "copies that sat in the delay queue", &r.delayed},
		{"relay_partition_drops_total", "packets severed by an active partition", &r.partitionDrops},
	}
	for _, v := range views {
		if err := reg.CounterFunc(v.name, v.help, v.src.Load); err != nil {
			return fmt.Errorf("relay: %w", err)
		}
	}
	if err := reg.GaugeFunc("relay_partitions_active",
		"directed links currently severed by the active partition",
		func() float64 { return float64(r.SeveredLinks()) }); err != nil {
		return fmt.Errorf("relay: %w", err)
	}
	return nil
}

// Attach binds a fresh ingress socket for one endpoint whose deliveries
// go to dest, returning the ingress address the endpoint must send to.
// Attachment indices are assigned in call order, starting at 0.
func (r *Relay) Attach(dest netip.AddrPort) (netip.AddrPort, int, error) {
	in, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return netip.AddrPort{}, 0, fmt.Errorf("relay: ingress socket: %w", err)
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		_ = in.Close() // relay gone; nothing to undo
		return netip.AddrPort{}, 0, fmt.Errorf("relay: closed")
	}
	a := &attachment{index: len(r.atts), in: in, dest: dest}
	r.atts = append(r.atts, a)
	if r.parted {
		// Endpoints attached mid-partition are severed until the next
		// Partition or Heal names them, matching Bus semantics.
	} else {
		r.groups[a.index] = 0
	}
	r.mu.Unlock()
	r.wg.Add(1)
	go r.readLoop(a)
	addr := in.LocalAddr().(*net.UDPAddr).AddrPort()
	return addr, a.index, nil
}

// linkFor returns (creating on first use) the directed link i→j. Caller
// holds r.mu. The RNG seed mixes the pair into the relay seed with two
// odd 64-bit constants so streams are pair-unique and independent of
// attachment or traffic order.
func (r *Relay) linkFor(i, j int) *link {
	k := [2]int{i, j}
	l, ok := r.links[k]
	if !ok {
		seed := r.cfg.Seed ^ (uint64(i+1) * 0x9e3779b97f4a7c15) ^ (uint64(j+1) * 0xbf58476d1ce4e5b9)
		if seed == 0 {
			seed = 1 // 0 would ask stats.NewRNG for its fixed default stream
		}
		l = &link{rng: stats.NewRNG(seed)}
		r.links[k] = l
	}
	return l
}

// SetLink installs profile on the directed link from→to; -1 for either
// side is a wildcard over all current attachments. Future attachments
// start with clean links regardless of past wildcards.
func (r *Relay) SetLink(from, to int, p LinkProfile) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.atts)
	for i := 0; i < n; i++ {
		if from >= 0 && i != from {
			continue
		}
		for j := 0; j < n; j++ {
			if j == i || (to >= 0 && j != to) {
				continue
			}
			r.linkFor(i, j).profile = p
		}
	}
}

// Partition splits the fabric into the given groups of attachment
// indices; endpoints in no group are severed from everyone. Packets
// whose endpoints share a group still flow (with their link faults).
func (r *Relay) Partition(groups ...[]int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.parted = true
	r.groups = make(map[int]int)
	for gi, g := range groups {
		for _, idx := range g {
			r.groups[idx] = gi
		}
	}
}

// Heal removes any active partition.
func (r *Relay) Heal() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.parted = false
	r.groups = make(map[int]int)
	for i := range r.atts {
		r.groups[i] = 0
	}
}

// blockedLocked reports whether the active partition severs i→j.
func (r *Relay) blockedLocked(i, j int) bool {
	if !r.parted {
		return false
	}
	gi, oki := r.groups[i]
	gj, okj := r.groups[j]
	return !oki || !okj || gi != gj
}

// SeveredLinks counts the directed attachment pairs the active partition
// currently blocks (0 when healed).
func (r *Relay) SeveredLinks() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.parted {
		return 0
	}
	n := 0
	for i := range r.atts {
		for j := range r.atts {
			if i != j && r.blockedLocked(i, j) {
				n++
			}
		}
	}
	return n
}

// Stats returns a snapshot of aggregate forwarding decisions.
func (r *Relay) Stats() Stats {
	return Stats{
		Forwarded:      r.forwarded.Load(),
		Dropped:        r.dropped.Load(),
		Duplicated:     r.duplicated.Load(),
		Corrupted:      r.corrupted.Load(),
		Delayed:        r.delayed.Load(),
		PartitionDrops: r.partitionDrops.Load(),
		Pending:        int(r.pending.Load()),
	}
}

// readLoop drains one attachment's ingress socket, deciding and
// dispatching the fan-out for each datagram.
func (r *Relay) readLoop(a *attachment) {
	defer r.wg.Done()
	buf := make([]byte, maxDatagram)
	for {
		n, _, err := a.in.ReadFromUDP(buf)
		if err != nil {
			return // closed (or unrecoverable): the relay is shutting down
		}
		r.forward(a.index, buf[:n])
	}
}

// forward runs the decision phase for one ingress datagram under the
// lock — fixing each link's draw order — then performs inline sends and
// schedules delayed ones outside it.
func (r *Relay) forward(from int, data []byte) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	var out []delivery
	for j := 0; j < len(r.atts); j++ {
		if j == from {
			continue
		}
		if r.blockedLocked(from, j) {
			r.partitionDrops.Add(1)
			continue
		}
		l := r.linkFor(from, j)
		p := l.profile
		// Fixed per-packet draw order; every draw happens even for fates
		// that end up dropped, so one decision never shifts the next
		// packet's schedule.
		lost := p.Loss > 0 && l.rng.Bool(p.Loss)
		dup := p.Duplicate > 0 && l.rng.Bool(p.Duplicate)
		corrupt := p.Corrupt > 0 && l.rng.Bool(p.Corrupt)
		delay := sampleDelay(l.rng, p)
		var dupDelay time.Duration
		if dup {
			dupDelay = sampleDelay(l.rng, p)
		}
		dest := r.atts[j].dest
		if lost {
			r.dropped.Add(1)
		} else {
			out = append(out, r.makeDelivery(data, dest, corrupt, delay, l.rng))
		}
		if dup {
			// The duplicate of a lost packet still flows: that models the
			// network duplicating upstream of the loss point.
			r.duplicated.Add(1)
			out = append(out, r.makeDelivery(data, dest, corrupt, dupDelay, l.rng))
		}
	}
	r.mu.Unlock()
	for _, d := range out {
		r.dispatch(d)
	}
}

// makeDelivery builds one forwarding: corrupted or delayed copies own
// their bytes; clean inline sends borrow the caller's buffer (consumed
// before forward returns). Caller holds r.mu.
func (r *Relay) makeDelivery(data []byte, to netip.AddrPort, corrupt bool, delay time.Duration, rng *stats.RNG) delivery {
	payload := data
	if corrupt || delay > 0 {
		payload = append([]byte(nil), data...)
	}
	if corrupt && len(payload) > 0 {
		bit := rng.IntN(len(payload) * 8)
		payload[bit/8] ^= 1 << (bit % 8)
		r.corrupted.Add(1)
	}
	return delivery{data: payload, to: to, delay: delay}
}

// dispatch sends one decided delivery, inline or after its delay.
func (r *Relay) dispatch(d delivery) {
	if d.delay <= 0 {
		r.send(d.data, d.to)
		return
	}
	r.delayed.Add(1)
	r.pending.Add(1)
	r.wg.Add(1)
	var slot int
	var tm *time.Timer
	tm = time.AfterFunc(d.delay, func() {
		defer r.wg.Done()
		defer r.pending.Add(-1)
		r.mu.Lock()
		closed := r.closed
		if slot < len(r.timers) && r.timers[slot] == tm {
			r.timers[slot] = nil
		}
		r.mu.Unlock()
		if !closed {
			r.send(d.data, d.to)
		}
	})
	r.mu.Lock()
	slot = r.addTimerLocked(tm)
	r.mu.Unlock()
}

// addTimerLocked records a pending timer in the first free slot (slots
// are never moved, so the index a timer's callback captured stays valid
// for its lifetime). Returns the slot index. In the rare case where a
// near-zero delay fires the callback before this registration, the
// callback's tm-identity check simply misses and the fired timer's entry
// stays behind as an inert non-nil slot; Close's Stop on it returns
// false, so nothing double-counts.
func (r *Relay) addTimerLocked(tm *time.Timer) int {
	for i, t := range r.timers {
		if t == nil {
			r.timers[i] = tm
			return i
		}
	}
	r.timers = append(r.timers, tm)
	return len(r.timers) - 1
}

func (r *Relay) send(data []byte, to netip.AddrPort) {
	if _, err := r.egress.WriteToUDPAddrPort(data, to); err != nil {
		return // receiver gone or buffer full: indistinguishable from link loss
	}
	r.forwarded.Add(1)
}

func sampleDelay(rng *stats.RNG, p LinkProfile) time.Duration {
	if p.DelayMax <= p.DelayMin {
		return p.DelayMin
	}
	return p.DelayMin + time.Duration(rng.Float64()*float64(p.DelayMax-p.DelayMin))
}

// Close shuts every socket and drops undelivered delayed copies. Safe to
// call more than once.
func (r *Relay) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	atts := r.atts
	ctl := r.ctl
	// Cancel pending delayed deliveries so Close does not wait out their
	// delays. A Stop that loses the race to a firing callback returns
	// false and that callback does its own bookkeeping (and sees closed).
	for i, tm := range r.timers {
		if tm != nil && tm.Stop() {
			r.timers[i] = nil
			r.wg.Done()
			r.pending.Add(-1)
		}
	}
	r.mu.Unlock()
	for _, a := range atts {
		_ = a.in.Close() // shutdown path; read loops exit on the close error
	}
	if ctl != nil {
		_ = ctl.conn.Close() // same: unblocks the control loop
	}
	err := r.egress.Close()
	r.wg.Wait()
	return err
}
