package relay

import (
	"strings"
	"testing"
	"time"
)

func TestControlHandleCommand(t *testing.T) {
	r := mustRelay(t, Config{Seed: 21})
	a, b := newEndpoint(t), newEndpoint(t)
	if _, _, err := r.Attach(a.addr); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Attach(b.addr); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		cmd  string
		want string // reply prefix
	}{
		{"ping", "OK pong"},
		{"partition 0|1", "OK partitioned groups=2"},
		{"heal", "OK healed"},
		{"link * * loss=0.25 dup=0.1 corrupt=0.01 delay=1ms:20ms", "OK link"},
		{"link 0 1 loss=0", "OK link"},
		{"stats", "OK forwarded=0"},
		{"", "ERR"},
		{"nope", "ERR unknown command"},
		{"partition x|y", "ERR"},
		{"partition 0|0", "ERR"},
		{"link 0 1 loss=2", "ERR"},
		{"link 0 1 delay=5ms", "ERR"},
		{"link a b", "ERR"},
	}
	for _, c := range cases {
		if got := r.handleCommand(c.cmd); !strings.HasPrefix(got, c.want) {
			t.Errorf("handleCommand(%q) = %q, want prefix %q", c.cmd, got, c.want)
		}
	}
}

func TestControlAppliesState(t *testing.T) {
	r := mustRelay(t, Config{Seed: 22})
	a, b := newEndpoint(t), newEndpoint(t)
	if _, _, err := r.Attach(a.addr); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Attach(b.addr); err != nil {
		t.Fatal(err)
	}
	if got := r.handleCommand("partition 0|1"); !strings.HasPrefix(got, "OK") {
		t.Fatal(got)
	}
	if r.SeveredLinks() != 2 {
		t.Fatalf("SeveredLinks = %d after control partition, want 2", r.SeveredLinks())
	}
	if got := r.handleCommand("link * * loss=1"); !strings.HasPrefix(got, "OK") {
		t.Fatal(got)
	}
	r.mu.Lock()
	p := r.linkFor(0, 1).profile
	r.mu.Unlock()
	if p.Loss != 1 {
		t.Fatalf("link 0→1 loss = %g after control set, want 1", p.Loss)
	}
	if got := r.handleCommand("heal"); !strings.HasPrefix(got, "OK") {
		t.Fatal(got)
	}
	if r.SeveredLinks() != 0 {
		t.Fatalf("SeveredLinks = %d after heal, want 0", r.SeveredLinks())
	}
}

// TestControlOverUDP exercises the real socket loop: command datagram
// in, reply datagram out.
func TestControlOverUDP(t *testing.T) {
	r := mustRelay(t, Config{Seed: 23})
	ctlAddr, err := r.ServeControl()
	if err != nil {
		t.Fatal(err)
	}
	// Second ServeControl is a no-op returning the same address.
	again, err := r.ServeControl()
	if err != nil || again != ctlAddr {
		t.Fatalf("second ServeControl = %v, %v; want %v, nil", again, err, ctlAddr)
	}

	client := newSender(t)
	if err := client.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2048)
	roundTrip := func(cmd string) string {
		t.Helper()
		if _, err := client.WriteToUDPAddrPort([]byte(cmd), ctlAddr); err != nil {
			t.Fatal(err)
		}
		n, _, err := client.ReadFromUDP(buf)
		if err != nil {
			t.Fatalf("no reply to %q: %v", cmd, err)
		}
		return string(buf[:n])
	}
	if got := roundTrip("ping"); got != "OK pong" {
		t.Fatalf("ping → %q", got)
	}
	if got := roundTrip("stats"); !strings.HasPrefix(got, "OK forwarded=") {
		t.Fatalf("stats → %q", got)
	}
	if got := roundTrip("bogus"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("bogus → %q", got)
	}
}

func TestParseProfileRejectsNegativeDelay(t *testing.T) {
	if _, err := parseProfile([]string{"delay=-1ms:5ms"}); err == nil {
		t.Fatal("negative delay min accepted")
	}
	if _, err := parseProfile([]string{"delay=10ms:5ms"}); err == nil {
		t.Fatal("inverted delay range accepted")
	}
}

// guard against the relay double-closing its control socket.
func TestRelayCloseWithControl(t *testing.T) {
	r, err := New(Config{Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ServeControl(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}
