package relay

import (
	"fmt"
	"net"
	"net/netip"
	"sort"
	"testing"
	"time"

	"sessiondir/internal/obs"
)

// endpoint is a raw UDP listener standing in for a daemon: it records
// every datagram delivered to it.
type endpoint struct {
	conn *net.UDPConn
	addr netip.AddrPort
	got  chan []byte
}

func newEndpoint(t *testing.T) *endpoint {
	t.Helper()
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	ep := &endpoint{
		conn: conn,
		addr: conn.LocalAddr().(*net.UDPAddr).AddrPort(),
		got:  make(chan []byte, 4096),
	}
	go func() {
		buf := make([]byte, 2048)
		for {
			n, _, err := conn.ReadFromUDP(buf)
			if err != nil {
				close(ep.got)
				return
			}
			ep.got <- append([]byte(nil), buf[:n]...)
		}
	}()
	t.Cleanup(func() { _ = conn.Close() })
	return ep
}

// drain collects deliveries until the channel stays quiet for the given
// window.
func (ep *endpoint) drain(quiet time.Duration) [][]byte {
	var out [][]byte
	for {
		select {
		case b, ok := <-ep.got:
			if !ok {
				return out
			}
			out = append(out, b)
		case <-time.After(quiet):
			return out
		}
	}
}

// sender is a raw UDP socket a test uses to push packets into a relay
// ingress address.
func newSender(t *testing.T) *net.UDPConn {
	t.Helper()
	c, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func mustRelay(t *testing.T, cfg Config) *Relay {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = r.Close() })
	return r
}

func TestRelayForwardsBetweenEndpoints(t *testing.T) {
	r := mustRelay(t, Config{Seed: 1})
	a, b := newEndpoint(t), newEndpoint(t)
	inA, ia, err := r.Attach(a.addr)
	if err != nil {
		t.Fatal(err)
	}
	if ia != 0 {
		t.Fatalf("first attachment index = %d, want 0", ia)
	}
	if _, ib, err := r.Attach(b.addr); err != nil || ib != 1 {
		t.Fatalf("second attachment: index=%d err=%v", ib, err)
	}
	send := newSender(t)
	if _, err := send.WriteToUDPAddrPort([]byte("hello"), inA); err != nil {
		t.Fatal(err)
	}
	got := b.drain(300 * time.Millisecond)
	if len(got) != 1 || string(got[0]) != "hello" {
		t.Fatalf("endpoint B got %q, want one \"hello\"", got)
	}
	// The sender's own attachment must not hear an echo.
	if back := a.drain(100 * time.Millisecond); len(back) != 0 {
		t.Fatalf("endpoint A heard its own packet: %q", back)
	}
	if s := r.Stats(); s.Forwarded != 1 {
		t.Fatalf("Forwarded = %d, want 1", s.Forwarded)
	}
}

// TestRelayLossScheduleReplaysBySeed is the determinism contract: with
// the same seed and the same per-link packet sequence, the set of
// surviving packet indices is identical run to run — even though the
// runs are separate relays on separate sockets.
func TestRelayLossScheduleReplaysBySeed(t *testing.T) {
	const n = 400
	survivors := func(seed uint64) []int {
		r := mustRelay(t, Config{Seed: seed})
		a, b := newEndpoint(t), newEndpoint(t)
		inA, _, err := r.Attach(a.addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := r.Attach(b.addr); err != nil {
			t.Fatal(err)
		}
		r.SetLink(-1, -1, LinkProfile{Loss: 0.5})
		send := newSender(t)
		for i := 0; i < n; i++ {
			if _, err := send.WriteToUDPAddrPort([]byte(fmt.Sprintf("pkt-%04d", i)), inA); err != nil {
				t.Fatal(err)
			}
			// Pace slightly so the loopback receive queue never overflows;
			// per-link determinism only needs per-sender ordering.
			if i%64 == 63 {
				time.Sleep(2 * time.Millisecond)
			}
		}
		var idx []int
		for _, p := range b.drain(400 * time.Millisecond) {
			var i int
			if _, err := fmt.Sscanf(string(p), "pkt-%d", &i); err != nil {
				t.Fatalf("unparseable delivery %q", p)
			}
			idx = append(idx, i)
		}
		sort.Ints(idx)
		return idx
	}

	first := survivors(0xfeed)
	second := survivors(0xfeed)
	if len(first) == 0 || len(first) == n {
		t.Fatalf("loss 0.5 delivered %d/%d packets; fault process inert", len(first), n)
	}
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatalf("survivor sets differ for the same seed:\n run1: %v\n run2: %v", first, second)
	}
	// A different seed must (overwhelmingly) pick a different schedule.
	if other := survivors(0xbeef); fmt.Sprint(other) == fmt.Sprint(first) {
		t.Fatalf("seeds 0xfeed and 0xbeef produced identical %d-packet schedules", n)
	}
}

func TestRelayPartitionBlocksAndHeals(t *testing.T) {
	reg := obs.NewRegistry()
	r := mustRelay(t, Config{Seed: 3, Obs: reg})
	a, b := newEndpoint(t), newEndpoint(t)
	inA, _, err := r.Attach(a.addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Attach(b.addr); err != nil {
		t.Fatal(err)
	}
	send := newSender(t)

	r.Partition([]int{0}, []int{1})
	if got := r.SeveredLinks(); got != 2 {
		t.Fatalf("SeveredLinks = %d, want 2", got)
	}
	if _, err := send.WriteToUDPAddrPort([]byte("cut"), inA); err != nil {
		t.Fatal(err)
	}
	if got := b.drain(250 * time.Millisecond); len(got) != 0 {
		t.Fatalf("partitioned delivery leaked through: %q", got)
	}
	if s := r.Stats(); s.PartitionDrops != 1 {
		t.Fatalf("PartitionDrops = %d, want 1", s.PartitionDrops)
	}

	r.Heal()
	if got := r.SeveredLinks(); got != 0 {
		t.Fatalf("SeveredLinks after heal = %d, want 0", got)
	}
	if _, err := send.WriteToUDPAddrPort([]byte("healed"), inA); err != nil {
		t.Fatal(err)
	}
	if got := b.drain(300 * time.Millisecond); len(got) != 1 || string(got[0]) != "healed" {
		t.Fatalf("post-heal delivery = %q, want one \"healed\"", got)
	}

	// The obs surface must expose the same picture.
	var sawGauge bool
	for _, mv := range reg.Snapshot() {
		if mv.Name == "relay_partition_drops_total" && mv.Value != 1 {
			t.Fatalf("relay_partition_drops_total = %v, want 1", mv.Value)
		}
		if mv.Name == "relay_partitions_active" {
			sawGauge = true
			if mv.Value != 0 {
				t.Fatalf("relay_partitions_active after heal = %v, want 0", mv.Value)
			}
		}
	}
	if !sawGauge {
		t.Fatal("relay_partitions_active gauge not registered")
	}
}

func TestRelayCorruptFlipsExactlyOneBit(t *testing.T) {
	r := mustRelay(t, Config{Seed: 11})
	a, b := newEndpoint(t), newEndpoint(t)
	inA, _, err := r.Attach(a.addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Attach(b.addr); err != nil {
		t.Fatal(err)
	}
	r.SetLink(0, 1, LinkProfile{Corrupt: 1})
	orig := []byte("payload-under-test")
	send := newSender(t)
	if _, err := send.WriteToUDPAddrPort(orig, inA); err != nil {
		t.Fatal(err)
	}
	got := b.drain(300 * time.Millisecond)
	if len(got) != 1 {
		t.Fatalf("got %d deliveries, want 1", len(got))
	}
	diff := 0
	for i := range orig {
		x := orig[i] ^ got[0][i]
		for ; x != 0; x &= x - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption flipped %d bits, want exactly 1 (got %q)", diff, got[0])
	}
	if s := r.Stats(); s.Corrupted != 1 {
		t.Fatalf("Corrupted = %d, want 1", s.Corrupted)
	}
}

func TestRelayDuplicateDeliversTwice(t *testing.T) {
	r := mustRelay(t, Config{Seed: 12})
	a, b := newEndpoint(t), newEndpoint(t)
	inA, _, err := r.Attach(a.addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Attach(b.addr); err != nil {
		t.Fatal(err)
	}
	r.SetLink(0, 1, LinkProfile{Duplicate: 1})
	send := newSender(t)
	if _, err := send.WriteToUDPAddrPort([]byte("twin"), inA); err != nil {
		t.Fatal(err)
	}
	got := b.drain(300 * time.Millisecond)
	if len(got) != 2 || string(got[0]) != "twin" || string(got[1]) != "twin" {
		t.Fatalf("duplicate link delivered %q, want [\"twin\" \"twin\"]", got)
	}
}

func TestRelayDelayDeliversLate(t *testing.T) {
	r := mustRelay(t, Config{Seed: 13})
	a, b := newEndpoint(t), newEndpoint(t)
	inA, _, err := r.Attach(a.addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Attach(b.addr); err != nil {
		t.Fatal(err)
	}
	r.SetLink(0, 1, LinkProfile{DelayMin: 60 * time.Millisecond, DelayMax: 80 * time.Millisecond})
	send := newSender(t)
	start := time.Now()
	if _, err := send.WriteToUDPAddrPort([]byte("later"), inA); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-b.got:
		if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
			t.Fatalf("delayed packet arrived after only %v", elapsed)
		}
		if string(p) != "later" {
			t.Fatalf("delivered %q", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("delayed packet never arrived")
	}
	if s := r.Stats(); s.Delayed != 1 {
		t.Fatalf("Delayed = %d, want 1", s.Delayed)
	}
}

// TestRelayCloseCancelsPendingDelays pins that Close returns promptly
// even with far-future deliveries queued, instead of waiting them out.
func TestRelayCloseCancelsPendingDelays(t *testing.T) {
	r, err := New(Config{Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	a, b := newEndpoint(t), newEndpoint(t)
	inA, _, err := r.Attach(a.addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Attach(b.addr); err != nil {
		t.Fatal(err)
	}
	r.SetLink(0, 1, LinkProfile{DelayMin: time.Minute, DelayMax: 2 * time.Minute})
	send := newSender(t)
	if _, err := send.WriteToUDPAddrPort([]byte("stranded"), inA); err != nil {
		t.Fatal(err)
	}
	// Wait for the packet to reach the delay queue before closing.
	deadline := time.Now().Add(2 * time.Second)
	for r.Stats().Pending == 0 {
		if time.Now().After(deadline) {
			t.Fatal("packet never entered the delay queue")
		}
		time.Sleep(5 * time.Millisecond)
	}
	done := make(chan error, 1)
	go func() { done <- r.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked on a pending delayed delivery")
	}
	if got := b.drain(100 * time.Millisecond); len(got) != 0 {
		t.Fatalf("cancelled delivery still arrived: %q", got)
	}
}

func TestRelayRequiresSeed(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a zero seed")
	}
}
