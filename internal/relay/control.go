package relay

import (
	"fmt"
	"net"
	"net/netip"
	"sort"
	"strconv"
	"strings"
	"time"
)

// The relay control protocol: one UDP datagram per command, one reply
// datagram per command, plain text. It exists so an orchestrator — or an
// operator with netcat — can steer faults on a running relay without
// sharing its process:
//
//	ping                               → OK pong
//	partition 0,1|2,3                  → OK partitioned groups=2
//	heal                               → OK healed
//	link <i> <j> k=v ...               → OK link ...      (i or j may be *)
//	   keys: loss, dup, corrupt ∈ [0,1]; delay=<min>:<max> (Go durations)
//	stats                              → OK forwarded=... dropped=... ...
//
// Anything unparseable gets "ERR <reason>". Commands are idempotent and
// the protocol is intentionally stateless, so a lost reply is repaired
// by resending the command.

type controlServer struct {
	conn *net.UDPConn
}

// ServeControl binds the control socket and serves commands until the
// relay closes. It returns the address clients should send commands to.
func (r *Relay) ServeControl() (netip.AddrPort, error) {
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return netip.AddrPort{}, fmt.Errorf("relay: control socket: %w", err)
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		_ = conn.Close() // relay gone before we could serve
		return netip.AddrPort{}, fmt.Errorf("relay: closed")
	}
	if r.ctl != nil {
		prev := r.ctl.conn.LocalAddr().(*net.UDPAddr).AddrPort()
		r.mu.Unlock()
		_ = conn.Close() // already serving; keep the first socket
		return prev, nil
	}
	r.ctl = &controlServer{conn: conn}
	r.mu.Unlock()
	r.wg.Add(1)
	go r.controlLoop(conn)
	return conn.LocalAddr().(*net.UDPAddr).AddrPort(), nil
}

func (r *Relay) controlLoop(conn *net.UDPConn) {
	defer r.wg.Done()
	buf := make([]byte, 4096)
	for {
		n, from, err := conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			return // closed: the relay is shutting down
		}
		reply := r.handleCommand(strings.TrimSpace(string(buf[:n])))
		if _, err := conn.WriteToUDPAddrPort([]byte(reply), from); err != nil {
			continue // client gone; the protocol is resend-to-repair anyway
		}
	}
}

// handleCommand executes one control command and renders its reply. It
// is exported to the socket loop only; tests drive it directly.
func (r *Relay) handleCommand(line string) string {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "ERR empty command"
	}
	switch strings.ToLower(fields[0]) {
	case "ping":
		return "OK pong"
	case "heal":
		r.Heal()
		return "OK healed"
	case "partition":
		if len(fields) != 2 {
			return "ERR usage: partition <g0>,<g1>|<g2>,..."
		}
		groups, err := parseGroups(fields[1])
		if err != nil {
			return "ERR " + err.Error()
		}
		r.Partition(groups...)
		return fmt.Sprintf("OK partitioned groups=%d", len(groups))
	case "link":
		if len(fields) < 3 {
			return "ERR usage: link <from|*> <to|*> [loss=f] [dup=f] [corrupt=f] [delay=min:max]"
		}
		from, err := parseEndpoint(fields[1])
		if err != nil {
			return "ERR " + err.Error()
		}
		to, err := parseEndpoint(fields[2])
		if err != nil {
			return "ERR " + err.Error()
		}
		p, err := parseProfile(fields[3:])
		if err != nil {
			return "ERR " + err.Error()
		}
		r.SetLink(from, to, p)
		return fmt.Sprintf("OK link from=%s to=%s loss=%g dup=%g corrupt=%g delay=%s:%s",
			fields[1], fields[2], p.Loss, p.Duplicate, p.Corrupt, p.DelayMin, p.DelayMax)
	case "stats":
		s := r.Stats()
		return fmt.Sprintf("OK forwarded=%d dropped=%d duplicated=%d corrupted=%d delayed=%d partition_drops=%d pending=%d partitions_active=%d",
			s.Forwarded, s.Dropped, s.Duplicated, s.Corrupted, s.Delayed, s.PartitionDrops, s.Pending, r.SeveredLinks())
	default:
		return "ERR unknown command " + strconv.Quote(fields[0])
	}
}

// parseGroups parses "0,1|2,3" into [[0,1],[2,3]]. Indices may not
// repeat across groups.
func parseGroups(s string) ([][]int, error) {
	var groups [][]int
	seen := map[int]bool{}
	for _, part := range strings.Split(s, "|") {
		var g []int
		for _, tok := range strings.Split(part, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			idx, err := strconv.Atoi(tok)
			if err != nil || idx < 0 {
				return nil, fmt.Errorf("bad index %q", tok)
			}
			if seen[idx] {
				return nil, fmt.Errorf("index %d in two groups", idx)
			}
			seen[idx] = true
			g = append(g, idx)
		}
		if len(g) > 0 {
			sort.Ints(g)
			groups = append(groups, g)
		}
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("no groups")
	}
	return groups, nil
}

func parseEndpoint(tok string) (int, error) {
	if tok == "*" {
		return -1, nil
	}
	idx, err := strconv.Atoi(tok)
	if err != nil || idx < 0 {
		return 0, fmt.Errorf("bad endpoint %q (index or *)", tok)
	}
	return idx, nil
}

func parseProfile(kvs []string) (LinkProfile, error) {
	var p LinkProfile
	for _, kv := range kvs {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return p, fmt.Errorf("bad option %q (want key=value)", kv)
		}
		switch strings.ToLower(k) {
		case "loss", "dup", "corrupt":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f < 0 || f > 1 {
				return p, fmt.Errorf("bad probability %q", kv)
			}
			switch strings.ToLower(k) {
			case "loss":
				p.Loss = f
			case "dup":
				p.Duplicate = f
			case "corrupt":
				p.Corrupt = f
			}
		case "delay":
			lo, hi, ok := strings.Cut(v, ":")
			if !ok {
				return p, fmt.Errorf("bad delay %q (want min:max)", kv)
			}
			dlo, err := time.ParseDuration(lo)
			if err != nil || dlo < 0 {
				return p, fmt.Errorf("bad delay min %q", lo)
			}
			dhi, err := time.ParseDuration(hi)
			if err != nil || dhi < dlo {
				return p, fmt.Errorf("bad delay max %q", hi)
			}
			p.DelayMin, p.DelayMax = dlo, dhi
		default:
			return p, fmt.Errorf("unknown option %q", k)
		}
	}
	return p, nil
}
