// Package mcast models IPv4 multicast addresses, address spaces, and TTL
// scoping as used on the late-1990s Mbone. It provides the vocabulary shared
// by the allocators, the session directory, and the simulators: an abstract
// contiguous address space with an index form (what the allocation
// algorithms reason about) and concrete dotted-quad group addresses (what
// goes on the wire).
package mcast

import (
	"fmt"
	"net/netip"
)

// Addr is an index into an AddrSpace: allocation algorithms operate on
// dense integer indices and convert to concrete group addresses only at the
// wire. The zero Addr is the first address of its space.
type Addr uint32

// AddrSpace is a contiguous range of multicast group addresses available
// for dynamic allocation, such as the IANA "SDP/SAP" dynamic block the
// paper's sdr used (224.2.128.0 – 224.2.255.255). Base is the first group
// address; Size is the number of allocatable addresses.
type AddrSpace struct {
	Base netip.Addr
	Size uint32
}

// SAPDynamicSpace returns the 32768-address dynamic block used by sdr
// (224.2.128.0/17's upper half: 224.2.128.0 – 224.2.255.255).
func SAPDynamicSpace() AddrSpace {
	return AddrSpace{Base: netip.AddrFrom4([4]byte{224, 2, 128, 0}), Size: 32768}
}

// AdminScopedSpace returns the IPv4 administratively scoped block
// 239.255.0.0/16 (the "IPv4 local scope" commonly used for site sessions).
func AdminScopedSpace(size uint32) AddrSpace {
	if size == 0 || size > 1<<16 {
		size = 1 << 16
	}
	return AddrSpace{Base: netip.AddrFrom4([4]byte{239, 255, 0, 0}), Size: size}
}

// SyntheticSpace returns an abstract space of the given size rooted in the
// SSM-test block. Simulations that only care about indices use this.
func SyntheticSpace(size uint32) AddrSpace {
	return AddrSpace{Base: netip.AddrFrom4([4]byte{232, 1, 0, 0}), Size: size}
}

// Contains reports whether idx is inside the space.
func (s AddrSpace) Contains(idx Addr) bool { return uint32(idx) < s.Size }

// Group converts an index to its concrete multicast group address.
// It panics if idx is outside the space: callers must allocate indices
// through an Allocator, which never yields out-of-range values.
func (s AddrSpace) Group(idx Addr) netip.Addr {
	if !s.Contains(idx) {
		panic(fmt.Sprintf("mcast: address index %d outside space of %d", idx, s.Size))
	}
	base := s.Base.As4()
	v := uint32(base[0])<<24 | uint32(base[1])<<16 | uint32(base[2])<<8 | uint32(base[3])
	v += uint32(idx)
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// Index converts a concrete group address back to its index.
// The boolean is false if the address is not inside the space.
func (s AddrSpace) Index(group netip.Addr) (Addr, bool) {
	if !group.Is4() || !s.Base.Is4() {
		return 0, false
	}
	g, b := group.As4(), s.Base.As4()
	gv := uint32(g[0])<<24 | uint32(g[1])<<16 | uint32(g[2])<<8 | uint32(g[3])
	bv := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	if gv < bv || gv-bv >= s.Size {
		return 0, false
	}
	return Addr(gv - bv), true
}

// IsMulticast reports whether a is an IPv4 multicast (class D) address.
func IsMulticast(a netip.Addr) bool {
	if !a.Is4() {
		return false
	}
	b := a.As4()
	return b[0] >= 224 && b[0] <= 239
}

// String renders the space as "base+size".
func (s AddrSpace) String() string {
	return fmt.Sprintf("%s+%d", s.Base, s.Size)
}
