package mcast

import (
	"net/netip"
	"testing"
	"testing/quick"

	"sessiondir/internal/stats"
)

func TestSAPDynamicSpace(t *testing.T) {
	s := SAPDynamicSpace()
	if got := s.Group(0).String(); got != "224.2.128.0" {
		t.Fatalf("first = %s", got)
	}
	if got := s.Group(Addr(s.Size - 1)).String(); got != "224.2.255.255" {
		t.Fatalf("last = %s", got)
	}
	if s.Size != 32768 {
		t.Fatalf("size = %d", s.Size)
	}
}

func TestGroupIndexRoundTrip(t *testing.T) {
	spaces := []AddrSpace{SAPDynamicSpace(), AdminScopedSpace(0), SyntheticSpace(1000)}
	for _, s := range spaces {
		err := quick.Check(func(raw uint32) bool {
			idx := Addr(raw % s.Size)
			back, ok := s.Index(s.Group(idx))
			return ok && back == idx
		}, nil)
		if err != nil {
			t.Fatalf("space %s: %v", s, err)
		}
	}
}

func TestIndexRejectsOutside(t *testing.T) {
	s := SyntheticSpace(10)
	if _, ok := s.Index(netip.AddrFrom4([4]byte{224, 0, 0, 1})); ok {
		t.Fatal("address below base accepted")
	}
	if _, ok := s.Index(netip.AddrFrom4([4]byte{232, 1, 0, 10})); ok {
		t.Fatal("address one past end accepted")
	}
	if _, ok := s.Index(netip.MustParseAddr("ff02::1")); ok {
		t.Fatal("IPv6 accepted")
	}
}

func TestGroupPanicsOutsideSpace(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SyntheticSpace(5).Group(5)
}

func TestGroupCarriesAcrossOctets(t *testing.T) {
	s := AddrSpace{Base: netip.AddrFrom4([4]byte{224, 2, 128, 250}), Size: 20}
	if got := s.Group(10).String(); got != "224.2.129.4" {
		t.Fatalf("carry = %s", got)
	}
}

func TestIsMulticast(t *testing.T) {
	cases := map[string]bool{
		"224.0.0.1":   true,
		"239.255.1.2": true,
		"223.255.0.1": false,
		"240.0.0.1":   false,
		"10.1.2.3":    false,
	}
	for a, want := range cases {
		if got := IsMulticast(netip.MustParseAddr(a)); got != want {
			t.Errorf("IsMulticast(%s) = %v", a, got)
		}
	}
}

func TestTTLToStayWithin(t *testing.T) {
	cases := map[uint8]TTL{16: 15, 48: 47, 64: 63, 128: 127, 0: 0, 1: 0}
	for threshold, want := range cases {
		if got := TTLToStayWithin(threshold); got != want {
			t.Errorf("TTLToStayWithin(%d) = %d want %d", threshold, got, want)
		}
	}
}

func TestScopeNames(t *testing.T) {
	cases := map[TTL]string{
		0:   "host",
		1:   "subnet",
		15:  "site",
		31:  "region",
		47:  "national",
		63:  "continental",
		127: "intercontinental",
		191: "unrestricted",
		255: "unrestricted",
	}
	for ttl, want := range cases {
		if got := ScopeName(ttl); got != want {
			t.Errorf("ScopeName(%d) = %q want %q", ttl, got, want)
		}
	}
}

func TestDistributionsMatchPaper(t *testing.T) {
	// §2.2 lists the four distributions explicitly; check lengths and
	// support sets.
	if got := len(DS1().Values); got != 7 {
		t.Fatalf("ds1 size %d", got)
	}
	if got := len(DS2().Values); got != 9 {
		t.Fatalf("ds2 size %d", got)
	}
	if got := len(DS3().Values); got != 13 {
		t.Fatalf("ds3 size %d", got)
	}
	if got := len(DS4().Values); got != 22 {
		t.Fatalf("ds4 size %d", got)
	}
	for _, d := range Distributions() {
		sup := d.Support()
		for i := 1; i < len(sup); i++ {
			if sup[i] <= sup[i-1] {
				t.Fatalf("%s support not strictly ascending: %v", d.Name, sup)
			}
		}
		// All distributions share the same support {1,15,31,47,63,127,191}.
		want := []TTL{1, 15, 31, 47, 63, 127, 191}
		if len(sup) != len(want) {
			t.Fatalf("%s support %v", d.Name, sup)
		}
		for i := range want {
			if sup[i] != want[i] {
				t.Fatalf("%s support %v", d.Name, sup)
			}
		}
	}
}

func TestDistributionSampleFrequencies(t *testing.T) {
	g := stats.NewRNG(21)
	d := DS4()
	counts := map[TTL]int{}
	const n = 220000
	for i := 0; i < n; i++ {
		counts[d.Sample(g.IntN)]++
	}
	// ds4 has 22 entries; TTL 1 appears 8 times → expect 8/22.
	got := float64(counts[1]) / n
	want := 8.0 / 22.0
	if got < want-0.01 || got > want+0.01 {
		t.Fatalf("TTL1 frequency %v want ~%v", got, want)
	}
	// TTL 191 appears once → 1/22.
	got = float64(counts[191]) / n
	want = 1.0 / 22.0
	if got < want-0.01 || got > want+0.01 {
		t.Fatalf("TTL191 frequency %v want ~%v", got, want)
	}
}

func TestDistributionByName(t *testing.T) {
	d, err := DistributionByName("ds3")
	if err != nil || d.Name != "ds3" {
		t.Fatalf("ds3 lookup: %v %v", d, err)
	}
	if _, err := DistributionByName("nope"); err == nil {
		t.Fatal("expected error for unknown name")
	}
}

func TestSampleEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(TTLDistribution{}).Sample(func(int) int { return 0 })
}
