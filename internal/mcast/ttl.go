package mcast

import "fmt"

// TTL is an IPv4 time-to-live value as used for Mbone scope control.
type TTL uint8

// MaxTTL is the largest possible TTL value.
const MaxTTL TTL = 255

// Canonical Mbone scope TTLs. By convention, traffic meant to stay inside a
// zone whose boundary threshold is y is sent with TTL y−1 (§2.4.1), hence
// the 15/31/47/63/127 values for thresholds 16/32/48/64/128.
const (
	TTLHost         TTL = 0   // never leaves the host
	TTLSubnet       TTL = 1   // local subnet only
	TTLSite         TTL = 15  // site (threshold 16)
	TTLRegion       TTL = 31  // region / campus cluster (threshold 32)
	TTLCountryEU    TTL = 47  // within a European country (threshold 48)
	TTLContinent    TTL = 63  // within a continent (threshold 64)
	TTLWorld        TTL = 127 // intercontinental (threshold 128)
	TTLUnrestricted TTL = 191 // "global" as announced by sdr
)

// TTLToStayWithin returns the TTL a sender should use for traffic that
// must not escape a zone whose boundary threshold is y: y−1 (§2.4.1's
// convention, which also guarantees A-hears-B symmetry inside the zone).
func TTLToStayWithin(boundaryThreshold uint8) TTL {
	if boundaryThreshold == 0 {
		return 0
	}
	return TTL(boundaryThreshold - 1)
}

// ScopeName returns the conventional human-readable name for a scope TTL.
func ScopeName(t TTL) string {
	switch {
	case t == 0:
		return "host"
	case t <= 1:
		return "subnet"
	case t <= 15:
		return "site"
	case t <= 31:
		return "region"
	case t <= 47:
		return "national"
	case t <= 63:
		return "continental"
	case t <= 127:
		return "intercontinental"
	default:
		return "unrestricted"
	}
}

// TTLDistribution is a workload distribution over session TTLs: the
// empirical form used in the paper's §2.2 simulations, where each listed
// value is equally likely (repetition expresses weight).
type TTLDistribution struct {
	Name   string
	Values []TTL
}

// The four TTL workload distributions of the paper's Figure 5 simulations
// (§2.2). ds1 is flat over the common scope values; ds2–ds4 progressively
// weight local (low-TTL) sessions more heavily, illustrating how local
// scoping aids scaling even as it starves the informed mechanisms.
func DS1() TTLDistribution {
	return TTLDistribution{Name: "ds1", Values: []TTL{1, 15, 31, 47, 63, 127, 191}}
}

func DS2() TTLDistribution {
	return TTLDistribution{Name: "ds2", Values: []TTL{1, 1, 15, 15, 31, 47, 63, 127, 191}}
}

func DS3() TTLDistribution {
	return TTLDistribution{Name: "ds3", Values: []TTL{
		1, 1, 1, 1, 15, 15, 15, 15, 31, 47, 63, 127, 191}}
}

func DS4() TTLDistribution {
	return TTLDistribution{Name: "ds4", Values: []TTL{
		1, 1, 1, 1, 1, 1, 1, 1,
		15, 15, 15, 15, 15, 15,
		31, 31, 47, 47, 63, 63, 127, 191}}
}

// Distributions returns all four workload distributions in order.
func Distributions() []TTLDistribution {
	return []TTLDistribution{DS1(), DS2(), DS3(), DS4()}
}

// DistributionByName returns the named distribution.
func DistributionByName(name string) (TTLDistribution, error) {
	for _, d := range Distributions() {
		if d.Name == name {
			return d, nil
		}
	}
	return TTLDistribution{}, fmt.Errorf("mcast: unknown TTL distribution %q", name)
}

// Sample draws one TTL. The caller supplies the uniform variate source as a
// function returning an int in [0, n) to avoid a dependency cycle with the
// stats package.
func (d TTLDistribution) Sample(intn func(n int) int) TTL {
	if len(d.Values) == 0 {
		panic("mcast: sampling from empty TTL distribution")
	}
	return d.Values[intn(len(d.Values))]
}

// Support returns the distinct TTL values in ascending order.
func (d TTLDistribution) Support() []TTL {
	seen := map[TTL]bool{}
	var out []TTL
	for _, v := range d.Values {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
