package session

import "testing"

func FuzzParseSDP(f *testing.F) {
	valid, _ := sampleDesc().MarshalSDP()
	f.Add(valid)
	f.Add([]byte(""))
	f.Add([]byte("v=0\no=- 1 1 IN IP4 10.0.0.1\ns=x\nc=IN IP4 224.1.2.3/15\nt=0 0\n"))
	f.Add([]byte("v=0\r\nb=AS:12\r\na=tool:x\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ParseSDP(data) // must not panic
		if err != nil {
			return
		}
		// Anything that parses must validate and re-marshal.
		if err := d.Validate(); err != nil {
			t.Fatalf("parsed description fails validation: %v", err)
		}
		out, err := d.MarshalSDP()
		if err != nil {
			t.Fatalf("parsed description fails to marshal: %v", err)
		}
		// And the re-marshalled form must parse to the same identity.
		d2, err := ParseSDP(out)
		if err != nil {
			t.Fatalf("re-marshalled SDP fails to parse: %v\n%s", err, out)
		}
		if d2.Key() != d.Key() || d2.Version != d.Version || d2.Group != d.Group {
			t.Fatalf("identity drifted: %s/%d vs %s/%d", d.Key(), d.Version, d2.Key(), d2.Version)
		}
	})
}
