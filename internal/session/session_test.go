package session

import (
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"sessiondir/internal/mcast"
)

func sampleDesc() *Description {
	return &Description{
		ID:         12345,
		Version:    2,
		Origin:     netip.MustParseAddr("10.1.2.3"),
		OriginUser: "mjh",
		Name:       "Mbone Tools Seminar",
		Info:       "weekly seminar",
		Group:      netip.MustParseAddr("224.2.130.7"),
		TTL:        127,
		Start:      time.Date(1998, 9, 1, 14, 0, 0, 0, time.UTC),
		Stop:       time.Date(1998, 9, 1, 16, 0, 0, 0, time.UTC),
		Media: []Media{
			{Type: "audio", Port: 20000, Proto: "RTP/AVP", Format: "0"},
			{Type: "video", Port: 20002, Proto: "RTP/AVP", Format: "31"},
		},
	}
}

func TestKeyStableAcrossAddressChange(t *testing.T) {
	d := sampleDesc()
	moved := d.WithGroup(netip.MustParseAddr("224.2.130.99"))
	if d.Key() != moved.Key() {
		t.Fatalf("key changed on address move: %s vs %s", d.Key(), moved.Key())
	}
	if moved.Version != d.Version+1 {
		t.Fatalf("version not bumped: %d", moved.Version)
	}
	if moved.Group == d.Group {
		t.Fatal("group unchanged")
	}
	// Deep copy of media.
	moved.Media[0].Port = 1
	if d.Media[0].Port == 1 {
		t.Fatal("WithGroup shares media slice")
	}
}

func TestValidate(t *testing.T) {
	if err := sampleDesc().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := sampleDesc()
	bad.Name = ""
	if bad.Validate() == nil {
		t.Fatal("empty name accepted")
	}
	bad = sampleDesc()
	bad.Group = netip.MustParseAddr("10.0.0.1")
	if bad.Validate() == nil {
		t.Fatal("unicast group accepted")
	}
	bad = sampleDesc()
	bad.Start, bad.Stop = bad.Stop, bad.Start
	if bad.Validate() == nil {
		t.Fatal("stop<start accepted")
	}
	bad = sampleDesc()
	bad.Media[0].Port = 0
	if bad.Validate() == nil {
		t.Fatal("zero media port accepted")
	}
	bad = sampleDesc()
	bad.Media[0].Type = ""
	if bad.Validate() == nil {
		t.Fatal("empty media type accepted")
	}
}

func TestActive(t *testing.T) {
	d := sampleDesc()
	if d.Active(d.Start.Add(-time.Hour)) {
		t.Fatal("active before start")
	}
	if !d.Active(d.Start.Add(time.Hour)) {
		t.Fatal("inactive during window")
	}
	if d.Active(d.Stop.Add(time.Hour)) {
		t.Fatal("active after stop")
	}
	unbounded := sampleDesc()
	unbounded.Start, unbounded.Stop = time.Time{}, time.Time{}
	if !unbounded.Active(time.Now()) {
		t.Fatal("unbounded session inactive")
	}
}

func TestSDPRoundTrip(t *testing.T) {
	d := sampleDesc()
	data, err := d.MarshalSDP()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseSDP(data)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, data)
	}
	if got.Key() != d.Key() || got.Version != d.Version || got.Name != d.Name ||
		got.Info != d.Info || got.Group != d.Group || got.TTL != d.TTL ||
		!got.Start.Equal(d.Start) || !got.Stop.Equal(d.Stop) ||
		got.OriginUser != d.OriginUser {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", d, got)
	}
	if len(got.Media) != 2 || !reflect.DeepEqual(got.Media, d.Media) {
		t.Fatalf("media mismatch: %+v", got.Media)
	}
}

func TestSDPAttributesAndBandwidth(t *testing.T) {
	d := sampleDesc()
	d.BandwidthKbps = 128
	d.Attributes = []string{"tool:sdr v2.4a6", "type:test"}
	d.Media[0].Attributes = []string{"ptime:40", "recvonly"}
	data, err := d.MarshalSDP()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"b=AS:128", "a=tool:sdr v2.4a6", "a=ptime:40"} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("marshalled SDP missing %q:\n%s", want, data)
		}
	}
	got, err := ParseSDP(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.BandwidthKbps != 128 {
		t.Fatalf("bandwidth = %d", got.BandwidthKbps)
	}
	if !reflect.DeepEqual(got.Attributes, d.Attributes) {
		t.Fatalf("session attributes = %v", got.Attributes)
	}
	if !reflect.DeepEqual(got.Media[0].Attributes, d.Media[0].Attributes) {
		t.Fatalf("media attributes = %v", got.Media[0].Attributes)
	}
	if len(got.Media[1].Attributes) != 0 {
		t.Fatalf("attributes leaked to second stream: %v", got.Media[1].Attributes)
	}
}

func TestSDPBadBandwidth(t *testing.T) {
	base := string(mustMarshal(t, sampleDesc()))
	in := strings.Replace(base, "t=", "b=AS:notanumber\r\nt=", 1)
	if _, err := ParseSDP([]byte(in)); err == nil {
		t.Fatal("bad bandwidth accepted")
	}
	// Non-AS modifiers are ignored, per SDP.
	in = strings.Replace(base, "t=", "b=CT:99\r\nt=", 1)
	got, err := ParseSDP([]byte(in))
	if err != nil || got.BandwidthKbps != 0 {
		t.Fatalf("CT modifier mishandled: %v %d", err, got.BandwidthKbps)
	}
}

func TestWithGroupDeepCopiesAttributes(t *testing.T) {
	d := sampleDesc()
	d.Attributes = []string{"tool:sdr"}
	d.Media[0].Attributes = []string{"recvonly"}
	moved := d.WithGroup(netip.MustParseAddr("224.2.130.99"))
	moved.Attributes[0] = "changed"
	moved.Media[0].Attributes[0] = "changed"
	if d.Attributes[0] != "tool:sdr" || d.Media[0].Attributes[0] != "recvonly" {
		t.Fatal("WithGroup shares attribute slices")
	}
}

func TestSDPUnboundedTimes(t *testing.T) {
	d := sampleDesc()
	d.Start, d.Stop = time.Time{}, time.Time{}
	data, err := d.MarshalSDP()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "t=0 0") {
		t.Fatalf("unbounded times not zero: %s", data)
	}
	got, err := ParseSDP(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Start.IsZero() || !got.Stop.IsZero() {
		t.Fatalf("times not round-tripped as zero: %v %v", got.Start, got.Stop)
	}
}

func TestSDPInjectionSanitised(t *testing.T) {
	d := sampleDesc()
	d.Name = "evil\r\nc=IN IP4 224.9.9.9/255"
	data, err := d.MarshalSDP()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseSDP(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Group != d.Group {
		t.Fatalf("newline injection changed the group to %s", got.Group)
	}
}

func TestParseSDPErrors(t *testing.T) {
	base := string(mustMarshal(t, sampleDesc()))
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"garbage", "not sdp at all"},
		{"bad version", strings.Replace(base, "v=0", "v=1", 1)},
		{"missing origin", strings.Replace(base, "o=", "x=", 1)},
		{"bad origin addr", strings.Replace(base, "IN IP4 10.1.2.3", "IN IP4 bogus", 1)},
		{"bad connection", strings.Replace(base, "c=IN IP4", "c=IN IP6", 1)},
		{"bad ttl", strings.Replace(base, "/127", "/999", 1)},
		{"bad media port", strings.Replace(base, "m=audio 20000", "m=audio 99999999", 1)},
		{"missing name", strings.Replace(base, "s=", "q=", 1)},
	}
	for _, c := range cases {
		if _, err := ParseSDP([]byte(c.input)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func mustMarshal(t *testing.T, d *Description) []byte {
	t.Helper()
	data, err := d.MarshalSDP()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestSDPPropertyRoundTrip(t *testing.T) {
	err := quick.Check(func(id, ver uint32, name string, ttl uint8, port uint16) bool {
		if port == 0 {
			port = 1
		}
		d := &Description{
			ID:      uint64(id),
			Version: uint64(ver),
			Origin:  netip.MustParseAddr("192.168.0.1"),
			Name:    "s" + name, // never empty
			Group:   netip.MustParseAddr("239.255.0.1"),
			TTL:     mcast.TTL(ttl),
			Media:   []Media{{Type: "audio", Port: port, Proto: "RTP/AVP", Format: "0"}},
		}
		data, err := d.MarshalSDP()
		if err != nil {
			return false
		}
		got, err := ParseSDP(data)
		if err != nil {
			return false
		}
		return got.ID == d.ID && got.Version == d.Version && got.TTL == d.TTL &&
			got.Media[0].Port == port
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}
