// Package session models multicast session descriptions: the metadata a
// session directory advertises (a subset of SDP sufficient for sdr-style
// session announcements) plus lifecycle bookkeeping.
package session

import (
	"fmt"
	"net/netip"
	"time"

	"sessiondir/internal/mcast"
)

// Media is one media stream of a session (an SDP m= line).
type Media struct {
	Type   string // "audio", "video", "whiteboard", ...
	Port   uint16
	Proto  string // "RTP/AVP" typically
	Format string // payload format, e.g. "0" (PCMU) or "31" (H.261)
	// Attributes are the stream's a= lines ("ptime:40", "recvonly", ...).
	Attributes []string
}

// Description is the announced description of a multicast session.
type Description struct {
	// ID is the originator-scoped session id (SDP o= field, sess-id).
	ID uint64
	// Version increments whenever the description changes (o= sess-version).
	Version uint64
	// Origin is the announcing host.
	Origin netip.Addr
	// OriginUser is the announcing user (o= username, "-" if unknown).
	OriginUser string
	// Name is the human-readable session name (s= line).
	Name string
	// Info is an optional free-text description (i= line).
	Info string
	// Group is the session's multicast address (c= line).
	Group netip.Addr
	// TTL is the session scope (c= line TTL suffix).
	TTL mcast.TTL
	// Start and Stop bound the session's advertised lifetime (t= line).
	Start, Stop time.Time
	// BandwidthKbps is the advertised session bandwidth (b=AS: line);
	// 0 means unspecified.
	BandwidthKbps int
	// Attributes are session-level a= lines (sdr used e.g. "tool:sdr").
	Attributes []string
	// Media lists the session's media streams.
	Media []Media
}

// Key returns the stable identity of the session: origin + id. Address
// changes (clash resolution) do not change the key; description edits
// bump Version instead.
func (d *Description) Key() string {
	return fmt.Sprintf("%s/%d", d.Origin, d.ID)
}

// Validate checks the description is announceable.
func (d *Description) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("session: missing name")
	}
	if !d.Origin.IsValid() {
		return fmt.Errorf("session %q: missing origin", d.Name)
	}
	if !d.Group.IsValid() || !mcast.IsMulticast(d.Group) {
		return fmt.Errorf("session %q: group %s is not an IPv4 multicast address", d.Name, d.Group)
	}
	if !d.Stop.IsZero() && !d.Start.IsZero() && d.Stop.Before(d.Start) {
		return fmt.Errorf("session %q: stop before start", d.Name)
	}
	for i, m := range d.Media {
		if m.Type == "" {
			return fmt.Errorf("session %q: media %d missing type", d.Name, i)
		}
		if m.Port == 0 {
			return fmt.Errorf("session %q: media %d missing port", d.Name, i)
		}
	}
	return nil
}

// Active reports whether the session is within its advertised time bounds.
func (d *Description) Active(now time.Time) bool {
	if !d.Start.IsZero() && now.Before(d.Start) {
		return false
	}
	if !d.Stop.IsZero() && now.After(d.Stop) {
		return false
	}
	return true
}

// WithGroup returns a copy with a new group address and bumped version —
// the clash-resolution "modified address" re-announcement.
func (d *Description) WithGroup(group netip.Addr) *Description {
	c := *d
	c.Attributes = append([]string(nil), d.Attributes...)
	c.Media = make([]Media, len(d.Media))
	for i, m := range d.Media {
		c.Media[i] = m
		c.Media[i].Attributes = append([]string(nil), m.Attributes...)
	}
	c.Group = group
	c.Version++
	return &c
}
