package session

import (
	"bytes"
	"fmt"
	"net/netip"
	"strconv"
	"strings"
	"time"

	"sessiondir/internal/mcast"
)

// This file implements the SDP subset sdr announcements use:
//
//	v=0
//	o=<user> <sess-id> <sess-version> IN IP4 <origin>
//	s=<name>
//	i=<info>                (optional)
//	c=IN IP4 <group>/<ttl>
//	t=<start> <stop>        (NTP timestamps; 0 = unbounded)
//	m=<type> <port> <proto> <format>  (repeated)
//
// Times use the NTP epoch (1900-01-01) per SDP convention.

// ntpEpochOffset is the difference between the NTP and Unix epochs.
const ntpEpochOffset = 2208988800

func toNTP(t time.Time) uint64 {
	if t.IsZero() {
		return 0
	}
	return uint64(t.Unix() + ntpEpochOffset)
}

func fromNTP(v uint64) time.Time {
	if v == 0 {
		return time.Time{}
	}
	return time.Unix(int64(v)-ntpEpochOffset, 0).UTC()
}

// MarshalSDP renders the description in SDP form.
func (d *Description) MarshalSDP() ([]byte, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	var b strings.Builder
	user := d.OriginUser
	if user == "" {
		user = "-"
	}
	fmt.Fprintf(&b, "v=0\r\n")
	fmt.Fprintf(&b, "o=%s %d %d IN IP4 %s\r\n", user, d.ID, d.Version, d.Origin)
	fmt.Fprintf(&b, "s=%s\r\n", sanitizeLine(d.Name))
	if d.Info != "" {
		fmt.Fprintf(&b, "i=%s\r\n", sanitizeLine(d.Info))
	}
	fmt.Fprintf(&b, "c=IN IP4 %s/%d\r\n", d.Group, d.TTL)
	if d.BandwidthKbps > 0 {
		fmt.Fprintf(&b, "b=AS:%d\r\n", d.BandwidthKbps)
	}
	fmt.Fprintf(&b, "t=%d %d\r\n", toNTP(d.Start), toNTP(d.Stop))
	for _, a := range d.Attributes {
		fmt.Fprintf(&b, "a=%s\r\n", sanitizeLine(a))
	}
	for _, m := range d.Media {
		fmt.Fprintf(&b, "m=%s %d %s %s\r\n", m.Type, m.Port, m.Proto, m.Format)
		for _, a := range m.Attributes {
			fmt.Fprintf(&b, "a=%s\r\n", sanitizeLine(a))
		}
	}
	return []byte(b.String()), nil
}

// sanitizeLine strips CR/LF so free-text fields cannot break framing.
func sanitizeLine(s string) string {
	return strings.Map(func(r rune) rune {
		if r == '\r' || r == '\n' {
			return ' '
		}
		return r
	}, s)
}

// ParseSDP parses the SDP subset back into a Description.
//
// data may alias a pooled receive buffer (the zero-copy decode path):
// the parser walks it line by line without duplicating the payload, and
// every string the Description retains is a fresh per-line copy, so the
// result stays valid after the buffer is released. Ignored lines cost
// nothing.
func ParseSDP(data []byte) (*Description, error) {
	d := &Description{}
	sawV, sawO, sawS, sawC, sawT := false, false, false, false, false
	rest := data
	for lineNo := 1; len(rest) > 0; lineNo++ {
		var lineB []byte
		if i := bytes.IndexByte(rest, '\n'); i >= 0 {
			lineB, rest = rest[:i], rest[i+1:]
		} else {
			lineB, rest = rest, nil
		}
		lineB = bytes.TrimRight(lineB, "\r")
		if len(lineB) == 0 {
			continue
		}
		if len(lineB) < 2 || lineB[1] != '=' {
			return nil, fmt.Errorf("sdp: line %d: malformed %q", lineNo, lineB)
		}
		// One small copy per meaningful line; the switch below may retain
		// val (or substrings of it) in the Description.
		key, val := lineB[0], string(lineB[2:])
		switch key {
		case 'v':
			if val != "0" {
				return nil, fmt.Errorf("sdp: unsupported version %q", val)
			}
			sawV = true
		case 'o':
			f := strings.Fields(val)
			if len(f) != 6 || f[3] != "IN" || f[4] != "IP4" {
				return nil, fmt.Errorf("sdp: malformed origin %q", val)
			}
			id, err := strconv.ParseUint(f[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("sdp: origin sess-id: %w", err)
			}
			ver, err := strconv.ParseUint(f[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("sdp: origin sess-version: %w", err)
			}
			addr, err := netip.ParseAddr(f[5])
			if err != nil {
				return nil, fmt.Errorf("sdp: origin address: %w", err)
			}
			d.OriginUser, d.ID, d.Version, d.Origin = f[0], id, ver, addr
			sawO = true
		case 's':
			d.Name = val
			sawS = true
		case 'i':
			d.Info = val
		case 'c':
			f := strings.Fields(val)
			if len(f) != 3 || f[0] != "IN" || f[1] != "IP4" {
				return nil, fmt.Errorf("sdp: malformed connection %q", val)
			}
			addrTTL := strings.SplitN(f[2], "/", 2)
			addr, err := netip.ParseAddr(addrTTL[0])
			if err != nil {
				return nil, fmt.Errorf("sdp: connection address: %w", err)
			}
			d.Group = addr
			if len(addrTTL) == 2 {
				ttl, err := strconv.ParseUint(addrTTL[1], 10, 8)
				if err != nil {
					return nil, fmt.Errorf("sdp: connection TTL: %w", err)
				}
				d.TTL = mcast.TTL(ttl)
			}
			sawC = true
		case 't':
			f := strings.Fields(val)
			if len(f) != 2 {
				return nil, fmt.Errorf("sdp: malformed time %q", val)
			}
			start, err := strconv.ParseUint(f[0], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("sdp: start time: %w", err)
			}
			stop, err := strconv.ParseUint(f[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("sdp: stop time: %w", err)
			}
			d.Start, d.Stop = fromNTP(start), fromNTP(stop)
			sawT = true
		case 'b':
			// Only the AS (application-specific, kbps) modifier is used.
			if rest, ok := strings.CutPrefix(val, "AS:"); ok {
				kbps, err := strconv.Atoi(rest)
				if err != nil || kbps < 0 {
					return nil, fmt.Errorf("sdp: malformed bandwidth %q", val)
				}
				d.BandwidthKbps = kbps
			}
		case 'a':
			// Attributes attach to the most recent m= line, or to the
			// session if none has appeared yet.
			if len(d.Media) > 0 {
				m := &d.Media[len(d.Media)-1]
				m.Attributes = append(m.Attributes, val)
			} else {
				d.Attributes = append(d.Attributes, val)
			}
		case 'm':
			f := strings.Fields(val)
			if len(f) < 4 {
				return nil, fmt.Errorf("sdp: malformed media %q", val)
			}
			port, err := strconv.ParseUint(f[1], 10, 16)
			if err != nil {
				return nil, fmt.Errorf("sdp: media port: %w", err)
			}
			d.Media = append(d.Media, Media{
				Type:   f[0],
				Port:   uint16(port),
				Proto:  f[2],
				Format: strings.Join(f[3:], " "),
			})
		default:
			// Unknown lines are ignored, as SDP requires.
		}
	}
	if !sawV || !sawO || !sawS || !sawC || !sawT {
		return nil, fmt.Errorf("sdp: missing mandatory line (v/o/s/c/t)")
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
