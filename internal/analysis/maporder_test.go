package analysis

import "testing"

func TestMapOrderFixture(t *testing.T) {
	diags := runFixture(t, "maporder", MapOrder)
	if len(diags) != 5 {
		t.Errorf("got %d diagnostics, want 5:\n%s", len(diags), diagnosticSummary(diags))
	}
}
