package analysis

import (
	"sort"
	"strings"
)

// A waiver is one //mclint:<name> comment. It suppresses diagnostics of
// the named analyzer on its own line (trailing comment) and on the line
// directly below it (lead comment). Anything after the name is a free-
// form justification for the reader.
type waiver struct {
	file string
	line int
	name string
}

const waiverPrefix = "mclint:"

// collectWaivers scans a package's comments for waivers. Waivers naming
// an unknown analyzer are reported as diagnostics of the pseudo-analyzer
// "mclint": a typo in a waiver must not silently stop suppressing (or
// silently suppress nothing), so it fails the lint run instead.
func collectWaivers(pkg *Package, diags *[]Diagnostic) []waiver {
	var out []waiver
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+waiverPrefix)
				if !ok {
					continue
				}
				name := text
				if i := strings.IndexAny(text, " \t"); i >= 0 {
					name = text[:i]
				}
				pos := pkg.Fset.Position(c.Pos())
				if ByName(name) == nil {
					*diags = append(*diags, Diagnostic{
						Analyzer: WaiverDiagnostic,
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  "unknown analyzer \"" + name + "\" in waiver (have " + analyzerNames() + ")",
					})
					continue
				}
				out = append(out, waiver{file: pos.Filename, line: pos.Line, name: name})
			}
		}
	}
	return out
}

// applyWaivers drops diagnostics covered by a waiver. Diagnostics about
// the waivers themselves (analyzer "mclint") are never waivable.
func applyWaivers(diags []Diagnostic, waivers []waiver) []Diagnostic {
	if len(waivers) == 0 {
		return diags
	}
	type key struct {
		file string
		line int
		name string
	}
	covered := make(map[key]bool, 2*len(waivers))
	for _, w := range waivers {
		covered[key{w.file, w.line, w.name}] = true     // trailing comment
		covered[key{w.file, w.line + 1, w.name}] = true // lead comment
	}
	kept := diags[:0]
	for _, d := range diags {
		if d.Analyzer != WaiverDiagnostic && covered[key{d.File, d.Line, d.Analyzer}] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// sortDiagnostics orders findings by file, line, column, then analyzer —
// mclint's own output must be deterministic.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
