package analysis

import "testing"

func TestMetricNameFixture(t *testing.T) {
	diags := runFixture(t, "metricname", MetricName)
	if len(diags) != 6 {
		t.Errorf("got %d diagnostics, want 6:\n%s", len(diags), diagnosticSummary(diags))
	}
}
