package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path (how analyzers are targeted).
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// A Loader type-checks packages of a single module using only the
// standard library: module-internal imports are resolved by mapping the
// import path onto a directory under the module root and recursing;
// everything else (the standard library) goes through go/importer's
// source importer, which type-checks GOROOT packages from source. This
// keeps go.mod dependency-free — no golang.org/x/tools.
//
// Files are filtered by //go:build constraints and filename GOOS/GOARCH
// suffixes for the host platform, mirroring what `go build` would
// compile here. Test files are excluded.
type Loader struct {
	Fset *token.FileSet
	// ModuleDir is the filesystem root of the module being analyzed.
	ModuleDir string
	// ModulePath is the module's import path prefix (from go.mod).
	ModulePath string

	std  types.ImporterFrom
	pkgs map[string]*Package // memoized by import path
}

// NewLoader builds a Loader for the module rooted at moduleDir, reading
// the module path from its go.mod.
func NewLoader(moduleDir string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(moduleDir, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: reading go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module line in %s/go.mod", moduleDir)
	}
	return newLoader(moduleDir, modPath), nil
}

// The standard-library import cache is process-wide: one FileSet and one
// source importer shared by every Loader. The source importer memoizes
// the GOROOT packages it type-checks, but only per importer instance —
// before this cache, every Loader (one per fixture test, one per mclint
// run) re-type-checked sync, fmt, net, and their transitive closure from
// source. Sharing the importer means each stdlib package is checked once
// per process; the FileSet must be shared with it so stdlib positions
// stay coherent. Module packages remain per-Loader (they differ per
// fixture and may be reloaded after edits).
var (
	sharedFset    = token.NewFileSet()
	sharedStdOnce sync.Once
	sharedStd     types.ImporterFrom
	sharedStdMu   sync.Mutex // the source importer is not documented concurrency-safe
)

func stdImporter() types.ImporterFrom {
	sharedStdOnce.Do(func() {
		sharedStd = importer.ForCompiler(sharedFset, "source", nil).(types.ImporterFrom)
	})
	return sharedStd
}

func newLoader(moduleDir, modulePath string) *Loader {
	return &Loader{
		Fset:       sharedFset,
		ModuleDir:  moduleDir,
		ModulePath: modulePath,
		std:        stdImporter(),
		pkgs:       map[string]*Package{},
	}
}

// Load type-checks the module package with the given import path
// (memoized; transitive module-internal deps load recursively).
func (l *Loader) Load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	dir, ok := l.moduleDirFor(importPath)
	if !ok {
		return nil, fmt.Errorf("analysis: %q is not in module %s", importPath, l.ModulePath)
	}
	return l.loadDir(dir, importPath)
}

// LoadDir type-checks the single package in dir under the given import
// path without requiring it to live inside the module tree. Fixture
// packages under testdata/ are loaded this way.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	return l.loadDir(dir, importPath)
}

func (l *Loader) moduleDirFor(importPath string) (string, bool) {
	if importPath == l.ModulePath {
		return l.ModuleDir, true
	}
	rel, ok := strings.CutPrefix(importPath, l.ModulePath+"/")
	if !ok {
		return "", false
	}
	return filepath.Join(l.ModuleDir, filepath.FromSlash(rel)), true
}

func (l *Loader) loadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names) // deterministic file order → deterministic diagnostics
	var files []*ast.File
	for _, name := range names {
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		if !fileMatchesPlatform(name, src) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	p := &Package{Path: importPath, Fset: l.Fset, Files: files, Pkg: pkg, Info: info}
	l.pkgs[importPath] = p
	return p, nil
}

// Import implements types.Importer for the type-checker's benefit.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths are
// type-checked from the module tree, everything else is delegated to the
// stdlib source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if mdir, ok := l.moduleDirFor(path); ok {
		if p, cached := l.pkgs[path]; cached {
			return p.Pkg, nil
		}
		p, err := l.loadDir(mdir, path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	sharedStdMu.Lock()
	defer sharedStdMu.Unlock()
	return l.std.ImportFrom(path, dir, mode)
}

// fileMatchesPlatform reports whether a file would be compiled on the
// host GOOS/GOARCH, honoring both filename suffix conventions
// (name_GOOS.go, name_GOOS_GOARCH.go, name_GOARCH.go) and //go:build
// constraint lines. mclint analyzes the platform it runs on; the CI
// matrix is where other platforms get covered.
func fileMatchesPlatform(name string, src []byte) bool {
	if !suffixMatches(name) {
		return false
	}
	expr, ok := buildConstraint(src)
	if !ok {
		return true
	}
	return expr.Eval(func(tag string) bool {
		switch tag {
		case runtime.GOOS, runtime.GOARCH, "gc":
			return true
		case "unix":
			return unixGOOS[runtime.GOOS]
		case "cgo":
			return false
		}
		// Language-version tags (go1.N): this toolchain satisfies any
		// version the module can require.
		return strings.HasPrefix(tag, "go1.")
	})
}

var unixGOOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "linux": true,
	"netbsd": true, "openbsd": true, "solaris": true,
}

var knownGOOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownGOARCH = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

func suffixMatches(name string) bool {
	base := strings.TrimSuffix(name, ".go")
	parts := strings.Split(base, "_")
	// Trailing _GOARCH (optionally preceded by _GOOS), or trailing _GOOS.
	if n := len(parts); n > 1 && knownGOARCH[parts[n-1]] {
		if parts[n-1] != runtime.GOARCH {
			return false
		}
		if n > 2 && knownGOOS[parts[n-2]] && parts[n-2] != runtime.GOOS {
			return false
		}
		return true
	}
	if n := len(parts); n > 1 && knownGOOS[parts[n-1]] && parts[n-1] != runtime.GOOS {
		return false
	}
	return true
}

func buildConstraint(src []byte) (constraint.Expr, bool) {
	for _, line := range strings.Split(string(src), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "package ") {
			break
		}
		if constraint.IsGoBuild(line) {
			expr, err := constraint.Parse(line)
			if err != nil {
				return nil, false
			}
			return expr, true
		}
	}
	return nil, false
}
