package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// BufLease machine-checks the transport.Message buffer-ownership
// contract (DESIGN.md §13): a received message's Data points into a
// pooled receive buffer that stays valid only until Message.Release.
// The contract is pure convention — nothing at runtime stops a handler
// from stashing a slice of Data and reading it after the buffer has
// been re-issued to the read loop — so this analyzer turns it into a
// machine-checked invariant, the precondition for the zero-copy SAP
// decode path that aliases the receive buffer.
//
// Per function (declarations and literals alike, each with its own
// CFG), the analysis runs a forward dataflow over message variables
// and the []byte values that may alias their Data — through plain
// assignments, slicing, and range bindings; string(...) and []byte
// conversions, copy, and append-spread are copies and break aliasing.
// It reports:
//
//   - use after Release: Data (or an alias of it) touched on a path
//     where Release has definitely or possibly already run;
//   - double Release: a second Release reached, including "possible"
//     variants where only some converging paths released (deferred
//     Releases are applied at each return);
//   - skipped Release: a return path that does not release a message
//     the function releases on other paths — the early-return error
//     leak. Functions that never call Release make no promise and are
//     not checked (not releasing is legal: the buffer falls to the GC);
//   - escaping aliases: Data aliases stored to fields, globals, or
//     channels, returned, or captured by a go statement, in a function
//     that also Releases the message — retention and release together
//     are a use-after-free in the making; copy the bytes first.
//
// Known over-approximations (DESIGN.md §14): the analysis is
// intraprocedural — passing an alias to a callee that retains it (a
// decode, say) is not tracked, and a message value copied into a second
// variable is tracked as an independent cell. Deliberate exceptions
// carry an //mclint:buflease waiver with the justification.
var BufLease = &Analyzer{
	Name: "buflease",
	Doc: "enforce the transport.Message Release ownership contract: no use " +
		"after Release, no double or skipped Release, no escaping Data aliases",
	Packages: []string{
		"sessiondir",
		"sessiondir/internal/transport",
		"sessiondir/internal/chaos",
		"sessiondir/internal/des",
		"sessiondir/examples/sapdump",
	},
	Run: runBufLease,
}

// Message cell status bits. A cell's abstract value is the set of
// conditions the buffer may be in on some path reaching this point.
const (
	stLive     uint8 = 1 << iota // owned here, not yet released
	stReleased                   // Release has run
	stEscaped                    // ownership handed away (call arg, store, return)
)

func runBufLease(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					analyzeBufLease(pass, fn.Type, fn.Body)
				}
			case *ast.FuncLit:
				analyzeBufLease(pass, fn.Type, fn.Body)
			}
			return true
		})
	}
}

// blState is the abstract state: message cells with status bits, alias
// variables with their may-point-to cell sets, and the must-run
// deferred Releases registered so far.
type blState struct {
	msg    map[types.Object]uint8
	alias  map[types.Object]map[types.Object]bool
	defers []deferredRelease
}

type deferredRelease struct {
	cell types.Object
	pos  token.Pos
}

// blLattice joins states pointwise: status bits union, alias sets
// union, deferred Releases intersect (a defer registered on only one
// incoming path is not guaranteed to run).
type blLattice struct{}

func (blLattice) Clone(s *blState) *blState {
	c := &blState{
		msg:    make(map[types.Object]uint8, len(s.msg)),
		alias:  make(map[types.Object]map[types.Object]bool, len(s.alias)),
		defers: append([]deferredRelease(nil), s.defers...),
	}
	for k, v := range s.msg {
		c.msg[k] = v
	}
	for k, set := range s.alias {
		cs := make(map[types.Object]bool, len(set))
		for cell := range set {
			cs[cell] = true
		}
		c.alias[k] = cs
	}
	return c
}

func (l blLattice) Join(a, b *blState) *blState {
	j := l.Clone(a)
	for k, v := range b.msg {
		j.msg[k] |= v
	}
	for k, set := range b.alias {
		dst := j.alias[k]
		if dst == nil {
			dst = make(map[types.Object]bool, len(set))
			j.alias[k] = dst
		}
		for cell := range set {
			dst[cell] = true
		}
	}
	j.defers = intersectDefers(a.defers, b.defers)
	return j
}

func (blLattice) Equal(a, b *blState) bool {
	if len(a.msg) != len(b.msg) || len(a.alias) != len(b.alias) || len(a.defers) != len(b.defers) {
		return false
	}
	for k, v := range a.msg {
		if b.msg[k] != v {
			return false
		}
	}
	for k, set := range a.alias {
		bset, ok := b.alias[k]
		if !ok || len(bset) != len(set) {
			return false
		}
		for cell := range set {
			if !bset[cell] {
				return false
			}
		}
	}
	for i, d := range a.defers {
		if b.defers[i].cell != d.cell {
			return false
		}
	}
	return true
}

func intersectDefers(a, b []deferredRelease) []deferredRelease {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	inB := map[types.Object]bool{}
	for _, d := range b {
		inB[d.cell] = true
	}
	var out []deferredRelease
	for _, d := range a {
		if inB[d.cell] {
			out = append(out, d)
		}
	}
	return out
}

// bufleaseFn analyzes one function body.
type bufleaseFn struct {
	pass *Pass
	// releases marks message cells Released anywhere in the body
	// (including nested literals): the function's ownership promise.
	// Escape and skipped-Release findings only apply to promising
	// functions — a handler that never releases keeps the buffer alive
	// by construction.
	releases map[types.Object]bool
	report   bool
	seen     map[string]bool // dedup: defer-application reports repeat per return path
}

func analyzeBufLease(pass *Pass, typ *ast.FuncType, body *ast.BlockStmt) {
	a := &bufleaseFn{
		pass:     pass,
		releases: map[types.Object]bool{},
		seen:     map[string]bool{},
	}
	// Ownership promise pre-scan (syntactic, includes nested literals:
	// a closure releasing the message still ends the buffer's life).
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if cell, ok := a.releaseCall(call); ok {
				a.releases[cell] = true
			}
		}
		return true
	})

	entry := &blState{msg: map[types.Object]uint8{}, alias: map[types.Object]map[types.Object]bool{}}
	if typ != nil && typ.Params != nil {
		for _, field := range typ.Params.List {
			for _, name := range field.Names {
				if obj := a.pass.Info.ObjectOf(name); obj != nil && isMessageType(obj.Type()) {
					entry.msg[obj] = stLive
				}
			}
		}
	}

	cfg := BuildCFG(body)
	lat := blLattice{}
	res := Forward(cfg, Lattice[*blState](lat), entry, func(s *blState, n ast.Node) *blState {
		a.transfer(s, n)
		return s
	})
	a.report = true
	Replay(cfg, Lattice[*blState](lat), res, func(s *blState, n ast.Node) *blState {
		a.transfer(s, n)
		return s
	})
}

func (a *bufleaseFn) reportf(pos token.Pos, format string, args ...any) {
	if !a.report {
		return
	}
	p := a.pass.Fset.Position(pos)
	key := p.String() + format
	if a.seen[key] {
		return
	}
	a.seen[key] = true
	a.pass.Reportf(pos, format, args...)
}

// transfer interprets one CFG node, mutating s.
func (a *bufleaseFn) transfer(s *blState, n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			a.eval(s, rhs)
		}
		if len(n.Lhs) == len(n.Rhs) {
			for i := range n.Lhs {
				a.assign(s, n.Lhs[i], n.Rhs[i])
			}
		} else {
			// Tuple assignment from a call: results are fresh values.
			for _, lhs := range n.Lhs {
				a.clobber(s, lhs)
			}
		}

	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					a.eval(s, v)
				}
				if len(vs.Names) == len(vs.Values) {
					for i := range vs.Names {
						a.assign(s, vs.Names[i], vs.Values[i])
					}
				}
			}
		}

	case *ast.ExprStmt:
		a.eval(s, n.X)

	case *ast.IncDecStmt:
		a.eval(s, n.X)

	case *ast.SendStmt:
		a.eval(s, n.Chan)
		a.eval(s, n.Value)
		a.escapeCheck(s, n.Value, "sent on a channel")

	case *ast.DeferStmt:
		if cell, ok := a.releaseCall(n.Call); ok {
			s.defers = append(s.defers, deferredRelease{cell: cell, pos: n.Call.Pos()})
			return
		}
		// Arguments of any deferred call evaluate now.
		for _, arg := range n.Call.Args {
			a.eval(s, arg)
		}

	case *ast.GoStmt:
		for _, arg := range n.Call.Args {
			a.eval(s, arg)
			a.escapeCheck(s, arg, "passed to a goroutine")
		}
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
			a.captureCheck(s, lit)
		}

	case *ast.ReturnStmt:
		for _, r := range n.Results {
			a.eval(s, r)
			a.escapeCheck(s, r, "returned")
			if cell, ok := a.messageVar(r); ok {
				s.msg[cell] = s.msg[cell]&^stLive | stEscaped
			}
		}
		a.applyDefers(s)
		a.leakCheck(s, n.Pos())

	case *ast.BlockStmt:
		// The implicit-return sentinel (see BuildCFG): the function
		// falls off the end of this body.
		a.applyDefers(s)
		a.leakCheck(s, n.Rbrace)

	case *ast.RangeStmt:
		// Per-iteration bindings. Ranging over a [][]byte of aliases
		// binds the value variable to the same cells; a range over
		// []transport.Message rebinds the loop variable to a fresh live
		// message each iteration (so releasing it inside the body is
		// not a double Release across the back edge).
		cells := a.aliasCells(s, n.X)
		for _, bind := range []ast.Expr{n.Key, n.Value} {
			id, ok := bind.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := a.pass.Info.ObjectOf(id)
			if obj == nil {
				continue
			}
			switch {
			case isMessageType(obj.Type()):
				// Drop the cell entirely: the body's first touch makes
				// it live again (see status), and the loop-exit edge
				// carries no stale obligation for a variable that only
				// exists per iteration.
				delete(s.msg, obj)
			case isByteSlice(obj.Type()) && len(cells) > 0:
				s.alias[obj] = copyCells(cells)
			default:
				delete(s.alias, obj)
			}
		}

	case ast.Expr:
		a.eval(s, n)
	}
}

// assign interprets one lhs = rhs binding after rhs has been evaluated.
func (a *bufleaseFn) assign(s *blState, lhs, rhs ast.Expr) {
	if id, ok := lhs.(*ast.Ident); ok {
		obj := a.pass.Info.ObjectOf(id)
		if obj == nil || id.Name == "_" {
			return
		}
		if a.pass.Pkg != nil && obj.Parent() == a.pass.Pkg.Scope() {
			// Assignment to a package-level variable leaves the frame
			// just like a field store.
			a.escapeCheck(s, rhs, "stored in a package-level variable")
			if cell, ok := a.messageVar(rhs); ok {
				s.msg[cell] = a.status(s, cell)&^stLive | stEscaped
			}
			return
		}
		if isMessageType(obj.Type()) {
			if src, ok := a.messageVar(rhs); ok {
				// A message copy shares the buffer; tracked as an
				// independent cell with the source's current status
				// (documented over-approximation).
				s.msg[obj] = a.status(s, src)
			} else {
				s.msg[obj] = stLive
			}
			return
		}
		if cells := a.aliasCells(s, rhs); len(cells) > 0 {
			s.alias[obj] = copyCells(cells)
		} else {
			delete(s.alias, obj)
		}
		return
	}
	// Store through a selector, index, or dereference: the value
	// outlives this function's frame as far as we can tell.
	a.escapeCheck(s, rhs, "stored outside the handler frame")
	if cell, ok := a.messageVar(rhs); ok {
		s.msg[cell] = a.status(s, cell)&^stLive | stEscaped
	}
}

func (a *bufleaseFn) clobber(s *blState, lhs ast.Expr) {
	if id, ok := lhs.(*ast.Ident); ok {
		if obj := a.pass.Info.ObjectOf(id); obj != nil {
			delete(s.alias, obj)
			if isMessageType(obj.Type()) {
				s.msg[obj] = stLive
			}
		}
	}
}

// eval walks an expression in evaluation order: use-checks aliases and
// Data selectors, interprets Release calls, and treats message values
// passed to calls as ownership transfers. Function literal bodies are
// skipped — they run later and are analyzed separately.
func (a *bufleaseFn) eval(s *blState, e ast.Expr) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.FuncLit:
		return

	case *ast.Ident:
		if set, ok := s.alias[a.pass.Info.ObjectOf(e)]; ok {
			for cell := range set {
				a.useCheck(s, cell, e.Pos(), "alias of "+cell.Name()+".Data")
			}
		}

	case *ast.SelectorExpr:
		if cell, ok := a.messageVar(e.X); ok {
			if e.Sel.Name == "Data" {
				a.useCheck(s, cell, e.Pos(), cell.Name()+".Data")
			}
			return // other fields (From) carry no buffer
		}
		a.eval(s, e.X)

	case *ast.CallExpr:
		a.evalCall(s, e)

	case *ast.ParenExpr:
		a.eval(s, e.X)

	case *ast.StarExpr:
		a.eval(s, e.X)

	case *ast.UnaryExpr:
		a.eval(s, e.X)

	case *ast.BinaryExpr:
		a.eval(s, e.X)
		a.eval(s, e.Y)

	case *ast.IndexExpr:
		a.eval(s, e.X)
		a.eval(s, e.Index)

	case *ast.SliceExpr:
		a.eval(s, e.X)
		a.eval(s, e.Low)
		a.eval(s, e.High)
		a.eval(s, e.Max)

	case *ast.TypeAssertExpr:
		a.eval(s, e.X)

	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				a.eval(s, kv.Value)
				continue
			}
			a.eval(s, el)
		}

	case *ast.KeyValueExpr:
		a.eval(s, e.Value)
	}
}

func (a *bufleaseFn) evalCall(s *blState, call *ast.CallExpr) {
	// Release on a message: the ownership event itself.
	if cell, ok := a.releaseCall(call); ok {
		st := a.status(s, cell)
		switch {
		case st&stReleased != 0 && st&stLive != 0:
			a.reportf(call.Pos(),
				"possible double Release of %s: already released on a converging path", cell.Name())
		case st&stReleased != 0:
			a.reportf(call.Pos(), "double Release of %s", cell.Name())
		}
		s.msg[cell] = stReleased
		return
	}
	// Conversions (string(x), []byte(x), T(x)) copy or rewrap; they are
	// not calls and transfer no ownership.
	if tv, ok := a.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		for _, arg := range call.Args {
			a.eval(s, arg)
		}
		return
	}
	a.eval(s, call.Fun)
	for _, arg := range call.Args {
		a.eval(s, arg)
		if cell, ok := a.messageVar(arg); ok {
			// Passing the message itself may transfer ownership: the
			// callee can release or retain it. Clear the leak
			// obligation but keep the release history for
			// use-after-Release checks.
			s.msg[cell] = a.status(s, cell)&^stLive | stEscaped
		}
	}
}

// useCheck reports touching a buffer whose message may already have
// been released.
func (a *bufleaseFn) useCheck(s *blState, cell types.Object, pos token.Pos, what string) {
	st := a.status(s, cell)
	switch {
	case st&stReleased != 0 && st&(stLive|stEscaped) != 0:
		a.reportf(pos, "%s may be used after Release (released on some paths); copy before releasing or waive with //mclint:buflease", what)
	case st&stReleased != 0:
		a.reportf(pos, "%s used after Release; the buffer may already be back in the pool", what)
	}
}

// escapeCheck reports an alias of a released message's Data leaving the
// frame. Only functions that Release the message make that a hazard.
func (a *bufleaseFn) escapeCheck(s *blState, e ast.Expr, how string) {
	cells := a.aliasCells(s, e)
	if len(cells) == 0 {
		return
	}
	for _, cell := range sortedCells(cells) {
		if a.releases[cell] {
			a.reportf(e.Pos(),
				"alias of %s.Data %s while %s is Released in this function; copy the bytes first",
				cell.Name(), how, cell.Name())
		}
	}
}

// captureCheck reports a go-routine literal capturing message state by
// reference when the enclosing function releases the buffer.
func (a *bufleaseFn) captureCheck(s *blState, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := a.pass.Info.ObjectOf(id)
		if obj == nil {
			return true
		}
		if set, ok := s.alias[obj]; ok {
			for _, cell := range sortedCells(set) {
				if a.releases[cell] {
					a.reportf(id.Pos(),
						"goroutine captures alias of %s.Data while %s is Released in this function; copy the bytes first",
						cell.Name(), cell.Name())
				}
			}
		}
		if isMessageType(obj.Type()) && a.releases[obj] {
			a.reportf(id.Pos(),
				"goroutine captures message %s while it is Released in this function; copy m.Data first",
				obj.Name())
		}
		return true
	})
}

// applyDefers runs the registered deferred Releases (in reverse
// registration order, as the runtime would).
func (a *bufleaseFn) applyDefers(s *blState) {
	for i := len(s.defers) - 1; i >= 0; i-- {
		d := s.defers[i]
		st := a.status(s, d.cell)
		switch {
		case st&stReleased != 0 && st&stLive != 0:
			a.reportf(d.pos,
				"possible double Release of %s: deferred Release runs after an explicit Release on a converging path", d.cell.Name())
		case st&stReleased != 0:
			a.reportf(d.pos, "double Release of %s: deferred Release runs after an explicit Release", d.cell.Name())
		}
		s.msg[d.cell] = stReleased
	}
}

// leakCheck fires at each function exit: a message this function
// promises to release (Release appears somewhere in the body) must not
// still be live here.
func (a *bufleaseFn) leakCheck(s *blState, pos token.Pos) {
	for _, cell := range sortedMsgCells(s.msg) {
		st := s.msg[cell]
		if !a.releases[cell] || st&stLive == 0 || st&stEscaped != 0 {
			continue
		}
		if st&stReleased != 0 {
			a.reportf(pos,
				"%s.Release() may be skipped on this return path (released on other paths)", cell.Name())
		} else {
			a.reportf(pos,
				"%s.Release() is skipped on this return path but called on others; release on every path or none", cell.Name())
		}
	}
}

// status reads a cell's bits, treating a first touch of an
// outer-scope message variable (free variable in a closure) as live.
func (a *bufleaseFn) status(s *blState, cell types.Object) uint8 {
	if st, ok := s.msg[cell]; ok {
		return st
	}
	s.msg[cell] = stLive
	return stLive
}

// messageVar matches an identifier (possibly &ident or parenthesized)
// denoting a variable of type transport.Message or *transport.Message.
func (a *bufleaseFn) messageVar(e ast.Expr) (types.Object, bool) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return a.messageVar(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return a.messageVar(e.X)
		}
	case *ast.StarExpr:
		return a.messageVar(e.X)
	case *ast.Ident:
		obj := a.pass.Info.ObjectOf(e)
		if obj != nil && isMessageType(obj.Type()) {
			return obj, true
		}
	}
	return nil, false
}

// releaseCall matches m.Release() on a message variable.
func (a *bufleaseFn) releaseCall(call *ast.CallExpr) (types.Object, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" || len(call.Args) != 0 {
		return nil, false
	}
	return a.messageVar(sel.X)
}

// aliasCells computes the message cells an expression's value may
// alias. Conversions and copies (string(x), []byte(x), copy, unknown
// calls) break aliasing; slicing, parenthesizing, and appending slice
// elements preserve it.
func (a *bufleaseFn) aliasCells(s *blState, e ast.Expr) map[types.Object]bool {
	switch e := e.(type) {
	case *ast.Ident:
		if set, ok := s.alias[a.pass.Info.ObjectOf(e)]; ok {
			return set
		}
	case *ast.SelectorExpr:
		if cell, ok := a.messageVar(e.X); ok && e.Sel.Name == "Data" {
			return map[types.Object]bool{cell: true}
		}
	case *ast.ParenExpr:
		return a.aliasCells(s, e.X)
	case *ast.SliceExpr:
		return a.aliasCells(s, e.X)
	case *ast.CallExpr:
		// append(dst, elems...) aliases dst's backing array, and keeps
		// slice-typed elements alive inside it. An ellipsis spread of a
		// byte slice copies bytes and breaks aliasing.
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "append" && len(e.Args) > 0 {
			if _, isBuiltin := a.pass.Info.Uses[id].(*types.Builtin); isBuiltin {
				out := map[types.Object]bool{}
				for cell := range a.aliasCells(s, e.Args[0]) {
					out[cell] = true
				}
				for _, arg := range e.Args[1:] {
					if e.Ellipsis != token.NoPos && arg == e.Args[len(e.Args)-1] && isByteSlice(a.pass.TypeOf(arg)) {
						continue // append(dst, src...) copies the bytes
					}
					if isByteSlice(a.pass.TypeOf(arg)) {
						for cell := range a.aliasCells(s, arg) {
							out[cell] = true
						}
					}
				}
				return out
			}
		}
	}
	return nil
}

// isMessageType matches transport.Message (by package name and type
// name, so fixture stubs exercise the analyzer without importing the
// module), optionally behind a pointer.
func isMessageType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Message" &&
		obj.Pkg() != nil && obj.Pkg().Name() == "transport"
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

func copyCells(set map[types.Object]bool) map[types.Object]bool {
	out := make(map[types.Object]bool, len(set))
	for cell := range set {
		out[cell] = true
	}
	return out
}

func sortedCells(set map[types.Object]bool) []types.Object {
	out := make([]types.Object, 0, len(set))
	for cell := range set {
		out = append(out, cell)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

func sortedMsgCells(m map[types.Object]uint8) []types.Object {
	out := make([]types.Object, 0, len(m))
	for cell := range m {
		out = append(out, cell)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}
