package analysis

import "testing"

func TestLoopLockFixture(t *testing.T) {
	diags := runFixture(t, "looplock", LoopLock)
	if len(diags) != 3 {
		t.Errorf("got %d diagnostics, want 3:\n%s", len(diags), diagnosticSummary(diags))
	}
}
