package analysis

import "testing"

func TestLoopLockFixture(t *testing.T) {
	diags := runFixture(t, "looplock", LoopLock)
	if len(diags) != 4 {
		t.Errorf("got %d diagnostics, want 4:\n%s", len(diags), diagnosticSummary(diags))
	}
}
