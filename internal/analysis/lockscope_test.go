package analysis

import "testing"

func TestLockScopeFixture(t *testing.T) {
	diags := runFixture(t, "lockscope", LockScope)
	if len(diags) != 6 {
		t.Errorf("got %d diagnostics, want 6:\n%s", len(diags), diagnosticSummary(diags))
	}
}
