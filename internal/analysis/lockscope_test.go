package analysis

import "testing"

func TestLockScopeFixture(t *testing.T) {
	diags := runFixture(t, "lockscope", LockScope)
	if len(diags) != 3 {
		t.Errorf("got %d diagnostics, want 3:\n%s", len(diags), diagnosticSummary(diags))
	}
}
