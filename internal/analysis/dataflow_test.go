package analysis

import (
	"go/ast"
	"testing"
)

// varSet is the abstract state for the test analyses: a set of variable
// names with some property ("definitely assigned" under must semantics,
// "possibly assigned" under may semantics).
type varSet map[string]bool

// varLattice joins by intersection (must) or union (may).
type varLattice struct{ must bool }

func (varLattice) Clone(s varSet) varSet {
	c := make(varSet, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func (l varLattice) Join(a, b varSet) varSet {
	out := varSet{}
	if l.must {
		for k := range a {
			if b[k] {
				out[k] = true
			}
		}
		return out
	}
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func (varLattice) Equal(a, b varSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// assignTransfer marks identifiers assigned by a node.
func assignTransfer(s varSet, n ast.Node) varSet {
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				s[id.Name] = true
			}
		}
	}
	return s
}

func TestForwardMustAssignBranches(t *testing.T) {
	_, body := parseFuncBody(t, `
if c {
	x = 1
} else {
	x = 2
}
if d {
	y = 1
}`)
	g := BuildCFG(body)

	must := Forward[varSet](g, varLattice{must: true}, varSet{}, assignTransfer)
	if !must.Converged {
		t.Fatal("must analysis did not converge")
	}
	exit := must.In[g.Exit.Index]
	if !exit["x"] {
		t.Error("x assigned on both branches but not in the must-set at Exit")
	}
	if exit["y"] {
		t.Error("y assigned on one branch only but appears in the must-set at Exit")
	}

	may := Forward[varSet](g, varLattice{}, varSet{}, assignTransfer)
	if e := may.In[g.Exit.Index]; !e["x"] || !e["y"] {
		t.Errorf("may-set at Exit = %v, want x and y", e)
	}
}

func TestForwardLoopFixpoint(t *testing.T) {
	// y's assignment depends on x's, which only happens inside the loop:
	// the may-set at the head grows across iterations, so the worklist
	// must revisit the body before converging.
	_, body := parseFuncBody(t, `
for c {
	if x {
		y = 1
	}
	x = 1
}`)
	g := BuildCFG(body)
	may := Forward[varSet](g, varLattice{}, varSet{}, assignTransfer)
	if !may.Converged {
		t.Fatal("loop analysis did not converge")
	}
	if e := may.In[g.Exit.Index]; !e["x"] || !e["y"] {
		t.Errorf("may-set at Exit = %v, want both x and y (second iteration reaches y)", e)
	}
	must := Forward[varSet](g, varLattice{must: true}, varSet{}, assignTransfer)
	if e := must.In[g.Exit.Index]; e["x"] || e["y"] {
		t.Errorf("must-set at Exit = %v, want empty (loop may run zero times)", e)
	}
}

func TestForwardUnreachableAfterPanic(t *testing.T) {
	_, body := parseFuncBody(t, `
panic("boom")
x = 1`)
	g := BuildCFG(body)
	res := Forward[varSet](g, varLattice{}, varSet{}, assignTransfer)
	if res.Reached[g.Exit.Index] {
		t.Error("Exit reached although every path panics")
	}
	blk := blockWith(g, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		return ok && as.Lhs[0].(*ast.Ident).Name == "x"
	})
	if blk == nil {
		t.Fatal("no block for the statement after panic")
	}
	if res.Reached[blk.Index] {
		t.Error("statement after panic marked reachable")
	}
}

// deferState is a miniature of buflease's defer handling: pending
// must-run defers (joined by intersection via the pending set) and the
// calls that have definitely run by each point.
type deferState struct {
	pending varSet
	ran     varSet
}

type deferLattice struct{}

func (deferLattice) Clone(s deferState) deferState {
	return deferState{pending: varLattice{}.Clone(s.pending), ran: varLattice{}.Clone(s.ran)}
}

func (deferLattice) Join(a, b deferState) deferState {
	must := varLattice{must: true}
	return deferState{pending: must.Join(a.pending, b.pending), ran: must.Join(a.ran, b.ran)}
}

func (deferLattice) Equal(a, b deferState) bool {
	return varLattice{}.Equal(a.pending, b.pending) && varLattice{}.Equal(a.ran, b.ran)
}

// TestForwardDefersAtReturns drives the two-phase pattern: fixpoint,
// then Replay with a capturing transfer that records, at every return
// (explicit or the implicit-return sentinel), which deferred calls have
// run. Defers registered after an early return must not count for it;
// defers registered inside a conditional must not be guaranteed at all.
func TestForwardDefersAtReturns(t *testing.T) {
	fset, body := parseFuncBody(t, `
if c {
	return
}
defer f()
if d {
	defer g()
}
if e {
	return
}
work()`)
	g := BuildCFG(body)
	lat := deferLattice{}
	transfer := func(s deferState, n ast.Node) deferState {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if id, ok := n.Call.Fun.(*ast.Ident); ok {
				s.pending[id.Name] = true
			}
		case *ast.ReturnStmt, *ast.BlockStmt:
			for name := range s.pending {
				s.ran[name] = true
			}
		}
		return s
	}
	entry := deferState{pending: varSet{}, ran: varSet{}}
	res := Forward[deferState](g, lat, entry, transfer)
	if !res.Converged {
		t.Fatal("defer analysis did not converge")
	}

	// Capture the post-transfer state at each function exit by line.
	ranAt := map[int]varSet{}
	Replay[deferState](g, lat, res, func(s deferState, n ast.Node) deferState {
		s = transfer(s, n)
		switch n.(type) {
		case *ast.ReturnStmt, *ast.BlockStmt:
			ranAt[fset.Position(n.Pos()).Line] = varLattice{}.Clone(s.ran)
		}
		return s
	})

	if len(ranAt) != 3 {
		t.Fatalf("captured %d exits, want 3 (two returns + fall-off): %v", len(ranAt), ranAt)
	}
	// The returns sit on source lines 5 and 12 (two injected header
	// lines precede the body); the sentinel's Pos is the body's opening
	// brace on line 2.
	early, mid, falloff := ranAt[5], ranAt[12], ranAt[2]
	if len(early) != 0 {
		t.Errorf("early return ran defers %v, want none (f registered later)", early)
	}
	if !mid["f"] {
		t.Error("return after `defer f()` did not run f")
	}
	if mid["g"] {
		t.Error("conditionally registered g counted as must-run")
	}
	if !falloff["f"] || falloff["g"] {
		t.Errorf("fall-off exit ran %v, want f but not the conditional g", falloff)
	}
}
