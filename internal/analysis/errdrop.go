package analysis

import (
	"go/ast"
	"go/types"
)

// ErrDrop flags discarded error returns in the network paths. A dropped
// send error in transport or announce silently turns "the announcement
// went out" into "the announcement may have gone out", which downstream
// logic (re-announcement timers, clash detection) then reasons about
// incorrectly; a dropped parse error in sap accepts a corrupt packet.
//
// Three statement forms discard errors:
//
//	f()         // expression statement: every result dropped
//	go f()      // results of the goroutine's call are unobservable
//	defer f()   // results dropped at function exit
//
// Deferred Close is exempt — `defer f.Close()` on teardown paths is the
// established Go idiom and the error is rarely actionable; every other
// deferred error must be handled in a wrapper (`defer func() { ... }()`)
// or explicitly assigned away. Assigning to the blank identifier
// (`_ = f()`) is visible intent and is not flagged.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc: "flag discarded error returns in the network paths; " +
		"handle the error, or assign it to _ to show intent",
	Packages: []string{
		"sessiondir/internal/transport",
		"sessiondir/internal/sap",
		"sessiondir/internal/announce",
		"sessiondir/cmd/sdrd",
	},
	Run: runErrDrop,
}

func runErrDrop(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok && returnsError(pass, call) {
					pass.Reportf(call.Pos(),
						"result of %s includes an error that is discarded; handle it or assign to _",
						exprString(call.Fun))
				}
			case *ast.GoStmt:
				if returnsError(pass, s.Call) {
					pass.Reportf(s.Call.Pos(),
						"error returned by %s is unobservable from a go statement; wrap it in a closure that handles the error",
						exprString(s.Call.Fun))
				}
			case *ast.DeferStmt:
				if returnsError(pass, s.Call) && !isCloseCall(s.Call) {
					pass.Reportf(s.Call.Pos(),
						"error returned by deferred %s is discarded; handle it in a closure or assign to _",
						exprString(s.Call.Fun))
				}
			}
			return true
		})
	}
}

// returnsError reports whether any of the call's results is an error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }

func isCloseCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Close"
}
