package analysis

import (
	"go/ast"
)

// LoopLock flags per-iteration mutex acquisition: a sync.Mutex/RWMutex
// Lock, RLock, TryLock, or TryRLock sitting inside a for/range body (or
// a for condition/post statement, which also re-executes every pass).
//
// The rule exists because of the receive hot path. PR 6's batched read
// loop retires up to 32 datagrams per wakeup; a mutex acquired once per
// datagram — the pre-batching loop fetched its handler exactly that way
// — re-serializes the loop and shows up directly in ns/datagram. The
// repository's answer is to hoist the acquisition (lock once around the
// loop), load the shared value through an atomic (atomic.Pointer for
// the transport handler), or snapshot under the lock before iterating.
//
// Per-iteration locking that is the point — a drain loop deliberately
// re-taking the lock each round so senders interleave — carries an
// //mclint:looplock waiver with the justification.
var LoopLock = &Analyzer{
	Name: "looplock",
	Doc: "forbid per-iteration mutex acquisition inside loop bodies; " +
		"hoist the lock, snapshot, or use an atomic",
	Packages: []string{
		"sessiondir",
		"sessiondir/internal/storage",
		"sessiondir/internal/transport",
	},
	Run: runLoopLock,
}

func runLoopLock(pass *Pass) {
	for _, f := range pass.Files {
		loopLockScan(pass, f, false)
	}
}

// loopLockScan walks n reporting mutex acquisitions reached while
// inLoop. Loop bodies (and conditions/posts, which re-run per
// iteration) set it; function literals clear it — a callback defined
// inside a loop executes later, not once per pass of this loop.
func loopLockScan(pass *Pass, n ast.Node, inLoop bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			loopLockScan(pass, n.Body, false)
			return false
		case *ast.ForStmt:
			if n.Init != nil {
				loopLockScan(pass, n.Init, inLoop)
			}
			loopLockScan(pass, n.Cond, true)
			loopLockScan(pass, n.Post, true)
			loopLockScan(pass, n.Body, true)
			return false
		case *ast.RangeStmt:
			loopLockScan(pass, n.X, inLoop) // the range operand evaluates once
			loopLockScan(pass, n.Body, true)
			return false
		case *ast.CallExpr:
			if !inLoop {
				return true
			}
			if mutex, method, ok := mutexOp(pass, n); ok {
				switch method {
				case "Lock", "RLock", "TryLock", "TryRLock":
					pass.Reportf(n.Pos(),
						"%s.%s acquired inside a loop body; hoist the lock, snapshot the data, or use an atomic — or waive with //mclint:looplock",
						mutex, method)
				}
			}
			return true
		}
		return true
	})
}
