package analysis

import (
	"go/ast"
	"go/types"
)

// LoopLock flags per-iteration mutex acquisition: a sync.Mutex/RWMutex
// Lock, RLock, TryLock, or TryRLock sitting inside a for/range body (or
// a for condition/post statement, which also re-executes every pass).
//
// The rule exists because of the receive hot path. PR 6's batched read
// loop retires up to 32 datagrams per wakeup; a mutex acquired once per
// datagram — the pre-batching loop fetched its handler exactly that way
// — re-serializes the loop and shows up directly in ns/datagram. The
// repository's answer is to hoist the acquisition (lock once around the
// loop), load the shared value through an atomic (atomic.Pointer for
// the transport handler), or snapshot under the lock before iterating.
//
// The striped-shard scan is NOT a finding: when the lock's receiver
// depends on the loop variable (`s.shards[i].mu.RLock()` inside
// `for i := range s.shards`, directly or through a derived local like
// `sh := &s.shards[i]`), each pass acquires a *different* mutex — that
// is one acquisition per lock, not N acquisitions of one lock, and it
// is exactly how the sharded session cache walks its stripes.
//
// Per-iteration locking of a single mutex that is the point — a drain
// loop deliberately re-taking the lock each round so senders interleave
// — carries an //mclint:looplock waiver with the justification.
var LoopLock = &Analyzer{
	Name: "looplock",
	Doc: "forbid per-iteration mutex acquisition inside loop bodies; " +
		"hoist the lock, snapshot, or use an atomic",
	Packages: []string{
		"sessiondir",
		"sessiondir/internal/announce",
		"sessiondir/internal/des",
		"sessiondir/internal/storage",
		"sessiondir/internal/transport",
	},
	Run: runLoopLock,
}

func runLoopLock(pass *Pass) {
	for _, f := range pass.Files {
		loopLockScan(pass, f, false, nil)
	}
}

// loopLockScan walks n reporting mutex acquisitions reached while
// inLoop. Loop bodies (and conditions/posts, which re-run per
// iteration) set it; function literals clear it — a callback defined
// inside a loop executes later, not once per pass of this loop.
//
// loopVars carries the objects that change value each pass: the loop's
// own variables plus any local assigned from an expression mentioning
// one (`sh := &s.shards[i]`). A lock whose receiver mentions such an
// object is the striped pattern and is not reported.
func loopLockScan(pass *Pass, n ast.Node, inLoop bool, loopVars map[types.Object]bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			loopLockScan(pass, n.Body, false, nil)
			return false
		case *ast.ForStmt:
			vars := copyObjSet(loopVars)
			if n.Init != nil {
				loopLockScan(pass, n.Init, inLoop, loopVars)
				addAssignedObjs(pass, n.Init, vars) // i in `for i := 0; ...; i++`
			}
			loopLockScan(pass, n.Cond, true, vars)
			loopLockScan(pass, n.Post, true, vars)
			loopLockScan(pass, n.Body, true, vars)
			return false
		case *ast.RangeStmt:
			loopLockScan(pass, n.X, inLoop, loopVars) // the range operand evaluates once
			vars := copyObjSet(loopVars)
			addIdentObj(pass, n.Key, vars)
			addIdentObj(pass, n.Value, vars)
			loopLockScan(pass, n.Body, true, vars)
			return false
		case *ast.AssignStmt:
			// Taint propagation: a local computed from a loop-dependent
			// value is itself loop-dependent (ast.Inspect visits in
			// syntactic order, so the taint lands before later uses).
			if inLoop && loopVars != nil && exprReferencesAny(pass, n.Rhs, loopVars) {
				addAssignedObjs(pass, n, loopVars)
			}
			return true
		case *ast.CallExpr:
			if !inLoop {
				return true
			}
			if mutex, method, ok := mutexOp(pass, n); ok {
				switch method {
				case "Lock", "RLock", "TryLock", "TryRLock":
					sel := n.Fun.(*ast.SelectorExpr) // guaranteed by mutexOp
					if loopVars != nil && exprReferencesAny(pass, []ast.Expr{sel.X}, loopVars) {
						return true // striped: a different mutex each pass
					}
					pass.Reportf(n.Pos(),
						"%s.%s acquired inside a loop body; hoist the lock, snapshot the data, or use an atomic — or waive with //mclint:looplock",
						mutex, method)
				}
			}
			return true
		}
		return true
	})
}

func copyObjSet(src map[types.Object]bool) map[types.Object]bool {
	out := make(map[types.Object]bool, len(src))
	for k := range src {
		out[k] = true
	}
	return out
}

// addIdentObj records the object behind a (possibly defining) identifier.
func addIdentObj(pass *Pass, e ast.Expr, set map[types.Object]bool) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return
	}
	if obj := pass.Info.Defs[id]; obj != nil {
		set[obj] = true
		return
	}
	if obj := pass.Info.Uses[id]; obj != nil {
		set[obj] = true
	}
}

// addAssignedObjs records every identifier assigned by an init/assign
// statement.
func addAssignedObjs(pass *Pass, s ast.Stmt, set map[types.Object]bool) {
	assign, ok := s.(*ast.AssignStmt)
	if !ok {
		return
	}
	for _, lhs := range assign.Lhs {
		addIdentObj(pass, lhs, set)
	}
}

// exprReferencesAny reports whether any expression mentions one of the
// given objects.
func exprReferencesAny(pass *Pass, exprs []ast.Expr, set map[types.Object]bool) bool {
	found := false
	for _, e := range exprs {
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil && set[obj] {
					found = true
				}
			}
			return !found
		})
	}
	return found
}
