package analysis

import (
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// LockScope enforces PR 1's compute-outside-the-lock rule in the
// concurrent packages: while a sync.Mutex or sync.RWMutex is held, the
// critical section may only move data — field reads/writes, builtins,
// conversions — not call functions. Calls under a lock are how the
// sharded ReachCache would reintroduce the serial bottleneck it was
// built to remove (an SPT build under a shard lock stalls every worker
// hashing to that shard), and calls into *caller-supplied* code under a
// lock (a transport Policy, a Handler) are self-deadlocks waiting for
// the callback to touch the locked structure.
//
// The tracking is a conservative linear scan per function: Lock/RLock
// puts the receiver expression into the held set, Unlock/RUnlock removes
// it, `defer mu.Unlock()` keeps it held to function end (which is what
// actually happens). Branches are scanned with a copy of the state;
// a branch that terminates (return/break/continue) does not leak its
// state past the join. Function literals are analyzed separately with an
// empty held set — a goroutine or stored callback does not inherit the
// creating goroutine's locks.
//
// The striped-shard idiom is NOT a finding: when the held mutex is
// reached through a local drawn from an indexed element
// (`sh := &s.shards[i]; sh.mu.Lock()`), calls reached through that same
// local (`sh.c.Observe(...)`, `sh.sync()`) are the critical section —
// the stripe exists precisely so this work runs under a lock nobody
// else contends for. Calls rooted anywhere else remain findings even
// under a stripe lock: cross-shard work (or caller-supplied callbacks)
// under one stripe's mutex reintroduces exactly the coupling the
// striping removed.
//
// False positives (a deliberate, documented call under a lock) carry an
// //mclint:lockscope waiver with the justification.
var LockScope = &Analyzer{
	Name: "lockscope",
	Doc: "forbid function calls while a sync.Mutex/RWMutex is held; " +
		"compute outside the lock, mutate state inside it",
	Packages: []string{
		"sessiondir/internal/announce",
		"sessiondir/internal/des",
		"sessiondir/internal/topology",
		"sessiondir/internal/transport",
	},
	Run: runLockScope,
}

func runLockScope(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					newLockState(pass).stmts(fn.Body.List)
				}
			case *ast.FuncLit:
				newLockState(pass).stmts(fn.Body.List)
			}
			return true
		})
	}
}

// heldLock is one held mutex: where it was locked, and — when its
// receiver is reached through a stripe local — the object of that local.
type heldLock struct {
	pos    token.Pos
	stripe types.Object // nil unless the mutex is <stripeLocal>.<field>
}

// lockState walks one function body tracking which mutexes are held.
type lockState struct {
	pass *Pass
	held map[string]heldLock // mutex expr (printed) → lock info
	// stripes holds locals assigned from an indexed element
	// (`sh := &s.shards[i]`) — the only roots whose under-lock calls
	// get the striping exemption.
	stripes map[types.Object]bool
}

func newLockState(pass *Pass) *lockState {
	return &lockState{pass: pass, held: map[string]heldLock{}, stripes: map[types.Object]bool{}}
}

func (ls *lockState) clone() *lockState {
	c := newLockState(ls.pass)
	for k, v := range ls.held {
		c.held[k] = v
	}
	for k := range ls.stripes {
		c.stripes[k] = true
	}
	return c
}

// stmts scans a statement list in order; the receiver's held set is the
// state after the list. It reports whether the list terminates control
// flow (ends in return/break/continue/goto/panic).
func (ls *lockState) stmts(list []ast.Stmt) bool {
	for _, s := range list {
		if ls.stmt(s) {
			return true
		}
	}
	return false
}

func (ls *lockState) stmt(s ast.Stmt) (terminates bool) {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			ls.expr(e)
		}
		return true
	case *ast.BranchStmt:
		return s.Tok != token.FALLTHROUGH
	case *ast.ExprStmt:
		ls.expr(s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			ls.expr(e)
		}
		for _, e := range s.Lhs {
			ls.expr(e)
		}
		ls.noteStripes(s)
	case *ast.DeclStmt, *ast.EmptyStmt:
		if d, ok := s.(*ast.DeclStmt); ok {
			ls.expr(d.Decl)
		}
	case *ast.IncDecStmt:
		ls.expr(s.X)
	case *ast.SendStmt:
		ls.expr(s.Chan)
		ls.expr(s.Value)
	case *ast.DeferStmt:
		ls.deferCall(s.Call)
	case *ast.GoStmt:
		// Argument expressions evaluate now (under any held locks); the
		// call itself runs on a fresh goroutine with no inherited locks.
		for _, a := range s.Call.Args {
			ls.expr(a)
		}
	case *ast.BlockStmt:
		return ls.stmts(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			ls.stmt(s.Init)
		}
		ls.expr(s.Cond)
		body := ls.clone()
		bodyTerm := body.stmts(s.Body.List)
		var elseState *lockState
		elseTerm := false
		if s.Else != nil {
			elseState = ls.clone()
			elseTerm = elseState.stmt(s.Else)
		}
		// Join: adopt the state of branches that fall through. A branch
		// that terminates (early unlock-and-return) does not leak.
		switch {
		case bodyTerm && elseState == nil:
			// keep ls as-is (the not-taken path)
		case bodyTerm && elseTerm:
			return true
		case bodyTerm:
			ls.held = elseState.held
		case elseTerm || elseState == nil:
			ls.held = body.held
		default:
			ls.held = intersect(body.held, elseState.held)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			ls.stmt(s.Init)
		}
		if s.Cond != nil {
			ls.expr(s.Cond)
		}
		body := ls.clone()
		body.stmts(s.Body.List)
		if s.Post != nil {
			body.stmt(s.Post)
		}
		ls.held = intersect(ls.held, body.held)
	case *ast.RangeStmt:
		ls.expr(s.X)
		body := ls.clone()
		body.stmts(s.Body.List)
		ls.held = intersect(ls.held, body.held)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		ls.caseBodies(s)
	case *ast.LabeledStmt:
		return ls.stmt(s.Stmt)
	}
	return false
}

// caseBodies scans each clause of a switch/select with its own copy of
// the state; the join keeps only mutexes held on every fall-through path.
func (ls *lockState) caseBodies(s ast.Stmt) {
	var clauses []ast.Stmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			ls.stmt(s.Init)
		}
		if s.Tag != nil {
			ls.expr(s.Tag)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			ls.stmt(s.Init)
		}
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}
	joined := ls.held
	first := true
	for _, c := range clauses {
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			body = c.Body
		case *ast.CommClause:
			body = c.Body
		}
		branch := ls.clone()
		if !branch.stmts(body) {
			if first {
				joined = branch.held
				first = false
			} else {
				joined = intersect(joined, branch.held)
			}
		}
	}
	ls.held = joined
}

// expr scans an expression subtree for calls, in syntactic order,
// without descending into function literals (their bodies run later,
// lock-free from this goroutine's perspective — runLockScope analyzes
// them separately).
func (ls *lockState) expr(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			ls.call(n)
			return false // ls.call scans the arguments itself
		}
		return true
	})
}

func (ls *lockState) call(call *ast.CallExpr) {
	// Arguments evaluate before the call transfers control.
	for _, a := range call.Args {
		ls.expr(a)
	}
	if mutex, method, ok := ls.mutexOp(call); ok {
		switch method {
		case "Lock", "RLock":
			ls.held[mutex] = heldLock{pos: call.Pos(), stripe: ls.stripeRoot(call)}
		case "Unlock", "RUnlock":
			delete(ls.held, mutex)
		}
		return
	}
	if ls.pass.Info.Types[call.Fun].IsType() {
		ls.expr(call.Fun)
		return // conversion, not a call
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, builtin := ls.pass.Info.Uses[id].(*types.Builtin); builtin {
			return
		}
	}
	ls.expr(call.Fun)
	if len(ls.held) == 0 {
		return
	}
	if ls.stripeCall(call) {
		return // the striping idiom: stripe-rooted work under the stripe's own lock
	}
	mutex, pos := ls.oldestHeld()
	ls.pass.Reportf(call.Pos(),
		"%s called while %q is held (locked at %s); compute outside the critical section or waive with //mclint:lockscope",
		exprString(call.Fun), mutex, ls.pass.Fset.Position(pos))
}

// deferCall handles `defer expr(...)`: a deferred Unlock keeps the mutex
// held for the rest of the function (that is its meaning); any other
// deferred call is treated as occurring here for lock purposes.
func (ls *lockState) deferCall(call *ast.CallExpr) {
	if _, method, ok := ls.mutexOp(call); ok && (method == "Unlock" || method == "RUnlock") {
		return // held until function exit — subsequent statements still see it held
	}
	ls.call(call)
}

// mutexOp matches calls of the form expr.Lock / RLock / Unlock / RUnlock
// / TryLock / TryRLock where expr is a sync.Mutex or sync.RWMutex
// (possibly behind a pointer), returning the printed receiver expression
// and the method name. Locks reached through struct embedding are not
// recognized; this repository names its mutex fields explicitly.
func (ls *lockState) mutexOp(call *ast.CallExpr) (mutex, method string, ok bool) {
	return mutexOp(ls.pass, call)
}

// mutexOp is the shared matcher behind lockscope and looplock.
func mutexOp(pass *Pass, call *ast.CallExpr) (mutex, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", "", false
	}
	t := pass.TypeOf(sel.X)
	if t == nil {
		return "", "", false
	}
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", "", false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
		return exprString(sel.X), sel.Sel.Name, true
	}
	return "", "", false
}

// noteStripes records locals assigned from an indexed element —
// `sh := &s.shards[i]` (or without the &) marks sh as a stripe root.
func (ls *lockState) noteStripes(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, rhs := range s.Rhs {
		if _, isIndex := unwrapToIndex(rhs); !isIndex {
			continue
		}
		id, ok := s.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		if obj := identObj(ls.pass, id); obj != nil {
			ls.stripes[obj] = true
		}
	}
}

// stripeRoot resolves a Lock call's receiver to its stripe local, or nil
// when the mutex is not reached through one.
func (ls *lockState) stripeRoot(call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	root := rootIdent(sel.X)
	if root == nil {
		return nil
	}
	if obj := identObj(ls.pass, root); obj != nil && ls.stripes[obj] {
		return obj
	}
	return nil
}

// stripeCall reports whether every held mutex is stripe-rooted and the
// call is reached through one of those same stripe locals.
func (ls *lockState) stripeCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	root := rootIdent(sel.X)
	if root == nil {
		return false
	}
	obj := identObj(ls.pass, root)
	if obj == nil {
		return false
	}
	match := false
	for _, h := range ls.held {
		if h.stripe == nil {
			return false
		}
		if h.stripe == obj {
			match = true
		}
	}
	return match
}

// oldestHeld picks the longest-held mutex for the diagnostic (and, being
// position-based, keeps the message deterministic when several are held).
func (ls *lockState) oldestHeld() (string, token.Pos) {
	var bestName string
	var bestPos token.Pos
	for name, h := range ls.held {
		if bestName == "" || h.pos < bestPos {
			bestName, bestPos = name, h.pos
		}
	}
	return bestName, bestPos
}

func intersect(a, b map[string]heldLock) map[string]heldLock {
	out := map[string]heldLock{}
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}

// unwrapToIndex strips parens and a leading & down to an index
// expression, reporting whether one is there.
func unwrapToIndex(e ast.Expr) (*ast.IndexExpr, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil, false
			}
			e = x.X
		case *ast.IndexExpr:
			return x, true
		default:
			return nil, false
		}
	}
}

// rootIdent walks a selector/index/deref chain to its base identifier
// (`sh.c.entries[k]` → sh), or nil for other expression shapes.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}

// identObj resolves an identifier to its object, whether this mention
// defines or uses it.
func identObj(pass *Pass, id *ast.Ident) types.Object {
	if obj := pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Info.Uses[id]
}

func exprString(e ast.Expr) string {
	var sb strings.Builder
	if err := printer.Fprint(&sb, token.NewFileSet(), e); err != nil {
		return "?"
	}
	return sb.String()
}
