package analysis

import (
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// LockScope enforces PR 1's compute-outside-the-lock rule in the
// concurrent packages: while a sync.Mutex or sync.RWMutex is held, the
// critical section may only move data — field reads/writes, builtins,
// conversions — not call functions. Calls under a lock are how the
// sharded ReachCache would reintroduce the serial bottleneck it was
// built to remove (an SPT build under a shard lock stalls every worker
// hashing to that shard), and calls into *caller-supplied* code under a
// lock (a transport Policy, a Handler) are self-deadlocks waiting for
// the callback to touch the locked structure.
//
// The tracking is a conservative linear scan per function: Lock/RLock
// puts the receiver expression into the held set, Unlock/RUnlock removes
// it, `defer mu.Unlock()` keeps it held to function end (which is what
// actually happens). Branches are scanned with a copy of the state;
// a branch that terminates (return/break/continue) does not leak its
// state past the join. Function literals are analyzed separately with an
// empty held set — a goroutine or stored callback does not inherit the
// creating goroutine's locks.
//
// False positives (a deliberate, documented call under a lock) carry an
// //mclint:lockscope waiver with the justification.
var LockScope = &Analyzer{
	Name: "lockscope",
	Doc: "forbid function calls while a sync.Mutex/RWMutex is held; " +
		"compute outside the lock, mutate state inside it",
	Packages: []string{
		"sessiondir/internal/topology",
		"sessiondir/internal/transport",
	},
	Run: runLockScope,
}

func runLockScope(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					ls := &lockState{pass: pass, held: map[string]token.Pos{}}
					ls.stmts(fn.Body.List)
				}
			case *ast.FuncLit:
				ls := &lockState{pass: pass, held: map[string]token.Pos{}}
				ls.stmts(fn.Body.List)
			}
			return true
		})
	}
}

// lockState walks one function body tracking which mutexes are held.
type lockState struct {
	pass *Pass
	held map[string]token.Pos // mutex expr (printed) → Lock() position
}

func (ls *lockState) clone() *lockState {
	c := &lockState{pass: ls.pass, held: make(map[string]token.Pos, len(ls.held))}
	for k, v := range ls.held {
		c.held[k] = v
	}
	return c
}

// stmts scans a statement list in order; the receiver's held set is the
// state after the list. It reports whether the list terminates control
// flow (ends in return/break/continue/goto/panic).
func (ls *lockState) stmts(list []ast.Stmt) bool {
	for _, s := range list {
		if ls.stmt(s) {
			return true
		}
	}
	return false
}

func (ls *lockState) stmt(s ast.Stmt) (terminates bool) {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			ls.expr(e)
		}
		return true
	case *ast.BranchStmt:
		return s.Tok != token.FALLTHROUGH
	case *ast.ExprStmt:
		ls.expr(s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			ls.expr(e)
		}
		for _, e := range s.Lhs {
			ls.expr(e)
		}
	case *ast.DeclStmt, *ast.EmptyStmt:
		if d, ok := s.(*ast.DeclStmt); ok {
			ls.expr(d.Decl)
		}
	case *ast.IncDecStmt:
		ls.expr(s.X)
	case *ast.SendStmt:
		ls.expr(s.Chan)
		ls.expr(s.Value)
	case *ast.DeferStmt:
		ls.deferCall(s.Call)
	case *ast.GoStmt:
		// Argument expressions evaluate now (under any held locks); the
		// call itself runs on a fresh goroutine with no inherited locks.
		for _, a := range s.Call.Args {
			ls.expr(a)
		}
	case *ast.BlockStmt:
		return ls.stmts(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			ls.stmt(s.Init)
		}
		ls.expr(s.Cond)
		body := ls.clone()
		bodyTerm := body.stmts(s.Body.List)
		var elseState *lockState
		elseTerm := false
		if s.Else != nil {
			elseState = ls.clone()
			elseTerm = elseState.stmt(s.Else)
		}
		// Join: adopt the state of branches that fall through. A branch
		// that terminates (early unlock-and-return) does not leak.
		switch {
		case bodyTerm && elseState == nil:
			// keep ls as-is (the not-taken path)
		case bodyTerm && elseTerm:
			return true
		case bodyTerm:
			ls.held = elseState.held
		case elseTerm || elseState == nil:
			ls.held = body.held
		default:
			ls.held = intersect(body.held, elseState.held)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			ls.stmt(s.Init)
		}
		if s.Cond != nil {
			ls.expr(s.Cond)
		}
		body := ls.clone()
		body.stmts(s.Body.List)
		if s.Post != nil {
			body.stmt(s.Post)
		}
		ls.held = intersect(ls.held, body.held)
	case *ast.RangeStmt:
		ls.expr(s.X)
		body := ls.clone()
		body.stmts(s.Body.List)
		ls.held = intersect(ls.held, body.held)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		ls.caseBodies(s)
	case *ast.LabeledStmt:
		return ls.stmt(s.Stmt)
	}
	return false
}

// caseBodies scans each clause of a switch/select with its own copy of
// the state; the join keeps only mutexes held on every fall-through path.
func (ls *lockState) caseBodies(s ast.Stmt) {
	var clauses []ast.Stmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			ls.stmt(s.Init)
		}
		if s.Tag != nil {
			ls.expr(s.Tag)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			ls.stmt(s.Init)
		}
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}
	joined := ls.held
	first := true
	for _, c := range clauses {
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			body = c.Body
		case *ast.CommClause:
			body = c.Body
		}
		branch := ls.clone()
		if !branch.stmts(body) {
			if first {
				joined = branch.held
				first = false
			} else {
				joined = intersect(joined, branch.held)
			}
		}
	}
	ls.held = joined
}

// expr scans an expression subtree for calls, in syntactic order,
// without descending into function literals (their bodies run later,
// lock-free from this goroutine's perspective — runLockScope analyzes
// them separately).
func (ls *lockState) expr(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			ls.call(n)
			return false // ls.call scans the arguments itself
		}
		return true
	})
}

func (ls *lockState) call(call *ast.CallExpr) {
	// Arguments evaluate before the call transfers control.
	for _, a := range call.Args {
		ls.expr(a)
	}
	if mutex, method, ok := ls.mutexOp(call); ok {
		switch method {
		case "Lock", "RLock":
			ls.held[mutex] = call.Pos()
		case "Unlock", "RUnlock":
			delete(ls.held, mutex)
		}
		return
	}
	if ls.pass.Info.Types[call.Fun].IsType() {
		ls.expr(call.Fun)
		return // conversion, not a call
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, builtin := ls.pass.Info.Uses[id].(*types.Builtin); builtin {
			return
		}
	}
	ls.expr(call.Fun)
	if len(ls.held) == 0 {
		return
	}
	mutex, pos := ls.oldestHeld()
	ls.pass.Reportf(call.Pos(),
		"%s called while %q is held (locked at %s); compute outside the critical section or waive with //mclint:lockscope",
		exprString(call.Fun), mutex, ls.pass.Fset.Position(pos))
}

// deferCall handles `defer expr(...)`: a deferred Unlock keeps the mutex
// held for the rest of the function (that is its meaning); any other
// deferred call is treated as occurring here for lock purposes.
func (ls *lockState) deferCall(call *ast.CallExpr) {
	if _, method, ok := ls.mutexOp(call); ok && (method == "Unlock" || method == "RUnlock") {
		return // held until function exit — subsequent statements still see it held
	}
	ls.call(call)
}

// mutexOp matches calls of the form expr.Lock / RLock / Unlock / RUnlock
// / TryLock / TryRLock where expr is a sync.Mutex or sync.RWMutex
// (possibly behind a pointer), returning the printed receiver expression
// and the method name. Locks reached through struct embedding are not
// recognized; this repository names its mutex fields explicitly.
func (ls *lockState) mutexOp(call *ast.CallExpr) (mutex, method string, ok bool) {
	return mutexOp(ls.pass, call)
}

// mutexOp is the shared matcher behind lockscope and looplock.
func mutexOp(pass *Pass, call *ast.CallExpr) (mutex, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", "", false
	}
	t := pass.TypeOf(sel.X)
	if t == nil {
		return "", "", false
	}
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", "", false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
		return exprString(sel.X), sel.Sel.Name, true
	}
	return "", "", false
}

// oldestHeld picks the longest-held mutex for the diagnostic (and, being
// position-based, keeps the message deterministic when several are held).
func (ls *lockState) oldestHeld() (string, token.Pos) {
	var bestName string
	var bestPos token.Pos
	for name, pos := range ls.held {
		if bestName == "" || pos < bestPos {
			bestName, bestPos = name, pos
		}
	}
	return bestName, bestPos
}

func intersect(a, b map[string]token.Pos) map[string]token.Pos {
	out := map[string]token.Pos{}
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}

func exprString(e ast.Expr) string {
	var sb strings.Builder
	if err := printer.Fprint(&sb, token.NewFileSet(), e); err != nil {
		return "?"
	}
	return sb.String()
}
