package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
)

// MetricName statically enforces the obs registry's naming contract on
// literal metric names: snake_case (`^[a-z][a-z0-9_]*$`) and no two
// registration sites in a package claiming the same name. The registry
// re-checks both at runtime (error from the plain constructors, panic
// from the Must variants), but a bad literal name is a programming error
// the build should catch, not a scrape-time surprise — and a duplicate
// registration panics only on the code path that reaches it.
//
// Dynamic names (obs.Sanitize over an allocator's display name, say)
// are out of static reach and stay the runtime check's job.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc: "obs registry metric names must be snake_case and unique; literal names " +
		"passed to Registry registration calls are checked at lint time, mirroring " +
		"the runtime validation in obs",
	Packages: []string{
		"sessiondir",
		"sessiondir/internal/obs",
		"sessiondir/internal/allocator",
		"sessiondir/internal/transport",
		"sessiondir/internal/relay",
		"sessiondir/internal/storage",
	},
	Run: runMetricName,
}

// registryMethods are the obs.Registry registration entry points; each
// takes the metric name as its first argument.
var registryMethods = map[string]bool{
	"Counter":         true,
	"MustCounter":     true,
	"Gauge":           true,
	"MustGauge":       true,
	"CounterFunc":     true,
	"MustCounterFunc": true,
	"GaugeFunc":       true,
	"MustGaugeFunc":   true,
	"Histogram":       true,
	"MustHistogram":   true,
}

func runMetricName(pass *Pass) {
	first := map[string]token.Pos{} // literal name -> first registration site
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !registryMethods[sel.Sel.Name] || len(call.Args) == 0 {
				return true
			}
			if !isObsRegistry(pass.TypeOf(sel.X)) {
				return true
			}
			name, ok := constString(pass, call.Args[0])
			if !ok {
				return true // dynamic name: validated at registration time
			}
			if !snakeCaseMetric(name) {
				pass.Reportf(call.Args[0].Pos(),
					"metric name %q is not snake_case ([a-z][a-z0-9_]*)", name)
				return true
			}
			if prev, dup := first[name]; dup {
				p := pass.Fset.Position(prev)
				pass.Reportf(call.Args[0].Pos(),
					"metric name %q already registered at %s:%d",
					name, filepath.Base(p.Filename), p.Line)
				return true
			}
			first[name] = call.Args[0].Pos()
			return true
		})
	}
}

// isObsRegistry reports whether t is obs.Registry or *obs.Registry. The
// receiver is matched by package *name* and type name (not import path)
// so fixture stubs exercise the analyzer without importing the module.
func isObsRegistry(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Registry" &&
		obj.Pkg() != nil && obj.Pkg().Name() == "obs"
}

// constString returns e's compile-time string value, if it has one.
// Constant folding covers literals, named constants, and concatenations.
func constString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// snakeCaseMetric mirrors obs.ValidName: a lower-case letter followed by
// lower-case letters, digits, and underscores.
func snakeCaseMetric(name string) bool {
	if name == "" || name[0] < 'a' || name[0] > 'z' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			return false
		}
	}
	return true
}
