package analysis

import "testing"

func TestBufLeaseFixture(t *testing.T) {
	diags := runFixture(t, "buflease", BufLease)
	// One diagnostic per want marker in the fixture; the waived escape
	// must not appear.
	const want = 18
	if len(diags) != want {
		t.Errorf("got %d diagnostics, want %d:\n%s", len(diags), want, diagnosticSummary(diags))
	}
	for _, d := range diags {
		if d.Analyzer != "buflease" {
			t.Errorf("diagnostic from unexpected analyzer %q: %s", d.Analyzer, d)
		}
	}
}
