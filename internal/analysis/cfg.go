package analysis

import (
	"go/ast"
	"go/token"
)

// This file builds intraprocedural control-flow graphs over go/ast
// function bodies — the substrate of the forward dataflow engine in
// dataflow.go. The graph is deliberately syntactic and conservative:
// it models branches, loops (with back edges), switch/select clauses,
// labeled break/continue/goto, and function-exit paths. Statements
// appear in blocks in execution order; control expressions (an if or
// for condition, a range operand, a switch tag) appear as ast.Expr
// nodes in the block that evaluates them, so a transfer function sees
// every evaluated expression exactly where it runs.
//
// Two constructs get special treatment an analyzer must know about:
//
//   - Function literals are NOT descended into: a closure body runs at
//     some other time (or never), so it gets its own CFG. Analyzers
//     analyze each FuncLit separately.
//   - A function that can fall off the end of its body reaches Exit
//     through a block whose final node is the function's *ast.BlockStmt
//     body — the "implicit return" sentinel. The builder never appends
//     a BlockStmt node in any other position, so a transfer function
//     can treat that node as a return with no results (and run deferred
//     calls, check leaks, and so on).
//
// panic(...) terminates its block with no successor: a crashing path
// makes no cleanup promises, so it neither reaches Exit nor leaks
// state into a join.

// A CFGBlock is one straight-line run of nodes. Execution enters at the
// first node and leaves to exactly one successor (which one is decided
// by the last node's evaluation).
type CFGBlock struct {
	Index int
	Nodes []ast.Node
	Succs []*CFGBlock
}

// A CFG is the control-flow graph of a single function body.
type CFG struct {
	Blocks []*CFGBlock
	Entry  *CFGBlock
	// Exit is reached by every return statement and by falling off the
	// end of the body. It has no nodes of its own.
	Exit *CFGBlock
}

// BuildCFG constructs the control-flow graph of one function body. The
// body may be a FuncDecl's or a FuncLit's.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: map[string]*labelTarget{},
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmts(body.List)
	// Implicit return: a reachable fall-off path runs defers and leaves.
	// The body node itself marks it (see the package comment above).
	if b.cur != nil {
		b.cur.Nodes = append(b.cur.Nodes, body)
		b.edge(b.cur, b.cfg.Exit)
	}
	b.resolveGotos()
	return b.cfg
}

// labelTarget carries the control targets a label can name.
type labelTarget struct {
	// start is the block the labeled statement begins in (goto target).
	start *CFGBlock
	// brk/cont are set while the labeled loop/switch is being built.
	brk, cont *CFGBlock
}

type pendingGoto struct {
	from  *CFGBlock
	label string
}

type cfgBuilder struct {
	cfg *CFG
	// cur is the block under construction; nil after a terminator
	// (return/break/continue/goto/panic) until new reachable code needs
	// a fresh block.
	cur *CFGBlock

	// breaks/conts are the innermost break/continue targets.
	breaks []*CFGBlock
	conts  []*CFGBlock

	labels map[string]*labelTarget
	gotos  []pendingGoto
	// pendingLabel is the label naming the NEXT loop/switch statement,
	// so `continue lbl` / `break lbl` can resolve to it.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *CFGBlock {
	blk := &CFGBlock{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *CFGBlock) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// block returns the block to keep appending to, starting a fresh
// (unreachable until targeted) one after a terminator.
func (b *cfgBuilder) block() *CFGBlock {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) emit(n ast.Node) {
	if n == nil {
		return
	}
	blk := b.block()
	blk.Nodes = append(blk.Nodes, n)
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.ReturnStmt:
		b.emit(s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			b.emit(s)
			b.edge(b.cur, b.branchTarget(s, true))
			b.cur = nil
		case token.CONTINUE:
			b.emit(s)
			b.edge(b.cur, b.branchTarget(s, false))
			b.cur = nil
		case token.GOTO:
			b.emit(s)
			if s.Label != nil {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled by the enclosing switch clause; keep the node so
			// transfer functions see it in order.
			b.emit(s)
		}

	case *ast.LabeledStmt:
		start := b.newBlock()
		b.edge(b.block(), start)
		b.cur = start
		b.labels[s.Label.Name] = &labelTarget{start: start}
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.emit(s.Cond)
		cond := b.cur
		after := b.newBlock()

		thenB := b.newBlock()
		b.edge(cond, thenB)
		b.cur = thenB
		b.stmts(s.Body.List)
		b.edge(b.cur, after)

		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(cond, elseB)
			b.cur = elseB
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		label := b.takeLabel()
		head := b.newBlock()
		b.edge(b.cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		after := b.newBlock()
		contTo := head
		var post *CFGBlock
		if s.Post != nil {
			post = b.newBlock()
			b.cur = post
			b.stmt(s.Post)
			b.edge(b.cur, head)
			contTo = post
		}
		if s.Cond != nil {
			b.edge(head, after) // condition false
		}
		body := b.newBlock()
		b.edge(head, body)
		b.pushLoop(label, after, contTo)
		b.cur = body
		b.stmts(s.Body.List)
		b.edge(b.cur, contTo)
		b.popLoop()
		b.cur = after

	case *ast.RangeStmt:
		b.emit(s.X) // the range operand evaluates once
		label := b.takeLabel()
		head := b.newBlock()
		b.edge(b.cur, head)
		// The RangeStmt node itself marks the per-iteration key/value
		// assignment.
		head.Nodes = append(head.Nodes, s)
		after := b.newBlock()
		b.edge(head, after) // range exhausted
		body := b.newBlock()
		b.edge(head, body)
		b.pushLoop(label, after, head)
		b.cur = body
		b.stmts(s.Body.List)
		b.edge(b.cur, head)
		b.popLoop()
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.emit(s.Tag)
		}
		b.switchClauses(s.Body.List, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.switchClauses(s.Body.List, s.Assign)

	case *ast.SelectStmt:
		b.selectClauses(s.Body.List)

	case *ast.ExprStmt:
		b.emit(s)
		if isPanicCall(s.X) {
			b.cur = nil // a crashing path reaches no join and no Exit
		}

	case *ast.DeclStmt, *ast.AssignStmt, *ast.IncDecStmt, *ast.SendStmt,
		*ast.DeferStmt, *ast.GoStmt, *ast.EmptyStmt:
		b.emit(s)

	default:
		b.emit(s)
	}
}

// switchClauses wires a (type) switch: every clause is a successor of
// the head; a clause ending in fallthrough also flows into the next
// clause's body. assign, for type switches, is the per-clause binding.
func (b *cfgBuilder) switchClauses(clauses []ast.Stmt, assign ast.Stmt) {
	label := b.takeLabel()
	head := b.block()
	after := b.newBlock()
	b.pushBreak(label, after)

	hasDefault := false
	bodies := make([]*CFGBlock, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
		b.edge(head, bodies[i])
	}
	for i, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		b.cur = bodies[i]
		if assign != nil {
			b.emit(assign)
		}
		for _, e := range cc.List {
			b.emit(e)
		}
		b.stmts(cc.Body)
		if fallsThrough(cc.Body) && i+1 < len(bodies) {
			b.edge(b.cur, bodies[i+1])
			b.cur = nil
		} else {
			b.edge(b.cur, after)
		}
	}
	if !hasDefault {
		b.edge(head, after) // no clause matched
	}
	b.popBreak()
	b.cur = after
}

// selectClauses wires a select: each communication clause is a possible
// successor. A select without a default blocks until one clause is
// ready, so "after" is reached only through a clause body.
func (b *cfgBuilder) selectClauses(clauses []ast.Stmt) {
	label := b.takeLabel()
	head := b.block()
	after := b.newBlock()
	b.pushBreak(label, after)
	for _, c := range clauses {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		body := b.newBlock()
		b.edge(head, body)
		b.cur = body
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmts(cc.Body)
		b.edge(b.cur, after)
	}
	b.popBreak()
	b.cur = after
}

func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// takeLabel consumes the label attached to the statement being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *CFGBlock) {
	b.breaks = append(b.breaks, brk)
	b.conts = append(b.conts, cont)
	if label != "" {
		if t := b.labels[label]; t != nil {
			t.brk, t.cont = brk, cont
		}
	}
}

func (b *cfgBuilder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.conts = b.conts[:len(b.conts)-1]
}

func (b *cfgBuilder) pushBreak(label string, brk *CFGBlock) {
	b.breaks = append(b.breaks, brk)
	b.conts = append(b.conts, nil) // continue skips switch/select scopes
	if label != "" {
		if t := b.labels[label]; t != nil {
			t.brk = brk
		}
	}
}

func (b *cfgBuilder) popBreak() { b.popLoop() }

// branchTarget resolves break/continue, labeled or not. An unresolvable
// branch (malformed code) targets Exit so the graph stays connected.
func (b *cfgBuilder) branchTarget(s *ast.BranchStmt, isBreak bool) *CFGBlock {
	if s.Label != nil {
		if t := b.labels[s.Label.Name]; t != nil {
			if isBreak && t.brk != nil {
				return t.brk
			}
			if !isBreak && t.cont != nil {
				return t.cont
			}
		}
		return b.cfg.Exit
	}
	if isBreak {
		for i := len(b.breaks) - 1; i >= 0; i-- {
			if b.breaks[i] != nil {
				return b.breaks[i]
			}
		}
		return b.cfg.Exit
	}
	for i := len(b.conts) - 1; i >= 0; i-- {
		if b.conts[i] != nil {
			return b.conts[i]
		}
	}
	return b.cfg.Exit
}

func (b *cfgBuilder) resolveGotos() {
	for _, g := range b.gotos {
		if t := b.labels[g.label]; t != nil {
			b.edge(g.from, t.start)
		} else {
			b.edge(g.from, b.cfg.Exit)
		}
	}
}

// isPanicCall matches a direct call of the panic builtin.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
