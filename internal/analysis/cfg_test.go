package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseFuncBody parses `func f() { <body> }` and returns the body with
// its FileSet — CFG construction is purely syntactic.
func parseFuncBody(t *testing.T, body string) (*token.FileSet, *ast.BlockStmt) {
	t.Helper()
	fset := token.NewFileSet()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	f, err := parser.ParseFile(fset, "test.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, f.Decls[0].(*ast.FuncDecl).Body
}

// reaches reports whether to is reachable from from along Succs.
func reaches(from, to *CFGBlock) bool {
	seen := map[*CFGBlock]bool{}
	var walk func(b *CFGBlock) bool
	walk = func(b *CFGBlock) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

// blockWith finds the block containing a node matching pred.
func blockWith(g *CFG, pred func(ast.Node) bool) *CFGBlock {
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if pred(n) {
				return b
			}
		}
	}
	return nil
}

func isIdentNamed(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		id, ok := n.(ast.Expr)
		if !ok {
			return false
		}
		i, ok := id.(*ast.Ident)
		return ok && i.Name == name
	}
}

func TestCFGStraightLineReturn(t *testing.T) {
	_, body := parseFuncBody(t, "x := 1\nreturn")
	g := BuildCFG(body)
	if len(g.Entry.Nodes) != 2 {
		t.Fatalf("entry has %d nodes, want 2", len(g.Entry.Nodes))
	}
	if !reaches(g.Entry, g.Exit) {
		t.Error("Exit unreachable from Entry")
	}
	// An explicit return means no implicit-return sentinel anywhere.
	if b := blockWith(g, func(n ast.Node) bool { _, ok := n.(*ast.BlockStmt); return ok }); b != nil {
		t.Error("unexpected implicit-return sentinel after explicit return")
	}
}

func TestCFGImplicitReturnSentinel(t *testing.T) {
	_, body := parseFuncBody(t, "x := 1")
	g := BuildCFG(body)
	blk := blockWith(g, func(n ast.Node) bool { return n == ast.Node(body) })
	if blk == nil {
		t.Fatal("no block carries the body sentinel node")
	}
	if last := blk.Nodes[len(blk.Nodes)-1]; last != ast.Node(body) {
		t.Error("sentinel is not the last node of its block")
	}
	if !reaches(blk, g.Exit) {
		t.Error("sentinel block does not reach Exit")
	}
}

func TestCFGIfElseJoin(t *testing.T) {
	_, body := parseFuncBody(t, `
if c {
	x = 1
} else {
	x = 2
}
y = 3`)
	g := BuildCFG(body)
	cond := blockWith(g, isIdentNamed("c"))
	if cond == nil {
		t.Fatal("no block evaluates the condition")
	}
	if len(cond.Succs) != 2 {
		t.Fatalf("condition block has %d successors, want 2 (then/else)", len(cond.Succs))
	}
	join := blockWith(g, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return false
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		return ok && id.Name == "y"
	})
	for _, s := range cond.Succs {
		if !reaches(s, join) {
			t.Error("a branch does not rejoin after the if")
		}
	}
}

func TestCFGForLoopBackEdge(t *testing.T) {
	_, body := parseFuncBody(t, `
for i := 0; i < n; i++ {
	x = 1
}
done()`)
	g := BuildCFG(body)
	head := blockWith(g, func(n ast.Node) bool {
		be, ok := n.(ast.Expr)
		if !ok {
			return false
		}
		_, ok = be.(*ast.BinaryExpr)
		return ok
	})
	if head == nil {
		t.Fatal("no block evaluates the loop condition")
	}
	// The condition decides body-or-after: two successors.
	if len(head.Succs) != 2 {
		t.Fatalf("loop head has %d successors, want 2", len(head.Succs))
	}
	// A back edge: some block reachable from head has head as successor.
	backEdge := false
	for _, b := range g.Blocks {
		if b != head && reaches(head, b) {
			for _, s := range b.Succs {
				if s == head {
					backEdge = true
				}
			}
		}
	}
	if !backEdge {
		t.Error("no back edge to the loop head")
	}
	if !reaches(head, g.Exit) {
		t.Error("loop exit path does not reach Exit")
	}
}

func TestCFGBreakContinue(t *testing.T) {
	_, body := parseFuncBody(t, `
for i := 0; i < n; i++ {
	if skip {
		continue
	}
	if stop {
		break
	}
	work()
}
done()`)
	g := BuildCFG(body)
	after := blockWith(g, isCallNamed("done"))
	if after == nil {
		t.Fatal("no block for the statement after the loop")
	}
	brk := blockWith(g, func(n ast.Node) bool {
		b, ok := n.(*ast.BranchStmt)
		return ok && b.Tok == token.BREAK
	})
	if brk == nil || !hasSucc(brk, after) && !reaches(brk, after) {
		t.Error("break does not flow to the statement after the loop")
	}
	cont := blockWith(g, func(n ast.Node) bool {
		b, ok := n.(*ast.BranchStmt)
		return ok && b.Tok == token.CONTINUE
	})
	work := blockWith(g, isCallNamed("work"))
	if cont == nil || work == nil {
		t.Fatal("missing continue or work block")
	}
	// continue targets the post statement, then the head — never the
	// rest of the body.
	if hasSucc(cont, work) {
		t.Error("continue flows into the remainder of the loop body")
	}
	if !reaches(cont, work) {
		t.Error("continue cannot re-enter the loop body via the head")
	}
}

func TestCFGSwitchFallthroughAndDefault(t *testing.T) {
	_, body := parseFuncBody(t, `
switch v {
case 1:
	a()
	fallthrough
case 2:
	b()
default:
	c()
}
done()`)
	g := BuildCFG(body)
	aBlk, bBlk, cBlk := blockWith(g, isCallNamed("a")), blockWith(g, isCallNamed("b")), blockWith(g, isCallNamed("c"))
	done := blockWith(g, isCallNamed("done"))
	if aBlk == nil || bBlk == nil || cBlk == nil || done == nil {
		t.Fatal("missing clause blocks")
	}
	if !hasSucc(aBlk, bBlk) {
		t.Error("fallthrough edge from case 1 to case 2 missing")
	}
	for _, blk := range []*CFGBlock{bBlk, cBlk} {
		if !reaches(blk, done) {
			t.Error("a clause does not reach the statement after the switch")
		}
	}
	// With a default clause, the head must not skip straight to after.
	head := blockWith(g, isIdentNamed("v"))
	if head == nil {
		t.Fatal("no block evaluates the switch tag")
	}
	for _, s := range head.Succs {
		if s == done {
			t.Error("switch with default has a direct head→after edge")
		}
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	_, body := parseFuncBody(t, `
if bad {
	panic("boom")
}
ok()`)
	g := BuildCFG(body)
	pan := blockWith(g, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		return ok && isPanicCall(es.X)
	})
	if pan == nil {
		t.Fatal("no panic block")
	}
	if _, ok := pan.Nodes[len(pan.Nodes)-1].(*ast.ExprStmt); !ok {
		t.Errorf("panic is not the terminator of its block (last node %T)", pan.Nodes[len(pan.Nodes)-1])
	}
	if len(pan.Succs) != 0 {
		t.Error("panic block has successors; a crashing path reaches no join")
	}
	if !reaches(g.Entry, g.Exit) {
		t.Error("the non-panicking path should still reach Exit")
	}
}

func TestCFGGotoAndLabeledBreak(t *testing.T) {
	_, body := parseFuncBody(t, `
outer:
for {
	for {
		if stop {
			break outer
		}
		goto cleanup
	}
}
cleanup:
done()`)
	g := BuildCFG(body)
	brk := blockWith(g, func(n ast.Node) bool {
		b, ok := n.(*ast.BranchStmt)
		return ok && b.Tok == token.BREAK
	})
	gt := blockWith(g, func(n ast.Node) bool {
		b, ok := n.(*ast.BranchStmt)
		return ok && b.Tok == token.GOTO
	})
	done := blockWith(g, isCallNamed("done"))
	if brk == nil || gt == nil || done == nil {
		t.Fatal("missing branch or label blocks")
	}
	if !reaches(brk, done) {
		t.Error("break outer does not reach the code after the labeled loop")
	}
	if !hasSucc(gt, nil) && !reaches(gt, done) {
		t.Error("goto cleanup does not reach its label")
	}
	// The inner loop has no normal exit; only break/goto leave it.
	if !reaches(g.Entry, g.Exit) {
		t.Error("Exit unreachable despite break/goto escape paths")
	}
}

func TestCFGRangeLoop(t *testing.T) {
	_, body := parseFuncBody(t, `
for _, v := range xs {
	use(v)
}
done()`)
	g := BuildCFG(body)
	head := blockWith(g, func(n ast.Node) bool { _, ok := n.(*ast.RangeStmt); return ok })
	if head == nil {
		t.Fatal("no block carries the RangeStmt per-iteration marker")
	}
	if len(head.Succs) != 2 {
		t.Fatalf("range head has %d successors, want 2 (body/after)", len(head.Succs))
	}
	use := blockWith(g, isCallNamed("use"))
	if use == nil || !hasSucc(use, head) {
		t.Error("range body does not loop back to the head")
	}
	// The operand evaluates once, before the head.
	x := blockWith(g, isIdentNamed("xs"))
	if x == nil || x == head {
		t.Error("range operand not evaluated exactly once before the head")
	}
}

func isCallNamed(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == name
	}
}

func hasSucc(b, s *CFGBlock) bool {
	if b == nil {
		return false
	}
	for _, x := range b.Succs {
		if x == s {
			return true
		}
	}
	return false
}
