package analysis

import "go/ast"

// This file is the forward abstract-interpretation core: a worklist
// fixpoint over the CFGs built in cfg.go, generic over the abstract
// state. Analyzers supply a Lattice (join/equality/copy over whole
// states) and a transfer function; the engine supplies iteration order,
// loop convergence, and reachability.
//
// The intended analyzer shape is two-phase:
//
//  1. Fixpoint: Forward(...) iterates transfer (with reporting off)
//     until every block's entry state stabilizes. Loops converge
//     because transfer is monotone over a finite-height lattice —
//     every shipped lattice is a map to small bitsets or bounded sets.
//  2. Replay: walk each *reached* block once more from its fixed entry
//     state, this time emitting diagnostics. Replay sees exactly the
//     states execution can see, so a diagnostic is never emitted from
//     a half-converged intermediate.
//
// The engine caps iteration defensively (a non-monotone transfer would
// otherwise spin); hitting the cap leaves conservative states in place
// rather than failing the lint run.

// A Lattice defines the join semilattice of abstract states S.
// Join must be commutative, associative, and idempotent up to Equal;
// transfer functions must be monotone with respect to it.
type Lattice[S any] interface {
	// Join combines two states into their least upper bound. It must
	// not mutate either argument.
	Join(a, b S) S
	// Equal reports whether two states carry the same facts.
	Equal(a, b S) bool
	// Clone returns an independent copy the caller may mutate.
	Clone(s S) S
}

// FlowResult is the outcome of a forward dataflow run.
type FlowResult[S any] struct {
	// In holds the abstract state at each block's entry, indexed by
	// CFGBlock.Index. Entries of unreached blocks are the zero S.
	In []S
	// Reached marks blocks reachable from Entry under the analysis.
	Reached []bool
	// Converged is false if the defensive iteration cap was hit.
	Converged bool
}

// maxFixpointPasses bounds worklist processing per function. Real
// lattices here converge in a handful of passes (loop nesting depth
// plus a constant); the cap only exists to turn a buggy non-monotone
// transfer into a conservative result instead of a hang.
const maxFixpointPasses = 1 << 14

// Forward runs a forward dataflow analysis over g: entry is the state
// at function entry, and transfer returns the state after executing one
// node (it may mutate and return its argument — the engine passes a
// private clone). Blocks are processed in index order, so diagnostics
// and results are deterministic.
func Forward[S any](g *CFG, lat Lattice[S], entry S, transfer func(S, ast.Node) S) FlowResult[S] {
	n := len(g.Blocks)
	res := FlowResult[S]{
		In:        make([]S, n),
		Reached:   make([]bool, n),
		Converged: true,
	}
	res.In[g.Entry.Index] = lat.Clone(entry)
	res.Reached[g.Entry.Index] = true

	pending := make([]bool, n)
	pending[g.Entry.Index] = true
	passes := 0
	for {
		// Lowest-index-first pop keeps iteration deterministic and
		// close to program order (blocks are numbered as built).
		next := -1
		for i, p := range pending {
			if p {
				next = i
				break
			}
		}
		if next < 0 {
			break
		}
		if passes++; passes > maxFixpointPasses {
			res.Converged = false
			break
		}
		pending[next] = false
		blk := g.Blocks[next]
		out := lat.Clone(res.In[next])
		for _, node := range blk.Nodes {
			out = transfer(out, node)
		}
		for _, succ := range blk.Succs {
			i := succ.Index
			if !res.Reached[i] {
				res.In[i] = lat.Clone(out)
				res.Reached[i] = true
				pending[i] = true
				continue
			}
			joined := lat.Join(res.In[i], out)
			if !lat.Equal(joined, res.In[i]) {
				res.In[i] = joined
				pending[i] = true
			}
		}
	}
	return res
}

// Replay walks every reached block once from its fixed entry state,
// calling transfer on each node — the reporting pass. transfer here is
// typically the same function used in Forward with diagnostics enabled.
func Replay[S any](g *CFG, lat Lattice[S], res FlowResult[S], transfer func(S, ast.Node) S) {
	for _, blk := range g.Blocks {
		if !res.Reached[blk.Index] {
			continue
		}
		st := lat.Clone(res.In[blk.Index])
		for _, node := range blk.Nodes {
			st = transfer(st, node)
		}
	}
}
