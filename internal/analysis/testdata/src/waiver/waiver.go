// Package waiver is a fixture for mclint's waiver machinery: a
// //mclint:<analyzer> comment suppresses that analyzer's diagnostics on
// its own line and the line below — exactly one site per waiver — and a
// waiver naming an unknown analyzer is itself reported.
package waiver

// Lead form: the waiver on the line above the range statement.
func waivedLead(m map[string]int) []int {
	var out []int
	//mclint:maporder the consumer treats out as an unordered bag
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

// Trailing form: waiver and flagged statement share a line.
func waivedTrailing(m map[string]int) []int {
	var out []int
	for _, v := range m { //mclint:maporder the consumer sorts before use
		out = append(out, v)
	}
	return out
}

// An identical loop without a waiver still fires: a waiver covers its
// own line and the next, nothing more.
func unwaived(m map[string]int) []int {
	var out []int
	for _, v := range m { // want `order-sensitive`
		out = append(out, v)
	}
	return out
}

// A typo in the analyzer name must not silently suppress nothing.
//mclint:maporders // want `unknown analyzer "maporders" in waiver`
func typoWaiver(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
