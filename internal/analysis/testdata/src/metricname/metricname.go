// Package metricname is a fixture for the metricname analyzer: literal
// names handed to obs.Registry registration calls must be snake_case and
// unique within the package; dynamic names and look-alike receivers stay
// quiet.
package metricname

import "fixture/obs"

func wire(r *obs.Registry) {
	// Clean registrations: every instrument kind, all snake_case, no reuse.
	r.MustCounter("packets_total", "fine")
	_, _ = r.Counter("drops_total", "fine")
	r.MustGauge("queue_depth", "fine")
	_ = r.GaugeFunc("cache_sessions", "fine", func() float64 { return 0 })
	r.MustCounterFunc("reads_total", "fine", func() uint64 { return 0 })
	_, _ = r.Histogram("packet_size_bytes", "fine", []int64{64, 512})

	// Shape violations.
	_, _ = r.Counter("UpperCase", "x")                            // want `metric name "UpperCase" is not snake_case`
	r.MustGauge("9starts_with_digit", "x")                        // want `metric name "9starts_with_digit" is not snake_case`
	_ = r.GaugeFunc("has-dash", "x", func() float64 { return 0 }) // want `metric name "has-dash" is not snake_case`
	r.MustHistogram("dotted.name", "x", []int64{1})               // want `metric name "dotted\.name" is not snake_case`

	// Duplicate literal names, including one assembled from constants.
	r.MustCounter("packets_total", "dup") // want `metric name "packets_total" already registered at metricname\.go:11`
	const assembled = "drops_" + "total"
	_, _ = r.Counter(assembled, "dup") // want `metric name "drops_total" already registered at metricname\.go:12`
}

// dynamicName shows the analyzer's limit: a name only known at run time
// is the registry's runtime validation's job.
func dynamicName(r *obs.Registry, n string) {
	r.MustCounter(n, "checked at registration time")
	r.MustCounter(n+"_total", "likewise")
}

// lookalike has the same method names on a different receiver type; the
// analyzer must key on obs.Registry, not on method names alone.
type lookalike struct{}

func (lookalike) MustCounter(name, help string) {}

func notARegistry(l lookalike) {
	l.MustCounter("Not A Metric", "different receiver stays quiet")
}

// waived shows the standard escape hatch: no want on these lines, so the
// fixture asserts the waiver suppresses the diagnostic.
func waived(r *obs.Registry) {
	//mclint:metricname exercising the waiver path
	r.MustCounter("Waived", "suppressed by the waiver above")
}
