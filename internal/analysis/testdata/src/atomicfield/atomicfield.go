// Package atomicfield is the fixture for the atomicfield analyzer:
// fields accessed both through sync/atomic and by plain read/write,
// atomic wrapper values copied directly, and the corrected variants
// (methods everywhere, address-of hand-off, pre-publication waiver).
package atomicfield

import "sync/atomic"

type counters struct {
	hits  uint64        // accessed via atomic.* functions — and, wrongly, plainly
	total atomic.Uint64 // wrapper type: methods only
	gauge int64         // plain everywhere: fine
}

func (c *counters) bump() {
	atomic.AddUint64(&c.hits, 1)
}

func (c *counters) read() uint64 {
	return c.hits // want `field hits is accessed with sync/atomic .* but read/written plainly here`
}

func (c *counters) reset() {
	c.hits = 0 // want `field hits is accessed with sync/atomic .* but read/written plainly here`
}

func (c *counters) okTotal() uint64 { return c.total.Load() }

func (c *counters) badTotal() atomic.Uint64 {
	return c.total // want `atomic field total \(sync/atomic\.Uint64\) is copied or assigned directly`
}

// view hands the atomic out by reference — the obs registry pattern —
// which is not a copy and stays quiet.
func view(c *counters) *atomic.Uint64 { return &c.total }

// loadMethodValue binds the method without calling it; still sanctioned.
func loadMethodValue(c *counters) func() uint64 { return c.total.Load }

func (c *counters) plainOnly() { c.gauge++ }

// fixed is the corrected variant of counters.hits: every access goes
// through sync/atomic.
type fixed struct{ n uint64 }

func inc(f *fixed) { atomic.AddUint64(&f.n, 1) }

func get(f *fixed) uint64 { return atomic.LoadUint64(&f.n) }

// boot shows the waiver pattern for single-goroutine initialization
// before publication.
type boot struct{ ready uint64 }

func newBoot() *boot {
	b := &boot{}
	b.ready = 1 //mclint:atomicfield pre-publication init: no other goroutine can hold b yet
	return b
}

func (b *boot) isReady() bool { return atomic.LoadUint64(&b.ready) == 1 }
