// Package lockscope is a fixture for the lockscope analyzer: the
// compute-outside-the-lock rule. Critical sections may move data
// (fields, builtins, conversions); they may not call functions.
package lockscope

import "sync"

type counter struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  map[string]int
}

func note(string) {}

func (c *counter) callUnderLock(k string) {
	c.mu.Lock()
	c.n[k]++
	note(k) // want `note called while "c\.mu" is held`
	c.mu.Unlock()
}

func (c *counter) computeOutside(k string) {
	c.mu.Lock()
	c.n[k]++
	c.mu.Unlock()
	note(k)
}

func (c *counter) builtinsAllowed(k string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.n) == 0 {
		c.n = make(map[string]int)
	}
	delete(c.n, k)
}

func (c *counter) deferredUnlockStillHeld(k string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	note(k) // want `note called while "c\.mu" is held`
}

func (c *counter) earlyReturnUnlocks(k string) {
	c.mu.Lock()
	if _, ok := c.n[k]; ok {
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	note(k)
}

func (c *counter) readLockCall(k string) int {
	c.rw.RLock()
	v := c.n[k]
	note(k) // want `note called while "c\.rw" is held`
	c.rw.RUnlock()
	return v
}

func (c *counter) readLockClean(k string) int {
	c.rw.RLock()
	v := c.n[k]
	c.rw.RUnlock()
	note(k)
	return v
}

func (c *counter) goroutineDoesNotInherit() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		note("async") // runs on its own goroutine, without the creator's lock
	}()
}

func (c *counter) conversionsAllowed(x int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n["x"] = int(uint32(x))
}
