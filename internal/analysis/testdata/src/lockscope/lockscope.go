// Package lockscope is a fixture for the lockscope analyzer: the
// compute-outside-the-lock rule. Critical sections may move data
// (fields, builtins, conversions); they may not call functions.
package lockscope

import "sync"

type counter struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  map[string]int
}

func note(string) {}

func (c *counter) callUnderLock(k string) {
	c.mu.Lock()
	c.n[k]++
	note(k) // want `note called while "c\.mu" is held`
	c.mu.Unlock()
}

func (c *counter) computeOutside(k string) {
	c.mu.Lock()
	c.n[k]++
	c.mu.Unlock()
	note(k)
}

func (c *counter) builtinsAllowed(k string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.n) == 0 {
		c.n = make(map[string]int)
	}
	delete(c.n, k)
}

func (c *counter) deferredUnlockStillHeld(k string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	note(k) // want `note called while "c\.mu" is held`
}

func (c *counter) earlyReturnUnlocks(k string) {
	c.mu.Lock()
	if _, ok := c.n[k]; ok {
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	note(k)
}

func (c *counter) readLockCall(k string) int {
	c.rw.RLock()
	v := c.n[k]
	note(k) // want `note called while "c\.rw" is held`
	c.rw.RUnlock()
	return v
}

func (c *counter) readLockClean(k string) int {
	c.rw.RLock()
	v := c.n[k]
	c.rw.RUnlock()
	note(k)
	return v
}

func (c *counter) goroutineDoesNotInherit() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		note("async") // runs on its own goroutine, without the creator's lock
	}()
}

func (c *counter) conversionsAllowed(x int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n["x"] = int(uint32(x))
}

type stripe struct {
	mu sync.Mutex
	n  map[string]int
}

func (s *stripe) bump(k string) { s.n[k]++ }

type stripedCounter struct {
	stripes []stripe
}

// stripeOwnCall is the striping idiom: the lock and the call are both
// reached through the same local drawn from an indexed element, so the
// call IS the critical section. No finding.
func (c *stripedCounter) stripeOwnCall(i int, k string) {
	sh := &c.stripes[i]
	sh.mu.Lock()
	sh.bump(k)
	sh.mu.Unlock()
}

// stripeDeferredUnlock keeps the stripe lock to function end; calls
// through the stripe local stay exempt.
func (c *stripedCounter) stripeDeferredUnlock(i int, k string) {
	sh := &c.stripes[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.bump(k)
}

// stripeForeignCall: a call not reached through the locked stripe gets
// no exemption.
func (c *stripedCounter) stripeForeignCall(i int, k string) {
	sh := &c.stripes[i]
	sh.mu.Lock()
	note(k) // want `note called while "sh\.mu" is held`
	sh.mu.Unlock()
}

// stripeCrossStripe: touching a *different* stripe under this stripe's
// lock reintroduces cross-shard coupling — still a finding.
func (c *stripedCounter) stripeCrossStripe(i, j int, k string) {
	sh := &c.stripes[i]
	other := &c.stripes[j]
	sh.mu.Lock()
	other.bump(k) // want `other\.bump called while "sh\.mu" is held`
	sh.mu.Unlock()
}

// plainPointerNotStripe: a pointer copy that is not an indexed element
// is not a stripe; calls through it under its lock are findings.
func plainPointerNotStripe(s *stripe, k string) {
	m := s
	m.mu.Lock()
	m.bump(k) // want `m\.bump called while "m\.mu" is held`
	m.mu.Unlock()
}
