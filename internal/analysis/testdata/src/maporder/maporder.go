// Package maporder is a fixture for the maporder analyzer: range-over-
// map bodies that are provably order-insensitive stay quiet; bodies
// whose effect depends on visit order are flagged.
package maporder

import "sort"

func sum(m map[string]int) int {
	total := 0
	for _, v := range m { // commutative accumulation
		total += v
	}
	return total
}

func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func keyed(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m { // keyed writes land at the same key in any order
		out[k] = v * 2
	}
	return out
}

func collectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // collect-then-sort: the sort erases append order
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func minVal(m map[string]int) int {
	best := int(^uint(0) >> 1)
	for _, v := range m { // running-extremum update
		if v < best {
			best = v
		}
	}
	return best
}

func filtered(m map[string]int) int {
	total := 0
	for k, v := range m { // pure filter + accumulation
		if len(k) == 0 {
			continue
		}
		total += v
	}
	return total
}

func pruned(m map[string]int, dead map[string]bool) {
	for k := range m {
		if dead[k] {
			delete(m, k)
		}
	}
}

func appendUnsorted(m map[string]int) []int {
	var out []int
	for _, v := range m { // want `order-sensitive`
		out = append(out, v)
	}
	return out
}

func concat(m map[string]int) string {
	s := ""
	for k := range m { // want `order-sensitive`
		s += k
	}
	return s
}

func firstKey(m map[string]int) string {
	for k := range m { // want `order-sensitive`
		return k
	}
	return ""
}

func callsOut(m map[string]int, f func(string)) {
	for k := range m { // want `order-sensitive`
		f(k)
	}
}

func collectedButNeverSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want `order-sensitive`
		keys = append(keys, k)
	}
	return keys
}
