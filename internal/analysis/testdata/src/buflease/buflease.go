// Package buflease is the fixture for the buflease analyzer: every
// documented bug class (use-after-Release, double Release on converging
// paths, Release skipped on an early return, escaping Data aliases,
// goroutine capture) paired with a corrected variant the analyzer must
// accept, plus one waived site.
package buflease

import "fixture/transport"

type sink struct{ last []byte }

var stash []byte

// --- use after Release -------------------------------------------------

func useAfterRelease(m transport.Message) int {
	m.Release()
	return len(m.Data) // want `m\.Data used after Release`
}

func aliasUseAfterRelease(m transport.Message) byte {
	d := m.Data[4:8] // slicing preserves the alias
	m.Release()
	return d[0] // want `alias of m\.Data used after Release`
}

// maybeUseAfterRelease: Release on only one branch; the merged state is
// "possibly released", and the fall-off end possibly leaks.
func maybeUseAfterRelease(m transport.Message, drop bool) {
	if drop {
		m.Release()
	}
	_ = len(m.Data) // want `m\.Data may be used after Release`
} // want `m\.Release\(\) may be skipped on this return path`

// copyViaString is the corrected variant: string() copies, so the value
// survives Release.
func copyViaString(m transport.Message) string {
	s := string(m.Data)
	m.Release()
	return s
}

// --- double Release ----------------------------------------------------

func doubleRelease(m transport.Message) {
	m.Release()
	m.Release() // want `^double Release of m$`
}

func doubleReleaseMerge(m transport.Message, drop bool) {
	if drop {
		m.Release()
	}
	m.Release() // want `possible double Release of m: already released on a converging path`
}

func deferredDouble(m transport.Message) {
	defer m.Release() // want `double Release of m: deferred Release runs after an explicit Release`
	m.Release()
}

// releaseOncePerBranch is the corrected variant: exactly one Release on
// every path.
func releaseOncePerBranch(m transport.Message, drop bool) {
	if drop {
		m.Release()
		return
	}
	_ = len(m.Data)
	m.Release()
}

// --- Release skipped on a return path ----------------------------------

func earlyReturnLeak(m transport.Message, bad bool) {
	if bad {
		return // want `m\.Release\(\) is skipped on this return path`
	}
	m.Release()
}

// deferRelease is the corrected variant: a deferred Release covers every
// return path, including the early one.
func deferRelease(m transport.Message, bad bool) {
	defer m.Release()
	if bad {
		return
	}
	_ = len(m.Data)
}

// handOff is the other corrected variant: passing the message to a
// callee transfers ownership, so the skipped-Release obligation lifts.
func handOff(m transport.Message, drop bool) {
	if drop {
		m.Release()
		return
	}
	process(m)
}

func process(m transport.Message) { m.Release() }

// neverReleases makes no ownership promise at all: not releasing is
// legal (the buffer falls to the GC), so nothing is reported.
func neverReleases(m transport.Message, s *sink) {
	s.last = m.Data
}

// --- escaping aliases --------------------------------------------------

func escapeToField(m transport.Message, s *sink) {
	s.last = m.Data // want `alias of m\.Data stored outside the handler frame`
	m.Release()
}

func escapeToGlobal(m transport.Message) {
	stash = m.Data // want `alias of m\.Data stored in a package-level variable`
	m.Release()
}

func escapeToChannel(m transport.Message, ch chan []byte) {
	ch <- m.Data // want `alias of m\.Data sent on a channel`
	m.Release()
}

func escapeViaReturn(m transport.Message) []byte {
	d := m.Data
	m.Release()
	return d // want `alias of m\.Data used after Release` `alias of m\.Data returned`
}

// escapeCopied is the corrected variant: append into a fresh backing
// array breaks the alias before the store.
func escapeCopied(m transport.Message, s *sink) {
	s.last = append([]byte(nil), m.Data...)
	m.Release()
}

// waivedEscape shows the escape hatch: the justification rides on the
// waiver comment.
func waivedEscape(m transport.Message, s *sink) {
	s.last = m.Data //mclint:buflease consumer provably drains s.last before the pool reissues this buffer
	m.Release()
}

// --- goroutine capture -------------------------------------------------

func goroutineCapture(m transport.Message) {
	d := m.Data
	go func() {
		_ = d[0] // want `goroutine captures alias of m\.Data`
	}()
	m.Release()
}

func goroutineCaptureMessage(m transport.Message) {
	go func() {
		_ = m.Data // want `goroutine captures message m`
	}()
	m.Release()
}

// goroutineCopied is the corrected variant: the goroutine closes over a
// private copy.
func goroutineCopied(m transport.Message) {
	d := append([]byte(nil), m.Data...)
	go func() {
		_ = d[0]
	}()
	m.Release()
}

// --- loops: the fixpoint at work ---------------------------------------

// loopRelease releases inside the loop body; the back edge makes the
// second iteration's state "possibly released".
func loopRelease(m transport.Message, n int) {
	for i := 0; i < n; i++ {
		_ = m.Data[0] // want `m\.Data may be used after Release`
		m.Release()   // want `possible double Release of m`
	}
} // want `m\.Release\(\) may be skipped on this return path`

// rangeRelease is the corrected loop: each iteration owns a distinct
// message, so per-iteration Release is exactly once per buffer.
func rangeRelease(ms []transport.Message) {
	for _, m := range ms {
		_ = len(m.Data)
		m.Release()
	}
}
