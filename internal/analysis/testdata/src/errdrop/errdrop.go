// Package errdrop is a fixture for the errdrop analyzer: error returns
// on the network paths must be handled or visibly assigned away.
package errdrop

import "errors"

func fallible() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

func pure() int { return 1 }

type conn struct{}

func (conn) Close() error { return nil }
func (conn) Flush() error { return nil }

func drops() {
	fallible()    // want `includes an error that is discarded`
	pair()        // want `includes an error that is discarded`
	go fallible() // want `unobservable from a go statement`
	var c conn
	defer c.Flush() // want `error returned by deferred c\.Flush is discarded`
}

func handles() error {
	if err := fallible(); err != nil {
		return err
	}
	_ = fallible() // explicit discard is visible intent
	_, _ = pair()
	var c conn
	defer c.Close() // deferred Close is conventional teardown
	pure()          // no error in the results
	go pure()
	return nil
}
