// Package obs is a stub of the real observability registry, just enough
// surface for the metricname fixture: the analyzer matches receivers by
// package name ("obs") and type name ("Registry"), so this stand-in
// exercises it without importing the module under analysis.
package obs

// Counter, Gauge, and Histogram are opaque stand-ins for the real
// instrument types.
type Counter struct{}
type Gauge struct{}
type Histogram struct{}

// Registry mimics the registration surface of the real obs.Registry.
type Registry struct{}

func (r *Registry) Counter(name, help string) (*Counter, error)           { return &Counter{}, nil }
func (r *Registry) MustCounter(name, help string) *Counter                { return &Counter{} }
func (r *Registry) Gauge(name, help string) (*Gauge, error)               { return &Gauge{}, nil }
func (r *Registry) MustGauge(name, help string) *Gauge                    { return &Gauge{} }
func (r *Registry) CounterFunc(name, help string, fn func() uint64) error { return nil }
func (r *Registry) MustCounterFunc(name, help string, fn func() uint64)   {}
func (r *Registry) GaugeFunc(name, help string, fn func() float64) error  { return nil }
func (r *Registry) MustGaugeFunc(name, help string, fn func() float64)    {}
func (r *Registry) Histogram(name, help string, bounds []int64) (*Histogram, error) {
	return &Histogram{}, nil
}
func (r *Registry) MustHistogram(name, help string, bounds []int64) *Histogram {
	return &Histogram{}
}
