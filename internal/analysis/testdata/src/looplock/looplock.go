// Package looplock is a fixture for the looplock analyzer: no
// per-iteration mutex acquisition inside loop bodies. Hoist the lock,
// snapshot the data, or load through an atomic instead.
package looplock

import "sync"

type feed struct {
	mu      sync.Mutex
	rw      sync.RWMutex
	handler func([]byte)
	queue   [][]byte
}

func (f *feed) lockPerDatagram(pkts [][]byte) {
	for _, p := range pkts {
		f.mu.Lock() // want `f\.mu\.Lock acquired inside a loop body`
		h := f.handler
		f.mu.Unlock()
		h(p)
	}
}

func (f *feed) rlockInForBody(pkts [][]byte) {
	for i := 0; i < len(pkts); i++ {
		f.rw.RLock() // want `f\.rw\.RLock acquired inside a loop body`
		h := f.handler
		f.rw.RUnlock()
		h(pkts[i])
	}
}

func (f *feed) lockInCondition() {
	for f.tryAdvance() {
	}
}

// tryAdvance locks outside any loop — the call site's loop does not
// taint the callee.
func (f *feed) tryAdvance() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.queue) == 0 {
		return false
	}
	f.queue = f.queue[1:]
	return true
}

func (f *feed) hoistedLock(pkts [][]byte) {
	f.mu.Lock()
	h := f.handler
	f.mu.Unlock()
	for _, p := range pkts {
		h(p)
	}
}

// callbackInLoop defines a closure per iteration; the closure runs
// later, so its lock is not a per-iteration acquisition of this loop.
func (f *feed) callbackInLoop(reg func(func() int)) {
	for i := 0; i < 3; i++ {
		reg(func() int {
			f.mu.Lock()
			defer f.mu.Unlock()
			return len(f.queue)
		})
	}
}

// loopInsideClosure: the closure body has its own loop, and locking per
// iteration there is still a finding.
func (f *feed) loopInsideClosure(pkts [][]byte) func() {
	return func() {
		for range pkts {
			f.mu.Lock() // want `f\.mu\.Lock acquired inside a loop body`
			f.mu.Unlock()
		}
	}
}

// drainUntilQuiescent re-takes the lock each round on purpose so
// producers can interleave — the waivable shape.
func (f *feed) drainUntilQuiescent(send func([]byte)) {
	for {
		f.mu.Lock() //mclint:looplock producers must interleave between rounds
		if len(f.queue) == 0 {
			f.mu.Unlock()
			return
		}
		q := f.queue
		f.queue = nil
		f.mu.Unlock()
		for _, p := range q {
			send(p)
		}
	}
}
