// Package looplock is a fixture for the looplock analyzer: no
// per-iteration mutex acquisition inside loop bodies. Hoist the lock,
// snapshot the data, or load through an atomic instead.
package looplock

import "sync"

type feed struct {
	mu      sync.Mutex
	rw      sync.RWMutex
	handler func([]byte)
	queue   [][]byte
}

func (f *feed) lockPerDatagram(pkts [][]byte) {
	for _, p := range pkts {
		f.mu.Lock() // want `f\.mu\.Lock acquired inside a loop body`
		h := f.handler
		f.mu.Unlock()
		h(p)
	}
}

func (f *feed) rlockInForBody(pkts [][]byte) {
	for i := 0; i < len(pkts); i++ {
		f.rw.RLock() // want `f\.rw\.RLock acquired inside a loop body`
		h := f.handler
		f.rw.RUnlock()
		h(pkts[i])
	}
}

func (f *feed) lockInCondition() {
	for f.tryAdvance() {
	}
}

// tryAdvance locks outside any loop — the call site's loop does not
// taint the callee.
func (f *feed) tryAdvance() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.queue) == 0 {
		return false
	}
	f.queue = f.queue[1:]
	return true
}

func (f *feed) hoistedLock(pkts [][]byte) {
	f.mu.Lock()
	h := f.handler
	f.mu.Unlock()
	for _, p := range pkts {
		h(p)
	}
}

// callbackInLoop defines a closure per iteration; the closure runs
// later, so its lock is not a per-iteration acquisition of this loop.
func (f *feed) callbackInLoop(reg func(func() int)) {
	for i := 0; i < 3; i++ {
		reg(func() int {
			f.mu.Lock()
			defer f.mu.Unlock()
			return len(f.queue)
		})
	}
}

// loopInsideClosure: the closure body has its own loop, and locking per
// iteration there is still a finding.
func (f *feed) loopInsideClosure(pkts [][]byte) func() {
	return func() {
		for range pkts {
			f.mu.Lock() // want `f\.mu\.Lock acquired inside a loop body`
			f.mu.Unlock()
		}
	}
}

type striped struct {
	shards []feed
}

// stripedViaLocal walks the stripes locking each one in turn through a
// derived local — the receiver depends on the loop variable, so every
// pass acquires a *different* mutex. This is the sharded-cache scan
// idiom, not per-iteration re-acquisition; no finding.
func (s *striped) stripedViaLocal() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.queue)
		sh.mu.Unlock()
	}
	return n
}

// stripedDirect locks through the indexed element without a local —
// same striping, same exemption.
func (s *striped) stripedDirect() {
	for i := range s.shards {
		s.shards[i].mu.Lock()
		s.shards[i].queue = nil
		s.shards[i].mu.Unlock()
	}
}

// pinnedShard re-locks one fixed stripe every pass: the receiver is
// loop-invariant, so this is the real per-iteration pattern and still a
// finding.
func (s *striped) pinnedShard(pkts [][]byte) {
	for range pkts {
		sh := &s.shards[0]
		sh.mu.Lock() // want `sh\.mu\.Lock acquired inside a loop body`
		sh.queue = nil
		sh.mu.Unlock()
	}
}

// drainUntilQuiescent re-takes the lock each round on purpose so
// producers can interleave — the waivable shape.
func (f *feed) drainUntilQuiescent(send func([]byte)) {
	for {
		f.mu.Lock() //mclint:looplock producers must interleave between rounds
		if len(f.queue) == 0 {
			f.mu.Unlock()
			return
		}
		q := f.queue
		f.queue = nil
		f.mu.Unlock()
		for _, p := range q {
			send(p)
		}
	}
}
