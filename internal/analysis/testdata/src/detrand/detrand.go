// Package detrand is a fixture for the detrand analyzer: a stand-in for
// a deterministic simulation package that reaches for ambient entropy.
package detrand

import (
	crand "crypto/rand"
	"math/rand/v2"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()   // want `time\.Now reads the wall clock`
	_ = time.Since(start) // want `time\.Since reads the wall clock`
	f := time.Now         // want `time\.Now reads the wall clock`
	_ = f
	return 2 * time.Second // time arithmetic without reading the clock is fine
}

func timeTypesAllowed(deadline time.Time, d time.Duration) bool {
	return deadline.Add(d).IsZero() // methods on caller-supplied times are fine
}

func globalRand() int {
	if rand.IntN(2) == 0 { // want `math/rand/v2\.IntN draws from the process-global generator`
		return rand.Int() // want `math/rand/v2\.Int draws from the process-global generator`
	}
	r := rand.New(rand.NewPCG(1, 2)) // explicit generators are the sanctioned path
	return r.IntN(10)
}

func cryptoRand() []byte {
	buf := make([]byte, 8)
	_, _ = crand.Read(buf) // want `crypto/rand\.Read is nondeterministic entropy`
	return buf
}
