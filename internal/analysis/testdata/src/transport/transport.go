// Package transport stubs the zero-copy message type for buflease
// fixtures. The analyzer matches the type by package name and type name
// (like the real analyzers match obs.Registry), so fixtures exercise
// the ownership rules without importing the module under analysis.
package transport

// Addr stands in for the transport's source address.
type Addr struct{ IP string }

// Message mirrors the real transport.Message ownership surface: Data
// aliases a pooled receive buffer valid until Release.
type Message struct {
	From Addr
	Data []byte
}

// Release returns the buffer to its pool.
func (m *Message) Release() {}
