package analysis

import "testing"

// TestWaiverFixture pins the waiver contract: each //mclint:maporder
// waiver suppresses exactly the one diagnostic at its site (both the
// lead and trailing comment forms), an identical unwaived loop still
// fires, and a waiver naming an unknown analyzer is itself reported.
func TestWaiverFixture(t *testing.T) {
	diags := runFixture(t, "waiver", MapOrder)

	// The fixture has three violating loops, two of them waived, plus
	// one bogus waiver comment → exactly two findings survive.
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2:\n%s", len(diags), diagnosticSummary(diags))
	}
	var mapOrderCount, waiverCount int
	for _, d := range diags {
		switch d.Analyzer {
		case MapOrder.Name:
			mapOrderCount++
		case WaiverDiagnostic:
			waiverCount++
		}
	}
	if mapOrderCount != 1 {
		t.Errorf("got %d surviving maporder diagnostics, want exactly 1 (each waiver suppresses exactly one):\n%s",
			mapOrderCount, diagnosticSummary(diags))
	}
	if waiverCount != 1 {
		t.Errorf("got %d unknown-waiver diagnostics, want exactly 1:\n%s", waiverCount, diagnosticSummary(diags))
	}
}
