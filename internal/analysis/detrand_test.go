package analysis

import "testing"

func TestDetRandFixture(t *testing.T) {
	diags := runFixture(t, "detrand", DetRand)
	if len(diags) != 6 {
		t.Errorf("got %d diagnostics, want 6:\n%s", len(diags), diagnosticSummary(diags))
	}
}
