package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicField flags struct fields with mixed atomic and plain access —
// the bug class the transport handler pointer and the obs metrics hot
// paths are one careless edit away from. A field read via
// atomic.LoadUint64 in one function and via a bare load in another
// compiles, passes tests on amd64, and tears on weaker memory models;
// an atomic.Int64 copied by value silently forks the counter.
//
// Two patterns are reported, per package:
//
//   - a plain-typed field passed by address to a sync/atomic function
//     (atomic.AddUint64(&s.n, 1)) AND also read or written directly
//     (s.n++, v := s.n) — every access must go through sync/atomic;
//   - a field of an atomic wrapper type (atomic.Bool/Int64/Uint64/
//     Pointer/Value/...) used other than through its methods or by
//     address — assigning or copying the value defeats the type.
//
// Taking a field's address (&s.n) without an atomic call around it is
// not itself flagged: handing an atomic out by reference is how the obs
// registry's CounterFunc views work. The analysis is flow-insensitive;
// single-goroutine initialization before publication needs an
// //mclint:atomicfield waiver with the justification.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc: "flag struct fields accessed both through sync/atomic and by " +
		"ordinary read/write, and atomic-typed fields copied by value",
	Packages: []string{
		"sessiondir/internal/transport",
		"sessiondir/internal/obs",
		"sessiondir/internal/par",
	},
	Run: runAtomicField,
}

func runAtomicField(pass *Pass) {
	a := &atomicFieldPass{
		pass:      pass,
		accounted: map[*ast.SelectorExpr]bool{},
		atomicFn:  map[*types.Var][]token.Pos{},
		plain:     map[*types.Var][]token.Pos{},
	}
	// Pass 1: account for the legitimate access forms — sync/atomic
	// calls on &field, atomic-typed method selections, and bare
	// address-of — so pass 2 sees only what's left.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn, ok := n.Fun.(*ast.SelectorExpr); ok && a.isAtomicPkgFunc(fn) {
					for _, arg := range n.Args {
						if sel, fv := a.addressedField(arg); fv != nil {
							a.atomicFn[fv] = append(a.atomicFn[fv], arg.Pos())
							a.accounted[sel] = true
						}
					}
				}
			case *ast.SelectorExpr:
				// x.f.Load / x.f.Store(...): a method selection on the
				// field (bound or called) is the sanctioned access.
				if s, ok := pass.Info.Selections[n]; ok && s.Kind() == types.MethodVal {
					if inner, ok := n.X.(*ast.SelectorExpr); ok {
						a.accounted[inner] = true
					}
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if sel, fv := a.addressedField(n); fv != nil {
						_ = fv
						a.accounted[sel] = true
					}
				}
			}
			return true
		})
	}
	// Pass 2: everything else touching a field is a plain access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || a.accounted[sel] {
				return true
			}
			fv := a.fieldOf(sel)
			if fv == nil {
				return true
			}
			if isAtomicWrapperType(fv.Type()) {
				pass.Reportf(sel.Pos(),
					"atomic field %s (%s) is copied or assigned directly; atomic values must not be copied — use its Load/Store methods",
					fv.Name(), fv.Type())
				return true
			}
			a.plain[fv] = append(a.plain[fv], sel.Pos())
			return true
		})
	}
	// Mixed-mode report for plain-typed fields.
	fields := make([]*types.Var, 0, len(a.atomicFn))
	for fv := range a.atomicFn {
		if len(a.plain[fv]) > 0 {
			fields = append(fields, fv)
		}
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].Pos() < fields[j].Pos() })
	for _, fv := range fields {
		atomicAt := pass.Fset.Position(minPos(a.atomicFn[fv]))
		for _, pos := range a.plain[fv] {
			pass.Reportf(pos,
				"field %s is accessed with sync/atomic (e.g. %s:%d) but read/written plainly here; every access must go through sync/atomic",
				fv.Name(), shortFile(atomicAt.Filename), atomicAt.Line)
		}
	}
}

type atomicFieldPass struct {
	pass      *Pass
	accounted map[*ast.SelectorExpr]bool
	atomicFn  map[*types.Var][]token.Pos // plain-typed fields passed to sync/atomic funcs
	plain     map[*types.Var][]token.Pos // plain-typed fields accessed directly
}

// isAtomicPkgFunc matches atomic.LoadX / atomic.AddX / ... — a selector
// on the imported sync/atomic package.
func (a *atomicFieldPass) isAtomicPkgFunc(sel *ast.SelectorExpr) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := a.pass.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

// addressedField matches &x.f (possibly parenthesized), returning the
// selector and the struct field it denotes.
func (a *atomicFieldPass) addressedField(e ast.Expr) (*ast.SelectorExpr, *types.Var) {
	if p, ok := e.(*ast.ParenExpr); ok {
		return a.addressedField(p.X)
	}
	u, ok := e.(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil, nil
	}
	sel, ok := u.X.(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	return sel, a.fieldOf(sel)
}

// fieldOf resolves a selector to the struct field it reads or writes,
// or nil if it is not a field access.
func (a *atomicFieldPass) fieldOf(sel *ast.SelectorExpr) *types.Var {
	if s, ok := a.pass.Info.Selections[sel]; ok {
		if s.Kind() != types.FieldVal {
			return nil
		}
		if fv, ok := s.Obj().(*types.Var); ok {
			return fv
		}
		return nil
	}
	if fv, ok := a.pass.Info.Uses[sel.Sel].(*types.Var); ok && fv.IsField() {
		return fv
	}
	return nil
}

// isAtomicWrapperType reports whether t is one of sync/atomic's wrapper
// types (Bool, Int32, Int64, Uint32, Uint64, Uintptr, Pointer[T],
// Value), matched by defining package path so instantiated generics
// qualify too.
func isAtomicWrapperType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

func minPos(ps []token.Pos) token.Pos {
	m := ps[0]
	for _, p := range ps[1:] {
		if p < m {
			m = p
		}
	}
	return m
}

func shortFile(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == '\\' {
			return path[i+1:]
		}
	}
	return path
}
