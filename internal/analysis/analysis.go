// Package analysis is mclint's static-analysis driver: a stdlib-only
// (go/ast, go/parser, go/types) framework that loads this module's
// packages and runs a pluggable set of analyzers over them.
//
// The analyzers enforce the repository's determinism and concurrency
// contracts (DESIGN.md §9): the paper's allocators only work if every
// site computes the same answer from the same observations, and the
// experiment engine promises bit-identical output at any worker count.
// Those guarantees are trivially destroyed by a stray time.Now, a global
// math/rand draw, or an unordered map range feeding RNG draws or output —
// exactly the class of hazard a human reviewer misses. mclint makes the
// contract machine-checked.
//
// A diagnostic can be waived with a comment on the flagged line or the
// line directly above it:
//
//	//mclint:<analyzer> optional justification
//
// Waivers naming an analyzer that does not exist are themselves reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one named check. Run inspects a single type-checked
// package and reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in output, -only/-skip selection, and
	// waiver comments. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Packages lists the import paths the analyzer applies to. The driver
	// only invokes Run on packages whose path appears here (nil means
	// every loaded package, which no shipped analyzer uses).
	Packages []string
	// Run performs the analysis on one package.
	Run func(*Pass)
}

// AppliesTo reports whether the analyzer targets the package path.
func (a *Analyzer) AppliesTo(path string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if p == path {
			return true
		}
	}
	return false
}

// A Pass carries one package's syntax and type information to an
// analyzer's Run function.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// A Diagnostic is one finding, addressed by file position. The struct is
// the unit of mclint's -json output.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// WaiverDiagnostic is the pseudo-analyzer name used for findings about
// malformed waiver comments themselves.
const WaiverDiagnostic = "mclint"

// All returns the full analyzer registry in fixed order. Waiver comments
// are validated against this set regardless of -only/-skip selection.
func All() []*Analyzer {
	return []*Analyzer{DetRand, MapOrder, LockScope, LoopLock, ErrDrop, MetricName, BufLease, AtomicField}
}

// ByName returns the registered analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Select resolves -only/-skip analyzer selections against the registry.
// Both arguments are comma-separated analyzer names; empty means "no
// constraint". Unknown names are an error, and selecting and skipping at
// once is rejected to keep invocations unambiguous.
func Select(only, skip string) ([]*Analyzer, error) {
	if only != "" && skip != "" {
		return nil, fmt.Errorf("use -only or -skip, not both")
	}
	parse := func(csv string) (map[string]bool, error) {
		if csv == "" {
			return nil, nil
		}
		set := map[string]bool{}
		for _, name := range splitComma(csv) {
			if ByName(name) == nil {
				return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, analyzerNames())
			}
			set[name] = true
		}
		return set, nil
	}
	onlySet, err := parse(only)
	if err != nil {
		return nil, err
	}
	skipSet, err := parse(skip)
	if err != nil {
		return nil, err
	}
	var out []*Analyzer
	for _, a := range All() {
		if onlySet != nil && !onlySet[a.Name] {
			continue
		}
		if skipSet[a.Name] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("selection matches no analyzers")
	}
	return out, nil
}

func analyzerNames() string {
	names := make([]string, 0, len(All()))
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}

func splitComma(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
