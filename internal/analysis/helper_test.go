package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// runFixture loads testdata/src/<name>, runs the analyzers over it (with
// waiver processing, ignoring their package targeting), and checks the
// resulting diagnostics against the fixture's `// want "regexp"`
// comments, analysistest-style: every diagnostic must match a want on
// its line, and every want must be hit by a diagnostic. It returns the
// diagnostics for additional assertions.
func runFixture(t *testing.T, name string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	l := newLoader(filepath.Join("testdata", "src"), "fixture")
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", name), "fixture/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	diags := RunFixture(pkg, analyzers...)
	checkWants(t, pkg, diags)
	return diags
}

type wantKey struct {
	file string
	line int
}

// wantRE matches the expectation marker inside a comment's text. It may
// be the whole comment (`// want "re"`) or ride behind other content,
// as on a waiver line (`//mclint:x // want "re"`).
var wantRE = regexp.MustCompile("(?:^|\\s)want\\s+((?:[\"`].*)$)")

func checkWants(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	wants := map[wantKey][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := wantKey{pos.Filename, pos.Line}
				for _, pat := range parseWantPatterns(t, pos.Filename, pos.Line, m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}

	matched := map[wantKey][]bool{}
	for _, d := range diags {
		key := wantKey{d.File, d.Line}
		res := wants[key]
		if matched[key] == nil {
			matched[key] = make([]bool, len(res))
		}
		found := false
		for i, re := range res {
			if !matched[key][i] && re.MatchString(d.Message) {
				matched[key][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic (no matching want): %s: %s", d, d.Analyzer, d.Message)
		}
	}
	for key, res := range wants {
		for i, re := range res {
			if matched[key] == nil || !matched[key][i] {
				t.Errorf("%s:%d: no diagnostic matched want %q", key.file, key.line, re)
			}
		}
	}
}

// parseWantPatterns splits `"re1" "re2"` (double- or backquoted) into
// the individual regexp sources.
func parseWantPatterns(t *testing.T, file string, line int, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var pat string
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '"' && s[i-1] != '\\' {
					end = i
					break
				}
			}
			if end < 0 {
				t.Fatalf("%s:%d: unterminated want pattern %q", file, line, s)
			}
			unq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", file, line, s[:end+1], err)
			}
			pat, s = unq, s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s:%d: unterminated want pattern %q", file, line, s)
			}
			pat, s = s[1:end+1], s[end+2:]
		default:
			t.Fatalf("%s:%d: want patterns must be quoted, got %q", file, line, s)
		}
		out = append(out, pat)
		s = strings.TrimSpace(s)
	}
	return out
}

// diagnosticSummary is a debugging aid for failed fixture assertions.
func diagnosticSummary(diags []Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&sb, "  %s\n", d)
	}
	return sb.String()
}
