package analysis

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestSelect(t *testing.T) {
	cases := []struct {
		only, skip string
		wantNames  []string
		wantErr    bool
	}{
		{"", "", []string{"detrand", "maporder", "lockscope", "looplock", "errdrop", "metricname", "buflease", "atomicfield"}, false},
		{"detrand", "", []string{"detrand"}, false},
		{"maporder,errdrop", "", []string{"maporder", "errdrop"}, false},
		{"buflease,atomicfield", "", []string{"buflease", "atomicfield"}, false},
		{"", "errdrop", []string{"detrand", "maporder", "lockscope", "looplock", "metricname", "buflease", "atomicfield"}, false},
		{"", "detrand, maporder", []string{"lockscope", "looplock", "errdrop", "metricname", "buflease", "atomicfield"}, false},
		{"nosuch", "", nil, true},
		{"", "nosuch", nil, true},
		{"detrand", "errdrop", nil, true}, // -only and -skip are exclusive
		{"", "detrand,maporder,lockscope,looplock,errdrop,metricname,buflease,atomicfield", nil, true}, // empty selection
	}
	for _, c := range cases {
		got, err := Select(c.only, c.skip)
		if c.wantErr {
			if err == nil {
				t.Errorf("Select(%q, %q): expected error, got %d analyzers", c.only, c.skip, len(got))
			}
			continue
		}
		if err != nil {
			t.Errorf("Select(%q, %q): %v", c.only, c.skip, err)
			continue
		}
		names := make([]string, len(got))
		for i, a := range got {
			names[i] = a.Name
		}
		if len(names) != len(c.wantNames) {
			t.Errorf("Select(%q, %q) = %v, want %v", c.only, c.skip, names, c.wantNames)
			continue
		}
		for i := range names {
			if names[i] != c.wantNames[i] {
				t.Errorf("Select(%q, %q) = %v, want %v", c.only, c.skip, names, c.wantNames)
				break
			}
		}
	}
}

func TestRegistryNamesAreUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) does not round-trip", a.Name)
		}
		if len(a.Packages) == 0 {
			t.Errorf("analyzer %q targets no packages", a.Name)
		}
	}
	if ByName("nosuch") != nil {
		t.Error("ByName(nosuch) should be nil")
	}
}

// TestDiagnosticJSONShape pins the -json output contract for tooling.
func TestDiagnosticJSONShape(t *testing.T) {
	d := Diagnostic{Analyzer: "detrand", File: "x.go", Line: 3, Col: 7, Message: "m"}
	raw, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"analyzer":"detrand","file":"x.go","line":3,"col":7,"message":"m"}`
	if string(raw) != want {
		t.Errorf("JSON = %s, want %s", raw, want)
	}
	if s := d.String(); s != "x.go:3:7: detrand: m" {
		t.Errorf("String() = %q", s)
	}
}

// TestRepoIsClean runs the full analyzer suite over this repository —
// the same gate as `make lint` — so `go test ./...` alone catches a
// determinism or concurrency violation introduced anywhere in the tree.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunModule(l, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
