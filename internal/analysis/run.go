package analysis

import "sort"

// RunModule loads every package targeted by the selected analyzers and
// runs each analyzer over its targets, returning the surviving (non-
// waived) diagnostics sorted by position. A nil selection means All().
func RunModule(l *Loader, analyzers []*Analyzer) ([]Diagnostic, error) {
	if analyzers == nil {
		analyzers = All()
	}
	paths := targetUnion(analyzers)
	var diags []Diagnostic
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		diags = append(diags, RunPackage(pkg, analyzers)...)
	}
	sortDiagnostics(diags)
	return diags, nil
}

// RunPackage runs the applicable subset of analyzers over one loaded
// package, validates the package's waiver comments, and returns the
// diagnostics that survive waiving (unsorted).
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	waivers := collectWaivers(pkg, &diags)
	for _, a := range analyzers {
		if !a.AppliesTo(pkg.Path) {
			continue
		}
		runOne(pkg, a, &diags)
	}
	return applyWaivers(diags, waivers)
}

// RunFixture runs the given analyzers over pkg unconditionally (ignoring
// their package targeting) with waiver processing — the entry point for
// analyzer tests over fixture packages.
func RunFixture(pkg *Package, analyzers ...*Analyzer) []Diagnostic {
	var diags []Diagnostic
	waivers := collectWaivers(pkg, &diags)
	for _, a := range analyzers {
		runOne(pkg, a, &diags)
	}
	diags = applyWaivers(diags, waivers)
	sortDiagnostics(diags)
	return diags
}

func runOne(pkg *Package, a *Analyzer, diags *[]Diagnostic) {
	a.Run(&Pass{
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Pkg,
		Info:     pkg.Info,
		analyzer: a,
		diags:    diags,
	})
}

func targetUnion(analyzers []*Analyzer) []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range analyzers {
		for _, p := range a.Packages {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	sort.Strings(out)
	return out
}
