package analysis

import "testing"

func TestAtomicFieldFixture(t *testing.T) {
	diags := runFixture(t, "atomicfield", AtomicField)
	// Two mixed-access findings on hits, one wrapper copy on total; the
	// pre-publication init is waived.
	const want = 3
	if len(diags) != want {
		t.Errorf("got %d diagnostics, want %d:\n%s", len(diags), want, diagnosticSummary(diags))
	}
}
