package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `range` over a map in the deterministic packages unless
// the loop body is provably order-insensitive. Go randomizes map
// iteration order per run, so a map range whose body's effect depends on
// visit order (appending to a slice, concatenating, feeding RNG draws)
// silently breaks run-to-run reproducibility — the exact hazard that
// DESIGN.md §8's bit-identical rule exists to prevent.
//
// A body is accepted as order-insensitive when every statement is one of:
//
//   - a commutative accumulation (`sum += v`, `n++`, `acc |= bit`, ...;
//     string += is concatenation and does NOT qualify);
//   - a keyed write (`out[k] = v*2`), which lands in the same place
//     whatever the visit order;
//   - a `delete` call;
//   - a min/max update (`if v < best { best = v }`);
//   - a side-effect-free guard around such statements (including
//     `continue` as a pure filter).
//
// The collect-then-sort idiom — a body that only does
// `keys = append(keys, k)` where `keys` is later passed to a sort.* or
// slices.Sort* call in the same function — is also accepted: the append
// order is arbitrary but the sort erases it.
//
// Anything else needs either a rewrite (iterate sorted keys) or an
// explicit `//mclint:maporder` waiver stating why order cannot matter.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag range-over-map in deterministic packages unless the body is provably " +
		"order-insensitive or carries an //mclint:maporder waiver",
	Packages: []string{
		"sessiondir/internal/sim",
		"sessiondir/internal/allocator",
		"sessiondir/internal/announce",
		"sessiondir/internal/des",
		"sessiondir/internal/experiments",
		"sessiondir/internal/par",
		"sessiondir/internal/topology",
		"sessiondir/internal/stats",
		"sessiondir/internal/chaos",
		"sessiondir/internal/admission",
		"sessiondir/internal/obs",
		"sessiondir/internal/relay",
		"sessiondir/internal/storage",
	},
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		// Map each statement to the statements that follow it in its
		// enclosing block, so collect-then-sort can look downstream.
		following := map[ast.Stmt][]ast.Stmt{}
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch b := n.(type) {
			case *ast.BlockStmt:
				list = b.List
			case *ast.CaseClause:
				list = b.Body
			case *ast.CommClause:
				list = b.Body
			default:
				return true
			}
			for i, s := range list {
				following[s] = list[i+1:]
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if bodyOrderInsensitive(pass, rs.Body.List) {
				return true
			}
			if collectThenSorted(rs, following) {
				return true
			}
			pass.Reportf(rs.Pos(),
				"range over map has an order-sensitive body; iterate sorted keys, make the body commutative, or waive with //mclint:maporder",
			)
			return true
		})
	}
}

// bodyOrderInsensitive reports whether executing stmts for the map's
// entries in any order provably yields the same final state.
func bodyOrderInsensitive(pass *Pass, stmts []ast.Stmt) bool {
	for _, s := range stmts {
		if !stmtOrderInsensitive(pass, s) {
			return false
		}
	}
	return true
}

func stmtOrderInsensitive(pass *Pass, s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
			token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			// Commutative accumulations — except string concatenation,
			// whose result spells out the visit order.
			for _, lhs := range s.Lhs {
				if t := pass.TypeOf(lhs); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						return false
					}
				}
			}
			return sideEffectFree(pass, s.Rhs...)
		case token.ASSIGN:
			// Keyed writes: out[k] = v lands at the same key regardless
			// of order (assuming distinct map keys, which range gives us).
			for _, lhs := range s.Lhs {
				if _, ok := lhs.(*ast.IndexExpr); !ok {
					return false
				}
			}
			return sideEffectFree(pass, s.Rhs...)
		default:
			return false
		}
	case *ast.IncDecStmt:
		return true
	case *ast.BranchStmt:
		// `continue` is a pure filter within this loop; break/goto pick
		// out a specific (order-dependent) entry.
		return s.Tok == token.CONTINUE && s.Label == nil
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		return ok && isBuiltin(pass, call, "delete")
	case *ast.IfStmt:
		if s.Init != nil {
			return false
		}
		if isMinMaxUpdate(pass, s) {
			return true
		}
		if !sideEffectFree(pass, s.Cond) {
			return false
		}
		if !bodyOrderInsensitive(pass, s.Body.List) {
			return false
		}
		switch e := s.Else.(type) {
		case nil:
			return true
		case *ast.BlockStmt:
			return bodyOrderInsensitive(pass, e.List)
		case *ast.IfStmt:
			return stmtOrderInsensitive(pass, e)
		default:
			return false
		}
	case *ast.BlockStmt:
		return bodyOrderInsensitive(pass, s.List)
	default:
		return false
	}
}

// isMinMaxUpdate recognizes `if v < best { best = v }` (any comparison
// direction, assigned variable on either side of the comparison).
func isMinMaxUpdate(pass *Pass, s *ast.IfStmt) bool {
	cond, ok := s.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch cond.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return false
	}
	if s.Else != nil || len(s.Body.List) != 1 {
		return false
	}
	assign, ok := s.Body.List[0].(*ast.AssignStmt)
	if !ok || assign.Tok != token.ASSIGN || len(assign.Lhs) != 1 {
		return false
	}
	target, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	if !sideEffectFree(pass, cond, assign.Rhs[0]) {
		return false
	}
	// The updated variable must be one of the comparison's operands, so
	// the comparison really is a running-extremum guard.
	for _, operand := range []ast.Expr{cond.X, cond.Y} {
		if id, ok := operand.(*ast.Ident); ok && id.Name == target.Name {
			return true
		}
	}
	return false
}

// collectThenSorted recognizes the key-collection idiom: a body that is
// exactly `keys = append(keys, k)`, where keys is subsequently passed to
// a sorting call later in the same block.
func collectThenSorted(rs *ast.RangeStmt, following map[ast.Stmt][]ast.Stmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	assign, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || assign.Tok != token.ASSIGN || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	target, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	if first, ok := call.Args[0].(*ast.Ident); !ok || first.Name != target.Name {
		return false
	}
	for _, s := range following[rs] {
		if stmtSorts(s, target.Name) {
			return true
		}
	}
	return false
}

// stmtSorts reports whether s is a call into package sort or slices
// passing the named slice — sort.Strings(keys), sort.Slice(keys, ...),
// slices.Sort(keys), slices.SortFunc(keys, ...) and friends.
func stmtSorts(s ast.Stmt, name string) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
		return false
	}
	arg, ok := call.Args[0].(*ast.Ident)
	return ok && arg.Name == name
}

// sideEffectFree reports whether evaluating the expressions cannot
// mutate state: no calls (except len/cap/min/max), sends, or receives.
func sideEffectFree(pass *Pass, exprs ...ast.Expr) bool {
	ok := true
	for _, e := range exprs {
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if !isBuiltin(pass, n, "len", "cap", "min", "max") {
					ok = false
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					ok = false
				}
			case *ast.FuncLit:
				return false // literal is a value; not executed here
			}
			return ok
		})
	}
	return ok
}

func isBuiltin(pass *Pass, call *ast.CallExpr, names ...string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	for _, n := range names {
		if id.Name == n {
			return true
		}
	}
	return false
}
