package analysis

import "testing"

func TestErrDropFixture(t *testing.T) {
	diags := runFixture(t, "errdrop", ErrDrop)
	if len(diags) != 4 {
		t.Errorf("got %d diagnostics, want 4:\n%s", len(diags), diagnosticSummary(diags))
	}
}
