package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetRand forbids ambient entropy and the wall clock inside the
// deterministic packages. The DAIPR guarantee (DESIGN.md §6) and the
// parallel engine's bit-identical-output rule (§8) both require that
// every stochastic decision flow from an explicitly seeded stats.RNG:
//
//   - time.Now / time.Since / time.Until read the wall clock, which
//     differs run to run; simulated time must come from the DES.
//   - package-level math/rand and math/rand/v2 functions draw from the
//     process-global generator, whose state is shared across everything
//     in the process (and auto-seeded since Go 1.20).
//   - crypto/rand is entropy by definition.
//
// Constructing an explicit generator (rand.New, rand.NewPCG, ...) and
// calling methods on it remains legal: that is exactly how stats.RNG —
// the one sanctioned entropy source — is built.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc: "forbid wall-clock reads and ambient randomness in deterministic packages; " +
		"the only sanctioned entropy is stats.RNG",
	Packages: []string{
		"sessiondir/internal/sim",
		"sessiondir/internal/allocator",
		"sessiondir/internal/announce",
		"sessiondir/internal/des",
		"sessiondir/internal/experiments",
		"sessiondir/internal/par",
		"sessiondir/internal/topology",
		"sessiondir/internal/stats",
		"sessiondir/internal/transport",
		"sessiondir/internal/chaos",
		"sessiondir/internal/admission",
		"sessiondir/internal/obs",
		"sessiondir/internal/relay",
		"sessiondir/internal/storage",
	},
	Run: runDetRand,
}

func runDetRand(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				switch obj.Name() {
				case "Now", "Since", "Until":
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock; deterministic packages must take time from the simulation (or an injected clock)",
						obj.Name())
				}
			case "crypto/rand":
				pass.Reportf(sel.Pos(),
					"crypto/rand.%s is nondeterministic entropy; the only sanctioned source is stats.RNG",
					obj.Name())
			case "math/rand", "math/rand/v2":
				fn, isFunc := obj.(*types.Func)
				if !isFunc {
					return true // type or const reference (rand.Rand, rand.PCG, ...)
				}
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true // method on an explicit generator
				}
				if strings.HasPrefix(obj.Name(), "New") {
					return true // constructor for an explicit generator
				}
				pass.Reportf(sel.Pos(),
					"%s.%s draws from the process-global generator; use stats.RNG (explicitly seeded) instead",
					obj.Pkg().Path(), obj.Name())
			}
			return true
		})
	}
}
