package sap

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestCompressedRoundTrip(t *testing.T) {
	p := samplePacket()
	wire, err := p.MarshalCompressed(nil)
	if err != nil {
		t.Fatal(err)
	}
	var got Packet
	if err := got.DecodeMaybeCompressed(wire); err != nil {
		t.Fatal(err)
	}
	if got.Type != p.Type || got.MsgIDHash != p.MsgIDHash || got.Origin != p.Origin {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.EffectivePayloadType() != PayloadTypeSDP {
		t.Fatalf("payload type %q", got.EffectivePayloadType())
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Fatalf("payload mismatch: %q", got.Payload)
	}
}

func TestCompressedActuallyCompresses(t *testing.T) {
	p := samplePacket()
	// Pad with a repetitive description so compression has something to
	// chew on.
	p.Payload = append(p.Payload, bytes.Repeat([]byte("a=tool:sdr v2.4a6\r\n"), 50)...)
	p.MsgIDHash = MsgIDHashOf(p.Payload)
	plain, err := p.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	compressed, err := p.MarshalCompressed(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(compressed) >= len(plain)/2 {
		t.Fatalf("compression ineffective: %d vs %d", len(compressed), len(plain))
	}
}

func TestDecodeMaybeCompressedPassthrough(t *testing.T) {
	// Uncompressed packets take the normal path.
	wire, _ := samplePacket().Marshal(nil)
	var got Packet
	if err := got.DecodeMaybeCompressed(wire); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, samplePacket().Payload) {
		t.Fatal("passthrough mangled payload")
	}
}

func TestPlainDecodeRejectsCompressed(t *testing.T) {
	wire, _ := samplePacket().MarshalCompressed(nil)
	var got Packet
	if err := got.Decode(wire); !errors.Is(err, ErrCompressed) {
		t.Fatalf("err = %v", err)
	}
}

func TestDecodeMaybeCompressedGarbage(t *testing.T) {
	wire, _ := samplePacket().MarshalCompressed(nil)
	// Corrupt the zlib stream.
	wire[len(wire)-3] ^= 0xff
	wire[9] ^= 0xff
	var got Packet
	if err := got.DecodeMaybeCompressed(wire); err == nil {
		t.Fatal("corrupted stream accepted")
	}
	// Truncated.
	if err := got.DecodeMaybeCompressed(wire[:4]); !errors.Is(err, ErrTooShort) {
		t.Fatalf("short: %v", err)
	}
}

func TestDecodeMaybeCompressedBombBounded(t *testing.T) {
	p := samplePacket()
	p.Payload = bytes.Repeat([]byte{0}, maxDecompressed+4096)
	wire, err := p.MarshalCompressed(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) > 8192 {
		t.Fatalf("bomb wire unexpectedly large: %d", len(wire))
	}
	var got Packet
	err = got.DecodeMaybeCompressed(wire)
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("bomb not rejected: %v", err)
	}
}

func TestCompressedRoundTripProperty(t *testing.T) {
	err := quick.Check(func(payload []byte, hash uint16, del bool) bool {
		p := samplePacket()
		p.Payload = payload
		p.MsgIDHash = hash
		if del {
			p.Type = Delete
		}
		wire, err := p.MarshalCompressed(nil)
		if err != nil {
			return false
		}
		var got Packet
		if err := got.DecodeMaybeCompressed(wire); err != nil {
			return false
		}
		return bytes.Equal(got.Payload, payload) && got.MsgIDHash == hash && got.Type == p.Type
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}
