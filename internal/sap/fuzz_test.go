package sap

import (
	"bytes"
	"testing"
)

// Native fuzz targets. Without -fuzz they run the seed corpus as ordinary
// tests; with `go test -fuzz=FuzzDecode ./internal/sap` they explore.

func FuzzDecode(f *testing.F) {
	wire, _ := samplePacket().Marshal(nil)
	f.Add(wire)
	f.Add([]byte{})
	f.Add([]byte{0x20, 0x00, 0x12, 0x34, 10, 0, 0, 1})
	compressed, _ := samplePacket().MarshalCompressed(nil)
	f.Add(compressed)
	f.Fuzz(func(t *testing.T, data []byte) {
		var p Packet
		_ = p.Decode(data) // must not panic
		var q Packet
		_ = q.DecodeMaybeCompressed(data) // must not panic
	})
}

func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte("v=0\r\ns=x\r\n"), uint16(7), false)
	f.Add([]byte{}, uint16(0), true)
	f.Fuzz(func(t *testing.T, payload []byte, hash uint16, del bool) {
		p := samplePacket()
		p.Payload = payload
		p.MsgIDHash = hash
		if del {
			p.Type = Delete
		}
		wire, err := p.Marshal(nil)
		if err != nil {
			t.Fatal(err)
		}
		var got Packet
		if err := got.Decode(wire); err != nil {
			// Some payloads legitimately fail (e.g. a payload whose first
			// bytes look like a malformed MIME prefix); they must fail
			// cleanly, not round-trip wrongly.
			return
		}
		if got.MsgIDHash != hash || got.Type != p.Type {
			t.Fatalf("header mutated: %+v", got)
		}
		if got.PayloadType == "" && !bytes.Equal(got.Payload, payload) {
			t.Fatalf("payload mutated: %q vs %q", got.Payload, payload)
		}
	})
}
