// Package sap implements the Session Announcement Protocol wire format
// (the protocol of the paper's reference [6], later RFC 2974): the packet
// header carrying session announcements and deletions between session
// directory instances.
//
// The codec follows the decoding style of high-throughput packet libraries:
// Decode parses into a caller-owned Packet without allocating, and the
// decoded Payload aliases the input buffer (NoCopy) — callers that retain
// the payload past the buffer's lifetime must copy it.
package sap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// MessageType distinguishes announcements from deletions.
type MessageType uint8

const (
	// Announce advertises (or re-advertises) a session.
	Announce MessageType = 0
	// Delete withdraws a previously announced session.
	Delete MessageType = 1
)

// String implements fmt.Stringer.
func (m MessageType) String() string {
	switch m {
	case Announce:
		return "announce"
	case Delete:
		return "delete"
	default:
		return fmt.Sprintf("MessageType(%d)", uint8(m))
	}
}

// Version is the SAP protocol version this package implements.
const Version = 1

// PayloadTypeSDP is the payload type of SDP session descriptions.
const PayloadTypeSDP = "application/sdp"

// header layout constants.
const (
	flagVersionShift = 5      // V: 3 bits
	flagAddrType     = 1 << 4 // A: 0 = IPv4, 1 = IPv6
	flagReserved     = 1 << 3 // R
	flagMessageType  = 1 << 2 // T: 0 = announce, 1 = delete
	flagEncrypted    = 1 << 1 // E
	flagCompressed   = 1 << 0 // C

	headerLenIPv4 = 8 // flags, auth len, msg id hash, origin (4 bytes)
)

// Decoding errors.
var (
	ErrTooShort   = errors.New("sap: packet too short")
	ErrBadVersion = errors.New("sap: unsupported version")
	ErrIPv6       = errors.New("sap: IPv6 origin not supported")
	ErrEncrypted  = errors.New("sap: encrypted payloads not supported")
	ErrCompressed = errors.New("sap: compressed payloads not supported")
	ErrBadPayload = errors.New("sap: malformed payload type")
)

// Packet is one SAP message. The zero value is an IPv4 announcement with
// no payload.
type Packet struct {
	Type MessageType
	// MsgIDHash, with Origin, identifies one version of one announcement;
	// it changes whenever the payload changes (RFC 2974 §5).
	MsgIDHash uint16
	// Origin is the announcing host (IPv4).
	Origin netip.Addr
	// PayloadType is the MIME type; empty means PayloadTypeSDP implied.
	PayloadType string
	// Payload is the session description. After Decode it aliases the
	// input buffer.
	Payload []byte
}

// MsgIDHashOf computes the 16-bit message id hash of a payload: a stable
// non-cryptographic fold, sufficient to distinguish payload versions.
func MsgIDHashOf(payload []byte) uint16 {
	var h uint32 = 0x811c
	for _, b := range payload {
		h = (h*31 + uint32(b)) & 0xffffffff
	}
	return uint16(h ^ (h >> 16))
}

// Marshal appends the wire form of p to dst and returns the result.
// The origin must be IPv4.
func (p *Packet) Marshal(dst []byte) ([]byte, error) {
	if !p.Origin.Is4() {
		return nil, fmt.Errorf("%w (origin %s)", ErrIPv6, p.Origin)
	}
	flags := byte(Version << flagVersionShift)
	if p.Type == Delete {
		flags |= flagMessageType
	}
	dst = append(dst, flags, 0) // auth len 0
	dst = binary.BigEndian.AppendUint16(dst, p.MsgIDHash)
	o := p.Origin.As4()
	dst = append(dst, o[:]...)
	pt := p.PayloadType
	if pt == "" {
		pt = PayloadTypeSDP
	}
	dst = append(dst, pt...)
	dst = append(dst, 0)
	dst = append(dst, p.Payload...)
	return dst, nil
}

// Decode parses data into p. The payload (and payload type) alias data.
func (p *Packet) Decode(data []byte) error {
	if len(data) < headerLenIPv4 {
		return fmt.Errorf("%w (%d bytes)", ErrTooShort, len(data))
	}
	flags := data[0]
	if v := flags >> flagVersionShift; v != Version {
		return fmt.Errorf("%w (%d)", ErrBadVersion, v)
	}
	if flags&flagAddrType != 0 {
		return ErrIPv6
	}
	if flags&flagEncrypted != 0 {
		return ErrEncrypted
	}
	if flags&flagCompressed != 0 {
		return ErrCompressed
	}
	if flags&flagMessageType != 0 {
		p.Type = Delete
	} else {
		p.Type = Announce
	}
	authLen := int(data[1]) * 4 // auth length is in 32-bit words
	p.MsgIDHash = binary.BigEndian.Uint16(data[2:4])
	p.Origin = netip.AddrFrom4([4]byte(data[4:8]))
	rest := data[8:]
	if len(rest) < authLen {
		return fmt.Errorf("%w (auth data truncated)", ErrTooShort)
	}
	rest = rest[authLen:] // authentication data is skipped, not verified

	// Optional payload type: a NUL-terminated MIME string. Heuristic per
	// RFC 2974: if the payload starts with what looks like a MIME type
	// (contains '/' before any NUL) treat it as one; SDP payloads start
	// with "v=0" and contain no NUL-terminated prefix.
	p.PayloadType = ""
	p.Payload = rest
	for i := 0; i < len(rest); i++ {
		if rest[i] == 0 {
			candidate := rest[:i]
			if !looksLikeMIME(candidate) {
				return fmt.Errorf("%w (%q)", ErrBadPayload, candidate)
			}
			p.PayloadType = internPayloadType(candidate)
			p.Payload = rest[i+1:]
			break
		}
		if rest[i] == '\n' || rest[i] == '\r' {
			// Reached payload body without a NUL: no payload type field.
			break
		}
	}
	return nil
}

// internPayloadType returns the payload-type string without allocating
// for the overwhelmingly common case: every sdr announcement carries
// application/sdp, and comparing a []byte against a string constant
// compiles to a no-alloc comparison. This is the last allocation on the
// SAP decode path — with it interned, Decode is allocation-free for SDP
// traffic (pinned by TestDecodeZeroAlloc).
func internPayloadType(b []byte) string {
	if string(b) == PayloadTypeSDP {
		return PayloadTypeSDP
	}
	return string(b)
}

// DecodeCopy parses data into p like Decode, but copies the payload
// (and payload type) into fresh allocations so p retains nothing of
// data. Use it when the packet outlives the input buffer — chaos
// recorders, test captures — and the aliasing contract of Decode is a
// liability rather than a win. It is also the legacy-cost baseline the
// SAPDecode benchmarks compare against.
func (p *Packet) DecodeCopy(data []byte) error {
	if err := p.Decode(data); err != nil {
		return err
	}
	p.Payload = append([]byte(nil), p.Payload...)
	if p.PayloadType != "" && p.PayloadType != PayloadTypeSDP {
		p.PayloadType = string(append([]byte(nil), p.PayloadType...))
	}
	return nil
}

func looksLikeMIME(b []byte) bool {
	slash := false
	for _, c := range b {
		switch {
		case c == '/':
			slash = true
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '-', c == '+', c == '.':
		default:
			return false
		}
	}
	return slash && len(b) >= 3
}

// EffectivePayloadType returns the payload type, defaulting to SDP.
func (p *Packet) EffectivePayloadType() string {
	if p.PayloadType == "" {
		return PayloadTypeSDP
	}
	return p.PayloadType
}
