package sap

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"
	"testing/quick"
)

func samplePacket() *Packet {
	payload := []byte("v=0\r\no=- 1 1 IN IP4 10.0.0.1\r\ns=test\r\nc=IN IP4 224.2.128.5/15\r\nt=0 0\r\n")
	return &Packet{
		Type:      Announce,
		MsgIDHash: MsgIDHashOf(payload),
		Origin:    netip.MustParseAddr("10.0.0.1"),
		Payload:   payload,
	}
}

func TestMarshalDecodeRoundTrip(t *testing.T) {
	p := samplePacket()
	wire, err := p.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	var got Packet
	if err := got.Decode(wire); err != nil {
		t.Fatal(err)
	}
	if got.Type != p.Type || got.MsgIDHash != p.MsgIDHash || got.Origin != p.Origin {
		t.Fatalf("header mismatch: %+v vs %+v", got, p)
	}
	if got.EffectivePayloadType() != PayloadTypeSDP {
		t.Fatalf("payload type %q", got.EffectivePayloadType())
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Fatalf("payload mismatch:\n%q\n%q", got.Payload, p.Payload)
	}
}

func TestDeleteRoundTrip(t *testing.T) {
	p := samplePacket()
	p.Type = Delete
	wire, err := p.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	var got Packet
	if err := got.Decode(wire); err != nil {
		t.Fatal(err)
	}
	if got.Type != Delete {
		t.Fatalf("type = %v", got.Type)
	}
}

func TestMarshalAppends(t *testing.T) {
	prefix := []byte{0xde, 0xad}
	wire, err := samplePacket().Marshal(prefix)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wire[:2], prefix) {
		t.Fatal("Marshal did not append")
	}
}

func TestDecodeNoCopyAliases(t *testing.T) {
	wire, _ := samplePacket().Marshal(nil)
	var got Packet
	if err := got.Decode(wire); err != nil {
		t.Fatal(err)
	}
	// Mutating the buffer must show through the decoded payload (NoCopy).
	if len(got.Payload) == 0 {
		t.Fatal("empty payload")
	}
	old := got.Payload[0]
	wire[len(wire)-len(got.Payload)] = old + 1
	if got.Payload[0] != old+1 {
		t.Fatal("payload does not alias the input buffer")
	}
}

func TestDecodeErrors(t *testing.T) {
	wire, _ := samplePacket().Marshal(nil)

	short := wire[:4]
	var p Packet
	if err := p.Decode(short); !errors.Is(err, ErrTooShort) {
		t.Fatalf("short: %v", err)
	}

	badVer := bytes.Clone(wire)
	badVer[0] = 0 // version 0
	if err := p.Decode(badVer); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("version: %v", err)
	}

	ipv6 := bytes.Clone(wire)
	ipv6[0] |= flagAddrType
	if err := p.Decode(ipv6); !errors.Is(err, ErrIPv6) {
		t.Fatalf("ipv6: %v", err)
	}

	enc := bytes.Clone(wire)
	enc[0] |= flagEncrypted
	if err := p.Decode(enc); !errors.Is(err, ErrEncrypted) {
		t.Fatalf("encrypted: %v", err)
	}

	comp := bytes.Clone(wire)
	comp[0] |= flagCompressed
	if err := p.Decode(comp); !errors.Is(err, ErrCompressed) {
		t.Fatalf("compressed: %v", err)
	}

	truncAuth := bytes.Clone(wire[:8])
	truncAuth[1] = 200 // claims 800 bytes of auth data
	if err := p.Decode(truncAuth); !errors.Is(err, ErrTooShort) {
		t.Fatalf("auth: %v", err)
	}
}

func TestDecodeBadPayloadType(t *testing.T) {
	p := samplePacket()
	wire, _ := p.Marshal(nil)
	// Corrupt the payload type: replace "application/sdp" with binary junk
	// terminated by NUL.
	copy(wire[8:], []byte{0xff, 0xfe, 0x00})
	var got Packet
	if err := got.Decode(wire); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("err = %v", err)
	}
}

func TestDecodePayloadWithoutType(t *testing.T) {
	// A packet whose payload starts directly with "v=0" (no MIME prefix):
	// legal per RFC 2974.
	hdr := []byte{Version << flagVersionShift, 0, 0x12, 0x34, 10, 0, 0, 1}
	body := []byte("v=0\r\no=- 1 1 IN IP4 10.0.0.1\r\n")
	var got Packet
	if err := got.Decode(append(hdr, body...)); err != nil {
		t.Fatal(err)
	}
	if got.PayloadType != "" || got.EffectivePayloadType() != PayloadTypeSDP {
		t.Fatalf("payload type %q", got.PayloadType)
	}
	if !bytes.Equal(got.Payload, body) {
		t.Fatalf("payload %q", got.Payload)
	}
}

func TestMarshalRejectsIPv6Origin(t *testing.T) {
	p := samplePacket()
	p.Origin = netip.MustParseAddr("2001:db8::1")
	if _, err := p.Marshal(nil); !errors.Is(err, ErrIPv6) {
		t.Fatalf("err = %v", err)
	}
}

func TestMsgIDHash(t *testing.T) {
	a := MsgIDHashOf([]byte("hello"))
	b := MsgIDHashOf([]byte("hello!"))
	if a == b {
		t.Fatal("different payloads, same hash (collision in trivial case)")
	}
	if MsgIDHashOf([]byte("hello")) != a {
		t.Fatal("hash not deterministic")
	}
}

func TestMessageTypeString(t *testing.T) {
	if Announce.String() != "announce" || Delete.String() != "delete" {
		t.Fatal("names")
	}
	if MessageType(7).String() != "MessageType(7)" {
		t.Fatal("unknown name")
	}
}

func TestRoundTripProperty(t *testing.T) {
	err := quick.Check(func(hash uint16, o4 [4]byte, payload []byte, del bool) bool {
		if o4[0] == 0 {
			o4[0] = 10
		}
		p := &Packet{
			MsgIDHash: hash,
			Origin:    netip.AddrFrom4(o4),
			Payload:   payload,
		}
		if del {
			p.Type = Delete
		}
		wire, err := p.Marshal(nil)
		if err != nil {
			return false
		}
		var got Packet
		if err := got.Decode(wire); err != nil {
			return false
		}
		return got.Type == p.Type && got.MsgIDHash == hash &&
			got.Origin == p.Origin && bytes.Equal(got.Payload, payload) &&
			got.EffectivePayloadType() == PayloadTypeSDP
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDecodeFuzzCrashSafety(t *testing.T) {
	// Decode must never panic on arbitrary input.
	err := quick.Check(func(data []byte) bool {
		var p Packet
		_ = p.Decode(data)
		return true
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDecode(b *testing.B) {
	wire, _ := samplePacket().Marshal(nil)
	var p Packet
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := p.Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshal(b *testing.B) {
	p := samplePacket()
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = p.Marshal(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

// TestDecodeZeroAlloc pins the zero-copy decode promise: decoding an
// SDP announcement performs no allocation at all — the payload aliases
// the input and the payload type is interned against PayloadTypeSDP.
func TestDecodeZeroAlloc(t *testing.T) {
	wire, err := samplePacket().Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	var p Packet
	allocs := testing.AllocsPerRun(1000, func() {
		if err := p.Decode(wire); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Decode allocates %v times per run, want 0", allocs)
	}
	if p.PayloadType != PayloadTypeSDP {
		t.Fatalf("payload type %q not interned", p.PayloadType)
	}
}

// TestInternPayloadType checks the non-SDP MIME path still decodes
// (with its one unavoidable allocation) and that the interned constant
// is returned by identity for SDP.
func TestInternPayloadType(t *testing.T) {
	if got := internPayloadType([]byte("application/sdp")); got != PayloadTypeSDP {
		t.Fatalf("intern = %q", got)
	}
	if got := internPayloadType([]byte("text/plain")); got != "text/plain" {
		t.Fatalf("intern = %q", got)
	}
	p := samplePacket()
	p.PayloadType = "text/plain"
	wire, err := p.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	var got Packet
	if err := got.Decode(wire); err != nil {
		t.Fatal(err)
	}
	if got.PayloadType != "text/plain" {
		t.Fatalf("payload type %q", got.PayloadType)
	}
}

// TestDecodeCopyDoesNotAlias is DecodeCopy's retention contract:
// mutating the wire buffer after DecodeCopy must not show through.
func TestDecodeCopyDoesNotAlias(t *testing.T) {
	wire, _ := samplePacket().Marshal(nil)
	var got Packet
	if err := got.DecodeCopy(wire); err != nil {
		t.Fatal(err)
	}
	old := got.Payload[0]
	wire[len(wire)-len(got.Payload)] = old + 1
	if got.Payload[0] != old {
		t.Fatal("DecodeCopy payload aliases the input buffer")
	}
}

func BenchmarkDecodeCopy(b *testing.B) {
	wire, _ := samplePacket().Marshal(nil)
	var p Packet
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := p.DecodeCopy(wire); err != nil {
			b.Fatal(err)
		}
	}
}
