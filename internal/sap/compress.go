package sap

import (
	"bytes"
	"compress/zlib"
	"fmt"
	"io"
)

// SAP optionally carries zlib-compressed payloads (the C header bit).
// Compression mattered on the Mbone: the shared 4000 bps announcement
// budget means smaller ads directly translate into shorter steady-state
// intervals and therefore a smaller invisible fraction for the allocator.

// maxDecompressed bounds decompression output to keep a hostile packet
// from ballooning (zip-bomb protection); announcements are ~1 kB.
const maxDecompressed = 256 * 1024

// MarshalCompressed appends the wire form of p with a zlib-compressed
// payload (payload type + body compressed together, per RFC 2974 §4).
func (p *Packet) MarshalCompressed(dst []byte) ([]byte, error) {
	if !p.Origin.Is4() {
		return nil, fmt.Errorf("%w (origin %s)", ErrIPv6, p.Origin)
	}
	flags := byte(Version<<flagVersionShift) | flagCompressed
	if p.Type == Delete {
		flags |= flagMessageType
	}
	dst = append(dst, flags, 0)
	dst = append(dst, byte(p.MsgIDHash>>8), byte(p.MsgIDHash))
	o := p.Origin.As4()
	dst = append(dst, o[:]...)

	var body bytes.Buffer
	zw := zlib.NewWriter(&body)
	pt := p.PayloadType
	if pt == "" {
		pt = PayloadTypeSDP
	}
	if _, err := zw.Write(append(append([]byte(pt), 0), p.Payload...)); err != nil {
		return nil, fmt.Errorf("sap: compress: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("sap: compress: %w", err)
	}
	return append(dst, body.Bytes()...), nil
}

// DecodeMaybeCompressed decodes data like Decode but also accepts
// compressed packets, inflating them transparently. Unlike Decode, the
// payload of a compressed packet is a fresh allocation (it cannot alias
// the wire buffer).
func (p *Packet) DecodeMaybeCompressed(data []byte) error {
	if len(data) < headerLenIPv4 {
		return fmt.Errorf("%w (%d bytes)", ErrTooShort, len(data))
	}
	if data[0]&flagCompressed == 0 {
		return p.Decode(data)
	}
	if data[0]&flagEncrypted != 0 {
		return ErrEncrypted
	}
	authLen := int(data[1]) * 4
	if len(data) < headerLenIPv4+authLen {
		return fmt.Errorf("%w (auth data truncated)", ErrTooShort)
	}
	zr, err := zlib.NewReader(bytes.NewReader(data[headerLenIPv4+authLen:]))
	if err != nil {
		return fmt.Errorf("sap: inflate: %w", err)
	}
	defer zr.Close() //nolint:errcheck // read errors surface below
	inflated, err := io.ReadAll(io.LimitReader(zr, maxDecompressed+1))
	if err != nil {
		return fmt.Errorf("sap: inflate: %w", err)
	}
	if len(inflated) > maxDecompressed {
		return fmt.Errorf("sap: inflated payload exceeds %d bytes", maxDecompressed)
	}
	// Rebuild an uncompressed packet image and decode it normally so the
	// payload-type parsing stays in one place.
	rebuilt := make([]byte, 0, headerLenIPv4+len(inflated))
	rebuilt = append(rebuilt, data[0]&^flagCompressed, 0)
	rebuilt = append(rebuilt, data[2:headerLenIPv4]...)
	rebuilt = append(rebuilt, inflated...)
	return p.Decode(rebuilt)
}
