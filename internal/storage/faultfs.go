package storage

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"sessiondir/internal/stats"
)

// Injected fault sentinels. They wrap into the errors the store
// reports, so callers (and tests) can classify with errors.Is.
var (
	// ErrInjectedIO is a simulated EIO: the device rejected the
	// operation.
	ErrInjectedIO = errors.New("storage: injected I/O error")
	// ErrInjectedNoSpace is a simulated ENOSPC: the disk is full.
	ErrInjectedNoSpace = errors.New("storage: injected no-space error")
	// ErrCrashed is returned by every operation at and after a FaultFS
	// crash point: the process is "dead" as far as the disk is
	// concerned, and nothing further reaches it.
	ErrCrashed = errors.New("storage: simulated crash")
)

// FaultProfile sets the per-operation fault probabilities. Zero value =
// no faults. The draw order per operation is fixed (see opFate), so a
// profile change never shifts which random draw feeds which decision —
// the same determinism discipline as relay.Profile.
type FaultProfile struct {
	// WriteErr is the probability a Write fails outright with EIO,
	// having written nothing.
	WriteErr float64
	// ShortWrite is the probability a Write persists only a seeded
	// prefix of the buffer and then fails with EIO — the torn-frame
	// case the record format must classify as a normal tail.
	ShortWrite float64
	// NoSpace is the probability a Write fails with ENOSPC, having
	// written nothing.
	NoSpace float64
	// SyncErr is the probability a Sync or SyncRoot fails; the data is
	// NOT durable afterwards (the post-fsync-failure page state is
	// undefined on real kernels, so the model takes the worst case).
	SyncErr float64
	// MetaErr is the probability a namespace operation (Create, Open,
	// Rename, Remove, List) fails with EIO.
	MetaErr float64
	// ReadErr is the probability a Read fails with EIO.
	ReadErr float64
}

// FaultFS wraps an FS and injects faults on a deterministic schedule:
// the k-th fallible operation's fate is a pure function of (seed,
// profile) — same seed, same profile, same op sequence ⇒ bit-identical
// fates. A crash point set with SetCrashAfter(k) lets the first k
// operations through and fails everything after with ErrCrashed; pair
// it with MemFS.Crash to model the reboot.
type FaultFS struct {
	under FS

	mu    sync.Mutex
	rng   *stats.RNG
	prof  FaultProfile
	ops   int64
	crash int64 // ops allowed before the crash point; -1 = never
	dead  bool
	fates []string // per-op outcomes, for replay-identity tests
}

// ParseFaultSpec parses a command-line fault schedule of the form
// "seed=7,write=0.02,short=0.01,nospace=0.01,sync=0.05,meta=0,read=0"
// (every field optional; probabilities in [0,1]). This is the
// -storage-faults flag syntax shared by sdrd and the chaos harnesses.
func ParseFaultSpec(spec string) (seed uint64, prof FaultProfile, err error) {
	seed = 1
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return 0, prof, fmt.Errorf("storage: fault spec field %q: want key=value", field)
		}
		if k == "seed" {
			seed, err = strconv.ParseUint(v, 10, 64)
			if err != nil {
				return 0, prof, fmt.Errorf("storage: fault spec seed %q: %w", v, err)
			}
			continue
		}
		p, err := strconv.ParseFloat(v, 64)
		if err != nil || p < 0 || p > 1 {
			return 0, prof, fmt.Errorf("storage: fault spec %s=%q: want a probability in [0,1]", k, v)
		}
		switch k {
		case "write":
			prof.WriteErr = p
		case "short":
			prof.ShortWrite = p
		case "nospace":
			prof.NoSpace = p
		case "sync":
			prof.SyncErr = p
		case "meta":
			prof.MetaErr = p
		case "read":
			prof.ReadErr = p
		default:
			return 0, prof, fmt.Errorf("storage: unknown fault spec key %q", k)
		}
	}
	return seed, prof, nil
}

// NewFaultFS wraps under with the given fault schedule. A zero seed is
// remapped to 1 (stats.NewRNG(0) selects a fixed default stream, which
// would alias distinct schedules).
func NewFaultFS(under FS, seed uint64, prof FaultProfile) *FaultFS {
	if seed == 0 {
		seed = 1
	}
	return &FaultFS{under: under, rng: stats.NewRNG(seed), prof: prof, crash: -1}
}

// SetProfile swaps the fault schedule mid-run — e.g. to model a disk
// that fails for a while and then recovers. Determinism is preserved:
// fates remain a pure function of (seed, profile sequence, op
// sequence).
func (f *FaultFS) SetProfile(prof FaultProfile) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.prof = prof
}

// SetCrashAfter arms the crash point: the next n operations may
// proceed (still subject to fault draws), and every operation after
// them returns ErrCrashed. n = 0 crashes immediately; a negative n
// disarms.
func (f *FaultFS) SetCrashAfter(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crash = n
	if n >= 0 && f.ops >= n {
		f.dead = true
	}
}

// Ops returns how many fallible operations have been attempted —
// including ones that drew a fault or hit the crash point. Run a
// scenario once without a crash point to size a crash-point sweep.
func (f *FaultFS) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the crash point has been reached.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dead
}

// Fates returns the recorded outcome of every operation so far, in
// order — the replay-identity witness: two same-seed runs over the same
// op sequence must return identical slices.
func (f *FaultFS) Fates() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.fates...)
}

// fate decides one operation's outcome. kind selects which profile
// draws apply; the draws happen in a fixed order with the relay-style
// p > 0 guard so a disabled fault consumes no randomness. n is the
// write length (for the short-write prefix draw). Returns the number of
// bytes to let through (writes only) and the injected error, if any.
func (f *FaultFS) fate(kind string, n int) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	if f.dead || (f.crash >= 0 && f.ops > f.crash) {
		f.dead = true
		f.fates = append(f.fates, kind+":crashed")
		return 0, ErrCrashed
	}
	fail := func(tag string, err error) (int, error) {
		f.fates = append(f.fates, kind+":"+tag)
		return 0, fmt.Errorf("storage: op %d (%s): %w", f.ops, kind, err)
	}
	switch kind {
	case "write":
		if f.prof.WriteErr > 0 && f.rng.Bool(f.prof.WriteErr) {
			return fail("eio", ErrInjectedIO)
		}
		if f.prof.NoSpace > 0 && f.rng.Bool(f.prof.NoSpace) {
			return fail("enospc", ErrInjectedNoSpace)
		}
		if f.prof.ShortWrite > 0 && f.rng.Bool(f.prof.ShortWrite) && n > 0 {
			keep := f.rng.IntN(n)
			f.fates = append(f.fates, fmt.Sprintf("write:short:%d", keep))
			return keep, fmt.Errorf("storage: op %d (write): short write %d/%d: %w", f.ops, keep, n, ErrInjectedIO)
		}
	case "sync", "syncroot":
		if f.prof.SyncErr > 0 && f.rng.Bool(f.prof.SyncErr) {
			return fail("eio", ErrInjectedIO)
		}
	case "read":
		if f.prof.ReadErr > 0 && f.rng.Bool(f.prof.ReadErr) {
			return fail("eio", ErrInjectedIO)
		}
	default: // create, open, rename, remove, list
		if f.prof.MetaErr > 0 && f.rng.Bool(f.prof.MetaErr) {
			return fail("eio", ErrInjectedIO)
		}
	}
	f.fates = append(f.fates, kind+":ok")
	return n, nil
}

// Create implements FS.
func (f *FaultFS) Create(name string) (File, error) {
	if _, err := f.fate("create", 0); err != nil {
		return nil, err
	}
	under, err := f.under.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, under: under}, nil
}

// Open implements FS.
func (f *FaultFS) Open(name string) (File, error) {
	if _, err := f.fate("open", 0); err != nil {
		return nil, err
	}
	under, err := f.under.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, under: under}, nil
}

// Rename implements FS.
func (f *FaultFS) Rename(oldname, newname string) error {
	if _, err := f.fate("rename", 0); err != nil {
		return err
	}
	return f.under.Rename(oldname, newname)
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	if _, err := f.fate("remove", 0); err != nil {
		return err
	}
	return f.under.Remove(name)
}

// List implements FS.
func (f *FaultFS) List() ([]string, error) {
	if _, err := f.fate("list", 0); err != nil {
		return nil, err
	}
	return f.under.List()
}

// SyncRoot implements FS.
func (f *FaultFS) SyncRoot() error {
	if _, err := f.fate("syncroot", 0); err != nil {
		return err
	}
	return f.under.SyncRoot()
}

type faultFile struct {
	fs    *FaultFS
	under File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	keep, err := ff.fs.fate("write", len(p))
	if err != nil {
		if keep > 0 {
			// Short write: the prefix really lands on the underlying
			// disk before the error surfaces.
			if n, werr := ff.under.Write(p[:keep]); werr != nil {
				return n, werr
			}
		}
		return keep, err
	}
	return ff.under.Write(p)
}

func (ff *faultFile) Read(p []byte) (int, error) {
	if _, err := ff.fs.fate("read", 0); err != nil {
		return 0, err
	}
	return ff.under.Read(p)
}

func (ff *faultFile) Sync() error {
	if _, err := ff.fs.fate("sync", 0); err != nil {
		return err
	}
	return ff.under.Sync()
}

// Close is not a fault point: close errors on these handles carry no
// durability meaning (Sync is the durability barrier), and a crashed
// FaultFS must still let recovery code drop its old handles.
func (ff *faultFile) Close() error { return ff.under.Close() }
