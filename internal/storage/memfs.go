package storage

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"sort"
	"sync"

	"sessiondir/internal/stats"
)

// CrashMode selects what a simulated crash does to data that was
// written but not yet synced.
type CrashMode int

const (
	// CrashLoseUnsynced drops everything past each file's last Sync and
	// every namespace operation since the last SyncRoot — the most
	// adversarial outcome the durability contract permits.
	CrashLoseUnsynced CrashMode = iota
	// CrashKeepUnsynced keeps all written data (the kernel happened to
	// flush everything) while still reverting unsynced namespace
	// operations. Recovery must accept this too: a crash may preserve
	// more than was promised, never less.
	CrashKeepUnsynced
	// CrashTornTail keeps a seeded prefix of each file's unsynced
	// suffix, possibly with a flipped bit in the last retained byte —
	// the classic torn write. Recovery must classify this as a normal
	// truncated tail, not corruption.
	CrashTornTail
	// CrashKeepNamespace keeps every namespace operation (as if the
	// directory hit the platters early) while each file's content
	// reverts to its synced prefix — the classic rename-before-data
	// hazard. A writer that renames a file into place before syncing
	// its content is caught by exactly this mode.
	CrashKeepNamespace
)

func (m CrashMode) String() string {
	switch m {
	case CrashLoseUnsynced:
		return "lose-unsynced"
	case CrashKeepUnsynced:
		return "keep-unsynced"
	case CrashTornTail:
		return "torn-tail"
	case CrashKeepNamespace:
		return "keep-namespace"
	default:
		return fmt.Sprintf("crash-mode-%d", int(m))
	}
}

// CrashModes lists every mode, for crash-point enumeration sweeps.
var CrashModes = []CrashMode{CrashLoseUnsynced, CrashKeepUnsynced, CrashTornTail, CrashKeepNamespace}

// memInode is one file's content. Handles reference inodes, not names,
// so a handle kept across a Rename (the store keeps its journal handle
// open while rotating files) stays valid — exactly as on a POSIX disk.
type memInode struct {
	data   []byte
	synced int // durable prefix length, advanced only by Sync
}

// MemFS is an in-memory FS with an explicit durability model: file
// content becomes durable at Sync, namespace operations (create,
// rename, remove) at SyncRoot, and Crash reverts everything else. It is
// the reference disk for the crash-point torture harness — every state
// a real disk may present after power loss, MemFS can present on
// demand, deterministically.
type MemFS struct {
	mu  sync.Mutex
	cur map[string]*memInode // live namespace
	dur map[string]*memInode // namespace as of the last SyncRoot
	gen int                  // bumped by Crash; outstanding handles go stale
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{cur: make(map[string]*memInode), dur: make(map[string]*memInode)}
}

type memFile struct {
	fs    *MemFS
	inode *memInode
	gen   int
	off   int // read offset
	wr    bool
}

var errStaleHandle = errors.New("storage: file handle stale after simulated crash")

// Create implements FS.
func (m *MemFS) Create(name string) (File, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ino := &memInode{}
	m.cur[name] = ino
	return &memFile{fs: m, inode: ino, gen: m.gen, wr: true}, nil
}

// Open implements FS.
func (m *MemFS) Open(name string) (File, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.cur[name]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	return &memFile{fs: m, inode: ino, gen: m.gen}, nil
}

// Rename implements FS.
func (m *MemFS) Rename(oldname, newname string) error {
	if err := validName(oldname); err != nil {
		return err
	}
	if err := validName(newname); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.cur[oldname]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldname, Err: fs.ErrNotExist}
	}
	m.cur[newname] = ino
	delete(m.cur, oldname)
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	if err := validName(name); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.cur[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.cur, name)
	return nil
}

// List implements FS.
func (m *MemFS) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.cur))
	for name := range m.cur {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// SyncRoot implements FS: the current namespace becomes the durable
// namespace. Content durability is per-inode and unaffected.
func (m *MemFS) SyncRoot() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	dur := make(map[string]*memInode, len(m.cur))
	for name, ino := range m.cur {
		dur[name] = ino
	}
	m.dur = dur
	return nil
}

// Crash simulates power loss and reboot: the namespace reverts to the
// last SyncRoot, and each surviving file's content reverts according to
// mode. The outcome is a pure function of (state, mode, seed) — the
// torn-tail lengths and bit flips come from a stats.RNG seeded here,
// never from ambient randomness. Outstanding handles become stale and
// error on use; reopen after recovery, as a real process restart would.
func (m *MemFS) Crash(mode CrashMode, seed uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if seed == 0 {
		seed = 1 // stats.NewRNG(0) means "default stream"; keep crashes seed-distinct
	}
	rng := stats.NewRNG(seed)
	// CrashKeepNamespace survives on the live namespace; every other
	// mode reverts to the last SyncRoot.
	src := m.dur
	if mode == CrashKeepNamespace {
		src = m.cur
	}
	// Deterministic iteration: draw per-file fates in sorted-name order
	// so the same seed always tears the same tails.
	names := make([]string, 0, len(src))
	for name := range src {
		names = append(names, name)
	}
	sort.Strings(names)
	cur := make(map[string]*memInode, len(names))
	for _, name := range names {
		ino := src[name]
		keep := ino.synced
		switch mode {
		case CrashKeepUnsynced:
			keep = len(ino.data)
		case CrashTornTail:
			if n := len(ino.data) - ino.synced; n > 0 {
				keep = ino.synced + rng.IntN(n+1)
			}
		}
		data := append([]byte(nil), ino.data[:keep]...)
		if mode == CrashTornTail && keep > ino.synced && rng.Bool(0.5) {
			data[keep-1] ^= 1 << uint(rng.IntN(8)) // garbage in the torn tail
		}
		cur[name] = &memInode{data: data, synced: len(data)}
	}
	m.cur = cur
	m.dur = cur
	m.gen++
}

// ReadFile is a test convenience: the current content of name.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.cur[name]
	if !ok {
		return nil, &fs.PathError{Op: "read", Path: name, Err: fs.ErrNotExist}
	}
	return append([]byte(nil), ino.data...), nil
}

// WriteFile is a test convenience: name gets content, fully durable (as
// if written, synced, and root-synced).
func (m *MemFS) WriteFile(name string, data []byte) error {
	if err := validName(name); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ino := &memInode{data: append([]byte(nil), data...)}
	ino.synced = len(ino.data)
	m.cur[name] = ino
	m.dur[name] = ino
	return nil
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.gen != f.fs.gen {
		return 0, errStaleHandle
	}
	if !f.wr {
		return 0, errors.New("storage: write on read-only handle")
	}
	f.inode.data = append(f.inode.data, p...)
	return len(p), nil
}

func (f *memFile) Read(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.gen != f.fs.gen {
		return 0, errStaleHandle
	}
	if f.off >= len(f.inode.data) {
		return 0, io.EOF
	}
	n := copy(p, f.inode.data[f.off:])
	f.off += n
	return n, nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.gen != f.fs.gen {
		return errStaleHandle
	}
	f.inode.synced = len(f.inode.data)
	return nil
}

func (f *memFile) Close() error { return nil }
