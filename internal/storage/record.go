package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// On-disk format (DESIGN.md §16). Both store files — snapshot and
// journal — share one frame grammar:
//
//	header:  "SDST" | version (1 byte) | kind (1 byte) | generation (8 bytes BE)
//	record:  length (4 bytes BE) | CRC32C(payload) (4 bytes BE) | payload
//
// Records carry opaque payloads; the store neither parses nor
// interprets them. Classification on read is positional:
//
//   - a frame that runs past end-of-file, or trailing bytes too short
//     to be a frame, or a CRC mismatch on the FINAL frame → torn tail:
//     the expected residue of a crash mid-append, silently dropped;
//   - a CRC mismatch or implausible length anywhere BEFORE the final
//     frame → corruption: bits changed under data that was once whole,
//     so the file is quarantined and only the records before the damage
//     are salvaged.
const (
	recMagic      = "SDST"
	recVersion    = 1
	headerLen     = 4 + 1 + 1 + 8
	frameOverhead = 4 + 4
	// maxRecordLen bounds one record. A length field above it is
	// corruption, not a big record: the largest session description the
	// wire accepts is ~1 KiB, and a snapshot record holds one session.
	maxRecordLen = 1 << 24
)

// File kinds.
const (
	kindSnapshot byte = 1
	kindJournal  byte = 2
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendHeader appends a file header to buf.
func appendHeader(buf []byte, kind byte, gen uint64) []byte {
	buf = append(buf, recMagic...)
	buf = append(buf, recVersion, kind)
	return binary.BigEndian.AppendUint64(buf, gen)
}

// appendFrame appends one framed record to buf.
func appendFrame(buf, payload []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	return append(buf, payload...)
}

// fileImage is the result of parsing one store file.
type fileImage struct {
	kind    byte
	gen     uint64
	records [][]byte // payloads up to the first damage, aliasing the input
	torn    bool     // tail truncated or final-frame CRC mismatch: normal
	corrupt bool     // mid-file damage or foreign header: quarantine
	reason  string   // human-readable classification detail
}

// hasMagic reports whether data begins with this package's file magic —
// the dispatch point between the framed format and the legacy
// line-oriented "sdcache v1" text format.
func hasMagic(data []byte) bool {
	return len(data) >= len(recMagic) && string(data[:len(recMagic)]) == recMagic
}

// HasMagic reports whether data begins with the framed-format file
// magic — the public format sniff for readers that also accept the
// legacy text format.
func HasMagic(data []byte) bool { return hasMagic(data) }

// parseFile classifies data per the grammar above. It never fails: any
// input yields an image, with torn/corrupt describing what was wrong
// and records holding everything salvageable before the damage.
func parseFile(data []byte) fileImage {
	var img fileImage
	if len(data) < headerLen {
		if !hasMagic(data) && len(data) > 0 {
			img.corrupt = true
			img.reason = "missing file magic"
			return img
		}
		// Empty or a partial header: a crash during file creation.
		img.torn = true
		img.reason = "truncated header"
		return img
	}
	if !hasMagic(data) {
		img.corrupt = true
		img.reason = "missing file magic"
		return img
	}
	if v := data[4]; v != recVersion {
		img.corrupt = true
		img.reason = fmt.Sprintf("unknown format version %d", v)
		return img
	}
	img.kind = data[5]
	if img.kind != kindSnapshot && img.kind != kindJournal {
		img.corrupt = true
		img.reason = fmt.Sprintf("unknown file kind %d", img.kind)
		return img
	}
	img.gen = binary.BigEndian.Uint64(data[6:headerLen])

	rest := data[headerLen:]
	for len(rest) > 0 {
		if len(rest) < frameOverhead {
			img.torn = true
			img.reason = "truncated frame header at tail"
			return img
		}
		n := binary.BigEndian.Uint32(rest[:4])
		if n > maxRecordLen {
			// An implausible length is damage wherever it sits; it
			// cannot be distinguished from a valid continuation, so
			// nothing after it is salvageable either way.
			img.corrupt = true
			img.reason = fmt.Sprintf("implausible record length %d", n)
			return img
		}
		if len(rest) < frameOverhead+int(n) {
			img.torn = true
			img.reason = "truncated record at tail"
			return img
		}
		want := binary.BigEndian.Uint32(rest[4:8])
		payload := rest[frameOverhead : frameOverhead+int(n)]
		if crc32.Checksum(payload, castagnoli) != want {
			if len(rest) == frameOverhead+int(n) {
				// Final frame: a torn write can scribble on the last
				// sectors it touched, so a bad tail CRC is the normal
				// crash residue, not corruption.
				img.torn = true
				img.reason = "checksum mismatch on final record"
				return img
			}
			img.corrupt = true
			img.reason = "checksum mismatch mid-file"
			return img
		}
		img.records = append(img.records, payload)
		rest = rest[frameOverhead+int(n):]
	}
	return img
}
