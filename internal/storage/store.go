package storage

import (
	"errors"
	"fmt"
	"sync"
)

// ErrUnavailable is returned by Append when the store has no healthy
// journal — after an append or compaction failure, or right after Open
// (which is read-only). A successful Compact heals it.
var ErrUnavailable = errors.New("storage: journal unavailable until next successful compact")

// Store is a journaled, record-framed store: one snapshot file at base
// plus an append-only journal at base+".journal", both generation-
// stamped. Writers call Append for O(delta) durability between
// compactions and Compact to fold everything into a fresh snapshot.
//
// Crash-safety argument, in the order Compact performs it:
//
//  1. the new snapshot is written to base+".tmp", synced, and renamed
//     over base, then SyncRoot — from here the snapshot (generation
//     g+1) is durable and the old journal (generation g) is stale;
//  2. a crash now loses nothing: recovery discards the stale journal
//     because the snapshot already contains every delta it held;
//  3. the new journal is created at base+".journal.tmp" with a
//     generation-(g+1) header, synced, renamed, SyncRoot.
//
// Every intermediate crash state is therefore either (old snapshot +
// old journal) or (new snapshot + stale-or-new journal) — a valid pre-
// or post-state, which is exactly what the crash-point harness
// enumerates and asserts.
type Store struct {
	fs   FS
	base string

	mu          sync.Mutex
	gen         uint64
	journal     File
	journalRecs int
	broken      bool
	scratch     []byte
}

// Recovery describes what Open found on disk. All fields are
// informational: recovery itself never fails on damaged files, only on
// the environment (an unreadable directory, a failing disk).
type Recovery struct {
	// SnapshotRecords and JournalRecords count the records replayed
	// from each file, damaged or not.
	SnapshotRecords int
	JournalRecords  int
	// Salvaged counts records recovered from files classified corrupt —
	// the prefix before the damage.
	Salvaged int
	// TornTails counts files whose tail was truncated or scribbled by a
	// crash mid-write. This is the normal crash residue, not damage.
	TornTails int
	// Corrupt counts files with mid-file damage or a foreign format;
	// Quarantined lists where they were renamed (base.corrupt-N). A
	// quarantine rename that itself fails leaves the file in place —
	// noted here, never fatal, and the next Compact overwrites it.
	Corrupt     int
	Quarantined []string
	// StaleJournals counts old-generation journals discarded because
	// the snapshot already contains their deltas (the crash window
	// between snapshot rename and journal rotation — normal).
	StaleJournals int
	// Legacy reports that base held a pre-framing file which the
	// caller's legacy reader claimed.
	Legacy bool
	// Notes carries human-readable classification details for logs.
	Notes []string
}

// OpenOptions configures recovery.
type OpenOptions struct {
	// Replay is called once per recovered record payload, snapshot
	// records first, then journal records, in write order. A Replay
	// error classifies the rest of that file as corrupt (checksummed
	// bytes the application cannot decode) and quarantines it; recovery
	// continues.
	Replay func(payload []byte) error
	// Legacy, if non-nil, is offered the raw content of base when it
	// lacks the framed-format magic. Returning nil claims the file as a
	// legacy-format snapshot; an error sends it to quarantine instead.
	Legacy func(data []byte) error
}

// Open reads base and base+".journal", replays every recoverable
// record, and returns a Store positioned after the highest durable
// generation. The returned Store is read-only until the first
// successful Compact (Append returns ErrUnavailable), which both
// rewrites the snapshot in the current format and opens a fresh
// journal — recovery's final step belongs to the writer, so Open
// itself never mutates good files.
//
// The returned Recovery is meaningful even when err != nil: it
// describes everything replayed before the failure.
func Open(fsys FS, base string, opts OpenOptions) (*Store, Recovery, error) {
	if opts.Replay == nil {
		return nil, Recovery{}, errors.New("storage: OpenOptions.Replay is required")
	}
	if err := validName(base); err != nil {
		return nil, Recovery{}, err
	}
	s := &Store{fs: fsys, base: base, broken: true}
	var rec Recovery

	snapGen, haveSnap, err := s.recoverFile(base, kindSnapshot, opts, &rec)
	if err != nil {
		return nil, rec, err
	}

	jname := base + ".journal"
	jdata, jerr := s.readIfPresent(jname)
	switch {
	case jerr != nil:
		return nil, rec, fmt.Errorf("storage: read %s: %w", jname, jerr)
	case jdata == nil:
		// No journal: a fresh directory, or a crash before the first
		// journal rotation.
	default:
		img := parseFile(jdata)
		switch {
		case img.corrupt:
			rec.Corrupt++
			rec.note("journal %s corrupt (%s), %d records salvaged", jname, img.reason, len(img.records))
			s.quarantine(jname, &rec)
			rec.Salvaged += s.replayInto(img.records, opts.Replay, &rec, jname)
			rec.JournalRecords += len(img.records)
		case haveSnap && img.gen < snapGen:
			// Stale journal: the snapshot at snapGen already folded in
			// these deltas. Discard — this is the normal crash window
			// between Compact's two renames.
			rec.StaleJournals++
			rec.note("journal %s generation %d behind snapshot %d: discarded", jname, img.gen, snapGen)
			_ = s.fs.Remove(jname)
		default:
			if img.torn {
				rec.TornTails++
				rec.note("journal %s torn tail (%s): dropped", jname, img.reason)
			}
			if haveSnap && img.gen > snapGen {
				rec.note("journal %s generation %d ahead of snapshot %d: replaying as salvage", jname, img.gen, snapGen)
			}
			n := s.replayInto(img.records, opts.Replay, &rec, jname)
			rec.JournalRecords += n
			if img.gen > s.gen {
				s.gen = img.gen
			}
		}
	}
	if haveSnap && snapGen > s.gen {
		s.gen = snapGen
	}

	// Leftover temp files are crash residue from an interrupted
	// Compact; their content is unreferenced by construction.
	_ = s.fs.Remove(base + ".tmp")
	_ = s.fs.Remove(jname + ".tmp")

	return s, rec, nil
}

// recoverFile reads and replays the snapshot file. Returns its
// generation and whether a framed snapshot header was recovered.
func (s *Store) recoverFile(name string, wantKind byte, opts OpenOptions, rec *Recovery) (uint64, bool, error) {
	data, err := s.readIfPresent(name)
	if err != nil {
		return 0, false, fmt.Errorf("storage: read %s: %w", name, err)
	}
	if data == nil {
		return 0, false, nil
	}
	if !hasMagic(data) && opts.Legacy != nil {
		if lerr := opts.Legacy(data); lerr == nil {
			rec.Legacy = true
			rec.note("snapshot %s in legacy format: loaded, will be rewritten on next compact", name)
			return 0, false, nil
		} else {
			rec.note("snapshot %s: legacy reader rejected it: %v", name, lerr)
		}
	}
	img := parseFile(data)
	if img.corrupt || (img.kind != 0 && img.kind != wantKind) {
		reason := img.reason
		if !img.corrupt {
			reason = fmt.Sprintf("wrong file kind %d", img.kind)
		}
		rec.Corrupt++
		rec.note("snapshot %s corrupt (%s), %d records salvaged", name, reason, len(img.records))
		s.quarantine(name, rec)
		rec.Salvaged += s.replayInto(img.records, opts.Replay, rec, name)
		rec.SnapshotRecords += len(img.records)
		return 0, false, nil
	}
	if img.torn {
		rec.TornTails++
		rec.note("snapshot %s torn tail (%s): dropped", name, img.reason)
	}
	n := s.replayInto(img.records, opts.Replay, rec, name)
	rec.SnapshotRecords += n
	// A torn header yields kind 0/gen 0: treat as no snapshot.
	return img.gen, img.kind == wantKind, nil
}

// replayInto feeds records to replay until the first decode error,
// which reclassifies the remainder as corrupt (and quarantines the
// file, if it wasn't already). Returns how many records were applied.
func (s *Store) replayInto(records [][]byte, replay func([]byte) error, rec *Recovery, name string) int {
	for i, r := range records {
		if err := replay(r); err != nil {
			rec.Corrupt++
			rec.note("%s record %d undecodable (%v): quarantining, %d records kept", name, i, err, i)
			s.quarantine(name, rec)
			return i
		}
	}
	return len(records)
}

// readIfPresent returns (nil, nil) for a missing file.
func (s *Store) readIfPresent(name string) ([]byte, error) {
	f, err := s.fs.Open(name)
	if notExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	data, err := readAll(f)
	if err != nil {
		return nil, err
	}
	if data == nil {
		data = []byte{}
	}
	return data, nil
}

// quarantine renames name aside as name.corrupt-N, picking the first
// unused N. Failure is non-fatal (noted; the file stays and the next
// Compact rewrites it) — corruption must never stop the daemon from
// starting.
func (s *Store) quarantine(name string, rec *Recovery) {
	for _, q := range rec.Quarantined {
		if quarantineOf(q) == name {
			// Already quarantined during this recovery (a decode error
			// after a framing-level quarantine of the same file).
			return
		}
	}
	for n := 1; ; n++ {
		dst := fmt.Sprintf("%s.corrupt-%d", name, n)
		if f, err := s.fs.Open(dst); err == nil {
			_ = f.Close()
			continue
		} else if !notExist(err) {
			rec.note("quarantine probe %s: %v; leaving %s in place", dst, err, name)
			return
		}
		if err := s.fs.Rename(name, dst); err != nil {
			rec.note("quarantine rename %s -> %s failed: %v; leaving it in place", name, dst, err)
			return
		}
		rec.Quarantined = append(rec.Quarantined, dst)
		return
	}
}

// quarantineOf maps "x.corrupt-N" back to "x" ("" if not a quarantine
// name).
func quarantineOf(name string) string {
	i := len(name) - 1
	digits := 0
	for i >= 0 && name[i] >= '0' && name[i] <= '9' {
		i--
		digits++
	}
	const suffix = ".corrupt-"
	if digits == 0 || i < len(suffix)-1 || name[i-len(suffix)+1:i+1] != suffix {
		return ""
	}
	return name[:i-len(suffix)+1]
}

func (r *Recovery) note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Append frames the given payloads into the journal and syncs once — a
// group commit. A nil return means every payload is durable. Any error
// marks the store broken (the journal tail may be torn); Append then
// returns ErrUnavailable until a Compact succeeds, so a flaky disk
// degrades to snapshot-only persistence instead of compounding damage.
func (s *Store) Append(payloads ...[]byte) error {
	if len(payloads) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken || s.journal == nil {
		return ErrUnavailable
	}
	buf := s.scratch[:0]
	for _, p := range payloads {
		buf = appendFrame(buf, p)
	}
	s.scratch = buf[:0]
	if _, err := s.journal.Write(buf); err != nil {
		s.broken = true
		return fmt.Errorf("storage: journal append: %w", err)
	}
	if err := s.journal.Sync(); err != nil {
		s.broken = true
		return fmt.Errorf("storage: journal sync: %w", err)
	}
	s.journalRecs += len(payloads)
	return nil
}

// snapshotChunk flushes the snapshot buffer to the file once it grows
// past this, bounding memory during large compactions.
const snapshotChunk = 256 << 10

// Compact writes a fresh generation-(g+1) snapshot via the write
// callback (one add call per record), makes it durable, and rotates the
// journal. On success the store is healthy and the journal is empty; on
// failure the on-disk state is still a valid recovery point (see the
// type comment), though the store may refuse Append until retried.
func (s *Store) Compact(write func(add func(payload []byte) error) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	newGen := s.gen + 1
	tmp := s.base + ".tmp"

	f, err := s.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("storage: compact create: %w", err)
	}
	buf := appendHeader(s.scratch[:0], kindSnapshot, newGen)
	werr := write(func(payload []byte) error {
		buf = appendFrame(buf, payload)
		if len(buf) >= snapshotChunk {
			_, err := f.Write(buf)
			buf = buf[:0]
			return err
		}
		return nil
	})
	if werr == nil && len(buf) > 0 {
		_, werr = f.Write(buf)
	}
	s.scratch = buf[:0]
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		_ = s.fs.Remove(tmp)
		return fmt.Errorf("storage: compact snapshot: %w", werr)
	}

	// Point of no return: once the rename is issued, the old journal is
	// stale, so the store stays broken until the rotation completes.
	s.broken = true
	if err := s.fs.Rename(tmp, s.base); err != nil {
		_ = s.fs.Remove(tmp)
		return fmt.Errorf("storage: compact rename: %w", err)
	}
	if err := s.fs.SyncRoot(); err != nil {
		return fmt.Errorf("storage: compact dir sync: %w", err)
	}
	s.gen = newGen

	// Rotate the journal: new header, new generation, fresh file.
	if s.journal != nil {
		_ = s.journal.Close()
		s.journal = nil
	}
	jtmp := s.base + ".journal.tmp"
	jf, err := s.fs.Create(jtmp)
	if err != nil {
		return fmt.Errorf("storage: journal create: %w", err)
	}
	jerr := func() error {
		if _, err := jf.Write(appendHeader(nil, kindJournal, newGen)); err != nil {
			return err
		}
		return jf.Sync()
	}()
	if jerr != nil {
		_ = jf.Close()
		_ = s.fs.Remove(jtmp)
		return fmt.Errorf("storage: journal header: %w", jerr)
	}
	if err := s.fs.Rename(jtmp, s.base+".journal"); err != nil {
		_ = jf.Close()
		_ = s.fs.Remove(jtmp)
		return fmt.Errorf("storage: journal rename: %w", err)
	}
	if err := s.fs.SyncRoot(); err != nil {
		_ = jf.Close()
		return fmt.Errorf("storage: journal dir sync: %w", err)
	}

	// The handle opened before the rename still points at the journal
	// inode — appends continue on it without reopening.
	s.journal = jf
	s.journalRecs = 0
	s.broken = false
	return nil
}

// JournalRecords returns how many records the journal has accumulated
// since the last Compact — the caller's compaction-threshold input.
func (s *Store) JournalRecords() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.journalRecs
}

// Gen returns the current durable generation.
func (s *Store) Gen() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// Broken reports whether Append is refusing work until a Compact
// succeeds.
func (s *Store) Broken() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.broken
}

// Close releases the journal handle. The store is not flushed: Append
// already synced everything it acknowledged.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.journal != nil {
		err = s.journal.Close()
		s.journal = nil
	}
	s.broken = true
	return err
}
