package storage

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// collector accumulates replayed payloads as strings.
type collector struct{ recs []string }

func (c *collector) replay(p []byte) error {
	c.recs = append(c.recs, string(p))
	return nil
}

func mustOpen(t *testing.T, fsys FS, base string, opts OpenOptions) (*Store, Recovery) {
	t.Helper()
	s, rec, err := Open(fsys, base, opts)
	if err != nil {
		t.Fatalf("Open: %v (recovery: %+v)", err, rec)
	}
	return s, rec
}

func compactWith(t *testing.T, s *Store, payloads ...string) {
	t.Helper()
	err := s.Compact(func(add func([]byte) error) error {
		for _, p := range payloads {
			if err := add([]byte(p)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
}

func TestStoreRoundTrip(t *testing.T) {
	fs := NewMemFS()
	s, rec := mustOpen(t, fs, "cache", OpenOptions{Replay: (&collector{}).replay})
	if rec.SnapshotRecords+rec.JournalRecords != 0 {
		t.Fatalf("fresh dir replayed records: %+v", rec)
	}
	if err := s.Append([]byte("early")); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Append before first Compact = %v, want ErrUnavailable", err)
	}
	compactWith(t, s, "snap-a", "snap-b")
	if err := s.Append([]byte("delta-1"), []byte("delta-2")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := s.Append([]byte("delta-3")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if got := s.JournalRecords(); got != 3 {
		t.Fatalf("JournalRecords = %d, want 3", got)
	}
	s.Close()

	var c collector
	s2, rec2 := mustOpen(t, fs, "cache", OpenOptions{Replay: c.replay})
	want := []string{"snap-a", "snap-b", "delta-1", "delta-2", "delta-3"}
	if !reflect.DeepEqual(c.recs, want) {
		t.Fatalf("replayed %v, want %v", c.recs, want)
	}
	if rec2.SnapshotRecords != 2 || rec2.JournalRecords != 3 {
		t.Fatalf("recovery counts: %+v", rec2)
	}
	if rec2.TornTails != 0 || rec2.Corrupt != 0 || len(rec2.Quarantined) != 0 {
		t.Fatalf("clean reopen reported damage: %+v", rec2)
	}
	// Compacting folds the journal in and empties it.
	compactWith(t, s2, append(want, "")...)
	if got := s2.JournalRecords(); got != 0 {
		t.Fatalf("JournalRecords after compact = %d, want 0", got)
	}
	if g := s2.Gen(); g != 2 {
		t.Fatalf("Gen = %d, want 2", g)
	}
}

func TestStoreTornJournalTailIsNormal(t *testing.T) {
	fs := NewMemFS()
	s, _ := mustOpen(t, fs, "cache", OpenOptions{Replay: (&collector{}).replay})
	compactWith(t, s, "base")
	if err := s.Append([]byte("keep-1"), []byte("keep-2")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]byte("lost-tail")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Tear the last record: drop its final 3 bytes.
	data, err := fs.ReadFile("cache.journal")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("cache.journal", data[:len(data)-3]); err != nil {
		t.Fatal(err)
	}

	var c collector
	_, rec := mustOpen(t, fs, "cache", OpenOptions{Replay: c.replay})
	want := []string{"base", "keep-1", "keep-2"}
	if !reflect.DeepEqual(c.recs, want) {
		t.Fatalf("replayed %v, want %v", c.recs, want)
	}
	if rec.TornTails != 1 || rec.Corrupt != 0 || len(rec.Quarantined) != 0 {
		t.Fatalf("torn tail misclassified: %+v", rec)
	}
}

func TestStoreCorruptSnapshotQuarantined(t *testing.T) {
	fs := NewMemFS()
	s, _ := mustOpen(t, fs, "cache", OpenOptions{Replay: (&collector{}).replay})
	compactWith(t, s, "aaaa", "bbbb", "cccc")
	s.Close()

	// Flip a payload byte in the middle record: mid-file CRC mismatch.
	data, err := fs.ReadFile("cache")
	if err != nil {
		t.Fatal(err)
	}
	mid := headerLen + frameOverhead + 4 + frameOverhead // first byte of record 2
	data[mid] ^= 0xff
	if err := fs.WriteFile("cache", data); err != nil {
		t.Fatal(err)
	}

	var c collector
	s2, rec := mustOpen(t, fs, "cache", OpenOptions{Replay: c.replay})
	if !reflect.DeepEqual(c.recs, []string{"aaaa"}) {
		t.Fatalf("salvaged %v, want [aaaa]", c.recs)
	}
	if rec.Corrupt != 1 || rec.Salvaged != 1 {
		t.Fatalf("corruption counts: %+v", rec)
	}
	if !reflect.DeepEqual(rec.Quarantined, []string{"cache.corrupt-1"}) {
		t.Fatalf("Quarantined = %v", rec.Quarantined)
	}
	if _, err := fs.ReadFile("cache.corrupt-1"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	// The store keeps working after quarantine; the next incident gets
	// the next quarantine slot.
	compactWith(t, s2, "aaaa")
	s2.Close()
	data, _ = fs.ReadFile("cache")
	data[headerLen+frameOverhead] ^= 0x01
	extra := appendFrame(nil, []byte("x")) // damage is now mid-file
	fs.WriteFile("cache", append(data, extra...))
	_, rec = mustOpen(t, fs, "cache", OpenOptions{Replay: (&collector{}).replay})
	if !reflect.DeepEqual(rec.Quarantined, []string{"cache.corrupt-2"}) {
		t.Fatalf("second quarantine = %v (recovery %+v)", rec.Quarantined, rec)
	}
}

func TestStoreStaleJournalDiscarded(t *testing.T) {
	fs := NewMemFS()
	s, _ := mustOpen(t, fs, "cache", OpenOptions{Replay: (&collector{}).replay})
	compactWith(t, s, "old")
	if err := s.Append([]byte("folded-in")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate the crash window between Compact's snapshot rename and
	// journal rotation: a newer snapshot lands, the gen-1 journal stays.
	snap := appendHeader(nil, kindSnapshot, 2)
	snap = appendFrame(snap, []byte("new-a"))
	snap = appendFrame(snap, []byte("folded-in"))
	if err := fs.WriteFile("cache", snap); err != nil {
		t.Fatal(err)
	}

	var c collector
	_, rec := mustOpen(t, fs, "cache", OpenOptions{Replay: c.replay})
	if !reflect.DeepEqual(c.recs, []string{"new-a", "folded-in"}) {
		t.Fatalf("replayed %v, want snapshot only", c.recs)
	}
	if rec.StaleJournals != 1 || rec.JournalRecords != 0 {
		t.Fatalf("stale journal not discarded: %+v", rec)
	}
	if _, err := fs.ReadFile("cache.journal"); err == nil {
		t.Fatal("stale journal still on disk")
	}
}

func TestStoreLegacyFormatClaimed(t *testing.T) {
	fs := NewMemFS()
	legacyBody := "sdcache v1\nentry 1 2 3\nfoo"
	if err := fs.WriteFile("cache", []byte(legacyBody)); err != nil {
		t.Fatal(err)
	}
	var got string
	s, rec := mustOpen(t, fs, "cache", OpenOptions{
		Replay: (&collector{}).replay,
		Legacy: func(data []byte) error {
			got = string(data)
			return nil
		},
	})
	if got != legacyBody {
		t.Fatalf("legacy reader saw %q", got)
	}
	if !rec.Legacy || rec.Corrupt != 0 {
		t.Fatalf("legacy misclassified: %+v", rec)
	}
	// The first compact upgrades the file to the framed format.
	compactWith(t, s, "upgraded")
	s.Close()
	data, err := fs.ReadFile("cache")
	if err != nil || !hasMagic(data) {
		t.Fatalf("post-compact snapshot not framed (err %v)", err)
	}

	// A rejected legacy file is corruption: quarantined, cold start.
	fs2 := NewMemFS()
	fs2.WriteFile("cache", []byte("not a cache at all"))
	_, rec2 := mustOpen(t, fs2, "cache", OpenOptions{
		Replay: (&collector{}).replay,
		Legacy: func([]byte) error { return errors.New("nope") },
	})
	if rec2.Corrupt != 1 || len(rec2.Quarantined) != 1 {
		t.Fatalf("rejected legacy file not quarantined: %+v", rec2)
	}
}

func TestStoreUndecodableRecordQuarantines(t *testing.T) {
	fs := NewMemFS()
	s, _ := mustOpen(t, fs, "cache", OpenOptions{Replay: (&collector{}).replay})
	compactWith(t, s, "good", "bad", "after")
	s.Close()

	var c collector
	_, rec, err := Open(fs, "cache", OpenOptions{Replay: func(p []byte) error {
		if string(p) == "bad" {
			return errors.New("undecodable")
		}
		return c.replay(p)
	}})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !reflect.DeepEqual(c.recs, []string{"good"}) {
		t.Fatalf("kept %v, want [good]", c.recs)
	}
	if rec.Corrupt != 1 || len(rec.Quarantined) != 1 {
		t.Fatalf("decode failure not quarantined: %+v", rec)
	}
}

func TestStoreBrokenAfterFaultHealsByCompact(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem, 7, FaultProfile{})
	s, _ := mustOpen(t, ffs, "cache", OpenOptions{Replay: (&collector{}).replay})
	compactWith(t, s, "base")

	ffs.SetProfile(FaultProfile{SyncErr: 1})
	if err := s.Append([]byte("doomed")); err == nil {
		t.Fatal("Append with failing sync succeeded")
	}
	if !s.Broken() {
		t.Fatal("store not marked broken after append failure")
	}
	if err := s.Append([]byte("refused")); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Append on broken store = %v, want ErrUnavailable", err)
	}

	ffs.SetProfile(FaultProfile{})
	compactWith(t, s, "base", "healed")
	if s.Broken() {
		t.Fatal("store still broken after successful compact")
	}
	if err := s.Append([]byte("works")); err != nil {
		t.Fatalf("Append after heal: %v", err)
	}
	s.Close()

	var c collector
	mustOpen(t, mem, "cache", OpenOptions{Replay: c.replay})
	want := []string{"base", "healed", "works"}
	if !reflect.DeepEqual(c.recs, want) {
		t.Fatalf("replayed %v, want %v", c.recs, want)
	}
}

func TestFaultFSDeterministicReplay(t *testing.T) {
	script := func(seed uint64) []string {
		ffs := NewFaultFS(NewMemFS(), seed, FaultProfile{
			WriteErr: 0.15, ShortWrite: 0.15, NoSpace: 0.1, SyncErr: 0.2, MetaErr: 0.1, ReadErr: 0.1,
		})
		// Drive a fixed op sequence; outcomes vary by seed only.
		for i := 0; i < 40; i++ {
			name := fmt.Sprintf("f%d", i%3)
			f, err := ffs.Create(name)
			if err != nil {
				continue
			}
			f.Write([]byte(strings.Repeat("x", 64)))
			f.Sync()
			f.Close()
			ffs.Rename(name, name+".r")
			ffs.SyncRoot()
			if rf, err := ffs.Open(name + ".r"); err == nil {
				buf := make([]byte, 16)
				rf.Read(buf)
				rf.Close()
			}
			ffs.Remove(name + ".r")
		}
		return ffs.Fates()
	}
	a, b := script(1234), script(1234)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same-seed FaultFS runs diverged")
	}
	if c := script(99); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical fault schedules")
	}
	// And at least one fault actually fired.
	var faults int
	for _, f := range a {
		if !strings.HasSuffix(f, ":ok") {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("fault profile injected nothing")
	}
}

func TestMemFSCrashDurability(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("a")
	f.Write([]byte("durable"))
	f.Sync()
	f.Write([]byte("-volatile"))
	fs.SyncRoot()

	g, _ := fs.Create("unsynced-name")
	g.Write([]byte("gone"))
	g.Sync() // content durable, but the name never SyncRoot'd

	fs.Crash(CrashLoseUnsynced, 1)
	if _, err := fs.ReadFile("unsynced-name"); err == nil {
		t.Fatal("unsynced namespace op survived lose-unsynced crash")
	}
	data, err := fs.ReadFile("a")
	if err != nil || string(data) != "durable" {
		t.Fatalf("a = %q, %v; want synced prefix only", data, err)
	}
	// Handles from before the crash are stale.
	if _, err := f.Write([]byte("zombie")); !errors.Is(err, errStaleHandle) {
		t.Fatalf("stale handle write = %v", err)
	}

	// keep-unsynced keeps file content but still reverts the namespace.
	fs2 := NewMemFS()
	h, _ := fs2.Create("b")
	fs2.SyncRoot()
	h.Write([]byte("kept-anyway"))
	fs2.Crash(CrashKeepUnsynced, 1)
	if data, _ := fs2.ReadFile("b"); string(data) != "kept-anyway" {
		t.Fatalf("b = %q after keep-unsynced crash", data)
	}

	// Torn-tail is deterministic per seed.
	torn := func(seed uint64) string {
		m := NewMemFS()
		f, _ := m.Create("c")
		f.Write([]byte("sync"))
		f.Sync()
		f.Write([]byte("0123456789"))
		m.SyncRoot()
		m.Crash(CrashTornTail, seed)
		d, _ := m.ReadFile("c")
		return string(d)
	}
	if a, b := torn(5), torn(5); a != b {
		t.Fatalf("torn-tail crash not deterministic: %q vs %q", a, b)
	}
	if got := torn(5); !strings.HasPrefix(got, "sync") {
		t.Fatalf("torn tail ate synced prefix: %q", got)
	}
}

func TestQuarantineNameMapping(t *testing.T) {
	cases := map[string]string{
		"cache.corrupt-1":     "cache",
		"cache.corrupt-27":    "cache",
		"a.journal.corrupt-3": "a.journal",
		"cache.corrupt-":      "",
		"cache.corrupt-x1":    "",
		"cache":               "",
	}
	for in, want := range cases {
		if got := quarantineOf(in); got != want {
			t.Errorf("quarantineOf(%q) = %q, want %q", in, got, want)
		}
	}
}
