// Package storage is the crash-safe persistence layer: a record-framed,
// journaled store (periodic full snapshots plus an append-only delta
// journal, compacted past a threshold) built over a minimal virtual
// filesystem so the disk can be made exactly as adversarial as the
// network. The paper's §2.3 caching servers exist so a restarted
// directory comes back with a complete picture; this package is what
// makes that picture survive torn writes, failing fsyncs, full disks
// and kill -9 — the MANET-style churn regime (PAPERS.md) where
// restart-from-state is the common case, not the exception.
//
// Three FS implementations share the interface: OSFS (the real disk),
// MemFS (an in-memory disk with an explicit durability model and a
// Crash operation), and FaultFS (a deterministic fault injector whose
// k-th operation's fate is a pure function of its seed — the same
// determinism contract internal/relay gives the network).
package storage

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// File is one open file. Write handles append (the store never seeks);
// read handles stream from the start. Sync must not return until the
// file's content is durable — every crash-safety argument in this
// package leans on that.
type File interface {
	io.Reader
	io.Writer
	Sync() error
	Close() error
}

// FS is the minimal filesystem surface the store needs: a single flat
// directory of named files. Keeping it this small is what makes the
// fault matrix enumerable — every operation below is a crash point and
// a fault-injection point.
//
// Durability contract (what OSFS provides and MemFS models):
//
//   - File.Sync makes that file's current content durable.
//   - SyncRoot makes the namespace (creates, renames, removes) durable.
//   - Rename atomically replaces the destination.
//   - Nothing else is durable: unsynced writes and unsynced namespace
//     operations may vanish — in whole or in part — at a crash.
type FS interface {
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// Open opens name read-only. A missing file reports an error
	// satisfying errors.Is(err, fs.ErrNotExist).
	Open(name string) (File, error)
	// Rename atomically renames oldname to newname, replacing newname.
	Rename(oldname, newname string) error
	// Remove deletes name (missing files report fs.ErrNotExist).
	Remove(name string) error
	// List returns the names in the root, sorted.
	List() ([]string, error)
	// SyncRoot makes namespace operations durable (fsync of the
	// directory on a real filesystem).
	SyncRoot() error
}

// validName rejects path traversal: the FS is one flat directory, and a
// name with a separator would silently escape it on OSFS.
func validName(name string) error {
	if name == "" || name == "." || strings.ContainsAny(name, `/\`) {
		return fmt.Errorf("storage: bad file name %q", name)
	}
	return nil
}

// OSFS is the real disk: one directory, operations mapped 1:1 onto the
// os package. The zero value is unusable; use NewOSFS.
type OSFS struct {
	dir string
}

// NewOSFS returns an FS rooted at dir (which must already exist — the
// store does not manage directories, only files within one).
func NewOSFS(dir string) *OSFS { return &OSFS{dir: dir} }

func (o *OSFS) path(name string) string { return filepath.Join(o.dir, name) }

// Create implements FS.
func (o *OSFS) Create(name string) (File, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	return os.OpenFile(o.path(name), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

// Open implements FS.
func (o *OSFS) Open(name string) (File, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	return os.Open(o.path(name))
}

// Rename implements FS.
func (o *OSFS) Rename(oldname, newname string) error {
	if err := validName(oldname); err != nil {
		return err
	}
	if err := validName(newname); err != nil {
		return err
	}
	return os.Rename(o.path(oldname), o.path(newname))
}

// Remove implements FS.
func (o *OSFS) Remove(name string) error {
	if err := validName(name); err != nil {
		return err
	}
	return os.Remove(o.path(name))
}

// List implements FS.
func (o *OSFS) List() ([]string, error) {
	ents, err := os.ReadDir(o.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// SyncRoot implements FS. Some filesystems refuse directory syncs; that
// is reported, and the caller decides whether the failure is fatal (the
// store treats it like any other sync failure: the operation did not
// become durable).
func (o *OSFS) SyncRoot() error {
	d, err := os.Open(o.dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}

// readAll drains a File and closes it, preferring the read error over
// the close error (the close error on a read-only handle is noise).
func readAll(f File) ([]byte, error) {
	data, err := io.ReadAll(f)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	return data, err
}

// notExist reports whether err means "no such file" across FS
// implementations.
func notExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }
