package storage

import (
	"bytes"
	"fmt"
	"os"
	"reflect"
	"sort"
	"testing"
)

// The keystone robustness test: enumerate a simulated crash after
// EVERY VFS operation a scripted save/append/compact workload performs,
// under every crash mode MemFS models, then recover and assert the
// result is always a valid pre- or post-state of the logical operation
// that was in flight — never a torn state, never losing an acknowledged
// record, never classifying crash residue as corruption.
//
// The model application is a tiny key-value map: "set" and "del" are
// journal deltas, "compact" folds the live map into a snapshot. That is
// exactly the shape CacheStore gives the session cache (learn/expire
// deltas plus periodic snapshot), with the session payload abstracted
// away.

// kvOp is one logical operation of the scripted workload.
type kvOp struct {
	kind string // "set", "del", "batch", "compact"
	k, v string
	kv2  [2]string // second pair for "batch"
}

// encodeKV frames one delta payload.
func encodeKV(set bool, k, v string) []byte {
	var b bytes.Buffer
	if set {
		b.WriteByte('S')
	} else {
		b.WriteByte('D')
	}
	b.WriteString(k)
	b.WriteByte(0)
	b.WriteString(v)
	return b.Bytes()
}

// decodeKV applies one payload to the model.
func decodeKV(m map[string]string, p []byte) error {
	if len(p) < 2 {
		return fmt.Errorf("short payload %q", p)
	}
	i := bytes.IndexByte(p[1:], 0)
	if i < 0 {
		return fmt.Errorf("unterminated key in %q", p)
	}
	k, v := string(p[1:1+i]), string(p[2+i:])
	switch p[0] {
	case 'S':
		m[k] = v
	case 'D':
		delete(m, k)
	default:
		return fmt.Errorf("unknown delta kind %q", p[0])
	}
	return nil
}

// records returns the journal payload sequence a logical op appends
// (nil for compact).
func (op kvOp) records() [][]byte {
	switch op.kind {
	case "set":
		return [][]byte{encodeKV(true, op.k, op.v)}
	case "del":
		return [][]byte{encodeKV(false, op.k, "")}
	case "batch":
		return [][]byte{encodeKV(true, op.k, op.v), encodeKV(true, op.kv2[0], op.kv2[1])}
	}
	return nil
}

func cloneKV(m map[string]string) map[string]string {
	c := make(map[string]string, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func kvString(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b bytes.Buffer
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s;", k, m[k])
	}
	return b.String()
}

// compactKV folds the live model into a snapshot in sorted-key order.
func compactKV(s *Store, live map[string]string) error {
	return s.Compact(func(add func([]byte) error) error {
		keys := make([]string, 0, len(live))
		for k := range live {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := add(encodeKV(true, k, live[k])); err != nil {
				return err
			}
		}
		return nil
	})
}

// quickScript is the CI-tier workload: every store code path (first
// compact, single appends, a batch append, deletes, re-compacts) in a
// couple hundred VFS ops.
func quickScript() []kvOp {
	return []kvOp{
		{kind: "compact"},
		{kind: "set", k: "alpha", v: "1"},
		{kind: "set", k: "beta", v: "2"},
		{kind: "batch", k: "gamma", v: "3", kv2: [2]string{"delta", "4"}},
		{kind: "compact"},
		{kind: "del", k: "alpha"},
		{kind: "set", k: "beta", v: "22"},
		{kind: "compact"},
		{kind: "set", k: "eps", v: "5"},
		{kind: "del", k: "gamma"},
		{kind: "compact"},
		{kind: "batch", k: "zeta", v: "6", kv2: [2]string{"eta", "7"}},
	}
}

// extendedScript is the nightly-tier workload: longer, more churn, so
// the crash sweep covers more (op, state) combinations.
func extendedScript() []kvOp {
	ops := []kvOp{{kind: "compact"}}
	for i := 0; i < 12; i++ {
		k1 := fmt.Sprintf("k%d", i%5)
		k2 := fmt.Sprintf("k%d", (i+2)%5)
		ops = append(ops,
			kvOp{kind: "set", k: k1, v: fmt.Sprintf("v%d", i)},
			kvOp{kind: "batch", k: k2, v: fmt.Sprintf("b%d", i), kv2: [2]string{k1 + "x", "y"}},
		)
		if i%3 == 1 {
			ops = append(ops, kvOp{kind: "del", k: k1})
		}
		if i%4 == 3 {
			ops = append(ops, kvOp{kind: "compact"})
		}
	}
	return append(ops, kvOp{kind: "compact"}, kvOp{kind: "del", k: "k0"})
}

// runScript executes ops against a store on fsys, tracking the live
// model (every attempted mutation) and the acked model (everything the
// store acknowledged as durable). It stops at the first store error and
// returns the in-flight logical op's allowed recovery states: the acked
// state plus each cumulative record prefix of the op that failed.
func runScript(fsys FS, ops []kvOp) (allowed []map[string]string) {
	live := map[string]string{}
	acked := map[string]string{}
	model := func() map[string]string { return cloneKV(acked) }

	s, _, err := Open(fsys, "cache", OpenOptions{Replay: func(p []byte) error {
		return decodeKV(live, p)
	}})
	if err != nil {
		// Crashed during recovery reads: nothing was written, the
		// pre-state (empty here) must survive.
		return []map[string]string{model()}
	}
	defer s.Close()

	for _, op := range ops {
		if op.kind == "compact" {
			// A compact folds the live model; its pre-state is acked,
			// its post-state is live.
			if err := compactKV(s, live); err != nil {
				return []map[string]string{cloneKV(acked), cloneKV(live)}
			}
			acked = cloneKV(live)
			continue
		}
		recs := op.records()
		for _, r := range recs {
			decodeKV(live, r) // the app mutates memory first, then journals
		}
		if err := s.Append(recs...); err != nil {
			// In-flight append: any durable prefix of the batch is a
			// valid recovery, including none of it.
			allowed = []map[string]string{model()}
			pfx := cloneKV(acked)
			for _, r := range recs {
				decodeKV(pfx, r)
				allowed = append(allowed, cloneKV(pfx))
			}
			return allowed
		}
		acked = cloneKV(live)
	}
	// Script completed without a crash: exactly the acked state.
	return []map[string]string{model()}
}

// recoverKV reopens the store on fsys and replays into a fresh model.
func recoverKV(t *testing.T, fsys FS) (map[string]string, Recovery) {
	t.Helper()
	m := map[string]string{}
	s, rec, err := Open(fsys, "cache", OpenOptions{Replay: func(p []byte) error {
		return decodeKV(m, p)
	}})
	if err != nil {
		t.Fatalf("recovery Open failed: %v (recovery %+v)", err, rec)
	}
	s.Close()
	return m, rec
}

func crashSweep(t *testing.T, ops []kvOp, seed uint64) {
	// Dry run: count the VFS ops the full script performs.
	dry := NewFaultFS(NewMemFS(), seed, FaultProfile{})
	final := runScript(dry, ops)
	total := dry.Ops()
	if total < 50 {
		t.Fatalf("script too small to be interesting: %d VFS ops", total)
	}
	if len(final) != 1 {
		t.Fatalf("dry run did not complete: %d allowed states", len(final))
	}
	t.Logf("enumerating %d crash points x %d modes (%d recoveries)",
		total, len(CrashModes), total*int64(len(CrashModes)))

	for k := int64(0); k <= total; k++ {
		for _, mode := range CrashModes {
			mem := NewMemFS()
			ffs := NewFaultFS(mem, seed, FaultProfile{})
			ffs.SetCrashAfter(k)
			allowed := runScript(ffs, ops)
			if k < total && !ffs.Crashed() {
				t.Fatalf("crash point %d never fired", k)
			}
			// Power loss, reboot, recover.
			mem.Crash(mode, seed^uint64(k*41+int64(mode)+1))
			got, rec := recoverKV(t, mem)
			if rec.Corrupt != 0 || len(rec.Quarantined) != 0 {
				t.Fatalf("crash point %d mode %v: crash residue classified as corruption: %+v",
					k, mode, rec)
			}
			ok := false
			for _, want := range allowed {
				if reflect.DeepEqual(got, want) {
					ok = true
					break
				}
			}
			if !ok {
				var wants []string
				for _, w := range allowed {
					wants = append(wants, kvString(w))
				}
				t.Fatalf("crash point %d mode %v: recovered %q, want one of %q (recovery %+v)",
					k, mode, kvString(got), wants, rec)
			}
		}
	}
}

// TestCrashPointEnumeration is the quick (CI) tier.
func TestCrashPointEnumeration(t *testing.T) {
	crashSweep(t, quickScript(), 17)
}

// TestCrashPointEnumerationExtended is the nightly tier: the longer
// script and several seeds (different torn-tail draws and crash
// residue). Gate: STORAGE_CHAOS_EXTENDED=1.
func TestCrashPointEnumerationExtended(t *testing.T) {
	if os.Getenv("STORAGE_CHAOS_EXTENDED") == "" {
		t.Skip("set STORAGE_CHAOS_EXTENDED=1 for the extended crash-point sweep")
	}
	for _, seed := range []uint64{3, 1009, 77777} {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			crashSweep(t, extendedScript(), seed)
		})
	}
}

// TestFaultSoakAckedNeverLost drives the script under a continuously
// faulty disk (no crash points): after a clean reopen, the recovered
// state must be one the acknowledgement history permits. A failed
// operation may still have landed bytes (a short-written batch prefix,
// a snapshot whose directory sync failed), so the allowed set is the
// last acknowledged state plus the possible residues of operations that
// failed since — but never anything older than an acknowledgement and
// never a state no operation produced.
func TestFaultSoakAckedNeverLost(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		mem := NewMemFS()
		ffs := NewFaultFS(mem, seed, FaultProfile{
			WriteErr: 0.05, ShortWrite: 0.05, NoSpace: 0.03, SyncErr: 0.08, MetaErr: 0.02,
		})
		live := map[string]string{}
		s, _, err := Open(ffs, "cache", OpenOptions{Replay: func(p []byte) error {
			return decodeKV(live, p)
		}})
		if err != nil {
			continue // recovery reads hit a fault; nothing persisted, nothing to check
		}
		allowed := map[string]map[string]string{} // kvString -> state
		admit := func(m map[string]string) { allowed[kvString(m)] = cloneKV(m) }
		reset := func(m map[string]string) {
			allowed = map[string]map[string]string{}
			admit(m)
		}
		anyAck := false
		reset(map[string]string{}) // pre-first-compact: empty store
		for _, op := range extendedScript() {
			if op.kind == "compact" {
				if compactKV(s, live) == nil {
					reset(live)
					anyAck = true
				} else {
					// The snapshot may or may not have been installed.
					admit(live)
				}
				continue
			}
			recs := op.records()
			for _, r := range recs {
				decodeKV(live, r)
			}
			wasBroken := s.Broken()
			if s.Append(recs...) == nil {
				reset(live)
				anyAck = true
			} else if !wasBroken {
				// First failure since health: complete record prefixes
				// of this batch may have reached the journal.
				for _, prior := range allowedSnapshot(allowed) {
					pfx := cloneKV(prior)
					for _, r := range recs {
						decodeKV(pfx, r)
						admit(pfx)
					}
				}
			}
		}
		s.Close()
		if !anyAck {
			continue // the disk never let a single operation through
		}
		got, rec := recoverKV(t, mem)
		if _, ok := allowed[kvString(got)]; !ok {
			var wants []string
			for w := range allowed {
				wants = append(wants, w)
			}
			sort.Strings(wants)
			t.Fatalf("seed %d: recovered %q, want one of %q (recovery %+v, fates %v)",
				seed, kvString(got), wants, rec, ffs.Fates())
		}
	}
}

// allowedSnapshot returns the current allowed states as a stable slice
// (the map is mutated while iterating otherwise).
func allowedSnapshot(allowed map[string]map[string]string) []map[string]string {
	keys := make([]string, 0, len(allowed))
	for k := range allowed {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]map[string]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, allowed[k])
	}
	return out
}
