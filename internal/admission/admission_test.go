package admission

import (
	"fmt"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"sessiondir/internal/mcast"
	"sessiondir/internal/stats"
)

func origin(i int) netip.Addr {
	return netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i & 0xff)})
}

func t0() time.Time { return time.Date(1998, 9, 1, 12, 0, 0, 0, time.UTC) }

func TestAllowUnlimitedByDefault(t *testing.T) {
	c := New(Config{})
	for i := 0; i < 1000; i++ {
		if !c.Allow(origin(1), t0()) {
			t.Fatal("zero config must admit everything")
		}
	}
	if c.Origins() != 0 {
		t.Fatalf("unlimited limiter tracked %d origins, want 0", c.Origins())
	}
}

func TestAllowBucketDrainAndRefill(t *testing.T) {
	c := New(Config{OriginRate: 1, OriginBurst: 4, RNG: stats.NewRNG(1)})
	now := t0()
	admitted := 0
	for i := 0; i < 20; i++ {
		if c.Allow(origin(1), now) {
			admitted++
		}
	}
	if admitted == 0 || admitted > 4 {
		t.Fatalf("burst of 4 admitted %d packets", admitted)
	}
	// Ten quiet seconds refill the bucket to its (clamped) depth.
	now = now.Add(10 * time.Second)
	if !c.Allow(origin(1), now) {
		t.Fatal("refilled bucket denied a packet")
	}
	// A second origin has its own budget.
	if !c.Allow(origin(2), now) {
		t.Fatal("fresh origin denied its first packet")
	}
}

func TestAllowDeterministicReplay(t *testing.T) {
	run := func() []bool {
		c := New(Config{OriginRate: 2, OriginBurst: 8, RNG: stats.NewRNG(42)})
		now := t0()
		var out []bool
		for i := 0; i < 200; i++ {
			if i%5 == 0 {
				now = now.Add(time.Second)
			}
			out = append(out, c.Allow(origin(i%3), now))
		}
		return out
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatal("identical seeds produced different admission sequences")
	}
}

func TestBucketTableBounded(t *testing.T) {
	c := New(Config{OriginRate: 1, MaxOrigins: 64, RNG: stats.NewRNG(7)})
	now := t0()
	for i := 0; i < 10_000; i++ {
		c.Allow(origin(i), now)
	}
	if got := c.Origins(); got > 64 {
		t.Fatalf("bucket table grew to %d origins under churn, budget 64", got)
	}
}

func mkCand(key string, org netip.Addr, ttl mcast.TTL, heard time.Time, deleted bool) Candidate {
	return Candidate{Key: key, Origin: org, TTL: ttl, LastHeard: heard, Deleted: deleted}
}

func TestPlanNewStaleFirstThenTTL(t *testing.T) {
	now := t0().Add(time.Hour)
	c := New(Config{MaxSessions: 3, StaleAfter: 10 * time.Minute})
	cands := []Candidate{
		mkCand("b", origin(2), 127, now.Add(-20*time.Minute), false), // stale, wide scope
		mkCand("a", origin(1), 15, now.Add(-20*time.Minute), false),  // stale, narrow scope
		mkCand("c", origin(3), 127, now.Add(-time.Minute), false),    // fresh
	}
	d := c.PlanNew(cands, origin(4), now)
	if d.Outcome != Admit {
		t.Fatalf("outcome %v, want admit", d.Outcome)
	}
	// Both stale entries heard at the same instant: the narrower TTL goes.
	if len(d.Evict) != 1 || d.Evict[0] != "a" {
		t.Fatalf("evicted %v, want [a] (lowest TTL among equally stale)", d.Evict)
	}
}

func TestPlanNewTombstonesBeforeStale(t *testing.T) {
	now := t0().Add(time.Hour)
	c := New(Config{MaxSessions: 2, StaleAfter: 10 * time.Minute})
	cands := []Candidate{
		mkCand("stale", origin(1), 15, now.Add(-30*time.Minute), false),
		mkCand("tomb", origin(2), 127, now.Add(-time.Minute), true),
	}
	d := c.PlanNew(cands, origin(3), now)
	if d.Outcome != Admit || len(d.Evict) != 1 || d.Evict[0] != "tomb" {
		t.Fatalf("got %+v, want admit evicting [tomb]", d)
	}
}

func TestPlanNewShedsWhenAllFresh(t *testing.T) {
	now := t0()
	c := New(Config{MaxSessions: 2, StaleAfter: 10 * time.Minute})
	cands := []Candidate{
		mkCand("a", origin(1), 127, now, false),
		mkCand("b", origin(2), 127, now, false),
	}
	d := c.PlanNew(cands, origin(3), now)
	if d.Outcome != Shed || len(d.Evict) != 0 {
		t.Fatalf("got %+v, want shed with no evictions (drop-newest)", d)
	}
}

func TestPlanNewPerOriginQuota(t *testing.T) {
	now := t0()
	c := New(Config{MaxPerOrigin: 2, StaleAfter: 10 * time.Minute})
	cands := []Candidate{
		mkCand("x1", origin(1), 127, now, false),
		mkCand("x2", origin(1), 127, now, false),
		mkCand("y1", origin(2), 127, now, false),
	}
	if d := c.PlanNew(cands, origin(1), now); d.Outcome != DenyQuota {
		t.Fatalf("over-quota origin got %v, want deny-quota", d.Outcome)
	}
	if d := c.PlanNew(cands, origin(2), now); d.Outcome != Admit {
		t.Fatalf("under-quota origin got %v, want admit", d.Outcome)
	}
	// A stale entry of the same origin is reclaimed instead of denying.
	cands[0].LastHeard = now.Add(-time.Hour)
	d := c.PlanNew(cands, origin(1), now)
	if d.Outcome != Admit || len(d.Evict) != 1 || d.Evict[0] != "x1" {
		t.Fatalf("got %+v, want admit evicting [x1]", d)
	}
}

func TestTrimPlanDeterministicAndSufficient(t *testing.T) {
	now := t0()
	c := New(Config{MaxSessions: 4, MaxPerOrigin: 2})
	var cands []Candidate
	for i := 0; i < 10; i++ {
		cands = append(cands, mkCand(
			fmt.Sprintf("k%02d", i), origin(i%3), 127,
			now.Add(-time.Duration(i)*time.Minute), false))
	}
	evict := c.TrimPlan(cands)
	// Survivors must fit both limits.
	gone := make(map[string]bool)
	for _, k := range evict {
		gone[k] = true
	}
	perOrigin := map[netip.Addr]int{}
	kept := 0
	for _, e := range cands {
		if !gone[e.Key] {
			kept++
			perOrigin[e.Origin]++
		}
	}
	if kept > 4 {
		t.Fatalf("%d survivors, budget 4", kept)
	}
	for o, n := range perOrigin {
		if n > 2 {
			t.Fatalf("origin %s keeps %d entries, quota 2", o, n)
		}
	}
	// Same inputs in a different order: identical plan.
	shuffled := append([]Candidate(nil), cands...)
	for i := range shuffled {
		j := (i * 7) % len(shuffled)
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}
	evict2 := c.TrimPlan(shuffled)
	a := append([]string(nil), evict...)
	b := append([]string(nil), evict2...)
	if !reflect.DeepEqual(sorted(a), sorted(b)) {
		t.Fatalf("trim plan depends on candidate order: %v vs %v", evict, evict2)
	}
}

func sorted(s []string) []string {
	out := append([]string(nil), s...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// The grouped planner entry points exist so the sharded cache can hand
// over per-shard candidate groups without a caller-side flatten; they
// must be exactly equivalent to the flat planners on the concatenation —
// budget accounting across shards may not drift by a single session.
func TestGroupedPlannersMatchFlat(t *testing.T) {
	now := time.Unix(50000, 0)
	mk := func(i int) Candidate {
		return Candidate{
			Key:       fmt.Sprintf("10.0.%d.%d/%d", i%7, i%13, i),
			Origin:    netip.AddrFrom4([4]byte{10, 0, byte(i % 7), byte(i % 13)}),
			TTL:       127,
			LastHeard: now.Add(-time.Duration(i%40) * time.Minute),
			Deleted:   i%11 == 0,
		}
	}
	var flat []Candidate
	var groups [][]Candidate
	for g := 0; g < 5; g++ {
		var grp []Candidate
		for i := 0; i < 30; i++ {
			c := mk(g*30 + i)
			grp = append(grp, c)
			flat = append(flat, c)
		}
		groups = append(groups, grp)
	}
	groups = append(groups, nil) // empty shard

	ctrl := New(Config{MaxSessions: 60, MaxPerOrigin: 12, StaleAfter: 10 * time.Minute})
	newOrigin := netip.AddrFrom4([4]byte{10, 0, 3, 9})
	want := ctrl.PlanNew(flat, newOrigin, now)
	got := ctrl.PlanNewGrouped(groups, newOrigin, now)
	if want.Outcome != got.Outcome || fmt.Sprint(want.Evict) != fmt.Sprint(got.Evict) {
		t.Fatalf("PlanNewGrouped diverges: %v/%v vs %v/%v", got.Outcome, got.Evict, want.Outcome, want.Evict)
	}
	if w, g := ctrl.TrimPlan(flat), ctrl.TrimPlanGrouped(groups); fmt.Sprint(w) != fmt.Sprint(g) {
		t.Fatalf("TrimPlanGrouped diverges: %v vs %v", g, w)
	}
}
