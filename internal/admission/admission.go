// Package admission is the control layer between the transport and the
// directory's soft state. The paper's announce–listen model assumes
// well-behaved participants: any host may announce, and every listener
// caches what it hears. A single hostile or buggy sender can therefore
// grow a listener's cache without bound, exhaust its per-origin fairness,
// or flood the shared announcement channel. This package supplies the
// three defences the directory composes in its receive path:
//
//   - a per-origin token-bucket rate limit on announcements and deletions
//     (Allow), with a bounded bucket table so origin churn cannot itself
//     become a memory attack;
//   - a deterministic admission plan for new sessions against a hard
//     session budget and per-origin quota (PlanNew): stale or deleted
//     entries are evicted first (lowest TTL scope breaking ties), and if
//     everything cached is fresh and live the newcomer is shed instead —
//     drop-newest, so established state is never displaced by a flood;
//   - a deterministic trim for over-budget checkpoint loads (TrimPlan),
//     which must get under budget even when nothing is stale.
//
// Everything is a pure function of its inputs plus the caller-supplied
// clock reading and an explicitly seeded stats.RNG (used only for the
// early-drop band of the rate limiter), so admission decisions replay
// bit-identically under the chaos harness. The controller is not safe for
// concurrent use; the directory serialises access under its own mutex,
// exactly as it does for the announcement cache and clash tracker.
package admission

import (
	"net/netip"
	"sort"
	"time"

	"sessiondir/internal/mcast"
	"sessiondir/internal/stats"
)

// Config parameterises a Controller. Zero values disable each mechanism,
// preserving the pre-admission behaviour of the directory.
type Config struct {
	// MaxSessions bounds the listened-session cache, counting every entry
	// (including deletion tombstones, which also occupy memory).
	// 0 = unlimited.
	MaxSessions int
	// MaxPerOrigin bounds cached sessions per announcing origin.
	// 0 = unlimited.
	MaxPerOrigin int
	// OriginRate is the sustained per-origin packet budget in
	// packets/second across announcements and deletions. 0 = unlimited.
	OriginRate float64
	// OriginBurst is the token-bucket depth in packets
	// (0 = max(8, 4×OriginRate)).
	OriginBurst float64
	// StaleAfter marks a cache entry evictable under budget pressure once
	// it has gone unheard this long. It should exceed the announcers'
	// steady re-announcement interval, or live sessions between
	// re-announcements become flood-evictable (0 = 15 minutes, three
	// missed steady announcements at the RFC 2974 floor).
	StaleAfter time.Duration
	// MaxOrigins bounds the rate limiter's bucket table (0 = 4096).
	MaxOrigins int
	// RNG drives the limiter's early-drop band. Required when OriginRate
	// is set; a seeded stream keeps chaos runs replayable.
	RNG *stats.RNG
}

// Candidate is the admission view of one cache entry.
type Candidate struct {
	Key       string
	Origin    netip.Addr
	TTL       mcast.TTL
	LastHeard time.Time
	Deleted   bool
}

// Outcome is the verdict on a new session.
type Outcome int

const (
	// Admit: cache the session (after applying Decision.Evict).
	Admit Outcome = iota
	// Shed: the cache is full of fresh live state; drop the newcomer.
	Shed
	// DenyQuota: the origin's session quota is exhausted.
	DenyQuota
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Admit:
		return "admit"
	case Shed:
		return "shed"
	case DenyQuota:
		return "deny-quota"
	default:
		return "outcome-?"
	}
}

// Decision is an admission plan: evict the named keys, then admit or not.
// Evictions are valid regardless of Outcome (they only ever name stale or
// deleted entries, which reclaiming is always correct).
type Decision struct {
	Outcome Outcome
	Evict   []string
}

type bucket struct {
	tokens float64
	last   time.Time
}

// Controller holds the rate limiter's per-origin state. The eviction
// planners are stateless; they live here only to share the Config.
type Controller struct {
	cfg       Config
	buckets   map[netip.Addr]*bucket
	bucketGCs uint64
}

// Stats is the controller's observability snapshot. Like every other
// Controller method it must be read under the caller's serialisation
// (the directory reads it under its own mutex for registry gauges).
type Stats struct {
	// Origins is the number of origins the rate limiter tracks.
	Origins int
	// BucketGCs counts bucket-table reclaims: each one means origin churn
	// (or a many-origin flood) pushed the table past its bound.
	BucketGCs uint64
}

// Stats returns the controller's current observability snapshot.
func (c *Controller) Stats() Stats {
	return Stats{Origins: len(c.buckets), BucketGCs: c.bucketGCs}
}

// New returns a Controller. The zero-valued Config admits everything.
func New(cfg Config) *Controller {
	if cfg.OriginBurst <= 0 {
		cfg.OriginBurst = 4 * cfg.OriginRate
		if cfg.OriginBurst < 8 {
			cfg.OriginBurst = 8
		}
	}
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = 15 * time.Minute
	}
	if cfg.MaxOrigins <= 0 {
		cfg.MaxOrigins = 4096
	}
	return &Controller{cfg: cfg, buckets: make(map[netip.Addr]*bucket)}
}

// Allow charges one packet from origin against its token bucket,
// reporting whether the packet may be processed. Below a quarter of the
// bucket's depth it sheds probabilistically (random early drop, drawn
// from the seeded RNG) so that a sender hovering at its budget degrades
// smoothly instead of oscillating between full service and blackout.
func (c *Controller) Allow(origin netip.Addr, now time.Time) bool {
	if c.cfg.OriginRate <= 0 {
		return true
	}
	b, ok := c.buckets[origin]
	if !ok {
		if len(c.buckets) >= c.cfg.MaxOrigins {
			c.gcBuckets(now)
		}
		b = &bucket{tokens: c.cfg.OriginBurst, last: now}
		c.buckets[origin] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * c.cfg.OriginRate
		if b.tokens > c.cfg.OriginBurst {
			b.tokens = c.cfg.OriginBurst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	if red := c.cfg.OriginBurst / 4; b.tokens < red && c.cfg.RNG != nil {
		if c.cfg.RNG.Bool((red - b.tokens) / red) {
			return false // early drop: still charged nothing
		}
	}
	b.tokens--
	return true
}

// Origins reports how many origins the limiter currently tracks.
func (c *Controller) Origins() int { return len(c.buckets) }

// gcBuckets reclaims bucket-table space: fully-refilled buckets are idle
// senders whose state is reconstructible, so they go first; if the table
// is still over budget (an active many-origin flood) the fullest buckets
// go regardless, in deterministic address order, keeping memory bounded
// at the price of forgetting some rate state.
func (c *Controller) gcBuckets(now time.Time) {
	c.bucketGCs++
	var addrs []netip.Addr
	for a := range c.buckets {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool {
		bi, bj := c.buckets[addrs[i]], c.buckets[addrs[j]]
		ti, tj := refilled(bi, now, c.cfg), refilled(bj, now, c.cfg)
		if ti != tj {
			return ti > tj // fullest (most idle) first
		}
		return addrs[i].Less(addrs[j])
	})
	target := c.cfg.MaxOrigins / 2
	for _, a := range addrs {
		if len(c.buckets) <= target {
			return
		}
		delete(c.buckets, a)
	}
}

// refilled projects a bucket's token count to now without mutating it.
func refilled(b *bucket, now time.Time, cfg Config) float64 {
	t := b.tokens
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		t += dt * cfg.OriginRate
	}
	if t > cfg.OriginBurst {
		t = cfg.OriginBurst
	}
	return t
}

// evictionOrder sorts candidates into the deterministic eviction
// preference: deletion tombstones first, then the longest-unheard, then
// the smallest TTL scope (a narrowly scoped session matters to fewer
// listeners), then lexical key so the order is total and replayable.
func evictionOrder(cands []Candidate) []Candidate {
	out := append([]Candidate(nil), cands...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Deleted != b.Deleted {
			return a.Deleted
		}
		if !a.LastHeard.Equal(b.LastHeard) {
			return a.LastHeard.Before(b.LastHeard)
		}
		if a.TTL != b.TTL {
			return a.TTL < b.TTL
		}
		return a.Key < b.Key
	})
	return out
}

// evictable reports whether an entry may be displaced by a newcomer:
// only tombstones and entries whose announcer has gone quiet. Fresh live
// state always wins over new state (drop-newest).
func (c *Controller) evictable(e Candidate, now time.Time) bool {
	return e.Deleted || now.Sub(e.LastHeard) > c.cfg.StaleAfter
}

// PlanNew decides the fate of a new session from origin given the current
// cache population. Callers must exclude their own sessions from cands —
// own state is never an eviction candidate.
func (c *Controller) PlanNew(cands []Candidate, origin netip.Addr, now time.Time) Decision {
	var d Decision
	ordered := evictionOrder(cands)
	evicted := make(map[string]bool)

	if c.cfg.MaxPerOrigin > 0 {
		mine := 0
		for _, e := range cands {
			if e.Origin == origin {
				mine++
			}
		}
		// Reclaim the origin's own stale/deleted entries before denying it.
		for _, e := range ordered {
			if mine < c.cfg.MaxPerOrigin {
				break
			}
			if e.Origin == origin && c.evictable(e, now) && !evicted[e.Key] {
				evicted[e.Key] = true
				d.Evict = append(d.Evict, e.Key)
				mine--
			}
		}
		if mine >= c.cfg.MaxPerOrigin {
			d.Outcome = DenyQuota
			return d
		}
	}

	if c.cfg.MaxSessions > 0 {
		total := len(cands) - len(d.Evict)
		for _, e := range ordered {
			if total < c.cfg.MaxSessions {
				break
			}
			if c.evictable(e, now) && !evicted[e.Key] {
				evicted[e.Key] = true
				d.Evict = append(d.Evict, e.Key)
				total--
			}
		}
		if total >= c.cfg.MaxSessions {
			d.Outcome = Shed
			return d
		}
	}
	d.Outcome = Admit
	return d
}

// flattenGroups concatenates per-shard candidate groups in group order
// with a single allocation. Both planners impose their own total
// deterministic order (evictionOrder) and count commutatively, so the
// concatenation order cannot influence any decision — which is exactly
// the property the grouped equivalence tests pin.
func flattenGroups(groups [][]Candidate) []Candidate {
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	flat := make([]Candidate, 0, total)
	for _, g := range groups {
		flat = append(flat, g...)
	}
	return flat
}

// PlanNewGrouped is PlanNew over per-shard candidate groups, as produced
// by a sharded cache. The decision — outcome and eviction set — is
// identical to PlanNew over any flattening of the groups: budget
// accounting stays exact across shards because the planner's ordering
// and counting never depend on input order.
func (c *Controller) PlanNewGrouped(groups [][]Candidate, origin netip.Addr, now time.Time) Decision {
	return c.PlanNew(flattenGroups(groups), origin, now)
}

// TrimPlanGrouped is TrimPlan over per-shard candidate groups, with the
// same exactness guarantee as PlanNewGrouped.
func (c *Controller) TrimPlanGrouped(groups [][]Candidate) []string {
	return c.TrimPlan(flattenGroups(groups))
}

// TrimPlan returns the keys to evict so that the population fits both the
// session budget and every per-origin quota, evicting in the same
// deterministic preference order but unconditionally — a checkpoint
// larger than the budget must not over-admit merely because its entries
// were recently saved.
func (c *Controller) TrimPlan(cands []Candidate) []string {
	ordered := evictionOrder(cands)
	perOrigin := make(map[netip.Addr]int)
	for _, e := range cands {
		perOrigin[e.Origin]++
	}
	var evict []string
	remaining := len(cands)
	for _, e := range ordered {
		if c.cfg.MaxPerOrigin > 0 && perOrigin[e.Origin] > c.cfg.MaxPerOrigin {
			perOrigin[e.Origin]--
			remaining--
			evict = append(evict, e.Key)
		}
	}
	if c.cfg.MaxSessions > 0 && remaining > c.cfg.MaxSessions {
		over := make(map[string]bool, len(evict))
		for _, k := range evict {
			over[k] = true
		}
		for _, e := range ordered {
			if remaining <= c.cfg.MaxSessions {
				break
			}
			if !over[e.Key] {
				remaining--
				evict = append(evict, e.Key)
			}
		}
	}
	return evict
}
