// Package prefix implements the paper's §4.1 proposal — the future-work
// direction that historically became MASC/BGMP: split multicast address
// allocation into two layers.
//
//   - An upper "prefix" layer dynamically associates contiguous address
//     blocks with network regions, using claim-listen-defend over long
//     timescales. Because claims change slowly, the propagation-delay
//     window in which two regions can claim the same block unseen is tiny,
//     so prefix collisions are rare and cheap to resolve.
//   - A lower layer allocates individual addresses *within* the region's
//     blocks using the flat machinery of this repository (informed random
//     here). Address-usage announcements stay inside the region, so they
//     can be sent more often: the effective invisible fraction i is much
//     smaller than with one global announcement channel, and Equation 1
//     packing improves accordingly.
//
// The package provides both the mechanism (Pool, RegionAllocator, the
// claim protocol) and a simulation harness comparing hierarchical against
// flat allocation (see Experiment).
package prefix

import (
	"fmt"
	"sort"

	"sessiondir/internal/mcast"
	"sessiondir/internal/stats"
)

// Block is one claimable address block: indices [Start, Start+Size).
type Block struct {
	Start uint32
	Size  uint32
}

// End returns the exclusive upper bound of the block.
func (b Block) End() uint32 { return b.Start + b.Size }

// Overlaps reports whether two blocks share any address.
func (b Block) Overlaps(o Block) bool {
	return b.Start < o.End() && o.Start < b.End()
}

// String implements fmt.Stringer.
func (b Block) String() string { return fmt.Sprintf("[%d,%d)", b.Start, b.End()) }

// ClaimState is the lifecycle of a prefix claim.
type ClaimState int

const (
	// ClaimPending: announced, within its listen period, not yet usable.
	ClaimPending ClaimState = iota
	// ClaimActive: survived the listen period; addresses may be allocated.
	ClaimActive
	// ClaimAbandoned: lost a collision and was withdrawn.
	ClaimAbandoned
)

// String implements fmt.Stringer.
func (s ClaimState) String() string {
	switch s {
	case ClaimPending:
		return "pending"
	case ClaimActive:
		return "active"
	case ClaimAbandoned:
		return "abandoned"
	default:
		return fmt.Sprintf("ClaimState(%d)", int(s))
	}
}

// Claim is one region's claim on a block.
type Claim struct {
	Region int
	Block  Block
	State  ClaimState
	MadeAt int64 // claim epoch (abstract ticks)
	seq    uint64
}

// PoolConfig parameterises the prefix layer.
type PoolConfig struct {
	// SpaceSize is the total number of allocatable addresses.
	SpaceSize uint32
	// BlockSize is the claim granularity (the "prefix" length). The paper
	// suggests flat allocation is reasonable up to ~10 000 addresses; any
	// granularity at or below that works.
	BlockSize uint32
	// ListenTicks is how long a claim stays pending before activating.
	// Longer listening shrinks the collision window further.
	ListenTicks int64
	// Regions is the number of participating regions.
	Regions int
}

// Pool is the global prefix-layer state as seen by an omniscient observer
// (the simulation's ground truth). Each region additionally has its own,
// possibly stale, view — staleness is injected at claim time via the
// visibility probability.
type Pool struct {
	cfg     PoolConfig
	claims  []*Claim
	nextSeq uint64
}

// NewPool validates the configuration and returns an empty pool.
func NewPool(cfg PoolConfig) (*Pool, error) {
	if cfg.SpaceSize == 0 {
		return nil, fmt.Errorf("prefix: zero space")
	}
	if cfg.BlockSize == 0 || cfg.BlockSize > cfg.SpaceSize {
		return nil, fmt.Errorf("prefix: block size %d invalid for space %d", cfg.BlockSize, cfg.SpaceSize)
	}
	if cfg.Regions < 1 {
		return nil, fmt.Errorf("prefix: need at least one region")
	}
	if cfg.ListenTicks < 0 {
		return nil, fmt.Errorf("prefix: negative listen period")
	}
	return &Pool{cfg: cfg}, nil
}

// NumBlocks returns the number of claimable blocks.
func (p *Pool) NumBlocks() uint32 { return p.cfg.SpaceSize / p.cfg.BlockSize }

// blockAt returns the i-th block.
func (p *Pool) blockAt(i uint32) Block {
	return Block{Start: i * p.cfg.BlockSize, Size: p.cfg.BlockSize}
}

// liveClaims returns pending + active claims.
func (p *Pool) liveClaims() []*Claim {
	out := make([]*Claim, 0, len(p.claims))
	for _, c := range p.claims {
		if c.State != ClaimAbandoned {
			out = append(out, c)
		}
	}
	return out
}

// ClaimBlock has region claim one currently-free block (as that region
// sees it): each live claim by another region is visible with probability
// 1−invisible. A region never claims over a block it can see claimed; an
// invisible claim can produce a collision, resolved at activation time by
// Tick. Returns the new claim, or nil if the region sees no free block.
func (p *Pool) ClaimBlock(region int, now int64, invisible float64, rng *stats.RNG) *Claim {
	visibleTaken := make([]bool, p.NumBlocks())
	for _, c := range p.liveClaims() {
		seen := c.Region == region || !rng.Bool(invisible)
		if seen {
			idx := c.Block.Start / p.cfg.BlockSize
			visibleTaken[idx] = true
		}
	}
	var free []uint32
	for i := uint32(0); i < p.NumBlocks(); i++ {
		if !visibleTaken[i] {
			free = append(free, i)
		}
	}
	if len(free) == 0 {
		return nil
	}
	idx := free[rng.IntN(len(free))]
	p.nextSeq++
	claim := &Claim{
		Region: region,
		Block:  p.blockAt(idx),
		State:  ClaimPending,
		MadeAt: now,
		seq:    p.nextSeq,
	}
	p.claims = append(p.claims, claim)
	return claim
}

// Release abandons a claim (a region shrinking its holdings).
func (p *Pool) Release(c *Claim) { c.State = ClaimAbandoned }

// Tick advances the claim protocol to time now: collisions among
// pending/active claims on the same block are resolved in favour of the
// earlier claim (ties by sequence number — in the real protocol, lowest
// origin address), and surviving pending claims past their listen period
// activate. It returns the number of collisions resolved this tick.
func (p *Pool) Tick(now int64) int {
	collisions := 0
	// Group live claims per block.
	byBlock := make(map[uint32][]*Claim)
	for _, c := range p.liveClaims() {
		byBlock[c.Block.Start] = append(byBlock[c.Block.Start], c)
	}
	for _, claims := range byBlock {
		if len(claims) > 1 {
			sort.Slice(claims, func(i, j int) bool {
				if claims[i].MadeAt != claims[j].MadeAt {
					return claims[i].MadeAt < claims[j].MadeAt
				}
				return claims[i].seq < claims[j].seq
			})
			for _, loser := range claims[1:] {
				loser.State = ClaimAbandoned
				collisions++
			}
		}
	}
	for _, c := range p.liveClaims() {
		if c.State == ClaimPending && now-c.MadeAt >= p.cfg.ListenTicks {
			c.State = ClaimActive
		}
	}
	return collisions
}

// ActiveBlocks returns the blocks a region currently holds active.
func (p *Pool) ActiveBlocks(region int) []Block {
	var out []Block
	for _, c := range p.claims {
		if c.Region == region && c.State == ClaimActive {
			out = append(out, c.Block)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Invariant checks that no two active claims overlap — the property the
// claim protocol maintains. Used by tests and the simulation harness.
func (p *Pool) Invariant() error {
	var active []*Claim
	for _, c := range p.claims {
		if c.State == ClaimActive {
			active = append(active, c)
		}
	}
	for i := 0; i < len(active); i++ {
		for j := i + 1; j < len(active); j++ {
			if active[i].Block.Overlaps(active[j].Block) {
				return fmt.Errorf("prefix: active claims overlap: region %d %s vs region %d %s",
					active[i].Region, active[i].Block, active[j].Region, active[j].Block)
			}
		}
	}
	return nil
}

// RegionAllocator is the lower layer: informed-random allocation of
// individual addresses within a region's active blocks. The invisible
// fraction here reflects *local* announcement timeliness — small, because
// usage announcements never leave the region.
type RegionAllocator struct {
	Region int
	pool   *Pool
	// used tracks the region's own allocations (ground truth within the
	// region; visibility noise is applied per allocation).
	used map[mcast.Addr]bool
}

// NewRegionAllocator returns the lower-layer allocator for one region.
func NewRegionAllocator(pool *Pool, region int) *RegionAllocator {
	return &RegionAllocator{Region: region, pool: pool, used: make(map[mcast.Addr]bool)}
}

// Holdings returns the total addresses in active blocks.
func (r *RegionAllocator) Holdings() uint32 {
	var total uint32
	for _, b := range r.pool.ActiveBlocks(r.Region) {
		total += b.Size
	}
	return total
}

// InUse returns the region's live allocation count.
func (r *RegionAllocator) InUse() int { return len(r.used) }

// Allocate picks an address from the region's blocks. Each existing local
// allocation is invisible with probability invisibleLocal; picking an
// invisible in-use address is a *clash*, reported via the second return.
func (r *RegionAllocator) Allocate(invisibleLocal float64, rng *stats.RNG) (mcast.Addr, bool, error) {
	blocks := r.pool.ActiveBlocks(r.Region)
	if len(blocks) == 0 {
		return 0, false, fmt.Errorf("prefix: region %d holds no active blocks", r.Region)
	}
	// Build the candidate set the allocator *believes* free.
	var candidates []mcast.Addr
	for _, b := range blocks {
		for off := uint32(0); off < b.Size; off++ {
			a := mcast.Addr(b.Start + off)
			if r.used[a] && !rng.Bool(invisibleLocal) {
				continue // visible in-use address
			}
			candidates = append(candidates, a)
		}
	}
	if len(candidates) == 0 {
		return 0, false, fmt.Errorf("prefix: region %d blocks full", r.Region)
	}
	a := candidates[rng.IntN(len(candidates))]
	clash := r.used[a]
	r.used[a] = true
	return a, clash, nil
}

// Free releases an address.
func (r *RegionAllocator) Free(a mcast.Addr) { delete(r.used, a) }
