package prefix

import (
	"fmt"

	"sessiondir/internal/mcast"
	"sessiondir/internal/stats"
)

// This file is the §4.1 experiment harness: hierarchical (prefix + local)
// allocation versus flat global allocation under session churn. The two
// schemes share a space and a workload; they differ in announcement
// timeliness, which the paper's analysis reduces to the invisible
// fraction i:
//
//   - flat: one global, bandwidth-limited announcement channel → large i;
//   - hierarchical: usage announcements are regional (more frequent over
//     shorter paths) → small local i, plus a slow prefix layer whose own
//     invisible fraction is tiny because claims change on much longer
//     timescales.

// ExperimentConfig parameterises one comparison run.
type ExperimentConfig struct {
	SpaceSize uint32
	BlockSize uint32
	Regions   int
	// SessionsPerRegion is the steady-state population per region.
	SessionsPerRegion int
	// Churns is how many replace-one operations to simulate per region.
	Churns int
	// InvisibleFlat is i for the flat global scheme (paper §2.3: ≈1e-3
	// with a 10-minute constant announcement interval).
	InvisibleFlat float64
	// InvisibleLocal is i for regional usage announcements (more frequent,
	// shorter paths: one to two orders of magnitude smaller).
	InvisibleLocal float64
	// InvisiblePrefix is the chance a foreign *claim* is unseen at claim
	// time (tiny: claims persist and change slowly).
	InvisiblePrefix float64
	// ListenTicks is the claim listen period.
	ListenTicks int64
	Seed        uint64
}

// Result summarises one comparison.
type Result struct {
	FlatClashes        int
	HierLocalClashes   int
	PrefixCollisions   int // resolved harmlessly by the claim protocol
	FlatAllocations    int
	HierAllocations    int
	HierBlocksClaimed  int
	HierUtilisationPct float64 // sessions / addresses held
}

// String renders the result as experiment output rows.
func (r Result) String() string {
	return fmt.Sprintf(
		"flat:  %6d allocations, %4d clashes\nhier:  %6d allocations, %4d clashes, %d prefix collisions (resolved), %d blocks, %.0f%% block utilisation",
		r.FlatAllocations, r.FlatClashes,
		r.HierAllocations, r.HierLocalClashes, r.PrefixCollisions, r.HierBlocksClaimed,
		r.HierUtilisationPct)
}

// RunExperiment simulates both schemes over the same workload.
func RunExperiment(cfg ExperimentConfig) (Result, error) {
	if cfg.Regions < 1 || cfg.SessionsPerRegion < 1 {
		return Result{}, fmt.Errorf("prefix: degenerate experiment config %+v", cfg)
	}
	rng := stats.NewRNG(cfg.Seed)
	var res Result

	// ---- Flat scheme: one shared space, global invisible fraction. ----
	{
		used := map[mcast.Addr]bool{}
		var live []mcast.Addr
		alloc := func() {
			// Informed random with invisible fraction: in-use addresses are
			// each unseen with probability InvisibleFlat.
			var candidates []mcast.Addr
			for a := uint32(0); a < cfg.SpaceSize; a++ {
				addr := mcast.Addr(a)
				if used[addr] && !rng.Bool(cfg.InvisibleFlat) {
					continue
				}
				candidates = append(candidates, addr)
			}
			if len(candidates) == 0 {
				return
			}
			a := candidates[rng.IntN(len(candidates))]
			if used[a] {
				res.FlatClashes++
			}
			used[a] = true
			live = append(live, a)
			res.FlatAllocations++
		}
		total := cfg.Regions * cfg.SessionsPerRegion
		for i := 0; i < total; i++ {
			alloc()
		}
		for c := 0; c < cfg.Churns*cfg.Regions; c++ {
			if len(live) == 0 {
				break
			}
			i := rng.IntN(len(live))
			delete(used, live[i])
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			alloc()
		}
	}

	// ---- Hierarchical scheme. ----
	pool, err := NewPool(PoolConfig{
		SpaceSize:   cfg.SpaceSize,
		BlockSize:   cfg.BlockSize,
		ListenTicks: cfg.ListenTicks,
		Regions:     cfg.Regions,
	})
	if err != nil {
		return Result{}, err
	}
	regions := make([]*RegionAllocator, cfg.Regions)
	for i := range regions {
		regions[i] = NewRegionAllocator(pool, i)
	}
	now := int64(0)
	// ensure acquires blocks for a region until it can hold want sessions
	// at 67% occupancy, driving the claim protocol through its listen
	// period (claims only become usable after ListenTicks).
	ensure := func(r *RegionAllocator, want int) {
		need := uint32(float64(want)/0.67) + 1
		for r.Holdings() < need {
			claim := pool.ClaimBlock(r.Region, now, cfg.InvisiblePrefix, rng)
			if claim == nil {
				return // space exhausted at the prefix layer
			}
			// Run the listen period.
			for t := int64(0); t <= cfg.ListenTicks; t++ {
				now++
				res.PrefixCollisions += pool.Tick(now)
			}
		}
	}
	var liveByRegion [][]mcast.Addr
	liveByRegion = make([][]mcast.Addr, cfg.Regions)
	allocIn := func(ri int) {
		r := regions[ri]
		ensure(r, r.InUse()+1)
		a, clash, err := r.Allocate(cfg.InvisibleLocal, rng)
		if err != nil {
			return
		}
		if clash {
			res.HierLocalClashes++
		}
		liveByRegion[ri] = append(liveByRegion[ri], a)
		res.HierAllocations++
	}
	for ri := 0; ri < cfg.Regions; ri++ {
		for i := 0; i < cfg.SessionsPerRegion; i++ {
			allocIn(ri)
		}
	}
	for c := 0; c < cfg.Churns*cfg.Regions; c++ {
		ri := rng.IntN(cfg.Regions)
		if len(liveByRegion[ri]) == 0 {
			continue
		}
		li := rng.IntN(len(liveByRegion[ri]))
		regions[ri].Free(liveByRegion[ri][li])
		liveByRegion[ri][li] = liveByRegion[ri][len(liveByRegion[ri])-1]
		liveByRegion[ri] = liveByRegion[ri][:len(liveByRegion[ri])-1]
		allocIn(ri)
	}
	if err := pool.Invariant(); err != nil {
		return Result{}, err
	}
	var held uint32
	var sessions int
	for ri, r := range regions {
		held += r.Holdings()
		sessions += len(liveByRegion[ri])
		res.HierBlocksClaimed += len(pool.ActiveBlocks(ri))
	}
	if held > 0 {
		res.HierUtilisationPct = 100 * float64(sessions) / float64(held)
	}
	return res, nil
}
