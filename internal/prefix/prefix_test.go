package prefix

import (
	"strings"
	"testing"
	"testing/quick"

	"sessiondir/internal/mcast"
	"sessiondir/internal/stats"
)

func TestBlockBasics(t *testing.T) {
	a := Block{Start: 0, Size: 10}
	b := Block{Start: 10, Size: 10}
	c := Block{Start: 5, Size: 10}
	if a.Overlaps(b) || b.Overlaps(a) {
		t.Fatal("adjacent blocks overlap")
	}
	if !a.Overlaps(c) || !c.Overlaps(a) {
		t.Fatal("overlapping blocks not detected")
	}
	if a.End() != 10 || a.String() != "[0,10)" {
		t.Fatal("accessors")
	}
}

func TestPoolValidation(t *testing.T) {
	bad := []PoolConfig{
		{SpaceSize: 0, BlockSize: 1, Regions: 1},
		{SpaceSize: 10, BlockSize: 0, Regions: 1},
		{SpaceSize: 10, BlockSize: 20, Regions: 1},
		{SpaceSize: 10, BlockSize: 1, Regions: 0},
		{SpaceSize: 10, BlockSize: 1, Regions: 1, ListenTicks: -1},
	}
	for _, cfg := range bad {
		if _, err := NewPool(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestClaimLifecycle(t *testing.T) {
	pool, err := NewPool(PoolConfig{SpaceSize: 100, BlockSize: 10, ListenTicks: 3, Regions: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(1)
	c := pool.ClaimBlock(0, 0, 0, rng)
	if c == nil || c.State != ClaimPending {
		t.Fatalf("claim = %+v", c)
	}
	pool.Tick(1)
	if c.State != ClaimPending {
		t.Fatal("activated before listen period")
	}
	pool.Tick(3)
	if c.State != ClaimActive {
		t.Fatal("did not activate after listen period")
	}
	got := pool.ActiveBlocks(0)
	if len(got) != 1 || got[0] != c.Block {
		t.Fatalf("active blocks = %v", got)
	}
	pool.Release(c)
	if len(pool.ActiveBlocks(0)) != 0 {
		t.Fatal("release did not clear holdings")
	}
}

func TestClaimAvoidsVisibleClaims(t *testing.T) {
	pool, _ := NewPool(PoolConfig{SpaceSize: 30, BlockSize: 10, Regions: 2})
	rng := stats.NewRNG(2)
	seen := map[uint32]bool{}
	// With zero invisibility, three claims take the three distinct blocks.
	for i := 0; i < 3; i++ {
		c := pool.ClaimBlock(i%2, 0, 0, rng)
		if c == nil {
			t.Fatal("free block not claimed")
		}
		if seen[c.Block.Start] {
			t.Fatalf("block %v claimed twice with perfect visibility", c.Block)
		}
		seen[c.Block.Start] = true
	}
	// Space exhausted.
	if c := pool.ClaimBlock(0, 0, 0, rng); c != nil {
		t.Fatalf("claim from exhausted space: %+v", c)
	}
}

func TestClaimCollisionResolvedEarlierWins(t *testing.T) {
	pool, _ := NewPool(PoolConfig{SpaceSize: 10, BlockSize: 10, ListenTicks: 5, Regions: 2})
	rng := stats.NewRNG(3)
	first := pool.ClaimBlock(0, 0, 1.0, rng) // invisible=1: blind claims
	second := pool.ClaimBlock(1, 2, 1.0, rng)
	if first.Block != second.Block {
		t.Fatal("test setup: expected colliding claims on the single block")
	}
	collisions := pool.Tick(6)
	if collisions != 1 {
		t.Fatalf("collisions = %d", collisions)
	}
	if first.State != ClaimActive {
		t.Fatalf("earlier claim state = %v", first.State)
	}
	if second.State != ClaimAbandoned {
		t.Fatalf("later claim state = %v", second.State)
	}
	if err := pool.Invariant(); err != nil {
		t.Fatal(err)
	}
}

func TestPoolInvariantProperty(t *testing.T) {
	// Under arbitrary interleavings of blind claims and ticks, active
	// claims never overlap.
	err := quick.Check(func(seed uint64, ops []bool) bool {
		pool, _ := NewPool(PoolConfig{SpaceSize: 80, BlockSize: 10, ListenTicks: 2, Regions: 3})
		rng := stats.NewRNG(seed)
		now := int64(0)
		for _, claim := range ops {
			now++
			if claim {
				pool.ClaimBlock(rng.IntN(3), now, 0.5, rng)
			}
			pool.Tick(now)
		}
		pool.Tick(now + 10)
		return pool.Invariant() == nil
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRegionAllocator(t *testing.T) {
	pool, _ := NewPool(PoolConfig{SpaceSize: 40, BlockSize: 10, ListenTicks: 0, Regions: 1})
	rng := stats.NewRNG(4)
	r := NewRegionAllocator(pool, 0)
	if _, _, err := r.Allocate(0, rng); err == nil {
		t.Fatal("allocation without blocks succeeded")
	}
	claim := pool.ClaimBlock(0, 0, 0, rng)
	pool.Tick(1)
	if r.Holdings() != 10 {
		t.Fatalf("holdings = %d", r.Holdings())
	}
	block := claim.Block
	seen := map[uint32]bool{}
	for i := 0; i < 10; i++ {
		a, clash, err := r.Allocate(0, rng)
		if err != nil || clash {
			t.Fatalf("alloc %d: clash=%v err=%v", i, clash, err)
		}
		if uint32(a) < block.Start || uint32(a) >= block.End() {
			t.Fatalf("address %d outside the region's block %s", a, block)
		}
		if seen[uint32(a)] {
			t.Fatalf("address %d allocated twice with perfect visibility", a)
		}
		seen[uint32(a)] = true
	}
	if _, _, err := r.Allocate(0, rng); err == nil {
		t.Fatal("allocation from full blocks succeeded")
	}
	freed := mcast.Addr(block.Start + 3)
	r.Free(freed)
	if a, clash, err := r.Allocate(0, rng); err != nil || clash || a != freed {
		t.Fatalf("after free: a=%d clash=%v err=%v", a, clash, err)
	}
	if r.InUse() != 10 {
		t.Fatalf("in use = %d", r.InUse())
	}
}

func TestRegionAllocatorInvisibleClashes(t *testing.T) {
	pool, _ := NewPool(PoolConfig{SpaceSize: 10, BlockSize: 10, ListenTicks: 0, Regions: 1})
	rng := stats.NewRNG(5)
	r := NewRegionAllocator(pool, 0)
	pool.ClaimBlock(0, 0, 0, rng)
	pool.Tick(1)
	// With invisibility 1 everything looks free: clashes must appear once
	// the block is part-full.
	clashes := 0
	for i := 0; i < 30; i++ {
		_, clash, err := r.Allocate(1.0, rng)
		if err != nil {
			t.Fatal(err)
		}
		if clash {
			clashes++
		}
	}
	if clashes == 0 {
		t.Fatal("blind allocation produced no clashes")
	}
}

func TestClaimStateString(t *testing.T) {
	if ClaimPending.String() != "pending" || ClaimActive.String() != "active" ||
		ClaimAbandoned.String() != "abandoned" || ClaimState(9).String() != "ClaimState(9)" {
		t.Fatal("names")
	}
}

func TestExperimentHierarchicalWins(t *testing.T) {
	res, err := RunExperiment(ExperimentConfig{
		SpaceSize:         2048,
		BlockSize:         64,
		Regions:           8,
		SessionsPerRegion: 120, // ~50% space occupancy: clash pressure
		Churns:            200,
		InvisibleFlat:     0.02, // one slow global announcement channel
		InvisibleLocal:    0.0005,
		InvisiblePrefix:   0.001,
		ListenTicks:       3,
		Seed:              11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.HierAllocations < res.FlatAllocations/2 {
		t.Fatalf("hierarchical starved: %+v", res)
	}
	// The §4.1 claim: regional announcements (small i) beat one global
	// channel (large i) on clash rate.
	flatRate := float64(res.FlatClashes) / float64(res.FlatAllocations)
	hierRate := float64(res.HierLocalClashes) / float64(res.HierAllocations)
	if hierRate >= flatRate {
		t.Fatalf("hierarchical clash rate %v not better than flat %v (%+v)", hierRate, flatRate, res)
	}
	if res.HierBlocksClaimed == 0 {
		t.Fatal("no blocks claimed")
	}
	if res.String() == "" || !strings.Contains(res.String(), "prefix collisions") {
		t.Fatal("String output")
	}
}

func TestExperimentConfigValidation(t *testing.T) {
	if _, err := RunExperiment(ExperimentConfig{Regions: 0}); err == nil {
		t.Fatal("degenerate config accepted")
	}
}
