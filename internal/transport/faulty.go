package transport

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"time"

	"sessiondir/internal/mcast"
	"sessiondir/internal/obs"
	"sessiondir/internal/stats"
)

// FaultTransport decorates any Transport with deterministic fault
// injection: packet loss (independent per packet or bursty via a
// Gilbert–Elliott chain), duplication, per-packet delay (which yields
// reordering whenever the sampled delays are not monotone), and single-bit
// corruption. Faults are applied independently on the egress path (Send)
// and the ingress path (messages arriving from the inner transport), so a
// fleet of agents each wrapped in its own FaultTransport sees independent
// per-receiver loss — the tail-loss regime of the paper's §2.3 — while
// sender-side faults model a lossy first hop shared by every receiver.
//
// Every random decision is drawn from the seeded stats.RNG handed to
// NewFault, in a fixed per-packet order, and delayed delivery is driven by
// an injected Clock plus explicit Step calls instead of goroutines and
// timers. Two runs that apply the same calls in the same order therefore
// produce bit-identical fault schedules — the detrand contract — and a
// chaos test failure replays exactly from its seed.
//
// Partitions are not modelled here: they are a property of the fabric, not
// of one endpoint, and live on Bus (see Bus.Partition / Bus.Heal).
type FaultTransport struct {
	inner Transport
	clk   Clock

	mu      sync.Mutex
	rng     *stats.RNG
	egress  dirState
	ingress dirState
	handler Handler
	queue   []faultEntry
	seq     uint64
	closed  bool
}

// FaultProfile describes the fault processes applied to one direction of
// packet flow. The zero value injects nothing.
type FaultProfile struct {
	// Loss is the independent per-packet drop probability.
	Loss float64
	// Burst, when non-nil, adds Gilbert–Elliott bursty loss on top of
	// Loss: a two-state chain whose bad state drops packets in runs.
	Burst *GilbertElliott
	// Duplicate is the probability a packet is delivered twice. The copy
	// draws its own delay, so duplicates also arrive reordered.
	Duplicate float64
	// Corrupt is the probability a single uniformly chosen bit of the
	// packet is flipped (the receiver's parser must quarantine it).
	Corrupt float64
	// Delay, when non-nil, samples a per-packet delivery delay. Delayed
	// packets sit in the transport until a Step call reaches their due
	// time. A nil Delay (or a zero sample) delivers inline.
	Delay DelaySampler
}

// DelaySampler draws a per-packet delay from rng. Implementations must use
// only rng for randomness so runs stay reproducible.
type DelaySampler func(rng *stats.RNG) time.Duration

// UniformDelay returns a sampler uniform over [lo, hi).
func UniformDelay(lo, hi time.Duration) DelaySampler {
	return func(rng *stats.RNG) time.Duration {
		if hi <= lo {
			return lo
		}
		return lo + time.Duration(rng.Float64()*float64(hi-lo))
	}
}

// GilbertElliott parameterises the classic two-state bursty loss chain:
// in the Good state packets drop with probability LossGood, in the Bad
// state with LossBad; the chain moves Good→Bad with probability PGB per
// packet and Bad→Good with PBG. Mean burst length is 1/PBG packets.
type GilbertElliott struct {
	PGB, PBG          float64
	LossGood, LossBad float64
}

// FaultConfig assembles a FaultTransport.
type FaultConfig struct {
	// Egress faults apply to packets this endpoint sends.
	Egress FaultProfile
	// Ingress faults apply to packets this endpoint receives.
	Ingress FaultProfile
	// RNG drives every fault decision. Required: ambient randomness is
	// banned in this package, so there is no fallback seed.
	RNG *stats.RNG
	// Clock stamps due times for delayed packets (nil = SystemClock; use
	// a ManualClock in tests so Step can run on virtual time).
	Clock Clock
	// Obs, when non-nil, registers the fault counters (per-direction
	// packets/drops/duplicates/corruptions/delays and the pending-queue
	// gauge) as registry views over Stats(); fault decisions themselves
	// are untouched, so a seeded schedule replays identically with or
	// without a registry attached.
	Obs *obs.Registry
}

// FaultStats counts injected faults per direction.
type FaultStats struct {
	Egress, Ingress DirStats
	// Pending is the number of delayed packets awaiting a Step.
	Pending int
}

// DirStats counts one direction's fault decisions.
type DirStats struct {
	Packets      uint64 // packets offered to the fault process
	Dropped      uint64 // total drops (independent + bursty)
	BurstDropped uint64 // drops decided by the Gilbert–Elliott chain
	Duplicated   uint64
	Corrupted    uint64
	Delayed      uint64 // packets (or copies) that entered the delay queue
}

// dirState is one direction's fault process: profile, burst-chain state,
// and counters. All access is under FaultTransport.mu.
type dirState struct {
	profile FaultProfile
	geBad   bool
	stats   DirStats
}

// sendPlan is the outcome of the per-packet fault draw.
type sendPlan struct {
	drop       bool
	dup        bool
	corruptBit int // bit index to flip, -1 = none
	delay      time.Duration
	dupDelay   time.Duration
}

// plan draws one packet's fate. Draw order is fixed (burst chain, loss,
// duplication, corruption, delay, duplicate delay) so a seed fully
// determines the schedule. Called with FaultTransport.mu held; it touches
// only state owned by that mutex.
func (s *dirState) plan(rng *stats.RNG, n int) sendPlan {
	s.stats.Packets++
	p := s.profile
	if ge := p.Burst; ge != nil {
		if s.geBad {
			if rng.Bool(ge.PBG) {
				s.geBad = false
			}
		} else if rng.Bool(ge.PGB) {
			s.geBad = true
		}
		lp := ge.LossGood
		if s.geBad {
			lp = ge.LossBad
		}
		if rng.Bool(lp) {
			s.stats.Dropped++
			s.stats.BurstDropped++
			return sendPlan{drop: true, corruptBit: -1}
		}
	}
	if rng.Bool(p.Loss) {
		s.stats.Dropped++
		return sendPlan{drop: true, corruptBit: -1}
	}
	pl := sendPlan{corruptBit: -1}
	if rng.Bool(p.Duplicate) {
		pl.dup = true
		s.stats.Duplicated++
	}
	if n > 0 && rng.Bool(p.Corrupt) {
		pl.corruptBit = rng.IntN(n * 8)
		s.stats.Corrupted++
	}
	if p.Delay != nil {
		pl.delay = p.Delay(rng)
		if pl.dup {
			pl.dupDelay = p.Delay(rng)
		}
	}
	return pl
}

// faultEntry is one delayed packet (either direction). Due times are
// int64 nanoseconds so queue scans under the mutex are pure arithmetic
// (the lockscope rule: no calls — not even time.Time methods — while a
// lock is held).
type faultEntry struct {
	dueNanos int64
	seq      uint64 // FIFO tie-break for equal due times
	inbound  bool
	data     []byte
	scope    mcast.TTL
	from     netip.AddrPort
}

var _ Transport = (*FaultTransport)(nil)

// NewFault wraps inner with fault injection. It subscribes to inner, so
// wrap before handing the transport to a Directory.
func NewFault(inner Transport, cfg FaultConfig) (*FaultTransport, error) {
	if inner == nil {
		return nil, fmt.Errorf("transport: FaultTransport needs an inner transport")
	}
	if cfg.RNG == nil {
		return nil, fmt.Errorf("transport: FaultConfig.RNG is required (seeded determinism contract)")
	}
	for _, p := range []FaultProfile{cfg.Egress, cfg.Ingress} {
		for _, prob := range []float64{p.Loss, p.Duplicate, p.Corrupt} {
			if prob < 0 || prob > 1 {
				return nil, fmt.Errorf("transport: fault probability %v outside [0,1]", prob)
			}
		}
	}
	clk := cfg.Clock
	if clk == nil {
		clk = SystemClock{}
	}
	f := &FaultTransport{
		inner:   inner,
		clk:     clk,
		rng:     cfg.RNG,
		egress:  dirState{profile: cfg.Egress},
		ingress: dirState{profile: cfg.Ingress},
	}
	if cfg.Obs != nil {
		if err := f.registerObs(cfg.Obs); err != nil {
			return nil, err
		}
	}
	inner.Subscribe(f.onRecv)
	return f, nil
}

// registerObs exposes the fault counters as registry views. Each
// callback snapshots Stats() at scrape time, so the per-packet fault
// path never touches the registry.
func (f *FaultTransport) registerObs(r *obs.Registry) error {
	dirs := []struct {
		prefix string
		pick   func(FaultStats) DirStats
	}{
		{"fault_egress_", func(s FaultStats) DirStats { return s.Egress }},
		{"fault_ingress_", func(s FaultStats) DirStats { return s.Ingress }},
	}
	for _, d := range dirs {
		pick := d.pick
		counters := []struct {
			name, help string
			get        func(DirStats) uint64
		}{
			{"packets_total", "packets offered to the fault process", func(s DirStats) uint64 { return s.Packets }},
			{"dropped_total", "injected drops (independent + bursty)", func(s DirStats) uint64 { return s.Dropped }},
			{"burst_dropped_total", "drops decided by the Gilbert-Elliott chain", func(s DirStats) uint64 { return s.BurstDropped }},
			{"duplicated_total", "injected duplicate deliveries", func(s DirStats) uint64 { return s.Duplicated }},
			{"corrupted_total", "injected single-bit corruptions", func(s DirStats) uint64 { return s.Corrupted }},
			{"delayed_total", "packets routed through the delay queue", func(s DirStats) uint64 { return s.Delayed }},
		}
		for _, c := range counters {
			get := c.get
			if err := r.CounterFunc(d.prefix+c.name, c.help, func() uint64 { return get(pick(f.Stats())) }); err != nil {
				return fmt.Errorf("transport: %w", err)
			}
		}
	}
	if err := r.GaugeFunc("fault_pending", "delayed packets awaiting a Step",
		func() float64 { return float64(f.Stats().Pending) }); err != nil {
		return fmt.Errorf("transport: %w", err)
	}
	return nil
}

// SetProfiles swaps both fault profiles atomically. Chaos schedules use
// this to turn faults on and off mid-run; burst-chain state and counters
// carry over.
func (f *FaultTransport) SetProfiles(egress, ingress FaultProfile) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.egress.profile = egress
	f.ingress.profile = ingress
}

// Send implements Transport, applying the egress fault profile.
func (f *FaultTransport) Send(ctx context.Context, data []byte, scope mcast.TTL) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrClosed
	}
	pl := f.egress.plan(f.rng, len(data)) //mclint:lockscope pure RNG/state arithmetic on fields owned by mu; no I/O, callbacks, or other locks
	f.mu.Unlock()
	if pl.drop {
		return nil // injected loss: the caller sees a successful best-effort send
	}
	out := data
	if pl.corruptBit >= 0 {
		out = corruptCopy(data, pl.corruptBit)
	}
	var errs []error
	if pl.delay > 0 {
		f.enqueue(faultEntry{data: cloneBytes(out), scope: scope}, pl.delay)
	} else if err := f.inner.Send(ctx, out, scope); err != nil {
		errs = append(errs, err)
	}
	if pl.dup {
		if pl.dupDelay > 0 {
			f.enqueue(faultEntry{data: cloneBytes(out), scope: scope}, pl.dupDelay)
		} else if err := f.inner.Send(ctx, out, scope); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// onRecv is the inner transport's handler: the ingress fault path.
func (f *FaultTransport) onRecv(m Message) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		m.Release() // late arrival after Close: return the buffer, not just the message
		return
	}
	pl := f.ingress.plan(f.rng, len(m.Data)) //mclint:lockscope pure RNG/state arithmetic on fields owned by mu; no I/O, callbacks, or other locks
	h := f.handler
	f.mu.Unlock()
	if pl.drop {
		m.Release()
		return
	}
	data := m.Data
	if pl.corruptBit >= 0 {
		data = corruptCopy(data, pl.corruptBit)
	}
	deliver := func(d []byte, delay time.Duration) {
		if delay > 0 {
			f.enqueue(faultEntry{inbound: true, data: cloneBytes(d), from: m.From}, delay)
			return
		}
		if h != nil {
			h(Message{From: m.From, Data: cloneBytes(d)})
		}
	}
	deliver(data, pl.delay)
	if pl.dup {
		deliver(data, pl.dupDelay)
	}
	// Every delivery path cloned the payload (and corruptCopy already
	// copied), so the receive buffer can go back to its pool. Releasing
	// draws nothing from the RNG: seeded replays stay bit-identical.
	m.Release()
}

// enqueue stamps a due time and queues a delayed packet.
func (f *FaultTransport) enqueue(e faultEntry, delay time.Duration) {
	dueNanos := f.clk.Now().Add(delay).UnixNano()
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	e.dueNanos = dueNanos
	f.seq++
	e.seq = f.seq
	f.queue = append(f.queue, e)
	if e.inbound {
		f.ingress.stats.Delayed++
	} else {
		f.egress.stats.Delayed++
	}
	f.mu.Unlock()
}

// Step delivers every queued packet whose due time is at or before now, in
// (due, enqueue-order) order, and returns how many it delivered. Delivery
// runs outside the lock, so handlers and the inner transport may re-enter
// the FaultTransport (e.g. a directory reacting to a delayed clash report
// by sending a defense). Send errors of delayed packets are joined into
// the returned error; loss of a delayed packet is indistinguishable from
// network loss, which the announce schedule already repairs.
func (f *FaultTransport) Step(now time.Time) (int, error) {
	return f.deliverDue(now.UnixNano(), false)
}

// FlushDelayed delivers every queued packet regardless of due time —
// chaos schedules call it when the fault phase ends so no packet is
// stranded in a queue that will never be stepped again.
func (f *FaultTransport) FlushDelayed() (int, error) {
	return f.deliverDue(0, true)
}

func (f *FaultTransport) deliverDue(nowNanos int64, all bool) (int, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return 0, nil
	}
	var due []faultEntry
	rest := f.queue[:0]
	for _, e := range f.queue {
		if all || e.dueNanos <= nowNanos {
			due = append(due, e)
		} else {
			rest = append(rest, e)
		}
	}
	f.queue = rest
	h := f.handler
	f.mu.Unlock()
	if len(due) == 0 {
		return 0, nil
	}
	sort.Slice(due, func(i, j int) bool {
		if due[i].dueNanos != due[j].dueNanos {
			return due[i].dueNanos < due[j].dueNanos
		}
		return due[i].seq < due[j].seq
	})
	var errs []error
	for _, e := range due {
		if e.inbound {
			if h != nil {
				h(Message{From: e.from, Data: e.data})
			}
			continue
		}
		if err := f.inner.Send(context.Background(), e.data, e.scope); err != nil {
			errs = append(errs, err)
		}
	}
	return len(due), errors.Join(errs...)
}

// Stats returns a snapshot of the fault counters.
func (f *FaultTransport) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FaultStats{Egress: f.egress.stats, Ingress: f.ingress.stats, Pending: len(f.queue)}
}

// Subscribe implements Transport. The handler receives ingress traffic
// after fault processing.
func (f *FaultTransport) Subscribe(h Handler) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.handler = h
}

// LocalAddr implements Transport.
func (f *FaultTransport) LocalAddr() netip.AddrPort { return f.inner.LocalAddr() }

// Close implements Transport: queued packets are dropped (a crash loses
// in-flight traffic) and the inner transport is closed.
func (f *FaultTransport) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.queue = nil
	f.handler = nil
	f.mu.Unlock()
	return f.inner.Close()
}

func cloneBytes(b []byte) []byte {
	cp := make([]byte, len(b))
	copy(cp, b)
	return cp
}

// corruptCopy returns a copy of data with bit (little-endian within the
// byte) flipped.
func corruptCopy(data []byte, bit int) []byte {
	cp := cloneBytes(data)
	cp[bit/8] ^= 1 << (bit % 8)
	return cp
}
