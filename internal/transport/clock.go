package transport

import "time"

// Clock abstracts the wall clock so time-dependent transport components
// (and their tests) can run on synthetic time. Production code uses
// SystemClock; tests advance a fake by hand instead of sleeping. This is
// also the seam that will let the transport package come under mclint's
// detrand analyzer once nothing here reads time.Now directly.
type Clock interface {
	Now() time.Time
}

// SystemClock reads the real wall clock.
type SystemClock struct{}

// Now implements Clock.
func (SystemClock) Now() time.Time { return time.Now() }
