package transport

import (
	"sync"
	"time"
)

// Clock abstracts the wall clock so time-dependent transport components
// (and their tests) can run on synthetic time. Production code uses
// SystemClock; tests advance a ManualClock by hand instead of sleeping.
// This is the seam that keeps the package under mclint's detrand analyzer:
// SystemClock.Now is the one sanctioned wall-clock read.
type Clock interface {
	Now() time.Time
}

// SystemClock reads the real wall clock.
type SystemClock struct{}

// Now implements Clock.
func (SystemClock) Now() time.Time {
	return time.Now() //mclint:detrand SystemClock is the deliberate production wall-clock boundary; everything else takes an injected Clock
}

// ManualClock is a hand-advanced Clock for tests and the chaos harness:
// time moves only when Advance is called, so fault schedules and back-off
// timers run in microseconds of real time and identically on every run.
// Safe for concurrent use.
type ManualClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewManualClock returns a clock frozen at start.
func NewManualClock(start time.Time) *ManualClock {
	return &ManualClock{t: start}
}

// Now implements Clock.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d and returns the new time.
func (c *ManualClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d) //mclint:lockscope time.Time.Add is pure arithmetic on the field mu owns; no I/O or callbacks
	return c.t
}
