//go:build linux && !amd64 && !arm64 && !riscv64 && !loong64

package transport

// No sendmmsg number known for this GOARCH; WriteBatch degrades to one
// sendto per datagram while recvmmsg batching keeps working.
const (
	haveSendmmsg         = false
	sysSENDMMSG  uintptr = 0
)
