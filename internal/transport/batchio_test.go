package transport

import (
	"fmt"
	"net"
	"net/netip"
	"runtime/debug"
	"sort"
	"sync"
	"testing"
	"time"
)

// batchConnImpls enumerates every batchConn implementation buildable on
// this platform: the portable singleConn always, and whatever
// newBatchConn selects (mmsgConn on linux; elsewhere it is singleConn
// again, which keeps the suite meaningful without build-tagged tests).
func batchConnImpls() map[string]func(*net.UDPConn) batchConn {
	return map[string]func(*net.UDPConn) batchConn{
		"portable": func(c *net.UDPConn) batchConn { return &singleConn{conn: c} },
		"platform": newBatchConn,
	}
}

// withBatchConn pins the transport constructor to one batchConn
// implementation for the duration of fn. Tests using it must not run in
// parallel (the hook is package state, read once per NewUDP).
func withBatchConn(t testing.TB, mk func(*net.UDPConn) batchConn, fn func()) {
	t.Helper()
	prev := newBatchConnFn
	newBatchConnFn = mk
	defer func() { newBatchConnFn = prev }()
	fn()
}

// recvRecord is one observed Message, copied out of the zero-copy buffer
// before Release as the ownership contract requires of retaining
// handlers.
type recvRecord struct {
	payload string
	from    netip.AddrPort
}

// conformanceRun pushes a fixed datagram mix through a UDPTransport built
// on the given batchConn and returns the accepted messages plus final
// metrics. The mix exercises every quarantine edge: a runt, an exactly-
// max datagram, an oversized one, and ordinary traffic.
func conformanceRun(t *testing.T, mk func(*net.UDPConn) batchConn) ([]recvRecord, UDPMetrics) {
	t.Helper()
	const maxPkt = 1024
	var tr *UDPTransport
	withBatchConn(t, mk, func() {
		var err error
		tr, err = NewUDP(UDPConfig{
			Peers:     []netip.AddrPort{netip.MustParseAddrPort("127.0.0.1:9")},
			MaxPacket: maxPkt,
		})
		if err != nil {
			t.Fatalf("NewUDP: %v", err)
		}
	})
	defer tr.Close()

	got := make(chan recvRecord, 64)
	tr.Subscribe(func(m Message) {
		got <- recvRecord{payload: string(m.Data), from: m.From}
		m.Release()
	})

	tx, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatalf("sender: %v", err)
	}
	defer tx.Close()
	dst := tr.LocalAddr()

	mk1 := func(n int, fill byte) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = fill
		}
		return b
	}
	accepted := [][]byte{
		mk1(minDatagram, 'a'),  // smallest acceptable
		mk1(100, 'b'),          // ordinary
		mk1(maxPkt, 'c'),       // exactly the cap
		[]byte("hello, mbone"), // ordinary, distinct content
	}
	quarantined := [][]byte{
		mk1(minDatagram-1, 'r'), // runt
		mk1(maxPkt+200, 'o'),    // oversized (kernel-truncated past the cap)
	}
	for _, p := range accepted {
		if _, err := tx.WriteToUDPAddrPort(p, dst); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	for _, p := range quarantined {
		if _, err := tx.WriteToUDPAddrPort(p, dst); err != nil {
			t.Fatalf("send: %v", err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		m := tr.Metrics()
		if m.Received == uint64(len(accepted)) && m.Runts == 1 && m.Oversized == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for datagrams: %+v", m)
		}
		time.Sleep(time.Millisecond)
	}
	var out []recvRecord
	for len(out) < len(accepted) {
		select {
		case r := <-got:
			out = append(out, r)
		case <-time.After(time.Second):
			t.Fatalf("received counter says %d but only %d messages delivered", len(accepted), len(out))
		}
	}
	return out, tr.Metrics()
}

// TestBatchConnConformance runs the same datagram mix through every
// implementation and requires identical results: same payloads out, same
// sender attribution, same quarantine decisions. This is the build-tag
// seam's contract test — CI on any platform compares the portable
// fallback against whatever the platform default is.
func TestBatchConnConformance(t *testing.T) {
	type outcome struct {
		payloads []string
		metrics  UDPMetrics
	}
	results := map[string]outcome{}
	for name, mk := range batchConnImpls() {
		recs, met := conformanceRun(t, mk)
		o := outcome{metrics: met}
		txPortSeen := map[uint16]bool{}
		for _, r := range recs {
			o.payloads = append(o.payloads, r.payload)
			if !r.from.Addr().Is4() || r.from.Addr().String() != "127.0.0.1" {
				t.Fatalf("%s: message from %s, want loopback sender", name, r.from)
			}
			txPortSeen[r.from.Port()] = true
		}
		if len(txPortSeen) != 1 {
			t.Fatalf("%s: messages attributed to %d source ports, want 1", name, len(txPortSeen))
		}
		sort.Strings(o.payloads)
		results[name] = o
	}
	ref, ok := results["portable"]
	if !ok {
		t.Fatal("portable implementation missing from suite")
	}
	for name, o := range results {
		if fmt.Sprint(o.payloads) != fmt.Sprint(ref.payloads) {
			t.Errorf("%s payloads diverge from portable:\n%q\nvs\n%q", name, o.payloads, ref.payloads)
		}
		if o.metrics.Received != ref.metrics.Received ||
			o.metrics.Runts != ref.metrics.Runts ||
			o.metrics.Oversized != ref.metrics.Oversized {
			t.Errorf("%s quarantine metrics diverge from portable: %+v vs %+v",
				name, o.metrics, ref.metrics)
		}
	}
}

// TestBatchConnDrainsBacklog: the platform implementation must deliver a
// burst larger than one batch completely and in one piece (no loss, no
// duplication) — the recvmmsg ring rotation is the code under test.
func TestBatchConnDrainsBacklog(t *testing.T) {
	for name, mk := range batchConnImpls() {
		t.Run(name, func(t *testing.T) {
			var tr *UDPTransport
			withBatchConn(t, mk, func() {
				var err error
				tr, err = NewUDP(UDPConfig{
					Peers:     []netip.AddrPort{netip.MustParseAddrPort("127.0.0.1:9")},
					MaxPacket: 2048,
				})
				if err != nil {
					t.Fatalf("NewUDP: %v", err)
				}
			})
			defer tr.Close()

			const burst = 3*readBatchSize + 5 // forces several ring rotations
			seen := make(chan string, burst)
			tr.Subscribe(func(m Message) {
				seen <- string(m.Data)
				m.Release()
			})
			tx, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
			if err != nil {
				t.Fatal(err)
			}
			defer tx.Close()
			for i := 0; i < burst; i++ {
				if _, err := tx.WriteToUDPAddrPort([]byte(fmt.Sprintf("dgram-%03d", i)), tr.LocalAddr()); err != nil {
					t.Fatal(err)
				}
			}
			got := map[string]int{}
			for i := 0; i < burst; i++ {
				select {
				case p := <-seen:
					got[p]++
				case <-time.After(5 * time.Second):
					t.Fatalf("only %d of %d burst datagrams arrived", i, burst)
				}
			}
			for p, n := range got {
				if n != 1 {
					t.Fatalf("payload %q delivered %d times", p, n)
				}
			}
			if m := tr.Metrics(); m.PoolMisses > burst+readBatchSize+1 {
				t.Errorf("pool misses %d suggest recycling is broken (burst %d)", m.PoolMisses, burst)
			}
		})
	}
}

// TestMessageReleaseIdempotent: double release must be a no-op, and
// releasing a non-pooled message must not panic.
func TestMessageReleaseIdempotent(t *testing.T) {
	p := newBufPool(64)
	b := p.get()
	m := Message{Data: (*b)[:4], pool: p, buf: b}
	m.Release()
	m.Release() // second release: cleared provenance makes it a no-op
	var plain Message
	plain.Release() // bus/DES messages carry no pool
	if h, ms := p.hits.Load(), p.misses.Load(); ms != 1 || h != 0 {
		t.Fatalf("pool hits=%d misses=%d, want 0/1", h, ms)
	}
	// sync.Pool deliberately drops a fraction of Puts under the race
	// detector, so the round-trip is only deterministic without it.
	if !raceEnabled {
		if got := p.get(); got != b {
			t.Fatal("released buffer did not return to the pool")
		}
	}
}

// TestUDPReadLoopZeroAllocSteadyState pins the tentpole's allocation
// claim: once the pool is warm, receiving and releasing a datagram
// performs zero heap allocations across the whole read loop, for both
// the platform and the portable fallback implementations.
func TestUDPReadLoopZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	for name, mk := range batchConnImpls() {
		t.Run(name, func(t *testing.T) {
			var tr *UDPTransport
			withBatchConn(t, mk, func() {
				var err error
				tr, err = NewUDP(UDPConfig{
					Peers:     []netip.AddrPort{netip.MustParseAddrPort("127.0.0.1:9")},
					MaxPacket: 2048,
				})
				if err != nil {
					t.Fatalf("NewUDP: %v", err)
				}
			})
			defer tr.Close()

			done := make(chan struct{}, 1)
			tr.Subscribe(func(m Message) {
				m.Release() // release before signalling so the loop's refill hits the pool
				done <- struct{}{}
			})
			tx, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
			if err != nil {
				t.Fatal(err)
			}
			defer tx.Close()
			dst := tr.LocalAddr()
			payload := make([]byte, 512)

			// GC off so a collection cannot empty the sync.Pool mid-measure;
			// AllocsPerRun counts mallocs process-wide, including the read
			// loop goroutine, which is exactly what we want to pin.
			defer debug.SetGCPercent(debug.SetGCPercent(-1))
			avg := testing.AllocsPerRun(200, func() {
				if _, err := tx.WriteToUDPAddrPort(payload, dst); err != nil {
					t.Fatal(err)
				}
				<-done
			})
			if avg != 0 {
				t.Errorf("%s steady-state receive: %.2f allocs/op, want 0", name, avg)
			}
		})
	}
}

// TestSendBatchScopeRuns: a multicast SendBatch must deliver every
// datagram and set the TTL once per scope run, not once per datagram.
// Uses the unicast path's advisory TTL counter via a stub setTTL.
func TestSendBatchMatchesSequentialSend(t *testing.T) {
	for name, mk := range batchConnImpls() {
		t.Run(name, func(t *testing.T) {
			var rx, txT *UDPTransport
			withBatchConn(t, mk, func() {
				var err error
				rx, err = NewUDP(UDPConfig{
					Peers:     []netip.AddrPort{netip.MustParseAddrPort("127.0.0.1:9")},
					MaxPacket: 2048,
				})
				if err != nil {
					t.Fatal(err)
				}
				txT, err = NewUDP(UDPConfig{
					Peers:     []netip.AddrPort{rx.LocalAddr()},
					MaxPacket: 2048,
				})
				if err != nil {
					t.Fatal(err)
				}
			})
			defer rx.Close()
			defer txT.Close()

			var mu sync.Mutex
			var got []string
			gotCh := make(chan struct{}, 32)
			rx.Subscribe(func(m Message) {
				mu.Lock()
				got = append(got, string(m.Data))
				mu.Unlock()
				m.Release()
				gotCh <- struct{}{}
			})

			batch := []Datagram{
				{Data: []byte("pkt-a-ttl16"), Scope: 16},
				{Data: []byte("pkt-b-ttl16"), Scope: 16},
				{Data: []byte("pkt-c-ttl127"), Scope: 127},
				{Data: []byte("pkt-d-ttl16"), Scope: 16},
			}
			if err := SendAll(t.Context(), txT, batch); err != nil {
				t.Fatalf("SendAll: %v", err)
			}
			for i := 0; i < len(batch); i++ {
				select {
				case <-gotCh:
				case <-time.After(5 * time.Second):
					t.Fatalf("batch datagram %d never arrived", i)
				}
			}
			mu.Lock()
			defer mu.Unlock()
			want := map[string]bool{}
			for _, d := range batch {
				want[string(d.Data)] = true
			}
			for _, p := range got {
				if !want[p] {
					t.Fatalf("unexpected payload %q", p)
				}
			}
			if len(got) != len(batch) {
				t.Fatalf("received %d datagrams, want %d", len(got), len(batch))
			}
		})
	}
}

// --- Receive-path micro-benchmarks (mirrored into BENCH.json) ---

func benchRecv(b *testing.B, mode RecvBenchMode) {
	const perRound = 64
	rounds := (b.N + perRound - 1) / perRound
	res, err := RecvThroughput(mode, rounds, perRound, 64)
	if err != nil {
		b.Fatal(err)
	}
	if res.Datagrams == 0 {
		b.Fatal("no datagrams drained")
	}
	b.ReportMetric(res.NsPerDatagram(), "ns/dgram")
	b.ReportMetric(res.DatagramsPerSec(), "dgram/s")
	b.ReportMetric(res.BatchDepth(), "dgram/syscall")
	b.ReportMetric(res.AllocsPerDatagram, "allocs/dgram")
}

// BenchmarkUDPRecvLegacy is the frozen pre-batching baseline the gate
// compares against.
func BenchmarkUDPRecvLegacy(b *testing.B) { benchRecv(b, RecvLegacy) }

// BenchmarkUDPBatchThroughput is the shipping batched zero-copy path.
func BenchmarkUDPBatchThroughput(b *testing.B) { benchRecv(b, RecvBatched) }
