package transport

import (
	"context"
	"net"
	"net/netip"
	"sync/atomic"
	"testing"
	"time"
)

// Resilience tests: socket rebind after external close, graceful drain
// before close, and pool-return accounting. These are the transport
// behaviours the process-chaos harness leans on.

// spareAddr returns the address of a bound-and-held UDP socket, giving
// tests a peer address that is guaranteed not to collide.
func spareAddr(t *testing.T) netip.AddrPort {
	t.Helper()
	c, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c.LocalAddr().(*net.UDPAddr).AddrPort()
}

func newUnicastForTest(t *testing.T) *UDPTransport {
	t.Helper()
	tr, err := NewUDP(UDPConfig{
		Peers:      []netip.AddrPort{spareAddr(t)},
		ListenAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = tr.Close() })
	return tr
}

// newInjector returns a raw socket for pushing datagrams at a transport.
func newInjector(t *testing.T) *net.UDPConn {
	t.Helper()
	c, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// TestRebindAfterSocketClosed yanks the transport's socket out from
// under it and checks the read loop rebinds to the same port and keeps
// receiving.
func TestRebindAfterSocketClosed(t *testing.T) {
	tr := newUnicastForTest(t)
	var got atomic.Uint64
	tr.Subscribe(func(m Message) {
		got.Add(1)
		m.Release()
	})

	_ = tr.io.Load().conn.Close() // simulate the socket dying under the loop

	inj := newInjector(t)
	deadline := time.Now().Add(5 * time.Second)
	for got.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no datagram received after socket close; rebinds=%d, readErrors=%d",
				tr.Metrics().Rebinds, tr.Metrics().ReadErrors)
		}
		if _, err := inj.WriteToUDPAddrPort([]byte("ping"), tr.LocalAddr()); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if tr.Metrics().Rebinds == 0 {
		t.Fatal("datagram received but rebind counter is zero")
	}
}

// TestDrainCloseDeliversTailBurst sends a burst and immediately drains;
// everything queued in the kernel's socket buffer must still reach the
// handler before the transport closes. A plain Close would discard it.
func TestDrainCloseDeliversTailBurst(t *testing.T) {
	tr := newUnicastForTest(t)
	var got atomic.Uint64
	tr.Subscribe(func(m Message) {
		got.Add(1)
		m.Release()
	})

	inj := newInjector(t)
	const burst = 120
	for i := 0; i < burst; i++ {
		if _, err := inj.WriteToUDPAddrPort([]byte("data"), tr.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.DrainClose(300*time.Millisecond, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if n := got.Load(); n != burst {
		t.Fatalf("drain delivered %d of %d datagrams", n, burst)
	}
	if m := tr.Metrics(); m.PoolReturns < burst {
		t.Fatalf("pool returns = %d after releasing %d messages", m.PoolReturns, burst)
	}
	if err := tr.Send(context.Background(), []byte("data"), 1); err != ErrClosed {
		t.Fatalf("Send after DrainClose = %v, want ErrClosed", err)
	}
}

// TestDrainCloseAfterClose is a no-op on an already-closed transport.
func TestDrainCloseAfterClose(t *testing.T) {
	tr := newUnicastForTest(t)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := tr.DrainClose(time.Second, time.Minute); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("DrainClose on closed transport took %v", elapsed)
	}
}

// TestBufPoolReturnsCounter pins the accounting contract the chaos
// harness's leak invariant reads: pooled returns count, foreign buffers
// do not.
func TestBufPoolReturnsCounter(t *testing.T) {
	p := newBufPool(64)
	b := p.get()
	p.put(b)
	if n := p.returns.Load(); n != 1 {
		t.Fatalf("returns = %d after one put, want 1", n)
	}
	small := make([]byte, 1)
	p.put(&small) // foreign buffer: dropped, not counted
	p.put(nil)
	if n := p.returns.Load(); n != 1 {
		t.Fatalf("returns = %d after foreign puts, want still 1", n)
	}
}
