package transport

import (
	"sync"
	"sync/atomic"
)

// bufPool recycles receive buffers between the UDP read loop and message
// consumers. Buffers are fixed-size (the transport's max datagram), held
// as *[]byte so the pool round-trip itself allocates nothing, and
// returned via Message.Release once the handler is done with the data.
//
// The pool is GC-safe by construction: a buffer that is never released
// simply falls out of the sync.Pool's reach and is collected, so a
// handler that forgets (or deliberately declines) to release leaks
// nothing — it only forfeits reuse, which the miss counter makes visible.
type bufPool struct {
	size    int
	pool    sync.Pool
	hits    atomic.Uint64 // gets served from the pool
	misses  atomic.Uint64 // gets that had to allocate fresh
	returns atomic.Uint64 // buffers handed back via put (Message.Release)
}

func newBufPool(size int) *bufPool {
	return &bufPool{size: size}
}

// get returns a full-size buffer, recycled when one is available.
func (p *bufPool) get() *[]byte {
	if b, ok := p.pool.Get().(*[]byte); ok {
		p.hits.Add(1)
		return b
	}
	p.misses.Add(1)
	b := make([]byte, p.size)
	return &b
}

// put restores the buffer to full capacity and returns it to the pool.
func (p *bufPool) put(b *[]byte) {
	if b == nil || cap(*b) < p.size {
		return // foreign or undersized buffer; let the GC have it
	}
	p.returns.Add(1)
	*b = (*b)[:p.size]
	p.pool.Put(b)
}
