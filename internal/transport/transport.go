// Package transport abstracts how session directory agents exchange SAP
// packets: real UDP multicast (with a unicast fan-out fallback for
// environments without multicast routing), and an in-process bus with
// optional scope filtering for tests and simulations.
package transport

import (
	"context"
	"errors"
	"net/netip"

	"sessiondir/internal/mcast"
)

// Message is one received datagram.
type Message struct {
	// From is the sender's address (zero for in-process transports that
	// don't model addressing).
	From netip.AddrPort
	// Data is the packet contents. The slice is owned by the receiver.
	Data []byte
}

// Handler consumes received messages. Handlers are invoked sequentially
// per transport; they must not block for long.
type Handler func(Message)

// Transport carries SAP datagrams between directory agents.
type Transport interface {
	// Send transmits data with the given scope TTL. The data slice is not
	// retained after Send returns.
	Send(ctx context.Context, data []byte, scope mcast.TTL) error
	// Subscribe registers the receive handler. Only one handler may be
	// active; Subscribe replaces any previous one. Pass nil to stop
	// receiving.
	Subscribe(h Handler)
	// LocalAddr identifies this endpoint (zero if not applicable).
	LocalAddr() netip.AddrPort
	// Close releases resources; Send and Subscribe are invalid afterwards.
	Close() error
}

// ErrClosed is returned by Send on a closed transport.
var ErrClosed = errors.New("transport: closed")
