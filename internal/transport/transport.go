// Package transport abstracts how session directory agents exchange SAP
// packets: real UDP multicast (with a unicast fan-out fallback for
// environments without multicast routing), and an in-process bus with
// optional scope filtering for tests and simulations.
package transport

import (
	"context"
	"errors"
	"net/netip"

	"sessiondir/internal/mcast"
)

// Message is one received datagram.
type Message struct {
	// From is the sender's address (zero for in-process transports that
	// don't model addressing).
	From netip.AddrPort
	// Data is the packet contents. The receiver owns the message: Data
	// (and anything aliasing it, such as a zero-copy SAP decode) stays
	// valid until Release is called, and a handler that keeps Data past
	// its return must either copy it first or never call Release.
	Data []byte

	// pool and buf carry the receive buffer's provenance for transports
	// that pool buffers (UDP). Both are nil for in-process transports,
	// making Release a no-op there.
	pool *bufPool
	buf  *[]byte
}

// Release returns the message's receive buffer to the owning transport's
// pool. The ownership contract (DESIGN.md §13):
//
//   - Data is valid until Release; after Release it must not be touched.
//   - Call Release at most once, after the last use of Data.
//   - Not calling Release is safe — the buffer falls to the garbage
//     collector — but defeats pooling, so steady-state consumers (the
//     directory) always release.
//
// Release on a message from a non-pooling transport (Bus, DES, fault
// deliveries) is a no-op.
func (m *Message) Release() {
	if m.pool != nil && m.buf != nil {
		m.pool.put(m.buf)
		m.pool, m.buf = nil, nil
	}
}

// Handler consumes received messages. Handlers are invoked sequentially
// per transport; they must not block for long. The handler receives
// ownership of the message — see Message.Release for the buffer
// contract.
type Handler func(Message)

// BatchHandler consumes a whole receive batch at once — every datagram
// one receive syscall retired. The handler owns each Message per the
// Release contract, but NOT the slice: it is the transport's scratch,
// valid only for the duration of the call (a handler keeping messages
// past its return must copy them out first).
type BatchHandler func([]Message)

// BatchSubscriber is implemented by transports whose receive path
// retires datagrams in batches (UDP's recvmmsg loop) and can hand the
// whole batch to one handler call. A registered BatchHandler takes
// precedence over the per-message Handler; pass nil to fall back.
// Consumers with an epoch-batched ingest path (the directory) use this
// to amortise their lock to one acquisition per batch and to parse the
// batch in parallel. Decorating transports (fault injection, rate
// limiting) deliberately do not implement BatchSubscriber: their
// per-packet decisions — and therefore seeded replay schedules — are
// identical whether delivery batches or not.
type BatchSubscriber interface {
	SubscribeBatch(BatchHandler)
}

// Datagram is one outbound packet of a batch transmission.
type Datagram struct {
	Data  []byte
	Scope mcast.TTL
}

// BatchSender is implemented by transports that can transmit several
// datagrams per syscall (sendmmsg). Semantics match calling Send for
// each datagram in order; per-datagram errors are joined.
type BatchSender interface {
	SendBatch(ctx context.Context, batch []Datagram) error
}

// SendAll transmits a batch through t's BatchSender fast path when it has
// one, falling back to sequential Send calls. Decorating transports
// (fault injection, rate limiting) deliberately do not implement
// BatchSender: their per-packet decisions — and therefore seeded replay
// schedules — are identical whether the caller batches or not.
func SendAll(ctx context.Context, t Transport, batch []Datagram) error {
	if bs, ok := t.(BatchSender); ok {
		return bs.SendBatch(ctx, batch)
	}
	var errs []error
	for _, d := range batch {
		if err := t.Send(ctx, d.Data, d.Scope); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Transport carries SAP datagrams between directory agents.
type Transport interface {
	// Send transmits data with the given scope TTL. The data slice is not
	// retained after Send returns.
	Send(ctx context.Context, data []byte, scope mcast.TTL) error
	// Subscribe registers the receive handler. Only one handler may be
	// active; Subscribe replaces any previous one. Pass nil to stop
	// receiving.
	Subscribe(h Handler)
	// LocalAddr identifies this endpoint (zero if not applicable).
	LocalAddr() netip.AddrPort
	// Close releases resources; Send and Subscribe are invalid afterwards.
	Close() error
}

// ErrClosed is returned by Send on a closed transport.
var ErrClosed = errors.New("transport: closed")
