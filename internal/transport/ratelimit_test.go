package transport

import (
	"context"
	"sync"
	"testing"
	"time"
)

// fakeClock implements Clock on synthetic time, so the budget tests
// advance time by hand instead of sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(d)
}

func TestRateLimitedValidation(t *testing.T) {
	bus := NewBus()
	if _, err := NewRateLimited(nil, 4000, 0, nil); err == nil {
		t.Fatal("nil inner accepted")
	}
	if _, err := NewRateLimited(bus.Endpoint(), 0, 0, nil); err == nil {
		t.Fatal("zero rate accepted")
	}
}

func TestRateLimitedBudget(t *testing.T) {
	bus := NewBus()
	recvEp := bus.Endpoint()
	received := 0
	recvEp.Subscribe(func(Message) { received++ })

	clk := &fakeClock{t: time.Unix(0, 0)}
	// 4000 bps = 500 B/s; burst = 500 B.
	rl, err := NewRateLimited(bus.Endpoint(), 4000, 0, clk)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	pkt := make([]byte, 100)

	// Five 100-byte packets drain the bucket; the sixth drops.
	for i := 0; i < 6; i++ {
		if err := rl.Send(ctx, pkt, 127); err != nil {
			t.Fatal(err)
		}
	}
	if received != 5 {
		t.Fatalf("received %d, want 5", received)
	}
	if rl.Dropped() != 1 {
		t.Fatalf("dropped %d, want 1", rl.Dropped())
	}

	// Half a second refills 250 bytes: two more pass, third drops.
	clk.advance(500 * time.Millisecond)
	for i := 0; i < 3; i++ {
		_ = rl.Send(ctx, pkt, 127)
	}
	if received != 7 {
		t.Fatalf("received %d, want 7", received)
	}

	// A long idle period refills to the burst cap, not beyond.
	clk.advance(time.Hour)
	for i := 0; i < 6; i++ {
		_ = rl.Send(ctx, pkt, 127)
	}
	if received != 12 {
		t.Fatalf("received %d, want 12 (burst-capped refill)", received)
	}
}

func TestRateLimitedDelegates(t *testing.T) {
	bus := NewBus()
	inner := bus.Endpoint()
	rl, err := NewRateLimited(inner, 4000, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := false
	rl.Subscribe(func(Message) { got = true })
	other := bus.Endpoint()
	_ = other.Send(context.Background(), []byte("x"), 1)
	if !got {
		t.Fatal("Subscribe not delegated")
	}
	if rl.LocalAddr() != inner.LocalAddr() {
		t.Fatal("LocalAddr not delegated")
	}
	if err := rl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rl.Send(context.Background(), []byte("x"), 1); err == nil {
		t.Fatal("send after close succeeded")
	}
}
