package transport

import (
	"context"
	"fmt"
	"net/netip"
	"sync"

	"sessiondir/internal/mcast"
)

// RateLimited decorates a Transport with a token-bucket bandwidth budget.
// SAP gives each scope's announcement channel a shared budget (RFC 2974's
// 4000 bits/second); the announcer's interval arithmetic keeps the steady
// state under it, but bursts — a clash storm of defenses, a cache replay —
// can still spike. The limiter turns such spikes into drops, which the
// re-announcement schedule repairs, instead of letting a directory flood
// the channel it shares with everyone else.
type RateLimited struct {
	inner Transport
	rate  float64 // bytes per second
	burst float64 // bucket depth, bytes
	clk   Clock

	mu        sync.Mutex
	tokens    float64
	lastNanos int64 // UnixNano of the last refill
	dropped   uint64
}

// NewRateLimited wraps inner with a budget of rateBitsPerSec and a burst
// allowance of burstBytes (0 = one second's worth). The clock is
// injectable for tests (nil = SystemClock).
func NewRateLimited(inner Transport, rateBitsPerSec int, burstBytes int, clk Clock) (*RateLimited, error) {
	if inner == nil {
		return nil, fmt.Errorf("transport: RateLimited needs an inner transport")
	}
	if rateBitsPerSec <= 0 {
		return nil, fmt.Errorf("transport: non-positive rate %d", rateBitsPerSec)
	}
	rate := float64(rateBitsPerSec) / 8
	burst := float64(burstBytes)
	if burst <= 0 {
		burst = rate
	}
	if clk == nil {
		clk = SystemClock{}
	}
	return &RateLimited{
		inner:     inner,
		rate:      rate,
		burst:     burst,
		clk:       clk,
		tokens:    burst,
		lastNanos: clk.Now().UnixNano(),
	}, nil
}

var _ Transport = (*RateLimited)(nil)

// Send implements Transport, consuming len(data) bytes of budget or
// dropping the packet (returning nil: multicast is best-effort and the
// announcement schedule retransmits).
func (r *RateLimited) Send(ctx context.Context, data []byte, scope mcast.TTL) error {
	// Read the clock before taking the lock (no calls inside the critical
	// section). Concurrent senders may then observe refill times out of
	// order; the elapsed > 0 guard makes a stale timestamp a no-op refill
	// rather than a negative one.
	nowNanos := r.clk.Now().UnixNano()
	r.mu.Lock()
	elapsed := float64(nowNanos-r.lastNanos) / 1e9
	if elapsed > 0 {
		r.tokens += elapsed * r.rate
		if r.tokens > r.burst {
			r.tokens = r.burst
		}
		r.lastNanos = nowNanos
	}
	need := float64(len(data))
	if r.tokens < need {
		r.dropped++
		r.mu.Unlock()
		return nil // dropped: the back-off schedule will retransmit
	}
	r.tokens -= need
	r.mu.Unlock()
	return r.inner.Send(ctx, data, scope)
}

// Dropped reports how many packets the budget has discarded.
func (r *RateLimited) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Subscribe implements Transport.
func (r *RateLimited) Subscribe(h Handler) { r.inner.Subscribe(h) }

// LocalAddr implements Transport.
func (r *RateLimited) LocalAddr() netip.AddrPort { return r.inner.LocalAddr() }

// Close implements Transport.
func (r *RateLimited) Close() error { return r.inner.Close() }
