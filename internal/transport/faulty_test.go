package transport

import (
	"context"
	"errors"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"sessiondir/internal/mcast"
	"sessiondir/internal/stats"
)

func testClockStart() time.Time {
	return time.Date(1998, 9, 1, 12, 0, 0, 0, time.UTC)
}

// faultPair wires sender → receiver over a Bus with the given egress
// profile on the sender, returning the fault transport and the receiver's
// message log.
func faultPair(t *testing.T, cfg FaultConfig) (*FaultTransport, *msgLog) {
	t.Helper()
	bus := NewBus()
	send, recv := bus.Endpoint(), bus.Endpoint()
	ft, err := NewFault(send, cfg)
	if err != nil {
		t.Fatal(err)
	}
	log := &msgLog{}
	recv.Subscribe(log.add)
	t.Cleanup(func() {
		_ = ft.Close()
		_ = recv.Close()
	})
	return ft, log
}

type msgLog struct {
	mu   sync.Mutex
	msgs [][]byte
}

func (l *msgLog) add(m Message) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.msgs = append(l.msgs, m.Data)
}

func (l *msgLog) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.msgs)
}

func (l *msgLog) all() [][]byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([][]byte(nil), l.msgs...)
}

func TestFaultRequiresRNG(t *testing.T) {
	bus := NewBus()
	if _, err := NewFault(bus.Endpoint(), FaultConfig{}); err == nil {
		t.Fatal("nil RNG accepted")
	}
	if _, err := NewFault(nil, FaultConfig{RNG: stats.NewRNG(1)}); err == nil {
		t.Fatal("nil inner accepted")
	}
	if _, err := NewFault(bus.Endpoint(), FaultConfig{RNG: stats.NewRNG(1), Egress: FaultProfile{Loss: 1.5}}); err == nil {
		t.Fatal("out-of-range probability accepted")
	}
}

func TestFaultZeroProfilePassesThrough(t *testing.T) {
	ft, log := faultPair(t, FaultConfig{RNG: stats.NewRNG(1)})
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		if err := ft.Send(ctx, []byte("packet"), 127); err != nil {
			t.Fatal(err)
		}
	}
	if log.count() != 50 {
		t.Fatalf("delivered %d of 50 with zero profile", log.count())
	}
	st := ft.Stats()
	if st.Egress.Dropped != 0 || st.Egress.Packets != 50 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestFaultTotalLossAndStats(t *testing.T) {
	ft, log := faultPair(t, FaultConfig{RNG: stats.NewRNG(2), Egress: FaultProfile{Loss: 1}})
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if err := ft.Send(ctx, []byte("x0x0"), 1); err != nil {
			t.Fatal(err)
		}
	}
	if log.count() != 0 {
		t.Fatalf("delivered %d with loss=1", log.count())
	}
	if st := ft.Stats(); st.Egress.Dropped != 20 {
		t.Fatalf("dropped = %d", st.Egress.Dropped)
	}
}

func TestFaultLossIsDeterministicPerSeed(t *testing.T) {
	pattern := func(seed uint64) []bool {
		ft, log := faultPair(t, FaultConfig{RNG: stats.NewRNG(seed), Egress: FaultProfile{Loss: 0.5}})
		ctx := context.Background()
		var out []bool
		for i := 0; i < 64; i++ {
			before := log.count()
			if err := ft.Send(ctx, []byte{byte(i), 1, 2, 3}, 1); err != nil {
				t.Fatal(err)
			}
			out = append(out, log.count() > before)
		}
		return out
	}
	a, b, c := pattern(7), pattern(7), pattern(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at packet %d", i)
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical 64-packet patterns")
	}
}

func TestFaultGilbertElliottBursts(t *testing.T) {
	// A chain that is lossless in Good and total-loss in Bad, with slow
	// transitions, must produce drops in runs, not salt-and-pepper.
	ft, log := faultPair(t, FaultConfig{
		RNG: stats.NewRNG(3),
		Egress: FaultProfile{Burst: &GilbertElliott{
			PGB: 0.05, PBG: 0.2, LossGood: 0, LossBad: 1,
		}},
	})
	ctx := context.Background()
	var delivered []bool
	for i := 0; i < 2000; i++ {
		before := log.count()
		if err := ft.Send(ctx, []byte("bbbb"), 1); err != nil {
			t.Fatal(err)
		}
		delivered = append(delivered, log.count() > before)
	}
	st := ft.Stats()
	if st.Egress.BurstDropped == 0 || st.Egress.BurstDropped != st.Egress.Dropped {
		t.Fatalf("burst stats: %+v", st.Egress)
	}
	// Mean burst length should approach 1/PBG = 5; an i.i.d. process at
	// the same overall rate would sit near 1/(1-rate) ≈ 1.3.
	runs, runLen := 0, 0
	total := 0
	for _, ok := range delivered {
		if !ok {
			runLen++
			continue
		}
		if runLen > 0 {
			runs++
			total += runLen
			runLen = 0
		}
	}
	if runLen > 0 {
		runs++
		total += runLen
	}
	if runs == 0 {
		t.Fatal("no loss bursts at all")
	}
	if mean := float64(total) / float64(runs); mean < 2.5 {
		t.Fatalf("mean burst length %.2f, want clearly bursty (≥2.5)", mean)
	}
}

func TestFaultDuplication(t *testing.T) {
	ft, log := faultPair(t, FaultConfig{RNG: stats.NewRNG(4), Egress: FaultProfile{Duplicate: 1}})
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if err := ft.Send(ctx, []byte("dupe"), 1); err != nil {
			t.Fatal(err)
		}
	}
	if log.count() != 20 {
		t.Fatalf("delivered %d, want every packet twice", log.count())
	}
	if st := ft.Stats(); st.Egress.Duplicated != 10 {
		t.Fatalf("duplicated = %d", st.Egress.Duplicated)
	}
}

func TestFaultCorruptionFlipsExactlyOneBit(t *testing.T) {
	ft, log := faultPair(t, FaultConfig{RNG: stats.NewRNG(5), Egress: FaultProfile{Corrupt: 1}})
	ctx := context.Background()
	orig := []byte("corrupt me, deterministically")
	for i := 0; i < 25; i++ {
		if err := ft.Send(ctx, orig, 1); err != nil {
			t.Fatal(err)
		}
	}
	msgs := log.all()
	if len(msgs) != 25 {
		t.Fatalf("delivered %d", len(msgs))
	}
	for _, m := range msgs {
		if len(m) != len(orig) {
			t.Fatalf("length changed: %d vs %d", len(m), len(orig))
		}
		diff := 0
		for i := range m {
			x := m[i] ^ orig[i]
			for ; x != 0; x &= x - 1 {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("%d bits flipped, want exactly 1", diff)
		}
	}
	if string(orig) != "corrupt me, deterministically" {
		t.Fatal("sender's buffer was mutated")
	}
}

func TestFaultDelayAndReordering(t *testing.T) {
	clk := NewManualClock(testClockStart())
	// Scripted delays: first packet 3 s, second 1 s → arrival order flips.
	delays := []time.Duration{3 * time.Second, time.Second}
	i := 0
	sampler := func(*stats.RNG) time.Duration {
		d := delays[i%len(delays)]
		i++
		return d
	}
	bus := NewBus()
	send, recv := bus.Endpoint(), bus.Endpoint()
	ft, err := NewFault(send, FaultConfig{
		RNG:    stats.NewRNG(6),
		Clock:  clk,
		Egress: FaultProfile{Delay: sampler},
	})
	if err != nil {
		t.Fatal(err)
	}
	log := &msgLog{}
	recv.Subscribe(log.add)

	ctx := context.Background()
	if err := ft.Send(ctx, []byte("first"), 1); err != nil {
		t.Fatal(err)
	}
	if err := ft.Send(ctx, []byte("second"), 1); err != nil {
		t.Fatal(err)
	}
	if log.count() != 0 {
		t.Fatal("delayed packet delivered before Step")
	}
	if st := ft.Stats(); st.Pending != 2 || st.Egress.Delayed != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if n, err := ft.Step(clk.Advance(500 * time.Millisecond)); n != 0 || err != nil {
		t.Fatalf("early step delivered %d, err %v", n, err)
	}
	if n, err := ft.Step(clk.Advance(time.Second)); n != 1 || err != nil {
		t.Fatalf("step at 1.5s delivered %d, err %v", n, err)
	}
	if n, err := ft.Step(clk.Advance(2 * time.Second)); n != 1 || err != nil {
		t.Fatalf("step at 3.5s delivered %d, err %v", n, err)
	}
	got := log.all()
	if string(got[0]) != "second" || string(got[1]) != "first" {
		t.Fatalf("no reordering: %q then %q", got[0], got[1])
	}
}

func TestFaultFlushDelayed(t *testing.T) {
	clk := NewManualClock(testClockStart())
	ft, log := faultPair(t, FaultConfig{
		RNG:    stats.NewRNG(7),
		Clock:  clk,
		Egress: FaultProfile{Delay: UniformDelay(time.Minute, time.Hour)},
	})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if err := ft.Send(ctx, []byte("held"), 1); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := ft.FlushDelayed(); n != 5 || err != nil {
		t.Fatalf("flushed %d, err %v", n, err)
	}
	if log.count() != 5 {
		t.Fatalf("delivered %d after flush", log.count())
	}
	if st := ft.Stats(); st.Pending != 0 {
		t.Fatalf("pending = %d after flush", st.Pending)
	}
}

func TestFaultIngressIndependentPerReceiver(t *testing.T) {
	// One sender, two receivers each behind their own ingress-lossy
	// FaultTransport: the loss patterns must differ (independent draws),
	// which egress-side loss cannot express.
	bus := NewBus()
	send := bus.Endpoint()
	mk := func(seed uint64) *msgLog {
		ep := bus.Endpoint()
		ft, err := NewFault(ep, FaultConfig{RNG: stats.NewRNG(seed), Ingress: FaultProfile{Loss: 0.5}})
		if err != nil {
			t.Fatal(err)
		}
		log := &msgLog{}
		ft.Subscribe(log.add)
		return log
	}
	logA, logB := mk(100), mk(200)
	ctx := context.Background()
	for i := 0; i < 64; i++ {
		if err := send.Send(ctx, []byte{byte(i), 9, 9, 9}, 127); err != nil {
			t.Fatal(err)
		}
	}
	a, b := logA.all(), logB.all()
	if len(a) == 0 || len(b) == 0 || len(a) == 64 || len(b) == 64 {
		t.Fatalf("loss not applied sensibly: %d, %d of 64", len(a), len(b))
	}
	// Identical subsets for 64 packets at 50% loss would be a 2^-64 fluke
	// — i.e. the RNGs are not independent.
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i][0] != b[i][0] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("receivers lost identical packet subsets")
		}
	}
}

func TestFaultClosedSemantics(t *testing.T) {
	ft, _ := faultPair(t, FaultConfig{RNG: stats.NewRNG(8)})
	if err := ft.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ft.Send(context.Background(), []byte("late"), 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
	if err := ft.Close(); err != nil {
		t.Fatal(err)
	}
	if n, err := ft.Step(testClockStart()); n != 0 || err != nil {
		t.Fatalf("step on closed: %d, %v", n, err)
	}
}

func TestBusPartitionAndHeal(t *testing.T) {
	bus := NewBus()
	a, b, c := bus.Endpoint(), bus.Endpoint(), bus.Endpoint()
	var mu sync.Mutex
	got := map[int]int{}
	for _, ep := range []*BusEndpoint{a, b, c} {
		id := ep.ID()
		ep.Subscribe(func(Message) {
			mu.Lock()
			got[id]++
			mu.Unlock()
		})
	}
	ctx := context.Background()

	// {a,b} | {c}: a→b delivered, a→c and c→anyone severed.
	bus.Partition([]int{a.ID(), b.ID()}, []int{c.ID()})
	if err := a.Send(ctx, []byte("to-b"), 127); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(ctx, []byte("from-c"), 127); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if got[b.ID()] != 1 || got[c.ID()] != 0 || got[a.ID()] != 0 {
		t.Fatalf("partitioned delivery: %v", got)
	}
	mu.Unlock()

	// An endpoint in no group is cut off entirely.
	bus.Partition([]int{a.ID(), c.ID()})
	if err := a.Send(ctx, []byte("to-c"), 127); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(ctx, []byte("from-b"), 127); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if got[c.ID()] != 1 || got[b.ID()] != 1 || got[a.ID()] != 0 {
		t.Fatalf("unlisted endpoint not isolated: %v", got)
	}
	mu.Unlock()

	// Heal restores full connectivity.
	bus.Heal()
	if err := a.Send(ctx, []byte("healed"), 127); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if got[b.ID()] != 2 || got[c.ID()] != 2 {
		t.Fatalf("heal did not restore delivery: %v", got)
	}
}

func TestBusPartitionComposesWithPolicy(t *testing.T) {
	bus := NewBus()
	a, b := bus.Endpoint(), bus.Endpoint()
	log := &msgLog{}
	b.Subscribe(log.add)
	bus.Partition([]int{a.ID(), b.ID()})
	bus.SetPolicy(func(from, to int, scope mcast.TTL) bool { return scope >= 64 })
	ctx := context.Background()
	if err := a.Send(ctx, []byte("low"), 15); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(ctx, []byte("high"), 127); err != nil {
		t.Fatal(err)
	}
	if log.count() != 1 {
		t.Fatalf("policy not applied inside partition: %d", log.count())
	}
}

// TestBusAsymmetricPolicyConcurrent is the paper's TTL-asymmetry case — A
// hears B but B does not hear A — exercised with concurrent senders so the
// race detector patrols the Bus send/policy paths.
func TestBusAsymmetricPolicyConcurrent(t *testing.T) {
	bus := NewBus()
	a, b := bus.Endpoint(), bus.Endpoint()
	logA, logB := &msgLog{}, &msgLog{}
	a.Subscribe(logA.add)
	b.Subscribe(logB.add)
	// Asymmetric visibility: B→A passes, A→B is scoped out.
	bus.SetPolicy(func(from, to int, _ mcast.TTL) bool { return from == b.ID() && to == a.ID() })

	const n = 200
	ctx := context.Background()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			_ = a.Send(ctx, []byte("from-a"), 15)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			_ = b.Send(ctx, []byte("from-b"), 127)
		}
	}()
	wg.Wait()
	if logA.count() != n {
		t.Fatalf("A heard %d of %d from B", logA.count(), n)
	}
	if logB.count() != 0 {
		t.Fatalf("B heard %d packets despite asymmetric scope", logB.count())
	}
}

// TestBusCloseSendRace hammers Send against concurrent endpoint Close,
// attach, policy swaps, and partition changes. The assertions are "no
// panic, no deadlock, no race-detector report"; run under -race (the CI
// race job does).
func TestBusCloseSendRace(t *testing.T) {
	bus := NewBus()
	stable := bus.Endpoint()
	defer stable.Close()
	stable.Subscribe(func(Message) {})

	var wg sync.WaitGroup
	ctx := context.Background()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ep := bus.Endpoint()
				ep.Subscribe(func(Message) {})
				_ = ep.Send(ctx, []byte("churn"), 127)
				_ = stable.Send(ctx, []byte("stable"), 127)
				if i%3 == 0 {
					bus.Partition([]int{stable.ID(), ep.ID()})
				} else {
					bus.Heal()
				}
				if i%5 == 0 {
					bus.SetPolicy(func(from, to int, _ mcast.TTL) bool { return from != to })
				} else {
					bus.SetPolicy(nil)
				}
				_ = ep.Close()
				_ = ep.Send(ctx, []byte("after-close"), 127)
			}
		}(w)
	}
	wg.Wait()
	bus.Heal()
	bus.SetPolicy(nil)
}

func TestNextReadBackoffSchedule(t *testing.T) {
	rng := stats.NewRNG(42)
	cur := time.Duration(0)
	seen := make([]time.Duration, 0, 16)
	for i := 0; i < 16; i++ {
		cur = nextReadBackoff(cur, rng)
		seen = append(seen, cur)
		lo := time.Duration(float64(readBackoffMin) * (1 - readBackoffJitter))
		if cur < lo {
			t.Fatalf("backoff %v below jittered floor %v", cur, lo)
		}
		if cur > readBackoffMax {
			t.Fatalf("backoff %v above cap %v", cur, readBackoffMax)
		}
	}
	// The schedule must actually grow toward the cap.
	if seen[len(seen)-1] < readBackoffMax/2 {
		t.Fatalf("backoff never approached the cap: %v", seen)
	}
	if seen[0] > 4*readBackoffMin {
		t.Fatalf("first backoff %v too large", seen[0])
	}
}

func TestUDPSendFanoutAggregatesErrors(t *testing.T) {
	// An IPv6 peer on a udp4 socket fails the write synchronously; the
	// fan-out must keep going so the healthy peer still receives, and the
	// returned error must name the failed peer.
	recv, err := NewUDP(UDPConfig{Peers: []netip.AddrPort{netip.MustParseAddrPort("127.0.0.1:1")}})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	msgs := make(chan Message, 1)
	recv.Subscribe(func(m Message) { msgs <- m })

	badA := netip.MustParseAddrPort("[::1]:9")
	badB := netip.MustParseAddrPort("[::2]:9")
	send, err := NewUDP(UDPConfig{Peers: []netip.AddrPort{badA, recv.LocalAddr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	ctx := context.Background()
	serr := send.Send(ctx, []byte("fanout survives"), 127)
	if serr == nil {
		t.Fatal("send to an IPv6 peer over a udp4 socket reported success")
	}
	if !strings.Contains(serr.Error(), "::1") {
		t.Fatalf("error does not name the failed peer: %v", serr)
	}
	select {
	case m := <-msgs:
		if string(m.Data) != "fanout survives" {
			t.Fatalf("got %q", m.Data)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("healthy peer never received: fan-out stopped at the first error")
	}

	// With every peer failing, the joined error must name each of them.
	allBad, err := NewUDP(UDPConfig{Peers: []netip.AddrPort{badA, badB}})
	if err != nil {
		t.Fatal(err)
	}
	defer allBad.Close()
	serr = allBad.Send(ctx, []byte("doomed"), 127)
	if serr == nil {
		t.Fatal("all-peers-failed send reported success")
	}
	for _, want := range []string{"::1", "::2"} {
		if !strings.Contains(serr.Error(), want) {
			t.Fatalf("aggregate error missing peer %s: %v", want, serr)
		}
	}
}

func TestUDPOversizedQuarantine(t *testing.T) {
	recv, err := NewUDP(UDPConfig{
		Peers:     []netip.AddrPort{netip.MustParseAddrPort("127.0.0.1:1")},
		MaxPacket: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	msgs := make(chan Message, 2)
	recv.Subscribe(func(m Message) { msgs <- m })

	send, err := NewUDP(UDPConfig{Peers: []netip.AddrPort{recv.LocalAddr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	ctx := context.Background()
	if err := send.Send(ctx, make([]byte, 32), 127); err != nil {
		t.Fatal(err)
	}
	if err := send.Send(ctx, []byte("small ok"), 127); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-msgs:
		if string(m.Data) != "small ok" {
			t.Fatalf("oversized datagram leaked through: %q", m.Data)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-bounds datagram never arrived")
	}
	deadline := time.Now().Add(2 * time.Second)
	for recv.Metrics().Oversized == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	m := recv.Metrics()
	if m.Oversized != 1 || m.Received != 1 {
		t.Fatalf("metrics: %+v", m)
	}
}
