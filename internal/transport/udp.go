package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"sessiondir/internal/mcast"
	"sessiondir/internal/obs"
	"sessiondir/internal/stats"
)

// DefaultSAPGroup and DefaultSAPPort are the well-known SAP rendezvous
// (224.2.127.254:9875).
var DefaultSAPGroup = netip.MustParseAddr("224.2.127.254")

const DefaultSAPPort = 9875

// maxDatagram is the largest SAP datagram we accept by default; RFC 2974
// recommends keeping announcements under 1 kB but tolerates up to the UDP
// maximum.
const maxDatagram = 64 * 1024

// minDatagram is the smallest datagram that can possibly carry a SAP
// packet (the 4-byte fixed header). Anything shorter is junk the parser
// cannot even classify, so the read loop quarantines it.
const minDatagram = 4

// Read-loop error back-off: start at readBackoffMin, double per
// consecutive failure up to readBackoffMax, and spread retries with
// ±readBackoffJitter so a fleet of daemons hitting the same kernel error
// (interface down, buffer exhaustion) does not retry in lockstep.
const (
	readBackoffMin    = 10 * time.Millisecond
	readBackoffMax    = 2 * time.Second
	readBackoffJitter = 0.25
)

// rebindAfterErrors is how many consecutive read failures the loop
// tolerates before concluding the socket itself is dead and attempting a
// rebind (immediately on net.ErrClosed — someone pulled the socket out
// from under us — since no amount of backing off revives that).
const rebindAfterErrors = 8

// UDPConfig parameterises a UDP transport.
type UDPConfig struct {
	// Group is the multicast group to join and send to; zero means the
	// default SAP group.
	Group netip.Addr
	// Port is the UDP port; 0 means the default SAP port.
	Port uint16
	// Peers, when non-empty, switches the transport to unicast fan-out:
	// packets are sent to each peer directly instead of the group. This
	// covers hosts and CI environments without multicast routing; scope
	// TTLs are carried in-band by SAP semantics rather than enforced by
	// routers in that mode.
	Peers []netip.AddrPort
	// ListenAddr is the local bind address for unicast mode ("" =
	// 127.0.0.1 with an ephemeral port).
	ListenAddr string
	// MaxPacket caps the accepted datagram size (0 = 64 kB). Datagrams
	// that arrive larger are quarantined: dropped and counted in
	// Metrics().Oversized rather than handed truncated to the parser.
	MaxPacket int
	// Obs, when non-nil, registers the read loop's quarantine counters
	// (udp_received_total, udp_oversized_total, udp_runts_total,
	// udp_read_errors_total) as registry views over the same atomics
	// Metrics() reads; the socket hot path is unchanged.
	Obs *obs.Registry
}

// UDPMetrics counts the read loop's quarantine and error decisions.
// Oversized and runt datagrams are the transport-level malformed inputs;
// undecodable SAP payloads are counted one layer up by the directory.
type UDPMetrics struct {
	Received    uint64 // datagrams accepted and handed to the handler layer
	Oversized   uint64 // datagrams larger than MaxPacket, quarantined
	Runts       uint64 // datagrams too short for a SAP header, quarantined
	ReadErrors  uint64 // socket read failures (each backed off before retry)
	ReadBatches uint64 // ReadBatch calls that returned datagrams (≈ receive syscalls)
	Rebinds     uint64 // socket rebinds after persistent read failures
	PoolHits    uint64 // receive buffers served from the pool
	PoolMisses  uint64 // receive buffers freshly allocated
	PoolReturns uint64 // receive buffers handed back via Message.Release
}

// udpIO pairs a socket with its platform batch reader/writer. The pair
// is swapped atomically on rebind, so the read loop and senders always
// agree on which generation of socket they are using.
type udpIO struct {
	conn *net.UDPConn
	bc   batchConn // recvmmsg/sendmmsg on linux, singleConn elsewhere
}

// UDPTransport sends and receives SAP datagrams over real sockets.
type UDPTransport struct {
	io     atomic.Pointer[udpIO]        // current socket generation
	mkConn func() (*net.UDPConn, error) // reopens the socket at the same address/group
	pool   *bufPool                     // receive buffers, returned via Message.Release
	group  *net.UDPAddr                 // nil in unicast mode
	peers  []netip.AddrPort
	local  netip.AddrPort
	maxPkt int

	received    atomic.Uint64
	oversized   atomic.Uint64
	runts       atomic.Uint64
	readErrors  atomic.Uint64
	readBatches atomic.Uint64
	rebinds     atomic.Uint64

	// Drain state, written once by DrainClose and read by the loop with
	// atomics so the hot path never takes a lock for it.
	draining   atomic.Bool
	drainQuiet atomic.Int64 // quiet window, ns
	drainStop  atomic.Int64 // hard deadline, unix ns

	// handler and bhandler are looked up lock-free once per batch; the
	// mutex below only guards the close handshake, never the per-datagram
	// path. When both are set, bhandler wins (whole-batch delivery).
	handler  atomic.Pointer[Handler]
	bhandler atomic.Pointer[BatchHandler]
	// rxBatch is the readLoop's scratch slice for whole-batch delivery,
	// reused across syscalls (the BatchHandler contract forbids keeping
	// the slice past the call).
	rxBatch []Message
	// batchSizes, when observability is enabled, records how many
	// datagrams each receive syscall retired.
	batchSizes atomic.Pointer[obs.Histogram]

	mu       sync.Mutex
	closed   bool
	done     chan struct{}
	loopDone chan struct{} // closed when readLoop exits (drain or close)
}

var (
	_ Transport       = (*UDPTransport)(nil)
	_ BatchSender     = (*UDPTransport)(nil)
	_ BatchSubscriber = (*UDPTransport)(nil)
)

// NewUDP opens a UDP transport. With Peers set it uses unicast fan-out;
// otherwise it joins the multicast group (which requires a multicast-
// capable interface and may fail in restricted environments).
func NewUDP(cfg UDPConfig) (*UDPTransport, error) {
	t, err := func() (*UDPTransport, error) {
		if len(cfg.Peers) > 0 {
			return newUnicastUDP(cfg)
		}
		return newMulticastUDP(cfg)
	}()
	if err != nil {
		return nil, err
	}
	if cfg.Obs != nil {
		if err := t.registerObs(cfg.Obs); err != nil {
			_ = t.Close() // registration failed before the transport was shared
			return nil, err
		}
	}
	return t, nil
}

// registerObs exposes the read-loop counters as registry views.
func (t *UDPTransport) registerObs(r *obs.Registry) error {
	views := []struct {
		name, help string
		src        *atomic.Uint64
	}{
		{"udp_received_total", "datagrams accepted and handed to the handler layer", &t.received},
		{"udp_oversized_total", "datagrams larger than MaxPacket, quarantined", &t.oversized},
		{"udp_runts_total", "datagrams too short for a SAP header, quarantined", &t.runts},
		{"udp_read_errors_total", "socket read failures, each backed off before retry", &t.readErrors},
		{"udp_read_batches_total", "receive syscalls that returned datagrams (batched reads)", &t.readBatches},
		{"udp_rebind_total", "socket rebinds after persistent read failures", &t.rebinds},
		{"udp_rx_pool_hits_total", "receive buffers served from the pool", &t.pool.hits},
		{"udp_rx_pool_misses_total", "receive buffers freshly allocated on pool miss", &t.pool.misses},
		{"udp_rx_pool_returns_total", "receive buffers returned to the pool via Message.Release", &t.pool.returns},
	}
	for _, v := range views {
		if err := r.CounterFunc(v.name, v.help, v.src.Load); err != nil {
			return fmt.Errorf("transport: %w", err)
		}
	}
	// Syscalls saved by batching: datagrams delivered minus kernel
	// crossings used to deliver them (zero on the portable 1:1 fallback).
	err := r.CounterFunc("udp_batch_syscalls_saved_total",
		"receive syscalls avoided by recvmmsg batching (received - read batches)",
		func() uint64 {
			rcv, batches := t.received.Load(), t.readBatches.Load()
			if rcv <= batches {
				return 0
			}
			return rcv - batches
		})
	if err != nil {
		return fmt.Errorf("transport: %w", err)
	}
	// Per-syscall batch size distribution; bounds cover 1..readBatchSize.
	hist, err := r.Histogram("udp_read_batch_size",
		"datagrams retired per receive syscall",
		[]int64{1, 2, 4, 8, 16, 32})
	if err != nil {
		return fmt.Errorf("transport: %w", err)
	}
	t.batchSizes.Store(hist)
	return nil
}

func maxPacket(cfg UDPConfig) int {
	if cfg.MaxPacket > 0 {
		return cfg.MaxPacket
	}
	return maxDatagram
}

func newUnicastUDP(cfg UDPConfig) (*UDPTransport, error) {
	listen := cfg.ListenAddr
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	addr, err := net.ResolveUDPAddr("udp4", listen)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", listen, err)
	}
	conn, err := net.ListenUDP("udp4", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	t := &UDPTransport{
		peers:  append([]netip.AddrPort(nil), cfg.Peers...),
		maxPkt: maxPacket(cfg),
		done:   make(chan struct{}),
	}
	t.initIO(conn)
	t.mkConn = func() (*net.UDPConn, error) {
		// Rebind to the resolved address (the ephemeral port, if one was
		// assigned, is now pinned) so peers keep reaching us.
		return net.ListenUDP("udp4", net.UDPAddrFromAddrPort(t.local))
	}
	go t.readLoop()
	return t, nil
}

// initIO sets up the batched I/O path: the buffer pool (one spare byte
// past the cap distinguishes "exactly MaxPacket" from "kernel truncated
// something larger") and the platform batchConn.
func (t *UDPTransport) initIO(conn *net.UDPConn) {
	t.pool = newBufPool(t.maxPkt + 1)
	t.local = conn.LocalAddr().(*net.UDPAddr).AddrPort()
	t.loopDone = make(chan struct{})
	t.io.Store(&udpIO{conn: conn, bc: newBatchConnFn(conn)})
}

// newBatchConnFn is the batchConn constructor, a variable so the
// conformance tests and benchmarks can pin a transport to the portable
// singleConn path and compare it against the platform default.
var newBatchConnFn = newBatchConn

func newMulticastUDP(cfg UDPConfig) (*UDPTransport, error) {
	group := cfg.Group
	if !group.IsValid() {
		group = DefaultSAPGroup
	}
	if !mcast.IsMulticast(group) {
		return nil, fmt.Errorf("transport: %s is not a multicast group", group)
	}
	port := cfg.Port
	if port == 0 {
		port = DefaultSAPPort
	}
	gaddr := &net.UDPAddr{IP: group.AsSlice(), Port: int(port)}
	conn, err := net.ListenMulticastUDP("udp4", nil, gaddr)
	if err != nil {
		return nil, fmt.Errorf("transport: join %s: %w", gaddr, err)
	}
	t := &UDPTransport{
		group:  gaddr,
		maxPkt: maxPacket(cfg),
		done:   make(chan struct{}),
	}
	t.initIO(conn)
	t.mkConn = func() (*net.UDPConn, error) {
		// Rejoining the group re-subscribes the fresh socket via IGMP.
		return net.ListenMulticastUDP("udp4", nil, gaddr)
	}
	go t.readLoop()
	return t, nil
}

// applyTTL sets the multicast TTL sockopt for the next send; in unicast
// mode the TTL is advisory (carried in-band by SAP semantics) and this
// is a no-op.
func (t *UDPTransport) applyTTL(conn *net.UDPConn, ttl int) error {
	if t.group == nil {
		return nil
	}
	return setMulticastTTL(conn, ttl)
}

// readLoop drains the socket through the batchConn: one blocking call
// retires up to readBatchSize datagrams (a single recvmmsg on linux),
// each handed to the handler in its pooled receive buffer with no copy.
// The slot's buffer is immediately replaced from the pool, so the
// handler owns what it was given until it calls Message.Release. The
// loop body takes no locks: the handler pointer is an atomic load once
// per batch, and all counters are atomics.
func (t *UDPTransport) readLoop() {
	defer close(t.loopDone)
	slots := make([]rxSlot, readBatchSize)
	for i := range slots {
		slots[i].buf = t.pool.get()
	}
	// The jitter source is deterministic (seeded from the local port) per
	// the detrand rule; jitter only needs to decorrelate daemons, and
	// distinct sockets get distinct ports, hence distinct streams.
	rng := stats.NewRNG(uint64(t.local.Port()) + 1)
	backoff := time.Duration(0)
	errRun := 0
	for {
		cur := t.io.Load()
		n, err := cur.bc.ReadBatch(slots)
		if err != nil {
			select {
			case <-t.done:
				return
			default:
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				if t.draining.Load() {
					// Every deadline armed during a drain encodes "quiet
					// window elapsed" (clamped to the hard stop), so a
					// timeout here means the socket went silent: done.
					return
				}
				continue
			}
			// Persistent errors (interface loss, ENOBUFS storms) back off
			// exponentially with jitter instead of spinning at a fixed
			// 10 ms; any successful read resets the schedule. A closed
			// socket never recovers by waiting — rebind immediately —
			// and a long enough error run earns the same treatment.
			t.readErrors.Add(1)
			errRun++
			if errors.Is(err, net.ErrClosed) || errRun >= rebindAfterErrors {
				if t.rebind(cur) {
					errRun, backoff = 0, 0
					continue
				}
			}
			backoff = nextReadBackoff(backoff, rng)
			time.Sleep(backoff)
			continue
		}
		errRun, backoff = 0, 0
		t.armDrainDeadline(cur)
		t.readBatches.Add(1)
		if hist := t.batchSizes.Load(); hist != nil {
			hist.Observe(int64(n))
		}
		h := t.handler.Load()
		bh := t.bhandler.Load()
		t.rxBatch = t.rxBatch[:0]
		for i := 0; i < n; i++ {
			s := &slots[i]
			switch {
			case s.n > t.maxPkt:
				t.oversized.Add(1)
				continue
			case s.n < minDatagram:
				t.runts.Add(1)
				continue
			}
			t.received.Add(1)
			if h == nil && bh == nil {
				continue // nobody listening; reuse the slot buffer in place
			}
			m := Message{From: s.from, Data: (*s.buf)[:s.n], pool: t.pool, buf: s.buf}
			s.buf = t.pool.get() // ownership moves to the handler
			if bh != nil {
				t.rxBatch = append(t.rxBatch, m)
				continue
			}
			(*h)(m)
		}
		if bh != nil && len(t.rxBatch) > 0 {
			(*bh)(t.rxBatch)
		}
	}
}

// rebind replaces a dead socket with a fresh one bound to the same
// address (rejoining the group in multicast mode) and swaps it in
// atomically. It refuses during drain or after close, and only swaps if
// prev is still the current generation, so a raced rebind cannot strand
// a live socket.
func (t *UDPTransport) rebind(prev *udpIO) bool {
	if t.draining.Load() {
		return false // shutting down; no point resurrecting the socket
	}
	conn, err := t.mkConn()
	if err != nil {
		return false // address still unavailable; the caller backs off
	}
	next := &udpIO{conn: conn, bc: newBatchConnFn(conn)}
	t.mu.Lock()
	if t.closed || t.io.Load() != prev { //mclint:lockscope atomic pointer read; the generation check must be inside mu to pair with Close
		t.mu.Unlock()
		_ = conn.Close() // lost the race; keep whichever socket won
		return false
	}
	t.io.Store(next) //mclint:lockscope atomic pointer write under mu so Close never races a swap and strands a socket
	t.mu.Unlock()
	_ = prev.conn.Close() // usually already dead; closing twice is harmless
	t.rebinds.Add(1)
	return true
}

// armDrainDeadline pushes the drain quiet window out past freshly
// received traffic, clamped to the drain's hard stop, so the loop only
// exits once the socket has gone silent (or the drain budget ran out).
func (t *UDPTransport) armDrainDeadline(cur *udpIO) {
	if !t.draining.Load() {
		return
	}
	next := time.Now().Add(time.Duration(t.drainQuiet.Load())) //mclint:detrand drain deadlines are real socket deadlines; wall time is the boundary here
	if stop := time.Unix(0, t.drainStop.Load()); next.After(stop) {
		next = stop
	}
	_ = cur.conn.SetReadDeadline(next) // best effort; Close still bounds the drain
}

// DrainClose shuts the receive path down gracefully: the read loop stays
// alive until quiet has elapsed with no datagrams — so a tail burst
// already queued in the kernel's socket buffer still reaches the handler
// — bounded by max overall, then the transport is closed. Safe to call
// concurrently with Close; either way the transport ends closed.
func (t *UDPTransport) DrainClose(quiet, max time.Duration) error {
	if quiet <= 0 {
		quiet = 50 * time.Millisecond
	}
	if max < quiet {
		max = quiet
	}
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return nil
	}
	t.drainQuiet.Store(int64(quiet))
	t.drainStop.Store(time.Now().Add(max).UnixNano()) //mclint:detrand the drain budget bounds a real socket shutdown; wall time is the boundary here
	t.draining.Store(true)
	// Wake a read blocked with no deadline so the quiet window starts now.
	_ = t.io.Load().conn.SetReadDeadline(time.Now().Add(quiet)) //mclint:detrand real socket deadline; wall time is the boundary here
	select {
	case <-t.loopDone:
	case <-time.After(max + quiet + time.Second):
		// The loop missed the deadline (e.g. a rebind raced the drain
		// flag onto a fresh socket); Close below unblocks it regardless.
	}
	return t.Close()
}

// nextReadBackoff doubles cur (starting from readBackoffMin), applies
// ±readBackoffJitter, and clamps to readBackoffMax.
func nextReadBackoff(cur time.Duration, rng *stats.RNG) time.Duration {
	next := cur * 2
	if next < readBackoffMin {
		next = readBackoffMin
	}
	if next > readBackoffMax {
		next = readBackoffMax
	}
	jittered := time.Duration(float64(next) * (1 + readBackoffJitter*(2*rng.Float64()-1)))
	if jittered > readBackoffMax {
		jittered = readBackoffMax
	}
	if jittered < 0 {
		jittered = readBackoffMin
	}
	return jittered
}

// Metrics returns a snapshot of the read loop's counters.
func (t *UDPTransport) Metrics() UDPMetrics {
	return UDPMetrics{
		Received:    t.received.Load(),
		Oversized:   t.oversized.Load(),
		Runts:       t.runts.Load(),
		ReadErrors:  t.readErrors.Load(),
		ReadBatches: t.readBatches.Load(),
		Rebinds:     t.rebinds.Load(),
		PoolHits:    t.pool.hits.Load(),
		PoolMisses:  t.pool.misses.Load(),
		PoolReturns: t.pool.returns.Load(),
	}
}

// Send implements Transport. In unicast mode a failure for one peer does
// not stop the fan-out: every remaining peer is still attempted and the
// per-peer errors are aggregated with errors.Join.
func (t *UDPTransport) Send(ctx context.Context, data []byte, scope mcast.TTL) error {
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return ErrClosed
	}
	cur := t.io.Load()
	if dl, ok := ctx.Deadline(); ok {
		if err := cur.conn.SetWriteDeadline(dl); err != nil {
			return fmt.Errorf("transport: set deadline: %w", err)
		}
		defer func() { _ = cur.conn.SetWriteDeadline(time.Time{}) }() // best-effort reset
	}
	if t.group != nil {
		if err := t.applyTTL(cur.conn, int(scope)); err != nil {
			return fmt.Errorf("transport: set TTL: %w", err)
		}
		if _, err := cur.conn.WriteToUDP(data, t.group); err != nil {
			return fmt.Errorf("transport: send: %w", err)
		}
		return nil
	}
	var errs []error
	for _, p := range t.peers {
		ua := net.UDPAddrFromAddrPort(p)
		if _, err := cur.conn.WriteToUDP(data, ua); err != nil {
			errs = append(errs, fmt.Errorf("transport: send to %s: %w", p, err))
		}
	}
	return errors.Join(errs...)
}

// SendBatch implements BatchSender: semantically k Sends, but runs of
// same-scope datagrams share one TTL sockopt and go out in a single
// sendmmsg on linux. In unicast mode every datagram fans out to every
// peer in one batch. The data slices are not retained.
func (t *UDPTransport) SendBatch(ctx context.Context, batch []Datagram) error {
	if len(batch) == 0 {
		return nil
	}
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return ErrClosed
	}
	cur := t.io.Load()
	if dl, ok := ctx.Deadline(); ok {
		if err := cur.conn.SetWriteDeadline(dl); err != nil {
			return fmt.Errorf("transport: set deadline: %w", err)
		}
		defer func() { _ = cur.conn.SetWriteDeadline(time.Time{}) }() // best-effort reset
	}
	if t.group == nil {
		// Unicast fan-out: batch × peers, errors joined like Send's loop.
		pkts := make([]txPkt, 0, len(batch)*len(t.peers))
		for _, d := range batch {
			for _, p := range t.peers {
				pkts = append(pkts, txPkt{data: d.Data, to: p})
			}
		}
		return cur.bc.WriteBatch(pkts)
	}
	group := t.group.AddrPort()
	pkts := make([]txPkt, 0, len(batch))
	var errs []error
	for i := 0; i < len(batch); {
		// TTL is a socket option, so a batch can only share a syscall
		// while the scope holds; split at each scope change.
		j := i
		for j < len(batch) && batch[j].Scope == batch[i].Scope {
			j++
		}
		if err := t.applyTTL(cur.conn, int(batch[i].Scope)); err != nil {
			return fmt.Errorf("transport: set TTL: %w", err)
		}
		pkts = pkts[:0]
		for _, d := range batch[i:j] {
			pkts = append(pkts, txPkt{data: d.Data, to: group})
		}
		if err := cur.bc.WriteBatch(pkts); err != nil {
			errs = append(errs, err)
		}
		i = j
	}
	return errors.Join(errs...)
}

// Subscribe implements Transport. The handler is published through an
// atomic pointer; the read loop observes a replacement at its next
// batch boundary.
func (t *UDPTransport) Subscribe(h Handler) {
	if h == nil {
		t.handler.Store(nil)
		return
	}
	t.handler.Store(&h)
}

// SubscribeBatch implements BatchSubscriber: the read loop hands each
// receive syscall's accepted datagrams to h in one call instead of one
// Handler call per datagram. Overrides the per-message handler while
// set; pass nil to revert.
func (t *UDPTransport) SubscribeBatch(h BatchHandler) {
	if h == nil {
		t.bhandler.Store(nil)
		return
	}
	t.bhandler.Store(&h)
}

// LocalAddr implements Transport.
func (t *UDPTransport) LocalAddr() netip.AddrPort { return t.local }

// Close implements Transport.
func (t *UDPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	close(t.done)
	t.mu.Unlock()
	t.handler.Store(nil)
	t.bhandler.Store(nil)
	return t.io.Load().conn.Close()
}
