package transport

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"

	"sessiondir/internal/mcast"
)

// DefaultSAPGroup and DefaultSAPPort are the well-known SAP rendezvous
// (224.2.127.254:9875).
var DefaultSAPGroup = netip.MustParseAddr("224.2.127.254")

const DefaultSAPPort = 9875

// maxDatagram is the largest SAP datagram we accept; RFC 2974 recommends
// keeping announcements under 1 kB but tolerates up to the UDP maximum.
const maxDatagram = 64 * 1024

// UDPConfig parameterises a UDP transport.
type UDPConfig struct {
	// Group is the multicast group to join and send to; zero means the
	// default SAP group.
	Group netip.Addr
	// Port is the UDP port; 0 means the default SAP port.
	Port uint16
	// Peers, when non-empty, switches the transport to unicast fan-out:
	// packets are sent to each peer directly instead of the group. This
	// covers hosts and CI environments without multicast routing; scope
	// TTLs are carried in-band by SAP semantics rather than enforced by
	// routers in that mode.
	Peers []netip.AddrPort
	// ListenAddr is the local bind address for unicast mode ("" =
	// 127.0.0.1 with an ephemeral port).
	ListenAddr string
}

// UDPTransport sends and receives SAP datagrams over real sockets.
type UDPTransport struct {
	conn   *net.UDPConn
	group  *net.UDPAddr // nil in unicast mode
	peers  []netip.AddrPort
	local  netip.AddrPort
	setTTL func(int) error

	mu      sync.Mutex
	handler Handler
	closed  bool
	done    chan struct{}
}

var _ Transport = (*UDPTransport)(nil)

// NewUDP opens a UDP transport. With Peers set it uses unicast fan-out;
// otherwise it joins the multicast group (which requires a multicast-
// capable interface and may fail in restricted environments).
func NewUDP(cfg UDPConfig) (*UDPTransport, error) {
	if len(cfg.Peers) > 0 {
		return newUnicastUDP(cfg)
	}
	return newMulticastUDP(cfg)
}

func newUnicastUDP(cfg UDPConfig) (*UDPTransport, error) {
	listen := cfg.ListenAddr
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	addr, err := net.ResolveUDPAddr("udp4", listen)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", listen, err)
	}
	conn, err := net.ListenUDP("udp4", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	t := &UDPTransport{
		conn:   conn,
		peers:  append([]netip.AddrPort(nil), cfg.Peers...),
		setTTL: func(int) error { return nil }, // TTL is advisory in unicast mode
		done:   make(chan struct{}),
	}
	t.local = conn.LocalAddr().(*net.UDPAddr).AddrPort()
	go t.readLoop()
	return t, nil
}

func newMulticastUDP(cfg UDPConfig) (*UDPTransport, error) {
	group := cfg.Group
	if !group.IsValid() {
		group = DefaultSAPGroup
	}
	if !mcast.IsMulticast(group) {
		return nil, fmt.Errorf("transport: %s is not a multicast group", group)
	}
	port := cfg.Port
	if port == 0 {
		port = DefaultSAPPort
	}
	gaddr := &net.UDPAddr{IP: group.AsSlice(), Port: int(port)}
	conn, err := net.ListenMulticastUDP("udp4", nil, gaddr)
	if err != nil {
		return nil, fmt.Errorf("transport: join %s: %w", gaddr, err)
	}
	t := &UDPTransport{
		conn:  conn,
		group: gaddr,
		done:  make(chan struct{}),
	}
	t.local = conn.LocalAddr().(*net.UDPAddr).AddrPort()
	t.setTTL = func(ttl int) error {
		return setMulticastTTL(conn, ttl)
	}
	go t.readLoop()
	return t, nil
}

func (t *UDPTransport) readLoop() {
	buf := make([]byte, maxDatagram)
	for {
		n, addr, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-t.done:
				return
			default:
			}
			// Transient errors: back off briefly and continue.
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			time.Sleep(10 * time.Millisecond)
			continue
		}
		t.mu.Lock()
		h := t.handler
		t.mu.Unlock()
		if h == nil {
			continue
		}
		data := make([]byte, n)
		copy(data, buf[:n])
		h(Message{From: addr.AddrPort(), Data: data})
	}
}

// Send implements Transport.
func (t *UDPTransport) Send(ctx context.Context, data []byte, scope mcast.TTL) error {
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if dl, ok := ctx.Deadline(); ok {
		if err := t.conn.SetWriteDeadline(dl); err != nil {
			return fmt.Errorf("transport: set deadline: %w", err)
		}
		defer func() { _ = t.conn.SetWriteDeadline(time.Time{}) }() // best-effort reset
	}
	if t.group != nil {
		if err := t.setTTL(int(scope)); err != nil {
			return fmt.Errorf("transport: set TTL: %w", err)
		}
		if _, err := t.conn.WriteToUDP(data, t.group); err != nil {
			return fmt.Errorf("transport: send: %w", err)
		}
		return nil
	}
	var firstErr error
	for _, p := range t.peers {
		ua := net.UDPAddrFromAddrPort(p)
		if _, err := t.conn.WriteToUDP(data, ua); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("transport: send to %s: %w", p, err)
		}
	}
	return firstErr
}

// Subscribe implements Transport.
func (t *UDPTransport) Subscribe(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

// LocalAddr implements Transport.
func (t *UDPTransport) LocalAddr() netip.AddrPort { return t.local }

// Close implements Transport.
func (t *UDPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.handler = nil
	close(t.done)
	t.mu.Unlock()
	return t.conn.Close()
}
