//go:build linux

package transport

import (
	"errors"
	"net"
	"net/netip"
	"os"
	"runtime"
	"syscall"
	"unsafe"
)

// Linux batchConn: recvmmsg/sendmmsg through the runtime netpoller.
//
// The syscalls are issued non-blocking (MSG_DONTWAIT) inside
// RawConn.Read/Write callbacks; returning false on EAGAIN parks the
// goroutine in the netpoller until the socket is ready, so deadlines and
// Close behave exactly as they do for ReadFromUDP — no OS thread is
// pinned while waiting. One wakeup then retires every queued datagram in
// a single kernel crossing instead of one each.

// mmsghdr mirrors the kernel's struct mmsghdr. Go's alignment rules pad
// it to the kernel's layout on both 32- and 64-bit linux (msg_len sits
// right after the msghdr; trailing padding matches the kernel's int
// alignment), so one definition serves every GOARCH.
type mmsghdr struct {
	Hdr syscall.Msghdr
	Len uint32 // bytes received/sent for this message
}

// mmsgConn implements batchConn over one AF_INET UDP socket.
//
// The receive scratch (hdrs/iovs/names) is reused across ReadBatch calls
// and owned by the read-loop goroutine; the recv closure is built once so
// the steady-state receive path performs zero heap allocations. Transmit
// scratch is per-call: sends are comparatively rare and may race with the
// read loop, so they must not share its arrays.
type mmsgConn struct {
	conn *net.UDPConn // kept for the no-sendmmsg per-arch fallback
	rc   syscall.RawConn

	hdrs  []mmsghdr
	iovs  []syscall.Iovec
	names []syscall.RawSockaddrInet4

	recvFn func(fd uintptr) bool // closure built once; state below
	rcount int                   // in: slots available this call
	rn     int                   // out: datagrams received
	rerrno syscall.Errno         // out: recvmmsg failure
}

func newBatchConn(conn *net.UDPConn) batchConn {
	rc, err := conn.SyscallConn()
	if err != nil {
		return &singleConn{conn: conn} // degraded socket; portable path still works
	}
	c := &mmsgConn{conn: conn, rc: rc}
	c.recvFn = func(fd uintptr) bool {
		n, _, errno := syscall.Syscall6(syscall.SYS_RECVMMSG,
			fd,
			uintptr(unsafe.Pointer(&c.hdrs[0])),
			uintptr(c.rcount),
			uintptr(syscall.MSG_DONTWAIT),
			0, 0)
		if errno == syscall.EAGAIN {
			return false // park in the netpoller until readable
		}
		c.rn, c.rerrno = int(n), errno
		return true
	}
	return c
}

func (c *mmsgConn) ReadBatch(slots []rxSlot) (int, error) {
	if len(slots) > len(c.hdrs) {
		c.hdrs = make([]mmsghdr, len(slots))
		c.iovs = make([]syscall.Iovec, len(slots))
		c.names = make([]syscall.RawSockaddrInet4, len(slots))
	}
	// Re-point the headers every call: slot buffers rotate through the
	// pool between calls, and the kernel overwrites Namelen/Len in place.
	for i := range slots {
		b := *slots[i].buf
		c.iovs[i].Base = &b[0]
		c.iovs[i].SetLen(len(b))
		c.hdrs[i] = mmsghdr{Hdr: syscall.Msghdr{
			Name:    (*byte)(unsafe.Pointer(&c.names[i])),
			Namelen: syscall.SizeofSockaddrInet4,
			Iov:     &c.iovs[i],
			Iovlen:  1, // untyped constant: fits Iovlen's per-arch width
		}}
	}
	c.rcount = len(slots)
	if err := c.rc.Read(c.recvFn); err != nil {
		return 0, err
	}
	if c.rerrno != 0 {
		return 0, os.NewSyscallError("recvmmsg", c.rerrno)
	}
	for i := 0; i < c.rn; i++ {
		slots[i].n = int(c.hdrs[i].Len)
		slots[i].from = inet4AddrPort(&c.names[i])
	}
	return c.rn, nil
}

func (c *mmsgConn) WriteBatch(pkts []txPkt) error {
	if len(pkts) == 0 {
		return nil
	}
	if !haveSendmmsg {
		return (&singleConn{conn: c.conn}).WriteBatch(pkts)
	}
	hdrs := make([]mmsghdr, len(pkts))
	iovs := make([]syscall.Iovec, len(pkts))
	names := make([]syscall.RawSockaddrInet4, len(pkts))
	for i, p := range pkts {
		names[i].Family = syscall.AF_INET
		names[i].Addr = p.to.Addr().As4()
		putInet4Port(&names[i], p.to.Port())
		if len(p.data) > 0 {
			iovs[i].Base = &p.data[0]
			iovs[i].SetLen(len(p.data))
		}
		hdrs[i].Hdr = syscall.Msghdr{
			Name:    (*byte)(unsafe.Pointer(&names[i])),
			Namelen: syscall.SizeofSockaddrInet4,
			Iov:     &iovs[i],
			Iovlen:  1,
		}
	}
	sent := 0
	for sent < len(hdrs) {
		var n int
		var opErr syscall.Errno
		err := c.rc.Write(func(fd uintptr) bool {
			r, _, errno := syscall.Syscall6(sysSENDMMSG,
				fd,
				uintptr(unsafe.Pointer(&hdrs[sent])),
				uintptr(len(hdrs)-sent),
				uintptr(syscall.MSG_DONTWAIT),
				0, 0)
			if errno == syscall.EAGAIN {
				return false // park until writable
			}
			n, opErr = int(r), errno
			return true
		})
		if err != nil {
			return err
		}
		if opErr != 0 {
			return os.NewSyscallError("sendmmsg", opErr)
		}
		if n <= 0 {
			return errors.New("transport: sendmmsg made no progress")
		}
		sent += n
	}
	// The kernel only sees raw pointers into these from here on; keep the
	// backing arrays (and the payload slices) alive across the syscalls.
	runtime.KeepAlive(iovs)
	runtime.KeepAlive(names)
	runtime.KeepAlive(pkts)
	return nil
}

// inet4AddrPort converts a kernel-filled IPv4 sockaddr. The port is
// stored in network byte order; reading it byte-wise keeps the code
// endianness-agnostic.
func inet4AddrPort(sa *syscall.RawSockaddrInet4) netip.AddrPort {
	p := (*[2]byte)(unsafe.Pointer(&sa.Port))
	return netip.AddrPortFrom(netip.AddrFrom4(sa.Addr), uint16(p[0])<<8|uint16(p[1]))
}

// putInet4Port stores port into sa in network byte order.
func putInet4Port(sa *syscall.RawSockaddrInet4, port uint16) {
	p := (*[2]byte)(unsafe.Pointer(&sa.Port))
	p[0], p[1] = byte(port>>8), byte(port)
}
