package transport

import (
	"context"
	"errors"
	"net/netip"
	"sync"
	"testing"
	"time"

	"sessiondir/internal/mcast"
)

func TestBusDeliversToOthersNotSelf(t *testing.T) {
	bus := NewBus()
	a, b, c := bus.Endpoint(), bus.Endpoint(), bus.Endpoint()
	defer a.Close()
	defer b.Close()
	defer c.Close()

	var mu sync.Mutex
	got := map[int][]string{}
	sub := func(ep *BusEndpoint) {
		id := ep.ID()
		ep.Subscribe(func(m Message) {
			mu.Lock()
			got[id] = append(got[id], string(m.Data))
			mu.Unlock()
		})
	}
	sub(a)
	sub(b)
	sub(c)

	if err := a.Send(context.Background(), []byte("hello"), 127); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got[a.ID()]) != 0 {
		t.Fatal("sender received its own packet")
	}
	if len(got[b.ID()]) != 1 || got[b.ID()][0] != "hello" {
		t.Fatalf("b got %v", got[b.ID()])
	}
	if len(got[c.ID()]) != 1 {
		t.Fatalf("c got %v", got[c.ID()])
	}
}

func TestBusPolicyScopesDelivery(t *testing.T) {
	bus := NewBus()
	a, b, c := bus.Endpoint(), bus.Endpoint(), bus.Endpoint()
	// Only scope >= 64 crosses from a to c; a to b always.
	bus.SetPolicy(func(from, to int, scope mcast.TTL) bool {
		if from == a.ID() && to == c.ID() {
			return scope >= 64
		}
		return true
	})
	var mu sync.Mutex
	counts := map[int]int{}
	for _, ep := range []*BusEndpoint{b, c} {
		id := ep.ID()
		ep.Subscribe(func(Message) {
			mu.Lock()
			counts[id]++
			mu.Unlock()
		})
	}
	ctx := context.Background()
	a.Send(ctx, []byte("x"), 15)  //nolint:errcheck
	a.Send(ctx, []byte("y"), 127) //nolint:errcheck
	mu.Lock()
	defer mu.Unlock()
	if counts[b.ID()] != 2 {
		t.Fatalf("b count = %d", counts[b.ID()])
	}
	if counts[c.ID()] != 1 {
		t.Fatalf("c count = %d", counts[c.ID()])
	}
}

func TestBusHandlerOwnsData(t *testing.T) {
	bus := NewBus()
	a, b := bus.Endpoint(), bus.Endpoint()
	var captured []byte
	b.Subscribe(func(m Message) { captured = m.Data })
	payload := []byte("mutable")
	a.Send(context.Background(), payload, 1) //nolint:errcheck
	payload[0] = 'X'
	if string(captured) != "mutable" {
		t.Fatalf("handler data aliases the sender's buffer: %q", captured)
	}
}

func TestBusClosedSend(t *testing.T) {
	bus := NewBus()
	a := bus.Endpoint()
	a.Close()
	if err := a.Send(context.Background(), []byte("x"), 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
	// Double close is fine.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBusClosedEndpointNotDelivered(t *testing.T) {
	bus := NewBus()
	a, b := bus.Endpoint(), bus.Endpoint()
	delivered := false
	b.Subscribe(func(Message) { delivered = true })
	b.Close()
	a.Send(context.Background(), []byte("x"), 1) //nolint:errcheck
	if delivered {
		t.Fatal("closed endpoint received a packet")
	}
}

func TestUDPUnicastFanout(t *testing.T) {
	recv, err := NewUDP(UDPConfig{Peers: []netip.AddrPort{netip.MustParseAddrPort("127.0.0.1:1")}})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	msgs := make(chan Message, 4)
	recv.Subscribe(func(m Message) { msgs <- m })

	send, err := NewUDP(UDPConfig{Peers: []netip.AddrPort{recv.LocalAddr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := send.Send(ctx, []byte("sap packet"), 127); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-msgs:
		if string(m.Data) != "sap packet" {
			t.Fatalf("got %q", m.Data)
		}
		if m.From.Port() != send.LocalAddr().Port() {
			t.Fatalf("from = %v, sender = %v", m.From, send.LocalAddr())
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for packet")
	}
}

func TestUDPBidirectional(t *testing.T) {
	a, err := NewUDP(UDPConfig{Peers: []netip.AddrPort{netip.MustParseAddrPort("127.0.0.1:1")}})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewUDP(UDPConfig{Peers: []netip.AddrPort{a.LocalAddr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// Point a at b now that b exists.
	a.peers = []netip.AddrPort{b.LocalAddr()}

	fromA := make(chan string, 1)
	fromB := make(chan string, 1)
	a.Subscribe(func(m Message) { fromB <- string(m.Data) })
	b.Subscribe(func(m Message) { fromA <- string(m.Data) })

	ctx := context.Background()
	if err := a.Send(ctx, []byte("ping"), 15); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(ctx, []byte("pong"), 15); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case got := <-fromA:
			if got != "ping" {
				t.Fatalf("b got %q", got)
			}
		case got := <-fromB:
			if got != "pong" {
				t.Fatalf("a got %q", got)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("timeout")
		}
	}
}

func TestUDPClosedSend(t *testing.T) {
	tr, err := NewUDP(UDPConfig{Peers: []netip.AddrPort{netip.MustParseAddrPort("127.0.0.1:1")}})
	if err != nil {
		t.Fatal(err)
	}
	tr.Close()
	if err := tr.Send(context.Background(), []byte("x"), 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestUDPMulticastOrSkip(t *testing.T) {
	// Real multicast needs routing support; skip gracefully where absent.
	grp := netip.MustParseAddr("239.255.77.77")
	recv, err := NewUDP(UDPConfig{Group: grp, Port: 19876})
	if err != nil {
		t.Skipf("multicast unavailable: %v", err)
	}
	defer recv.Close()
	msgs := make(chan Message, 1)
	recv.Subscribe(func(m Message) { msgs <- m })

	send, err := NewUDP(UDPConfig{Group: grp, Port: 19876})
	if err != nil {
		t.Skipf("multicast send socket unavailable: %v", err)
	}
	defer send.Close()
	// ≥ 4 bytes: shorter datagrams are quarantined as runts by the read loop.
	if err := send.Send(context.Background(), []byte("mc-hello"), 1); err != nil {
		t.Skipf("multicast send failed: %v", err)
	}
	select {
	case m := <-msgs:
		if string(m.Data) != "mc-hello" {
			t.Fatalf("got %q", m.Data)
		}
	case <-time.After(time.Second):
		t.Skip("multicast loopback not delivered; environment lacks multicast")
	}
}

func TestUDPRejectsNonMulticastGroup(t *testing.T) {
	if _, err := NewUDP(UDPConfig{Group: netip.MustParseAddr("10.0.0.1")}); err == nil {
		t.Fatal("unicast group accepted")
	}
}
