//go:build race

package transport

// raceEnabled gates allocation-count assertions: the race detector's
// instrumentation allocates, so exact allocs/op is only meaningful
// without it.
const raceEnabled = true
