//go:build !linux

package transport

import "net"

// newBatchConn returns the portable one-datagram-per-syscall fallback on
// platforms without recvmmsg/sendmmsg. The read loop and its semantics
// are identical either way (batchio_test.go); only the syscall count
// differs.
func newBatchConn(conn *net.UDPConn) batchConn {
	return &singleConn{conn: conn}
}
