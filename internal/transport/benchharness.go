package transport

import (
	"fmt"
	"net"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Receive-path throughput harness.
//
// RecvThroughput measures the cost of *draining* datagrams in isolation:
// each round queues perRound datagrams on a loopback socket while no
// reader is running, then drains them with the selected receive style,
// timing only the drain. Keeping the fill outside the clock is what lets
// the number answer "how fast can the receive path retire a backlog" —
// the question SAP announcement bursts ask — rather than blending in
// sender-side syscall cost, which is identical across styles.
//
// Both the transport's own benchmarks and cmd/mcbench call this, so the
// number in BENCH.json and the number a `go test -bench` run prints come
// from the same code path.

// RecvBenchMode selects the receive style under measurement.
type RecvBenchMode int

const (
	// RecvLegacy reproduces the pre-batching read loop: one ReadFromUDP
	// per datagram, a mutex-guarded handler fetch, and a make+copy hand-
	// off. It exists as the fixed baseline the batched path is gated
	// against (≥10x in BENCH.json), so it must not be "improved".
	RecvLegacy RecvBenchMode = iota
	// RecvBatched is the shipping path: platform batchConn (recvmmsg on
	// linux), pooled buffers, lock-free handler, zero-copy hand-off.
	RecvBatched
)

func (m RecvBenchMode) String() string {
	if m == RecvLegacy {
		return "legacy"
	}
	return "batched"
}

// RecvThroughputResult aggregates the timed drains.
type RecvThroughputResult struct {
	Datagrams int   // datagrams actually drained inside the clock
	Reads     int   // receive calls (≈ syscalls) used to drain them
	DrainNs   int64 // time spent draining, fill excluded
	// AllocsPerDatagram is the mean heap allocations per drained
	// datagram, measured after a warm-up round with GC paused so pool
	// reuse is observable (the steady-state gate wants exactly 0 for the
	// batched path).
	AllocsPerDatagram float64
}

// BatchDepth is the mean datagrams retired per receive call — the
// syscall amortization factor (1.0 for the legacy and portable paths,
// up to readBatchSize for recvmmsg).
func (r RecvThroughputResult) BatchDepth() float64 {
	if r.Reads == 0 {
		return 0
	}
	return float64(r.Datagrams) / float64(r.Reads)
}

// NsPerDatagram is the per-datagram receive cost.
func (r RecvThroughputResult) NsPerDatagram() float64 {
	if r.Datagrams == 0 {
		return 0
	}
	return float64(r.DrainNs) / float64(r.Datagrams)
}

// DatagramsPerSec is the drain rate.
func (r RecvThroughputResult) DatagramsPerSec() float64 {
	if r.DrainNs == 0 {
		return 0
	}
	return float64(r.Datagrams) / (float64(r.DrainNs) / 1e9)
}

// RecvThroughput runs the fill-then-drain benchmark: rounds rounds of
// perRound datagrams of payloadLen bytes over loopback. perRound must
// stay well under the socket buffer (64 datagrams of ≤1 kB is safe
// everywhere); dropped datagrams are tolerated via a drain deadline so a
// lossy kernel buffer skews the number instead of hanging the run.
func RecvThroughput(mode RecvBenchMode, rounds, perRound, payloadLen int) (RecvThroughputResult, error) {
	var res RecvThroughputResult
	rx, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return res, fmt.Errorf("transport: bench listen: %w", err)
	}
	defer rx.Close()
	_ = rx.SetReadBuffer(1 << 21) // room for the whole fill, best-effort
	tx, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return res, fmt.Errorf("transport: bench sender: %w", err)
	}
	defer tx.Close()
	dst := rx.LocalAddr().(*net.UDPAddr).AddrPort()
	payload := make([]byte, payloadLen)
	for i := range payload {
		payload[i] = byte(i)
	}

	drain, reads := newDrainer(mode, rx)
	fill := func() (int, error) {
		for i := 0; i < perRound; i++ {
			if _, err := tx.WriteToUDPAddrPort(payload, dst); err != nil {
				return 0, fmt.Errorf("transport: bench fill: %w", err)
			}
		}
		return perRound, nil
	}

	// Warm-up round: page in both paths and seed the buffer pool, so the
	// measured rounds see steady state.
	if _, err := fill(); err != nil {
		return res, err
	}
	if _, _, err := drain(perRound); err != nil {
		return res, err
	}

	// GC off while measuring: a collection mid-run would empty the
	// buffer pool and bill the refill to whichever round it landed on.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	*reads = 0
	for r := 0; r < rounds; r++ {
		if _, err := fill(); err != nil {
			return res, err
		}
		got, ns, err := drain(perRound)
		if err != nil {
			return res, err
		}
		res.Datagrams += got
		res.DrainNs += ns
	}
	res.Reads = *reads
	runtime.ReadMemStats(&ms1)
	if res.Datagrams > 0 {
		res.AllocsPerDatagram = float64(ms1.Mallocs-ms0.Mallocs) / float64(res.Datagrams)
	}
	return res, nil
}

// newDrainer builds the mode's drain function — receive up to want
// datagrams (stopping early at the deadline if some were dropped) and
// report how many arrived and how long the drain took — plus a counter
// of receive calls made, for the batch-depth metric.
func newDrainer(mode RecvBenchMode, rx *net.UDPConn) (func(want int) (int, int64, error), *int) {
	reads := new(int)
	// The handler mirrors what a subscribed directory costs the loop: an
	// indirect call that releases the buffer.
	if mode == RecvLegacy {
		buf := make([]byte, maxDatagram+1)
		var mu sync.Mutex
		handler := Handler(func(Message) {})
		return func(want int) (int, int64, error) {
			got := 0
			start := time.Now() //mclint:detrand the harness measures real elapsed time; that is the product
			_ = rx.SetReadDeadline(start.Add(2 * time.Second))
			for got < want {
				n, addr, err := rx.ReadFromUDP(buf)
				*reads++
				if err != nil {
					if ne, ok := err.(net.Error); ok && ne.Timeout() {
						break // fill was lossy; measure what arrived
					}
					return got, time.Since(start).Nanoseconds(), err //mclint:detrand timing is the measurement
				}
				mu.Lock() //mclint:looplock frozen legacy baseline: the per-datagram lock is what we benchmark against
				h := handler
				mu.Unlock()
				data := make([]byte, n)
				copy(data, buf[:n])
				h(Message{From: addr.AddrPort(), Data: data})
				got++
			}
			return got, time.Since(start).Nanoseconds(), nil //mclint:detrand timing is the measurement
		}, reads
	}
	pool := newBufPool(maxDatagram + 1)
	bc := newBatchConn(rx)
	slots := make([]rxSlot, readBatchSize)
	for i := range slots {
		slots[i].buf = pool.get()
	}
	handler := Handler(func(m Message) { m.Release() })
	hp := &handler
	return func(want int) (int, int64, error) {
		got := 0
		start := time.Now() //mclint:detrand the harness measures real elapsed time; that is the product
		_ = rx.SetReadDeadline(start.Add(2 * time.Second))
		for got < want {
			n, err := bc.ReadBatch(slots)
			*reads++
			if err != nil {
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					break
				}
				return got, time.Since(start).Nanoseconds(), err //mclint:detrand timing is the measurement
			}
			h := hp
			for i := 0; i < n; i++ {
				s := &slots[i]
				(*h)(Message{From: s.from, Data: (*s.buf)[:s.n], pool: pool, buf: s.buf})
				s.buf = pool.get()
			}
			got += n
		}
		return got, time.Since(start).Nanoseconds(), nil //mclint:detrand timing is the measurement
	}, reads
}
