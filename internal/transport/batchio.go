package transport

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
)

// Batched datagram I/O.
//
// batchConn is the seam between UDPTransport's read loop and the kernel:
// one blocking call that may return several datagrams. On Linux it is
// backed by recvmmsg/sendmmsg (batchio_linux.go), draining everything the
// socket has queued in a single syscall; everywhere else singleConn
// degrades to one datagram per call via the alloc-free AddrPort read
// path, which is exactly the pre-batching behaviour. The conformance
// suite (batchio_test.go) runs the same datagram sequences through every
// available implementation and requires identical Messages out, so the
// build-tag seam cannot drift.

// readBatchSize is the receive ring depth: the most datagrams one
// ReadBatch call may return, and so the most one recvmmsg syscall can
// retire. 32 comfortably covers a SAP announcement burst while keeping
// the preallocated ring under 2 MB at the 64 kB default datagram cap.
const readBatchSize = 32

// rxSlot is one ring entry: a pooled full-capacity buffer plus the
// per-datagram results of the last ReadBatch that filled it.
type rxSlot struct {
	buf  *[]byte // pooled, always full length; owner swaps it out on handoff
	n    int     // bytes received
	from netip.AddrPort
}

// txPkt is one outbound datagram with its resolved destination (scope
// handling — TTL sockopts, peer fan-out — happens above this layer).
type txPkt struct {
	data []byte
	to   netip.AddrPort
}

// batchConn reads and writes datagrams in batches over one UDP socket.
// ReadBatch is owned by a single goroutine (the transport read loop);
// WriteBatch may be called concurrently with it but not with itself.
type batchConn interface {
	// ReadBatch blocks until at least one datagram is available, fills
	// slots[0..m) — reading each datagram into (*slots[i].buf) at full
	// length and recording its size and source — and returns m. It never
	// blocks waiting for a second datagram: whatever is queued beyond the
	// first is taken only if it is already there. Deadline and close
	// errors surface exactly as they do from ReadFromUDP.
	ReadBatch(slots []rxSlot) (int, error)
	// WriteBatch transmits every packet, joining per-packet errors, as if
	// each were sent individually in order.
	WriteBatch(pkts []txPkt) error
}

// singleConn is the portable batchConn: one datagram per call, using the
// netip read/write variants so the steady-state loop stays alloc-free.
type singleConn struct {
	conn *net.UDPConn
}

func (c *singleConn) ReadBatch(slots []rxSlot) (int, error) {
	n, from, err := c.conn.ReadFromUDPAddrPort(*slots[0].buf)
	if err != nil {
		return 0, err
	}
	slots[0].n, slots[0].from = n, from
	return 1, nil
}

func (c *singleConn) WriteBatch(pkts []txPkt) error {
	var errs []error
	for _, p := range pkts {
		if _, err := c.conn.WriteToUDPAddrPort(p.data, p.to); err != nil {
			errs = append(errs, fmt.Errorf("transport: send to %s: %w", p.to, err))
		}
	}
	return errors.Join(errs...)
}
