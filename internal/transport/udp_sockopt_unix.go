//go:build unix

package transport

import (
	"net"
	"syscall"
)

// setMulticastTTL sets the IP_MULTICAST_TTL socket option, which is how
// Mbone scope control is expressed at the sending host (§1 of the paper).
func setMulticastTTL(conn *net.UDPConn, ttl int) error {
	raw, err := conn.SyscallConn()
	if err != nil {
		return err
	}
	var serr error
	if err := raw.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.IPPROTO_IP, syscall.IP_MULTICAST_TTL, ttl)
	}); err != nil {
		return err
	}
	return serr
}
