//go:build linux && (arm64 || riscv64 || loong64)

package transport

// asm-generic syscall table, inherited by every modern Linux port.
const (
	haveSendmmsg         = true
	sysSENDMMSG  uintptr = 269
)
