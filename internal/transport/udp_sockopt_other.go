//go:build !unix

package transport

import "net"

// setMulticastTTL is a no-op on platforms without the unix sockopt API;
// packets go out with the system default multicast TTL.
func setMulticastTTL(_ *net.UDPConn, _ int) error { return nil }
