//go:build linux && amd64

package transport

// sendmmsg postdates the frozen stdlib syscall tables on some
// architectures, so its number is defined here per GOARCH (x86-64 table:
// 307). Architectures without an entry fall back to one sendto per
// datagram (sysnum_sendmmsg_fallback_linux.go); receive-side batching is
// unaffected.
const (
	haveSendmmsg             = true
	sysSENDMMSG      uintptr = 307
)
