package transport

import (
	"context"
	"net/netip"
	"sort"
	"sync"

	"sessiondir/internal/mcast"
)

// Bus is an in-process multicast fabric: every endpoint's Send is delivered
// to every other endpoint whose scope predicate admits the packet. It
// models a lossless, ordered, zero-delay network unless a Policy says
// otherwise — exactly what unit and integration tests want, and a
// convenient substrate for the examples.
type Bus struct {
	mu        sync.Mutex
	endpoints map[int]*BusEndpoint
	nextID    int
	policy    Policy
	// partition maps endpoint id → group index while a partition is
	// active (nil = fully connected). The map is built complete before
	// being published and never mutated afterwards, so snapshots taken
	// under mu may be read lock-free.
	partition map[int]int
}

// Policy decides per-packet delivery between two endpoints. Returning
// deliver=false drops the packet (loss or out-of-scope); delayed delivery
// is not modelled here (the DES handles that in simulations).
type Policy func(from, to int, scope mcast.TTL) (deliver bool)

// NewBus returns an empty bus delivering everything everywhere.
func NewBus() *Bus {
	return &Bus{endpoints: make(map[int]*BusEndpoint)}
}

// SetPolicy installs a delivery policy (nil restores deliver-all).
func (b *Bus) SetPolicy(p Policy) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.policy = p
}

// Partition splits the fabric into isolated groups of endpoint IDs:
// packets are delivered only between endpoints of the same group, and an
// endpoint named in no group is cut off entirely. The partition composes
// with any Policy (both must admit a packet) and applies to packets sent
// after the call — chaos schedules script network splits with Partition
// and repair them with Heal. Calling Partition again replaces the
// previous layout.
func (b *Bus) Partition(groups ...[]int) {
	part := make(map[int]int)
	for gi, g := range groups {
		for _, id := range g {
			part[id] = gi
		}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.partition = part
}

// Heal removes any active partition: the fabric is fully connected again
// (subject to the Policy, which Heal does not touch).
func (b *Bus) Heal() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.partition = nil
}

// Endpoint creates a new attached endpoint.
func (b *Bus) Endpoint() *BusEndpoint {
	b.mu.Lock()
	defer b.mu.Unlock()
	ep := &BusEndpoint{bus: b, id: b.nextID}
	b.nextID++
	b.endpoints[ep.id] = ep
	return ep
}

// BusEndpoint is one attachment point on a Bus.
type BusEndpoint struct {
	bus *Bus
	id  int

	mu      sync.Mutex
	handler Handler
	closed  bool
}

var _ Transport = (*BusEndpoint)(nil)

// ID returns the endpoint's bus-unique id (useful in Policy functions).
func (e *BusEndpoint) ID() int { return e.id }

// Send implements Transport. Delivery is synchronous: all recipient
// handlers run before Send returns, which makes tests deterministic.
// The sender does not receive its own packets (matching IP_MULTICAST_LOOP
// disabled, which is how the agents are wired).
func (e *BusEndpoint) Send(_ context.Context, data []byte, scope mcast.TTL) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}

	// Snapshot the attached endpoints under the lock; run the Policy
	// outside it. A Policy is caller-supplied code — invoking it with
	// bus.mu held would deadlock the moment a policy touches the bus
	// (attaching an endpoint, changing the policy).
	e.bus.mu.Lock()
	policy := e.bus.policy
	part := e.bus.partition
	candidates := make([]*BusEndpoint, 0, len(e.bus.endpoints))
	for id, other := range e.bus.endpoints {
		if id != e.id {
			candidates = append(candidates, other)
		}
	}
	e.bus.mu.Unlock()

	// Deliver in ascending endpoint-ID order. The endpoints map iterates
	// in a different order every run; with fault-injecting receivers each
	// drawing from a seeded RNG on receipt, delivery order is part of the
	// deterministic-replay contract, so it must not leak map order.
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].id < candidates[j].id })

	for _, r := range candidates {
		if part != nil {
			sg, okS := part[e.id]
			rg, okR := part[r.id]
			if !okS || !okR || sg != rg {
				continue // severed by the active partition
			}
		}
		if policy != nil && !policy(e.id, r.id, scope) {
			continue
		}
		r.deliver(data)
	}
	return nil
}

func (e *BusEndpoint) deliver(data []byte) {
	e.mu.Lock()
	h := e.handler
	closed := e.closed
	e.mu.Unlock()
	if closed || h == nil {
		return
	}
	// Each recipient gets its own copy: handlers own their Data.
	cp := make([]byte, len(data))
	copy(cp, data)
	h(Message{Data: cp})
}

// Subscribe implements Transport.
func (e *BusEndpoint) Subscribe(h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
}

// LocalAddr implements Transport; bus endpoints have no network address.
func (e *BusEndpoint) LocalAddr() netip.AddrPort { return netip.AddrPort{} }

// Close implements Transport.
func (e *BusEndpoint) Close() error {
	e.mu.Lock()
	e.closed = true
	e.handler = nil
	e.mu.Unlock()

	e.bus.mu.Lock()
	delete(e.bus.endpoints, e.id)
	e.bus.mu.Unlock()
	return nil
}
