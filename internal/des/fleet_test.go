package des

import (
	"testing"
	"time"

	"sessiondir"
	"sessiondir/internal/mcast"
	"sessiondir/internal/session"
	"sessiondir/internal/stats"
	"sessiondir/internal/topology"
)

func testDesc(name string, ttl mcast.TTL) *session.Description {
	return &session.Description{
		Name:  name,
		TTL:   ttl,
		Media: []session.Media{{Type: "audio", Port: 30000, Proto: "RTP/AVP", Format: "0"}},
	}
}

func mboneNet(t *testing.T, engine *Engine, loss float64) (*Net, *topology.Graph) {
	t.Helper()
	g, err := topology.GenerateMbone(topology.MboneConfig{Nodes: 300}, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNet(engine, NetConfig{Graph: g, Loss: loss, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	return net, g
}

// pickNodes returns n spread-out node ids.
func pickNodes(g *topology.Graph, n int, seed uint64) []topology.NodeID {
	rng := stats.NewRNG(seed)
	perm := rng.Perm(g.NumNodes())
	out := make([]topology.NodeID, n)
	for i := range out {
		out[i] = topology.NodeID(perm[i])
	}
	return out
}

// TestFleetEventualConsistencyUnderLoss is the protocol-level §2.3 check:
// with 20% per-receiver loss, global sessions still become known at every
// directory, because the back-off schedule keeps re-announcing.
func TestFleetEventualConsistencyUnderLoss(t *testing.T) {
	engine := NewEngine(simStart())
	net, g := mboneNet(t, engine, 0.2)
	fleet, err := NewFleet(engine, net, FleetConfig{
		Nodes: pickNodes(g, 8, 1),
		Space: 256,
		Seed:  9,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	// Every directory announces one global session.
	for i, d := range fleet.Dirs {
		if _, err := d.CreateSession(testDesc("s", 191)); err != nil {
			t.Fatalf("dir %d: %v", i, err)
		}
	}
	// One virtual minute: the 5 s/10 s/20 s back-off retransmissions give
	// each receiver ~5 chances; P(all lost) = 0.2^5 < 0.1%.
	engine.RunFor(time.Minute)

	for i, d := range fleet.Dirs {
		if got := len(d.Sessions()); got != len(fleet.Dirs) {
			t.Fatalf("dir %d knows %d/%d sessions after 1 virtual minute",
				i, got, len(fleet.Dirs))
		}
	}
}

// TestFleetScopedVisibility: a site-scoped session is never learned
// outside its scope, however long the run.
func TestFleetScopedVisibility(t *testing.T) {
	engine := NewEngine(simStart())
	net, g := mboneNet(t, engine, 0)
	uk := topology.NodesInCountry(g, "UK")
	us := topology.NodesInCountry(g, "US")
	if len(uk) == 0 || len(us) == 0 {
		t.Fatal("countries missing")
	}
	fleet, err := NewFleet(engine, net, FleetConfig{
		Nodes: []topology.NodeID{uk[0], uk[len(uk)-1], us[0]},
		Space: 128,
		Seed:  10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	// UK-national session from the first UK directory.
	if _, err := fleet.Dirs[0].CreateSession(testDesc("uk-only", 47)); err != nil {
		t.Fatal(err)
	}
	engine.RunFor(2 * time.Minute)

	if got := len(fleet.Dirs[1].Sessions()); got != 1 {
		t.Fatalf("UK peer knows %d sessions, want 1", got)
	}
	if got := len(fleet.Dirs[2].Sessions()); got != 0 {
		t.Fatalf("US directory learned a UK-national session (%d)", got)
	}
}

// TestFleetClashResolutionUnderLoss drives a real partition-and-heal clash
// through the full stack with packet loss present.
func TestFleetClashResolutionUnderLoss(t *testing.T) {
	engine := NewEngine(simStart())
	g, err := topology.GenerateMbone(topology.MboneConfig{Nodes: 300}, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNet(engine, NetConfig{Graph: g, Loss: 0.05, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Two directories in different countries, tiny space to force a clash.
	uk := topology.NodesInCountry(g, "UK")
	us := topology.NodesInCountry(g, "US")
	fleet, err := NewFleet(engine, net, FleetConfig{
		Nodes: []topology.NodeID{uk[0], us[0]},
		Space: 2,
		Seed:  12,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	// Create the sessions nearly simultaneously: announcements race.
	if _, err := fleet.Dirs[0].CreateSession(testDesc("uk", 191)); err != nil {
		t.Fatal(err)
	}
	engine.RunFor(50 * time.Millisecond) // less than one transatlantic RTT
	if _, err := fleet.Dirs[1].CreateSession(testDesc("us", 191)); err != nil {
		t.Fatal(err)
	}

	engine.RunFor(5 * time.Minute)

	g0 := fleet.Dirs[0].OwnSessions()[0].Group
	g1 := fleet.Dirs[1].OwnSessions()[0].Group
	if g0 == g1 {
		t.Fatalf("clash unresolved after 5 virtual minutes: both on %s", g0)
	}
}

// TestFleetThirdPartyDefenseUnderDES: the crashed-originator scenario at
// the packet level.
func TestFleetThirdPartyDefenseUnderDES(t *testing.T) {
	engine := NewEngine(simStart())
	net, g := mboneNet(t, engine, 0)
	nodes := pickNodes(g, 3, 2)
	var moved int
	fleet, err := NewFleet(engine, net, FleetConfig{
		Nodes: nodes,
		Space: 2,
		Seed:  13,
		OnEvent: func(idx int, e sessiondir.Event) {
			if e.Kind == sessiondir.EventAddressChanged {
				moved++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	// Directory 0 announces, everyone learns it, then 0 crashes.
	if _, err := fleet.Dirs[0].CreateSession(testDesc("orphan", 191)); err != nil {
		t.Fatal(err)
	}
	engine.RunFor(10 * time.Second)
	if len(fleet.Dirs[2].Sessions()) != 1 {
		t.Fatal("observer missed the session")
	}
	fleet.Dirs[0].Close()

	// Directory 1 "forgets" (fresh cache in reality; here its allocator
	// view still knows, so force the clash by creating enough sessions to
	// fill the 2-address space past the orphan's slot).
	d1 := fleet.Dirs[1]
	if _, err := d1.CreateSession(testDesc("one", 191)); err != nil {
		t.Fatal(err)
	}
	if _, err := d1.CreateSession(testDesc("two", 191)); err == nil {
		// Allocation may fail (space visibly full) — acceptable either way;
		// if it succeeded it squatted the orphan's address.
		_ = err
	}
	engine.RunFor(5 * time.Minute)

	// Either directory 1 was pushed off the orphan's address by the third
	// party's defense (moved > 0), or it never squatted. In both cases the
	// orphan's address must now be unique among live own-sessions.
	groups := map[string]int{}
	for _, d := range fleet.Dirs[1:] {
		for _, s := range d.OwnSessions() {
			groups[s.Group.String()]++
		}
	}
	for g, n := range groups {
		if n > 1 {
			t.Fatalf("address %s still shared by %d sessions", g, n)
		}
	}
}

func TestFleetValidation(t *testing.T) {
	engine := NewEngine(simStart())
	net, _ := mboneNet(t, engine, 0)
	if _, err := NewFleet(engine, net, FleetConfig{}); err == nil {
		t.Fatal("empty fleet accepted")
	}
}
