package des

import (
	"fmt"
	"testing"
	"time"

	"sessiondir/internal/stats"
	"sessiondir/internal/topology"
)

// TestFleetSoakChurnUnderLoss is the long-run stability check: a fleet of
// agents continuously creating and withdrawing sessions for two virtual
// hours under 5% loss. At every checkpoint, no two live *own* sessions
// with global scope may share a group address — the protocol must keep the
// allocation consistent through the churn, losses, and clash episodes.
func TestFleetSoakChurnUnderLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	engine := NewEngine(simStart())
	g, err := topology.GenerateMbone(topology.MboneConfig{Nodes: 300}, stats.NewRNG(77))
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNet(engine, NetConfig{Graph: g, Loss: 0.05, Seed: 78})
	if err != nil {
		t.Fatal(err)
	}
	const agents = 6
	fleet, err := NewFleet(engine, net, FleetConfig{
		Nodes: pickNodes(g, agents, 3),
		Space: 64,
		Seed:  79,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	rng := stats.NewRNG(80)
	// Churn driver: every 90 virtual seconds one agent creates a session
	// and one withdraws (if it has any).
	step := 0
	engine.Every(90*time.Second, func() {
		step++
		creator := fleet.Dirs[rng.IntN(agents)]
		if _, err := creator.CreateSession(testDesc(fmt.Sprintf("s%d", step), 191)); err != nil {
			// Space pressure is acceptable; the soak only requires
			// consistency, not unbounded capacity.
			return
		}
		victim := fleet.Dirs[rng.IntN(agents)]
		own := victim.OwnSessions()
		if len(own) > 2 {
			_ = victim.WithdrawSession(own[rng.IntN(len(own))].Key())
		}
	})

	for checkpoint := 0; checkpoint < 8; checkpoint++ {
		engine.RunFor(15 * time.Minute)
		groups := map[string]string{}
		for i, d := range fleet.Dirs {
			for _, s := range d.OwnSessions() {
				g := s.Group.String()
				if owner, dup := groups[g]; dup {
					// A clash may exist transiently; give the protocol one
					// steady-state interval to clear it, then re-check.
					engine.RunFor(6 * time.Minute)
					if stillShared(fleet, g) {
						t.Fatalf("checkpoint %d: %s shared by %s and agent %d, unresolved",
							checkpoint, g, owner, i)
					}
				}
				groups[g] = fmt.Sprintf("agent %d (%s)", i, s.Name)
			}
		}
	}
	// The fleet must have done real work.
	var created uint64
	for _, d := range fleet.Dirs {
		created += d.Metrics().AnnouncementsSent
	}
	if created < 100 {
		t.Fatalf("suspiciously quiet soak: %d announcements", created)
	}
}

func stillShared(f *Fleet, group string) bool {
	count := 0
	for _, d := range f.Dirs {
		for _, s := range d.OwnSessions() {
			if s.Group.String() == group {
				count++
			}
		}
	}
	return count > 1
}
