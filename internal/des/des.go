// Package des is a discrete-event network simulator that drives *real*
// session directory agents (the root sessiondir package) over a topology
// with per-link delay, TTL scoping, and packet loss — the conditions the
// paper's §2.3 analysis reduces to the "invisible fraction" i. It is the
// integration substrate: the same production code paths that run over UDP
// run here under virtual time, so loss/recovery behaviour (back-off
// schedules, third-party defense timing) can be measured in seconds of
// real time rather than hours.
package des

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is one scheduled callback.
type event struct {
	at  time.Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	e := old[len(old)-1]
	*h = old[:len(old)-1]
	return e
}

// Engine is a single-threaded virtual-time event loop. All simulated
// components must be driven from engine callbacks (no goroutines), which
// makes runs perfectly reproducible.
type Engine struct {
	now    time.Time
	events eventHeap
	seq    uint64
}

// NewEngine starts the virtual clock at the given instant.
func NewEngine(start time.Time) *Engine {
	return &Engine{now: start}
}

// Now returns the current virtual time; pass it as a Config.Clock.
func (e *Engine) Now() time.Time { return e.now }

// Schedule runs fn at the given virtual time (clamped to now if past).
func (e *Engine) Schedule(at time.Time, fn func()) {
	if at.Before(e.now) {
		at = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{at: at, seq: e.seq, fn: fn})
}

// After schedules fn after a delay.
func (e *Engine) After(d time.Duration, fn func()) {
	e.Schedule(e.now.Add(d), fn)
}

// Every schedules fn at a fixed period until the engine stops running.
func (e *Engine) Every(period time.Duration, fn func()) {
	if period <= 0 {
		panic("des: non-positive period")
	}
	var tick func()
	tick = func() {
		fn()
		e.After(period, tick)
	}
	e.After(period, tick)
}

// RunUntil processes events in timestamp order until the virtual clock
// reaches deadline. Periodic events keep the queue non-empty, so the
// deadline — not queue exhaustion — bounds the run. It returns the number
// of events processed.
func (e *Engine) RunUntil(deadline time.Time) int {
	processed := 0
	for e.events.Len() > 0 {
		next := e.events[0]
		if next.at.After(deadline) {
			break
		}
		heap.Pop(&e.events)
		e.now = next.at
		next.fn()
		processed++
	}
	if e.now.Before(deadline) {
		e.now = deadline
	}
	return processed
}

// RunFor advances the clock by d.
func (e *Engine) RunFor(d time.Duration) int {
	return e.RunUntil(e.now.Add(d))
}

// Pending returns the number of queued events (diagnostics).
func (e *Engine) Pending() int { return e.events.Len() }

// String implements fmt.Stringer.
func (e *Engine) String() string {
	return fmt.Sprintf("des.Engine{now: %s, pending: %d}", e.now.Format(time.RFC3339), e.events.Len())
}
