package des

import (
	"context"
	"fmt"
	"net/netip"
	"sort"
	"time"

	"sessiondir/internal/mcast"
	"sessiondir/internal/stats"
	"sessiondir/internal/topology"
	"sessiondir/internal/transport"
)

// Net simulates scoped multicast over a topology: a packet sent from an
// attached node with TTL t is delivered to every other attached node
// inside Reach(sender, t), after the shortest-path delay, unless lost
// (independent per-receiver loss, modelling tail loss on the distribution
// tree).
type Net struct {
	engine *Engine
	graph  *topology.Graph
	cache  *topology.ReachCache
	loss   float64
	rng    *stats.RNG
	nodes  map[topology.NodeID]*Endpoint
	// order is the attached nodes in ascending NodeID — the delivery
	// iteration order. Iterating the map directly would draw loss
	// decisions (and assign same-timestamp event sequence numbers) in
	// randomized map order, breaking seed replay.
	order  []topology.NodeID
	filter LinkFilter
}

// LinkFilter lets tests script partitions and link failures: return false
// to drop all traffic from src's node to dst's node. Applied on top of
// scope and loss.
type LinkFilter func(src, dst topology.NodeID) bool

// SetLinkFilter installs (or, with nil, removes) a delivery filter. Takes
// effect for packets sent after the call; packets already in flight are
// delivered (they left the failed region before the cut).
func (n *Net) SetLinkFilter(f LinkFilter) { n.filter = f }

// Partition is a convenience LinkFilter: communication is allowed only
// within each side of the cut. Membership is decided by the given
// predicate (true = side A).
func Partition(sideA func(topology.NodeID) bool) LinkFilter {
	return func(src, dst topology.NodeID) bool {
		return sideA(src) == sideA(dst)
	}
}

// NetConfig parameterises a simulated network.
type NetConfig struct {
	Graph *topology.Graph
	// Loss is the independent per-receiver packet loss probability
	// (the paper's §2.3 uses 2%).
	Loss float64
	Seed uint64
}

// NewNet builds a simulated network on the engine.
func NewNet(engine *Engine, cfg NetConfig) (*Net, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("des: NetConfig.Graph is required")
	}
	if cfg.Loss < 0 || cfg.Loss >= 1 {
		return nil, fmt.Errorf("des: loss %v outside [0,1)", cfg.Loss)
	}
	return &Net{
		engine: engine,
		graph:  cfg.Graph,
		cache:  topology.NewReachCache(cfg.Graph),
		loss:   cfg.Loss,
		rng:    stats.NewRNG(cfg.Seed ^ 0xde5),
		nodes:  make(map[topology.NodeID]*Endpoint),
	}, nil
}

// Attach creates the transport endpoint for a node. One endpoint per node.
func (n *Net) Attach(node topology.NodeID) (*Endpoint, error) {
	if int(node) < 0 || int(node) >= n.graph.NumNodes() {
		return nil, fmt.Errorf("des: node %d outside graph", node)
	}
	if _, dup := n.nodes[node]; dup {
		return nil, fmt.Errorf("des: node %d already attached", node)
	}
	ep := &Endpoint{net: n, node: node}
	n.nodes[node] = ep
	at := sort.Search(len(n.order), func(i int) bool { return n.order[i] >= node })
	n.order = append(n.order, 0)
	copy(n.order[at+1:], n.order[at:])
	n.order[at] = node
	return ep, nil
}

// Endpoint implements transport.Transport over the simulated network.
type Endpoint struct {
	net     *Net
	node    topology.NodeID
	handler transport.Handler
	closed  bool
}

var _ transport.Transport = (*Endpoint)(nil)

// Node returns the endpoint's topology node.
func (e *Endpoint) Node() topology.NodeID { return e.node }

// Send implements transport.Transport: scoped, delayed, lossy delivery.
func (e *Endpoint) Send(_ context.Context, data []byte, scope mcast.TTL) error {
	if e.closed {
		return transport.ErrClosed
	}
	n := e.net
	reach := n.cache.Reach(e.node, scope)
	tree := n.cache.Tree(e.node)
	for _, node := range n.order {
		target := n.nodes[node]
		if target == nil || node == e.node || !reach.Contains(node) {
			continue
		}
		if n.filter != nil && !n.filter(e.node, node) {
			continue // scripted partition or link failure
		}
		if n.rng.Bool(n.loss) {
			continue // lost on the way to this receiver
		}
		delayMs := tree.DelayFromRoot(node)
		cp := make([]byte, len(data))
		copy(cp, data)
		tgt := target
		n.engine.After(time.Duration(delayMs*float64(time.Millisecond)), func() {
			if tgt.closed || tgt.handler == nil {
				return
			}
			tgt.handler(transport.Message{Data: cp})
		})
	}
	return nil
}

// Subscribe implements transport.Transport.
func (e *Endpoint) Subscribe(h transport.Handler) { e.handler = h }

// LocalAddr implements transport.Transport (simulated nodes are unnumbered).
func (e *Endpoint) LocalAddr() netip.AddrPort { return netip.AddrPort{} }

// Close implements transport.Transport.
func (e *Endpoint) Close() error {
	e.closed = true
	e.handler = nil
	delete(e.net.nodes, e.node)
	order := e.net.order
	at := sort.Search(len(order), func(i int) bool { return order[i] >= e.node })
	if at < len(order) && order[at] == e.node {
		e.net.order = append(order[:at], order[at+1:]...)
	}
	return nil
}
