package des

import (
	"fmt"
	"sort"
	"time"

	"sessiondir/internal/par"
)

// ShardedEngine is the conservative parallel extension of Engine: K
// partition wheels, each a plain single-threaded Engine, advanced in
// lockstep epochs of bounded lookahead. Within an epoch every wheel runs
// independently (in parallel, one goroutine per wheel); events that
// cross partitions are not delivered directly but buffered per source
// wheel and merged at the epoch barrier in a fixed total order — (at,
// source wheel, per-source sequence) — before being scheduled into their
// destination wheels.
//
// Determinism argument (the merge step, DESIGN.md §17): each wheel's
// execution inside an epoch is serial and seeded, so the cross-event
// stream a wheel emits — contents, timestamps, and per-source sequence
// numbers — is a pure function of the simulation state at the epoch
// start, independent of how the wheels interleave on real CPUs. The
// barrier merge sorts those streams by a total key with no ties, so the
// delivery order (and therefore every destination wheel's seq
// assignment) is also worker-count-independent. By induction over
// epochs, a ShardedEngine run is bit-identical at any worker count, and
// with one partition it degenerates to exactly Engine's semantics.
//
// The conservative correctness condition is the usual one: Lookahead
// must not exceed the minimum cross-partition latency. A cross event
// whose timestamp lands inside the epoch that emitted it cannot be
// delivered into the past of a concurrently running wheel; it is clamped
// to the epoch boundary — deterministic, but a latency distortion the
// caller opted into by configuring a too-wide epoch.
type ShardedEngine struct {
	wheels  []*Engine
	workers int
	// lookahead is the epoch width: how far every wheel may run ahead of
	// the global clock before the next cross-event exchange.
	lookahead time.Duration
	now       time.Time
	// mail buffers cross-partition events per source wheel. Only wheel i's
	// callbacks append to mail[i], and the epoch barrier is the only
	// reader, so the buffers need no locks.
	mail [][]crossEvent
	seqs []uint64 // per-source cross-event sequence numbers
}

// crossEvent is one buffered cross-partition event awaiting the epoch
// merge.
type crossEvent struct {
	at  time.Time
	src int
	seq uint64
	dst int
	fn  func()
}

// NewShardedEngine returns a partitioned engine with parts wheels (min
// 1) advancing in epochs of width lookahead, run on up to workers
// goroutines (0 = GOMAXPROCS).
func NewShardedEngine(start time.Time, parts int, lookahead time.Duration, workers int) *ShardedEngine {
	if parts < 1 {
		parts = 1
	}
	if lookahead <= 0 {
		panic("des: non-positive lookahead")
	}
	s := &ShardedEngine{
		wheels:    make([]*Engine, parts),
		workers:   workers,
		lookahead: lookahead,
		now:       start,
		mail:      make([][]crossEvent, parts),
		seqs:      make([]uint64, parts),
	}
	for i := range s.wheels {
		s.wheels[i] = NewEngine(start)
	}
	return s
}

// Parts returns the number of partition wheels.
func (s *ShardedEngine) Parts() int { return len(s.wheels) }

// Wheel returns partition p's engine, for scheduling partition-local
// events. Callbacks run on the wheel's goroutine during an epoch; they
// must only touch partition-local state (plus Cross for everything
// else).
func (s *ShardedEngine) Wheel(p int) *Engine { return s.wheels[p] }

// Now returns the global virtual clock: the last completed epoch
// boundary.
func (s *ShardedEngine) Now() time.Time { return s.now }

// Cross schedules fn onto partition dst at the given virtual time, from
// a callback currently executing on partition src's wheel. The event is
// buffered and delivered at the next epoch barrier; timestamps inside
// the emitting epoch are clamped to its boundary (see the type comment).
func (s *ShardedEngine) Cross(src, dst int, at time.Time, fn func()) {
	s.seqs[src]++
	s.mail[src] = append(s.mail[src], crossEvent{at: at, src: src, seq: s.seqs[src], dst: dst, fn: fn})
}

// RunUntil advances every wheel to deadline in lookahead-wide epochs,
// exchanging cross-partition events at each barrier. Returns the total
// number of events processed across wheels.
func (s *ShardedEngine) RunUntil(deadline time.Time) int {
	processed := 0
	for s.now.Before(deadline) {
		epochEnd := s.now.Add(s.lookahead)
		if epochEnd.After(deadline) {
			epochEnd = deadline
		}
		counts := make([]int, len(s.wheels))
		par.For(s.workers, len(s.wheels), func(i int) {
			counts[i] = s.wheels[i].RunUntil(epochEnd)
		})
		for _, c := range counts {
			processed += c
		}
		s.now = epochEnd
		s.deliverMail(epochEnd)
	}
	return processed
}

// RunFor advances the global clock by d.
func (s *ShardedEngine) RunFor(d time.Duration) int {
	return s.RunUntil(s.now.Add(d))
}

// deliverMail is the barrier's deterministic merge: drain every source
// buffer, impose the total (at, src, seq) order, and schedule into the
// destination wheels — clamping into-the-past timestamps to the epoch
// boundary just passed.
func (s *ShardedEngine) deliverMail(epochEnd time.Time) {
	var all []crossEvent
	for i := range s.mail {
		all = append(all, s.mail[i]...)
		s.mail[i] = s.mail[i][:0]
	}
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if !a.at.Equal(b.at) {
			return a.at.Before(b.at)
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
	for _, ev := range all {
		at := ev.at
		if at.Before(epochEnd) {
			at = epochEnd
		}
		s.wheels[ev.dst].Schedule(at, ev.fn)
	}
}

// Pending sums the queued events across wheels plus undelivered cross
// events (diagnostics).
func (s *ShardedEngine) Pending() int {
	n := 0
	for _, w := range s.wheels {
		n += w.Pending()
	}
	for i := range s.mail {
		n += len(s.mail[i])
	}
	return n
}

// String implements fmt.Stringer.
func (s *ShardedEngine) String() string {
	return fmt.Sprintf("des.ShardedEngine{now: %s, parts: %d, pending: %d}",
		s.now.Format(time.RFC3339), len(s.wheels), s.Pending())
}
