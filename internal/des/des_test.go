package des

import (
	"context"
	"sync"
	"testing"
	"time"

	"sessiondir/internal/mcast"
	"sessiondir/internal/topology"
	"sessiondir/internal/transport"
)

func simStart() time.Time {
	return time.Date(1998, 9, 1, 12, 0, 0, 0, time.UTC)
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(simStart())
	var order []int
	e.After(3*time.Second, func() { order = append(order, 3) })
	e.After(1*time.Second, func() { order = append(order, 1) })
	e.After(2*time.Second, func() { order = append(order, 2) })
	// Same-time events run in scheduling order.
	e.After(1*time.Second, func() { order = append(order, 11) })
	n := e.RunFor(10 * time.Second)
	if n != 4 {
		t.Fatalf("processed %d", n)
	}
	want := []int{1, 11, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
	if e.Now() != simStart().Add(10*time.Second) {
		t.Fatalf("clock = %v", e.Now())
	}
}

func TestEngineDeadlineStopsBeforeLaterEvents(t *testing.T) {
	e := NewEngine(simStart())
	ran := false
	e.After(5*time.Second, func() { ran = true })
	e.RunFor(2 * time.Second)
	if ran {
		t.Fatal("future event ran")
	}
	e.RunFor(4 * time.Second)
	if !ran {
		t.Fatal("due event skipped")
	}
}

func TestEngineEvery(t *testing.T) {
	e := NewEngine(simStart())
	count := 0
	e.Every(time.Second, func() { count++ })
	e.RunFor(5500 * time.Millisecond)
	if count != 5 {
		t.Fatalf("periodic ran %d times", count)
	}
	if e.Pending() == 0 {
		t.Fatal("periodic chain broken")
	}
	if e.String() == "" {
		t.Fatal("String")
	}
}

func TestEngineSchedulePastClamps(t *testing.T) {
	e := NewEngine(simStart())
	ran := false
	e.Schedule(simStart().Add(-time.Hour), func() { ran = true })
	e.RunFor(time.Millisecond)
	if !ran {
		t.Fatal("past event dropped")
	}
}

func TestEngineEveryZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine(simStart()).Every(0, func() {})
}

func lineTopo(t *testing.T, n int) *topology.Graph {
	t.Helper()
	g := topology.NewGraph(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddLink(topology.NodeID(i), topology.NodeID(i+1), 1, 1, 10)
	}
	return g
}

func TestNetValidation(t *testing.T) {
	e := NewEngine(simStart())
	if _, err := NewNet(e, NetConfig{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := NewNet(e, NetConfig{Graph: lineTopo(t, 2), Loss: 1.0}); err == nil {
		t.Fatal("loss=1 accepted")
	}
	net, err := NewNet(e, NetConfig{Graph: lineTopo(t, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Attach(5); err == nil {
		t.Fatal("out-of-graph attach accepted")
	}
	if _, err := net.Attach(0); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Attach(0); err == nil {
		t.Fatal("duplicate attach accepted")
	}
}

func TestNetScopedDelayedDelivery(t *testing.T) {
	e := NewEngine(simStart())
	g := lineTopo(t, 5)
	net, err := NewNet(e, NetConfig{Graph: g, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	src, err := net.Attach(0)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	got := map[topology.NodeID][]time.Time{}
	for _, node := range []topology.NodeID{2, 4} {
		ep, err := net.Attach(node)
		if err != nil {
			t.Fatal(err)
		}
		n := node
		ep.Subscribe(func(transport.Message) {
			mu.Lock()
			got[n] = append(got[n], e.Now())
			mu.Unlock()
		})
	}
	// TTL 3 reaches nodes 1,2 but not 4 (needs TTL 5).
	if err := src.Send(context.Background(), []byte("x"), mcast.TTL(3)); err != nil {
		t.Fatal(err)
	}
	e.RunFor(time.Second)
	if len(got[2]) != 1 {
		t.Fatalf("node2 deliveries = %d", len(got[2]))
	}
	if len(got[4]) != 0 {
		t.Fatal("out-of-scope node received the packet")
	}
	// Delivery delay: 2 hops × 10 ms.
	if d := got[2][0].Sub(simStart()); d != 20*time.Millisecond {
		t.Fatalf("delivery delay %v", d)
	}
}

func TestNetLossRate(t *testing.T) {
	e := NewEngine(simStart())
	g := lineTopo(t, 2)
	net, err := NewNet(e, NetConfig{Graph: g, Loss: 0.3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	src, _ := net.Attach(0)
	dst, _ := net.Attach(1)
	received := 0
	dst.Subscribe(func(transport.Message) { received++ })
	const sent = 5000
	for i := 0; i < sent; i++ {
		if err := src.Send(context.Background(), []byte("x"), 10); err != nil {
			t.Fatal(err)
		}
	}
	e.RunFor(time.Minute)
	rate := float64(received) / sent
	if rate < 0.65 || rate > 0.75 {
		t.Fatalf("delivery rate %v, want ≈0.70", rate)
	}
}

func TestNetClosedEndpoint(t *testing.T) {
	e := NewEngine(simStart())
	net, _ := NewNet(e, NetConfig{Graph: lineTopo(t, 2), Seed: 3})
	src, _ := net.Attach(0)
	dst, _ := net.Attach(1)
	delivered := false
	dst.Subscribe(func(transport.Message) { delivered = true })
	dst.Close()
	if err := src.Send(context.Background(), []byte("x"), 10); err != nil {
		t.Fatal(err)
	}
	e.RunFor(time.Second)
	if delivered {
		t.Fatal("closed endpoint received a packet")
	}
	src.Close()
	if err := src.Send(context.Background(), []byte("x"), 10); err == nil {
		t.Fatal("closed endpoint sent a packet")
	}
	if src.LocalAddr().IsValid() {
		t.Fatal("simulated endpoint should be unnumbered")
	}
}
