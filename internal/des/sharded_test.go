package des

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// ringRun drives a token ring over a ShardedEngine: each partition
// receives tokens, logs them against its wheel clock, and forwards them
// to the next partition one cross-latency later. The per-partition logs
// are the observable: they must be bit-identical at any worker count.
func ringRun(t *testing.T, parts, workers, tokens, hops int) [][]string {
	t.Helper()
	const (
		lookahead = 10 * time.Millisecond
		latency   = 10 * time.Millisecond // == lookahead: the conservative bound
	)
	s := NewShardedEngine(simStart(), parts, lookahead, workers)
	logs := make([][]string, parts)

	var hop func(p, token, hopsLeft int)
	hop = func(p, token, hopsLeft int) {
		at := s.Wheel(p).Now()
		logs[p] = append(logs[p], fmt.Sprintf("tok%d@%s hops=%d", token, at.Format("15:04:05.000"), hopsLeft))
		if hopsLeft == 0 {
			return
		}
		dst := (p + 1) % parts
		s.Cross(p, dst, at.Add(latency), func() { hop(dst, token, hopsLeft-1) })
	}
	for tok := 0; tok < tokens; tok++ {
		p := tok % parts
		token := tok
		// Stagger injections so epochs carry different token mixes.
		s.Wheel(p).Schedule(simStart().Add(time.Duration(tok)*3*time.Millisecond), func() {
			hop(p, token, hops)
		})
	}
	s.RunUntil(simStart().Add(time.Duration(hops+tokens) * 50 * time.Millisecond))
	if s.Pending() != 0 {
		t.Fatalf("ring did not drain: %d pending", s.Pending())
	}
	return logs
}

// The tentpole contract: a partitioned run is bit-identical at any
// worker count, because each wheel's epoch execution is serial and the
// barrier merge imposes a total (at, src, seq) order on cross events.
func TestShardedEngineWorkerCountInvariance(t *testing.T) {
	for _, parts := range []int{1, 4, 8} {
		want := ringRun(t, parts, 1, 12, 6)
		for _, workers := range []int{2, 4, 8, 0} {
			got := ringRun(t, parts, workers, 12, 6)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("parts=%d workers=%d diverges from serial:\n got  %v\n want %v", parts, workers, got, want)
			}
		}
	}
}

// With one partition the sharded engine must behave exactly like a plain
// Engine fed the same schedule — including event ordering at equal
// timestamps, which both resolve by schedule sequence.
func TestShardedEngineSinglePartitionMatchesEngine(t *testing.T) {
	script := func(schedule func(at time.Time, fn func()), log *[]int) {
		base := simStart()
		for i := 0; i < 8; i++ {
			i := i
			// Two events per timestamp to exercise tie-breaking.
			schedule(base.Add(time.Duration(i/2)*time.Millisecond), func() { *log = append(*log, i) })
		}
	}

	var plainLog []int
	e := NewEngine(simStart())
	script(e.Schedule, &plainLog)
	e.RunFor(time.Second)

	var shardedLog []int
	s := NewShardedEngine(simStart(), 1, 5*time.Millisecond, 4)
	script(s.Wheel(0).Schedule, &shardedLog)
	s.RunFor(time.Second)

	if !reflect.DeepEqual(shardedLog, plainLog) {
		t.Fatalf("one-partition run diverges from Engine: got %v want %v", shardedLog, plainLog)
	}
	if s.Now() != e.Now() {
		t.Fatalf("clocks diverge: sharded %v, engine %v", s.Now(), e.Now())
	}
}

// Cross events that share a timestamp must deliver in (src, seq) order —
// the merge's tie-break — regardless of which buffer drained first.
func TestShardedEngineMergeTotalOrder(t *testing.T) {
	run := func(workers int) []string {
		s := NewShardedEngine(simStart(), 4, 10*time.Millisecond, workers)
		var log []string
		at := simStart().Add(25 * time.Millisecond) // lands in a later epoch
		for src := 3; src >= 1; src-- {
			src := src
			s.Wheel(src).Schedule(simStart().Add(time.Millisecond), func() {
				for seq := 0; seq < 3; seq++ {
					src, seq := src, seq
					s.Cross(src, 0, at, func() { log = append(log, fmt.Sprintf("src%d#%d", src, seq)) })
				}
			})
		}
		s.RunFor(100 * time.Millisecond)
		return log
	}
	want := []string{
		"src1#0", "src1#1", "src1#2",
		"src2#0", "src2#1", "src2#2",
		"src3#0", "src3#1", "src3#2",
	}
	for _, workers := range []int{1, 4} {
		if got := run(workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d merge order: got %v want %v", workers, got, want)
		}
	}
}

// A cross event aimed inside the epoch that emitted it cannot be
// delivered into a peer wheel's past; it is clamped to the epoch
// boundary, deterministically.
func TestShardedEngineClampsIntraEpochCross(t *testing.T) {
	s := NewShardedEngine(simStart(), 2, 10*time.Millisecond, 1)
	var deliveredAt time.Time
	s.Wheel(0).Schedule(simStart().Add(time.Millisecond), func() {
		// Aimed 1ms later — inside the same epoch, unsatisfiable.
		s.Cross(0, 1, simStart().Add(2*time.Millisecond), func() {
			deliveredAt = s.Wheel(1).Now()
		})
	})
	s.RunFor(50 * time.Millisecond)
	if want := simStart().Add(10 * time.Millisecond); !deliveredAt.Equal(want) {
		t.Fatalf("clamped delivery at %v, want epoch boundary %v", deliveredAt, want)
	}
}
