package des

import (
	"fmt"
	"net/netip"
	"time"

	"sessiondir"
	"sessiondir/internal/announce"
	"sessiondir/internal/clash"
	"sessiondir/internal/mcast"
	"sessiondir/internal/topology"
)

// Fleet is a set of real sessiondir.Directory agents attached to a
// simulated network under one virtual clock — the full production protocol
// stack running inside the DES.
type Fleet struct {
	Engine *Engine
	Net    *Net
	Dirs   []*sessiondir.Directory
	Nodes  []topology.NodeID
}

// FleetConfig parameterises a fleet.
type FleetConfig struct {
	// Nodes lists where to attach one directory each.
	Nodes []topology.NodeID
	// Space is the shared allocation space size.
	Space uint32
	// Backoff overrides the announcement schedule (zero = library default).
	Backoff announce.Backoff
	// Delay overrides the third-party defence delay distribution
	// (nil = library default exponential).
	Delay clash.DelayDist
	// StepPeriod is how often each directory's timer step runs
	// (0 = 500 ms, finer than the real daemon's 1 s to keep virtual-time
	// tests crisp).
	StepPeriod time.Duration
	// OnEvent receives every directory's events, tagged by index.
	OnEvent func(idx int, e sessiondir.Event)
	Seed    uint64
}

// NewFleet attaches one directory per node and schedules their timer
// steps on the engine.
func NewFleet(engine *Engine, net *Net, cfg FleetConfig) (*Fleet, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("des: fleet needs nodes")
	}
	if cfg.Space == 0 {
		cfg.Space = 256
	}
	step := cfg.StepPeriod
	if step == 0 {
		step = 500 * time.Millisecond
	}
	f := &Fleet{Engine: engine, Net: net, Nodes: cfg.Nodes}
	for i, node := range cfg.Nodes {
		ep, err := net.Attach(node)
		if err != nil {
			return nil, err
		}
		// Synthesise a stable origin address from the node id.
		origin := netip.AddrFrom4([4]byte{10, byte(node >> 8), byte(node), byte(i)})
		dcfg := sessiondir.Config{
			Origin:    origin,
			Transport: ep,
			Space:     mcast.SyntheticSpace(cfg.Space),
			Clock:     engine.Now,
			Seed:      cfg.Seed + uint64(i)*7919,
			Backoff:   cfg.Backoff,
			Delay:     cfg.Delay,
		}
		if cfg.OnEvent != nil {
			idx := i
			dcfg.OnEvent = func(e sessiondir.Event) { cfg.OnEvent(idx, e) }
		}
		d, err := sessiondir.New(dcfg)
		if err != nil {
			return nil, err
		}
		f.Dirs = append(f.Dirs, d)
		dir := d
		engine.Every(step, func() { dir.Step(engine.Now()) })
	}
	return f, nil
}

// Close shuts every directory down.
func (f *Fleet) Close() {
	for _, d := range f.Dirs {
		d.Close()
	}
}
