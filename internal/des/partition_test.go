package des

import (
	"testing"
	"time"

	"sessiondir/internal/stats"
	"sessiondir/internal/topology"
	"sessiondir/internal/transport"
)

func TestLinkFilterBlocksAndHeals(t *testing.T) {
	e := NewEngine(simStart())
	g := lineTopo(t, 4)
	net, err := NewNet(e, NetConfig{Graph: g, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	src, _ := net.Attach(0)
	dst, _ := net.Attach(3)
	got := 0
	dst.Subscribe(func(transport.Message) { got++ })

	// Partition: nodes 0-1 vs 2-3.
	net.SetLinkFilter(Partition(func(n topology.NodeID) bool { return n < 2 }))
	src.Send(nil, []byte("blocked"), 255) //nolint:errcheck
	e.RunFor(time.Second)
	if got != 0 {
		t.Fatal("partitioned packet delivered")
	}
	// Heal.
	net.SetLinkFilter(nil)
	src.Send(nil, []byte("ok"), 255) //nolint:errcheck
	e.RunFor(time.Second)
	if got != 1 {
		t.Fatalf("healed deliveries = %d", got)
	}
}

// TestFleetPartitionHealEndToEnd scripts the paper's motivating failure
// (a transatlantic partition) through the production stack using the
// link-filter API rather than construction tricks: two agents allocate
// the same address while split; the protocol untangles them after the
// heal.
func TestFleetPartitionHealEndToEnd(t *testing.T) {
	engine := NewEngine(simStart())
	g, err := topology.GenerateMbone(topology.MboneConfig{Nodes: 300}, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNet(engine, NetConfig{Graph: g, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	uk := topology.NodesInCountry(g, "UK")
	us := topology.NodesInCountry(g, "US")
	fleet, err := NewFleet(engine, net, FleetConfig{
		Nodes: []topology.NodeID{uk[0], us[0]},
		Space: 2,
		Seed:  11,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	// Split Europe from the world.
	isEurope := func(n topology.NodeID) bool { return g.Nodes[n].Continent == "Europe" }
	net.SetLinkFilter(Partition(isEurope))

	if _, err := fleet.Dirs[0].CreateSession(testDesc("eu", 191)); err != nil {
		t.Fatal(err)
	}
	engine.RunFor(time.Minute)
	if _, err := fleet.Dirs[1].CreateSession(testDesc("us", 191)); err != nil {
		t.Fatal(err)
	}
	engine.RunFor(time.Minute)
	g0 := fleet.Dirs[0].OwnSessions()[0].Group
	g1 := fleet.Dirs[1].OwnSessions()[0].Group
	if g0 != g1 {
		t.Fatalf("test setup: expected a latent clash, got %s vs %s", g0, g1)
	}

	// Heal; within a couple of steady-state intervals the clash resolves.
	net.SetLinkFilter(nil)
	engine.RunFor(10 * time.Minute)
	g0 = fleet.Dirs[0].OwnSessions()[0].Group
	g1 = fleet.Dirs[1].OwnSessions()[0].Group
	if g0 == g1 {
		t.Fatalf("clash unresolved after heal: both on %s", g0)
	}
}
