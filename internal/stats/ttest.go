package stats

import "math"

// WelchT computes Welch's t statistic and approximate degrees of freedom
// for two summaries — the unequal-variance t-test the experiment suite
// uses to check that an algorithm comparison is signal, not noise.
// Returns NaN statistics when either sample is too small.
func WelchT(a, b *Summary) (t float64, df float64) {
	if a.N() < 2 || b.N() < 2 {
		return math.NaN(), math.NaN()
	}
	va := a.Variance() / float64(a.N())
	vb := b.Variance() / float64(b.N())
	if va+vb == 0 {
		if a.Mean() == b.Mean() {
			return 0, float64(a.N() + b.N() - 2)
		}
		return math.Inf(1), float64(a.N() + b.N() - 2)
	}
	t = (a.Mean() - b.Mean()) / math.Sqrt(va+vb)
	df = (va + vb) * (va + vb) /
		(va*va/float64(a.N()-1) + vb*vb/float64(b.N()-1))
	return t, df
}

// SignificantlyGreater reports whether a's mean exceeds b's with |t| above
// the ~99% two-sided critical value for the Welch degrees of freedom
// (approximated: 2.58 for large df, inflated for small samples). It is a
// pragmatic gate for test assertions, not a full p-value machinery.
func SignificantlyGreater(a, b *Summary) bool {
	t, df := WelchT(a, b)
	if math.IsNaN(t) {
		return false
	}
	crit := 2.58
	if df < 30 {
		crit = 2.75
	}
	if df < 10 {
		crit = 3.25
	}
	return t > crit
}
