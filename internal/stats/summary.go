package stats

import (
	"math"
	"sort"
)

// Summary accumulates scalar observations and reports moments. The zero
// value is an empty summary ready for use.
type Summary struct {
	n    int64
	mean float64
	m2   float64 // sum of squared deviations (Welford)
	min  float64
	max  float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.mean, s.m2 = x, 0
		s.min, s.max = x, x
		return
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
}

// N returns the observation count.
func (s *Summary) N() int64 { return s.n }

// Mean returns the sample mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation (0 when empty).
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation (0 when empty).
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Variance returns the unbiased sample variance (0 for n < 2).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// Quantile returns the q-quantile of xs using linear interpolation between
// order statistics. xs is not modified. Returns NaN on empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs (NaN on empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
