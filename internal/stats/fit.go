package stats

import (
	"fmt"
	"math"
)

// PowerLawFit fits y ≈ c·x^b by least squares in log–log space and returns
// the exponent b and log-intercept log(c). The paper's headline scaling
// claims are exponent claims — random allocation clashes after O(√n)
// (b ≈ 0.5), perfectly partitioned allocation after O(n) (b ≈ 1) — so the
// tests assert fitted exponents rather than absolute values.
//
// All inputs must be positive; it returns an error otherwise or when
// fewer than two distinct x values are supplied.
func PowerLawFit(xs, ys []float64) (exponent, logCoeff float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, fmt.Errorf("stats: PowerLawFit length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, 0, fmt.Errorf("stats: PowerLawFit needs at least 2 points")
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(xs))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return 0, 0, fmt.Errorf("stats: PowerLawFit needs positive values, got (%v, %v)", xs[i], ys[i])
		}
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	den := n*sxx - sx*sx
	if den <= 0 {
		return 0, 0, fmt.Errorf("stats: PowerLawFit needs at least 2 distinct x values")
	}
	exponent = (n*sxy - sx*sy) / den
	logCoeff = (sy - exponent*sx) / n
	return exponent, logCoeff, nil
}

// Correlation returns the Pearson correlation coefficient of xs and ys,
// or NaN for degenerate inputs.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}
