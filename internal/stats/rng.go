// Package stats provides the deterministic randomness, histogram, and
// summary-statistics plumbing shared by the simulators and allocators.
//
// Every stochastic component in this repository draws from an explicitly
// seeded *RNG so that experiments are reproducible run-to-run: the same
// seed always yields the same topology, the same session workload, and the
// same allocation decisions.
package stats

import (
	"math/rand/v2"
)

// RNG is a deterministic random number generator. It wraps math/rand/v2's
// PCG source and adds the sampling helpers the paper's simulations need.
// RNG is not safe for concurrent use; derive independent child streams with
// Split for concurrent workers.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a generator seeded with seed. Two RNGs built from the same
// seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{r: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Split derives an independent child generator. The child's stream is a pure
// function of the parent's state at the time of the call, so splitting at
// the same point in two identical runs yields identical children.
func (g *RNG) Split() *RNG {
	return &RNG{r: rand.New(rand.NewPCG(g.r.Uint64(), g.r.Uint64()))}
}

// IntN returns a uniform int in [0, n). It panics if n <= 0, matching
// math/rand/v2 semantics.
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// Uint64 returns a uniform 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Float64 returns a uniform float in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// ExpFloat64 returns an exponentially distributed value with rate 1.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// NormFloat64 returns a standard normal value.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle randomises the order of n elements using the provided swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Pick returns a uniformly chosen element of xs. It panics on an empty slice.
func Pick[T any](g *RNG, xs []T) T {
	return xs[g.IntN(len(xs))]
}

// WeightedChoice is one outcome of a discrete distribution.
type WeightedChoice[T any] struct {
	Value  T
	Weight float64
}

// PickWeighted samples from a discrete distribution given by choices.
// Weights need not sum to one; non-positive weights are treated as zero.
// It panics if all weights are zero or the slice is empty.
func PickWeighted[T any](g *RNG, choices []WeightedChoice[T]) T {
	var total float64
	for _, c := range choices {
		if c.Weight > 0 {
			total += c.Weight
		}
	}
	if total <= 0 {
		panic("stats: PickWeighted requires a positive total weight")
	}
	x := g.Float64() * total
	for _, c := range choices {
		if c.Weight <= 0 {
			continue
		}
		x -= c.Weight
		if x < 0 {
			return c.Value
		}
	}
	// Floating point slack: return the last positive-weight choice.
	for i := len(choices) - 1; i >= 0; i-- {
		if choices[i].Weight > 0 {
			return choices[i].Value
		}
	}
	panic("stats: unreachable")
}
