package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPowerLawFitExact(t *testing.T) {
	// y = 3·x^0.5
	xs := []float64{1, 4, 9, 16, 100}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Sqrt(x)
	}
	b, logC, err := PowerLawFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-0.5) > 1e-9 {
		t.Fatalf("exponent = %v", b)
	}
	if math.Abs(math.Exp(logC)-3) > 1e-9 {
		t.Fatalf("coefficient = %v", math.Exp(logC))
	}
}

func TestPowerLawFitLinear(t *testing.T) {
	xs := []float64{10, 20, 40, 80}
	ys := []float64{5, 10, 20, 40}
	b, _, err := PowerLawFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-1) > 1e-9 {
		t.Fatalf("exponent = %v", b)
	}
}

func TestPowerLawFitErrors(t *testing.T) {
	if _, _, err := PowerLawFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, _, err := PowerLawFit([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, _, err := PowerLawFit([]float64{1, -2}, []float64{1, 1}); err == nil {
		t.Fatal("negative x accepted")
	}
	if _, _, err := PowerLawFit([]float64{1, 2}, []float64{0, 1}); err == nil {
		t.Fatal("zero y accepted")
	}
	if _, _, err := PowerLawFit([]float64{5, 5, 5}, []float64{1, 2, 3}); err == nil {
		t.Fatal("degenerate x accepted")
	}
}

func TestPowerLawFitRecoversExponentProperty(t *testing.T) {
	err := quick.Check(func(bRaw int8, cRaw uint8) bool {
		b := float64(bRaw) / 64.0 // exponents in [-2, 2)
		c := float64(cRaw)/32.0 + 0.1
		xs := []float64{2, 5, 17, 120, 990}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = c * math.Pow(x, b)
		}
		gotB, gotLogC, err := PowerLawFit(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(gotB-b) < 1e-6 && math.Abs(math.Exp(gotLogC)-c) < 1e-6*c+1e-9
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCorrelation(t *testing.T) {
	if c := Correlation([]float64{1, 2, 3}, []float64{2, 4, 6}); math.Abs(c-1) > 1e-12 {
		t.Fatalf("perfect positive = %v", c)
	}
	if c := Correlation([]float64{1, 2, 3}, []float64{6, 4, 2}); math.Abs(c+1) > 1e-12 {
		t.Fatalf("perfect negative = %v", c)
	}
	if !math.IsNaN(Correlation([]float64{1, 1}, []float64{2, 3})) {
		t.Fatal("constant xs should be NaN")
	}
	if !math.IsNaN(Correlation([]float64{1}, []float64{2})) {
		t.Fatal("single point should be NaN")
	}
}
