package stats

import (
	"math"
	"testing"
)

func summaryOf(xs ...float64) *Summary {
	var s Summary
	for _, x := range xs {
		s.Add(x)
	}
	return &s
}

func TestWelchTKnownCase(t *testing.T) {
	// Classic textbook case: clearly separated samples.
	a := summaryOf(27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4)
	b := summaryOf(27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.0, 23.9)
	tt, df := WelchT(a, b)
	// Reference values computed independently: t ≈ -2.835, df ≈ 27.71.
	if math.Abs(tt+2.835) > 0.01 {
		t.Fatalf("t = %v, want ≈ -2.835", tt)
	}
	if math.Abs(df-27.71) > 0.1 {
		t.Fatalf("df = %v, want ≈ 27.71", df)
	}
}

func TestWelchTDegenerate(t *testing.T) {
	small := summaryOf(1)
	other := summaryOf(1, 2, 3)
	if tt, _ := WelchT(small, other); !math.IsNaN(tt) {
		t.Fatal("tiny sample should be NaN")
	}
	same := summaryOf(5, 5, 5)
	if tt, _ := WelchT(same, summaryOf(5, 5, 5)); tt != 0 {
		t.Fatalf("identical constant samples: t = %v", tt)
	}
	if tt, _ := WelchT(summaryOf(5, 5, 5), summaryOf(6, 6, 6)); !math.IsInf(tt, 1) && !math.IsInf(tt, -1) {
		t.Fatalf("distinct constant samples: t = %v", tt)
	}
}

func TestSignificantlyGreater(t *testing.T) {
	rng := NewRNG(3)
	var big, small Summary
	for i := 0; i < 40; i++ {
		big.Add(100 + rng.NormFloat64()*5)
		small.Add(50 + rng.NormFloat64()*5)
	}
	if !SignificantlyGreater(&big, &small) {
		t.Fatal("clear separation not detected")
	}
	if SignificantlyGreater(&small, &big) {
		t.Fatal("reversed comparison accepted")
	}
	// Overlapping samples from the same distribution: rarely significant.
	var x, y Summary
	for i := 0; i < 40; i++ {
		x.Add(rng.NormFloat64())
		y.Add(rng.NormFloat64())
	}
	if SignificantlyGreater(&x, &y) && SignificantlyGreater(&y, &x) {
		t.Fatal("both directions significant")
	}
	if SignificantlyGreater(summaryOf(1), summaryOf(0)) {
		t.Fatal("tiny samples should never be significant")
	}
}
