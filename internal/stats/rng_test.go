package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %d vs %d", i, av, bv)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() && c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical streams")
	}
	// Determinism of splits: same construction → same child stream.
	p2 := NewRNG(7)
	d1 := p2.Split()
	e1 := NewRNG(7).Split()
	if d1.Uint64() != e1.Uint64() {
		t.Fatal("split is not deterministic")
	}
}

func TestIntNRange(t *testing.T) {
	g := NewRNG(3)
	err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := g.IntN(n)
		return v >= 0 && v < n
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Range(t *testing.T) {
	g := NewRNG(11)
	for i := 0; i < 10000; i++ {
		f := g.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	g := NewRNG(5)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if g.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency %v", p)
	}
	if g.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !g.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
	if g.Bool(-0.5) {
		t.Fatal("Bool(-0.5) returned true")
	}
	if !g.Bool(1.5) {
		t.Fatal("Bool(1.5) returned false")
	}
}

func TestPick(t *testing.T) {
	g := NewRNG(9)
	xs := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Pick(g, xs)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Pick only produced %v", seen)
	}
}

func TestPickWeighted(t *testing.T) {
	g := NewRNG(13)
	choices := []WeightedChoice[string]{
		{Value: "rare", Weight: 1},
		{Value: "common", Weight: 9},
		{Value: "never", Weight: 0},
		{Value: "negative", Weight: -3},
	}
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[PickWeighted(g, choices)]++
	}
	if counts["never"] != 0 || counts["negative"] != 0 {
		t.Fatalf("zero/negative weight sampled: %v", counts)
	}
	frac := float64(counts["common"]) / n
	if math.Abs(frac-0.9) > 0.02 {
		t.Fatalf("common frequency %v, want ~0.9", frac)
	}
}

func TestPickWeightedPanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PickWeighted(NewRNG(1), []WeightedChoice[int]{{Value: 1, Weight: 0}})
}

func TestPermIsPermutation(t *testing.T) {
	g := NewRNG(17)
	p := g.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}
