package stats

import (
	"fmt"
	"sort"
	"strings"
)

// IntHistogram counts occurrences of small non-negative integer values
// (hop counts, responder counts, TTLs). The zero value is ready to use.
type IntHistogram struct {
	counts []int64
	total  int64
}

// Add records one observation of v. Negative values panic: the histogram
// models counts of naturally non-negative quantities.
func (h *IntHistogram) Add(v int) {
	if v < 0 {
		panic(fmt.Sprintf("stats: IntHistogram.Add(%d): negative value", v))
	}
	if v >= len(h.counts) {
		grown := make([]int64, v+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[v]++
	h.total++
}

// AddN records n observations of v.
func (h *IntHistogram) AddN(v int, n int64) {
	if n <= 0 {
		return
	}
	h.Add(v)
	h.counts[v] += n - 1
	h.total += n - 1
}

// Count returns the number of observations of v.
func (h *IntHistogram) Count(v int) int64 {
	if v < 0 || v >= len(h.counts) {
		return 0
	}
	return h.counts[v]
}

// Total returns the number of observations recorded.
func (h *IntHistogram) Total() int64 { return h.total }

// Max returns the largest value observed, or -1 if empty.
func (h *IntHistogram) Max() int {
	for v := len(h.counts) - 1; v >= 0; v-- {
		if h.counts[v] > 0 {
			return v
		}
	}
	return -1
}

// Min returns the smallest value observed, or -1 if empty.
func (h *IntHistogram) Min() int {
	for v := 0; v < len(h.counts); v++ {
		if h.counts[v] > 0 {
			return v
		}
	}
	return -1
}

// Mode returns the most frequent value, breaking ties toward the smaller
// value, or -1 if the histogram is empty.
func (h *IntHistogram) Mode() int {
	best, bestCount := -1, int64(0)
	for v, c := range h.counts {
		if c > bestCount {
			best, bestCount = v, c
		}
	}
	return best
}

// Mean returns the mean observed value, or 0 if empty.
func (h *IntHistogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for v, c := range h.counts {
		sum += float64(v) * float64(c)
	}
	return sum / float64(h.total)
}

// Quantile returns the smallest value v such that at least q of the mass is
// at or below v. q is clamped to [0,1]. Returns -1 if empty.
func (h *IntHistogram) Quantile(q float64) int {
	if h.total == 0 {
		return -1
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(h.total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for v, c := range h.counts {
		cum += c
		if cum >= target {
			return v
		}
	}
	return h.Max()
}

// Normalized returns the histogram as value→fraction pairs in value order,
// omitting zero buckets. This is the form Figure 10 plots.
func (h *IntHistogram) Normalized() []BinFraction {
	if h.total == 0 {
		return nil
	}
	out := make([]BinFraction, 0, len(h.counts))
	for v, c := range h.counts {
		if c > 0 {
			out = append(out, BinFraction{Value: v, Fraction: float64(c) / float64(h.total)})
		}
	}
	return out
}

// BinFraction is one normalised histogram bin.
type BinFraction struct {
	Value    int
	Fraction float64
}

// String renders a compact textual view, useful in test failures.
func (h *IntHistogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hist{n=%d", h.total)
	for _, bin := range h.Normalized() {
		fmt.Fprintf(&b, " %d:%.3f", bin.Value, bin.Fraction)
	}
	b.WriteString("}")
	return b.String()
}

// MedianFilter smooths xs with a sliding median of the given odd window,
// replicating edge values at the boundaries. The paper applies a median
// filter to de-noise the steady-state clash-probability tables (§2.6).
// It returns a new slice; xs is not modified. window must be odd and >= 1.
func MedianFilter(xs []float64, window int) []float64 {
	if window < 1 || window%2 == 0 {
		panic(fmt.Sprintf("stats: MedianFilter window %d must be odd and positive", window))
	}
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	half := window / 2
	buf := make([]float64, 0, window)
	for i := range xs {
		buf = buf[:0]
		for j := i - half; j <= i+half; j++ {
			k := j
			if k < 0 {
				k = 0
			}
			if k >= len(xs) {
				k = len(xs) - 1
			}
			buf = append(buf, xs[k])
		}
		sort.Float64s(buf)
		out[i] = buf[len(buf)/2]
	}
	return out
}
