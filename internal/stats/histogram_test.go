package stats

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	var h IntHistogram
	if h.Total() != 0 || h.Max() != -1 || h.Min() != -1 || h.Mode() != -1 {
		t.Fatal("empty histogram not empty")
	}
	for _, v := range []int{3, 3, 3, 7, 1} {
		h.Add(v)
	}
	if h.Total() != 5 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Count(3) != 3 || h.Count(7) != 1 || h.Count(2) != 0 || h.Count(-1) != 0 || h.Count(99) != 0 {
		t.Fatal("bad counts")
	}
	if h.Mode() != 3 {
		t.Fatalf("Mode = %d", h.Mode())
	}
	if h.Min() != 1 || h.Max() != 7 {
		t.Fatalf("Min/Max = %d/%d", h.Min(), h.Max())
	}
	wantMean := (3.0*3 + 7 + 1) / 5
	if math.Abs(h.Mean()-wantMean) > 1e-12 {
		t.Fatalf("Mean = %v want %v", h.Mean(), wantMean)
	}
}

func TestHistogramAddN(t *testing.T) {
	var h IntHistogram
	h.AddN(5, 10)
	h.AddN(2, 0)
	h.AddN(2, -3)
	if h.Total() != 10 || h.Count(5) != 10 || h.Count(2) != 0 {
		t.Fatalf("AddN wrong: %s", h.String())
	}
}

func TestHistogramAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var h IntHistogram
	h.Add(-1)
}

func TestHistogramQuantile(t *testing.T) {
	var h IntHistogram
	for v := 1; v <= 100; v++ {
		h.Add(v)
	}
	if q := h.Quantile(0.5); q != 50 {
		t.Fatalf("median = %d", q)
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("q0 = %d", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Fatalf("q1 = %d", q)
	}
	if q := h.Quantile(2); q != 100 { // clamped
		t.Fatalf("q2 = %d", q)
	}
	var empty IntHistogram
	if empty.Quantile(0.5) != -1 {
		t.Fatal("empty quantile should be -1")
	}
}

func TestHistogramNormalized(t *testing.T) {
	var h IntHistogram
	h.AddN(0, 1)
	h.AddN(2, 3)
	got := h.Normalized()
	want := []BinFraction{{Value: 0, Fraction: 0.25}, {Value: 2, Fraction: 0.75}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Normalized = %v", got)
	}
	var sum float64
	for _, b := range got {
		sum += b.Fraction
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("fractions sum to %v", sum)
	}
}

func TestHistogramNormalizedSumsToOneProperty(t *testing.T) {
	err := quick.Check(func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		var h IntHistogram
		for _, v := range vals {
			h.Add(int(v))
		}
		var sum float64
		for _, b := range h.Normalized() {
			sum += b.Fraction
		}
		return math.Abs(sum-1) < 1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMedianFilter(t *testing.T) {
	xs := []float64{1, 100, 3, 4, 5}
	got := MedianFilter(xs, 3)
	want := []float64{1, 3, 4, 4, 5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("MedianFilter = %v want %v", got, want)
	}
	// Window 1 is the identity.
	if !reflect.DeepEqual(MedianFilter(xs, 1), xs) {
		t.Fatal("window-1 filter should be identity")
	}
	// Original untouched.
	if xs[1] != 100 {
		t.Fatal("input modified")
	}
	if out := MedianFilter(nil, 3); len(out) != 0 {
		t.Fatal("nil input should give empty output")
	}
}

func TestMedianFilterRemovesSpikesProperty(t *testing.T) {
	err := quick.Check(func(raw []float64, winRaw uint8) bool {
		win := int(winRaw%5)*2 + 1 // odd window 1..9
		out := MedianFilter(raw, win)
		if len(out) != len(raw) {
			return false
		}
		// Every output value must be one of the input values (a median of
		// a multiset is a member of it, given replicated edges).
		for _, v := range out {
			found := false
			for _, x := range raw {
				if x == v || (math.IsNaN(x) && math.IsNaN(v)) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMedianFilterEvenWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MedianFilter([]float64{1, 2}, 2)
}

func TestSummary(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.StdErr() != 0 {
		t.Fatal("zero Summary should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	// Population stddev of this classic set is 2; sample variance = 32/7.
	if math.Abs(s.Variance()-32.0/7.0) > 1e-12 {
		t.Fatalf("Variance = %v", s.Variance())
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2}
	if q := Quantile(xs, 0.5); q != 2 {
		t.Fatalf("median = %v", q)
	}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 3 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.25); math.Abs(q-1.5) > 1e-12 {
		t.Fatalf("q.25 = %v", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
	// Input order preserved.
	if xs[0] != 3 {
		t.Fatal("input modified")
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); math.Abs(m-2) > 1e-12 {
		t.Fatalf("Mean = %v", m)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("empty Mean should be NaN")
	}
}
