package clash

import (
	"fmt"
	"sort"

	"sessiondir/internal/mcast"
	"sessiondir/internal/stats"
)

// This file implements the three-phase clash detection and correction
// protocol of §3:
//
//  1. a site that has had a session announced *for some time* and discovers
//     a clash re-sends its announcement immediately (it defends; this only
//     happens after e.g. a network partition heals);
//  2. a site that *just* announced a session and sees a clashing
//     announcement within a small window immediately re-announces with a
//     modified address (propagation-delay races are resolved against the
//     newcomer, so existing sessions are never disrupted);
//  3. a third party that owns neither session waits a randomly chosen
//     delay and, if nobody else has responded, re-announces the older
//     session on behalf of its originator (defence against cache failures
//     and partitions separating the two announcers).

// SessionKey identifies a session independent of its current address
// (origin host + message id in SAP terms).
type SessionKey string

// ActionKind enumerates the protocol's possible reactions to a clash.
type ActionKind int

const (
	// ActionNone: no reaction required.
	ActionNone ActionKind = iota
	// ActionResendOwn: phase 1 — immediately re-announce our own
	// long-standing session to defend its address.
	ActionResendOwn
	// ActionModifyAddress: phase 2 — we are the recent announcer; pick a
	// new address and re-announce.
	ActionModifyAddress
	// ActionDefendOther: phase 3 — re-announce another site's session on
	// its behalf (after the suppression delay has elapsed undisturbed).
	ActionDefendOther
)

// String implements fmt.Stringer for readable test failures and logs.
func (k ActionKind) String() string {
	switch k {
	case ActionNone:
		return "none"
	case ActionResendOwn:
		return "resend-own"
	case ActionModifyAddress:
		return "modify-address"
	case ActionDefendOther:
		return "defend-other"
	default:
		return fmt.Sprintf("ActionKind(%d)", int(k))
	}
}

// Action is a protocol reaction: Kind tells what to do for session Key;
// DueAt (milliseconds on the caller's timeline) tells when — immediate
// actions carry the observation time.
type Action struct {
	Kind  ActionKind
	Key   SessionKey
	DueAt float64
}

// Observation is one received session announcement.
type Observation struct {
	Key  SessionKey
	Addr mcast.Addr
	TTL  mcast.TTL
	At   float64 // receipt time, milliseconds
}

// TrackerConfig parameterises a Tracker.
type TrackerConfig struct {
	// RecentWindow is the §3 "small time window" (ms) within which our own
	// announcement counts as "just announced", making us the mover in a
	// propagation-delay race. A few announcement intervals is sensible.
	RecentWindow float64
	// Delay is the third-party suppression delay distribution. The paper's
	// conclusion: use ExponentialDelay so the responder count stays ~1–2
	// regardless of how many third parties saw the clash.
	Delay DelayDist
}

type cacheEntry struct {
	addr         mcast.Addr
	ttl          mcast.TTL
	firstSeen    float64
	lastSeen     float64
	owned        bool
	ownFirstSent float64
}

type pendingDefense struct {
	defended SessionKey // the older session we will re-announce
	intruder SessionKey // the newer session whose move cancels the defense
	dueAt    float64
	done     bool
}

// Tracker is the per-site clash protocol state machine. It consumes
// announcement observations (including echoes of the site's own
// announcements) and produces Actions. Not safe for concurrent use; the
// directory agent serialises access.
type Tracker struct {
	cfg     TrackerConfig
	rng     *stats.RNG
	cache   map[SessionKey]*cacheEntry
	pending []*pendingDefense
	// defenses counts phase-1 re-announcements per (ours, intruder) pair,
	// for the post-partition tie-break (see checkClash).
	defenses map[defensePair]int
}

type defensePair struct {
	ours, intruder SessionKey
}

// NewTracker returns a Tracker. rng drives the suppression delays.
func NewTracker(cfg TrackerConfig, rng *stats.RNG) *Tracker {
	if cfg.Delay == nil {
		panic("clash: TrackerConfig.Delay is required")
	}
	if cfg.RecentWindow < 0 {
		panic("clash: negative RecentWindow")
	}
	return &Tracker{
		cfg:      cfg,
		rng:      rng,
		cache:    make(map[SessionKey]*cacheEntry),
		defenses: make(map[defensePair]int),
	}
}

// AnnounceOwn records that this site announced its own session. Call it
// for the first announcement and for address changes.
func (t *Tracker) AnnounceOwn(key SessionKey, addr mcast.Addr, ttl mcast.TTL, at float64) {
	e := t.cache[key]
	if e == nil {
		e = &cacheEntry{firstSeen: at, ownFirstSent: at}
		t.cache[key] = e
	}
	if !e.owned {
		e.owned = true
		e.ownFirstSent = at
	}
	if e.addr != addr {
		// Address change: any defense waiting on this key moving is done.
		t.cancelDefensesForIntruder(key)
		t.clearDefenseCounters(key)
	}
	e.addr = addr
	e.ttl = ttl
	e.lastSeen = at
}

// Forget drops a session (deleted or expired) from the cache.
func (t *Tracker) Forget(key SessionKey) {
	delete(t.cache, key)
	t.clearDefenseCounters(key)
	for _, p := range t.pending {
		if p.defended == key || p.intruder == key {
			p.done = true
		}
	}
}

// CachedAddr returns the cached address of a session.
func (t *Tracker) CachedAddr(key SessionKey) (mcast.Addr, bool) {
	if e, ok := t.cache[key]; ok {
		return e.addr, true
	}
	return 0, false
}

// Observe processes a received announcement and returns any immediate
// actions (phase 1 and 2). Phase-3 defenses are scheduled internally and
// surface later through Due.
func (t *Tracker) Observe(obs Observation) []Action {
	var actions []Action

	// A re-announcement of a session we were waiting to defend, or an
	// address change by an intruder, resolves pending defenses.
	if e, ok := t.cache[obs.Key]; ok {
		moved := e.addr != obs.Addr
		if moved {
			// The session moved to a new address.
			t.cancelDefensesForIntruder(obs.Key)
			t.clearDefenseCounters(obs.Key)
		} else {
			// Re-announcement at the same address: its owner is alive, so
			// nobody needs to defend it on its behalf.
			t.cancelDefensesFor(obs.Key)
		}
		e.addr = obs.Addr
		e.ttl = obs.TTL
		e.lastSeen = obs.At
		switch {
		case e.owned:
			actions = append(actions, t.reactAsOwner(e, obs)...)
		case moved:
			// Check the moved session against the whole cache.
			actions = append(actions, t.checkClash(obs, false)...)
		default:
			// An unchanged re-announcement adds nothing for third parties
			// (no defense re-arm), but it *is* news to an owner whose
			// session it still clashes with: the mutual-defense stand-off
			// after a partition heal advances through exactly these
			// re-announcements, so run the owner-only check.
			actions = append(actions, t.checkClash(obs, true)...)
		}
		return actions
	}

	// New session.
	t.cache[obs.Key] = &cacheEntry{
		addr:      obs.Addr,
		ttl:       obs.TTL,
		firstSeen: obs.At,
		lastSeen:  obs.At,
	}
	return t.checkClash(obs, false)
}

// reactAsOwner handles echoes of our own session (typically no-ops).
func (t *Tracker) reactAsOwner(_ *cacheEntry, _ Observation) []Action { return nil }

// checkClash looks for cache entries holding the same address as obs and
// reacts per the three phases. With ownedOnly set, only owner reactions
// (phases 1–2) fire; third-party defenses are not (re-)scheduled.
func (t *Tracker) checkClash(obs Observation, ownedOnly bool) []Action {
	// Filter in map order (the predicate is per-entry, so order cannot
	// matter), then sort the clashing keys: reaction order is observable
	// — it fixes both the returned action order and the RNG draw order of
	// phase-3 suppression delays — and must not inherit Go's per-run map
	// iteration order.
	var clashing []SessionKey
	for key, e := range t.cache {
		if key == obs.Key || e.addr != obs.Addr {
			continue
		}
		if ownedOnly && !e.owned {
			continue
		}
		clashing = append(clashing, key)
	}
	sort.Slice(clashing, func(i, j int) bool { return clashing[i] < clashing[j] })

	var actions []Action
	for _, key := range clashing {
		e := t.cache[key]
		switch {
		case e.owned && obs.At-e.ownFirstSent > t.cfg.RecentWindow:
			// Phase 1: our long-standing session is being squatted — defend.
			// After a healed partition *both* sessions can be long-standing,
			// and mutual defense would live-lock; the paper leaves this case
			// open ("existing sessions can only be disrupted by other
			// existing sessions that had not been known due to network
			// partitioning"). After two fruitless defenses we apply a
			// deterministic tie-break both sides compute identically —
			// the lexicographically larger session key moves (the rule
			// MADCAP-era allocators converged on).
			pair := defensePair{ours: key, intruder: obs.Key}
			t.defenses[pair]++
			if t.defenses[pair] > 2 && key > obs.Key {
				actions = append(actions, Action{Kind: ActionModifyAddress, Key: key, DueAt: obs.At})
			} else {
				actions = append(actions, Action{Kind: ActionResendOwn, Key: key, DueAt: obs.At})
			}
		case e.owned:
			// Phase 2: we just announced and lost the race — move.
			actions = append(actions, Action{Kind: ActionModifyAddress, Key: key, DueAt: obs.At})
		default:
			// Phase 3: third party. Defend the *older* entry after a
			// suppression delay, unless already pending for this pair.
			older, newer := key, obs.Key
			if t.cache[older].firstSeen > t.cache[newer].firstSeen {
				older, newer = newer, older
			}
			if !t.hasPending(older, newer) {
				t.pending = append(t.pending, &pendingDefense{
					defended: older,
					intruder: newer,
					dueAt:    obs.At + t.cfg.Delay.Sample(t.rng),
				})
			}
		}
	}
	return actions
}

func (t *Tracker) hasPending(defended, intruder SessionKey) bool {
	for _, p := range t.pending {
		if !p.done && p.defended == defended && p.intruder == intruder {
			return true
		}
	}
	return false
}

func (t *Tracker) cancelDefensesFor(defended SessionKey) {
	for _, p := range t.pending {
		if p.defended == defended {
			p.done = true
		}
	}
}

func (t *Tracker) cancelDefensesForIntruder(intruder SessionKey) {
	for _, p := range t.pending {
		if p.intruder == intruder {
			p.done = true
		}
	}
}

// clearDefenseCounters resets phase-1 tie-break state involving key, used
// whenever that session moves or vanishes (the stand-off is over).
func (t *Tracker) clearDefenseCounters(key SessionKey) {
	for pair := range t.defenses {
		if pair.ours == key || pair.intruder == key {
			delete(t.defenses, pair)
		}
	}
}

// Due returns the phase-3 defenses whose suppression delay has elapsed
// without cancellation, marking them done. The caller re-announces the
// returned sessions on behalf of their originators.
func (t *Tracker) Due(now float64) []Action {
	var out []Action
	kept := t.pending[:0]
	for _, p := range t.pending {
		switch {
		case p.done:
			// drop
		case p.dueAt <= now:
			p.done = true
			out = append(out, Action{Kind: ActionDefendOther, Key: p.defended, DueAt: p.dueAt})
		default:
			kept = append(kept, p)
		}
	}
	t.pending = kept
	return out
}

// PendingDefenses reports how many undelivered phase-3 timers exist
// (introspection for tests).
func (t *Tracker) PendingDefenses() int {
	n := 0
	for _, p := range t.pending {
		if !p.done {
			n++
		}
	}
	return n
}
