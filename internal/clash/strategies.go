package clash

import (
	"fmt"

	"sessiondir/internal/stats"
)

// This file implements §3.1's alternative responder-selection strategies,
// beyond changing the delay distribution:
//
//   - restrict the *initial* responder set to the sites that are actually
//     announcing sessions (their number is known, they are spread through
//     the network); everyone else starts after the announcers' window by
//     setting D1 to the announcers' D2;
//   - arbitrarily rank the sites and derive each site's delay from its
//     rank, removing randomness entirely.

// OffsetDelay wraps a distribution, shifting its window by a constant —
// the "non-announcers respond later" tier.
type OffsetDelay struct {
	Base   DelayDist
	Offset float64 // milliseconds added to every sample
}

// NewOffsetDelay validates and builds an OffsetDelay.
func NewOffsetDelay(base DelayDist, offset float64) OffsetDelay {
	if base == nil {
		panic("clash: OffsetDelay needs a base distribution")
	}
	if offset < 0 {
		panic(fmt.Sprintf("clash: negative offset %v", offset))
	}
	return OffsetDelay{Base: base, Offset: offset}
}

// Sample implements DelayDist.
func (o OffsetDelay) Sample(rng *stats.RNG) float64 { return o.Offset + o.Base.Sample(rng) }

// Name implements DelayDist.
func (o OffsetDelay) Name() string { return o.Base.Name() + "+offset" }

// Window implements DelayDist.
func (o OffsetDelay) Window() (float64, float64) {
	d1, d2 := o.Base.Window()
	return d1 + o.Offset, d2 + o.Offset
}

// RankedDelay is deterministic: a site with rank r waits D1 + r·Spacing.
// With unique ranks, exactly one site responds (the lowest-ranked that
// heard the clash), at the cost of needing rank agreement — the paper
// notes ranking needs "additional information that we have", which a
// session directory does have (orderable origin addresses).
type RankedDelay struct {
	D1      float64
	Spacing float64 // milliseconds between consecutive ranks; should be ≥ RTT
	Rank    int
}

// NewRankedDelay validates and builds a RankedDelay for one site.
func NewRankedDelay(d1, spacing float64, rank int) RankedDelay {
	if d1 < 0 || spacing <= 0 || rank < 0 {
		panic(fmt.Sprintf("clash: invalid ranked delay (%v, %v, %d)", d1, spacing, rank))
	}
	return RankedDelay{D1: d1, Spacing: spacing, Rank: rank}
}

// Sample implements DelayDist (deterministically).
func (r RankedDelay) Sample(*stats.RNG) float64 { return r.D1 + float64(r.Rank)*r.Spacing }

// Name implements DelayDist.
func (r RankedDelay) Name() string { return "ranked" }

// Window implements DelayDist.
func (r RankedDelay) Window() (float64, float64) {
	d := r.D1 + float64(r.Rank)*r.Spacing
	return d, d
}
