package clash

import (
	"math"
	"testing"
	"testing/quick"

	"sessiondir/internal/stats"
)

func TestUniformDelayBounds(t *testing.T) {
	u := NewUniformDelay(200, 800)
	rng := stats.NewRNG(1)
	var s stats.Summary
	for i := 0; i < 20000; i++ {
		d := u.Sample(rng)
		if d < 200 || d > 800 {
			t.Fatalf("delay %v outside window", d)
		}
		s.Add(d)
	}
	if math.Abs(s.Mean()-500) > 10 {
		t.Fatalf("mean %v, want ~500", s.Mean())
	}
	if u.Name() != "uniform" {
		t.Fatal("name")
	}
	d1, d2 := u.Window()
	if d1 != 200 || d2 != 800 {
		t.Fatal("window")
	}
}

func TestUniformDelayValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewUniformDelay(500, 100)
}

func TestExponentialDelayBounds(t *testing.T) {
	e := NewExponentialDelay(0, 3200, 200)
	rng := stats.NewRNG(2)
	for i := 0; i < 20000; i++ {
		d := e.Sample(rng)
		if d < 0 || d > 3200+1e-9 {
			t.Fatalf("delay %v outside window", d)
		}
	}
}

func TestExponentialDelaySkewsLate(t *testing.T) {
	// The whole point: early buckets are exponentially unlikely. The
	// probability of landing in the first half of the window must be far
	// below 1/2.
	e := NewExponentialDelay(0, 3200, 200)
	rng := stats.NewRNG(3)
	const n = 50000
	early := 0
	for i := 0; i < n; i++ {
		if e.Sample(rng) < 1600 {
			early++
		}
	}
	frac := float64(early) / n
	// P(D < D2/2) = (2^(d/2)−1)/(2^d−1) ≈ 2^(−d/2) = 2⁻⁸ here.
	if frac > 0.02 {
		t.Fatalf("first-half fraction %v, want ≈2^-8", frac)
	}
}

func TestExponentialDelayMatchesBucketWeights(t *testing.T) {
	// With d buckets, bucket b should receive ≈ 2^(b-1)/(2^d −1) of the
	// samples.
	e := NewExponentialDelay(0, 800, 200) // d = 4
	rng := stats.NewRNG(4)
	const n = 200000
	var counts [4]int
	for i := 0; i < n; i++ {
		b := int(e.Sample(rng) / 200)
		if b == 4 {
			b = 3 // boundary value
		}
		counts[b]++
	}
	total := float64(1<<4 - 1)
	for b := 0; b < 4; b++ {
		want := math.Exp2(float64(b)) / total
		got := float64(counts[b]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("bucket %d: got %v want %v", b, got, want)
		}
	}
}

func TestExponentialDelayLargeD2Stable(t *testing.T) {
	// d = 65536 buckets: must not overflow to +Inf.
	e := NewExponentialDelay(0, 13107200, 200)
	rng := stats.NewRNG(5)
	for i := 0; i < 1000; i++ {
		d := e.Sample(rng)
		if math.IsInf(d, 0) || math.IsNaN(d) || d < 0 || d > 13107200 {
			t.Fatalf("unstable sample %v", d)
		}
	}
}

func TestExponentialDelayPropertyInWindow(t *testing.T) {
	err := quick.Check(func(seed uint64, d1Raw, spanRaw uint16) bool {
		d1 := float64(d1Raw)
		d2 := d1 + float64(spanRaw) + 1
		e := NewExponentialDelay(d1, d2, 200)
		d := e.Sample(stats.NewRNG(seed))
		return d >= d1 && d <= d2+1e-6
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestBuckets(t *testing.T) {
	if got := NewExponentialDelay(0, 800, 200).Buckets(); got != 4 {
		t.Fatalf("buckets = %d", got)
	}
	if got := NewExponentialDelay(0, 100, 200).Buckets(); got != 1 {
		t.Fatalf("buckets = %d", got)
	}
}

func TestMillis(t *testing.T) {
	if Millis(1500).Milliseconds() != 1500 {
		t.Fatal("Millis conversion")
	}
}

func newTracker(t *testing.T) *Tracker {
	t.Helper()
	return NewTracker(TrackerConfig{
		RecentWindow: 1000,
		Delay:        NewExponentialDelay(0, 3200, 200),
	}, stats.NewRNG(42))
}

func TestTrackerPhase1DefendLongStanding(t *testing.T) {
	tr := newTracker(t)
	tr.AnnounceOwn("ours", 7, 127, 0)
	// Long after our announcement, an intruder shows up on our address.
	acts := tr.Observe(Observation{Key: "intruder", Addr: 7, TTL: 127, At: 5000})
	if len(acts) != 1 || acts[0].Kind != ActionResendOwn || acts[0].Key != "ours" {
		t.Fatalf("actions = %+v", acts)
	}
}

func TestTrackerPhase2MoveWhenRecent(t *testing.T) {
	tr := newTracker(t)
	tr.AnnounceOwn("ours", 7, 127, 0)
	// Within the recent window: we lose the race and must move.
	acts := tr.Observe(Observation{Key: "rival", Addr: 7, TTL: 127, At: 500})
	if len(acts) != 1 || acts[0].Kind != ActionModifyAddress || acts[0].Key != "ours" {
		t.Fatalf("actions = %+v", acts)
	}
}

func TestTrackerPhase3ThirdPartyDefense(t *testing.T) {
	tr := newTracker(t)
	tr.Observe(Observation{Key: "old", Addr: 9, TTL: 63, At: 0})
	acts := tr.Observe(Observation{Key: "new", Addr: 9, TTL: 63, At: 100})
	if len(acts) != 0 {
		t.Fatalf("third party should not act immediately: %+v", acts)
	}
	if tr.PendingDefenses() != 1 {
		t.Fatalf("pending = %d", tr.PendingDefenses())
	}
	// Before the timer: nothing due.
	if due := tr.Due(100); len(due) != 0 {
		t.Fatalf("premature due: %+v", due)
	}
	// Long after the window: defense fires for the *older* session.
	due := tr.Due(100 + 3200 + 1)
	if len(due) != 1 || due[0].Kind != ActionDefendOther || due[0].Key != "old" {
		t.Fatalf("due = %+v", due)
	}
	// One-shot.
	if due := tr.Due(1e9); len(due) != 0 {
		t.Fatalf("defense fired twice: %+v", due)
	}
}

func TestTrackerDefenseCancelledByReannouncement(t *testing.T) {
	tr := newTracker(t)
	tr.Observe(Observation{Key: "old", Addr: 9, TTL: 63, At: 0})
	tr.Observe(Observation{Key: "new", Addr: 9, TTL: 63, At: 100})
	// The original owner re-announces at the same address: suppression.
	tr.Observe(Observation{Key: "old", Addr: 9, TTL: 63, At: 200})
	if due := tr.Due(1e9); len(due) != 0 {
		t.Fatalf("cancelled defense fired: %+v", due)
	}
}

func TestTrackerDefenseCancelledByIntruderMoving(t *testing.T) {
	tr := newTracker(t)
	tr.Observe(Observation{Key: "old", Addr: 9, TTL: 63, At: 0})
	tr.Observe(Observation{Key: "new", Addr: 9, TTL: 63, At: 100})
	// The newcomer re-announces at a different address: clash resolved.
	tr.Observe(Observation{Key: "new", Addr: 10, TTL: 63, At: 300})
	if due := tr.Due(1e9); len(due) != 0 {
		t.Fatalf("cancelled defense fired: %+v", due)
	}
}

func TestTrackerNoDuplicateDefenses(t *testing.T) {
	tr := newTracker(t)
	tr.Observe(Observation{Key: "old", Addr: 9, TTL: 63, At: 0})
	tr.Observe(Observation{Key: "new", Addr: 9, TTL: 63, At: 100})
	// Hearing the same clashing announcement again must not stack timers.
	tr.Observe(Observation{Key: "new", Addr: 9, TTL: 63, At: 700})
	if got := tr.PendingDefenses(); got != 1 {
		t.Fatalf("pending = %d, want 1", got)
	}
}

func TestTrackerMovedSessionClashesAgain(t *testing.T) {
	tr := newTracker(t)
	tr.AnnounceOwn("ours", 5, 63, 0)
	tr.Observe(Observation{Key: "other", Addr: 4, TTL: 63, At: 10})
	// "other" moves onto our address much later: phase 1 defense.
	acts := tr.Observe(Observation{Key: "other", Addr: 5, TTL: 63, At: 5000})
	if len(acts) != 1 || acts[0].Kind != ActionResendOwn {
		t.Fatalf("actions = %+v", acts)
	}
}

func TestTrackerOwnAddressChangeCancelsDefense(t *testing.T) {
	tr := newTracker(t)
	tr.Observe(Observation{Key: "old", Addr: 9, TTL: 63, At: 0})
	// We announce a clashing session... as a third party's cache sees it.
	tr.Observe(Observation{Key: "mine", Addr: 9, TTL: 63, At: 50})
	if tr.PendingDefenses() != 1 {
		t.Fatalf("pending = %d", tr.PendingDefenses())
	}
	// Now the tracker's site takes ownership of "mine" and moves it.
	tr.AnnounceOwn("mine", 11, 63, 100)
	if due := tr.Due(1e9); len(due) != 0 {
		t.Fatalf("defense fired after intruder moved: %+v", due)
	}
}

func TestTrackerForget(t *testing.T) {
	tr := newTracker(t)
	tr.Observe(Observation{Key: "old", Addr: 9, TTL: 63, At: 0})
	tr.Observe(Observation{Key: "new", Addr: 9, TTL: 63, At: 100})
	tr.Forget("old")
	if _, ok := tr.CachedAddr("old"); ok {
		t.Fatal("forgot session still cached")
	}
	if due := tr.Due(1e9); len(due) != 0 {
		t.Fatalf("defense for forgotten session fired: %+v", due)
	}
}

func TestTrackerCachedAddr(t *testing.T) {
	tr := newTracker(t)
	tr.Observe(Observation{Key: "s", Addr: 3, TTL: 15, At: 0})
	if a, ok := tr.CachedAddr("s"); !ok || a != 3 {
		t.Fatalf("CachedAddr = %v %v", a, ok)
	}
	if _, ok := tr.CachedAddr("missing"); ok {
		t.Fatal("missing key found")
	}
}

// TestTrackerMutualLongStandingTieBreak: after a partition heals, both
// owners are long-standing. Repeated mutual defenses must converge via the
// deterministic tie-break: the lexicographically larger key moves.
func TestTrackerMutualLongStandingTieBreak(t *testing.T) {
	mk := func(ownKey SessionKey) *Tracker {
		tr := newTracker(t)
		tr.AnnounceOwn(ownKey, 7, 191, 0)
		return tr
	}
	loser := mk("zzz") // larger key: must eventually move
	winner := mk("aaa")

	// Each observes the other's (unchanging) re-announcements.
	now := 100000.0
	var loserMoved, winnerMoved bool
	for round := 0; round < 6; round++ {
		for _, a := range loser.Observe(Observation{Key: "aaa", Addr: 7, TTL: 191, At: now}) {
			if a.Kind == ActionModifyAddress {
				loserMoved = true
			}
		}
		for _, a := range winner.Observe(Observation{Key: "zzz", Addr: 7, TTL: 191, At: now}) {
			if a.Kind == ActionModifyAddress {
				winnerMoved = true
			}
		}
		now += 1000
	}
	if !loserMoved {
		t.Fatal("larger-key owner never moved: stand-off live-lock")
	}
	if winnerMoved {
		t.Fatal("smaller-key owner moved: both sides lost the tie-break")
	}
	// Once the loser moves, its counters reset.
	loser.AnnounceOwn("zzz", 8, 191, now)
	if got := loser.PendingDefenses(); got != 0 {
		t.Fatalf("pending after move: %d", got)
	}
}

func TestTrackerRequiresDelay(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTracker(TrackerConfig{RecentWindow: 10}, stats.NewRNG(1))
}

func TestActionKindString(t *testing.T) {
	for k, want := range map[ActionKind]string{
		ActionNone:          "none",
		ActionResendOwn:     "resend-own",
		ActionModifyAddress: "modify-address",
		ActionDefendOther:   "defend-other",
		ActionKind(99):      "ActionKind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d: %q want %q", int(k), got, want)
		}
	}
}
