// Package clash implements the paper's §3 clash handling: the randomised
// response-delay distributions that prevent response implosion, the
// suppression rule, and the three-phase clash detection and correction
// protocol for session directories.
package clash

import (
	"fmt"
	"math"
	"time"

	"sessiondir/internal/stats"
)

// DelayDist draws the delay a potential responder waits before reporting a
// clash, giving others the chance to respond first (suppression).
type DelayDist interface {
	// Sample returns a delay in milliseconds in [D1, D2].
	Sample(rng *stats.RNG) float64
	// Name identifies the distribution in experiment output.
	Name() string
	// Window returns the [D1, D2] bounds in milliseconds.
	Window() (d1, d2 float64)
}

// UniformDelay draws uniformly from [D1, D2] — the SRM-style baseline the
// paper shows needs D2 to grow with the receiver count (Figures 14–16).
type UniformDelay struct {
	D1, D2 float64 // milliseconds
}

// NewUniformDelay returns a uniform delay distribution over [d1, d2] ms.
func NewUniformDelay(d1, d2 float64) UniformDelay {
	if d1 < 0 || d2 < d1 {
		panic(fmt.Sprintf("clash: invalid uniform window [%v, %v]", d1, d2))
	}
	return UniformDelay{D1: d1, D2: d2}
}

// Sample implements DelayDist.
func (u UniformDelay) Sample(rng *stats.RNG) float64 {
	return u.D1 + rng.Float64()*(u.D2-u.D1)
}

// Name implements DelayDist.
func (u UniformDelay) Name() string { return "uniform" }

// Window implements DelayDist.
func (u UniformDelay) Window() (float64, float64) { return u.D1, u.D2 }

// ExponentialDelay implements the paper's §3.1 distribution: the delay is
//
//	D = D1 + r · log2((2^d − 1)·x + 1),   d = (D2 − D1)/r
//
// with x uniform in [0,1) and r the assumed maximum RTT. Early delays are
// exponentially unlikely, so the expected number of responses stays near
// 1/ln 2 regardless of group size (Figure 18), at the cost of a worst-case
// delay of D2.
type ExponentialDelay struct {
	D1, D2 float64 // milliseconds
	RTT    float64 // assumed maximum round trip time r, milliseconds
}

// NewExponentialDelay returns the paper's exponential delay distribution.
func NewExponentialDelay(d1, d2, rtt float64) ExponentialDelay {
	if d1 < 0 || d2 < d1 || rtt <= 0 {
		panic(fmt.Sprintf("clash: invalid exponential parameters [%v, %v] rtt %v", d1, d2, rtt))
	}
	return ExponentialDelay{D1: d1, D2: d2, RTT: rtt}
}

// Sample implements DelayDist.
func (e ExponentialDelay) Sample(rng *stats.RNG) float64 {
	d := (e.D2 - e.D1) / e.RTT
	if d <= 0 {
		return e.D1
	}
	x := rng.Float64()
	// log2((2^d − 1)·x + 1), computed stably for large d where 2^d
	// overflows float64.
	var val float64
	t := d + math.Log2(x) // log2(x·2^d); -Inf when x == 0
	switch {
	case x == 0:
		val = 0
	case t > 50:
		val = t // the "+1 − x" terms are negligible beyond 2^50
	default:
		val = math.Log2(math.Exp2(t) - x + 1)
	}
	return e.D1 + e.RTT*val
}

// Name implements DelayDist.
func (e ExponentialDelay) Name() string { return "exponential" }

// Window implements DelayDist.
func (e ExponentialDelay) Window() (float64, float64) { return e.D1, e.D2 }

// Buckets returns d, the number of RTT-sized buckets in the window — the
// parameter of Equations 2 and 4.
func (e ExponentialDelay) Buckets() int {
	d := int((e.D2 - e.D1) / e.RTT)
	if d < 1 {
		d = 1
	}
	return d
}

// Millis converts a millisecond delay to a time.Duration.
func Millis(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}
