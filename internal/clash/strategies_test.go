package clash

import (
	"testing"

	"sessiondir/internal/stats"
)

func TestOffsetDelay(t *testing.T) {
	base := NewUniformDelay(100, 200)
	o := NewOffsetDelay(base, 1000)
	rng := stats.NewRNG(1)
	for i := 0; i < 1000; i++ {
		d := o.Sample(rng)
		if d < 1100 || d > 1200 {
			t.Fatalf("sample %v outside shifted window", d)
		}
	}
	d1, d2 := o.Window()
	if d1 != 1100 || d2 != 1200 {
		t.Fatalf("window = [%v, %v]", d1, d2)
	}
	if o.Name() != "uniform+offset" {
		t.Fatalf("name = %q", o.Name())
	}
}

func TestOffsetDelayValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewOffsetDelay(nil, 10) },
		func() { NewOffsetDelay(NewUniformDelay(0, 1), -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRankedDelayDeterministic(t *testing.T) {
	r := NewRankedDelay(50, 200, 3)
	rng := stats.NewRNG(2)
	want := 50 + 3.0*200
	for i := 0; i < 10; i++ {
		if got := r.Sample(rng); got != want {
			t.Fatalf("sample %v want %v", got, want)
		}
	}
	d1, d2 := r.Window()
	if d1 != want || d2 != want {
		t.Fatalf("window = [%v, %v]", d1, d2)
	}
	if r.Name() != "ranked" {
		t.Fatal("name")
	}
	// Rank 0 responds at D1.
	if got := NewRankedDelay(10, 200, 0).Sample(rng); got != 10 {
		t.Fatalf("rank0 = %v", got)
	}
}

func TestRankedDelayValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewRankedDelay(-1, 200, 0) },
		func() { NewRankedDelay(0, 0, 0) },
		func() { NewRankedDelay(0, 200, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
